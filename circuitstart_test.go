package circuitstart_test

import (
	"testing"
	"time"

	"circuitstart"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow end
// to end through the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	n := circuitstart.NewNetwork(1)
	access := circuitstart.Symmetric(circuitstart.Mbps(20), 5*time.Millisecond, 0)
	for _, id := range []circuitstart.NodeID{"guard", "middle", "exit"} {
		n.MustAddRelay(id, access)
	}
	c := n.MustBuildCircuit(circuitstart.CircuitSpec{
		Source:       "client",
		Sink:         "server",
		SourceAccess: access,
		SinkAccess:   access,
		Relays:       []circuitstart.NodeID{"guard", "middle", "exit"},
		Transport:    circuitstart.TransportOptions{Policy: circuitstart.PolicyCircuitStart},
	})
	c.Transfer(500*circuitstart.Kilobyte, nil)
	n.RunUntil(30 * circuitstart.Second)
	ttlb, done := c.TTLB()
	if !done || ttlb <= 0 {
		t.Fatalf("transfer incomplete: %v, %v", ttlb, done)
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	policies := []string{
		circuitstart.PolicyCircuitStart,
		circuitstart.PolicyBackTap,
		circuitstart.PolicySlowStart,
		circuitstart.PolicyCircuitStartHalve,
		circuitstart.PolicySlowStartCompensated,
	}
	access := circuitstart.Symmetric(circuitstart.Mbps(20), 2*time.Millisecond, 0)
	for _, p := range policies {
		t.Run(p, func(t *testing.T) {
			n := circuitstart.NewNetwork(2)
			n.MustAddRelay("r", access)
			c := n.MustBuildCircuit(circuitstart.CircuitSpec{
				Source: "c", Sink: "s",
				SourceAccess: access, SinkAccess: access,
				Relays:    []circuitstart.NodeID{"r"},
				Transport: circuitstart.TransportOptions{Policy: p},
			})
			c.Transfer(100*circuitstart.Kilobyte, nil)
			n.RunUntil(30 * circuitstart.Second)
			if _, done := c.TTLB(); !done {
				t.Fatalf("policy %s did not complete", p)
			}
		})
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	r, err := circuitstart.Fig1CwndTrace(circuitstart.DefaultCwndTraceParams(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace.Len() == 0 || r.OptimalCells <= 0 {
		t.Fatalf("empty result: %+v", r)
	}
}

// TestPublicAPIBackbone exercises the routed-fabric surface through the
// facade only: a generated backbone spec, a scenario on it, a trunk
// capacity event, and the per-trunk stats in the result.
func TestPublicAPIBackbone(t *testing.T) {
	bp := circuitstart.DefaultBackboneParams(8, 2)
	bp.Kind = circuitstart.BackboneLine
	spec, err := circuitstart.GenerateBackbone(bp)
	if err != nil {
		t.Fatal(err)
	}
	pop := bp.Relays
	res, err := circuitstart.Runner{Workers: 2}.Run(circuitstart.Scenario{
		Seed:     9,
		Topology: circuitstart.Topology{Population: &pop, Fabric: &spec},
		Circuits: circuitstart.CircuitSet{
			Count:        4,
			TransferSize: 100 * circuitstart.Kilobyte,
		},
		Arms: []circuitstart.Arm{{Name: "default"}},
		Events: []circuitstart.LinkEvent{
			{At: circuitstart.Second, TrunkA: "core-00", TrunkB: "core-01", Rate: circuitstart.Mbps(400)},
		},
		Horizon: 600 * circuitstart.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	arm := res.Arms[0]
	if arm.Incomplete != 0 {
		t.Fatalf("%d transfers incomplete", arm.Incomplete)
	}
	if arm.Net.UnknownDst != 0 || arm.Net.Unroutable != 0 {
		t.Fatalf("fabric dropped frames: %+v", arm.Net)
	}
	if len(arm.Trunks()) != 2 {
		t.Fatalf("%d trunk stats, want 2", len(arm.Trunks()))
	}
}
