module circuitstart

go 1.21
