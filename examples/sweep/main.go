// Sweep: the fixed ablations as point queries on the general grid
// engine. First the paper's γ ablation — a hand-written function in
// package experiments — re-expressed as a one-line 1-D sweep that
// reproduces its numbers exactly. Then the surface no fixed ablation
// can express: γ × bottleneck bandwidth × circuit length, 27 scenarios
// executed on the worker pool with per-point aggregates streamed to
// CSV, and the in-memory table answering the marginal question the
// paper's fixed-γ choice rests on: does γ = 4 hold up away from the
// default operating point?
package main

import (
	"fmt"
	"log"
	"os"

	"circuitstart"
)

func main() {
	// The γ ablation as a grid: one dimension over the same
	// single-circuit distant-bottleneck trace scenario the fixed
	// AblationGamma runs on. Same seed, same topology — same numbers.
	p := circuitstart.DefaultCwndTraceParams(3)
	base := p.Scenario([]circuitstart.Arm{{Name: "trace"}})

	tbl, err := circuitstart.RunSweep(circuitstart.Sweep{
		Name:       "gamma",
		Base:       base,
		Dimensions: []circuitstart.Dimension{circuitstart.SweepGamma(1, 2, 4, 8, 16)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1-D gamma sweep (== circuitsim ablation -name gamma):")
	if err := tbl.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The surface: γ × bottleneck bandwidth × hop count. The hops axis
	// rebuilds the explicit topology per value (a custom dimension),
	// the bandwidth axis then retunes the bottleneck relay, and γ
	// mutates the transport — later axes see earlier mutations, so the
	// order is hops, bandwidth, gamma.
	hopsDim := circuitstart.Dimension{Name: "hops"}
	for _, h := range []int{2, 3, 4} {
		h := h
		hopsDim.Values = append(hopsDim.Values, circuitstart.DimensionValue{
			Label: fmt.Sprintf("%d", h),
			Apply: func(sc *circuitstart.Scenario) error {
				q := circuitstart.DefaultCwndTraceParams(1) // bottleneck at the first hop
				q.Hops = h
				fresh := q.Scenario(nil)
				sc.Topology = fresh.Topology
				sc.Circuits.Paths = fresh.Circuits.Paths
				return nil
			},
		})
	}

	surface := circuitstart.Sweep{
		Name: "gamma-surface",
		Base: p.Scenario([]circuitstart.Arm{{Name: "trace"}}),
		Dimensions: []circuitstart.Dimension{
			hopsDim,
			circuitstart.SweepRelayRates("relay-1",
				circuitstart.Mbps(4), circuitstart.Mbps(16), circuitstart.Mbps(64)),
			circuitstart.SweepGamma(1, 4, 16),
		},
	}

	f, err := os.Create("gamma_surface.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	stbl, err := circuitstart.RunSweep(surface, circuitstart.NewSweepCSVSink(f))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ngamma × bandwidth × hops surface: %d points (rows in gamma_surface.csv)\n", stbl.Meta.Points)
	if err := stbl.WriteMarginals(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Fprintln(os.Stderr, "\ntip: 'go run ./cmd/circuitsim sweep -gammas 1,4,16 -bandwidths 4,16,64' runs a grid from the CLI")
}
