// Bottleneck: reproduce the paper's Figure 1 upper panels — the source's
// congestion window over time with the bottleneck one hop away and three
// hops away — and print both traces side by side in the paper's units
// (time in ms, cwnd in KB) together with the model's optimal window.
package main

import (
	"fmt"
	"log"
	"os"

	"circuitstart"
)

func main() {
	fmt.Println("CircuitStart Figure 1 (upper): source cwnd vs time")
	fmt.Println()

	for _, distance := range []int{1, 3} {
		p := circuitstart.DefaultCwndTraceParams(distance)
		r, err := circuitstart.Fig1CwndTrace(p)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("--- distance to bottleneck: %d hop(s); optimal = %.1f KB ---\n",
			distance, r.OptimalCells*circuitstart.CellSize/1000)
		fmt.Printf("%10s  %10s\n", "time [ms]", "cwnd [KB]")
		pts := r.CwndKBPoints()
		for _, pt := range pts {
			// The paper plots the first 300 ms; print that window.
			if pt.At > 300*circuitstart.Millisecond {
				break
			}
			fmt.Printf("%10.1f  %10.2f\n", pt.At.Milliseconds(), pt.Value)
		}
		settle := "never"
		if r.SettleTime >= 0 {
			settle = r.SettleTime.String()
		}
		fmt.Printf("peak %.1f KB, exit %.1f KB at %v, settled near optimal at %s\n\n",
			r.PeakCells*circuitstart.CellSize/1000,
			r.ExitCwnd*circuitstart.CellSize/1000,
			r.ExitTime, settle)
	}

	fmt.Fprintln(os.Stderr, "tip: 'go run ./cmd/circuitsim fig1-cwnd -csv trace.csv' writes gnuplot-ready data")
}
