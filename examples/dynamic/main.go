// Dynamic: the paper's future-work extension — responding to changing
// network conditions during congestion avoidance. The circuit's
// bottleneck steps from 8 to 40 Mbit/s mid-transfer; with the re-probe
// extension the source finds the new capacity within a few round trips,
// without it Vegas crawls up one cell per RTT.
package main

import (
	"fmt"
	"log"

	"circuitstart"
)

func main() {
	base := circuitstart.DynamicRestartParams{
		Seed:       2018,
		BeforeRate: circuitstart.Mbps(8),
		AfterRate:  circuitstart.Mbps(40),
		StepAt:     circuitstart.Second,
		Horizon:    5 * circuitstart.Second,
	}

	for _, arm := range []struct {
		name    string
		restart int
	}{
		{"with re-probe extension", 3},
		{"plain (Vegas only)", -1},
	} {
		p := base
		p.RestartRounds = arm.restart
		r, err := circuitstart.ExtensionDynamicRestart(p)
		if err != nil {
			log.Fatal(err)
		}
		rec := "never within horizon"
		if r.RecoveryTime >= 0 {
			rec = r.RecoveryTime.String()
		}
		fmt.Printf("%-26s window at step %.0f cells; recovery to 80%% of new optimal in %s (final %.0f of %.0f cells)\n",
			arm.name, r.WindowAtStep, rec, r.FinalCells, r.OptimalAfter)
	}
}
