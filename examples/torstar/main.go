// Torstar: the paper's aggregate experiment — 50 concurrent circuits
// over a randomly generated network of Tor-like relays in a star
// topology, each downloading a fixed amount of data, with and without
// CircuitStart. Prints the download-time distributions and the CDF gap
// (Figure 1, lower panel).
package main

import (
	"fmt"
	"log"

	"circuitstart"
)

func main() {
	p := circuitstart.DefaultCDFParams()
	p.Scenario.Circuits = 50

	fmt.Printf("running %d circuits × 2 policies over %d relays (%s each)...\n",
		p.Scenario.Circuits, p.Scenario.Relays.N, p.Scenario.TransferSize)
	res, err := circuitstart.Fig1DownloadCDF(p)
	if err != nil {
		log.Fatal(err)
	}

	for _, arm := range res.Arms {
		s := arm.TTLB.Summarize()
		fmt.Printf("%-14s n=%d median=%.2fs p90=%.2fs max=%.2fs incomplete=%d\n",
			arm.Policy, s.N, s.Median, s.P90, s.Max, arm.Incomplete)
	}

	gap := res.MedianGap("circuitstart", "backtap")
	fmt.Printf("\nmedian download-time improvement with CircuitStart: %.2f s\n", -gap)

	// A few points of both CDFs, as plotted in the paper.
	fmt.Printf("\n%12s  %14s  %14s\n", "ttlb [s]", "P(with)", "P(without)")
	with, without := res.Arm("circuitstart"), res.Arm("backtap")
	for _, x := range []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0} {
		fmt.Printf("%12.1f  %14.2f  %14.2f\n", x, with.TTLB.CDFAt(x), without.TTLB.CDFAt(x))
	}
}
