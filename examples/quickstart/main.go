// Quickstart: build a three-relay Tor-like circuit, download 1 MB over
// it with CircuitStart, and print what happened.
package main

import (
	"fmt"
	"log"
	"time"

	"circuitstart"
)

func main() {
	// A network whose randomness (keys, loss) derives from one seed:
	// the run below reproduces byte-identically.
	n := circuitstart.NewNetwork(2018)

	// Three relays: guard and exit are fast, the middle is the
	// bottleneck at 10 Mbit/s.
	fast := circuitstart.Symmetric(circuitstart.Mbps(100), 5*time.Millisecond, 0)
	slow := circuitstart.Symmetric(circuitstart.Mbps(10), 5*time.Millisecond, 0)
	n.MustAddRelay("guard", fast)
	n.MustAddRelay("middle", slow)
	n.MustAddRelay("exit", fast)

	// A circuit through them, with the paper's start-up scheme on every
	// hop and the source's congestion window traced.
	c := n.MustBuildCircuit(circuitstart.CircuitSpec{
		Source:       "client",
		Sink:         "server",
		SourceAccess: fast,
		SinkAccess:   fast,
		Relays:       []circuitstart.NodeID{"guard", "middle", "exit"},
		Transport:    circuitstart.TransportOptions{Policy: circuitstart.PolicyCircuitStart},
		TraceCwnd:    true,
	})

	// Start a 1 MB download and run the virtual clock.
	c.Transfer(1*circuitstart.Megabyte, func(ttlb time.Duration) {
		fmt.Printf("download finished: time to last byte = %v\n", ttlb)
	})
	n.RunUntil(60 * circuitstart.Second)

	if _, done := c.TTLB(); !done {
		log.Fatal("transfer did not complete")
	}

	// Compare where the window converged against the analytic optimum.
	opt := c.ModelPath().OptimalSourceWindowCells()
	fmt.Printf("model-optimal source window: %.1f cells\n", opt)
	fmt.Printf("source window at the end:    %.1f cells\n", c.SourceSender().Cwnd())
	fmt.Printf("startup exited at %v with %.1f cells\n",
		c.SourceSender().Stats().ExitTime, c.SourceSender().Stats().ExitCwnd)
}
