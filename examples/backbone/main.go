// Command backbone demonstrates the routed-fabric topology layer: a
// generated Tor-like relay population spread behind a 3-switch ring
// backbone, concurrent circuits whose paths cross shared trunks, and a
// mid-run trunk capacity step — the shared-bottleneck dynamics a star
// topology cannot express.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

func main() {
	// 18 relays behind 3 switches on a ring of 40 Mbit/s trunks —
	// slow enough that circuits crossing the backbone contend there,
	// not on their access links.
	bp := workload.DefaultBackboneParams(18, 3)
	bp.TrunkRate = units.Mbps(40)
	spec, err := workload.GenerateBackbone(bp)
	if err != nil {
		log.Fatal(err)
	}

	pop := bp.Relays
	sc := scenario.Scenario{
		Name:     "backbone-demo",
		Seed:     42,
		Topology: scenario.Topology{Population: &pop, Fabric: &spec},
		Circuits: scenario.CircuitSet{
			Count:        12,
			TransferSize: 500 * units.Kilobyte,
			Arrival:      scenario.Arrival{Kind: scenario.ArriveUniform, Spread: 200 * time.Millisecond},
		},
		Arms: []scenario.Arm{
			{Name: "circuitstart", Transport: core.TransportOptions{}},
			{Name: "backtap", Transport: core.TransportOptions{Policy: "backtap"}},
		},
		Horizon: 600 * sim.Second,
		// Halfway through the expected run, one ring trunk doubles in
		// capacity — a shared bottleneck moving mid-experiment.
		Events: []scenario.LinkEvent{
			{At: 2 * sim.Second, TrunkA: "core-00", TrunkB: "core-01", Rate: units.Mbps(80)},
		},
	}

	res, err := scenario.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backbone demo: %d circuits over %d relays behind a %d-switch ring (%s trunks)\n",
		sc.Circuits.Count, pop.N, bp.Switches, bp.TrunkRate)
	if err := res.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("median improvement with CircuitStart: %.3f s\n",
		-res.MedianGap("circuitstart", "backtap"))
}
