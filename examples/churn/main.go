// Churn: the startup-dominated regime the paper targets. Short
// downloads arrive over freshly built circuits as a Poisson process,
// completed circuits are torn down (state released back to the pools),
// and mid-run two high-bandwidth relays fail — every circuit crossing
// them is torn down and rebuilt over a new path, paying a full circuit
// startup again. CircuitStart's compensated ramp is exactly what
// repeated startups reward, so its median win over plain BackTap is
// wider here than in the static Figure-1 experiment.
package main

import (
	"fmt"
	"log"
	"os"

	"circuitstart"
)

func main() {
	// The canonical churn ablation: 10 initial + 40 arriving 250 kB
	// downloads over 40 Tor-like relays, the two fattest relays failing
	// at t = 1 s and t = 3 s for 3 s each, both arms rebuilding.
	p := circuitstart.DefaultChurnParams()
	res, err := circuitstart.AblationChurn(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("churn: %d initial + %d arriving downloads (%s each) over %d relays, %d failures\n\n",
		p.InitialCircuits, p.Arrivals, p.TransferSize, p.Relays.N, p.Failures)
	if err := res.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The lifecycle aggregates: every circuit was eventually torn down,
	// and the rebuild counters show who was hit by the failures.
	for _, arm := range res.Arms {
		c := arm.Churn
		fmt.Printf("\n%s: built %d circuits, tore down %d, rebuilt %d after failures, aborted %d\n",
			arm.Name, c.Built, c.TornDown, c.Rebuilt, c.Aborted)
		fmt.Printf("  median circuit lifetime: %.3f s\n", c.Lifetime.Median())
	}

	fmt.Printf("\nmedian improvement with CircuitStart under churn: %.3f s\n",
		-res.MedianGap("circuitstart", "backtap"))

	// Compare against the static experiment: same population, every
	// circuit alive for the whole run — the gap is smaller there.
	static, err := circuitstart.Fig1DownloadCDF(circuitstart.DefaultCDFParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("median improvement in the static Fig-1 CDF:       %.3f s\n",
		-static.MedianGap("circuitstart", "backtap"))
}
