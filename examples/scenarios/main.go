// Scenarios: a custom experiment none of the paper's figures cover,
// written against the declarative Scenario/Runner API. Four start-up
// policies — CircuitStart, plain BackTap, classic slow start and a
// Tor-SENDME-like fixed window — compete on the same heterogeneous
// relay population under an open-loop Poisson arrival process, in the
// download direction, replicated over three independent seeds. The
// runner fans the 12 trials out across the CPUs; the aggregate is
// bit-identical for any worker count.
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"circuitstart"
)

func main() {
	pop := circuitstart.DefaultRelayParams(24)
	sc := circuitstart.Scenario{
		Name:     "policy-shootout",
		Seed:     1,
		Topology: circuitstart.Topology{Population: &pop},
		Circuits: circuitstart.CircuitSet{
			Count:        16,
			TransferSize: 300 * circuitstart.Kilobyte,
			Download:     true,
			// Sixteen downloads arriving at ~20/s: a short open-loop
			// burst rather than the paper's synchronized start.
			Arrival: circuitstart.Arrival{Kind: circuitstart.ArrivePoisson, Rate: 20},
		},
		Arms: []circuitstart.Arm{
			{Name: "circuitstart", Transport: circuitstart.TransportOptions{}},
			{Name: "backtap", Transport: circuitstart.TransportOptions{Policy: circuitstart.PolicyBackTap}},
			{Name: "slowstart", Transport: circuitstart.TransportOptions{Policy: circuitstart.PolicySlowStart}},
			{Name: "fixed-50", Transport: circuitstart.TransportOptions{Policy: circuitstart.PolicyFixed, FixedWindow: 50}},
		},
		Horizon:      600 * circuitstart.Second,
		Replications: 3,
	}

	res, err := circuitstart.Runner{Workers: runtime.NumCPU()}.Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d circuits × %d arms × %d reps, Poisson downloads\n\n",
		sc.Name, sc.Circuits.Count, len(sc.Arms), sc.Replications)
	if err := res.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, arm := range res.Arms[1:] {
		gap := res.MedianGap(arm.Name, "circuitstart")
		fmt.Printf("median TTLB vs circuitstart: %-12s %+.3f s\n", arm.Name, gap)
	}

	fmt.Fprintln(os.Stderr, "\ntip: 'go run ./cmd/circuitsim scenario -workers 8 -csv cdf.csv' runs a sweep from the CLI")
}
