// Overload: what happens when relays are the scarce resource. An
// interactive-vs-bulk circuit mix is crammed onto two shared guard/exit
// relay pairs behind a saturated backbone trunk, and every relay runs a
// resource manager — at most 6 circuits and 128 kB of buffered cells,
// evicting the heaviest circuit beyond that. The grid is CircuitStart
// vs classic slow start × FIFO vs Tor-style EWMA quiet-circuit
// scheduling, so the result separates what the startup policy buys from
// what the relay scheduler buys: EWMA lets the small interactive
// downloads slip past the bulk flows (higher Jain fairness over TTLB),
// while the kill counters and memory high-water marks show the resource
// manager keeping each relay inside its envelope.
package main

import (
	"fmt"
	"log"
	"os"

	"circuitstart"
)

func main() {
	// The canonical overload ablation: 8 interactive (50 kB) + 8 bulk
	// (2 MB) circuits round-robined onto 2 relay pairs behind a
	// 16 Mbit/s trunk, each relay capped at 6 circuits / 128 kB with
	// kill-heaviest eviction.
	p := circuitstart.DefaultOverloadParams()
	res, err := circuitstart.AblationOverload(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("overload: %d interactive (%s) + %d bulk (%s) circuits on %d relay pairs behind a %s trunk, caps %s\n\n",
		p.CircuitPairs, p.Interactive, p.CircuitPairs, p.Bulk, p.RelayPairs, p.TrunkRate, p.Limits.Label())
	if err := res.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The per-arm resource story: how fairly TTLB was shared across the
	// surviving circuits, and how hard the resource managers had to work
	// to keep the relays inside their envelope.
	fmt.Println()
	for _, arm := range res.Arms {
		rs := arm.Net.Resource
		killed := 0
		for _, o := range arm.Circuits {
			if o.Killed {
				killed++
			}
		}
		fmt.Printf("%s: Jain %.3f over %d finishers; admitted %d, rejected %d, killed %d (%d mid-run), mem high-water %s\n",
			arm.Name, arm.JainTTLB(), arm.TTLB.Len(), rs.Admitted, rs.Rejected, rs.Killed, killed, rs.MemHighWater)
	}
}
