// Faults: what a startup policy costs when the network misbehaves.
// CircuitStart and classic slow start run the same downloads on the
// same two-switch topology while three fault classes fire in
// sequence — Gilbert–Elliott burst loss on one guard's access links, a
// relay hang (a blackhole with the relay still nominally "up"), and a
// backbone trunk flap that darkens every circuit at once. Endpoint
// stall detection is armed on both arms: a download with no progress
// for a few RTOs tears down its circuit and rebuilds under capped
// exponential backoff. Because every recovered download pays a fresh
// startup, the comparison isolates the resilience value of reaching
// full rate quickly: CircuitStart's recoveries cost a path handshake,
// slow start's cost a handshake plus a full ramp — visible here as
// lower median time-to-recovery, higher availability and higher
// goodput-under-fault.
package main

import (
	"fmt"
	"log"
	"os"

	"circuitstart"
)

func main() {
	// The canonical resilience ablation: 8 downloads of 1.5 MB over 2
	// relay pairs behind a 16 Mbit/s trunk. Burst loss runs from 2 s to
	// 20 s, one guard hangs at 4 s for 6 s, and the trunk flaps at 12 s
	// for 3 s; each download may rebuild up to 8 times.
	p := circuitstart.DefaultFaultsParams()
	res, err := circuitstart.AblationFaults(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("faults: %d downloads (%s each) on %d relay pairs behind a %s trunk; burst loss %v–%v, hang at %v, trunk flap at %v\n\n",
		p.Circuits, p.TransferSize, p.RelayPairs, p.TrunkRate,
		p.LossFrom, p.LossUntil, p.HangAt, p.FlapAt)
	if err := res.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The recovery story per arm: how often downloads stalled, how fast
	// they came back, and what the fault schedule cost in availability
	// and goodput.
	fmt.Println()
	for _, arm := range res.Arms {
		r := arm.Resilience
		fmt.Printf("%s: %d stalls, %d recoveries (median TTR %.3fs), %d retries, %d abandoned; availability %.4f, goodput %.1f kbit/s\n",
			arm.Name, r.Stalls, r.Recoveries, r.TTR.Quantile(0.5),
			r.Retries, r.Abandoned, r.Availability(), r.Goodput()*8/1000)
	}
}
