// Benchmark harness: one benchmark per figure/panel of the paper plus
// one per ablation in DESIGN.md's experiment index. Each benchmark runs
// the full experiment per iteration and reports the paper's headline
// quantities as custom metrics (b.ReportMetric), so
//
//	go test -bench=. -benchmem
//
// regenerates every number in EXPERIMENTS.md.
package circuitstart_test

import (
	"runtime"
	"strconv"
	"testing"

	"circuitstart"
	"circuitstart/internal/experiments"
)

// skipIfShort skips a paper-scale benchmark under -short: every
// benchmark in this file regenerates a full figure or ablation, which
// is seconds of simulated traffic per iteration.
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("paper-scale experiment")
	}
}

// BenchmarkFig1CwndTraceNear regenerates Figure 1 (upper left): source
// cwnd with the bottleneck one hop away. Metrics: the startup exit
// window relative to the model optimum and the convergence time.
func BenchmarkFig1CwndTraceNear(b *testing.B) {
	skipIfShort(b)
	b.ReportAllocs()
	benchCwndTrace(b, 1)
}

// BenchmarkFig1CwndTraceFar regenerates Figure 1 (upper right): the
// bottleneck three hops away.
func BenchmarkFig1CwndTraceFar(b *testing.B) {
	skipIfShort(b)
	b.ReportAllocs()
	benchCwndTrace(b, 3)
}

func benchCwndTrace(b *testing.B, distance int) {
	var r circuitstart.CwndTraceResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = circuitstart.Fig1CwndTrace(circuitstart.DefaultCwndTraceParams(distance))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.OptimalCells, "optimal_cells")
	b.ReportMetric(r.ExitCwnd, "exit_cells")
	b.ReportMetric(r.PeakCells, "peak_cells")
	if r.SettleTime >= 0 {
		b.ReportMetric(r.SettleTime.Milliseconds(), "settle_ms")
	}
}

// BenchmarkFig1DownloadCDF regenerates Figure 1 (lower): the download
// time CDF over 50 concurrent circuits, with vs without CircuitStart.
// Metrics: both medians and the median gap in milliseconds.
func BenchmarkFig1DownloadCDF(b *testing.B) {
	skipIfShort(b)
	b.ReportAllocs()
	var res circuitstart.CDFResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = circuitstart.Fig1DownloadCDF(circuitstart.DefaultCDFParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	with, without := res.Arm("circuitstart"), res.Arm("backtap")
	b.ReportMetric(with.TTLB.Median()*1000, "median_with_ms")
	b.ReportMetric(without.TTLB.Median()*1000, "median_without_ms")
	b.ReportMetric((without.TTLB.Median()-with.TTLB.Median())*1000, "median_gain_ms")
	b.ReportMetric(maxHorizontalGap(res)*1000, "max_gain_ms")
}

// maxHorizontalGap returns the largest time difference between the two
// CDFs at equal quantiles — the paper's "up to 0.5 seconds".
func maxHorizontalGap(res circuitstart.CDFResult) float64 {
	with, without := res.Arm("circuitstart"), res.Arm("backtap")
	ws, wos := with.TTLB.Sorted(), without.TTLB.Sorted()
	n := len(ws)
	if len(wos) < n {
		n = len(wos)
	}
	best := 0.0
	for i := 0; i < n; i++ {
		if gap := wos[i] - ws[i]; gap > best {
			best = gap
		}
	}
	return best
}

// BenchmarkAblationGamma sweeps the exit threshold γ ∈ {1,2,4,8,16}
// (the paper fixes γ = 4). Metric: exit-window error at γ = 4.
func BenchmarkAblationGamma(b *testing.B) {
	skipIfShort(b)
	b.ReportAllocs()
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = circuitstart.AblationGamma(42, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Label == "gamma=4" {
			b.ReportMetric(r.ExitCwnd/r.OptimalCells, "exit_over_optimal_g4")
		}
	}
}

// BenchmarkAblationCompensation compares exit strategies: measured
// compensation (paper), the literal in-round count, halving, and
// classic slow start. Metric: each arm's exit/optimal ratio.
func BenchmarkAblationCompensation(b *testing.B) {
	skipIfShort(b)
	b.ReportAllocs()
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = circuitstart.AblationCompensation(42)
		if err != nil {
			b.Fatal(err)
		}
	}
	names := []string{"measured", "counted", "halving", "classic"}
	for i, r := range rows {
		b.ReportMetric(r.ExitCwnd/r.OptimalCells, names[i]+"_exit_ratio")
	}
}

// BenchmarkAblationFeedbackClock isolates feedback-round clocking vs
// ACK clocking. Metric: peak window (aggressiveness) per arm.
func BenchmarkAblationFeedbackClock(b *testing.B) {
	skipIfShort(b)
	b.ReportAllocs()
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = circuitstart.AblationFeedbackClock(42)
		if err != nil {
			b.Fatal(err)
		}
	}
	names := []string{"feedback", "ack_comp", "ack_window"}
	for i, r := range rows {
		b.ReportMetric(r.PeakCells, names[i]+"_peak_cells")
	}
}

// BenchmarkAblationBottleneckPosition sweeps the bottleneck hop 1..3.
// Metric: settle time per position (the paper's position-independence
// claim).
func BenchmarkAblationBottleneckPosition(b *testing.B) {
	skipIfShort(b)
	b.ReportAllocs()
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = circuitstart.AblationBottleneckPosition(42, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, r := range rows {
		if r.SettleTime >= 0 {
			b.ReportMetric(r.SettleTime.Milliseconds(), names3[i]+"_settle_ms")
		}
	}
}

var names3 = []string{"hop1", "hop2", "hop3"}

// BenchmarkAblationConcurrency sweeps concurrent circuits {10, 25, 50}.
// Metric: median gain per level.
func BenchmarkAblationConcurrency(b *testing.B) {
	skipIfShort(b)
	b.ReportAllocs()
	var rows []experiments.ConcurrencyRow
	var err error
	levels := []int{10, 25, 50}
	for i := 0; i < b.N; i++ {
		rows, err = circuitstart.AblationConcurrency(42, levels)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric((r.MedianWithout-r.MedianWith)*1000,
			"gain_ms_k"+strconv.Itoa(r.Circuits))
	}
}

// BenchmarkExtensionDynamicRestart regenerates the future-work
// capacity-step experiment. Metrics: recovery time with and without the
// re-probe extension.
func BenchmarkExtensionDynamicRestart(b *testing.B) {
	skipIfShort(b)
	b.ReportAllocs()
	base := circuitstart.DynamicRestartParams{
		Seed:       42,
		BeforeRate: circuitstart.Mbps(8),
		AfterRate:  circuitstart.Mbps(40),
		StepAt:     circuitstart.Second,
		Horizon:    5 * circuitstart.Second,
	}
	var with, without experiments.DynamicRestartResult
	var err error
	for i := 0; i < b.N; i++ {
		p := base
		p.RestartRounds = 3
		with, err = circuitstart.ExtensionDynamicRestart(p)
		if err != nil {
			b.Fatal(err)
		}
		p.RestartRounds = -1
		without, err = circuitstart.ExtensionDynamicRestart(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	if with.RecoveryTime >= 0 {
		b.ReportMetric(float64(with.RecoveryTime.Milliseconds()), "recovery_with_ms")
	}
	if without.RecoveryTime >= 0 {
		b.ReportMetric(float64(without.RecoveryTime.Milliseconds()), "recovery_without_ms")
	}
}

// BenchmarkAblationExtensions quantifies the default-on dynamic
// adaptation extensions (DESIGN.md deviations): settle time per arm on
// the distant-bottleneck trace.
func BenchmarkAblationExtensions(b *testing.B) {
	skipIfShort(b)
	b.ReportAllocs()
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationExtensions(42)
		if err != nil {
			b.Fatal(err)
		}
	}
	names := []string{"both", "remeasure", "reprobe", "pure"}
	for i, r := range rows {
		if r.SettleTime >= 0 {
			b.ReportMetric(r.SettleTime.Milliseconds(), names[i]+"_settle_ms")
		}
		b.ReportMetric(r.FinalCells/r.OptimalCells, names[i]+"_final_ratio")
	}
}

// BenchmarkAblationVegas sweeps the avoidance thresholds (α, β) around
// BackTap's (2, 4). Metric: final window / optimal per pair.
func BenchmarkAblationVegas(b *testing.B) {
	skipIfShort(b)
	b.ReportAllocs()
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationVegas(42, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	names := []string{"a1b2", "a2b4", "a3b6", "a4b8", "a6b12"}
	for i, r := range rows {
		b.ReportMetric(r.FinalCells/r.OptimalCells, names[i]+"_final_ratio")
	}
}

// BenchmarkScenarioCDFWorkers1 and BenchmarkScenarioCDFWorkersNumCPU
// run the Figure-1 aggregate scenario (50 circuits × 2 policy arms)
// through the declarative Runner serially and with one worker per CPU.
// The Results are bit-identical; only the wall-clock differs — compare
// ns/op between the two to see the multi-core speedup.
func BenchmarkScenarioCDFWorkers1(b *testing.B) {
	benchScenarioWorkers(b, 1)
}

func BenchmarkScenarioCDFWorkersNumCPU(b *testing.B) {
	benchScenarioWorkers(b, runtime.NumCPU())
}

func benchScenarioWorkers(b *testing.B, workers int) {
	skipIfShort(b)
	b.ReportAllocs()
	sc := circuitstart.DefaultCDFParams().ToScenario()
	var res *circuitstart.ScenarioResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = circuitstart.Runner{Workers: workers}.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Arm("circuitstart").TTLB.Median()*1000, "median_with_ms")
}
