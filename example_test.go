package circuitstart_test

import (
	"fmt"
	"time"

	"circuitstart"
)

// Build a three-relay circuit with an 8 Mbit/s middle bottleneck, run
// a 500 kB download with CircuitStart on every hop, then tear the
// circuit down and verify the relays released its state.
func Example() {
	n := circuitstart.NewNetwork(42)
	fast := circuitstart.Symmetric(circuitstart.Mbps(100), 5*time.Millisecond, 0)
	slow := circuitstart.Symmetric(circuitstart.Mbps(8), 5*time.Millisecond, 0)
	n.MustAddRelay("guard", fast)
	n.MustAddRelay("middle", slow)
	n.MustAddRelay("exit", fast)

	c := n.MustBuildCircuit(circuitstart.CircuitSpec{
		Source:       "client",
		Sink:         "server",
		SourceAccess: fast,
		SinkAccess:   fast,
		Relays:       []circuitstart.NodeID{"guard", "middle", "exit"},
	})
	c.Transfer(500*circuitstart.Kilobyte, nil)
	n.Run()

	ttlb, done := c.TTLB()
	fmt.Printf("done=%v ttlb=%v\n", done, ttlb.Round(time.Millisecond))

	c.Teardown()
	fmt.Printf("closed=%v circuits at middle relay: %d\n",
		c.Closed(), n.Relay("middle").Circuits())
	// Output:
	// done=true ttlb=746ms
	// closed=true circuits at middle relay: 0
}

// The declarative API: the same comparison the paper's lower panel
// makes — with vs without CircuitStart — as a two-arm scenario on the
// parallel runner. The result is bit-identical for any Workers value.
func ExampleRunner() {
	pop := circuitstart.DefaultRelayParams(12)
	res, err := circuitstart.Runner{Workers: 2}.Run(circuitstart.Scenario{
		Name:     "example",
		Seed:     42,
		Topology: circuitstart.Topology{Population: &pop},
		Circuits: circuitstart.CircuitSet{
			Count:        6,
			TransferSize: 200 * circuitstart.Kilobyte,
		},
		Arms: []circuitstart.Arm{
			{Name: "with"},
			{Name: "without", Transport: circuitstart.TransportOptions{Policy: circuitstart.PolicyBackTap}},
		},
		Horizon: 600 * circuitstart.Second,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("with:    median %.3f s over %d transfers\n",
		res.Arm("with").TTLB.Median(), res.Arm("with").TTLB.Len())
	fmt.Printf("without: median %.3f s over %d transfers\n",
		res.Arm("without").TTLB.Median(), res.Arm("without").TTLB.Len())
	// Output:
	// with:    median 0.589 s over 6 transfers
	// without: median 0.864 s over 6 transfers
}
