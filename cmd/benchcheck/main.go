// Command benchcheck is the benchmark-regression gate: it re-runs the
// headline benchmarks (the shared bodies in internal/benchcases) and
// compares them against the latest committed BENCH_<n>.json snapshot.
// It fails when allocs/op grows (the zero-alloc hot paths must report
// exactly zero), on a ns/op regression beyond -tolerance on the
// per-layer microbenchmarks, or when a gated benchmark disappears — a
// rename must not silently disarm the gate. The ns/op gate only arms
// when the baseline was recorded on comparable hardware (same OS,
// architecture and CPU count); the allocation gates are
// machine-independent and always enforced.
//
// CI runs it on every PR ('go run ./cmd/benchcheck'); developers run
// the same command locally before committing performance-sensitive
// changes. After an intentional, understood change in the numbers,
// commit a fresh snapshot with 'circuitsim bench -json' — the
// trajectory of BENCH_<n>.json files is the performance history.
package main

import (
	"flag"
	"fmt"
	"os"

	"circuitstart/internal/benchcases"
	"circuitstart/internal/traceio"
)

func main() {
	dir := flag.String("dir", ".", "directory holding the BENCH_<n>.json snapshots")
	baseline := flag.String("baseline", "", "explicit baseline snapshot (default: latest BENCH_<n>.json in -dir)")
	tolerance := flag.Float64("tolerance", 0.30, "allowed fractional ns/op regression on the gated benchmarks")
	flag.Parse()

	if err := run(*dir, *baseline, *tolerance); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(dir, baselinePath string, tolerance float64) error {
	if baselinePath == "" {
		var err error
		baselinePath, err = benchcases.LatestSnapshotPath(dir)
		if err != nil {
			return err
		}
	}
	base, err := benchcases.ReadSnapshot(baselinePath)
	if err != nil {
		return err
	}
	fmt.Printf("baseline %s (%s, %s/%s, %d CPUs)\n", baselinePath, base.Date, base.GOOS, base.GOARCH, base.CPUs)
	if !base.SameEnvironment() {
		// Wall-clock numbers from different hardware are noise, not a
		// baseline: gating on them would fail every PR on a slower
		// runner and mask regressions on a faster one. The alloc gates
		// are machine-independent and stay armed; the ns/op gate arms
		// whenever the latest snapshot was recorded on comparable
		// hardware.
		fmt.Println("note: baseline recorded on different hardware; ns/op gate skipped, alloc gates enforced")
		tolerance = -1
	}

	cur := benchcases.Collect()
	tbl := traceio.NewTable("benchmark", "base_ns_op", "ns_op", "delta", "base_allocs", "allocs")
	byName := make(map[string]benchcases.Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		byName[r.Name] = r
	}
	for _, r := range cur.Benchmarks {
		b, ok := byName[r.Name]
		if !ok {
			tbl.AddRowf(r.Name, "-", r.NsPerOp, "new", "-", r.AllocsPerOp)
			continue
		}
		delta := "-"
		if b.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", (r.NsPerOp/b.NsPerOp-1)*100)
		}
		tbl.AddRowf(r.Name, b.NsPerOp, r.NsPerOp, delta, b.AllocsPerOp, r.AllocsPerOp)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}

	findings := benchcases.Compare(base, cur, tolerance)
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Println("FAIL:", f)
		}
		return fmt.Errorf("%d regression(s) against %s", len(findings), baselinePath)
	}
	fmt.Println("benchmarks within tolerance of the baseline")
	return nil
}
