package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"circuitstart/internal/spec"
	"circuitstart/internal/sweep"
)

// dimFlagDefs declares the sweep CLI's dimension flags. Each flag name
// must match its spec.Dim JSON field modulo unit suffixes — the drift
// test (TestSweepFlagsMatchSpecFields) enforces the bijection, so the
// CLI and the wire schema cannot wander apart.
var dimFlagDefs = []struct {
	flag  string // CLI flag name
	field string // spec.Dim JSON field it fills
	usage string
}{
	{"policies", "policies", "dimension: startup policies (comma-separated)"},
	{"hopcounts", "hopcounts", "dimension: relays per circuit (comma-separated)"},
	{"bandwidths", "bandwidths_mbps", "dimension: bottleneck access rate [Mbit/s] (trace) or population median (population)"},
	{"gammas", "gammas", "dimension: γ exit thresholds (comma-separated)"},
	{"sizes", "sizes_bytes", "dimension: transfer sizes [bytes] (comma-separated)"},
	{"sizedists", "size_dists", "dimension: transfer-size distributions (comma-separated; e.g. lognormal:500000:0.8)"},
	{"counts", "counts", "dimension: concurrent circuit counts (comma-separated)"},
	{"trains", "trains", "dimension: cell-train coalescing caps (comma-separated; ≤1 = untrained)"},
	{"shardcounts", "shardcounts", "dimension: trial shard counts (comma-separated; needs -switches)"},
	{"faults", "faults", "dimension: fault presets (comma-separated)"},
	{"schedulers", "schedulers", "dimension: relay circuit schedulers (comma-separated; fifo, ewma)"},
	{"seeds", "seeds", "dimension: independent base seeds (comma-separated)"},
}

// baseFlagFields maps each base flag to the spec.Base JSON field it
// fills — the drift test walks this table too.
var baseFlagFields = map[string]string{
	"base":     "kind",
	"seed":     "", // File.Seed, not a base field
	"arms":     "arms",
	"hops":     "hops",
	"distance": "distance",
	"relays":   "relays",
	"circuits": "circuits",
	"switches": "switches",
	"size":     "size_bytes",
	"sizedist": "size_dist",
	"download": "download",
	"horizon":  "horizon_sec",
	"spread":   "spread_ms",
}

// runSweep drives the declarative grid engine from the command line: a
// base scenario (the single-circuit trace topology or a generated
// relay population) crossed with the dimension flags, or an arbitrary
// grid from a versioned spec file (internal/spec — the same schema the
// serve daemon accepts). Per-point rows stream to -out (CSV or JSON
// lines, by extension); the in-memory table's summary prints to
// stdout. Grid order — and therefore the output bytes — is identical
// for any -workers value. With -remote the sweep executes on a
// `circuitsim serve` daemon instead, with byte-identical outputs.
func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	specPath := fs.String("spec", "", "JSON grid spec file (overrides the flag-built grid; see DESIGN.md)")
	base := fs.String("base", "trace", "flag-built grid base: trace | population")
	seed := fs.Int64("seed", 42, "experiment seed (shared by every grid point)")
	arms := fs.String("arms", "circuitstart", "comma-separated base policy arms")
	hops := fs.Int("hops", 3, "relays per circuit of the base (trace: also the path length)")
	distance := fs.Int("distance", 3, "bottleneck distance in hops (trace base)")
	relays := fs.Int("relays", 40, "relay population size (population base)")
	circuits := fs.Int("circuits", 50, "concurrent circuits (population base)")
	switches := fs.Int("switches", 0, "home the population behind a backbone ring of this many switches (population base; 0 = star)")
	size := fs.Int64("size", 500_000, "transfer size per circuit [bytes] (population base)")
	sizeDist := fs.String("sizedist", "", "transfer-size distribution (population base; overrides -size; e.g. pareto:100000:1.2:10000000)")
	download := fs.Bool("download", false, "run transfers server → client through the onion (population base)")
	horizon := fs.Duration("horizon", 600*time.Second, "per-trial virtual time bound (population base)")
	spread := fs.Duration("spread", 200*time.Millisecond, "uniform start stagger window (population base)")
	dimFlags := make([]*string, len(dimFlagDefs))
	for i, def := range dimFlagDefs {
		dimFlags[i] = fs.String(def.flag, "", def.usage)
	}
	sample := fs.Int("sample", 0, "cap the grid to a seeded sample of this many points (0 = full)")
	resume := fs.Int("resume", 0, "skip grid points with index below this (append to a prior -out)")
	workers := fs.Int("workers", 0, "concurrent grid points (0 = one per CPU)")
	pointWorkers := fs.Int("point-workers", 0, "worker pool per point's runner (0 = 1)")
	remote := fs.String("remote", "", "run on a circuitsim serve daemon at this base URL instead of in-process")
	outPath := fs.String("out", "", "stream per-point rows to this file (.csv or .jsonl)")
	format := fs.String("format", "", "output format: csv | jsonl (default: by -out extension)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var file *spec.File
	var err error
	if *specPath != "" {
		data, rerr := os.ReadFile(*specPath)
		if rerr != nil {
			return rerr
		}
		file, err = spec.Parse(data)
	} else {
		file, err = specFromFlags(fs, *base, *seed, splitList(*arms), *hops, *distance,
			*relays, *circuits, *switches, *size, *sizeDist, *download,
			*horizon, *spread, *sample, dimFlags)
	}
	if err != nil {
		return err
	}

	fmtName := ""
	if *outPath != "" {
		fmtName = pickFormat(*format, *outPath)
		if fmtName != "csv" && fmtName != "jsonl" {
			if *format != "" {
				return fmt.Errorf("unknown -format %q (want csv or jsonl)", *format)
			}
			return fmt.Errorf("cannot infer output format from %q; pass -format csv|jsonl", *outPath)
		}
	}

	if *remote != "" {
		if *resume > 0 {
			return fmt.Errorf("-resume is local-only (the daemon's point cache already skips completed points)")
		}
		return runSweepRemote(*remote, file, *outPath, fmtName)
	}

	sw, err := file.Sweep()
	if err != nil {
		return err
	}

	var sinks []sweep.Sink
	if *outPath != "" {
		// Resuming into an existing file appends the remaining rows
		// after the completed prefix (no second header); everything
		// else starts a fresh file.
		appendRows := false
		if *resume > 0 {
			if fi, err := os.Stat(*outPath); err == nil && fi.Size() > 0 {
				appendRows = true
			}
		}
		flags := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if appendRows {
			flags = os.O_WRONLY | os.O_APPEND
		}
		f, ferr := os.OpenFile(*outPath, flags, 0o644)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		switch {
		case fmtName == "csv" && appendRows:
			sinks = append(sinks, sweep.NewCSVAppendSink(f))
		case fmtName == "csv":
			sinks = append(sinks, sweep.NewCSVSink(f))
		case appendRows:
			sinks = append(sinks, sweep.NewJSONLAppendSink(f))
		default:
			sinks = append(sinks, sweep.NewJSONLSink(f))
		}
	}

	eng := sweep.Engine{Workers: *workers, PointWorkers: *pointWorkers, Resume: *resume}
	tbl, err := eng.Run(sw, sinks...)
	if err != nil {
		return err
	}

	if err := tbl.WriteSummary(os.Stdout); err != nil {
		return err
	}
	if *outPath != "" {
		fmt.Printf("rows written to %s\n", *outPath)
	}
	return nil
}

// specFromFlags renders the flag-built grid into the same spec.File a
// spec file or HTTP body parses to — one code path from either front
// door to the engine. Flags the user left at their default are omitted
// when they don't apply to the base kind, so `-base trace` doesn't
// trip the population-field validation.
func specFromFlags(fs *flag.FlagSet, kind string, seed int64, arms []string,
	hops, distance, relays, circuits, switches int, size int64, sizeDist string,
	download bool, horizon, spread time.Duration, sample int, dimFlags []*string) (*spec.File, error) {

	changed := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { changed[f.Name] = true })
	if changed["arms"] && len(arms) == 0 {
		return nil, fmt.Errorf("sweep: -arms named no policies")
	}

	f := &spec.File{
		Version: spec.Version,
		Name:    "cli-sweep",
		Seed:    &seed,
		Base:    spec.Base{Kind: kind, Arms: arms, Hops: hops},
		Sample:  sample,
	}
	switch kind {
	case "population":
		f.Base.Relays = relays
		f.Base.Circuits = circuits
		f.Base.Switches = switches
		f.Base.Download = download
		f.Base.HorizonSec = horizon.Seconds()
		spreadMs := float64(spread) / float64(time.Millisecond)
		f.Base.SpreadMs = &spreadMs
		if sizeDist != "" {
			f.Base.SizeDist = sizeDist
		} else {
			f.Base.SizeBytes = size
		}
	default:
		// The trace base rejects population fields by name; only carry
		// the ones the user actually set, so defaults don't trip it.
		f.Base.Distance = distance
		for _, flagName := range []string{"relays", "circuits", "switches", "size", "sizedist", "download", "spread"} {
			if changed[flagName] {
				return nil, fmt.Errorf("sweep: -%s applies only to -base population", flagName)
			}
		}
		if changed["horizon"] {
			f.Base.HorizonSec = horizon.Seconds()
		}
	}

	for i, def := range dimFlagDefs {
		raw := splitList(*dimFlags[i])
		if len(raw) == 0 {
			continue
		}
		var d spec.Dim
		var err error
		switch def.field {
		case "gammas":
			d.Gammas, err = parseFloats(raw)
		case "policies":
			d.Policies = raw
		case "bandwidths_mbps":
			d.BandwidthsMbps, err = parseFloats(raw)
		case "hopcounts":
			d.HopCounts, err = parseInts(raw)
		case "sizes_bytes":
			d.SizesBytes, err = parseInt64s(raw)
		case "size_dists":
			d.SizeDists = raw
		case "counts":
			d.Counts, err = parseInts(raw)
		case "trains":
			d.Trains, err = parseInts(raw)
		case "shardcounts":
			d.ShardCounts, err = parseInts(raw)
		case "faults":
			d.Faults = raw
		case "schedulers":
			d.Schedulers = raw
		case "seeds":
			d.Seeds, err = parseInt64s(raw)
		}
		if err != nil {
			return nil, fmt.Errorf("sweep: -%s: %w", def.flag, err)
		}
		f.Dimensions = append(f.Dimensions, d)
	}
	if len(f.Dimensions) == 0 {
		names := make([]string, len(dimFlagDefs))
		for i, def := range dimFlagDefs {
			names[i] = "-" + def.flag
		}
		return nil, fmt.Errorf("sweep: no dimensions (pass at least one of %s, or a -spec file)", strings.Join(names, ", "))
	}

	// Round-trip through the canonical codec: the flag grid gets the
	// identical validation and defaults a spec file or HTTP body gets.
	data, err := spec.Marshal(f)
	if err != nil {
		return nil, err
	}
	return spec.Parse(data)
}

// pickFormat resolves the output format from -format or the extension.
func pickFormat(format, path string) string {
	if format != "" {
		return format
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return "csv"
	case ".jsonl", ".ndjson":
		return "jsonl"
	}
	return ""
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseFloats(raw []string) ([]float64, error) {
	out := make([]float64, len(raw))
	for i, r := range raw {
		v, err := strconv.ParseFloat(r, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", r)
		}
		out[i] = v
	}
	return out, nil
}

func parseInts(raw []string) ([]int, error) {
	out := make([]int, len(raw))
	for i, r := range raw {
		v, err := strconv.Atoi(r)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", r)
		}
		out[i] = v
	}
	return out, nil
}

func parseInt64s(raw []string) ([]int64, error) {
	out := make([]int64, len(raw))
	for i, r := range raw {
		v, err := strconv.ParseInt(r, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", r)
		}
		out[i] = v
	}
	return out, nil
}
