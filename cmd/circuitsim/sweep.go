package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/experiments"
	"circuitstart/internal/faults"
	"circuitstart/internal/netem"
	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
	"circuitstart/internal/sweep"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// runSweep drives the declarative grid engine from the command line: a
// base scenario (the single-circuit trace topology or a generated
// relay population) crossed with the dimension flags, or an arbitrary
// grid from a JSON spec file. Per-point rows stream to -out (CSV or
// JSON lines, by extension); the in-memory table's summary prints to
// stdout. Grid order — and therefore the output bytes — is identical
// for any -workers value.
func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	specPath := fs.String("spec", "", "JSON grid spec file (overrides the flag-built grid; see DESIGN.md)")
	base := fs.String("base", "trace", "flag-built grid base: trace | population")
	seed := fs.Int64("seed", 42, "experiment seed (shared by every grid point)")
	arms := fs.String("arms", "circuitstart", "comma-separated base policy arms")
	hops := fs.Int("hops", 3, "relays per circuit of the base (trace: also the path length)")
	distance := fs.Int("distance", 3, "bottleneck distance in hops (trace base)")
	relays := fs.Int("relays", 40, "relay population size (population base)")
	circuits := fs.Int("circuits", 50, "concurrent circuits (population base)")
	switches := fs.Int("switches", 0, "home the population behind a backbone ring of this many switches (population base; 0 = star)")
	size := fs.Int64("size", 500_000, "transfer size per circuit [bytes] (population base)")
	horizon := fs.Duration("horizon", 600*time.Second, "per-trial virtual time bound (population base)")
	spread := fs.Duration("spread", 200*time.Millisecond, "uniform start stagger window (population base)")
	gammas := fs.String("gammas", "", "dimension: γ exit thresholds (comma-separated)")
	policies := fs.String("policies", "", "dimension: startup policies (comma-separated)")
	bandwidths := fs.String("bandwidths", "", "dimension: bottleneck access rate [Mbit/s] (trace) or population median (population)")
	hopCounts := fs.String("hopcounts", "", "dimension: relays per circuit (comma-separated)")
	sizes := fs.String("sizes", "", "dimension: transfer sizes [bytes] (comma-separated)")
	counts := fs.String("counts", "", "dimension: concurrent circuit counts (comma-separated)")
	trains := fs.String("trains", "", "dimension: cell-train coalescing caps (comma-separated; ≤1 = untrained)")
	shardCounts := fs.String("shardcounts", "", "dimension: trial shard counts (comma-separated; needs -switches)")
	faultNames := fs.String("faults", "", "dimension: fault presets (comma-separated; "+strings.Join(faults.PresetNames(), ", ")+")")
	sample := fs.Int("sample", 0, "cap the grid to a seeded sample of this many points (0 = full)")
	resume := fs.Int("resume", 0, "skip grid points with index below this (append to a prior -out)")
	workers := fs.Int("workers", 0, "concurrent grid points (0 = one per CPU)")
	pointWorkers := fs.Int("point-workers", 0, "worker pool per point's runner (0 = 1)")
	outPath := fs.String("out", "", "stream per-point rows to this file (.csv or .jsonl)")
	format := fs.String("format", "", "output format: csv | jsonl (default: by -out extension)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sw sweep.Sweep
	var err error
	if *specPath != "" {
		data, rerr := os.ReadFile(*specPath)
		if rerr != nil {
			return rerr
		}
		sw, err = parseSweepSpec(data)
	} else {
		cfg := sweepConfig{
			name: "cli-sweep", kind: *base, seed: *seed, arms: splitList(*arms),
			hops: *hops, distance: *distance,
			relays: *relays, circuits: *circuits, switches: *switches, size: *size,
			horizon: *horizon, spread: *spread,
			sample: *sample,
		}
		for _, d := range []struct {
			kind, raw string
		}{
			{"policy", *policies},
			{"hops", *hopCounts},
			{"bandwidth", *bandwidths},
			{"gamma", *gammas},
			{"size", *sizes},
			{"count", *counts},
			{"train", *trains},
			{"shards", *shardCounts},
			{"faults", *faultNames},
		} {
			if d.raw != "" {
				cfg.dims = append(cfg.dims, dimRequest{kind: d.kind, raw: splitList(d.raw)})
			}
		}
		sw, err = cfg.build()
	}
	if err != nil {
		return err
	}

	var sinks []sweep.Sink
	if *outPath != "" {
		fmtName := pickFormat(*format, *outPath)
		if fmtName != "csv" && fmtName != "jsonl" {
			if *format != "" {
				return fmt.Errorf("unknown -format %q (want csv or jsonl)", *format)
			}
			return fmt.Errorf("cannot infer output format from %q; pass -format csv|jsonl", *outPath)
		}
		// Resuming into an existing file appends the remaining rows
		// after the completed prefix (no second header); everything
		// else starts a fresh file.
		appendRows := false
		if *resume > 0 {
			if fi, err := os.Stat(*outPath); err == nil && fi.Size() > 0 {
				appendRows = true
			}
		}
		flags := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if appendRows {
			flags = os.O_WRONLY | os.O_APPEND
		}
		f, ferr := os.OpenFile(*outPath, flags, 0o644)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		switch {
		case fmtName == "csv" && appendRows:
			sinks = append(sinks, sweep.NewCSVAppendSink(f))
		case fmtName == "csv":
			sinks = append(sinks, sweep.NewCSVSink(f))
		case appendRows:
			sinks = append(sinks, sweep.NewJSONLAppendSink(f))
		default:
			sinks = append(sinks, sweep.NewJSONLSink(f))
		}
	}

	eng := sweep.Engine{Workers: *workers, PointWorkers: *pointWorkers, Resume: *resume}
	tbl, err := eng.Run(sw, sinks...)
	if err != nil {
		return err
	}

	fmt.Printf("sweep %s: %d points over %d dimensions (full grid %d)\n",
		sw.Name, tbl.Meta.Points, len(tbl.Meta.Dimensions), tbl.Meta.GridSize)
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}
	if err := tbl.WriteMarginals(os.Stdout); err != nil {
		return err
	}
	if *outPath != "" {
		fmt.Printf("rows written to %s\n", *outPath)
	}
	return nil
}

// sweepConfig is the flag- or spec-level grid description before it is
// rendered into a sweep.Sweep.
type sweepConfig struct {
	name            string
	kind            string
	seed            int64
	arms            []string
	hops, distance  int
	relays          int
	circuits        int
	switches        int
	size            int64
	horizon, spread time.Duration
	sample          int
	sampleSeed      int64
	dims            []dimRequest
}

// dimRequest is one requested axis, still in string form.
type dimRequest struct {
	kind string
	raw  []string
}

// build renders the config into an executable Sweep.
func (c sweepConfig) build() (sweep.Sweep, error) {
	if len(c.arms) == 0 {
		return sweep.Sweep{}, fmt.Errorf("sweep: no base arms")
	}
	armSpecs := make([]scenario.Arm, len(c.arms))
	for i, policy := range c.arms {
		armSpecs[i] = scenario.Arm{Name: policy, Transport: core.TransportOptions{Policy: policy}}
	}

	var baseSc scenario.Scenario
	var traceParams experiments.CwndTraceParams
	switch c.kind {
	case "trace":
		traceParams = experiments.DefaultCwndTraceParams(c.distance)
		traceParams.Seed = c.seed
		traceParams.Hops = c.hops
		if c.distance < 1 || c.distance > c.hops {
			return sweep.Sweep{}, fmt.Errorf("sweep: bottleneck distance %d outside 1..%d", c.distance, c.hops)
		}
		baseSc = traceParams.Scenario(armSpecs)
	case "population":
		pop := workload.DefaultRelayParams(c.relays)
		arrival := scenario.Arrival{}
		if c.spread > 0 {
			arrival = scenario.Arrival{Kind: scenario.ArriveUniform, Spread: c.spread}
		}
		topo := scenario.Topology{Population: &pop}
		if c.switches > 0 {
			spec, err := workload.GenerateBackbone(workload.DefaultBackboneParams(c.relays, c.switches))
			if err != nil {
				return sweep.Sweep{}, fmt.Errorf("sweep: %w", err)
			}
			topo.Fabric = &spec
		}
		baseSc = scenario.Scenario{
			Name:     c.name,
			Seed:     c.seed,
			Topology: topo,
			Circuits: scenario.CircuitSet{
				Count:        c.circuits,
				Hops:         c.hops,
				TransferSize: units.DataSize(c.size),
				Arrival:      arrival,
			},
			Arms:    armSpecs,
			Horizon: sim.Time(c.horizon),
		}
	default:
		return sweep.Sweep{}, fmt.Errorf("sweep: unknown base %q (want trace or population)", c.kind)
	}

	sw := sweep.Sweep{Name: c.name, Base: baseSc, Sample: c.sample, SampleSeed: c.sampleSeed}
	for _, d := range c.dims {
		dim, err := c.buildDim(d, traceParams)
		if err != nil {
			return sweep.Sweep{}, err
		}
		sw.Dimensions = append(sw.Dimensions, dim)
	}
	if len(sw.Dimensions) == 0 {
		return sweep.Sweep{}, fmt.Errorf("sweep: no dimensions (pass at least one of -gammas, -policies, -bandwidths, -hopcounts, -sizes, -counts, -trains, -shardcounts, -faults, or a -spec file)")
	}
	return sw, nil
}

// buildDim renders one axis request into a sweep.Dimension.
func (c sweepConfig) buildDim(d dimRequest, traceParams experiments.CwndTraceParams) (sweep.Dimension, error) {
	if len(d.raw) == 0 {
		return sweep.Dimension{}, fmt.Errorf("sweep: %s axis has no values", d.kind)
	}
	switch d.kind {
	case "gamma":
		vals, err := parseFloats(d.raw)
		if err != nil {
			return sweep.Dimension{}, fmt.Errorf("sweep: -gammas: %w", err)
		}
		return sweep.Gamma(vals...), nil
	case "policy":
		return sweep.Policies(d.raw...)
	case "bandwidth":
		mbps, err := parseFloats(d.raw)
		if err != nil {
			return sweep.Dimension{}, fmt.Errorf("sweep: -bandwidths: %w", err)
		}
		rates := make([]units.DataRate, len(mbps))
		for i, m := range mbps {
			rates[i] = units.Mbps(m)
		}
		if c.kind == "trace" {
			return traceBandwidthDim(c.distance, rates), nil
		}
		return sweep.PopulationBandwidths(rates...), nil
	case "hops":
		ns, err := parseInts(d.raw)
		if err != nil {
			return sweep.Dimension{}, fmt.Errorf("sweep: -hopcounts: %w", err)
		}
		if c.kind == "trace" {
			return traceHopsDim(traceParams, ns), nil
		}
		return sweep.Hops(ns...), nil
	case "size":
		ns, err := parseInts(d.raw)
		if err != nil {
			return sweep.Dimension{}, fmt.Errorf("sweep: -sizes: %w", err)
		}
		sizes := make([]units.DataSize, len(ns))
		for i, n := range ns {
			sizes[i] = units.DataSize(n)
		}
		return sweep.TransferSizes(sizes...), nil
	case "count":
		ns, err := parseInts(d.raw)
		if err != nil {
			return sweep.Dimension{}, fmt.Errorf("sweep: -counts: %w", err)
		}
		return sweep.Circuits(ns...), nil
	case "train":
		ns, err := parseInts(d.raw)
		if err != nil {
			return sweep.Dimension{}, fmt.Errorf("sweep: -trains: %w", err)
		}
		return sweep.DimTrainSize(ns...)
	case "shards":
		ns, err := parseInts(d.raw)
		if err != nil {
			return sweep.Dimension{}, fmt.Errorf("sweep: -shardcounts: %w", err)
		}
		return sweep.DimShards(ns...)
	case "faults":
		return sweep.DimFaults(d.raw...)
	default:
		return sweep.Dimension{}, fmt.Errorf("sweep: unknown axis %q", d.kind)
	}
}

// traceBandwidthDim sweeps the trace base's bottleneck access rate.
// The bottleneck sits at the base distance, clamped to the current
// path length — so it keeps targeting the relay traceHopsDim put the
// bottleneck on when a hops axis shortened the circuit below the base
// distance, whichever order the two axes appear in.
func traceBandwidthDim(distance int, rates []units.DataRate) sweep.Dimension {
	d := sweep.Dimension{Name: "bottleneck_bw"}
	for _, r := range rates {
		r := r
		d.Values = append(d.Values, sweep.Value{
			Label: r.String(),
			Apply: func(sc *scenario.Scenario) error {
				idx := distance
				if n := len(sc.Topology.Relays); idx > n {
					idx = n
				}
				bottleneck := netem.NodeID(fmt.Sprintf("relay-%d", idx))
				for i := range sc.Topology.Relays {
					if sc.Topology.Relays[i].ID == bottleneck {
						sc.Topology.Relays[i].Access.UpRate = r
						sc.Topology.Relays[i].Access.DownRate = r
						return nil
					}
				}
				return fmt.Errorf("explicit topology has no relay %q", bottleneck)
			},
		})
	}
	return d
}

// traceHopsDim sweeps the circuit length of the trace base by
// regenerating the explicit topology and path per value. The
// bottleneck stays at the base distance, clamped to the new length,
// and keeps whatever rate the current scenario's bottleneck relay
// carries — so a bandwidth axis composes with this one in either
// dimension order instead of being silently clobbered by the rebuild.
func traceHopsDim(p experiments.CwndTraceParams, counts []int) sweep.Dimension {
	d := sweep.Dimension{Name: "hops"}
	for _, h := range counts {
		h := h
		d.Values = append(d.Values, sweep.Value{
			Label: fmt.Sprintf("%d", h),
			Apply: func(sc *scenario.Scenario) error {
				if h < 1 {
					return fmt.Errorf("%d hops", h)
				}
				q := p
				q.Hops = h
				if q.BottleneckHop > h {
					q.BottleneckHop = h
				}
				bottleneck := netem.NodeID(fmt.Sprintf("relay-%d", p.BottleneckHop))
				for _, r := range sc.Topology.Relays {
					if r.ID == bottleneck {
						q.BottleneckRate = r.Access.UpRate
					}
				}
				fresh := q.Scenario(nil)
				sc.Topology = fresh.Topology
				sc.Circuits.Paths = fresh.Circuits.Paths
				return nil
			},
		})
	}
	return d
}

// sweepSpec is the JSON grid file schema: a base block plus ordered
// dimension blocks, each carrying exactly one axis list.
type sweepSpec struct {
	Name string `json:"name"`
	// Seed is nullable so an explicit 0 is honoured; omitting the
	// field selects the default 42.
	Seed       *int64         `json:"seed"`
	Base       sweepSpecBase  `json:"base"`
	Dimensions []sweepSpecDim `json:"dimensions"`
	Sample     int            `json:"sample"`
	SampleSeed int64          `json:"sample_seed"`
}

type sweepSpecBase struct {
	// Kind selects the base scenario: "trace" (default) or "population".
	Kind string   `json:"kind"`
	Arms []string `json:"arms"`
	// Trace shape.
	Hops     int `json:"hops"`
	Distance int `json:"distance"`
	// Population shape.
	Relays     int     `json:"relays"`
	Circuits   int     `json:"circuits"`
	Switches   int     `json:"switches"`
	SizeBytes  int64   `json:"size_bytes"`
	HorizonSec float64 `json:"horizon_sec"`
	// SpreadMs is nullable so an explicit 0 (simultaneous arrivals) is
	// honoured; omitting the field selects the default 200 ms stagger.
	SpreadMs *float64 `json:"spread_ms"`
}

type sweepSpecDim struct {
	Gammas         []float64 `json:"gammas,omitempty"`
	Policies       []string  `json:"policies,omitempty"`
	BandwidthsMbps []float64 `json:"bandwidths_mbps,omitempty"`
	Hops           []int     `json:"hops,omitempty"`
	SizesBytes     []int64   `json:"sizes_bytes,omitempty"`
	Counts         []int     `json:"counts,omitempty"`
	Trains         []int     `json:"trains,omitempty"`
	Shards         []int     `json:"shards,omitempty"`
	Faults         []string  `json:"faults,omitempty"`
}

// parseSweepSpec renders a JSON grid file into a Sweep.
func parseSweepSpec(data []byte) (sweep.Sweep, error) {
	var spec sweepSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return sweep.Sweep{}, fmt.Errorf("sweep spec: %w", err)
	}
	if dec.More() {
		return sweep.Sweep{}, fmt.Errorf("sweep spec: trailing content after the grid object")
	}
	cfg := sweepConfig{
		name: spec.Name, kind: spec.Base.Kind, seed: 42,
		arms:     spec.Base.Arms,
		hops:     spec.Base.Hops,
		distance: spec.Base.Distance,
		relays:   spec.Base.Relays, circuits: spec.Base.Circuits,
		switches: spec.Base.Switches, size: spec.Base.SizeBytes,
		horizon: time.Duration(spec.Base.HorizonSec * float64(time.Second)),
		spread:  200 * time.Millisecond,
		sample:  spec.Sample, sampleSeed: spec.SampleSeed,
	}
	if spec.Seed != nil {
		cfg.seed = *spec.Seed
	}
	if spec.Base.SpreadMs != nil {
		cfg.spread = time.Duration(*spec.Base.SpreadMs * float64(time.Millisecond))
	}
	if cfg.name == "" {
		cfg.name = "spec-sweep"
	}
	if cfg.kind == "" {
		cfg.kind = "trace"
	}
	if len(cfg.arms) == 0 {
		cfg.arms = []string{"circuitstart"}
	}
	if cfg.hops == 0 {
		cfg.hops = 3
	}
	if cfg.distance == 0 {
		cfg.distance = min(3, cfg.hops)
	}
	if cfg.relays == 0 {
		cfg.relays = 40
	}
	if cfg.circuits == 0 {
		cfg.circuits = 50
	}
	if cfg.size == 0 {
		cfg.size = 500_000
	}
	if cfg.horizon == 0 {
		cfg.horizon = 600 * time.Second
	}
	for i, d := range spec.Dimensions {
		req, err := specDimRequest(d)
		if err != nil {
			return sweep.Sweep{}, fmt.Errorf("sweep spec: dimension %d: %w", i, err)
		}
		cfg.dims = append(cfg.dims, req)
	}
	return cfg.build()
}

// specDimRequest converts one spec dimension block, enforcing that it
// names exactly one axis.
func specDimRequest(d sweepSpecDim) (dimRequest, error) {
	var out []dimRequest
	if len(d.Gammas) > 0 {
		out = append(out, dimRequest{kind: "gamma", raw: floatsToRaw(d.Gammas)})
	}
	if len(d.Policies) > 0 {
		out = append(out, dimRequest{kind: "policy", raw: d.Policies})
	}
	if len(d.BandwidthsMbps) > 0 {
		out = append(out, dimRequest{kind: "bandwidth", raw: floatsToRaw(d.BandwidthsMbps)})
	}
	if len(d.Hops) > 0 {
		out = append(out, dimRequest{kind: "hops", raw: intsToRaw(d.Hops)})
	}
	if len(d.SizesBytes) > 0 {
		raw := make([]string, len(d.SizesBytes))
		for i, n := range d.SizesBytes {
			raw[i] = strconv.FormatInt(n, 10)
		}
		out = append(out, dimRequest{kind: "size", raw: raw})
	}
	if len(d.Counts) > 0 {
		out = append(out, dimRequest{kind: "count", raw: intsToRaw(d.Counts)})
	}
	if len(d.Trains) > 0 {
		out = append(out, dimRequest{kind: "train", raw: intsToRaw(d.Trains)})
	}
	if len(d.Shards) > 0 {
		out = append(out, dimRequest{kind: "shards", raw: intsToRaw(d.Shards)})
	}
	if len(d.Faults) > 0 {
		out = append(out, dimRequest{kind: "faults", raw: d.Faults})
	}
	if len(out) != 1 {
		return dimRequest{}, fmt.Errorf("needs exactly one axis list, has %d", len(out))
	}
	return out[0], nil
}

func floatsToRaw(vs []float64) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return out
}

func intsToRaw(vs []int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.Itoa(v)
	}
	return out
}

// pickFormat resolves the output format from -format or the extension.
func pickFormat(format, path string) string {
	if format != "" {
		return format
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return "csv"
	case ".jsonl", ".ndjson":
		return "jsonl"
	}
	return ""
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseFloats(raw []string) ([]float64, error) {
	out := make([]float64, len(raw))
	for i, r := range raw {
		v, err := strconv.ParseFloat(r, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", r)
		}
		out[i] = v
	}
	return out, nil
}

func parseInts(raw []string) ([]int, error) {
	out := make([]int, len(raw))
	for i, r := range raw {
		v, err := strconv.Atoi(r)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", r)
		}
		out[i] = v
	}
	return out, nil
}
