// Command circuitsim regenerates the paper's figures and the ablation
// tables from the command line.
//
// Usage:
//
//	circuitsim fig1-cwnd  [-distance N] [-policy P] [-seed S] [-csv out.csv]
//	circuitsim fig1-cdf   [-circuits K] [-relays N] [-size BYTES] [-seed S] [-csv out.csv]
//	circuitsim ablation   [-name gamma|compensation|clock|position|concurrency|extensions|vegas|shared] [-seed S]
//	circuitsim dynamic    [-before MBPS] [-after MBPS] [-restart R] [-seed S]
//	circuitsim scenario   [-arms P1,P2,…] [-circuits K] [-relays N] [-workers W]
//	                      [-reps R] [-poisson RATE] [-download] [-csv out.csv]
//	circuitsim bench      [-json] [-out FILE]
//
// Each subcommand prints a human-readable table to stdout; -csv
// additionally writes the raw series/CDF in gnuplot-ready CSV. The
// scenario subcommand runs a declaratively-specified sweep — one arm
// per policy over a generated relay population — on a multi-core
// runner.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/experiments"
	"circuitstart/internal/metrics"
	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
	"circuitstart/internal/traceio"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "fig1-cwnd":
		err = runFig1Cwnd(os.Args[2:])
	case "fig1-cdf":
		err = runFig1CDF(os.Args[2:])
	case "ablation":
		err = runAblation(os.Args[2:])
	case "dynamic":
		err = runDynamic(os.Args[2:])
	case "scenario":
		err = runScenario(os.Args[2:])
	case "bench":
		err = runBench(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "circuitsim: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "circuitsim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `circuitsim — CircuitStart (SIGCOMM'18) reproduction harness

Commands:
  fig1-cwnd   single-circuit source cwnd trace (Figure 1, upper panels)
  fig1-cdf    download-time CDF, with vs without CircuitStart (Figure 1, lower)
  ablation    design-choice sweeps: gamma, compensation, clock, position,
              concurrency, extensions, vegas, shared (circuits over one trunk)
  dynamic     capacity-step extension (future-work experiment)
  scenario    declarative multi-arm sweep on the parallel runner
  bench       headline microbenchmarks; -json snapshots BENCH_<n>.json

Run 'circuitsim <command> -h' for flags.
`)
}

func runFig1Cwnd(args []string) error {
	fs := flag.NewFlagSet("fig1-cwnd", flag.ExitOnError)
	distance := fs.Int("distance", 1, "bottleneck distance from the source in hops (1..hops)")
	hops := fs.Int("hops", 3, "number of relays on the circuit")
	policy := fs.String("policy", "circuitstart", "startup policy")
	seed := fs.Int64("seed", 42, "experiment seed")
	horizon := fs.Duration("horizon", 2*time.Second, "simulated time")
	csvPath := fs.String("csv", "", "write the (time_ms, cwnd_kb) trace as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := experiments.DefaultCwndTraceParams(*distance)
	p.Seed = *seed
	p.Hops = *hops
	p.Transport.Policy = *policy
	p.Horizon = sim.Time(*horizon)
	r, err := experiments.Fig1CwndTrace(p)
	if err != nil {
		return err
	}

	fmt.Printf("fig1-cwnd: policy=%s bottleneck %d/%d hops, optimal=%.1f cells (%.1f KB)\n",
		*policy, *distance, *hops, r.OptimalCells, r.OptimalCells*512/1000)
	tbl := traceio.NewTable("metric", "value")
	tbl.AddRowf("exit cwnd [cells]", r.ExitCwnd)
	tbl.AddRowf("exit time", r.ExitTime.String())
	tbl.AddRowf("peak cwnd [cells]", r.PeakCells)
	settle := "never"
	if r.SettleTime >= 0 {
		settle = r.SettleTime.String()
	}
	tbl.AddRowf("settled near optimal at", settle)
	tbl.AddRowf("final cwnd [cells]", r.FinalCells)
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}

	if *csvPath != "" {
		kb := metrics.NewSeries("cwnd_kb")
		for _, pt := range r.CwndKBPoints() {
			kb.Record(pt.At, pt.Value)
		}
		return writeCSV(*csvPath, func(f *os.File) error {
			return traceio.WriteSeriesCSV(f, kb)
		})
	}
	return nil
}

func runFig1CDF(args []string) error {
	fs := flag.NewFlagSet("fig1-cdf", flag.ExitOnError)
	circuits := fs.Int("circuits", 50, "concurrent circuits")
	relays := fs.Int("relays", 40, "relay population size")
	size := fs.Int64("size", 500_000, "transfer size per circuit [bytes]")
	download := fs.Bool("download", false, "run transfers in the download (server → client) direction")
	seed := fs.Int64("seed", 42, "experiment seed")
	csvPath := fs.String("csv", "", "write both CDFs as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := experiments.DefaultCDFParams()
	p.Seed = *seed
	p.Scenario.Circuits = *circuits
	p.Scenario.Relays = workload.DefaultRelayParams(*relays)
	p.Scenario.TransferSize = units.DataSize(*size)
	p.Scenario.Download = *download
	res, err := experiments.Fig1DownloadCDF(p)
	if err != nil {
		return err
	}

	fmt.Printf("fig1-cdf: %d circuits over %d relays, %s each\n",
		*circuits, *relays, units.DataSize(*size))
	dists := make([]*metrics.Distribution, 0, len(res.Arms))
	for _, arm := range res.Arms {
		if arm.Incomplete > 0 {
			fmt.Printf("  warning: %s left %d transfers incomplete\n", arm.Policy, arm.Incomplete)
		}
		dists = append(dists, arm.TTLB)
	}
	if err := traceio.WriteSummaryTable(os.Stdout, dists...); err != nil {
		return err
	}
	if gap := res.MedianGap("circuitstart", "backtap"); len(res.Arms) >= 2 {
		fmt.Printf("median improvement with CircuitStart: %.3f s\n", -gap)
	}

	if *csvPath != "" {
		return writeCSV(*csvPath, func(f *os.File) error {
			return traceio.WriteCDFCSV(f, dists...)
		})
	}
	return nil
}

func runAblation(args []string) error {
	fs := flag.NewFlagSet("ablation", flag.ExitOnError)
	name := fs.String("name", "gamma", "gamma | compensation | clock | position | concurrency | extensions | vegas | shared")
	seed := fs.Int64("seed", 42, "experiment seed")
	circuits := fs.Int("circuits", 8, "circuits sharing the trunk (shared only)")
	trunk := fs.Float64("trunk", 16, "shared trunk rate [Mbit/s] (shared only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *name {
	case "gamma":
		rows, err := experiments.AblationGamma(*seed, nil)
		if err != nil {
			return err
		}
		return printAblation(rows)
	case "compensation":
		rows, err := experiments.AblationCompensation(*seed)
		if err != nil {
			return err
		}
		return printAblation(rows)
	case "clock":
		rows, err := experiments.AblationFeedbackClock(*seed)
		if err != nil {
			return err
		}
		return printAblation(rows)
	case "position":
		rows, err := experiments.AblationBottleneckPosition(*seed, 3)
		if err != nil {
			return err
		}
		return printAblation(rows)
	case "extensions":
		rows, err := experiments.AblationExtensions(*seed)
		if err != nil {
			return err
		}
		return printAblation(rows)
	case "vegas":
		rows, err := experiments.AblationVegas(*seed, nil)
		if err != nil {
			return err
		}
		return printAblation(rows)
	case "shared":
		p := experiments.DefaultSharedBottleneckParams()
		p.Seed = *seed
		p.Circuits = *circuits
		p.TrunkRate = units.Mbps(*trunk)
		res, err := experiments.AblationSharedBottleneck(p)
		if err != nil {
			return err
		}
		fmt.Printf("ablation shared-bottleneck: %d circuits across one %s trunk, %s each\n",
			p.Circuits, p.TrunkRate, p.TransferSize)
		if err := res.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("median improvement with CircuitStart: %.3f s\n",
			-res.MedianGap("circuitstart", "slowstart"))
		return nil
	case "concurrency":
		rows, err := experiments.AblationConcurrency(*seed, nil)
		if err != nil {
			return err
		}
		tbl := traceio.NewTable("circuits", "median_with_s", "median_without_s", "p90_with_s", "p90_without_s")
		for _, r := range rows {
			tbl.AddRowf(r.Circuits, r.MedianWith, r.MedianWithout, r.P90With, r.P90Without)
		}
		return tbl.WriteText(os.Stdout)
	default:
		return fmt.Errorf("unknown ablation %q", *name)
	}
}

func printAblation(rows []experiments.AblationRow) error {
	tbl := traceio.NewTable("configuration", "exit_cwnd", "optimal", "peak", "settle", "final")
	for _, r := range rows {
		settle := "never"
		if r.SettleTime >= 0 {
			settle = r.SettleTime.String()
		}
		tbl.AddRowf(r.Label, r.ExitCwnd, r.OptimalCells, r.PeakCells, settle, r.FinalCells)
	}
	return tbl.WriteText(os.Stdout)
}

func runDynamic(args []string) error {
	fs := flag.NewFlagSet("dynamic", flag.ExitOnError)
	before := fs.Float64("before", 8, "bottleneck rate before the step [Mbit/s]")
	after := fs.Float64("after", 40, "bottleneck rate after the step [Mbit/s]")
	restart := fs.Int("restart", 3, "re-probe threshold in rounds (-1 disables the extension)")
	seed := fs.Int64("seed", 42, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	r, err := experiments.ExtensionDynamicRestart(experiments.DynamicRestartParams{
		Seed:          *seed,
		BeforeRate:    units.Mbps(*before),
		AfterRate:     units.Mbps(*after),
		StepAt:        sim.Second,
		Horizon:       5 * sim.Second,
		RestartRounds: *restart,
	})
	if err != nil {
		return err
	}
	tbl := traceio.NewTable("metric", "value")
	tbl.AddRowf("optimal before [cells]", r.OptimalBefore)
	tbl.AddRowf("optimal after [cells]", r.OptimalAfter)
	tbl.AddRowf("window at step [cells]", r.WindowAtStep)
	rec := "never"
	if r.RecoveryTime >= 0 {
		rec = r.RecoveryTime.String()
	}
	tbl.AddRowf("recovery to 80% of new optimal", rec)
	tbl.AddRowf("final window [cells]", r.FinalCells)
	tbl.AddRowf("re-probes", r.Restarts)
	return tbl.WriteText(os.Stdout)
}

func runScenario(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	arms := fs.String("arms", "circuitstart,backtap", "comma-separated policy arms")
	circuits := fs.Int("circuits", 50, "concurrent circuits")
	relays := fs.Int("relays", 40, "relay population size")
	hops := fs.Int("hops", 3, "relays per circuit")
	size := fs.Int64("size", 500_000, "transfer size per circuit [bytes]")
	seed := fs.Int64("seed", 42, "experiment seed")
	reps := fs.Int("reps", 1, "replications per arm (independent seed substreams)")
	workers := fs.Int("workers", 0, "trial worker pool size (0 = one per CPU)")
	spread := fs.Duration("spread", 200*time.Millisecond, "uniform start stagger window")
	poisson := fs.Float64("poisson", 0, "Poisson arrival rate per second (overrides -spread)")
	download := fs.Bool("download", false, "run transfers in the download (server → client) direction")
	horizon := fs.Duration("horizon", 600*time.Second, "per-trial virtual time bound")
	csvPath := fs.String("csv", "", "write every arm's TTLB CDF as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var armSpecs []scenario.Arm
	for _, policy := range strings.Split(*arms, ",") {
		policy = strings.TrimSpace(policy)
		if policy == "" {
			continue
		}
		armSpecs = append(armSpecs, scenario.Arm{
			Name:      policy,
			Transport: core.TransportOptions{Policy: policy},
		})
	}
	arrival := scenario.Arrival{Kind: scenario.ArriveUniform, Spread: *spread}
	if *poisson > 0 {
		arrival = scenario.Arrival{Kind: scenario.ArrivePoisson, Rate: *poisson}
	} else if *spread <= 0 {
		arrival = scenario.Arrival{}
	}
	pop := workload.DefaultRelayParams(*relays)
	sc := scenario.Scenario{
		Name:     "cli-sweep",
		Seed:     *seed,
		Topology: scenario.Topology{Population: &pop},
		Circuits: scenario.CircuitSet{
			Count:        *circuits,
			Hops:         *hops,
			TransferSize: units.DataSize(*size),
			Download:     *download,
			Arrival:      arrival,
		},
		Arms:         armSpecs,
		Horizon:      sim.Time(*horizon),
		Replications: *reps,
	}
	res, err := scenario.Runner{Workers: *workers}.Run(sc)
	if err != nil {
		return err
	}

	fmt.Printf("scenario: %d circuits × %d arms × %d reps over %d relays, %s each\n",
		*circuits, len(res.Arms), *reps, *relays, units.DataSize(*size))
	for _, arm := range res.Arms {
		if arm.Incomplete > 0 {
			fmt.Printf("  warning: %s left %d transfers incomplete\n", arm.Name, arm.Incomplete)
		}
	}
	if err := res.WriteText(os.Stdout); err != nil {
		return err
	}

	if *csvPath != "" {
		dists := make([]*metrics.Distribution, len(res.Arms))
		for i := range res.Arms {
			dists[i] = res.Arms[i].TTLB
		}
		return writeCSV(*csvPath, func(f *os.File) error {
			return traceio.WriteCDFCSV(f, dists...)
		})
	}
	return nil
}

func writeCSV(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	return f.Sync()
}
