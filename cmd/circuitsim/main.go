// Command circuitsim regenerates the paper's figures and the ablation
// tables from the command line. Run 'circuitsim -h' for the subcommand
// list (rendered from the same table that dispatches them, so the help
// text cannot drift from reality) and 'circuitsim <command> -h' for
// each command's flags.
//
// Each subcommand prints a human-readable table to stdout; -csv
// additionally writes the raw series/CDF in gnuplot-ready CSV. The
// scenario subcommand runs a declaratively-specified sweep — one arm
// per policy over a generated relay population — on a multi-core
// runner.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/experiments"
	"circuitstart/internal/faults"
	"circuitstart/internal/metrics"
	"circuitstart/internal/netem"
	"circuitstart/internal/resource"
	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
	"circuitstart/internal/traceio"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// command binds one subcommand name to its summary and implementation.
// The dispatcher and the usage text are both rendered from the
// commands table below — the single source of truth — so `circuitsim
// -h`, the README's CLI reference and the actual behaviour cannot
// diverge silently (TestUsageMatchesCommandTable enforces it).
type command struct {
	name    string
	summary string
	run     func(args []string) error
}

var commands = []command{
	{"fig1-cwnd", "single-circuit source cwnd trace (Figure 1, upper panels)", runFig1Cwnd},
	{"fig1-cdf", "download-time CDF, with vs without CircuitStart (Figure 1, lower)", runFig1CDF},
	{"ablation", "design-choice sweeps: " + strings.Join(ablationNames, ", "), runAblation},
	{"dynamic", "capacity-step extension (future-work experiment)", runDynamic},
	{"scenario", "declarative multi-arm sweep on the parallel runner", runScenario},
	{"sweep", "parameter-grid engine: dimensions × base scenario, streamed to CSV/JSONL", runSweep},
	{"serve", "sweep service daemon: the grid engine behind the versioned spec API", runServe},
	{"spec", "validate and canonicalize a sweep spec file", runSpecCmd},
	{"bench", "headline microbenchmarks; -json snapshots BENCH_<n>.json", runBench},
}

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	name := os.Args[1]
	if name == "-h" || name == "--help" || name == "help" {
		usage(os.Stderr)
		return
	}
	for _, cmd := range commands {
		if cmd.name == name {
			if err := cmd.run(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "circuitsim:", err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "circuitsim: unknown command %q\n", name)
	usage(os.Stderr)
	os.Exit(2)
}

// usage renders the help text from the commands table.
func usage(w io.Writer) {
	fmt.Fprint(w, "circuitsim — CircuitStart (SIGCOMM'18) reproduction harness\n\nCommands:\n")
	width := 0
	for _, cmd := range commands {
		if len(cmd.name) > width {
			width = len(cmd.name)
		}
	}
	for _, cmd := range commands {
		fmt.Fprintf(w, "  %-*s  %s\n", width, cmd.name, cmd.summary)
	}
	fmt.Fprint(w, "\nRun 'circuitsim <command> -h' for flags.\n")
}

func runFig1Cwnd(args []string) error {
	fs := flag.NewFlagSet("fig1-cwnd", flag.ExitOnError)
	distance := fs.Int("distance", 1, "bottleneck distance from the source in hops (1..hops)")
	hops := fs.Int("hops", 3, "number of relays on the circuit")
	policy := fs.String("policy", "circuitstart", "startup policy")
	seed := fs.Int64("seed", 42, "experiment seed")
	horizon := fs.Duration("horizon", 2*time.Second, "simulated time")
	csvPath := fs.String("csv", "", "write the (time_ms, cwnd_kb) trace as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := experiments.DefaultCwndTraceParams(*distance)
	p.Seed = *seed
	p.Hops = *hops
	p.Transport.Policy = *policy
	p.Horizon = sim.Time(*horizon)
	r, err := experiments.Fig1CwndTrace(p)
	if err != nil {
		return err
	}

	fmt.Printf("fig1-cwnd: policy=%s bottleneck %d/%d hops, optimal=%.1f cells (%.1f KB)\n",
		*policy, *distance, *hops, r.OptimalCells, r.OptimalCells*512/1000)
	tbl := traceio.NewTable("metric", "value")
	tbl.AddRowf("exit cwnd [cells]", r.ExitCwnd)
	tbl.AddRowf("exit time", r.ExitTime.String())
	tbl.AddRowf("peak cwnd [cells]", r.PeakCells)
	settle := "never"
	if r.SettleTime >= 0 {
		settle = r.SettleTime.String()
	}
	tbl.AddRowf("settled near optimal at", settle)
	tbl.AddRowf("final cwnd [cells]", r.FinalCells)
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}

	if *csvPath != "" {
		kb := metrics.NewSeries("cwnd_kb")
		for _, pt := range r.CwndKBPoints() {
			kb.Record(pt.At, pt.Value)
		}
		return writeCSV(*csvPath, func(f *os.File) error {
			return traceio.WriteSeriesCSV(f, kb)
		})
	}
	return nil
}

func runFig1CDF(args []string) error {
	fs := flag.NewFlagSet("fig1-cdf", flag.ExitOnError)
	circuits := fs.Int("circuits", 50, "concurrent circuits")
	relays := fs.Int("relays", 40, "relay population size")
	size := fs.Int64("size", 500_000, "transfer size per circuit [bytes]")
	download := fs.Bool("download", false, "run transfers in the download (server → client) direction")
	seed := fs.Int64("seed", 42, "experiment seed")
	csvPath := fs.String("csv", "", "write both CDFs as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := experiments.DefaultCDFParams()
	p.Seed = *seed
	p.Scenario.Circuits = *circuits
	p.Scenario.Relays = workload.DefaultRelayParams(*relays)
	p.Scenario.TransferSize = units.DataSize(*size)
	p.Scenario.Download = *download
	res, err := experiments.Fig1DownloadCDF(p)
	if err != nil {
		return err
	}

	fmt.Printf("fig1-cdf: %d circuits over %d relays, %s each\n",
		*circuits, *relays, units.DataSize(*size))
	dists := make([]*metrics.Distribution, 0, len(res.Arms))
	for _, arm := range res.Arms {
		if arm.Incomplete > 0 {
			fmt.Printf("  warning: %s left %d transfers incomplete\n", arm.Policy, arm.Incomplete)
		}
		dists = append(dists, arm.TTLB)
	}
	if err := traceio.WriteSummaryTable(os.Stdout, dists...); err != nil {
		return err
	}
	if gap := res.MedianGap("circuitstart", "backtap"); len(res.Arms) >= 2 {
		fmt.Printf("median improvement with CircuitStart: %.3f s\n", -gap)
	}

	if *csvPath != "" {
		return writeCSV(*csvPath, func(f *os.File) error {
			return traceio.WriteCDFCSV(f, dists...)
		})
	}
	return nil
}

// ablationNames lists every -name the ablation subcommand accepts, in
// presentation order; runAblation's switch must cover exactly these
// (the usage text and README derive from this list).
var ablationNames = []string{
	"gamma", "compensation", "clock", "position", "concurrency",
	"extensions", "vegas", "shared", "churn", "overload", "faults",
	"scale",
}

func runAblation(args []string) error {
	fs := flag.NewFlagSet("ablation", flag.ExitOnError)
	name := fs.String("name", "gamma", strings.Join(ablationNames, " | "))
	seed := fs.Int64("seed", 42, "experiment seed")
	circuits := fs.Int("circuits", 8, "circuits sharing the trunk (shared, faults)")
	trunk := fs.Float64("trunk", 16, "shared trunk rate [Mbit/s] (shared, overload, faults)")
	arrivals := fs.Int("arrivals", 40, "churn downloads arriving mid-run (churn only)")
	rate := fs.Float64("rate", 8, "churn arrival rate per second (churn only)")
	failures := fs.Int("failures", 2, "high-bandwidth relays failing mid-run (churn only)")
	pairs := fs.Int("pairs", 8, "interactive+bulk circuit pairs (overload only)")
	maxCircuits := fs.Int("max-circuits", 6, "per-relay circuit cap (overload only)")
	maxMemory := fs.Int64("max-memory", 128_000, "per-relay held-cell memory cap [bytes] (overload only)")
	killPolicy := fs.String("kill", "kill-heaviest", "cap policy: reject-new | kill-oldest | kill-heaviest (overload only)")
	train := fs.Int("train", 0, "cell-train coalescing cap per link, <=1 = one event per cell (churn, overload, faults)")
	relays := fs.Int("relays", 1024, "generated relay population size (scale only)")
	switches := fs.Int("switches", 16, "backbone ring switches (scale only)")
	shardCounts := fs.String("shards", "1,2,4", "comma-separated shard counts to time (scale only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *name {
	case "gamma":
		rows, err := experiments.AblationGamma(*seed, nil)
		if err != nil {
			return err
		}
		return printAblation(rows)
	case "compensation":
		rows, err := experiments.AblationCompensation(*seed)
		if err != nil {
			return err
		}
		return printAblation(rows)
	case "clock":
		rows, err := experiments.AblationFeedbackClock(*seed)
		if err != nil {
			return err
		}
		return printAblation(rows)
	case "position":
		rows, err := experiments.AblationBottleneckPosition(*seed, 3)
		if err != nil {
			return err
		}
		return printAblation(rows)
	case "extensions":
		rows, err := experiments.AblationExtensions(*seed)
		if err != nil {
			return err
		}
		return printAblation(rows)
	case "vegas":
		rows, err := experiments.AblationVegas(*seed, nil)
		if err != nil {
			return err
		}
		return printAblation(rows)
	case "shared":
		p := experiments.DefaultSharedBottleneckParams()
		p.Seed = *seed
		p.Circuits = *circuits
		p.TrunkRate = units.Mbps(*trunk)
		res, err := experiments.AblationSharedBottleneck(p)
		if err != nil {
			return err
		}
		fmt.Printf("ablation shared-bottleneck: %d circuits across one %s trunk, %s each\n",
			p.Circuits, p.TrunkRate, p.TransferSize)
		if err := res.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("median improvement with CircuitStart: %.3f s\n",
			-res.MedianGap("circuitstart", "slowstart"))
		return nil
	case "concurrency":
		rows, err := experiments.AblationConcurrency(*seed, nil)
		if err != nil {
			return err
		}
		tbl := traceio.NewTable("circuits", "median_with_s", "median_without_s", "p90_with_s", "p90_without_s")
		for _, r := range rows {
			tbl.AddRowf(r.Circuits, r.MedianWith, r.MedianWithout, r.P90With, r.P90Without)
		}
		return tbl.WriteText(os.Stdout)
	case "churn":
		p := experiments.DefaultChurnParams()
		p.Seed = *seed
		p.Arrivals = *arrivals
		p.ArrivalRate = *rate
		p.Failures = *failures
		p.TrainSize = *train
		res, err := experiments.AblationChurn(p)
		if err != nil {
			return err
		}
		fmt.Printf("ablation churn: %d initial + %d arriving downloads (%s each) over %d relays, %d relay failures\n",
			p.InitialCircuits, p.Arrivals, p.TransferSize, p.Relays.N, p.Failures)
		if err := res.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("median improvement with CircuitStart under churn: %.3f s\n",
			-res.MedianGap("circuitstart", "backtap"))
		return nil
	case "overload":
		policy, err := resource.PolicyByName(*killPolicy)
		if err != nil {
			return err
		}
		p := experiments.DefaultOverloadParams()
		p.Seed = *seed
		p.CircuitPairs = *pairs
		p.TrunkRate = units.Mbps(*trunk)
		p.Limits.MaxCircuits = *maxCircuits
		p.Limits.MaxMemory = units.DataSize(*maxMemory)
		p.Limits.Policy = policy
		p.TrainSize = *train
		res, err := experiments.AblationOverload(p)
		if err != nil {
			return err
		}
		fmt.Printf("ablation overload: %d interactive (%s) + %d bulk (%s) circuits on %d relay pairs behind a %s trunk, caps %s\n",
			p.CircuitPairs, p.Interactive, p.CircuitPairs, p.Bulk, p.RelayPairs, p.TrunkRate, p.Limits.Label())
		return res.WriteText(os.Stdout)
	case "faults":
		p := experiments.DefaultFaultsParams()
		p.Seed = *seed
		p.Circuits = *circuits
		p.TrunkRate = units.Mbps(*trunk)
		p.TrainSize = *train
		res, err := experiments.AblationFaults(p)
		if err != nil {
			return err
		}
		fmt.Printf("ablation faults: %d downloads (%s each) on %d relay pairs behind a %s trunk; burst loss, relay hang and trunk flap with endpoint recovery\n",
			p.Circuits, p.TransferSize, p.RelayPairs, p.TrunkRate)
		return res.WriteText(os.Stdout)
	case "scale":
		p := experiments.DefaultScaleParams()
		p.Seed = *seed
		p.Relays = *relays
		p.Switches = *switches
		p.TrainSize = *train
		counts, err := parseShardCounts(*shardCounts)
		if err != nil {
			return err
		}
		p.ShardCounts = counts
		res, err := experiments.AblationScale(p)
		if err != nil {
			return err
		}
		fmt.Printf("ablation scale: %d initial + %d arriving downloads (%s each) over %d relays behind %d switches, one trial timed per shard count\n",
			p.InitialCircuits, p.Arrivals, p.TransferSize, p.Relays, p.Switches)
		return res.WriteText(os.Stdout)
	default:
		return fmt.Errorf("unknown ablation %q", *name)
	}
}

// parseShardCounts parses the scale ablation's "1,2,4" flag.
func parseShardCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func printAblation(rows []experiments.AblationRow) error {
	tbl := traceio.NewTable("configuration", "exit_cwnd", "optimal", "peak", "settle", "final")
	for _, r := range rows {
		settle := "never"
		if r.SettleTime >= 0 {
			settle = r.SettleTime.String()
		}
		tbl.AddRowf(r.Label, r.ExitCwnd, r.OptimalCells, r.PeakCells, settle, r.FinalCells)
	}
	return tbl.WriteText(os.Stdout)
}

func runDynamic(args []string) error {
	fs := flag.NewFlagSet("dynamic", flag.ExitOnError)
	before := fs.Float64("before", 8, "bottleneck rate before the step [Mbit/s]")
	after := fs.Float64("after", 40, "bottleneck rate after the step [Mbit/s]")
	restart := fs.Int("restart", 3, "re-probe threshold in rounds (-1 disables the extension)")
	seed := fs.Int64("seed", 42, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	r, err := experiments.ExtensionDynamicRestart(experiments.DynamicRestartParams{
		Seed:          *seed,
		BeforeRate:    units.Mbps(*before),
		AfterRate:     units.Mbps(*after),
		StepAt:        sim.Second,
		Horizon:       5 * sim.Second,
		RestartRounds: *restart,
	})
	if err != nil {
		return err
	}
	tbl := traceio.NewTable("metric", "value")
	tbl.AddRowf("optimal before [cells]", r.OptimalBefore)
	tbl.AddRowf("optimal after [cells]", r.OptimalAfter)
	tbl.AddRowf("window at step [cells]", r.WindowAtStep)
	rec := "never"
	if r.RecoveryTime >= 0 {
		rec = r.RecoveryTime.String()
	}
	tbl.AddRowf("recovery to 80% of new optimal", rec)
	tbl.AddRowf("final window [cells]", r.FinalCells)
	tbl.AddRowf("re-probes", r.Restarts)
	return tbl.WriteText(os.Stdout)
}

func runScenario(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	arms := fs.String("arms", "circuitstart,backtap", "comma-separated policy arms")
	circuits := fs.Int("circuits", 50, "concurrent circuits")
	relays := fs.Int("relays", 40, "relay population size")
	hops := fs.Int("hops", 3, "relays per circuit")
	size := fs.Int64("size", 500_000, "transfer size per circuit [bytes]")
	seed := fs.Int64("seed", 42, "experiment seed")
	reps := fs.Int("reps", 1, "replications per arm (independent seed substreams)")
	workers := fs.Int("workers", 0, "trial worker pool size (0 = one per CPU)")
	spread := fs.Duration("spread", 200*time.Millisecond, "uniform start stagger window")
	poisson := fs.Float64("poisson", 0, "Poisson arrival rate per second (overrides -spread)")
	download := fs.Bool("download", false, "run transfers in the download (server → client) direction")
	horizon := fs.Duration("horizon", 600*time.Second, "per-trial virtual time bound")
	train := fs.Int("train", 0, "cell-train coalescing cap per link (≤1 = one event per cell)")
	switches := fs.Int("switches", 0, "home the relays behind a backbone ring of this many switches (0 = star topology)")
	shards := fs.Int("shards", 0, "partition each trial across this many shard clocks (0 = single clock; needs -switches)")
	faultArg := fs.String("faults", "", "fault plan: a preset name ("+strings.Join(faults.PresetNames(), ", ")+") or a JSON spec file")
	csvPath := fs.String("csv", "", "write every arm's TTLB CDF as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var armSpecs []scenario.Arm
	for _, policy := range strings.Split(*arms, ",") {
		policy = strings.TrimSpace(policy)
		if policy == "" {
			continue
		}
		armSpecs = append(armSpecs, scenario.Arm{
			Name:      policy,
			Transport: core.TransportOptions{Policy: policy},
		})
	}
	arrival := scenario.Arrival{Kind: scenario.ArriveUniform, Spread: *spread}
	if *poisson > 0 {
		arrival = scenario.Arrival{Kind: scenario.ArrivePoisson, Rate: *poisson}
	} else if *spread <= 0 {
		arrival = scenario.Arrival{}
	}
	pop := workload.DefaultRelayParams(*relays)
	sc := scenario.Scenario{
		Name:     "cli-sweep",
		Seed:     *seed,
		Topology: scenario.Topology{Population: &pop},
		Circuits: scenario.CircuitSet{
			Count:        *circuits,
			Hops:         *hops,
			TransferSize: units.DataSize(*size),
			Download:     *download,
			Arrival:      arrival,
		},
		Arms:         armSpecs,
		Horizon:      sim.Time(*horizon),
		Replications: *reps,
		TrainSize:    *train,
		Shards:       *shards,
	}
	if *switches > 0 {
		bp := workload.DefaultBackboneParams(*relays, *switches)
		spec, err := workload.GenerateBackbone(bp)
		if err != nil {
			return err
		}
		sc.Topology.Fabric = &spec
	} else if *shards > 0 {
		return fmt.Errorf("-shards needs a routed backbone: set -switches > 0")
	}
	if *faultArg != "" {
		plan, err := resolveFaults(*faultArg, sc.RelayIDs())
		if err != nil {
			return err
		}
		sc.Faults = plan
	}
	res, err := scenario.Runner{Workers: *workers}.Run(sc)
	if err != nil {
		return err
	}

	fmt.Printf("scenario: %d circuits × %d arms × %d reps over %d relays, %s each\n",
		*circuits, len(res.Arms), *reps, *relays, units.DataSize(*size))
	for _, arm := range res.Arms {
		if arm.Incomplete > 0 {
			fmt.Printf("  warning: %s left %d transfers incomplete\n", arm.Name, arm.Incomplete)
		}
	}
	if err := res.WriteText(os.Stdout); err != nil {
		return err
	}

	if *csvPath != "" {
		dists := make([]*metrics.Distribution, len(res.Arms))
		for i := range res.Arms {
			dists[i] = res.Arms[i].TTLB
		}
		return writeCSV(*csvPath, func(f *os.File) error {
			return traceio.WriteCDFCSV(f, dists...)
		})
	}
	return nil
}

// resolveFaults renders a -faults argument into a Plan: a preset name
// (rendered against the scenario's relay set) or a path to a JSON fault
// spec file. Preset names win, so a stray file named "burstloss" in the
// working directory cannot shadow the preset silently.
func resolveFaults(arg string, relays []netem.NodeID) (faults.Plan, error) {
	if plan, err := faults.Preset(arg, relays); err == nil {
		return plan, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return faults.Plan{}, fmt.Errorf("-faults %q is neither a preset (%s) nor a readable spec file: %w",
			arg, strings.Join(faults.PresetNames(), ", "), err)
	}
	return faults.ParseSpec(data)
}

func writeCSV(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	return f.Sync()
}
