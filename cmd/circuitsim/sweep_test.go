package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSweepCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "grid.csv")
	if err := runSweep([]string{"-gammas", "2,4", "-bandwidths", "8,16", "-workers", "2", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1+4 {
		t.Fatalf("CSV has %d lines, want header + 4 rows:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "point,bottleneck_bw,gamma,arm,") {
		t.Fatalf("header = %q", lines[0])
	}
}

// TestRunSweepHopsBandwidthCompose checks that the hops and bandwidth
// axes compose on the trace base even when a hop count falls below the
// bottleneck distance (the bottleneck clamps to the last relay and the
// bandwidth axis follows it).
func TestRunSweepHopsBandwidthCompose(t *testing.T) {
	out := filepath.Join(t.TempDir(), "grid.csv")
	if err := runSweep([]string{"-hopcounts", "2,3", "-bandwidths", "8,16", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(string(data)), "\n")[1:]
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4:\n%s", len(rows), data)
	}
	// The bandwidth axis must produce different outcomes per rate at
	// every hop count — identical rows would mean one axis was
	// silently clobbered.
	if rows[0] == rows[1] || rows[2] == rows[3] {
		t.Fatalf("bandwidth axis had no effect:\n%s", data)
	}
}

// TestRunSweepResumeAppends checks the documented resume contract: an
// interrupted sweep's -out file is completed in place, not truncated.
func TestRunSweepResumeAppends(t *testing.T) {
	dir := t.TempDir()
	full, part := filepath.Join(dir, "full.csv"), filepath.Join(dir, "part.csv")
	grid := []string{"-gammas", "2,4", "-bandwidths", "8,16"}
	if err := runSweep(append([]string{"-out", full}, grid...)); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate an interruption after point 1: keep header + 2 rows.
	lines := strings.SplitAfter(string(want), "\n")
	if err := os.WriteFile(part, []byte(strings.Join(lines[:3], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSweep(append([]string{"-resume", "2", "-out", part}, grid...)); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(part)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed file differs from the uninterrupted run:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRunSweepWorkerDeterminism pins the acceptance contract at the CLI
// surface: a gamma×bandwidth grid writes identical CSV bytes for
// -workers 1 and -workers 8.
func TestRunSweepWorkerDeterminism(t *testing.T) {
	dir := t.TempDir()
	one, eight := filepath.Join(dir, "w1.csv"), filepath.Join(dir, "w8.csv")
	grid := []string{"-gammas", "2,4", "-bandwidths", "8,16"}
	if err := runSweep(append([]string{"-workers", "1", "-out", one}, grid...)); err != nil {
		t.Fatal(err)
	}
	if err := runSweep(append([]string{"-workers", "8", "-out", eight}, grid...)); err != nil {
		t.Fatal(err)
	}
	d1, err := os.ReadFile(one)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := os.ReadFile(eight)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d8) {
		t.Fatalf("sweep CSV differs between -workers 1 and -workers 8:\n--- 1 ---\n%s\n--- 8 ---\n%s", d1, d8)
	}
}

func TestRunSweepPopulationJSONL(t *testing.T) {
	out := filepath.Join(t.TempDir(), "grid.jsonl")
	args := []string{"-base", "population", "-relays", "10", "-circuits", "3", "-size", "100000",
		"-arms", "circuitstart,backtap", "-gammas", "2,4", "-workers", "2", "-out", out}
	if err := runSweep(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Header + 2 points × 2 arms.
	if len(lines) != 1+4 {
		t.Fatalf("JSONL has %d lines, want 5:\n%s", len(lines), data)
	}
	if !strings.Contains(lines[0], `"schema":"circuitsim-sweep/v1"`) {
		t.Fatalf("missing schema header: %s", lines[0])
	}
	if !strings.Contains(lines[2], `"arm":"backtap"`) {
		t.Fatalf("missing backtap arm row: %s", lines[2])
	}
}

func TestRunSweepSpecFile(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "grid.json")
	specJSON := `{
		"name": "spec-test",
		"base": {"kind": "population", "relays": 10, "circuits": 3, "size_bytes": 100000, "horizon_sec": 120},
		"dimensions": [{"gammas": [2, 4]}, {"counts": [2, 3]}]
	}`
	if err := os.WriteFile(spec, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "grid.csv")
	if err := runSweep([]string{"-spec", spec, "-workers", "2", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1+4 {
		t.Fatalf("spec sweep wrote %d lines, want 5:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "point,gamma,circuits,arm,") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunSweepSampled(t *testing.T) {
	out := filepath.Join(t.TempDir(), "grid.csv")
	args := []string{"-gammas", "1,2,4,8", "-bandwidths", "8,16", "-sample", "3", "-out", out}
	if err := runSweep(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(string(data)), "\n"); len(lines) != 1+3 {
		t.Fatalf("sampled sweep wrote %d lines, want 4:\n%s", len(lines), data)
	}
}

func TestRunSweepFaultsDimension(t *testing.T) {
	out := filepath.Join(t.TempDir(), "grid.csv")
	args := []string{"-base", "population", "-relays", "10", "-circuits", "3", "-size", "100000",
		"-faults", "none,hang", "-out", out}
	if err := runSweep(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1+2 {
		t.Fatalf("faults sweep wrote %d lines, want 3:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "point,faults,arm,") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], ",none,") || !strings.Contains(lines[2], ",hang,") {
		t.Fatalf("preset labels missing from rows:\n%s", data)
	}
}

func TestRunSweepSpecFaultsDimension(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "grid.json")
	specJSON := `{
		"base": {"kind": "population", "relays": 10, "circuits": 3, "size_bytes": 100000},
		"dimensions": [{"faults": ["none", "recovery"]}]
	}`
	if err := os.WriteFile(spec, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "grid.csv")
	if err := runSweep([]string{"-spec", spec, "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(string(data)), "\n"); len(lines) != 1+2 {
		t.Fatalf("spec faults sweep wrote %d lines, want 3:\n%s", len(lines), data)
	}
}

// TestRunSweepGridPointFailsCleanly pins the scripted-sweep error
// contract: a grid point whose parameters fail validation (here a zero
// bottleneck bandwidth) must surface as an error naming the point, not
// as a panic inside a worker — and the sweep must not write a partial
// row for it.
func TestRunSweepGridPointFailsCleanly(t *testing.T) {
	out := filepath.Join(t.TempDir(), "grid.csv")
	err := runSweep([]string{"-bandwidths", "8,0", "-out", out})
	if err == nil {
		t.Fatal("zero-bandwidth grid point accepted")
	}
	if !strings.Contains(err.Error(), "point") {
		t.Fatalf("error %q does not name the failing grid point", err)
	}
}

func TestRunSweepBadFlags(t *testing.T) {
	cases := [][]string{
		{},                                      // no dimensions
		{"-gammas", "2", "-base", "warp"},       // unknown base
		{"-policies", "warp"},                   // unknown policy
		{"-gammas", "x"},                        // unparseable value
		{"-gammas", "2", "-distance", "9"},      // bottleneck beyond path
		{"-gammas", "2", "-out", "x.parquet"},   // unknown format
		{"-gammas", "2", "-arms", ""},           // no arms
		{"-hopcounts", "2,4", "-counts", "x"},   // bad count list
		{"-base", "population", "-counts", "0"}, // invalid point (0 circuits)
		{"-faults", "meteor"},                   // unknown fault preset
	}
	for i, args := range cases {
		if err := runSweep(args); err == nil {
			t.Errorf("case %d (%v) accepted", i, args)
		}
	}
}

// TestRunSweepSpecExplicitZeroSpread checks that "spread_ms": 0 in a
// spec is honoured (simultaneous arrivals) rather than silently
// replaced with the default stagger.
func TestRunSweepSpecExplicitZeroSpread(t *testing.T) {
	dir := t.TempDir()
	run := func(spreadField string) string {
		spec := filepath.Join(dir, "grid.json")
		specJSON := `{"base": {"kind": "population", "relays": 10, "circuits": 3, "size_bytes": 100000` +
			spreadField + `}, "dimensions": [{"gammas": [4]}]}`
		if err := os.WriteFile(spec, []byte(specJSON), 0o644); err != nil {
			t.Fatal(err)
		}
		out := filepath.Join(dir, "grid.csv")
		if err := runSweep([]string{"-spec", spec, "-out", out}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	zero := run(`, "spread_ms": 0`)
	dflt := run(``)
	if zero == dflt {
		t.Fatal("spread_ms: 0 produced the same grid as the default stagger — the explicit zero was ignored")
	}
}

func TestRunSweepSpecErrors(t *testing.T) {
	dir := t.TempDir()
	bad := []string{
		`{"dimensions": []}`, // no dimensions
		`{"dimensions": [{"gammas": [1], "counts": [2]}]}`, // two axes in one block
		`{"dimensions": [{"gammas": [1]}], "bogus": 1}`,    // unknown field
		`{"dimensions": [{}]}`,                             // empty block
	}
	for i, specJSON := range bad {
		path := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(path, []byte(specJSON), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := runSweep([]string{"-spec", path}); err == nil {
			t.Errorf("spec case %d accepted: %s", i, specJSON)
		}
	}
	if err := runSweep([]string{"-spec", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing spec file accepted")
	}
}
