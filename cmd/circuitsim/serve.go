package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"circuitstart/internal/serve"
	"circuitstart/internal/spec"
)

// runServe starts the sweep service daemon: the HTTP front door to the
// same grid engine the sweep subcommand drives in-process. See
// internal/serve for the endpoint contract.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8311", "listen address")
	jobs := fs.Int("jobs", 1, "sweeps executing concurrently")
	queue := fs.Int("queue", 16, "submitted sweeps waiting beyond the running ones")
	workers := fs.Int("workers", 0, "concurrent grid points per sweep (0 = one per CPU)")
	pointWorkers := fs.Int("point-workers", 0, "worker pool per point's runner (0 = 1)")
	cachePoints := fs.Int("cache", 4096, "completed grid points to retain for replay (0 = default, negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := serve.Options{
		Jobs:         *jobs,
		QueueDepth:   *queue,
		SweepWorkers: *workers,
		PointWorkers: *pointWorkers,
		CachePoints:  *cachePoints,
	}
	fmt.Printf("circuitsim serve: listening on http://%s (spec API v%d)\n", *addr, spec.Version)
	return serve.ListenAndServe(*addr, opts)
}

// runSpecCmd validates and canonicalizes sweep spec files. A valid
// spec prints in canonical form (the Marshal∘Parse fixed point) so it
// can be committed, diffed, and hashed stably; -validate only reports.
func runSpecCmd(args []string) error {
	fs := flag.NewFlagSet("spec", flag.ExitOnError)
	validate := fs.Bool("validate", false, "only validate; print a summary instead of the canonical spec")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("spec: want exactly one spec file argument")
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	f, err := spec.Parse(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if *validate {
		sw, err := f.Sweep()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		pts, err := sw.Points()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		hash, err := f.BaseHash()
		if err != nil {
			return err
		}
		fmt.Printf("%s: ok — %q, %d points over %d dimensions (grid %d), base hash %s\n",
			path, sw.Name, len(pts), len(sw.Dimensions), sw.Size(), hash[:12])
		return nil
	}
	out, err := spec.Marshal(f)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(out)
	return err
}

// runSweepRemote executes the sweep on a `circuitsim serve` daemon:
// POST the spec, poll until terminal, stream the rows byte-for-byte
// into -out, and print the daemon's text summary — the same bytes the
// local path would produce, which the CI smoke job pins with cmp.
func runSweepRemote(baseURL string, f *spec.File, outPath, format string) error {
	baseURL = strings.TrimRight(baseURL, "/")
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	body, err := spec.Marshal(f)
	if err != nil {
		return err
	}
	client := &http.Client{}

	resp, err := client.Post(baseURL+"/v1/sweeps", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	var status struct {
		ID       string `json:"id"`
		State    string `json:"state"`
		Emitted  int    `json:"emitted"`
		Cached   int    `json:"cached"`
		Computed int    `json:"computed"`
		Error    string `json:"error"`
	}
	if err := decodeOrError(resp, &status); err != nil {
		return fmt.Errorf("submit: %w", err)
	}

	statusURL := baseURL + "/v1/sweeps/" + status.ID
	for !terminalState(status.State) {
		time.Sleep(100 * time.Millisecond)
		resp, err := client.Get(statusURL)
		if err != nil {
			return err
		}
		if err := decodeOrError(resp, &status); err != nil {
			return fmt.Errorf("status: %w", err)
		}
	}
	switch status.State {
	case "failed":
		return fmt.Errorf("remote sweep %s failed: %s", status.ID, status.Error)
	case "cancelled":
		return fmt.Errorf("remote sweep %s was cancelled", status.ID)
	}

	if outPath != "" {
		accept := "text/csv"
		if format == "jsonl" {
			accept = "application/x-ndjson"
		}
		req, err := http.NewRequest(http.MethodGet, statusURL+"/rows", nil)
		if err != nil {
			return err
		}
		req.Header.Set("Accept", accept)
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			defer resp.Body.Close()
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("rows: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		}
		out, err := os.Create(outPath)
		if err != nil {
			resp.Body.Close()
			return err
		}
		_, cerr := io.Copy(out, resp.Body)
		resp.Body.Close()
		if err := out.Close(); cerr == nil {
			cerr = err
		}
		if cerr != nil {
			return cerr
		}
	}

	req, err := http.NewRequest(http.MethodGet, statusURL+"/summary", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/plain")
	resp, err = client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("summary: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		return err
	}
	if outPath != "" {
		fmt.Printf("rows written to %s\n", outPath)
	}
	if status.Cached > 0 {
		fmt.Printf("(%d of %d points replayed from the daemon's cache)\n", status.Cached, status.Emitted)
	}
	return nil
}

// decodeOrError decodes a JSON response body into v, turning non-2xx
// responses into errors carrying the daemon's {"error": ...} message.
func decodeOrError(resp *http.Response, v any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	return json.Unmarshal(data, v)
}

// terminalState mirrors serve's job-state machine on the client side.
func terminalState(s string) bool {
	return s == "done" || s == "failed" || s == "cancelled"
}
