package main

import (
	"reflect"
	"strings"
	"testing"

	"circuitstart/internal/spec"
)

// jsonTags collects the JSON field names of a struct type.
func jsonTags(t *testing.T, v any) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	rt := reflect.TypeOf(v)
	for i := 0; i < rt.NumField(); i++ {
		tag := rt.Field(i).Tag.Get("json")
		name, _, _ := strings.Cut(tag, ",")
		if name == "" || name == "-" {
			t.Fatalf("%s.%s has no json tag", rt.Name(), rt.Field(i).Name)
		}
		out[name] = true
	}
	return out
}

// flagNameFor derives the CLI flag a spec field maps to: unit suffixes
// drop (the flag's usage string documents the unit) and underscores
// collapse. This is the naming rule that keeps `-bandwidths` and
// `"bandwidths_mbps"` recognizably the same axis.
func flagNameFor(field string) string {
	for _, suffix := range []string{"_mbps", "_bytes", "_sec", "_ms"} {
		field = strings.TrimSuffix(field, suffix)
	}
	return strings.ReplaceAll(field, "_", "")
}

// TestSweepFlagsMatchSpecFields is the drift test the spec schema
// demands: every dimension axis in the wire schema has exactly one
// sweep CLI flag whose name derives from the JSON field, and every
// base flag maps onto a real spec.Base field. Adding an axis to
// internal/spec without a CLI flag — or vice versa — fails here.
func TestSweepFlagsMatchSpecFields(t *testing.T) {
	dimFields := jsonTags(t, spec.Dim{})

	seen := map[string]bool{}
	for _, def := range dimFlagDefs {
		if !dimFields[def.field] {
			t.Errorf("flag -%s maps to %q, which is not a spec.Dim field", def.flag, def.field)
		}
		if want := flagNameFor(def.field); def.flag != want {
			t.Errorf("flag -%s does not follow the naming rule for %q (want -%s)", def.flag, def.field, want)
		}
		if seen[def.field] {
			t.Errorf("spec.Dim field %q has two flags", def.field)
		}
		seen[def.field] = true
	}
	for field := range dimFields {
		if !seen[field] {
			t.Errorf("spec.Dim field %q has no sweep CLI flag", field)
		}
	}

	baseFields := jsonTags(t, spec.Base{})
	for flagName, field := range baseFlagFields {
		if field == "" {
			continue // File-level fields (seed)
		}
		if !baseFields[field] {
			t.Errorf("base flag -%s maps to %q, which is not a spec.Base field", flagName, field)
		}
		if want := flagNameFor(field); flagName != want && flagName != "base" {
			t.Errorf("base flag -%s does not follow the naming rule for %q (want -%s)", flagName, field, want)
		}
	}

	// Base fields with no flag must be intentional: spec-file-only
	// knobs. Keep this list in sync when extending either side.
	specOnly := map[string]bool{
		"population": true, "poisson_rate": true, "train": true,
		"shards": true, "scheduler": true, "max_circuits": true,
		"max_memory_bytes": true, "kill_policy": true,
		"faults": true, "fault_plan": true,
	}
	flagged := map[string]bool{}
	for _, field := range baseFlagFields {
		flagged[field] = true
	}
	for field := range baseFields {
		if !flagged[field] && !specOnly[field] {
			t.Errorf("spec.Base field %q has neither a sweep flag nor a spec-only exemption", field)
		}
	}
	for field := range specOnly {
		if !baseFields[field] {
			t.Errorf("spec-only exemption %q is not a spec.Base field", field)
		}
		if flagged[field] {
			t.Errorf("spec-only exemption %q actually has a flag", field)
		}
	}
}
