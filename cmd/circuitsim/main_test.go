package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig1Cwnd(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "trace.csv")
	if err := runFig1Cwnd([]string{"-distance", "1", "-horizon", "500ms", "-csv", csv}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 5 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if lines[0] != "time_ms,cwnd_kb" {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunFig1CwndBadFlags(t *testing.T) {
	if err := runFig1Cwnd([]string{"-distance", "9"}); err == nil {
		t.Fatal("bottleneck beyond the path accepted")
	}
	if err := runFig1Cwnd([]string{"-policy", "warp"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunFig1CDFSmall(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "cdf.csv")
	if err := runFig1CDF([]string{"-circuits", "4", "-relays", "10", "-size", "100000", "-csv", csv}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ttlb_circuitstart") {
		t.Fatalf("CSV missing arm column:\n%s", data)
	}
}

func TestRunAblation(t *testing.T) {
	for _, name := range []string{"compensation", "clock", "position"} {
		if err := runAblation([]string{"-name", name}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if err := runAblation([]string{"-name", "bogus"}); err == nil {
		t.Fatal("unknown ablation accepted")
	}
}

func TestRunAblationShared(t *testing.T) {
	if err := runAblation([]string{"-name", "shared", "-circuits", "3", "-trunk", "24"}); err != nil {
		t.Fatal(err)
	}
	if err := runAblation([]string{"-name", "shared", "-circuits", "0"}); err == nil {
		t.Fatal("zero circuits accepted")
	}
}

func TestRunDynamic(t *testing.T) {
	if err := runDynamic([]string{"-before", "8", "-after", "24"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenario(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "cdf.csv")
	args := []string{"-circuits", "4", "-relays", "10", "-size", "100000",
		"-reps", "2", "-workers", "4", "-poisson", "40", "-csv", csv}
	if err := runScenario(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ttlb_circuitstart") {
		t.Fatalf("CSV missing arm column:\n%s", data)
	}
	if err := runScenario([]string{"-arms", "warp"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := runScenario([]string{"-arms", ""}); err == nil {
		t.Fatal("empty arm list accepted")
	}
}
