package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig1Cwnd(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "trace.csv")
	if err := runFig1Cwnd([]string{"-distance", "1", "-horizon", "500ms", "-csv", csv}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 5 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if lines[0] != "time_ms,cwnd_kb" {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunFig1CwndBadFlags(t *testing.T) {
	if err := runFig1Cwnd([]string{"-distance", "9"}); err == nil {
		t.Fatal("bottleneck beyond the path accepted")
	}
	if err := runFig1Cwnd([]string{"-policy", "warp"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunFig1CDFSmall(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "cdf.csv")
	if err := runFig1CDF([]string{"-circuits", "4", "-relays", "10", "-size", "100000", "-csv", csv}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ttlb_circuitstart") {
		t.Fatalf("CSV missing arm column:\n%s", data)
	}
}

func TestRunAblation(t *testing.T) {
	for _, name := range []string{"compensation", "clock", "position"} {
		if err := runAblation([]string{"-name", name}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if err := runAblation([]string{"-name", "bogus"}); err == nil {
		t.Fatal("unknown ablation accepted")
	}
}

func TestRunAblationShared(t *testing.T) {
	if err := runAblation([]string{"-name", "shared", "-circuits", "3", "-trunk", "24"}); err != nil {
		t.Fatal(err)
	}
	if err := runAblation([]string{"-name", "shared", "-circuits", "0"}); err == nil {
		t.Fatal("zero circuits accepted")
	}
}

func TestRunAblationChurn(t *testing.T) {
	if err := runAblation([]string{"-name", "churn", "-arrivals", "6", "-rate", "6", "-failures", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := runAblation([]string{"-name", "churn", "-failures", "-1"}); err == nil {
		t.Fatal("negative failure count accepted")
	}
}

func TestRunAblationOverload(t *testing.T) {
	if err := runAblation([]string{"-name", "overload", "-pairs", "4", "-max-circuits", "5", "-kill", "kill-oldest"}); err != nil {
		t.Fatal(err)
	}
	if err := runAblation([]string{"-name", "overload", "-kill", "banish"}); err == nil {
		t.Fatal("unknown kill policy accepted")
	}
	if err := runAblation([]string{"-name", "overload", "-pairs", "0"}); err == nil {
		t.Fatal("zero circuit pairs accepted")
	}
}

// TestUsageMatchesCommandTable pins the help text to the dispatch
// table: every command the binary accepts is listed, every ablation
// name appears, and nothing extra is advertised.
func TestUsageMatchesCommandTable(t *testing.T) {
	var buf strings.Builder
	usage(&buf)
	help := buf.String()
	for _, cmd := range commands {
		if !strings.Contains(help, "\n  "+cmd.name) {
			t.Errorf("usage does not list command %q:\n%s", cmd.name, help)
		}
		if cmd.run == nil {
			t.Errorf("command %q has no implementation", cmd.name)
		}
	}
	for _, name := range ablationNames {
		if !strings.Contains(help, name) {
			t.Errorf("usage does not mention ablation %q", name)
		}
	}
	if got := strings.Count(help, "\n  "); got != len(commands) {
		t.Errorf("usage lists %d commands, table has %d", got, len(commands))
	}
}

// TestAblationNamesDispatch asserts every advertised ablation name is
// actually dispatchable (reaches its implementation rather than the
// unknown-name error). Names whose full runs other tests in this file
// already exercise — compensation/clock/position (TestRunAblation),
// shared (TestRunAblationShared), churn (TestRunAblationChurn),
// overload (TestRunAblationOverload), faults (TestRunAblationFaults) —
// and the minutes-long concurrency
// sweep are skipped; the remaining trace-topology sweeps are cheap
// enough to run outright.
func TestAblationNamesDispatch(t *testing.T) {
	covered := map[string]bool{
		"compensation": true, "clock": true, "position": true,
		"shared": true, "churn": true, "concurrency": true,
		"overload": true, "faults": true,
	}
	for _, name := range ablationNames {
		if covered[name] {
			continue
		}
		if err := runAblation([]string{"-name", name}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunDynamic(t *testing.T) {
	if err := runDynamic([]string{"-before", "8", "-after", "24"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenario(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "cdf.csv")
	args := []string{"-circuits", "4", "-relays", "10", "-size", "100000",
		"-reps", "2", "-workers", "4", "-poisson", "40", "-csv", csv}
	if err := runScenario(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ttlb_circuitstart") {
		t.Fatalf("CSV missing arm column:\n%s", data)
	}
	if err := runScenario([]string{"-arms", "warp"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := runScenario([]string{"-arms", ""}); err == nil {
		t.Fatal("empty arm list accepted")
	}
}
