package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAblationFaults(t *testing.T) {
	if err := runAblation([]string{"-name", "faults", "-circuits", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := runAblation([]string{"-name", "faults", "-circuits", "0"}); err == nil {
		t.Fatal("zero circuits accepted")
	}
}

// TestAblationFaultsTrainDeterminism pins the TrainSize ≤ 1 contract on
// the faulted path: 0 (disabled) and 1 (trains of one) must both take
// the one-event-per-cell schedule and print byte-identical reports.
func TestAblationFaultsTrainDeterminism(t *testing.T) {
	run := func(train string) string {
		return captureStdout(t, func() error {
			return runAblation([]string{"-name", "faults", "-circuits", "4", "-train", train})
		})
	}
	if a, b := run("0"), run("1"); a != b {
		t.Errorf("faults ablation differs between -train 0 and -train 1\n--- train 0 ---\n%s--- train 1 ---\n%s", a, b)
	}
}

func TestRunScenarioFaultsPreset(t *testing.T) {
	args := []string{"-circuits", "4", "-relays", "10", "-size", "100000",
		"-reps", "2", "-workers", "4", "-seed", "42", "-faults", "flaky"}
	out := captureStdout(t, func() error { return runScenario(args) })
	if !strings.Contains(out, "stalls") {
		t.Fatalf("faulted scenario report has no resilience section:\n%s", out)
	}
}

func TestRunScenarioFaultsSpecFile(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(spec, []byte(`{"recovery": {"enabled": true}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-circuits", "2", "-relays", "10", "-size", "50000", "-faults", spec}
	if err := runScenario(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioFaultsBadArg(t *testing.T) {
	err := runScenario([]string{"-circuits", "2", "-relays", "10", "-faults", "meteor"})
	if err == nil {
		t.Fatal("bogus -faults argument accepted")
	}
	if !strings.Contains(err.Error(), "neither a preset") {
		t.Fatalf("error %q does not explain the preset/spec-file choice", err)
	}
	// A malformed spec file must fail at parse, not run.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"bogus": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runScenario([]string{"-circuits", "2", "-relays", "10", "-faults", bad}); err == nil {
		t.Fatal("malformed spec file accepted")
	}
}

// goldenFaultsArgs seeds the committed faulted fixture
// testdata/golden_faults.txt: the golden scenario population with the
// "flaky" preset (a relay flap plus access jitter) and recovery.
// Transfers are sized so they span the flap's first downtime window —
// the fixture records a stall, a recovery and a rebuild, so all the
// fault RNG streams and the watchdog path feed the pinned bytes.
var goldenFaultsArgs = []string{
	"-circuits", "4", "-relays", "10", "-size", "2000000",
	"-poisson", "40", "-reps", "2", "-workers", "4", "-seed", "42",
	"-faults", "flaky",
}

// TestGoldenFaultsOutput is the faulted twin of
// TestGoldenScenarioOutput. Regenerate after an intentional
// determinism change with:
//
//	go run ./cmd/circuitsim scenario -circuits 4 -relays 10 \
//	  -size 2000000 -poisson 40 -reps 2 -workers 4 -seed 42 \
//	  -faults flaky > cmd/circuitsim/testdata/golden_faults.txt
func TestGoldenFaultsOutput(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_faults.txt")
	if err != nil {
		t.Fatal(err)
	}
	got := captureStdout(t, func() error { return runScenario(goldenFaultsArgs) })
	if got != string(want) {
		t.Errorf("seeded faulted output drifted from testdata/golden_faults.txt\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFaultsWorkerCountOutput checks the faulted run end to end across
// worker counts: trial scheduling must not leak into results even when
// watchdogs, fault timers and rebuilds fire mid-trial.
func TestFaultsWorkerCountOutput(t *testing.T) {
	serialArgs := append([]string{}, goldenFaultsArgs...)
	for i, a := range serialArgs {
		if a == "-workers" {
			serialArgs[i+1] = "1"
		}
	}
	serial := captureStdout(t, func() error { return runScenario(serialArgs) })
	parallel := captureStdout(t, func() error { return runScenario(goldenFaultsArgs) })
	if serial != parallel {
		t.Errorf("faulted output differs between -workers 1 and -workers 4\n--- workers 1 ---\n%s--- workers 4 ---\n%s", serial, parallel)
	}
}
