package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"circuitstart/internal/serve"
)

// TestRunSweepRemoteMatchesLocal pins the acceptance contract at the
// CLI surface: `sweep -remote` against a serve daemon writes the same
// row bytes as the in-process `sweep` for the same grid — and a second
// remote run replays the daemon's cache, still byte-identically.
func TestRunSweepRemoteMatchesLocal(t *testing.T) {
	s := serve.NewServer(serve.Options{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	dir := t.TempDir()
	local, remote, replay := filepath.Join(dir, "local.csv"), filepath.Join(dir, "remote.csv"), filepath.Join(dir, "replay.csv")
	grid := []string{"-gammas", "2,4", "-bandwidths", "8,16"}

	if err := runSweep(append([]string{"-out", local}, grid...)); err != nil {
		t.Fatal(err)
	}
	if err := runSweep(append([]string{"-remote", ts.URL, "-out", remote}, grid...)); err != nil {
		t.Fatal(err)
	}
	if err := runSweep(append([]string{"-remote", ts.URL, "-out", replay}, grid...)); err != nil {
		t.Fatal(err)
	}

	want, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(remote)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("remote rows differ from local:\n--- remote ---\n%s--- local ---\n%s", got, want)
	}
	rep, err := os.ReadFile(replay)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep) != string(want) {
		t.Fatalf("cache-replayed rows differ from local:\n--- replay ---\n%s--- local ---\n%s", rep, want)
	}
}

// TestRunSweepRemoteRejects checks the client-side error paths.
func TestRunSweepRemoteRejects(t *testing.T) {
	if err := runSweep([]string{"-remote", "127.0.0.1:1", "-resume", "2", "-gammas", "2"}); err == nil {
		t.Error("-remote with -resume accepted")
	}
	if err := runSweep([]string{"-remote", "127.0.0.1:1", "-gammas", "2"}); err == nil {
		t.Error("unreachable daemon reported success")
	}
}
