package main

import (
	"bytes"
	"io"
	"os"
	"testing"
)

// goldenScenarioArgs is the seeded run whose byte-exact output is
// committed as testdata/golden_scenario.txt. The CI golden job runs
// the built binary with these same flags and diffs against the
// fixture; this test does the equivalent in-process so developers
// catch drift before pushing. Poisson arrivals, two replications and
// four workers exercise the seed-substream and aggregation-order
// machinery, so a determinism break anywhere in the runner shows up
// here as a byte difference.
var goldenScenarioArgs = []string{
	"-circuits", "4", "-relays", "10", "-size", "100000",
	"-poisson", "40", "-reps", "2", "-workers", "4", "-seed", "42",
}

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

// TestGoldenScenarioOutput pins the byte-identical-determinism
// contract: the seeded scenario run must reproduce the committed
// fixture exactly. If a change legitimately alters seeded outputs
// (e.g. a new RNG stream), regenerate with:
//
//	go run ./cmd/circuitsim scenario -circuits 4 -relays 10 \
//	  -size 100000 -poisson 40 -reps 2 -workers 4 -seed 42 \
//	  > cmd/circuitsim/testdata/golden_scenario.txt
//
// and call out the determinism break in the change description.
func TestGoldenScenarioOutput(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_scenario.txt")
	if err != nil {
		t.Fatal(err)
	}
	got := captureStdout(t, func() error { return runScenario(goldenScenarioArgs) })
	if got != string(want) {
		t.Errorf("seeded scenario output drifted from testdata/golden_scenario.txt\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// goldenShardedArgs is the sharded determinism fixture's flag set,
// minus -shards (the matrix test appends it). Faults, cell trains,
// Poisson arrivals and two workers all ride along, so the fixture pins
// the sharded engine's full surface, not just the quiet data plane.
var goldenShardedArgs = []string{
	"-circuits", "4", "-relays", "24", "-switches", "8",
	"-size", "100000", "-poisson", "40", "-reps", "2",
	"-workers", "2", "-seed", "42", "-train", "2",
	"-faults", "testdata/sharded_faults.json",
}

// TestGoldenShardedOutput pins the sharded engine's determinism
// contract twice over: the output must match the committed fixture
// byte for byte AND must not change with the shard count. If a change
// legitimately alters sharded outputs, regenerate with:
//
//	go run ./cmd/circuitsim scenario -circuits 4 -relays 24 \
//	  -switches 8 -shards 1 -size 100000 -poisson 40 -reps 2 \
//	  -workers 2 -seed 42 -train 2 \
//	  -faults cmd/circuitsim/testdata/sharded_faults.json \
//	  > cmd/circuitsim/testdata/golden_sharded.txt
//
// and call out the determinism break in the change description.
func TestGoldenShardedOutput(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_sharded.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []string{"1", "2", "4", "8"} {
		args := append(append([]string{}, goldenShardedArgs...), "-shards", shards)
		got := captureStdout(t, func() error { return runScenario(args) })
		if got != string(want) {
			t.Errorf("sharded output at -shards %s drifted from testdata/golden_sharded.txt\n--- got ---\n%s--- want ---\n%s", shards, got, want)
		}
	}
}
