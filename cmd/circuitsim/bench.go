package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"circuitstart/internal/benchcases"
	"circuitstart/internal/traceio"
)

// runBench measures the headline benchmarks (the shared bodies in
// internal/benchcases, so a snapshot measures exactly the code the
// benchcheck CI gate guards) and optionally snapshots them into
// BENCH_<n>.json.
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "snapshot the results into BENCH_<n>.json (next free n)")
	outPath := fs.String("out", "", "explicit snapshot path (implies -json)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	snap := benchcases.Collect()
	tbl := traceio.NewTable("benchmark", "ns_op", "B_op", "allocs_op", "iters")
	for _, res := range snap.Benchmarks {
		tbl.AddRowf(res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.Iterations)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}

	if !*jsonOut && *outPath == "" {
		return nil
	}
	path := *outPath
	if path == "" {
		path = nextBenchPath(".")
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot written to %s\n", path)
	return nil
}

// nextBenchPath returns BENCH_<n>.json for the smallest n ≥ 1 not
// already present in dir, so successive snapshots form a trajectory.
func nextBenchPath(dir string) string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("%s/BENCH_%d.json", dir, n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}
