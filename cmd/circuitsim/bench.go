package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"circuitstart/internal/benchcases"
	"circuitstart/internal/traceio"
)

// benchResult is one benchmark's snapshot in a BENCH_<n>.json file.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchSnapshot is the file schema: enough environment to interpret the
// numbers, plus the headline benchmarks in a fixed order.
type benchSnapshot struct {
	Schema     string        `json:"schema"`
	Date       string        `json:"date"`
	GoVersion  string        `json:"go"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	CPUs       int           `json:"cpus"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// headlineBenchmarks are the per-layer microbenchmark bodies shared
// with the CI-gated test wrappers (see internal/benchcases), so a
// committed snapshot measures exactly the code the gate guards.
var headlineBenchmarks = []struct {
	name string
	fn   func(b *testing.B)
}{
	{"clock_schedule", benchcases.ClockSchedule},
	{"timer_rearm", benchcases.TimerRearm},
	{"link_transit", benchcases.LinkTransit},
	{"star_transit", benchcases.StarTransit},
	{"onion_wrap", benchcases.OnionWrap},
	{"onion_unwrap", benchcases.OnionUnwrap},
	{"single_transfer", benchcases.SingleTransfer},
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "snapshot the results into BENCH_<n>.json (next free n)")
	outPath := fs.String("out", "", "explicit snapshot path (implies -json)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	snap := benchSnapshot{
		Schema:    "circuitsim-bench/v1",
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}

	tbl := traceio.NewTable("benchmark", "ns_op", "B_op", "allocs_op", "iters")
	for _, hb := range headlineBenchmarks {
		r := testing.Benchmark(hb.fn)
		res := benchResult{
			Name:        hb.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		snap.Benchmarks = append(snap.Benchmarks, res)
		tbl.AddRowf(res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.Iterations)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}

	if !*jsonOut && *outPath == "" {
		return nil
	}
	path := *outPath
	if path == "" {
		path = nextBenchPath(".")
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot written to %s\n", path)
	return nil
}

// nextBenchPath returns BENCH_<n>.json for the smallest n ≥ 1 not
// already present in dir, so successive snapshots form a trajectory.
func nextBenchPath(dir string) string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("%s/BENCH_%d.json", dir, n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}
