package sim

import (
	"testing"
	"time"
)

func TestTimerFires(t *testing.T) {
	c := NewClock()
	fired := 0
	tm := NewTimer(c, func() { fired++ })
	tm.Arm(10 * time.Millisecond)
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	if got := tm.Deadline(); got != Time(10*time.Millisecond) {
		t.Errorf("Deadline = %v, want 10ms", got)
	}
	c.Run()
	if fired != 1 {
		t.Errorf("fired %d times, want 1", fired)
	}
	if tm.Armed() {
		t.Error("timer should be unarmed after firing")
	}
}

func TestTimerRearmReschedules(t *testing.T) {
	c := NewClock()
	var at Time
	tm := NewTimer(c, func() { at = c.Now() })
	tm.Arm(10 * time.Millisecond)
	tm.Arm(30 * time.Millisecond) // supersedes the first arming
	c.Run()
	if at != Time(30*time.Millisecond) {
		t.Errorf("fired at %v, want 30ms (re-arm must cancel prior schedule)", at)
	}
}

func TestTimerStop(t *testing.T) {
	c := NewClock()
	fired := false
	tm := NewTimer(c, func() { fired = true })
	tm.Arm(10 * time.Millisecond)
	tm.Stop()
	if tm.Armed() {
		t.Error("timer armed after Stop")
	}
	c.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	tm.Stop() // stopping an unarmed timer is a no-op
}

func TestTimerRearmFromCallback(t *testing.T) {
	c := NewClock()
	var fires []Time
	var tm *Timer
	tm = NewTimer(c, func() {
		fires = append(fires, c.Now())
		if len(fires) < 3 {
			tm.Arm(5 * time.Millisecond)
		}
	})
	tm.Arm(5 * time.Millisecond)
	c.Run()
	want := []Time{Time(5 * time.Millisecond), Time(10 * time.Millisecond), Time(15 * time.Millisecond)}
	if len(fires) != len(want) {
		t.Fatalf("fired %d times, want %d", len(fires), len(want))
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Errorf("fire %d at %v, want %v", i, fires[i], want[i])
		}
	}
}

func TestTimerArmAt(t *testing.T) {
	c := NewClock()
	var at Time
	tm := NewTimer(c, func() { at = c.Now() })
	tm.ArmAt(Time(42 * time.Millisecond))
	c.Run()
	if at != Time(42*time.Millisecond) {
		t.Errorf("fired at %v, want 42ms", at)
	}
}

func TestTimerDeadlineUnarmed(t *testing.T) {
	c := NewClock()
	tm := NewTimer(c, func() {})
	if tm.Deadline() != 0 {
		t.Error("Deadline of unarmed timer should be 0")
	}
}

func TestNewTimerPanics(t *testing.T) {
	c := NewClock()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("nil clock", func() { NewTimer(nil, func() {}) })
	mustPanic("nil fn", func() { NewTimer(c, nil) })
}

func TestTimerRearmMatchesCancelScheduleOrdering(t *testing.T) {
	// Rescheduling in place must be indistinguishable from cancel +
	// schedule: a timer re-armed to an instant where another event is
	// later scheduled fires in (re)arm order, not original-arm order.
	c := NewClock()
	var order []string
	tm := NewTimer(c, func() { order = append(order, "timer") })
	tm.Arm(5 * time.Millisecond)
	c.After(time.Millisecond, func() { order = append(order, "a") })
	tm.Arm(time.Millisecond) // re-arm to the same instant as "a", after it
	c.After(time.Millisecond, func() { order = append(order, "b") })
	c.Run()
	want := [3]string{"a", "timer", "b"}
	if [3]string(order) != want {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestTimerRearmNegativeDelayPanics(t *testing.T) {
	c := NewClock()
	tm := NewTimer(c, func() {})
	tm.Arm(time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("negative re-arm did not panic")
		}
	}()
	tm.Arm(-time.Second)
}
