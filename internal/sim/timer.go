package sim

import "fmt"
import "time"

// Timer is a restartable one-shot timer bound to a Clock. It is the
// building block for transport retransmission timers: arming an already
// armed timer reschedules it, and firing clears the armed state before
// invoking the callback so the callback may re-arm it.
//
// Re-arming an armed timer reschedules its event in place (new instant,
// fresh sequence number) instead of cancelling and reallocating, so the
// arm-per-ACK pattern of the transport RTO is allocation-free; the fire
// callback is bound once at construction for the same reason.
type Timer struct {
	clock  *Clock
	fn     func()
	fireFn func() // t.fire bound once, reused by every (re)arm
	handle Handle
}

// NewTimer returns an unarmed timer that will invoke fn when it fires.
func NewTimer(clock *Clock, fn func()) *Timer {
	if clock == nil {
		panic("sim: NewTimer with nil clock")
	}
	if fn == nil {
		panic("sim: NewTimer with nil function")
	}
	t := &Timer{clock: clock, fn: fn}
	t.fireFn = t.fire
	return t
}

// Arm (re)schedules the timer to fire d from now. Any previously
// scheduled firing is superseded.
func (t *Timer) Arm(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	t.ArmAt(t.clock.Now().Add(d))
}

// ArmAt (re)schedules the timer to fire at the absolute instant at.
func (t *Timer) ArmAt(at Time) {
	if t.handle.Active() {
		t.clock.reschedule(t.handle.ev, at)
		return
	}
	t.handle = t.clock.At(at, t.fireFn)
}

// Stop cancels a pending firing. Stopping an unarmed timer is a no-op.
func (t *Timer) Stop() { t.handle.Cancel() }

// Armed reports whether the timer is currently scheduled to fire.
func (t *Timer) Armed() bool { return t.handle.Active() }

// Deadline returns the instant the timer will fire. It is only
// meaningful when Armed reports true.
func (t *Timer) Deadline() Time {
	if !t.Armed() {
		return 0
	}
	return t.handle.ev.at
}

func (t *Timer) fire() {
	t.handle = Handle{}
	t.fn()
}
