package sim

import "time"

// Timer is a restartable one-shot timer bound to a Clock. It is the
// building block for transport retransmission timers: arming an already
// armed timer reschedules it, and firing clears the armed state before
// invoking the callback so the callback may re-arm it.
type Timer struct {
	clock  *Clock
	fn     func()
	handle Handle
}

// NewTimer returns an unarmed timer that will invoke fn when it fires.
func NewTimer(clock *Clock, fn func()) *Timer {
	if clock == nil {
		panic("sim: NewTimer with nil clock")
	}
	if fn == nil {
		panic("sim: NewTimer with nil function")
	}
	return &Timer{clock: clock, fn: fn}
}

// Arm (re)schedules the timer to fire d from now. Any previously
// scheduled firing is cancelled.
func (t *Timer) Arm(d time.Duration) {
	t.handle.Cancel()
	t.handle = t.clock.After(d, t.fire)
}

// ArmAt (re)schedules the timer to fire at the absolute instant at.
func (t *Timer) ArmAt(at Time) {
	t.handle.Cancel()
	t.handle = t.clock.At(at, t.fire)
}

// Stop cancels a pending firing. Stopping an unarmed timer is a no-op.
func (t *Timer) Stop() { t.handle.Cancel() }

// Armed reports whether the timer is currently scheduled to fire.
func (t *Timer) Armed() bool { return t.handle.Active() }

// Deadline returns the instant the timer will fire. It is only
// meaningful when Armed reports true.
func (t *Timer) Deadline() Time {
	if !t.Armed() {
		return 0
	}
	return t.handle.ev.at
}

func (t *Timer) fire() {
	t.handle = Handle{}
	t.fn()
}
