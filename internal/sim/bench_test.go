package sim

import (
	"testing"
	"time"
)

// BenchmarkClockScheduleRun measures raw event throughput including the
// per-iteration closure the caller builds — the historical baseline
// shape, kept for trend comparison against the gated allocation-free
// scheduling benchmark (internal/benchcases BenchmarkClockSchedule).
func BenchmarkClockScheduleRun(b *testing.B) {
	c := NewClock()
	n := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.After(time.Microsecond, func() { n++ })
		c.Run()
	}
	if n != b.N {
		b.Fatalf("executed %d of %d", n, b.N)
	}
}

// BenchmarkClockDeepQueue measures heap behaviour with many pending
// events: 1024 timers armed, then drained.
func BenchmarkClockDeepQueue(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewClock()
		n := 0
		for j := 0; j < 1024; j++ {
			c.After(time.Duration(j)*time.Microsecond, func() { n++ })
		}
		c.Run()
		if n != 1024 {
			b.Fatal("lost events")
		}
	}
}

// BenchmarkTimerCancelRearm measures the stop-then-arm cycle (probe
// timers): cancellation must recycle the event through the free list.
func BenchmarkTimerCancelRearm(b *testing.B) {
	c := NewClock()
	tm := NewTimer(c, func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Arm(time.Millisecond)
		tm.Stop()
	}
	c.Run()
}
