package sim

import (
	"testing"
	"time"
)

// BenchmarkClockScheduleRun measures raw event throughput: schedule and
// execute one event per iteration.
func BenchmarkClockScheduleRun(b *testing.B) {
	c := NewClock()
	n := 0
	for i := 0; i < b.N; i++ {
		c.After(time.Microsecond, func() { n++ })
		c.Run()
	}
	if n != b.N {
		b.Fatalf("executed %d of %d", n, b.N)
	}
}

// BenchmarkClockDeepQueue measures heap behaviour with many pending
// events: 1024 timers armed, then drained.
func BenchmarkClockDeepQueue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewClock()
		n := 0
		for j := 0; j < 1024; j++ {
			c.After(time.Duration(j)*time.Microsecond, func() { n++ })
		}
		c.Run()
		if n != 1024 {
			b.Fatal("lost events")
		}
	}
}

// BenchmarkTimerRearm measures the cancel-and-rearm pattern the
// transport RTO uses on every acknowledgment.
func BenchmarkTimerRearm(b *testing.B) {
	c := NewClock()
	tm := NewTimer(c, func() {})
	for i := 0; i < b.N; i++ {
		tm.Arm(time.Millisecond)
	}
	tm.Stop()
	c.Run()
}
