package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtEpoch(t *testing.T) {
	c := NewClock()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", c.Pending())
	}
}

func TestScheduleAndRunOrdering(t *testing.T) {
	c := NewClock()
	var order []int
	c.After(30*time.Millisecond, func() { order = append(order, 3) })
	c.After(10*time.Millisecond, func() { order = append(order, 1) })
	c.After(20*time.Millisecond, func() { order = append(order, 2) })
	end := c.Run()
	if want := Time(30 * time.Millisecond); end != want {
		t.Errorf("Run() returned %v, want %v", end, want)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", order)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	c := NewClock()
	var order []int
	at := Time(5 * time.Millisecond)
	for i := 0; i < 10; i++ {
		i := i
		c.At(at, func() { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events ran out of order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	c := NewClock()
	var times []Time
	c.After(time.Millisecond, func() {
		times = append(times, c.Now())
		c.After(time.Millisecond, func() {
			times = append(times, c.Now())
		})
	})
	c.Run()
	if len(times) != 2 {
		t.Fatalf("got %d events, want 2", len(times))
	}
	if times[0] != Time(time.Millisecond) || times[1] != Time(2*time.Millisecond) {
		t.Errorf("times = %v, want [1ms 2ms]", times)
	}
}

func TestScheduleAtCurrentInstantDuringRun(t *testing.T) {
	c := NewClock()
	ran := false
	c.After(time.Millisecond, func() {
		c.After(0, func() { ran = true })
	})
	c.Run()
	if !ran {
		t.Error("zero-delay event scheduled during run did not execute")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	c := NewClock()
	var ran []int
	c.After(10*time.Millisecond, func() { ran = append(ran, 1) })
	c.After(20*time.Millisecond, func() { ran = append(ran, 2) })
	c.After(30*time.Millisecond, func() { ran = append(ran, 3) })

	end := c.RunUntil(Time(25 * time.Millisecond))
	if want := Time(25 * time.Millisecond); end != want {
		t.Errorf("RunUntil returned %v, want %v (clock parked at horizon)", end, want)
	}
	if len(ran) != 2 {
		t.Fatalf("ran %v, want first two events only", ran)
	}
	// Continue to the end.
	c.Run()
	if len(ran) != 3 || ran[2] != 3 {
		t.Errorf("after resume ran = %v, want [1 2 3]", ran)
	}
}

func TestRunUntilAdvancesClockToHorizonWithEmptyQueue(t *testing.T) {
	c := NewClock()
	c.RunUntil(Time(time.Second))
	if c.Now() != Time(time.Second) {
		t.Errorf("Now() = %v, want 1s", c.Now())
	}
}

func TestCancel(t *testing.T) {
	c := NewClock()
	ran := false
	h := c.After(time.Millisecond, func() { ran = true })
	if !h.Active() {
		t.Fatal("handle should be active after scheduling")
	}
	if !h.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if h.Cancel() {
		t.Error("second Cancel should report false")
	}
	if h.Active() {
		t.Error("handle should be inactive after cancel")
	}
	c.Run()
	if ran {
		t.Error("cancelled event executed")
	}
}

func TestCancelDuringRun(t *testing.T) {
	c := NewClock()
	var h Handle
	ran := false
	c.After(time.Millisecond, func() { h.Cancel() })
	h = c.After(2*time.Millisecond, func() { ran = true })
	c.Run()
	if ran {
		t.Error("event cancelled mid-run still executed")
	}
}

func TestStop(t *testing.T) {
	c := NewClock()
	var count int
	for i := 1; i <= 5; i++ {
		c.After(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 2 {
				c.Stop()
			}
		})
	}
	c.Run()
	if count != 2 {
		t.Errorf("executed %d events after Stop, want 2", count)
	}
	if c.Pending() == 0 {
		t.Error("queue should retain unexecuted events after Stop")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	c := NewClock()
	c.After(time.Millisecond, func() {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Error("At() in the past did not panic")
		}
	}()
	c.At(0, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Error("After() with negative delay did not panic")
		}
	}()
	c.After(-time.Millisecond, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Error("At() with nil func did not panic")
		}
	}()
	c.At(0, nil)
}

func TestStep(t *testing.T) {
	c := NewClock()
	var ran []int
	c.After(time.Millisecond, func() { ran = append(ran, 1) })
	c.After(2*time.Millisecond, func() { ran = append(ran, 2) })
	if !c.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if len(ran) != 1 || c.Now() != Time(time.Millisecond) {
		t.Fatalf("after one step: ran=%v now=%v", ran, c.Now())
	}
	if !c.Step() {
		t.Fatal("second Step returned false")
	}
	if c.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestProcessedCount(t *testing.T) {
	c := NewClock()
	for i := 0; i < 7; i++ {
		c.After(time.Duration(i)*time.Millisecond, func() {})
	}
	h := c.After(time.Hour, func() {})
	h.Cancel()
	c.Run()
	if c.Processed() != 7 {
		t.Errorf("Processed() = %d, want 7 (cancelled events don't count)", c.Processed())
	}
}

// Property: for any set of delays, events execute in nondecreasing time
// order and the clock never goes backwards.
func TestPropertyMonotoneExecution(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		if len(delaysMs) > 200 {
			delaysMs = delaysMs[:200]
		}
		c := NewClock()
		var seen []Time
		for _, d := range delaysMs {
			c.After(time.Duration(d)*time.Millisecond, func() {
				seen = append(seen, c.Now())
			})
		}
		c.Run()
		if len(seen) != len(delaysMs) {
			return false
		}
		if !sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] }) {
			return false
		}
		// The executed times must be a permutation of the scheduled ones.
		want := make([]Time, len(delaysMs))
		for i, d := range delaysMs {
			want[i] = Time(time.Duration(d) * time.Millisecond)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if seen[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: interleaving scheduling and cancellation never executes a
// cancelled event and always executes every non-cancelled one.
func TestPropertyCancellationExactness(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewClock()
		type rec struct {
			h         Handle
			cancelled bool
			ran       bool
		}
		recs := make([]*rec, 0, n)
		for i := 0; i < int(n); i++ {
			r := &rec{}
			r.h = c.After(time.Duration(rng.Intn(50))*time.Millisecond, func() { r.ran = true })
			recs = append(recs, r)
		}
		for _, r := range recs {
			if rng.Intn(3) == 0 {
				r.h.Cancel()
				r.cancelled = true
			}
		}
		c.Run()
		for _, r := range recs {
			if r.cancelled == r.ran {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(1500 * time.Millisecond)
	b := Time(500 * time.Millisecond)
	if got := a.Sub(b); got != time.Second {
		t.Errorf("Sub = %v, want 1s", got)
	}
	if got := b.Add(time.Second); got != a {
		t.Errorf("Add = %v, want %v", got, a)
	}
	if !b.Before(a) || a.Before(b) {
		t.Error("Before comparisons wrong")
	}
	if !a.After(b) || b.After(a) {
		t.Error("After comparisons wrong")
	}
	if got := a.Seconds(); got != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", got)
	}
	if got := a.Milliseconds(); got != 1500 {
		t.Errorf("Milliseconds = %v, want 1500", got)
	}
	if a.String() != "1.5s" {
		t.Errorf("String = %q", a.String())
	}
}

func TestPendingCountsExactly(t *testing.T) {
	c := NewClock()
	handles := make([]Handle, 10)
	for i := range handles {
		handles[i] = c.After(time.Duration(i+1)*time.Millisecond, func() {})
	}
	if got := c.Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	// Cancelled events leave the queue immediately — a long run that
	// cancels many RTO timers must not inflate the pending count.
	for i := 0; i < 6; i++ {
		handles[i].Cancel()
	}
	if got := c.Pending(); got != 4 {
		t.Fatalf("Pending after 6 cancels = %d, want 4", got)
	}
	c.Run()
	if got := c.Pending(); got != 0 {
		t.Fatalf("Pending after Run = %d, want 0", got)
	}
	if got := c.Processed(); got != 4 {
		t.Fatalf("Processed = %d, want 4", got)
	}
}

func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	c := NewClock()
	ran := 0
	h := c.After(time.Millisecond, func() { ran++ })
	c.Run()
	// The fired event has been recycled; a second schedule reuses its
	// slot. The stale handle must be inert against the new occupant.
	h2 := c.After(time.Millisecond, func() { ran += 10 })
	if h.Cancel() {
		t.Fatal("stale handle cancelled a recycled event")
	}
	if h.Active() {
		t.Fatal("stale handle reports active")
	}
	if !h2.Active() {
		t.Fatal("fresh handle reports inactive")
	}
	c.Run()
	if ran != 11 {
		t.Fatalf("ran = %d, want 11 (both events fired)", ran)
	}
}

func TestCancelledThenRescheduledOrdering(t *testing.T) {
	// Heavy cancel/reschedule churn at one instant must preserve FIFO of
	// the surviving events — the free list must not perturb (at, seq).
	c := NewClock()
	var order []int
	at := Time(time.Millisecond)
	for i := 0; i < 100; i++ {
		i := i
		h := c.At(at, func() { order = append(order, i) })
		if i%2 == 1 {
			h.Cancel()
		}
	}
	c.Run()
	if len(order) != 50 {
		t.Fatalf("ran %d events, want 50", len(order))
	}
	for j := 1; j < len(order); j++ {
		if order[j] <= order[j-1] {
			t.Fatalf("FIFO violated: %d after %d", order[j], order[j-1])
		}
	}
}
