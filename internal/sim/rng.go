package sim

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a deterministic random stream. Every stochastic component in the
// simulator (workload generators, relay bandwidth sampling, jitter) draws
// from its own named stream derived from a single experiment seed, so
// adding a new consumer of randomness does not perturb existing ones.
type RNG struct {
	*rand.Rand
	name string
}

// NewRNG derives an independent stream from seed and a component name.
// The same (seed, name) pair always yields the same stream.
func NewRNG(seed int64, name string) *RNG {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", seed, name)
	return &RNG{
		Rand: rand.New(rand.NewSource(int64(h.Sum64()))), //nolint:gosec // simulation, not crypto
		name: name,
	}
}

// Name returns the stream's component name.
func (r *RNG) Name() string { return r.name }

// Uniform returns a sample from U[lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// LogNormal returns a sample from the log-normal distribution with the
// given location (mu) and scale (sigma) of the underlying normal. Tor
// relay bandwidths are heavy-tailed; log-normal is the standard synthetic
// stand-in.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto returns a sample from the Pareto distribution with the given
// minimum value and tail index alpha.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Exponential returns a sample from Exp(1/mean).
func (r *RNG) Exponential(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
