// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate everything else in this repository runs on:
// network links, transport timers, and application workloads all schedule
// events on a single virtual clock. Simulated time is represented as
// time.Duration offsets from the simulation epoch, so a nanosecond of
// virtual time costs nothing to "wait" for.
//
// The design mirrors the event core of ns-3 (which the paper's nstor
// framework builds on): a priority queue of timestamped events, a strictly
// monotone clock, and stable FIFO ordering for events scheduled at the
// same instant. Determinism is a hard requirement — given the same seed,
// every experiment in this repository reproduces byte-identical traces.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured as an offset from the
// simulation epoch (t = 0). It is a distinct type so that virtual time
// cannot be accidentally mixed with wall-clock time.
type Time time.Duration

// Common Time constants re-exported for convenience.
const (
	Nanosecond  Time = Time(time.Nanosecond)
	Microsecond Time = Time(time.Microsecond)
	Millisecond Time = Time(time.Millisecond)
	Second      Time = Time(time.Second)
)

// MaxTime is the largest representable instant. It is used as the
// default horizon for unbounded runs.
const MaxTime Time = Time(math.MaxInt64)

// Duration converts t to a time.Duration offset from the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the instant expressed in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Milliseconds returns the instant expressed in milliseconds, with
// sub-millisecond precision retained.
func (t Time) Milliseconds() float64 { return float64(t) / float64(time.Millisecond) }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

func (t Time) String() string { return time.Duration(t).String() }

// event is a single scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO for equal timestamps
	fn   func()
	dead bool // cancelled
	idx  int  // heap index, -1 when popped
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}

// Clock is a discrete-event scheduler plus virtual clock. It is not safe
// for concurrent use: the entire simulation is single-threaded by design,
// which is what makes runs reproducible.
type Clock struct {
	now     Time
	queue   eventQueue
	seq     uint64
	running bool
	stopped bool

	processed uint64
}

// NewClock returns a clock positioned at the epoch with an empty queue.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Processed returns the number of events executed so far. It is useful
// for progress accounting in long experiments and for asserting that a
// scenario actually did work.
func (c *Clock) Processed() uint64 { return c.processed }

// Pending returns the number of events currently scheduled (including
// cancelled events that have not yet been reaped).
func (c *Clock) Pending() int { return len(c.queue) }

// Handle identifies a scheduled event and allows cancelling it.
type Handle struct {
	ev *event
}

// Cancel prevents the event from running. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel reports whether the
// event was still pending.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.dead || h.ev.idx == -1 {
		return false
	}
	h.ev.dead = true
	return true
}

// Active reports whether the event is still scheduled to run.
func (h Handle) Active() bool {
	return h.ev != nil && !h.ev.dead && h.ev.idx != -1
}

// At schedules fn to run at the absolute instant t. Scheduling in the
// past panics: that is always a logic error in a discrete-event model.
func (c *Clock) At(t Time, fn func()) Handle {
	if t < c.now {
		panic(fmt.Sprintf("sim: scheduling event at %v which is before now %v", t, c.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &event{at: t, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.queue, ev)
	return Handle{ev: ev}
}

// After schedules fn to run d after the current instant.
func (c *Clock) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return c.At(c.now.Add(d), fn)
}

// Stop aborts a running Run/RunUntil after the current event returns.
func (c *Clock) Stop() { c.stopped = true }

// Run executes events until the queue is empty or Stop is called.
// It returns the time of the last executed event.
func (c *Clock) Run() Time { return c.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= horizon, advancing the
// clock as it goes. On return the clock is positioned at
// min(horizon, time of last event) — or at horizon exactly when the
// queue still holds later events, so that subsequent scheduling
// continues from the horizon.
func (c *Clock) RunUntil(horizon Time) Time {
	if c.running {
		panic("sim: RunUntil called re-entrantly")
	}
	c.running = true
	c.stopped = false
	defer func() { c.running = false }()

	for len(c.queue) > 0 && !c.stopped {
		next := c.queue[0]
		if next.at > horizon {
			c.now = horizon
			return c.now
		}
		heap.Pop(&c.queue)
		if next.dead {
			continue
		}
		c.now = next.at
		c.processed++
		next.fn()
	}
	if horizon != MaxTime && c.now < horizon {
		c.now = horizon
	}
	return c.now
}

// Step executes exactly one pending (non-cancelled) event and reports
// whether one was executed. It is primarily a testing aid.
func (c *Clock) Step() bool {
	for len(c.queue) > 0 {
		next := heap.Pop(&c.queue).(*event)
		if next.dead {
			continue
		}
		c.now = next.at
		c.processed++
		next.fn()
		return true
	}
	return false
}
