// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate everything else in this repository runs on:
// network links, transport timers, and application workloads all schedule
// events on a single virtual clock. Simulated time is represented as
// time.Duration offsets from the simulation epoch, so a nanosecond of
// virtual time costs nothing to "wait" for.
//
// The design mirrors the event core of ns-3 (which the paper's nstor
// framework builds on): a priority queue of timestamped events, a strictly
// monotone clock, and stable FIFO ordering for events scheduled at the
// same instant. Determinism is a hard requirement — given the same seed,
// every experiment in this repository reproduces byte-identical traces.
//
// The scheduler is built for an allocation-free steady state: the
// priority queue is an inlined 4-ary min-heap specialized to the event
// type (shallower than a binary heap, and the four-child comparison loop
// stays in cache), fired and cancelled events are recycled through a
// per-clock free list, and cancellation removes the event from the heap
// immediately, so long runs that arm and disarm millions of timers never
// inflate the queue with dead entries.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured as an offset from the
// simulation epoch (t = 0). It is a distinct type so that virtual time
// cannot be accidentally mixed with wall-clock time.
type Time time.Duration

// Common Time constants re-exported for convenience.
const (
	Nanosecond  Time = Time(time.Nanosecond)
	Microsecond Time = Time(time.Microsecond)
	Millisecond Time = Time(time.Millisecond)
	Second      Time = Time(time.Second)
)

// MaxTime is the largest representable instant. It is used as the
// default horizon for unbounded runs.
const MaxTime Time = Time(math.MaxInt64)

// Duration converts t to a time.Duration offset from the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the instant expressed in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Milliseconds returns the instant expressed in milliseconds, with
// sub-millisecond precision retained.
func (t Time) Milliseconds() float64 { return float64(t) / float64(time.Millisecond) }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

func (t Time) String() string { return time.Duration(t).String() }

// event is a single scheduled callback. Events are owned by their Clock
// and recycled through its free list after firing or cancellation; a
// generation counter invalidates any Handle still pointing at a recycled
// event.
type event struct {
	at     Time
	origin Time   // virtual instant the scheduling call was made
	seq    uint64 // tie-breaker: FIFO for equal (at, origin)
	fn     func()
	idx    int32  // heap index, -1 when not queued
	gen    uint64 // bumped on recycle; Handles capture the value they saw
	clk    *Clock // owning clock, for Handle.Cancel
	nxt    *event // free-list link
}

// heapSlot is one heap entry: the event's sort key inlined next to its
// pointer. Keeping (at, seq) in the heap's own backing array means the
// sift loops compare against contiguous memory instead of dereferencing
// a scattered *event per comparison — on transfer-heavy runs the heap
// is the single hottest structure and those misses dominated it.
type heapSlot struct {
	at     Time
	origin Time
	seq    uint64
	ev     *event
}

// slotLess orders entries by (at, origin, seq) — earliest instant
// first, then earliest scheduling instant, FIFO within both. For
// events scheduled by the clock's own execution the origin is the
// current time, so origin order and seq order always agree and the key
// degenerates to the classic (at, seq) FIFO — byte-identical to the
// pre-origin engine. The origin field exists for the sharded engine:
// a handoff imported at a barrier is scheduled with the origin it had
// on its source shard (its serialization end), which slots it among
// equal-instant events exactly where the single-clock engine would
// have put it.
func slotLess(a, b heapSlot) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.origin != b.origin {
		return a.origin < b.origin
	}
	return a.seq < b.seq
}

// Clock is a discrete-event scheduler plus virtual clock. It is not safe
// for concurrent use: the entire simulation is single-threaded by design,
// which is what makes runs reproducible.
type Clock struct {
	now     Time
	queue   []heapSlot // 4-ary min-heap ordered by (at, seq)
	seq     uint64
	free    *event // recycled events awaiting reuse
	running bool
	stopped bool

	processed uint64
}

// NewClock returns a clock positioned at the epoch with an empty queue.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Processed returns the number of events executed so far. It is useful
// for progress accounting in long experiments and for asserting that a
// scenario actually did work.
func (c *Clock) Processed() uint64 { return c.processed }

// Pending returns the number of events currently scheduled. Cancelled
// events are removed from the queue immediately, so the count is exact —
// long transport runs that cancel many RTO timers do not inflate it.
func (c *Clock) Pending() int { return len(c.queue) }

// Next returns the instant of the earliest pending event and whether
// one exists. The sharded engine uses it as the horizon probe: a shard
// whose next event lies beyond the window end is idle for that window,
// and a trial whose shards are all idle (with empty boundary queues)
// has quiesced and may stop at the barrier.
func (c *Clock) Next() (Time, bool) {
	if len(c.queue) == 0 {
		return 0, false
	}
	return c.queue[0].at, true
}

// Handle identifies a scheduled event and allows cancelling it. The zero
// Handle is inert: Cancel and Active return false.
type Handle struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from running, removing it from the queue
// immediately. Cancelling an event that has already fired or been
// cancelled is a no-op. Cancel reports whether the event was still
// pending.
func (h Handle) Cancel() bool {
	if !h.Active() {
		return false
	}
	c := h.ev.clk
	c.heapRemove(h.ev)
	c.release(h.ev)
	return true
}

// Active reports whether the event is still scheduled to run.
func (h Handle) Active() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.idx >= 0
}

// Reschedule moves the pending event to the absolute instant t, with
// cancel-and-reschedule ordering semantics (see Clock.reschedule). It
// reports whether the event was still pending; a fired or cancelled
// event is left alone.
func (h Handle) Reschedule(t Time) bool {
	if !h.Active() {
		return false
	}
	h.ev.clk.reschedule(h.ev, t)
	return true
}

// alloc takes an event from the free list, or grows the arena by one.
func (c *Clock) alloc() *event {
	ev := c.free
	if ev == nil {
		return &event{clk: c}
	}
	c.free = ev.nxt
	ev.nxt = nil
	return ev
}

// release recycles an event that has fired or been cancelled. Bumping
// the generation makes every outstanding Handle to it inert.
func (c *Clock) release(ev *event) {
	ev.fn = nil
	ev.gen++
	ev.nxt = c.free
	c.free = ev
}

// At schedules fn to run at the absolute instant t. Scheduling in the
// past panics: that is always a logic error in a discrete-event model.
func (c *Clock) At(t Time, fn func()) Handle {
	if t < c.now {
		panic(fmt.Sprintf("sim: scheduling event at %v which is before now %v", t, c.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	return c.schedule(t, c.now, fn)
}

// AtOrigin schedules fn at the absolute instant t with an explicit
// origin for equal-instant ordering (see slotLess). origin must not
// exceed t. It exists for the sharded engine's barrier imports; all
// other callers want At, whose origin is the current instant.
func (c *Clock) AtOrigin(t, origin Time, fn func()) Handle {
	if t < c.now {
		panic(fmt.Sprintf("sim: scheduling event at %v which is before now %v", t, c.now))
	}
	if origin > t {
		panic(fmt.Sprintf("sim: event origin %v after its instant %v", origin, t))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	return c.schedule(t, origin, fn)
}

func (c *Clock) schedule(t, origin Time, fn func()) Handle {
	ev := c.alloc()
	ev.at = t
	ev.origin = origin
	ev.seq = c.seq
	ev.fn = fn
	c.seq++
	c.heapPush(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current instant.
func (c *Clock) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return c.At(c.now.Add(d), fn)
}

// reschedule moves a pending event to the absolute instant t, consuming
// a fresh sequence number exactly as cancel-and-reschedule would, so
// FIFO ordering at equal timestamps is indistinguishable from the
// two-call pattern — without the allocation.
func (c *Clock) reschedule(ev *event, t Time) {
	if t < c.now {
		panic(fmt.Sprintf("sim: scheduling event at %v which is before now %v", t, c.now))
	}
	ev.at = t
	ev.origin = c.now
	ev.seq = c.seq
	c.seq++
	c.heapFix(ev)
}

// Stop aborts a running Run/RunUntil after the current event returns.
func (c *Clock) Stop() { c.stopped = true }

// Reset returns the clock to the epoch with an empty queue, recycling
// every still-pending event through the free list. Outstanding Handles
// and armed Timers become inert exactly as if each event had been
// cancelled. The free list itself is retained, which is the point:
// arena-style trial loops reuse one clock so the event arena built up
// in trial N serves trial N+1 without reallocating. Resetting a clock
// that is currently running panics.
func (c *Clock) Reset() {
	if c.running {
		panic("sim: Reset called while running")
	}
	for i, slot := range c.queue {
		slot.ev.idx = -1
		c.release(slot.ev)
		c.queue[i] = heapSlot{}
	}
	c.queue = c.queue[:0]
	c.now = 0
	c.seq = 0
	c.processed = 0
	c.stopped = false
}

// Run executes events until the queue is empty or Stop is called.
// It returns the time of the last executed event.
func (c *Clock) Run() Time { return c.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= horizon, advancing the
// clock as it goes. On return the clock is positioned at
// min(horizon, time of last event) — or at horizon exactly when the
// queue still holds later events, so that subsequent scheduling
// continues from the horizon.
func (c *Clock) RunUntil(horizon Time) Time {
	if c.running {
		panic("sim: RunUntil called re-entrantly")
	}
	c.running = true
	c.stopped = false
	defer func() { c.running = false }()

	for len(c.queue) > 0 && !c.stopped {
		next := c.queue[0]
		if next.at > horizon {
			c.now = horizon
			return c.now
		}
		c.heapPop()
		fn := next.ev.fn
		c.now = next.at
		c.processed++
		// Recycle before invoking: fn may schedule new events and is
		// allowed to reuse this very slot.
		c.release(next.ev)
		fn()
	}
	if horizon != MaxTime && c.now < horizon {
		c.now = horizon
	}
	return c.now
}

// Step executes exactly one pending event and reports whether one was
// executed. It is primarily a testing aid.
func (c *Clock) Step() bool {
	if len(c.queue) == 0 {
		return false
	}
	next := c.queue[0]
	c.heapPop()
	fn := next.ev.fn
	c.now = next.at
	c.processed++
	c.release(next.ev)
	fn()
	return true
}

// --- inlined 4-ary min-heap ------------------------------------------
//
// Children of node i sit at 4i+1..4i+4; the parent of node i at
// (i-1)/4. Compared to container/heap this removes the interface
// dispatch per comparison and halves the tree depth.

func (c *Clock) heapPush(ev *event) {
	ev.idx = int32(len(c.queue))
	c.queue = append(c.queue, heapSlot{at: ev.at, origin: ev.origin, seq: ev.seq, ev: ev})
	c.heapUp(int(ev.idx))
}

// heapPop removes the minimum (c.queue[0]).
func (c *Clock) heapPop() {
	n := len(c.queue) - 1
	root := c.queue[0].ev
	last := c.queue[n]
	c.queue[n] = heapSlot{}
	c.queue = c.queue[:n]
	if n > 0 {
		c.queue[0] = last
		last.ev.idx = 0
		c.heapDown(0)
	}
	root.idx = -1
}

// heapRemove deletes an arbitrary queued event.
func (c *Clock) heapRemove(ev *event) {
	i := int(ev.idx)
	n := len(c.queue) - 1
	last := c.queue[n]
	c.queue[n] = heapSlot{}
	c.queue = c.queue[:n]
	if i != n {
		c.queue[i] = last
		last.ev.idx = int32(i)
		c.heapDown(i)
		c.heapUp(int(last.ev.idx))
	}
	ev.idx = -1
}

// heapFix restores the heap invariant after ev's (at, seq) changed,
// refreshing the inlined sort key first.
func (c *Clock) heapFix(ev *event) {
	i := int(ev.idx)
	c.queue[i].at = ev.at
	c.queue[i].origin = ev.origin
	c.queue[i].seq = ev.seq
	c.heapDown(i)
	c.heapUp(int(ev.idx))
}

func (c *Clock) heapUp(i int) {
	slot := c.queue[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !slotLess(slot, c.queue[p]) {
			break
		}
		c.queue[i] = c.queue[p]
		c.queue[i].ev.idx = int32(i)
		i = p
	}
	c.queue[i] = slot
	slot.ev.idx = int32(i)
}

func (c *Clock) heapDown(i int) {
	n := len(c.queue)
	slot := c.queue[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if slotLess(c.queue[j], c.queue[min]) {
				min = j
			}
		}
		if !slotLess(c.queue[min], slot) {
			break
		}
		c.queue[i] = c.queue[min]
		c.queue[i].ev.idx = int32(i)
		i = min
	}
	c.queue[i] = slot
	slot.ev.idx = int32(i)
}
