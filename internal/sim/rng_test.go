package sim

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(1, "links")
	b := NewRNG(1, "links")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, name) must yield identical streams")
		}
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	a := NewRNG(1, "links")
	b := NewRNG(1, "relays")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different names collided %d/100 times", same)
	}
}

func TestRNGSeedSeparation(t *testing.T) {
	a := NewRNG(1, "links")
	b := NewRNG(2, "links")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different seeds collided %d/100 times", same)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(7, "uniform")
	for i := 0; i < 1000; i++ {
		v := r.Uniform(5, 15)
		if v < 5 || v >= 15 {
			t.Fatalf("Uniform(5,15) = %v out of range", v)
		}
	}
}

func TestLogNormalStatistics(t *testing.T) {
	r := NewRNG(7, "lognormal")
	const n = 20000
	mu, sigma := 1.0, 0.5
	var sumLog float64
	for i := 0; i < n; i++ {
		v := r.LogNormal(mu, sigma)
		if v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
		sumLog += math.Log(v)
	}
	meanLog := sumLog / n
	if math.Abs(meanLog-mu) > 0.02 {
		t.Errorf("mean of log samples = %v, want ~%v", meanLog, mu)
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRNG(7, "pareto")
	const xm = 2.0
	for i := 0; i < 1000; i++ {
		if v := r.Pareto(xm, 1.5); v < xm {
			t.Fatalf("Pareto sample %v below minimum %v", v, xm)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(7, "exp")
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(3.0)
	}
	if mean := sum / n; math.Abs(mean-3.0) > 0.1 {
		t.Errorf("Exponential(3) mean = %v, want ~3", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(7, "bern")
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.03 {
		t.Errorf("Bernoulli(0.25) hit rate %v", frac)
	}
}

func TestRNGName(t *testing.T) {
	if got := NewRNG(0, "abc").Name(); got != "abc" {
		t.Errorf("Name() = %q", got)
	}
}
