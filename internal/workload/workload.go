// Package workload generates the synthetic scenarios of the paper's
// aggregate experiment: "a randomly generated network of Tor relays,
// connected in a star topology" carrying concurrent circuits that each
// download a fixed amount of data.
//
// Live Tor consensus data is replaced by seeded synthetic distributions
// (log-normal relay bandwidth, uniform access latency), which preserve
// the property the experiment depends on — heterogeneous relays so that
// bottleneck depth and position vary across circuits. See DESIGN.md's
// substitution table.
package workload

import (
	"errors"
	"fmt"
	"time"

	"circuitstart/internal/arena"
	"circuitstart/internal/core"
	"circuitstart/internal/directory"
	"circuitstart/internal/netem"
	"circuitstart/internal/relay"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// RelayParams shapes the synthetic relay population.
type RelayParams struct {
	// N is the number of relays.
	N int
	// BandwidthMedian is the median relay access rate. Relay bandwidth
	// is log-normally distributed around it.
	BandwidthMedian units.DataRate
	// BandwidthSigma is the log-normal scale (0 = default 0.6, a
	// moderately heavy tail).
	BandwidthSigma float64
	// MinBandwidth, MaxBandwidth clamp the samples.
	MinBandwidth, MaxBandwidth units.DataRate
	// DelayMin, DelayMax bound the uniform access propagation delay.
	DelayMin, DelayMax time.Duration
	// QueueCap bounds each relay's access-link queues (0 = unbounded).
	QueueCap units.DataSize
	// GuardFrac and ExitFrac select which prefix/suffix of the relay
	// population additionally holds the Guard/Exit flag (every relay is
	// Middle-capable). Defaults: 0.4 each.
	GuardFrac, ExitFrac float64
}

// DefaultRelayParams returns a Tor-flavoured population: median 20
// Mbit/s with a heavy tail, 2–20 ms access delay, 512 kB queues.
func DefaultRelayParams(n int) RelayParams {
	return RelayParams{
		N:               n,
		BandwidthMedian: units.Mbps(20),
		BandwidthSigma:  0.6,
		MinBandwidth:    units.Mbps(2),
		MaxBandwidth:    units.Mbps(400),
		DelayMin:        2 * time.Millisecond,
		DelayMax:        20 * time.Millisecond,
		QueueCap:        512 * units.Kilobyte,
		GuardFrac:       0.4,
		ExitFrac:        0.4,
	}
}

// Relay is one generated relay: its consensus descriptor plus the
// access configuration used to attach it to the star.
type Relay struct {
	Desc   directory.Descriptor
	Access netem.AccessConfig
}

// RelayID returns the deterministic node ID of generated relay i —
// the single source of the population's naming scheme, used by
// everything that must refer to a generated relay before the
// population exists (e.g. scenario relay-event validation).
func RelayID(i int) netem.NodeID {
	return netem.NodeID(fmt.Sprintf("relay-%03d", i))
}

// GenerateRelays samples a relay population from params using the
// network's seed (stream "workload-relays").
func GenerateRelays(seed int64, params RelayParams) ([]Relay, error) {
	if params.N <= 0 {
		return nil, fmt.Errorf("workload: %d relays", params.N)
	}
	if params.BandwidthMedian <= 0 {
		return nil, fmt.Errorf("workload: non-positive median bandwidth")
	}
	sigma := params.BandwidthSigma
	if sigma == 0 {
		sigma = 0.6
	}
	if params.DelayMin < 0 || params.DelayMax < params.DelayMin {
		return nil, fmt.Errorf("workload: invalid delay range [%v, %v]", params.DelayMin, params.DelayMax)
	}
	guards := params.GuardFrac
	if guards == 0 {
		guards = 0.4
	}
	exits := params.ExitFrac
	if exits == 0 {
		exits = 0.4
	}
	if guards < 0 || guards > 1 || exits < 0 || exits > 1 {
		return nil, fmt.Errorf("workload: flag fractions outside [0,1]")
	}

	rng := sim.NewRNG(seed, "workload-relays")
	relays := make([]Relay, params.N)
	nGuard := int(guards * float64(params.N))
	nExit := int(exits * float64(params.N))
	for i := range relays {
		bw := units.DataRate(rng.LogNormal(0, sigma) * float64(params.BandwidthMedian))
		if params.MinBandwidth > 0 && bw < params.MinBandwidth {
			bw = params.MinBandwidth
		}
		if params.MaxBandwidth > 0 && bw > params.MaxBandwidth {
			bw = params.MaxBandwidth
		}
		delay := params.DelayMin
		if params.DelayMax > params.DelayMin {
			delay += time.Duration(rng.Int63n(int64(params.DelayMax - params.DelayMin)))
		}
		flags := directory.FlagMiddle
		if i < nGuard {
			flags |= directory.FlagGuard
		}
		if i >= params.N-nExit {
			flags |= directory.FlagExit
		}
		id := RelayID(i)
		relays[i] = Relay{
			Desc: directory.Descriptor{
				ID: id, Bandwidth: bw, Latency: delay, Flags: flags,
			},
			Access: netem.AccessConfig{
				UpRate: bw, DownRate: bw, Delay: delay, QueueCap: params.QueueCap,
			},
		}
	}
	return relays, nil
}

// ScenarioParams describes the aggregate download experiment: K
// concurrent circuits over one shared relay population, each moving
// TransferSize and reporting its time-to-last-byte.
type ScenarioParams struct {
	Relays RelayParams
	// Circuits is the number of concurrent circuits (the paper uses 50).
	Circuits int
	// HopsPerCircuit is the path length (Tor default 3).
	HopsPerCircuit int
	// TransferSize is the fixed download per circuit.
	TransferSize units.DataSize
	// Transport configures every circuit's hops.
	Transport core.TransportOptions
	// ClientAccess configures source/sink attachment. Zero selects a
	// fast 100 Mbit/s, 5 ms access.
	ClientAccess netem.AccessConfig
	// Fabric, when set, replaces the default star with a routed
	// backbone built from this spec (see GenerateBackbone); relays and
	// endpoints home to its switches and contend on its trunks.
	Fabric *netem.GraphSpec
	// StartSpread staggers circuit start times uniformly in [0,
	// StartSpread) so the experiment does not begin with a synchronized
	// burst (0 = all start at t = 0).
	StartSpread time.Duration
	// Download, when true, runs the transfers in the backward
	// direction (server → client through the onion), the direction the
	// paper's "download times" refer to. The default forward direction
	// is congestion-equivalent on symmetric access links and matches
	// the figure benchmarks.
	Download bool
	// TraceCwnd records per-circuit window traces (memory-heavy; only
	// the single-circuit figures need it).
	TraceCwnd bool
	// RelayConfig configures every generated relay's circuit scheduler
	// and resource limits. The zero value is the byte-identical default
	// (FIFO, no caps). With a circuit cap and a reject-new policy some
	// builds may be refused: the corresponding Circuits slot is nil.
	RelayConfig relay.Config
	// TrainSize caps cell-train coalescing on every link of the trial —
	// client access, relay access and backbone trunks alike. Values ≤ 1
	// keep the byte-identical one-event-per-cell pipeline; larger values
	// batch back-to-back queued cells into single link events (see
	// netem.LinkConfig.TrainSize).
	TrainSize int
	// Arena, when set, draws the trial's clock, cell/segment pools and
	// circuit slab from this per-worker arena instead of allocating
	// fresh ones. The caller owns the trial sequencing: the arena's
	// clock must be reset (arena.ResetTrial) before each Build.
	Arena *arena.Arena
}

// DefaultScenario mirrors the paper's aggregate experiment: 50 circuits
// of 3 hops over 40 relays, a fixed 500 kB download each (the paper's
// CDF spans roughly 0–3 s of download time; this size puts the median
// in that range on the default population).
func DefaultScenario() ScenarioParams {
	return ScenarioParams{
		Relays:         DefaultRelayParams(40),
		Circuits:       50,
		HopsPerCircuit: 3,
		TransferSize:   500 * units.Kilobyte,
		StartSpread:    200 * time.Millisecond,
	}
}

// Scenario is a built, runnable aggregate experiment.
type Scenario struct {
	Network   *core.Network
	Consensus *directory.Consensus
	Circuits  []*core.Circuit
	Params    ScenarioParams
}

// Build instantiates the network, relays and circuits of a scenario.
// Paths are selected bandwidth-weighted from the generated consensus,
// exactly as the directory package implements Tor's selection.
func Build(seed int64, p ScenarioParams) (*Scenario, error) {
	if p.Circuits <= 0 {
		return nil, fmt.Errorf("workload: %d circuits", p.Circuits)
	}
	if p.HopsPerCircuit <= 0 {
		return nil, fmt.Errorf("workload: %d hops per circuit", p.HopsPerCircuit)
	}
	if p.TransferSize <= 0 {
		return nil, fmt.Errorf("workload: transfer size %v", p.TransferSize)
	}
	if p.TrainSize < 0 {
		return nil, fmt.Errorf("workload: negative train size %d", p.TrainSize)
	}
	if p.ClientAccess.UpRate == 0 {
		p.ClientAccess = netem.Symmetric(units.Mbps(100), 5*time.Millisecond, p.Relays.QueueCap)
	}
	p.ClientAccess.TrainSize = p.TrainSize

	relays, err := GenerateRelays(seed, p.Relays)
	if err != nil {
		return nil, err
	}
	descs := make([]directory.Descriptor, len(relays))
	n, err := newNetwork(seed, p.Fabric, p.Arena, p.TrainSize)
	if err != nil {
		return nil, err
	}
	if err := n.ConfigureRelays(p.RelayConfig); err != nil {
		return nil, err
	}
	for i, r := range relays {
		descs[i] = r.Desc
		r.Access.TrainSize = p.TrainSize
		if _, err := n.AddRelay(r.Desc.ID, r.Access); err != nil {
			return nil, err
		}
	}
	consensus, err := directory.NewConsensus(descs)
	if err != nil {
		return nil, err
	}

	pathRNG := sim.NewRNG(seed, "workload-paths")
	sc := &Scenario{Network: n, Consensus: consensus, Params: p}
	for i := 0; i < p.Circuits; i++ {
		path, err := consensus.SelectPath(pathRNG, p.HopsPerCircuit)
		if err != nil {
			return nil, fmt.Errorf("workload: circuit %d: %w", i, err)
		}
		ids := make([]netem.NodeID, len(path))
		for j, d := range path {
			ids[j] = d.ID
		}
		c, err := n.BuildCircuit(core.CircuitSpec{
			Source:       netem.NodeID(fmt.Sprintf("client-%03d", i)),
			Sink:         netem.NodeID(fmt.Sprintf("server-%03d", i)),
			SourceAccess: p.ClientAccess,
			SinkAccess:   p.ClientAccess,
			Relays:       ids,
			Transport:    p.Transport,
			TraceCwnd:    p.TraceCwnd,
		})
		if err != nil {
			if errors.Is(err, core.ErrCircuitRejected) {
				// A capped relay refused the build; the slot stays nil
				// so indices keep lining up with the path RNG draws.
				sc.Circuits = append(sc.Circuits, nil)
				continue
			}
			return nil, fmt.Errorf("workload: circuit %d: %w", i, err)
		}
		sc.Circuits = append(sc.Circuits, c)
	}
	return sc, nil
}

// newNetwork builds a trial network on the star (fabric == nil) or on a
// fresh fabric from the spec. The spec is validated here so a malformed
// backbone surfaces as an error, not a panic inside a worker. trainSize
// is stamped onto a deep copy of the spec's trunks (the original is
// shared across parallel workers and must never be mutated).
func newNetwork(seed int64, fabric *netem.GraphSpec, ar *arena.Arena, trainSize int) (*core.Network, error) {
	build := func(clock *sim.Clock, _ *sim.RNG) netem.Fabric {
		return netem.NewStarFabric(clock)
	}
	if fabric != nil {
		if err := fabric.Validate(); err != nil {
			return nil, err
		}
		spec := fabric.Clone()
		for i := range spec.Trunks {
			spec.Trunks[i].Config.TrainSize = trainSize
		}
		build = func(clock *sim.Clock, rng *sim.RNG) netem.Fabric {
			return spec.Build(clock, rng)
		}
	}
	if ar != nil {
		return core.NewNetworkInArena(ar, seed, build), nil
	}
	return core.NewNetworkWithFabric(seed, build), nil
}

// Result is one circuit's outcome.
type Result struct {
	Circuit int
	TTLB    time.Duration
	Done    bool
}

// Run starts every circuit's transfer (staggered by StartSpread) and
// executes the simulation until all transfers complete or the horizon
// passes. It returns per-circuit results in circuit order.
func (sc *Scenario) Run(horizon sim.Time) []Result {
	p := sc.Params
	startRNG := sim.NewRNG(sc.Network.Seed(), "workload-starts")
	remaining := 0
	for _, c := range sc.Circuits {
		if c != nil {
			remaining++
		}
	}
	finished := make([]bool, len(sc.Circuits))
	finish := func(i int) {
		if finished[i] {
			return
		}
		finished[i] = true
		remaining--
		if remaining == 0 {
			sc.Network.Clock().Stop()
		}
	}
	idx := make(map[*core.Circuit]int, len(sc.Circuits))
	for i, c := range sc.Circuits {
		if c != nil {
			idx[c] = i
		}
	}
	// A resource-limit eviction counts its circuit as finished, so a
	// kill cannot stall the early stop.
	sc.Network.OnKill(func(c *core.Circuit) {
		if i, ok := idx[c]; ok {
			finish(i)
		}
	})
	for i, c := range sc.Circuits {
		// Draw the start delay even for rejected (nil) circuits so the
		// stagger of the surviving ones is independent of rejections.
		delay := time.Duration(0)
		if p.StartSpread > 0 {
			delay = time.Duration(startRNG.Int63n(int64(p.StartSpread)))
		}
		if c == nil {
			continue
		}
		i, circ := i, c
		sc.Network.Clock().After(delay, func() {
			if circ.Closed() {
				// Evicted before its start (admission kill at build
				// time, or mid-stagger); nothing left to transfer.
				finish(i)
				return
			}
			done := func(time.Duration) { finish(i) }
			if p.Download {
				circ.TransferBackward(p.TransferSize, done)
			} else {
				circ.Transfer(p.TransferSize, done)
			}
		})
	}
	sc.Network.RunUntil(horizon)

	results := make([]Result, len(sc.Circuits))
	for i, c := range sc.Circuits {
		if c == nil {
			results[i] = Result{Circuit: i}
			continue
		}
		ttlb, done := c.TTLB()
		results[i] = Result{Circuit: i, TTLB: ttlb, Done: done}
	}
	return results
}
