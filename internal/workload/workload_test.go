package workload

import (
	"testing"
	"time"

	"circuitstart/internal/directory"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

func TestGenerateRelaysValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*RelayParams)
	}{
		{"zero relays", func(p *RelayParams) { p.N = 0 }},
		{"zero bandwidth", func(p *RelayParams) { p.BandwidthMedian = 0 }},
		{"bad delays", func(p *RelayParams) { p.DelayMax = p.DelayMin - time.Millisecond }},
		{"bad fractions", func(p *RelayParams) { p.GuardFrac = 2 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := DefaultRelayParams(10)
			c.mut(&p)
			if _, err := GenerateRelays(1, p); err == nil {
				t.Fatal("invalid params accepted")
			}
		})
	}
}

func TestGenerateRelaysProperties(t *testing.T) {
	p := DefaultRelayParams(64)
	relays, err := GenerateRelays(7, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(relays) != 64 {
		t.Fatalf("len = %d", len(relays))
	}
	ids := make(map[string]bool)
	var guards, exits int
	for _, r := range relays {
		if ids[string(r.Desc.ID)] {
			t.Fatalf("duplicate relay ID %s", r.Desc.ID)
		}
		ids[string(r.Desc.ID)] = true
		if r.Desc.Bandwidth < p.MinBandwidth || r.Desc.Bandwidth > p.MaxBandwidth {
			t.Errorf("bandwidth %v outside clamp", r.Desc.Bandwidth)
		}
		if r.Desc.Latency < p.DelayMin || r.Desc.Latency >= p.DelayMax {
			t.Errorf("latency %v outside range", r.Desc.Latency)
		}
		if !r.Desc.Flags.Has(directory.FlagMiddle) {
			t.Error("relay without Middle flag")
		}
		if r.Desc.Flags.Has(directory.FlagGuard) {
			guards++
		}
		if r.Desc.Flags.Has(directory.FlagExit) {
			exits++
		}
		if r.Access.UpRate != r.Desc.Bandwidth || r.Access.Delay != r.Desc.Latency {
			t.Error("access config inconsistent with descriptor")
		}
	}
	if guards == 0 || exits == 0 {
		t.Fatalf("guards=%d exits=%d", guards, exits)
	}
	// Heterogeneity: the population must actually spread (the experiment
	// depends on varying bottlenecks).
	minBW, maxBW := relays[0].Desc.Bandwidth, relays[0].Desc.Bandwidth
	for _, r := range relays {
		if r.Desc.Bandwidth < minBW {
			minBW = r.Desc.Bandwidth
		}
		if r.Desc.Bandwidth > maxBW {
			maxBW = r.Desc.Bandwidth
		}
	}
	if float64(maxBW) < 2*float64(minBW) {
		t.Fatalf("population too homogeneous: [%v, %v]", minBW, maxBW)
	}
}

func TestGenerateRelaysDeterministic(t *testing.T) {
	a, _ := GenerateRelays(42, DefaultRelayParams(16))
	b, _ := GenerateRelays(42, DefaultRelayParams(16))
	for i := range a {
		if a[i].Desc != b[i].Desc {
			t.Fatalf("relay %d differs across identical seeds", i)
		}
	}
	c, _ := GenerateRelays(43, DefaultRelayParams(16))
	same := true
	for i := range a {
		if a[i].Desc != c[i].Desc {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical populations")
	}
}

func TestBuildValidation(t *testing.T) {
	base := DefaultScenario()
	cases := []struct {
		name string
		mut  func(*ScenarioParams)
	}{
		{"zero circuits", func(p *ScenarioParams) { p.Circuits = 0 }},
		{"zero hops", func(p *ScenarioParams) { p.HopsPerCircuit = 0 }},
		{"zero transfer", func(p *ScenarioParams) { p.TransferSize = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := base
			c.mut(&p)
			if _, err := Build(1, p); err == nil {
				t.Fatal("invalid scenario accepted")
			}
		})
	}
}

func TestSmallScenarioRunsToCompletion(t *testing.T) {
	p := DefaultScenario()
	p.Relays = DefaultRelayParams(12)
	p.Circuits = 6
	p.TransferSize = 100 * units.Kilobyte
	sc, err := Build(5, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Circuits) != 6 {
		t.Fatalf("built %d circuits", len(sc.Circuits))
	}
	results := sc.Run(120 * sim.Second)
	for _, r := range results {
		if !r.Done {
			t.Errorf("circuit %d incomplete", r.Circuit)
			continue
		}
		if r.TTLB <= 0 {
			t.Errorf("circuit %d TTLB %v", r.Circuit, r.TTLB)
		}
	}
}

func TestScenarioDeterministic(t *testing.T) {
	run := func() []Result {
		p := DefaultScenario()
		p.Relays = DefaultRelayParams(10)
		p.Circuits = 4
		p.TransferSize = 50 * units.Kilobyte
		sc, err := Build(9, p)
		if err != nil {
			t.Fatal(err)
		}
		return sc.Run(120 * sim.Second)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestScenarioPoliciesDiffer(t *testing.T) {
	// Same seed, different startup policy: the topology and paths are
	// identical, so any TTLB difference is attributable to the policy.
	run := func(policy string) []Result {
		p := DefaultScenario()
		p.Relays = DefaultRelayParams(10)
		p.Circuits = 4
		p.TransferSize = 200 * units.Kilobyte
		p.Transport.Policy = policy
		sc, err := Build(9, p)
		if err != nil {
			t.Fatal(err)
		}
		return sc.Run(300 * sim.Second)
	}
	cs := run("circuitstart")
	bt := run("backtap")
	differ := false
	for i := range cs {
		if !cs[i].Done || !bt[i].Done {
			t.Fatalf("circuit %d incomplete", i)
		}
		if cs[i].TTLB != bt[i].TTLB {
			differ = true
		}
	}
	if !differ {
		t.Fatal("policies produced identical TTLBs — policy not plumbed through")
	}
}

func TestDownloadScenarioCompletes(t *testing.T) {
	p := DefaultScenario()
	p.Relays = DefaultRelayParams(12)
	p.Circuits = 5
	p.TransferSize = 100 * units.Kilobyte
	p.Download = true
	sc, err := Build(21, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sc.Run(300 * sim.Second) {
		if !r.Done {
			t.Errorf("download circuit %d incomplete", r.Circuit)
		}
	}
	// Bytes must have arrived at the clients, not the servers.
	for i, c := range sc.Circuits {
		if c.Source().Downloaded() != p.TransferSize {
			t.Errorf("circuit %d client downloaded %v", i, c.Source().Downloaded())
		}
		if c.Source().DownloadBadCells() != 0 {
			t.Errorf("circuit %d bad cells at client", i)
		}
	}
}
