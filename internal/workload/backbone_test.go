package workload

import (
	"fmt"
	"testing"

	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

func TestGenerateBackboneShapes(t *testing.T) {
	cases := []struct {
		kind       BackboneKind
		k          int
		wantTrunks int
	}{
		{BackboneLine, 4, 3},
		{BackboneRing, 4, 4},
		{BackboneRing, 2, 1}, // a 2-ring is the line, not a doubled trunk
		{BackboneFull, 4, 6},
		{BackboneRing, 1, 0}, // single switch: degenerate star
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%v-%d", tc.kind, tc.k), func(t *testing.T) {
			p := DefaultBackboneParams(10, tc.k)
			p.Kind = tc.kind
			spec, err := GenerateBackbone(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(spec.Switches) != tc.k {
				t.Fatalf("%d switches, want %d", len(spec.Switches), tc.k)
			}
			if len(spec.Trunks) != tc.wantTrunks {
				t.Fatalf("%d trunks, want %d", len(spec.Trunks), tc.wantTrunks)
			}
			// Every relay the population will generate is pinned,
			// round-robin across all switches.
			perSwitch := map[netem.SwitchID]int{}
			for i := 0; i < 10; i++ {
				id := netem.NodeID(fmt.Sprintf("relay-%03d", i))
				sw, ok := spec.Homes[id]
				if !ok {
					t.Fatalf("relay %s unpinned", id)
				}
				perSwitch[sw]++
			}
			if len(perSwitch) != tc.k {
				t.Fatalf("relays spread over %d of %d switches", len(perSwitch), tc.k)
			}
		})
	}
}

func TestGenerateBackboneValidation(t *testing.T) {
	if _, err := GenerateBackbone(BackboneParams{Relays: DefaultRelayParams(4)}); err == nil {
		t.Error("zero switches accepted")
	}
	p := DefaultBackboneParams(4, 2)
	p.TrunkRate = 0
	if _, err := GenerateBackbone(p); err == nil {
		t.Error("zero trunk rate accepted")
	}
	p = DefaultBackboneParams(4, 2)
	p.Kind = BackboneKind(99)
	if _, err := GenerateBackbone(p); err == nil {
		t.Error("unknown kind accepted")
	}
	p = DefaultBackboneParams(0, 2)
	if _, err := GenerateBackbone(p); err == nil {
		t.Error("zero relays accepted")
	}
}

func TestBuildOnBackboneRunsToCompletion(t *testing.T) {
	p := ScenarioParams{
		Relays:         DefaultRelayParams(8),
		Circuits:       4,
		HopsPerCircuit: 3,
		TransferSize:   100 * units.Kilobyte,
	}
	bp := DefaultBackboneParams(8, 3)
	spec, err := GenerateBackbone(bp)
	if err != nil {
		t.Fatal(err)
	}
	p.Fabric = &spec

	sc, err := Build(11, p)
	if err != nil {
		t.Fatal(err)
	}
	gf, ok := sc.Network.Fabric().(*netem.GraphFabric)
	if !ok {
		t.Fatal("network not on a graph fabric")
	}
	results := sc.Run(600 * sim.Second)
	for _, r := range results {
		if !r.Done {
			t.Fatalf("circuit %d incomplete", r.Circuit)
		}
	}
	if gf.UnknownDst() != 0 || gf.Unroutable() != 0 {
		t.Errorf("backbone dropped frames: unknown=%d unroutable=%d",
			gf.UnknownDst(), gf.Unroutable())
	}
	var crossed uint64
	for _, l := range gf.Trunks() {
		crossed += l.Stats().CellsDelivered
	}
	if crossed == 0 {
		t.Error("no traffic crossed any trunk — homes all collapsed?")
	}
}

func TestBuildOnBackboneDeterministic(t *testing.T) {
	run := func() []Result {
		p := ScenarioParams{
			Relays:         DefaultRelayParams(6),
			Circuits:       3,
			HopsPerCircuit: 3,
			TransferSize:   50 * units.Kilobyte,
		}
		spec, err := GenerateBackbone(DefaultBackboneParams(6, 2))
		if err != nil {
			t.Fatal(err)
		}
		p.Fabric = &spec
		sc, err := Build(5, p)
		if err != nil {
			t.Fatal(err)
		}
		return sc.Run(600 * sim.Second)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("circuit %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestBuildRejectsBadFabric(t *testing.T) {
	p := ScenarioParams{
		Relays:         DefaultRelayParams(4),
		Circuits:       2,
		HopsPerCircuit: 2,
		TransferSize:   units.Kilobyte,
		Fabric:         &netem.GraphSpec{}, // no switches
	}
	if _, err := Build(1, p); err == nil {
		t.Error("invalid fabric spec accepted")
	}
}
