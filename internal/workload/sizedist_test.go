package workload

import (
	"testing"

	"circuitstart/internal/units"
)

func TestParseSizeDistLabelRoundTrip(t *testing.T) {
	cases := []string{
		"fixed:500000",
		"lognormal:200000:0.75",
		"pareto:100000:1.2:10000000",
	}
	for _, src := range cases {
		d, err := ParseSizeDist(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got := d.Label(); got != src {
			t.Errorf("ParseSizeDist(%q).Label() = %q", src, got)
		}
		d2, err := ParseSizeDist(d.Label())
		if err != nil {
			t.Fatalf("reparse %q: %v", d.Label(), err)
		}
		if d2 != d {
			t.Errorf("label round trip changed the dist: %+v vs %+v", d2, d)
		}
	}

	// A bare integer is shorthand for a fixed size.
	d, err := ParseSizeDist("250000")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != SizeFixed || d.Size != 250000 {
		t.Errorf("bare integer parsed as %+v", d)
	}
}

func TestParseSizeDistErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"triangular:5",
		"fixed:0",
		"fixed:x",
		"lognormal:1000",         // missing sigma
		"lognormal:1000:0",       // sigma must be positive
		"pareto:1000:1.1",        // missing max
		"pareto:1000:0:2000",     // alpha must be positive
		"pareto:1000:1.1:500",    // max below min
		"fixed:100:9",            // trailing field
		"pareto:1000:1.1:2000:3", // trailing field
	} {
		if _, err := ParseSizeDist(src); err == nil {
			t.Errorf("ParseSizeDist(%q) accepted", src)
		}
	}
}

// TestSampleDeterministic pins the seeding contract: same seed, same
// sizes; different seeds, different sizes (for stochastic kinds).
func TestSampleDeterministic(t *testing.T) {
	d, err := ParseSizeDist("lognormal:200000:0.75")
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Sample(7, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Sample(7, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 64 || len(b) != 64 {
		t.Fatalf("sample lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c, err := d.Sample(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}
}

// TestSampleFixedDrawsNothing pins the byte-identity contract for the
// fixed kind: it returns no mix at all (the scenario keeps its scalar
// TransferSize path, consuming zero RNG draws).
func TestSampleFixedDrawsNothing(t *testing.T) {
	d := SizeDist{Kind: SizeFixed, Size: 500_000}
	mix, err := d.Sample(7, 16)
	if err != nil {
		t.Fatal(err)
	}
	if mix != nil {
		t.Fatalf("fixed dist produced a mix: %v", mix)
	}
}

// TestParetoBounds checks the bounded-Pareto inverse CDF stays within
// [Size, Max] and actually spreads across the range.
func TestParetoBounds(t *testing.T) {
	d, err := ParseSizeDist("pareto:10000:1.1:1000000")
	if err != nil {
		t.Fatal(err)
	}
	mix, err := d.Sample(3, 512)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := mix[0], mix[0]
	for _, s := range mix {
		if s < 10000 || s > 1000000 {
			t.Fatalf("sample %v outside [10000, 1000000]", s)
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	// Heavy tail: the spread should cover well over one decade.
	if float64(hi) < 10*float64(lo) {
		t.Errorf("pareto samples span only [%v, %v] — no tail", lo, hi)
	}
}

// TestLogNormalMedian sanity-checks the parameterization: the sample
// median should land near the configured median.
func TestLogNormalMedian(t *testing.T) {
	d, err := ParseSizeDist("lognormal:200000:0.5")
	if err != nil {
		t.Fatal(err)
	}
	mix, err := d.Sample(11, 1001)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]units.DataSize(nil), mix...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	med := float64(sorted[len(sorted)/2])
	if med < 150_000 || med > 266_000 {
		t.Errorf("sample median %v, want near 200000", med)
	}
}
