package workload

import (
	"fmt"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/units"
)

// BackboneKind selects how a backbone's switches are trunked together.
type BackboneKind int

const (
	// BackboneRing joins the switches in a cycle (each switch has two
	// trunks; traffic between opposite sides shares the shortest arc).
	BackboneRing BackboneKind = iota
	// BackboneLine joins consecutive switches only — the harshest
	// sharing: all east-west traffic funnels through interior trunks.
	BackboneLine
	// BackboneFull trunks every switch pair — contention moves back to
	// access links, useful as a near-star control.
	BackboneFull
)

func (k BackboneKind) String() string {
	switch k {
	case BackboneRing:
		return "ring"
	case BackboneLine:
		return "line"
	case BackboneFull:
		return "full"
	default:
		return fmt.Sprintf("BackboneKind(%d)", int(k))
	}
}

// BackboneParams shapes a routed backbone population: N synthetic
// relays spread round-robin behind K switches whose trunks are shared
// bottleneck candidates — the scenario family a star cannot express.
type BackboneParams struct {
	// Relays shapes the relay population (attached round-robin:
	// relay i homes to switch i mod Switches).
	Relays RelayParams
	// Switches is the number of backbone switches (K ≥ 1).
	Switches int
	// Kind selects the trunk mesh (default ring).
	Kind BackboneKind
	// TrunkRate is each trunk direction's capacity.
	TrunkRate units.DataRate
	// TrunkDelay is each trunk's one-way propagation delay.
	TrunkDelay time.Duration
	// TrunkQueueCap bounds each trunk direction's queue (0 = unbounded).
	TrunkQueueCap units.DataSize
	// TrunkLossProb drops frames independently per trunk direction.
	TrunkLossProb float64
}

// DefaultBackboneParams returns n relays behind k switches on a ring of
// 200 Mbit/s, 10 ms trunks — fast enough that light load runs clean,
// shared enough that concurrent circuits contend.
func DefaultBackboneParams(n, k int) BackboneParams {
	return BackboneParams{
		Relays:        DefaultRelayParams(n),
		Switches:      k,
		Kind:          BackboneRing,
		TrunkRate:     units.Mbps(200),
		TrunkDelay:    10 * time.Millisecond,
		TrunkQueueCap: units.Megabyte,
	}
}

// SwitchID names backbone switch i ("core-00", "core-01", …).
func SwitchID(i int) netem.SwitchID {
	return netem.SwitchID(fmt.Sprintf("core-%02d", i))
}

// GenerateBackbone renders the params into a netem.GraphSpec: K
// switches, the trunk mesh, and a home pin for every relay the
// population generator will name (relay i → switch i mod K). Clients
// and servers are left unpinned — they home by the fabric's
// deterministic ID hash, spreading load across the backbone. The spec
// is pure data: pass it to scenario.Topology.Fabric or
// ScenarioParams.Fabric and every trial builds its own fabric from it.
func GenerateBackbone(p BackboneParams) (netem.GraphSpec, error) {
	if p.Switches <= 0 {
		return netem.GraphSpec{}, fmt.Errorf("workload: %d backbone switches", p.Switches)
	}
	if p.Relays.N <= 0 {
		return netem.GraphSpec{}, fmt.Errorf("workload: %d relays", p.Relays.N)
	}
	if p.Switches > 1 && p.TrunkRate <= 0 {
		return netem.GraphSpec{}, fmt.Errorf("workload: non-positive trunk rate")
	}

	spec := netem.GraphSpec{Homes: make(map[netem.NodeID]netem.SwitchID, p.Relays.N)}
	for i := 0; i < p.Switches; i++ {
		spec.Switches = append(spec.Switches, SwitchID(i))
	}
	cfg := netem.TrunkConfig{
		Rate: p.TrunkRate, Delay: p.TrunkDelay,
		QueueCap: p.TrunkQueueCap, LossProb: p.TrunkLossProb,
	}
	switch p.Kind {
	case BackboneLine:
		for i := 0; i+1 < p.Switches; i++ {
			spec.Trunks = append(spec.Trunks, netem.TrunkSpec{A: SwitchID(i), B: SwitchID(i + 1), Config: cfg})
		}
	case BackboneRing:
		for i := 0; i+1 < p.Switches; i++ {
			spec.Trunks = append(spec.Trunks, netem.TrunkSpec{A: SwitchID(i), B: SwitchID(i + 1), Config: cfg})
		}
		// Close the cycle (K = 2 is already fully connected by the line).
		if p.Switches > 2 {
			spec.Trunks = append(spec.Trunks, netem.TrunkSpec{A: SwitchID(p.Switches - 1), B: SwitchID(0), Config: cfg})
		}
	case BackboneFull:
		for i := 0; i < p.Switches; i++ {
			for j := i + 1; j < p.Switches; j++ {
				spec.Trunks = append(spec.Trunks, netem.TrunkSpec{A: SwitchID(i), B: SwitchID(j), Config: cfg})
			}
		}
	default:
		return netem.GraphSpec{}, fmt.Errorf("workload: unknown backbone kind %d", int(p.Kind))
	}

	for i := 0; i < p.Relays.N; i++ {
		spec.Homes[RelayID(i)] = SwitchID(i % p.Switches)
	}
	if err := spec.Validate(); err != nil {
		return netem.GraphSpec{}, err
	}
	return spec, nil
}
