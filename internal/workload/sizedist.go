package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// SizeDistKind selects a transfer-size distribution family.
type SizeDistKind string

const (
	// SizeFixed gives every circuit the same transfer size — the
	// byte-identical legacy path (no RNG stream is consumed).
	SizeFixed SizeDistKind = "fixed"
	// SizeLogNormal draws sizes from a lognormal with the given median
	// and log-space sigma — the classic heavy-ish web-object model.
	SizeLogNormal SizeDistKind = "lognormal"
	// SizePareto draws sizes from a bounded Pareto on [Size, Max] with
	// shape Alpha — the heavy-tailed flow-size model (most transfers
	// small, a few elephants).
	SizePareto SizeDistKind = "pareto"
)

// SizeDist describes a per-circuit transfer-size distribution. Samples
// are drawn once per scenario from a dedicated seeded stream
// ("workload-sizes"), so a given (seed, count, dist) triple always
// yields the same sizes regardless of workers, arms or replications.
type SizeDist struct {
	Kind SizeDistKind
	// Size is the fixed size (SizeFixed), the median (SizeLogNormal)
	// or the lower bound / scale (SizePareto).
	Size units.DataSize
	// Sigma is the log-space standard deviation (SizeLogNormal).
	Sigma float64
	// Alpha is the tail shape (SizePareto); smaller = heavier tail.
	Alpha float64
	// Min and Max clamp every sample (0 = unclamped). SizePareto
	// requires Max: it is the distribution's upper bound.
	Min, Max units.DataSize
}

// Validate rejects malformed distributions, naming the offending field.
func (d SizeDist) Validate() error {
	if d.Size <= 0 {
		return fmt.Errorf("workload: size dist %q: size %d must be positive", d.Kind, d.Size)
	}
	if d.Min < 0 || d.Max < 0 {
		return fmt.Errorf("workload: size dist %q: negative clamp bound", d.Kind)
	}
	if d.Min > 0 && d.Max > 0 && d.Min > d.Max {
		return fmt.Errorf("workload: size dist %q: min %d > max %d", d.Kind, d.Min, d.Max)
	}
	switch d.Kind {
	case SizeFixed:
	case SizeLogNormal:
		if d.Sigma <= 0 {
			return fmt.Errorf("workload: lognormal size dist: sigma %g must be positive", d.Sigma)
		}
	case SizePareto:
		if d.Alpha <= 0 {
			return fmt.Errorf("workload: pareto size dist: alpha %g must be positive", d.Alpha)
		}
		if d.Max <= 0 {
			return fmt.Errorf("workload: pareto size dist: max bound required (bounded Pareto)")
		}
		if d.Max <= d.Size {
			return fmt.Errorf("workload: pareto size dist: max %d must exceed scale %d", d.Max, d.Size)
		}
	default:
		return fmt.Errorf("workload: unknown size dist kind %q (want fixed, lognormal or pareto)", d.Kind)
	}
	return nil
}

// Label renders the distribution in the compact colon form ParseSizeDist
// accepts — the canonical spec-field and sweep-coordinate spelling.
func (d SizeDist) Label() string {
	switch d.Kind {
	case SizeLogNormal:
		return fmt.Sprintf("lognormal:%d:%s", int64(d.Size), trimFloat(d.Sigma))
	case SizePareto:
		return fmt.Sprintf("pareto:%d:%s:%d", int64(d.Size), trimFloat(d.Alpha), int64(d.Max))
	default:
		return fmt.Sprintf("fixed:%d", int64(d.Size))
	}
}

func trimFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Sample draws n per-circuit sizes from the distribution's own seeded
// stream. SizeFixed returns nil: the caller keeps the scalar
// TransferSize path (and its output bytes) untouched.
func (d SizeDist) Sample(seed int64, n int) ([]units.DataSize, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Kind == SizeFixed || n <= 0 {
		return nil, nil
	}
	rng := sim.NewRNG(seed, "workload-sizes")
	out := make([]units.DataSize, n)
	for i := range out {
		var v float64
		switch d.Kind {
		case SizeLogNormal:
			v = float64(d.Size) * rng.LogNormal(0, d.Sigma)
		case SizePareto:
			v = boundedPareto(rng.Uniform(0, 1), float64(d.Size), float64(d.Max), d.Alpha)
		}
		s := units.DataSize(math.Round(v))
		if d.Min > 0 && s < d.Min {
			s = d.Min
		}
		if d.Max > 0 && s > d.Max {
			s = d.Max
		}
		if s < 1 {
			s = 1
		}
		out[i] = s
	}
	return out, nil
}

// boundedPareto inverts the bounded-Pareto CDF on [lo, hi] with shape
// alpha at quantile u ∈ [0, 1).
func boundedPareto(u, lo, hi, alpha float64) float64 {
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// ParseSizeDist parses the compact colon form used by spec files and
// the -sizedists sweep flag:
//
//	fixed:<bytes>
//	lognormal:<median_bytes>:<sigma>
//	pareto:<scale_bytes>:<alpha>:<max_bytes>
//
// A bare integer is shorthand for fixed:<bytes>.
func ParseSizeDist(s string) (SizeDist, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) == 1 {
		if n, err := strconv.ParseInt(parts[0], 10, 64); err == nil {
			d := SizeDist{Kind: SizeFixed, Size: units.DataSize(n)}
			return d, d.Validate()
		}
	}
	bad := func() (SizeDist, error) {
		return SizeDist{}, fmt.Errorf("workload: bad size dist %q (want fixed:<bytes>, lognormal:<median>:<sigma> or pareto:<scale>:<alpha>:<max>)", s)
	}
	num := func(p string) (float64, bool) {
		v, err := strconv.ParseFloat(p, 64)
		return v, err == nil
	}
	var d SizeDist
	switch SizeDistKind(parts[0]) {
	case SizeFixed:
		if len(parts) != 2 {
			return bad()
		}
		v, ok := num(parts[1])
		if !ok {
			return bad()
		}
		d = SizeDist{Kind: SizeFixed, Size: units.DataSize(v)}
	case SizeLogNormal:
		if len(parts) != 3 {
			return bad()
		}
		v, ok1 := num(parts[1])
		sg, ok2 := num(parts[2])
		if !ok1 || !ok2 {
			return bad()
		}
		d = SizeDist{Kind: SizeLogNormal, Size: units.DataSize(v), Sigma: sg}
	case SizePareto:
		if len(parts) != 4 {
			return bad()
		}
		v, ok1 := num(parts[1])
		al, ok2 := num(parts[2])
		mx, ok3 := num(parts[3])
		if !ok1 || !ok2 || !ok3 {
			return bad()
		}
		d = SizeDist{Kind: SizePareto, Size: units.DataSize(v), Alpha: al, Max: units.DataSize(mx)}
	default:
		return bad()
	}
	return d, d.Validate()
}
