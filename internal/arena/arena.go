// Package arena provides the trial-scoped allocation arena the parallel
// runner and the benchmarks reuse across trials.
//
// A simulation trial allocates the same shapes every time: clock events,
// cells, boxed segment wrappers, circuits, churn-ledger entries. Tearing
// a trial down object by object and reallocating everything for the next
// one is where the old hot path spent most of its allocations. An Arena
// instead owns the recyclable substrate — one clock whose event free
// list survives trials, the cell and segment pools, and named object
// slabs — and makes whole-trial teardown a pointer reset: ResetTrial
// rewinds every cursor without releasing memory, so trial N+1 replays
// into the working set trial N built.
//
// Arenas are per worker goroutine (a clock is single-threaded by
// design); the determinism contract is unaffected because recycled
// memory is observationally neutral — every output is a pure function
// of seeds and virtual time, never of object identity or stale bytes.
package arena

import (
	"circuitstart/internal/cell"
	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/transport"
)

// Arena is the reusable substrate for a sequence of trials. The fields
// are the cross-layer pools every network needs; Slot extends it with
// caller-defined slabs (core's circuit slab, scenario's churn ledger)
// without this package importing those layers.
type Arena struct {
	// Clock is the shared simulation clock. ResetTrial rewinds it to
	// the epoch, recycling pending events through its free list.
	Clock *sim.Clock
	// Cells recycles overlay cells between the endpoints of every
	// circuit built in the arena.
	Cells *cell.Pool
	// Segments recycles the boxed segment wrappers frames carry.
	Segments *transport.SegmentPool
	// Frames is the backing store every per-trial fabric's frame pool
	// adopts, so the frame working set survives fabric teardown.
	Frames *netem.FramePool

	slots map[string]any
}

// New returns an arena with fresh pools and an empty slot table.
func New() *Arena {
	return &Arena{
		Clock:    sim.NewClock(),
		Cells:    cell.NewPool(),
		Segments: transport.NewSegmentPool(),
		Frames:   netem.NewFramePool(),
		slots:    make(map[string]any),
	}
}

// Slot returns the named auxiliary pool, creating it with mk on first
// use. Layers above use it to hang their own slabs off the arena (keyed
// by package-unique strings) so the arena stays ignorant of their
// types. A slot value implementing Resetter is rewound by ResetTrial.
func (a *Arena) Slot(key string, mk func() any) any {
	v, ok := a.slots[key]
	if !ok {
		v = mk()
		a.slots[key] = v
	}
	return v
}

// Resetter is implemented by slot values that need rewinding at trial
// boundaries (Slab implements it).
type Resetter interface{ Reset() }

// ResetTrial ends one trial and prepares the next: the clock returns to
// the epoch (pending events recycled, armed timers inert), the frame,
// cell and segment pools reclaim everything they ever allocated —
// including objects stranded mid-flight in the dying trial's links —
// and every resettable slot rewinds its cursor. No memory is released;
// that retention is the arena's entire point. Call it only between
// trials, after every result has been read out of the dying trial's
// objects: pool and slab memory is reused by the next one.
func (a *Arena) ResetTrial() {
	a.Clock.Reset()
	a.Frames.Reset()
	a.Cells.Reset()
	a.Segments.Reset()
	for _, v := range a.slots {
		if r, ok := v.(Resetter); ok {
			r.Reset()
		}
	}
}

// Slab is a chunked bump allocator for trial-lifetime objects. New
// returns a zeroed *T from the current cursor position; Reset rewinds
// the cursor so the next trial reuses the same memory. Chunking keeps
// issued pointers stable while the slab grows. Objects live until the
// Reset after the caller is done reading them — never hold a slab
// pointer across a trial boundary.
type Slab[T any] struct {
	chunks [][]T
	n      int
}

const slabChunk = 64

// New returns a zeroed object from the slab.
func (s *Slab[T]) New() *T {
	ci, off := s.n/slabChunk, s.n%slabChunk
	if ci == len(s.chunks) {
		s.chunks = append(s.chunks, make([]T, slabChunk))
	}
	s.n++
	p := &s.chunks[ci][off]
	var zero T
	*p = zero
	return p
}

// Len returns the number of live objects.
func (s *Slab[T]) Len() int { return s.n }

// Reset rewinds the cursor; memory is retained for reuse.
func (s *Slab[T]) Reset() { s.n = 0 }
