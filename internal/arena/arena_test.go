package arena

import (
	"testing"
	"time"

	"circuitstart/internal/sim"
)

func TestSlabReusesMemoryAcrossResets(t *testing.T) {
	type obj struct{ a, b int }
	var s Slab[obj]
	first := make([]*obj, 0, 100)
	for i := 0; i < 100; i++ {
		p := s.New()
		p.a, p.b = i, -i
		first = append(first, p)
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d", s.Len())
	}
	for i := 0; i < 100; i++ {
		p := s.New()
		if p != first[i] {
			t.Fatalf("object %d not reused: slab allocated fresh memory after Reset", i)
		}
		if p.a != 0 || p.b != 0 {
			t.Fatalf("object %d not zeroed on reuse: %+v", i, *p)
		}
	}
}

func TestSlabPointersStableAcrossGrowth(t *testing.T) {
	// Chunking must keep issued pointers valid while the slab grows —
	// a slice-backed slab would invalidate them on reallocation.
	var s Slab[int]
	p0 := s.New()
	*p0 = 42
	for i := 0; i < 10*slabChunk; i++ {
		s.New()
	}
	if *p0 != 42 {
		t.Fatal("early pointer invalidated by slab growth")
	}
}

func TestArenaResetTrialRewindsEverything(t *testing.T) {
	a := New()

	// Dirty every component the way a trial would: advance the clock
	// past pending events, strand objects outside the free lists.
	fired := 0
	a.Clock.After(time.Millisecond, func() { fired++ })
	a.Clock.After(time.Hour, func() { fired++ }) // stays pending
	a.Clock.RunUntil(sim.Time(time.Second))
	if fired != 1 || a.Clock.Pending() != 1 {
		t.Fatalf("setup: fired=%d pending=%d", fired, a.Clock.Pending())
	}
	frame := a.Frames.Get() // in flight when the trial dies
	cellA := a.Cells.Get()
	segA := a.Segments.Get()

	a.ResetTrial()

	if now := a.Clock.Now(); now != 0 {
		t.Errorf("clock at %v after ResetTrial, want epoch", now)
	}
	if p := a.Clock.Pending(); p != 0 {
		t.Errorf("%d events still pending after ResetTrial", p)
	}
	// The pending event must never fire on the next trial's timeline.
	a.Clock.Run()
	if fired != 1 {
		t.Error("dead trial's event fired after ResetTrial")
	}
	// Stranded objects are reclaimed: the next trial draws the same
	// memory instead of allocating.
	if got := a.Frames.Get(); got != frame {
		t.Error("stranded frame not reclaimed by ResetTrial")
	}
	if got := a.Cells.Get(); got != cellA {
		t.Error("stranded cell not reclaimed by ResetTrial")
	}
	if got := a.Segments.Get(); got != segA {
		t.Error("stranded segment not reclaimed by ResetTrial")
	}
}

func TestArenaSlotsCreateOnceAndReset(t *testing.T) {
	a := New()
	made := 0
	mk := func() any { made++; return &Slab[int]{} }
	s1 := a.Slot("pkg.test", mk).(*Slab[int])
	s2 := a.Slot("pkg.test", mk).(*Slab[int])
	if s1 != s2 || made != 1 {
		t.Fatalf("Slot created %d values, want 1 shared", made)
	}
	s1.New()
	s1.New()
	a.ResetTrial()
	if s1.Len() != 0 {
		t.Errorf("resettable slot not rewound: Len = %d", s1.Len())
	}
	// Distinct keys get distinct slabs.
	if other := a.Slot("pkg.other", mk).(*Slab[int]); other == s1 {
		t.Error("distinct slot keys share a value")
	}
}
