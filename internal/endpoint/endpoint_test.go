package endpoint

import (
	"testing"
	"time"

	"circuitstart/internal/cell"
	"circuitstart/internal/netem"
	"circuitstart/internal/onion"
	"circuitstart/internal/sim"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
)

// fixedRand is a deterministic but non-repeating randomness source:
// every Read yields fresh bytes so distinct identities derive distinct
// keys (a constant reader would make all onion layers cancel out).
type fixedRand struct{ ctr byte }

func (r *fixedRand) Read(p []byte) (int, error) {
	for i := range p {
		r.ctr += 101
		p[i] = r.ctr ^ byte(i)
	}
	return len(p), nil
}

// sourceRig attaches a Source and a fake first-relay node that records
// everything and acknowledges data like a well-behaved hop receiver.
type sourceRig struct {
	clock  *sim.Clock
	star   *netem.Star
	source *Source
	crypto *onion.CircuitCrypto
	rk     []*onion.HopKeys

	recv *transport.Receiver
	got  []*cell.Cell
}

func newSourceRig(t *testing.T, hops int) *sourceRig {
	t.Helper()
	rig := &sourceRig{clock: sim.NewClock()}
	rig.star = netem.NewStar(rig.clock)
	access := netem.Symmetric(units.Mbps(50), time.Millisecond, 0)

	rnd := &fixedRand{}
	idents := make([]*onion.Identity, hops)
	for i := range idents {
		id, err := onion.NewIdentity(rnd)
		if err != nil {
			t.Fatal(err)
		}
		idents[i] = id
	}
	ck, rk, err := onion.BuildCircuit(rnd, idents)
	if err != nil {
		t.Fatal(err)
	}
	rig.crypto, rig.rk = ck, rk

	var relayPort *netem.Port
	relayPort = rig.star.Attach("first", access, netem.HandlerFunc(func(f *netem.Frame) {
		seg := *f.Payload.(*transport.Segment)
		switch seg.Kind {
		case transport.KindData:
			rig.recv.HandleData(seg.Seq, seg.Cell)
		case transport.KindProbe:
			rig.recv.HandleProbe()
		}
	}), nil)
	rig.recv = transport.NewReceiver(1, func(seg transport.Segment) bool {
		return relayPort.Send("client", seg.WireSize(), &seg)
	}, func(c *cell.Cell) {
		rig.got = append(rig.got, c)
		rig.recv.NotifyForwarded(rig.recv.Expected())
	})

	rig.source = NewSource("client", rig.star, access, 1, rig.crypto, "first", transport.Config{}, nil)
	return rig
}

func TestSourcePacketization(t *testing.T) {
	rig := newSourceRig(t, 1)
	// 1000 bytes over 496-byte relay payloads = 3 cells.
	n := rig.source.Send(1000 * units.Byte)
	if n != 3 {
		t.Fatalf("Send packetized %d cells", n)
	}
	if CellsFor(1000*units.Byte) != 3 {
		t.Fatalf("CellsFor = %d", CellsFor(1000*units.Byte))
	}
	rig.clock.RunUntil(5 * sim.Second)
	if len(rig.got) != 3 {
		t.Fatalf("relay received %d cells", len(rig.got))
	}
	// Each received cell must decrypt at the first (only) hop.
	var total int
	for i, c := range rig.got {
		rig.rk[0].DecryptForward(c)
		hdr, data, err := c.Relay()
		if err != nil || hdr.Recognized != 0 {
			t.Fatalf("cell %d not recognized after one layer: %v", i, err)
		}
		if !rig.rk[0].VerifyForward(c) {
			t.Fatalf("cell %d digest invalid", i)
		}
		total += len(data)
	}
	if total != 1000 {
		t.Fatalf("payload bytes %d, want 1000", total)
	}
}

func TestSourceLayeredEncryption(t *testing.T) {
	rig := newSourceRig(t, 3)
	rig.source.Send(496 * units.Byte)
	rig.clock.RunUntil(5 * sim.Second)
	if len(rig.got) != 1 {
		t.Fatalf("relay received %d cells", len(rig.got))
	}
	c := rig.got[0]
	// One layer: still unrecognizable.
	rig.rk[0].DecryptForward(c)
	if hdr, _, err := c.Relay(); err == nil && hdr.Recognized == 0 && rig.rk[0].VerifyForward(c) {
		t.Fatal("cell recognized after only one of three layers")
	}
	// Remaining layers reveal the plaintext.
	rig.rk[1].DecryptForward(c)
	rig.rk[2].DecryptForward(c)
	hdr, data, err := c.Relay()
	if err != nil || hdr.Recognized != 0 || !rig.rk[2].VerifyForward(c) {
		t.Fatalf("cell not recognized after all layers: %v", err)
	}
	if len(data) != 496 {
		t.Fatalf("payload %d bytes", len(data))
	}
}

func TestSourceSendPanicsOnZero(t *testing.T) {
	rig := newSourceRig(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	rig.source.Send(0)
}

func TestSourceAccessors(t *testing.T) {
	rig := newSourceRig(t, 1)
	if rig.source.ID() != "client" {
		t.Fatalf("ID = %q", rig.source.ID())
	}
	if rig.source.Sender() == nil || rig.source.Port() == nil {
		t.Fatal("nil accessors")
	}
}

// sinkRig attaches a Sink and a fake exit node.
type sinkRig struct {
	clock *sim.Clock
	star  *netem.Star
	sink  *Sink
	exit  *netem.Port

	ctrl []transport.Segment // control segments arriving at the exit
}

func newSinkRig(t *testing.T) *sinkRig {
	t.Helper()
	rig := &sinkRig{clock: sim.NewClock()}
	rig.star = netem.NewStar(rig.clock)
	access := netem.Symmetric(units.Mbps(50), time.Millisecond, 0)
	rig.exit = rig.star.Attach("exit", access, netem.HandlerFunc(func(f *netem.Frame) {
		rig.ctrl = append(rig.ctrl, *f.Payload.(*transport.Segment))
	}), nil)
	rig.sink = NewSink("server", rig.star, access, 1, "exit", transport.Config{}, nil)
	return rig
}

func (r *sinkRig) sendPlain(seq uint64, payload []byte) {
	c := &cell.Cell{Circ: 1}
	if err := c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData, StreamID: 1}, payload); err != nil {
		panic(err)
	}
	seg := transport.Segment{Kind: transport.KindData, Circ: 1, Seq: seq, Cell: c}
	r.exit.Send("server", seg.WireSize(), &seg)
}

func TestSinkCountsAndCompletes(t *testing.T) {
	rig := newSinkRig(t)
	var doneAt sim.Time
	rig.sink.Expect(992*units.Byte, func(at sim.Time) { doneAt = at })

	rig.sendPlain(0, make([]byte, 496))
	rig.sendPlain(1, make([]byte, 496))
	rig.clock.RunUntil(5 * sim.Second)

	if rig.sink.Received() != 992 {
		t.Fatalf("Received = %v", rig.sink.Received())
	}
	if rig.sink.Cells() != 2 {
		t.Fatalf("Cells = %d", rig.sink.Cells())
	}
	if doneAt == 0 {
		t.Fatal("completion callback never fired")
	}
	if rig.sink.LastCellAt() == 0 {
		t.Fatal("LastCellAt not recorded")
	}
	// The sink must have acked and fed back both cells ("delivering to
	// the application is the final forwarding step").
	var maxAck, maxFb uint64
	for _, s := range rig.ctrl {
		switch s.Kind {
		case transport.KindAck:
			if s.Count > maxAck {
				maxAck = s.Count
			}
		case transport.KindFeedback:
			if s.Count > maxFb {
				maxFb = s.Count
			}
		}
	}
	if maxAck != 2 || maxFb != 2 {
		t.Fatalf("ack=%d feedback=%d, want 2/2", maxAck, maxFb)
	}
}

func TestSinkCompletionFiresOnce(t *testing.T) {
	rig := newSinkRig(t)
	fired := 0
	rig.sink.Expect(498*units.Byte, func(sim.Time) { fired++ })
	rig.sendPlain(0, make([]byte, 496))
	rig.sendPlain(1, make([]byte, 496)) // beyond the expectation
	rig.clock.RunUntil(5 * sim.Second)
	if fired != 1 {
		t.Fatalf("completion fired %d times", fired)
	}
}

func TestSinkBadCellCounted(t *testing.T) {
	rig := newSinkRig(t)
	// A garbage cell (no valid relay header) counts as bad, not as data.
	c := &cell.Cell{Circ: 1}
	for i := range c.Payload {
		c.Payload[i] = 0xAA
	}
	seg := transport.Segment{Kind: transport.KindData, Circ: 1, Seq: 0, Cell: c}
	rig.exit.Send("server", seg.WireSize(), &seg)
	rig.clock.RunUntil(sim.Second)
	if rig.sink.BadCells() != 1 {
		t.Fatalf("BadCells = %d", rig.sink.BadCells())
	}
	if rig.sink.Received() != 0 {
		t.Fatalf("Received = %v for garbage", rig.sink.Received())
	}
}

func TestSinkID(t *testing.T) {
	rig := newSinkRig(t)
	if rig.sink.ID() != "server" {
		t.Fatalf("ID = %q", rig.sink.ID())
	}
}
