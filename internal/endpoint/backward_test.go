package endpoint

import (
	"testing"
	"time"

	"circuitstart/internal/cell"
	"circuitstart/internal/netem"
	"circuitstart/internal/onion"
	"circuitstart/internal/sim"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
)

// backRig wires a Source (client) to a fake first-relay node that
// behaves as the client's backward peer: it receives the client's
// backward control, and originates already-onion-encrypted backward
// cells like the real relay chain would.
type backRig struct {
	clock  *sim.Clock
	star   *netem.Star
	source *Source
	rk     []*onion.HopKeys // relay-side keys, guard first
	relay  *netem.Port

	ctrl []transport.Segment // backward control from the client
}

func newBackRig(t *testing.T, hops int) *backRig {
	t.Helper()
	rig := &backRig{clock: sim.NewClock()}
	rig.star = netem.NewStar(rig.clock)
	access := netem.Symmetric(units.Mbps(50), time.Millisecond, 0)

	rnd := &fixedRand{}
	idents := make([]*onion.Identity, hops)
	for i := range idents {
		id, err := onion.NewIdentity(rnd)
		if err != nil {
			t.Fatal(err)
		}
		idents[i] = id
	}
	ck, rk, err := onion.BuildCircuit(rnd, idents)
	if err != nil {
		t.Fatal(err)
	}
	rig.rk = rk

	rig.relay = rig.star.Attach("first", access, netem.HandlerFunc(func(f *netem.Frame) {
		seg := *f.Payload.(*transport.Segment)
		if seg.Dir == transport.DirBackward {
			rig.ctrl = append(rig.ctrl, seg)
		}
	}), nil)
	rig.source = NewSource("client", rig.star, access, 1, ck, "first", transport.Config{}, nil)
	return rig
}

// sendBackward originates one backward cell as the relay chain would:
// the exit (last hop) seals, every hop encrypts, innermost (exit) first.
func (r *backRig) sendBackward(seq uint64, payload []byte) {
	c := &cell.Cell{Circ: 1}
	if err := c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData, StreamID: 1}, payload); err != nil {
		panic(err)
	}
	exit := r.rk[len(r.rk)-1]
	exit.SealBackward(c)
	for i := len(r.rk) - 1; i >= 0; i-- {
		r.rk[i].EncryptBackward(c)
	}
	seg := transport.Segment{Kind: transport.KindData, Dir: transport.DirBackward, Circ: 1, Seq: seq, Cell: c}
	r.relay.Send("client", seg.WireSize(), &seg)
}

func TestSourceDownloadUnwrapsAllLayers(t *testing.T) {
	rig := newBackRig(t, 3)
	var doneAt sim.Time
	rig.source.ExpectDownload(992*units.Byte, func(at sim.Time) { doneAt = at })

	rig.sendBackward(0, make([]byte, 496))
	rig.sendBackward(1, make([]byte, 496))
	rig.clock.RunUntil(5 * sim.Second)

	if rig.source.Downloaded() != 992 {
		t.Fatalf("Downloaded = %v, want 992", rig.source.Downloaded())
	}
	if rig.source.DownloadBadCells() != 0 {
		t.Fatalf("%d bad cells", rig.source.DownloadBadCells())
	}
	if doneAt == 0 {
		t.Fatal("download completion never fired")
	}
	// The client must acknowledge and feed back over the backward
	// direction (delivery is the final forwarding step).
	var maxAck, maxFb uint64
	for _, s := range rig.ctrl {
		switch s.Kind {
		case transport.KindAck:
			if s.Count > maxAck {
				maxAck = s.Count
			}
		case transport.KindFeedback:
			if s.Count > maxFb {
				maxFb = s.Count
			}
		}
	}
	if maxAck != 2 || maxFb != 2 {
		t.Fatalf("backward ack=%d feedback=%d, want 2/2", maxAck, maxFb)
	}
}

func TestSourceDownloadCountsBadCells(t *testing.T) {
	rig := newBackRig(t, 2)
	// A backward cell with garbage encryption never becomes recognized
	// at the client and counts as bad.
	c := &cell.Cell{Circ: 1}
	for i := range c.Payload {
		c.Payload[i] = 0x5c
	}
	seg := transport.Segment{Kind: transport.KindData, Dir: transport.DirBackward, Circ: 1, Seq: 0, Cell: c}
	rig.relay.Send("client", seg.WireSize(), &seg)
	rig.clock.RunUntil(sim.Second)
	if rig.source.DownloadBadCells() != 1 {
		t.Fatalf("DownloadBadCells = %d", rig.source.DownloadBadCells())
	}
	if rig.source.Downloaded() != 0 {
		t.Fatalf("Downloaded = %v for garbage", rig.source.Downloaded())
	}
}

func TestSinkSendBackwardPacketizes(t *testing.T) {
	clock := sim.NewClock()
	star := netem.NewStar(clock)
	access := netem.Symmetric(units.Mbps(50), time.Millisecond, 0)

	var datas []transport.Segment
	exit := star.Attach("exit", access, netem.HandlerFunc(func(f *netem.Frame) {
		seg := *f.Payload.(*transport.Segment)
		if seg.Kind == transport.KindData && seg.Dir == transport.DirBackward {
			datas = append(datas, seg)
		}
	}), nil)
	_ = exit
	k := NewSink("server", star, access, 1, "exit", transport.Config{}, nil)

	if n := k.SendBackward(1000 * units.Byte); n != 3 {
		t.Fatalf("SendBackward packetized %d cells", n)
	}
	clock.RunUntil(sim.Second)
	// Initial window is 2 cells; at least those must be on the wire as
	// plaintext relay cells (the exit seals, not the server).
	if len(datas) < 2 {
		t.Fatalf("exit received %d backward cells", len(datas))
	}
	hdr, _, err := datas[0].Cell.Relay()
	if err != nil || hdr.Cmd != cell.RelayData || hdr.Recognized != 0 {
		t.Fatalf("backward cell not plaintext: %v %+v", err, hdr)
	}
	if k.BackwardSender() == nil {
		t.Fatal("nil BackwardSender")
	}
}

func TestSinkSendBackwardPanicsOnZero(t *testing.T) {
	clock := sim.NewClock()
	star := netem.NewStar(clock)
	access := netem.Symmetric(units.Mbps(50), time.Millisecond, 0)
	star.Attach("exit", access, netem.HandlerFunc(func(*netem.Frame) {}), nil)
	k := NewSink("server", star, access, 1, "exit", transport.Config{}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	k.SendBackward(0)
}
