// Package endpoint implements the two ends of a data circuit: the
// Source, which packetizes a transfer into onion-encrypted cells and
// runs the first transport hop, and the Sink, which consumes plaintext
// cells at the far end and reports forwarding progress immediately
// (delivering to the application is the final "forwarding" step, so the
// sink's feedback is generated on in-order delivery).
package endpoint

import (
	"fmt"

	"circuitstart/internal/cell"
	"circuitstart/internal/netem"
	"circuitstart/internal/onion"
	"circuitstart/internal/sim"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
)

// Source is the data origin of a circuit. In the paper's terminology it
// is "the source" whose congestion window Figure 1 traces; for a Tor
// download it corresponds to the sending edge of the circuit.
type Source struct {
	id     netem.NodeID
	clock  *sim.Clock
	port   *netem.Port
	circ   cell.CircID
	crypto *onion.CircuitCrypto
	sender *transport.Sender
	first  netem.NodeID

	queuedBytes units.DataSize
	sentCells   uint64
	cells       *cell.Pool // optional recycling with the far endpoint
	segs        *transport.SegmentPool
	packBuf     []byte // zero-filled packetization scratch, shared by Send calls

	// Download (backward) direction: the client receives layered cells
	// from the first relay and unwraps every hop's encryption.
	drecv        *transport.Receiver
	downloaded   units.DataSize
	downCells    uint64
	downBad      uint64
	downExpected units.DataSize
	onDownload   func(at sim.Time)
	downDone     bool

	closed bool
}

// NewSource attaches a source node to the fabric. params is the
// transport template (Clock/Circ/Send are filled in here); first is the
// circuit's first relay.
func NewSource(id netem.NodeID, fab netem.Fabric, access netem.AccessConfig,
	circ cell.CircID, crypto *onion.CircuitCrypto, first netem.NodeID,
	params transport.Config, rng *sim.RNG) *Source {

	s := &Source{id: id, clock: fab.Clock(), circ: circ, crypto: crypto, first: first}
	s.port = fab.Attach(id, access, s, rng)

	params.Clock = s.clock
	params.Circ = circ
	params.Send = func(seg transport.Segment) bool {
		seg.Dir = transport.DirForward
		return sendSegment(s.segs, s.port, first, seg)
	}
	s.sender = transport.NewSender(params)

	s.drecv = transport.NewReceiver(circ,
		func(seg transport.Segment) bool {
			seg.Dir = transport.DirBackward
			return sendSegment(s.segs, s.port, first, seg)
		},
		s.consumeDownload,
	)
	return s
}

// UseSegmentPool wires the shared segment-wrapper pool (see
// core.Network). Must be set before traffic flows; nil is valid.
func (s *Source) UseSegmentPool(sp *transport.SegmentPool) { s.segs = sp }

// UseCellPool wires cell recycling: Send draws packetization cells from
// pool, and every consumed download cell is returned to it. Wire the
// same pool into both endpoints of a circuit (core does) so the cells of
// one direction feed the packetizer of the other.
func (s *Source) UseCellPool(pool *cell.Pool) { s.cells = pool }

// ExpectDownload arms the download completion callback: once size
// application bytes have arrived over the backward direction,
// onComplete fires with the arrival time of the last byte.
func (s *Source) ExpectDownload(size units.DataSize, onComplete func(at sim.Time)) {
	// Cumulative target, like Sink.Expect: downloaded never resets, so a
	// second download on the same circuit waits for size NEW bytes.
	s.downExpected = s.downloaded + size
	s.onDownload = onComplete
	s.downDone = false
}

// Downloaded returns the backward-direction application bytes received.
func (s *Source) Downloaded() units.DataSize { return s.downloaded }

// DownloadBadCells returns backward cells that failed to unwrap.
func (s *Source) DownloadBadCells() uint64 { return s.downBad }

// consumeDownload processes one in-order backward cell: unwrap every
// onion layer, account the data, and report the cell forwarded
// (delivery to the application is the final step).
func (s *Source) consumeDownload(c *cell.Cell) {
	s.downCells++
	if _, err := s.crypto.UnwrapBackward(c); err != nil {
		s.downBad++
	} else if hdr, data, err := c.Relay(); err == nil && hdr.Cmd == cell.RelayData {
		s.downloaded += units.DataSize(len(data))
	} else {
		s.downBad++
	}
	s.drecv.NotifyForwarded(s.drecv.Expected())
	s.cells.Put(c)
	if !s.downDone && s.downExpected > 0 && s.downloaded >= s.downExpected && s.onDownload != nil {
		s.downDone = true
		s.onDownload(s.clock.Now())
	}
}

// Close releases the source's circuit state on teardown: the forward
// sender's timers stop (their events return to the clock's free list),
// its never-transmitted packetization cells — the bulk of an aborted
// transfer's backlog — go back to the cell pool, the download receiver
// shuts down, and frames still in flight from the fabric are dropped
// silently. The port stays attached; a rebuilt circuit uses fresh node
// IDs.
func (s *Source) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.onDownload = nil
	pool := s.cells
	s.sender.Close(func(c *cell.Cell) { pool.Put(c) })
	s.drecv.Close()
}

// Closed reports whether the source has been torn down.
func (s *Source) Closed() bool { return s.closed }

// ID returns the source's node ID.
func (s *Source) ID() netem.NodeID { return s.id }

// Sender exposes the source's hop sender — the subject of the paper's
// cwnd traces.
func (s *Source) Sender() *transport.Sender { return s.sender }

// Port returns the source's network attachment.
func (s *Source) Port() *netem.Port { return s.port }

// Send packetizes size bytes of application data into relay DATA cells,
// onion-encrypts each, and submits them to the transport. It returns
// the number of cells enqueued.
func (s *Source) Send(size units.DataSize) int {
	if size <= 0 {
		panic(fmt.Sprintf("endpoint: Send(%v)", size))
	}
	if s.closed {
		panic("endpoint: Send on a closed source")
	}
	s.queuedBytes += size
	remaining := size.Bytes()
	cells := 0
	if s.packBuf == nil {
		s.packBuf = make([]byte, cell.MaxRelayData)
	}
	buf := s.packBuf
	for remaining > 0 {
		n := int64(cell.MaxRelayData)
		if remaining < n {
			n = remaining
		}
		remaining -= n
		c := s.cells.Get()
		c.Circ = s.circ
		if err := c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData, StreamID: 1}, buf[:n]); err != nil {
			panic(err) // n <= MaxRelayData by construction
		}
		s.crypto.WrapForward(c)
		s.sender.Enqueue(c)
		s.sentCells++
		cells++
	}
	return cells
}

// CellsFor returns how many cells a transfer of the given size occupies.
func CellsFor(size units.DataSize) int {
	per := int64(cell.MaxRelayData)
	return int((size.Bytes() + per - 1) / per)
}

// Deliver handles a segment arriving from the first relay: control for
// the forward sender, data for the download receiver (netem.Handler).
func (s *Source) Deliver(f *netem.Frame) {
	s.deliver(f)
}

// DeliverTrain handles a whole cell train in one call
// (netem.TrainHandler): backward data segments defer their per-cell
// acks and forwarding reports, and one cumulative FEEDBACK+ACK pair
// covering the train is flushed at the end.
func (s *Source) DeliverTrain(fs []*netem.Frame) {
	for _, f := range fs {
		s.deliverBatched(f)
	}
	if s.drecv != nil {
		s.drecv.Flush()
	}
}

// deliverBatched is deliver with data handed to the batched receiver
// path (signals deferred to the train boundary).
func (s *Source) deliverBatched(f *netem.Frame) {
	if s.closed {
		return
	}
	seg, ok := f.Payload.(*transport.Segment)
	if !ok || f.Src != s.first {
		panic(fmt.Sprintf("source %s: unexpected frame from %s", s.id, f.Src))
	}
	if seg.Dir == transport.DirBackward && seg.Kind == transport.KindData {
		s.drecv.HandleDataBatched(seg.Seq, seg.Cell)
		return
	}
	s.deliverSeg(seg)
}

func (s *Source) deliver(f *netem.Frame) {
	if s.closed {
		return // circuit torn down; absorb in-flight frames
	}
	seg, ok := f.Payload.(*transport.Segment)
	if !ok || f.Src != s.first {
		panic(fmt.Sprintf("source %s: unexpected frame from %s", s.id, f.Src))
	}
	if seg.Dir == transport.DirBackward && seg.Kind == transport.KindData {
		s.drecv.HandleData(seg.Seq, seg.Cell)
		return
	}
	s.deliverSeg(seg)
}

// deliverSeg routes the non-data segment kinds (shared by the per-frame
// and batched paths).
func (s *Source) deliverSeg(seg *transport.Segment) {
	if seg.Dir == transport.DirBackward {
		switch seg.Kind {
		case transport.KindProbe:
			s.drecv.HandleProbe()
		default:
			panic(fmt.Sprintf("source %s: unexpected backward segment %v", s.id, seg))
		}
		return
	}
	switch seg.Kind {
	case transport.KindAck:
		s.sender.HandleAck(seg.Count)
	case transport.KindFeedback:
		s.sender.HandleFeedback(seg.Count)
	default:
		panic(fmt.Sprintf("source %s: unexpected segment %v", s.id, seg))
	}
}

// Sink is the destination endpoint: it receives plaintext cells from
// the exit relay, counts application bytes, and completes a transfer.
type Sink struct {
	id    netem.NodeID
	clock *sim.Clock
	port  *netem.Port
	circ  cell.CircID
	exit  netem.NodeID
	recv  *transport.Receiver

	received   units.DataSize
	cells      uint64
	badCells   uint64
	lastCellAt sim.Time

	// Expected, when positive, arms OnComplete.
	expected   units.DataSize
	onComplete func(at sim.Time)
	completed  bool

	// bsender originates backward (download-direction) data: the sink
	// is the destination server, outside the onion, so it sends
	// plaintext relay cells; the exit relay seals and encrypts them.
	bsender *transport.Sender

	cellPool *cell.Pool // optional recycling with the far endpoint
	segs     *transport.SegmentPool
	packBuf  []byte // zero-filled packetization scratch, shared by SendBackward calls

	closed bool
}

// NewSink attaches a sink node to the fabric, receiving from exit.
// params configures the backward (server → client) sender; the zero
// value selects the transport defaults.
func NewSink(id netem.NodeID, fab netem.Fabric, access netem.AccessConfig,
	circ cell.CircID, exit netem.NodeID, params transport.Config, rng *sim.RNG) *Sink {

	k := &Sink{id: id, clock: fab.Clock(), circ: circ, exit: exit}
	k.port = fab.Attach(id, access, k, rng)
	k.recv = transport.NewReceiver(circ,
		func(seg transport.Segment) bool {
			seg.Dir = transport.DirForward
			return sendSegment(k.segs, k.port, exit, seg)
		},
		k.consume,
	)

	params.Clock = k.clock
	params.Circ = circ
	params.Send = func(seg transport.Segment) bool {
		seg.Dir = transport.DirBackward
		return sendSegment(k.segs, k.port, exit, seg)
	}
	k.bsender = transport.NewSender(params)
	return k
}

// UseSegmentPool wires the shared segment-wrapper pool (see
// core.Network). Must be set before traffic flows; nil is valid.
func (k *Sink) UseSegmentPool(sp *transport.SegmentPool) { k.segs = sp }

// BackwardSender exposes the sink's server-side sender (the subject of
// download-direction window traces).
func (k *Sink) BackwardSender() *transport.Sender { return k.bsender }

// UseCellPool wires cell recycling: consumed upload cells are returned
// to pool and SendBackward draws its packetization cells from it.
func (k *Sink) UseCellPool(pool *cell.Pool) { k.cellPool = pool }

// SendBackward packetizes size bytes of server data into plaintext
// relay DATA cells and submits them toward the client over the backward
// direction. It returns the number of cells enqueued.
func (k *Sink) SendBackward(size units.DataSize) int {
	if size <= 0 {
		panic(fmt.Sprintf("endpoint: SendBackward(%v)", size))
	}
	if k.closed {
		panic("endpoint: SendBackward on a closed sink")
	}
	remaining := size.Bytes()
	if k.packBuf == nil {
		k.packBuf = make([]byte, cell.MaxRelayData)
	}
	buf := k.packBuf
	cells := 0
	for remaining > 0 {
		n := int64(cell.MaxRelayData)
		if remaining < n {
			n = remaining
		}
		remaining -= n
		c := k.cellPool.Get()
		c.Circ = k.circ
		if err := c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData, StreamID: 1}, buf[:n]); err != nil {
			panic(err) // n <= MaxRelayData by construction
		}
		k.bsender.Enqueue(c)
		cells++
	}
	return cells
}

// sendSegment transmits a hop segment, giving control segments (ACK,
// FEEDBACK, PROBE) link priority so congestion feedback is not delayed
// by the data queues it describes. Data frames carry their circuit ID
// so installed circuit schedulers can tell flows apart. The segment
// rides as a pooled *Segment wrapper (see relay.sendSegment); a nil
// pool allocates a fresh wrapper per call.
func sendSegment(sp *transport.SegmentPool, p *netem.Port, dst netem.NodeID, seg transport.Segment) bool {
	s := sp.Get()
	*s = seg
	if seg.Kind == transport.KindData {
		return p.SendCirc(dst, seg.WireSize(), s, uint32(seg.Circ))
	}
	return p.SendPriority(dst, seg.WireSize(), s)
}

// Close releases the sink's circuit state on teardown: the backward
// sender's timers stop, its never-transmitted packetization cells go
// back to the cell pool, the forward receiver shuts down, and frames
// still in flight from the fabric are dropped silently.
func (k *Sink) Close() {
	if k.closed {
		return
	}
	k.closed = true
	k.onComplete = nil
	pool := k.cellPool
	k.bsender.Close(func(c *cell.Cell) { pool.Put(c) })
	k.recv.Close()
}

// Closed reports whether the sink has been torn down.
func (k *Sink) Closed() bool { return k.closed }

// ID returns the sink's node ID.
func (k *Sink) ID() netem.NodeID { return k.id }

// Expect arms the completion callback: once size application bytes have
// arrived, onComplete fires with the arrival time of the last byte.
func (k *Sink) Expect(size units.DataSize, onComplete func(at sim.Time)) {
	// The target is cumulative — received never resets — so arming a new
	// expectation on a circuit that already completed a transfer waits
	// for size NEW bytes rather than completing on the first cell.
	k.expected = k.received + size
	k.onComplete = onComplete
	k.completed = false
}

// Received returns the application bytes delivered so far.
func (k *Sink) Received() units.DataSize { return k.received }

// Cells returns the number of cells consumed.
func (k *Sink) Cells() uint64 { return k.cells }

// BadCells returns cells that failed to parse as plaintext relay cells.
func (k *Sink) BadCells() uint64 { return k.badCells }

// LastCellAt returns the arrival time of the most recent cell.
func (k *Sink) LastCellAt() sim.Time { return k.lastCellAt }

// consume processes one in-order plaintext cell: account its data and
// immediately report it forwarded (the delivery IS the forwarding).
func (k *Sink) consume(c *cell.Cell) {
	k.cells++
	k.lastCellAt = k.clock.Now()
	hdr, data, err := c.Relay()
	if err != nil || hdr.Cmd != cell.RelayData {
		k.badCells++
	} else {
		k.received += units.DataSize(len(data))
	}
	k.recv.NotifyForwarded(k.recv.Expected())
	k.cellPool.Put(c)
	if !k.completed && k.expected > 0 && k.received >= k.expected && k.onComplete != nil {
		k.completed = true
		k.onComplete(k.clock.Now())
	}
}

// Deliver handles one frame from the exit relay: forward data to the
// receiver, backward control to the server-side sender (netem.Handler).
func (k *Sink) Deliver(f *netem.Frame) {
	k.deliver(f)
}

// DeliverTrain handles a whole cell train in one call
// (netem.TrainHandler): forward data segments defer their per-cell acks
// and forwarding reports, and one cumulative FEEDBACK+ACK pair covering
// the train is flushed at the end.
func (k *Sink) DeliverTrain(fs []*netem.Frame) {
	for _, f := range fs {
		k.deliverBatched(f)
	}
	if k.recv != nil {
		k.recv.Flush()
	}
}

// deliverBatched is deliver with data handed to the batched receiver
// path (signals deferred to the train boundary).
func (k *Sink) deliverBatched(f *netem.Frame) {
	if k.closed {
		return
	}
	seg, ok := f.Payload.(*transport.Segment)
	if !ok || f.Src != k.exit {
		panic(fmt.Sprintf("sink %s: unexpected frame from %s", k.id, f.Src))
	}
	if seg.Dir == transport.DirForward && seg.Kind == transport.KindData {
		k.recv.HandleDataBatched(seg.Seq, seg.Cell)
		return
	}
	k.deliverSeg(seg)
}

func (k *Sink) deliver(f *netem.Frame) {
	if k.closed {
		return // circuit torn down; absorb in-flight frames
	}
	seg, ok := f.Payload.(*transport.Segment)
	if !ok || f.Src != k.exit {
		panic(fmt.Sprintf("sink %s: unexpected frame from %s", k.id, f.Src))
	}
	if seg.Dir == transport.DirForward && seg.Kind == transport.KindData {
		k.recv.HandleData(seg.Seq, seg.Cell)
		return
	}
	k.deliverSeg(seg)
}

// deliverSeg routes the non-data segment kinds (shared by the per-frame
// and batched paths).
func (k *Sink) deliverSeg(seg *transport.Segment) {
	if seg.Dir == transport.DirBackward {
		switch seg.Kind {
		case transport.KindAck:
			k.bsender.HandleAck(seg.Count)
		case transport.KindFeedback:
			k.bsender.HandleFeedback(seg.Count)
		default:
			panic(fmt.Sprintf("sink %s: unexpected backward segment %v", k.id, seg))
		}
		return
	}
	switch seg.Kind {
	case transport.KindProbe:
		k.recv.HandleProbe()
	default:
		panic(fmt.Sprintf("sink %s: unexpected segment %v", k.id, seg))
	}
}
