// Package spec is the one versioned JSON wire schema for everything
// submittable to the simulator: a base scenario (trace or generated
// population, including relay-population shape, workload size
// distribution, fault plan and relay scheduler/resource configuration)
// crossed with sweep dimensions. `circuitsim sweep -spec`, `circuitsim
// spec -validate` and the `circuitsim serve` HTTP body all parse
// through this package, so a grid means exactly the same thing on the
// command line and over the wire.
//
// The codec follows the faults.ParseSpec contract, promoted to the
// whole surface: a version field (omitted = 1), DisallowUnknownFields
// so typos fail loudly, and eager validation that names the offending
// entry — a bad spec is rejected at parse time, never inside a worker.
// Parse canonicalizes in place (defaults filled, fault plans re-encoded
// through faults.MarshalSpec), which makes Marshal a fixed point:
// Marshal(Parse(x)) == Marshal(Parse(Marshal(Parse(x)))) for every
// valid x — the property the serve daemon's content-addressed point
// cache is keyed on.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"circuitstart/internal/faults"
	"circuitstart/internal/relay"
	"circuitstart/internal/resource"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// Version is the current (and only) spec schema version. A spec that
// omits the field gets it; any other value is rejected.
const Version = 1

// File is one complete submittable grid: a versioned envelope around a
// base scenario and its sweep dimensions.
type File struct {
	// Version is the schema version (omitted = 1).
	Version int `json:"version"`
	// Name labels the sweep in summaries and row metadata.
	Name string `json:"name"`
	// Seed is nullable so an explicit 0 is honoured; omitting the
	// field selects the default 42.
	Seed       *int64 `json:"seed"`
	Base       Base   `json:"base"`
	Dimensions []Dim  `json:"dimensions"`
	// Sample caps the grid to a seeded sample of this many points.
	Sample     int   `json:"sample,omitempty"`
	SampleSeed int64 `json:"sample_seed,omitempty"`
}

// Base describes the scenario every grid point starts from. Kind
// selects the family; fields that do not apply to the selected kind are
// rejected by name.
type Base struct {
	// Kind selects the base scenario: "trace" (default; the paper's
	// single-circuit bottleneck topology) or "population" (a generated
	// Tor-like relay population).
	Kind string `json:"kind"`
	// Arms are the base policy arms (default ["circuitstart"]).
	Arms []string `json:"arms"`
	// Hops is the relays per circuit (trace: also the path length).
	Hops int `json:"hops"`
	// Distance is the trace base's bottleneck distance in hops.
	Distance int `json:"distance,omitempty"`
	// HorizonSec bounds each trial's virtual time (population default
	// 600; trace default: the trace preset's own horizon).
	HorizonSec float64 `json:"horizon_sec,omitempty"`

	// Population shape (kind "population" only).
	Relays     int         `json:"relays,omitempty"`
	Population *Population `json:"population,omitempty"`
	Circuits   int         `json:"circuits,omitempty"`
	// Switches homes the population behind a backbone ring of this
	// many switches (0 = star).
	Switches  int   `json:"switches,omitempty"`
	SizeBytes int64 `json:"size_bytes,omitempty"`
	// SizeDist draws per-circuit transfer sizes from a distribution
	// instead of the scalar SizeBytes (workload.ParseSizeDist form,
	// e.g. "lognormal:500000:0.8"). Mutually exclusive with SizeBytes.
	SizeDist string `json:"size_dist,omitempty"`
	// Download runs transfers server → client through the onion.
	Download bool `json:"download,omitempty"`
	// SpreadMs is the uniform start stagger window; nullable so an
	// explicit 0 (simultaneous arrivals) is honoured; omitting the
	// field selects the default 200 ms stagger.
	SpreadMs *float64 `json:"spread_ms,omitempty"`
	// PoissonRate switches to open-loop Poisson arrivals at this mean
	// rate per second. Mutually exclusive with a nonzero SpreadMs.
	PoissonRate float64 `json:"poisson_rate,omitempty"`

	// Engine shape (either kind).
	Train  int `json:"train,omitempty"`
	Shards int `json:"shards,omitempty"`

	// Relay configuration, applied to every arm (either kind).
	Scheduler      string `json:"scheduler,omitempty"`
	MaxCircuits    int    `json:"max_circuits,omitempty"`
	MaxMemoryBytes int64  `json:"max_memory_bytes,omitempty"`
	// KillPolicy selects the behaviour at the caps ("reject-new",
	// "kill-oldest" or "kill-heaviest").
	KillPolicy string `json:"kill_policy,omitempty"`

	// Faults names a fault preset (see faults.PresetNames), rendered
	// against each point's own topology. FaultPlan embeds an explicit
	// plan in the faults.ParseSpec wire form instead. At most one.
	Faults    string          `json:"faults,omitempty"`
	FaultPlan json.RawMessage `json:"fault_plan,omitempty"`
}

// Population overrides the generated relay population's shape
// (defaults: workload.DefaultRelayParams).
type Population struct {
	MedianMbps    float64 `json:"median_mbps,omitempty"`
	Sigma         float64 `json:"sigma,omitempty"`
	MinMbps       float64 `json:"min_mbps,omitempty"`
	MaxMbps       float64 `json:"max_mbps,omitempty"`
	DelayMinMs    float64 `json:"delay_min_ms,omitempty"`
	DelayMaxMs    float64 `json:"delay_max_ms,omitempty"`
	QueueCapBytes int64   `json:"queue_cap_bytes,omitempty"`
	GuardFrac     float64 `json:"guard_frac,omitempty"`
	ExitFrac      float64 `json:"exit_frac,omitempty"`
}

// Dim is one sweep axis. Exactly one list must be set per block; the
// grid is the cross product of the blocks in order (last varies
// fastest).
type Dim struct {
	Gammas         []float64 `json:"gammas,omitempty"`
	Policies       []string  `json:"policies,omitempty"`
	BandwidthsMbps []float64 `json:"bandwidths_mbps,omitempty"`
	HopCounts      []int     `json:"hopcounts,omitempty"`
	SizesBytes     []int64   `json:"sizes_bytes,omitempty"`
	SizeDists      []string  `json:"size_dists,omitempty"`
	Counts         []int     `json:"counts,omitempty"`
	Trains         []int     `json:"trains,omitempty"`
	ShardCounts    []int     `json:"shardcounts,omitempty"`
	Faults         []string  `json:"faults,omitempty"`
	Schedulers     []string  `json:"schedulers,omitempty"`
	Seeds          []int64   `json:"seeds,omitempty"`
}

// Parse decodes, validates and canonicalizes a spec. Unknown fields,
// version mismatches, fields that do not apply to the base kind,
// malformed distributions / fault plans / dimension values are all
// rejected here with errors naming the offending entry. The returned
// File has every default filled, so Marshal of it is canonical.
func Parse(data []byte) (*File, error) {
	var f File
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing content after the grid object")
	}
	if err := f.normalize(); err != nil {
		return nil, err
	}
	// Eagerly render the sweep: every dimension value and the fully
	// composed base scenario are validated now, not inside a worker.
	if _, err := f.Sweep(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Marshal renders a parsed File in canonical indented form. For any
// valid input x, Marshal(Parse(x)) is a fixed point of Parse∘Marshal.
func Marshal(f *File) ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return append(data, '\n'), nil
}

// normalize fills defaults in place and validates everything that does
// not require rendering the sweep.
func (f *File) normalize() error {
	if f.Version == 0 {
		f.Version = Version
	}
	if f.Version != Version {
		return fmt.Errorf("spec: unsupported version %d (this build speaks version %d)", f.Version, Version)
	}
	if f.Name == "" {
		f.Name = "spec-sweep"
	}
	if f.Seed == nil {
		seed := int64(42)
		f.Seed = &seed
	}
	if f.Sample < 0 {
		return fmt.Errorf("spec: negative sample %d", f.Sample)
	}
	return f.Base.normalize()
}

func (b *Base) normalize() error {
	if b.Kind == "" {
		b.Kind = "trace"
	}
	if len(b.Arms) == 0 {
		b.Arms = []string{"circuitstart"}
	}
	if b.Hops == 0 {
		b.Hops = 3
	}
	switch b.Kind {
	case "trace":
		for field, set := range map[string]bool{
			"relays":       b.Relays != 0,
			"population":   b.Population != nil,
			"circuits":     b.Circuits != 0,
			"switches":     b.Switches != 0,
			"size_bytes":   b.SizeBytes != 0,
			"size_dist":    b.SizeDist != "",
			"download":     b.Download,
			"spread_ms":    b.SpreadMs != nil,
			"poisson_rate": b.PoissonRate != 0,
		} {
			if set {
				return fmt.Errorf("spec: base.%s does not apply to the trace base", field)
			}
		}
		if b.Distance == 0 {
			b.Distance = 3
			if b.Distance > b.Hops {
				b.Distance = b.Hops
			}
		}
		if b.Distance < 1 || b.Distance > b.Hops {
			return fmt.Errorf("spec: base.distance %d outside 1..%d", b.Distance, b.Hops)
		}
	case "population":
		if b.Distance != 0 {
			return fmt.Errorf("spec: base.distance applies only to the trace base")
		}
		if b.Relays == 0 {
			b.Relays = 40
		}
		if b.Circuits == 0 {
			b.Circuits = 50
		}
		if b.SizeDist != "" {
			if b.SizeBytes != 0 {
				return fmt.Errorf("spec: base.size_bytes and base.size_dist are mutually exclusive")
			}
			d, err := workload.ParseSizeDist(b.SizeDist)
			if err != nil {
				return fmt.Errorf("spec: base.size_dist: %w", err)
			}
			b.SizeDist = d.Label()
		} else if b.SizeBytes == 0 {
			b.SizeBytes = 500_000
		}
		if b.HorizonSec == 0 {
			b.HorizonSec = 600
		}
		if b.PoissonRate < 0 {
			return fmt.Errorf("spec: negative base.poisson_rate %g", b.PoissonRate)
		}
		if b.PoissonRate > 0 {
			if b.SpreadMs != nil && *b.SpreadMs != 0 {
				return fmt.Errorf("spec: base.spread_ms and base.poisson_rate are mutually exclusive")
			}
			b.SpreadMs = nil
		} else if b.SpreadMs == nil {
			spread := 200.0
			b.SpreadMs = &spread
		}
		if b.SpreadMs != nil && *b.SpreadMs < 0 {
			return fmt.Errorf("spec: negative base.spread_ms %g", *b.SpreadMs)
		}
	default:
		return fmt.Errorf("spec: unknown base.kind %q (want trace or population)", b.Kind)
	}
	if b.HorizonSec < 0 {
		return fmt.Errorf("spec: negative base.horizon_sec %g", b.HorizonSec)
	}
	if b.Train < 0 {
		return fmt.Errorf("spec: negative base.train %d", b.Train)
	}
	if b.Shards < 0 {
		return fmt.Errorf("spec: negative base.shards %d", b.Shards)
	}
	if _, err := b.relayConfig(); err != nil {
		return err
	}
	if b.Faults != "" && len(b.FaultPlan) > 0 {
		return fmt.Errorf("spec: base.faults and base.fault_plan are mutually exclusive")
	}
	if b.Faults != "" {
		if _, err := faults.Preset(b.Faults, nil); err != nil {
			return fmt.Errorf("spec: base.faults: %w", err)
		}
	}
	if len(b.FaultPlan) > 0 {
		plan, err := faults.ParseSpec(b.FaultPlan)
		if err != nil {
			return fmt.Errorf("spec: base.fault_plan: %w", err)
		}
		canonical, err := faults.MarshalSpec(plan)
		if err != nil {
			return fmt.Errorf("spec: base.fault_plan: %w", err)
		}
		b.FaultPlan = canonical
	}
	return nil
}

// relayConfig renders the base's scheduler/resource fields into the
// per-arm relay configuration, validating the names.
func (b *Base) relayConfig() (relay.Config, error) {
	policy, err := resource.PolicyByName(b.KillPolicy)
	if err != nil {
		return relay.Config{}, fmt.Errorf("spec: base.kill_policy: %w", err)
	}
	if b.MaxCircuits < 0 {
		return relay.Config{}, fmt.Errorf("spec: negative base.max_circuits %d", b.MaxCircuits)
	}
	if b.MaxMemoryBytes < 0 {
		return relay.Config{}, fmt.Errorf("spec: negative base.max_memory_bytes %d", b.MaxMemoryBytes)
	}
	cfg := relay.Config{
		Scheduler: b.Scheduler,
		Limits: resource.Limits{
			MaxCircuits: b.MaxCircuits,
			MaxMemory:   units.DataSize(b.MaxMemoryBytes),
			Policy:      policy,
		},
	}
	if err := cfg.Validate(); err != nil {
		return relay.Config{}, fmt.Errorf("spec: base.scheduler: %w", err)
	}
	return cfg, nil
}

// relayParams renders the population block over the workload defaults.
func (b *Base) relayParams() workload.RelayParams {
	p := workload.DefaultRelayParams(b.Relays)
	if pop := b.Population; pop != nil {
		if pop.MedianMbps > 0 {
			p.BandwidthMedian = units.Mbps(pop.MedianMbps)
		}
		if pop.Sigma > 0 {
			p.BandwidthSigma = pop.Sigma
		}
		if pop.MinMbps > 0 {
			p.MinBandwidth = units.Mbps(pop.MinMbps)
		}
		if pop.MaxMbps > 0 {
			p.MaxBandwidth = units.Mbps(pop.MaxMbps)
		}
		if pop.DelayMinMs > 0 {
			p.DelayMin = millis(pop.DelayMinMs)
		}
		if pop.DelayMaxMs > 0 {
			p.DelayMax = millis(pop.DelayMaxMs)
		}
		if pop.QueueCapBytes > 0 {
			p.QueueCap = units.DataSize(pop.QueueCapBytes)
		}
		if pop.GuardFrac > 0 {
			p.GuardFrac = pop.GuardFrac
		}
		if pop.ExitFrac > 0 {
			p.ExitFrac = pop.ExitFrac
		}
	}
	return p
}

// BaseHash is the canonical content hash of the fully-resolved base —
// the sweep identity with the grid stripped: name, dimensions and
// sampling do not contribute, so two sweeps over the same base share
// cached points no matter how their grids differ. Call only on a
// parsed (canonicalized) File.
func (f *File) BaseHash() (string, error) {
	stripped := *f
	stripped.Name = ""
	stripped.Dimensions = nil
	stripped.Sample = 0
	stripped.SampleSeed = 0
	data, err := json.Marshal(&stripped)
	if err != nil {
		return "", fmt.Errorf("spec: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// PointKey is the content-addressed identity of one grid point: the
// base hash plus the ordered (dimension, coordinate) pairs. Two
// submissions whose grids overlap produce identical keys for the
// shared points — the serve daemon's cache is keyed on exactly this.
func PointKey(baseHash string, dims, coords []string) string {
	h := sha256.New()
	h.Write([]byte(baseHash))
	for i, d := range dims {
		h.Write([]byte{0})
		h.Write([]byte(d))
		h.Write([]byte{'='})
		if i < len(coords) {
			h.Write([]byte(coords[i]))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
