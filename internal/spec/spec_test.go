package spec

import (
	"fmt"
	"strings"
	"testing"

	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// specCorpus is a set of valid specs spanning both base kinds and
// every dimension axis — the property-test inputs for the canonical
// round trip and the hash tests.
var specCorpus = []string{
	`{"dimensions": [{"gammas": [2, 4]}]}`,
	`{"name": "trace-bw", "seed": 7, "base": {"kind": "trace", "hops": 4, "distance": 2},
	  "dimensions": [{"bandwidths_mbps": [8, 16.5]}, {"hopcounts": [3, 4]}]}`,
	`{"base": {"kind": "population", "relays": 10, "circuits": 3, "size_bytes": 100000},
	  "dimensions": [{"counts": [2, 3]}, {"policies": ["circuitstart", "backtap"]}]}`,
	`{"base": {"kind": "population", "relays": 10, "circuits": 3, "size_dist": "lognormal:200000:0.75"},
	  "dimensions": [{"size_dists": ["fixed:100000", "pareto:100000:1.2:10000000"]}]}`,
	`{"base": {"kind": "population", "relays": 10, "circuits": 3, "size_bytes": 100000,
	   "horizon_sec": 120, "spread_ms": 0, "scheduler": "ewma", "max_circuits": 6,
	   "kill_policy": "kill-oldest"},
	  "dimensions": [{"trains": [0, 4]}, {"seeds": [1, 2]}]}`,
	`{"base": {"kind": "population", "relays": 12, "circuits": 3, "size_bytes": 100000,
	   "switches": 3, "poisson_rate": 20},
	  "dimensions": [{"shardcounts": [1, 2]}]}`,
	`{"base": {"kind": "population", "relays": 10, "circuits": 3, "size_bytes": 100000,
	   "faults": "recovery"},
	  "dimensions": [{"faults": ["none", "hang"]}, {"schedulers": ["fifo", "ewma"]}]}`,
	`{"base": {"kind": "population", "relays": 10, "circuits": 4, "size_bytes": 50000,
	   "download": true,
	   "population": {"median_mbps": 20, "sigma": 0.5, "delay_min_ms": 5, "delay_max_ms": 30}},
	  "dimensions": [{"gammas": [2]}], "sample": 1, "sample_seed": 9}`,
	`{"base": {"kind": "population", "relays": 8, "circuits": 2, "size_bytes": 40000,
	   "fault_plan": {"burst_loss": [{"relay": "relay-01", "from_s": 0.5, "until_s": 2}]}},
	  "dimensions": [{"counts": [2, 3]}]}`,
}

// TestMarshalParseFixedPoint is the round-trip property the schema
// documents: Marshal(Parse(x)) is canonical, and parsing the canonical
// form reproduces it byte-identically (Marshal ∘ Parse is a fixed
// point).
func TestMarshalParseFixedPoint(t *testing.T) {
	for i, src := range specCorpus {
		f, err := Parse([]byte(src))
		if err != nil {
			t.Fatalf("corpus[%d]: %v", i, err)
		}
		canon, err := Marshal(f)
		if err != nil {
			t.Fatalf("corpus[%d]: marshal: %v", i, err)
		}
		f2, err := Parse(canon)
		if err != nil {
			t.Fatalf("corpus[%d]: reparse canonical: %v\n%s", i, err, canon)
		}
		canon2, err := Marshal(f2)
		if err != nil {
			t.Fatalf("corpus[%d]: remarshal: %v", i, err)
		}
		if string(canon) != string(canon2) {
			t.Errorf("corpus[%d]: canonical form is not a fixed point:\n--- first ---\n%s--- second ---\n%s",
				i, canon, canon2)
		}
	}
}

// TestParseRendersEagerly pins the contract that a spec that parses
// also renders: every corpus entry must produce a non-empty grid.
func TestParseRendersEagerly(t *testing.T) {
	for i, src := range specCorpus {
		f, err := Parse([]byte(src))
		if err != nil {
			t.Fatalf("corpus[%d]: %v", i, err)
		}
		sw, err := f.Sweep()
		if err != nil {
			t.Fatalf("corpus[%d]: sweep: %v", i, err)
		}
		pts, err := sw.Points()
		if err != nil {
			t.Fatalf("corpus[%d]: points: %v", i, err)
		}
		if len(pts) == 0 {
			t.Errorf("corpus[%d]: empty grid", i)
		}
	}
}

// TestParseErrorsNameTheEntry checks eager validation: malformed specs
// are rejected at Parse with an error naming the offending entry —
// never inside a worker.
func TestParseErrorsNameTheEntry(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring the error must carry
	}{
		{`{"version": 2, "dimensions": [{"gammas": [2]}]}`, "version"},
		{`{"dimensions": [{"gammas": [2]}], "bogus": true}`, "bogus"},
		{`{"dimensions": [{"gammas": [2]}]} trailing`, "trailing"},
		{`{"dimensions": []}`, "dimension"},
		{`{"dimensions": [{}]}`, "dimensions[0]"},
		{`{"dimensions": [{"gammas": [2], "counts": [3]}]}`, "dimensions[0]"},
		{`{"base": {"kind": "warp"}, "dimensions": [{"gammas": [2]}]}`, "warp"},
		{`{"base": {"kind": "trace", "relays": 10}, "dimensions": [{"gammas": [2]}]}`, "relays"},
		{`{"base": {"kind": "trace", "size_dist": "fixed:1"}, "dimensions": [{"gammas": [2]}]}`, "size_dist"},
		{`{"base": {"kind": "population", "distance": 2}, "dimensions": [{"gammas": [2]}]}`, "distance"},
		{`{"base": {"kind": "population", "size_bytes": 100, "size_dist": "fixed:100"}, "dimensions": [{"gammas": [2]}]}`, "size_dist"},
		{`{"base": {"kind": "population", "size_dist": "triangular:5"}, "dimensions": [{"gammas": [2]}]}`, "triangular"},
		{`{"base": {"kind": "population", "spread_ms": 10, "poisson_rate": 5}, "dimensions": [{"gammas": [2]}]}`, "poisson"},
		{`{"base": {"kind": "population", "kill_policy": "kill-nicest"}, "dimensions": [{"gammas": [2]}]}`, "kill-nicest"},
		{`{"base": {"scheduler": "lifo"}, "dimensions": [{"gammas": [2]}]}`, "lifo"},
		{`{"base": {"faults": "meteor"}, "dimensions": [{"gammas": [2]}]}`, "meteor"},
		{`{"base": {"faults": "hang", "fault_plan": {}}, "dimensions": [{"gammas": [2]}]}`, "fault"},
		{`{"base": {"distance": 9, "hops": 3}, "dimensions": [{"gammas": [2]}]}`, "distance"},
		{`{"sample": -1, "dimensions": [{"gammas": [2]}]}`, "sample"},
		{`{"dimensions": [{"size_dists": ["pareto:10:1.1:5"]}]}`, "pareto"},
		{`{"dimensions": [{"unknown_axis": [1]}]}`, "unknown_axis"},
	}
	for i, c := range cases {
		_, err := Parse([]byte(c.src))
		if err == nil {
			t.Errorf("case %d accepted: %s", i, c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %q does not name %q", i, err, c.want)
		}
	}
}

// TestBaseHashIgnoresGridShape pins the cache-identity contract: the
// base hash depends only on the resolved base scenario, not on the
// submission's name, dimensions, or sampling — that is what lets
// overlapping grids from different submissions share cached points.
func TestBaseHashIgnoresGridShape(t *testing.T) {
	a, err := Parse([]byte(`{"name": "first", "dimensions": [{"gammas": [2, 4]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]byte(`{"name": "second", "dimensions": [{"gammas": [2, 4, 8]}, {"bandwidths_mbps": [8]}], "sample": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	ha, err := a.BaseHash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.BaseHash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("base hash differs across grid shapes: %s vs %s", ha, hb)
	}

	c, err := Parse([]byte(`{"seed": 43, "dimensions": [{"gammas": [2, 4]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	hc, err := c.BaseHash()
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Error("base hash ignored the seed — distinct scenarios would collide in the cache")
	}
}

// TestPointKeyUnambiguous checks that the point key separates
// dimension names from coordinates: permuted or shifted pairs must not
// collide.
func TestPointKeyUnambiguous(t *testing.T) {
	base := strings.Repeat("ab", 32)
	keys := map[string]string{}
	for _, c := range []struct {
		dims, coords []string
	}{
		{[]string{"gamma", "bw"}, []string{"2", "8"}},
		{[]string{"gamma", "bw"}, []string{"8", "2"}},
		{[]string{"bw", "gamma"}, []string{"2", "8"}},
		{[]string{"gamma"}, []string{"2"}},
		{[]string{"gamma"}, []string{"2=8"}},
		{[]string{"gamma="}, []string{"8"}},
	} {
		k := PointKey(base, c.dims, c.coords)
		if prev, ok := keys[k]; ok {
			t.Errorf("collision: %v/%v and %s share key %s", c.dims, c.coords, prev, k)
		}
		keys[k] = fmt.Sprintf("%v/%v", c.dims, c.coords)
	}
	if k := PointKey("other", []string{"gamma"}, []string{"2"}); k == PointKey(base, []string{"gamma"}, []string{"2"}) {
		t.Error("point key ignored the base hash")
	}
}

// TestFromScenarioRoundTrip checks the inverse renderer: a scenario
// built from a spec converts back to a spec that renders the same
// scenario (SpecFromScenario ∘ render = identity on the spec side).
func TestFromScenarioRoundTrip(t *testing.T) {
	src := `{"seed": 7,
	  "base": {"kind": "population", "relays": 10, "circuits": 3, "size_bytes": 100000,
	   "horizon_sec": 120, "scheduler": "ewma", "faults": "hang"},
	  "dimensions": [{"gammas": [2]}]}`
	f, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	sc, _, err := f.Base.scenario(f.Name, *f.Seed)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Base.Kind != "population" || back.Base.Relays != 10 ||
		back.Base.Circuits != 3 || back.Base.SizeBytes != 100000 ||
		back.Base.HorizonSec != 120 || back.Base.Scheduler != "ewma" {
		t.Errorf("round-tripped base lost fields: %+v", back.Base)
	}
	if len(back.Base.FaultPlan) == 0 {
		t.Error("round-tripped base lost the fault plan")
	}
	sc2, _, err := back.Base.scenario(back.Name, *back.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if sc2.Circuits.Count != sc.Circuits.Count || sc2.Horizon != sc.Horizon ||
		len(sc2.Faults.BurstLoss) != len(sc.Faults.BurstLoss) {
		t.Errorf("re-rendered scenario differs: %+v vs %+v", sc2.Circuits, sc.Circuits)
	}
}

// TestFromScenarioRejectsUnrepresentable checks that scenarios the
// wire schema cannot express are refused by name instead of silently
// dropped.
func TestFromScenarioRejectsUnrepresentable(t *testing.T) {
	pop := workload.DefaultRelayParams(8)
	base := scenario.Scenario{
		Name:     "x",
		Seed:     1,
		Topology: scenario.Topology{Population: &pop},
		Circuits: scenario.CircuitSet{Count: 2, Hops: 3, TransferSize: 1000},
		Arms:     []scenario.Arm{{Name: "circuitstart"}},
		Horizon:  10 * sim.Second,
	}
	base.Arms[0].Transport.Policy = "circuitstart"

	reps := base
	reps.Replications = 3
	mix := base
	mix.Circuits.SizeMix = []units.DataSize{1, 2}
	badArm := base
	badArm.Arms = []scenario.Arm{{Name: "renamed"}}
	badArm.Arms[0].Transport.Policy = "circuitstart"

	for i, c := range []struct {
		sc   scenario.Scenario
		want string
	}{
		{reps, "Replications"},
		{mix, "SizeMix"},
		{badArm, "arm"},
	} {
		_, err := FromScenario(c.sc)
		if err == nil {
			t.Errorf("case %d accepted", i)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %q does not name %q", i, err, c.want)
		}
	}
}
