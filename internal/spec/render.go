package spec

import (
	"fmt"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/experiments"
	"circuitstart/internal/faults"
	"circuitstart/internal/netem"
	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
	"circuitstart/internal/sweep"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

func millis(ms float64) time.Duration  { return time.Duration(ms * float64(time.Millisecond)) }
func secondsD(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// Sweep renders the parsed spec into an executable sweep.Sweep. Call
// only on a File that came out of Parse (or FromScenario): rendering
// assumes normalized defaults.
func (f *File) Sweep() (sweep.Sweep, error) {
	base, traceParams, err := f.Base.scenario(f.Name, *f.Seed)
	if err != nil {
		return sweep.Sweep{}, err
	}
	sw := sweep.Sweep{Name: f.Name, Base: base, Sample: f.Sample, SampleSeed: f.SampleSeed}
	for i, d := range f.Dimensions {
		dim, err := f.Base.buildDim(d, traceParams)
		if err != nil {
			return sweep.Sweep{}, fmt.Errorf("spec: dimensions[%d]: %w", i, err)
		}
		sw.Dimensions = append(sw.Dimensions, dim)
	}
	if len(sw.Dimensions) == 0 {
		return sweep.Sweep{}, fmt.Errorf("spec: no dimensions")
	}
	return sw, nil
}

// scenario renders the base block. traceParams carries the trace
// preset forward for the trace-aware dimensions.
func (b *Base) scenario(name string, seed int64) (scenario.Scenario, experiments.CwndTraceParams, error) {
	cfg, err := b.relayConfig()
	if err != nil {
		return scenario.Scenario{}, experiments.CwndTraceParams{}, err
	}
	arms := make([]scenario.Arm, len(b.Arms))
	for i, policy := range b.Arms {
		arms[i] = scenario.Arm{
			Name:      policy,
			Transport: core.TransportOptions{Policy: policy},
			Relay:     cfg,
		}
	}

	var sc scenario.Scenario
	var traceParams experiments.CwndTraceParams
	switch b.Kind {
	case "trace":
		traceParams = experiments.DefaultCwndTraceParams(b.Distance)
		traceParams.Seed = seed
		traceParams.Hops = b.Hops
		if b.HorizonSec > 0 {
			traceParams.Horizon = sim.Time(secondsD(b.HorizonSec))
		}
		sc = traceParams.Scenario(arms)
	case "population":
		pop := b.relayParams()
		arrival := scenario.Arrival{}
		switch {
		case b.PoissonRate > 0:
			arrival = scenario.Arrival{Kind: scenario.ArrivePoisson, Rate: b.PoissonRate}
		case b.SpreadMs != nil && *b.SpreadMs > 0:
			arrival = scenario.Arrival{Kind: scenario.ArriveUniform, Spread: millis(*b.SpreadMs)}
		}
		topo := scenario.Topology{Population: &pop}
		if b.Switches > 0 {
			gs, err := workload.GenerateBackbone(workload.DefaultBackboneParams(b.Relays, b.Switches))
			if err != nil {
				return scenario.Scenario{}, experiments.CwndTraceParams{}, fmt.Errorf("spec: %w", err)
			}
			topo.Fabric = &gs
		}
		circuits := scenario.CircuitSet{
			Count:        b.Circuits,
			Hops:         b.Hops,
			TransferSize: units.DataSize(b.SizeBytes),
			Download:     b.Download,
			Arrival:      arrival,
		}
		if b.SizeDist != "" {
			d, err := workload.ParseSizeDist(b.SizeDist)
			if err != nil {
				return scenario.Scenario{}, experiments.CwndTraceParams{}, fmt.Errorf("spec: base.size_dist: %w", err)
			}
			circuits.SizeDist = &d
			circuits.TransferSize = 0
		}
		sc = scenario.Scenario{
			Name:     name,
			Seed:     seed,
			Topology: topo,
			Circuits: circuits,
			Arms:     arms,
			Horizon:  sim.Time(secondsD(b.HorizonSec)),
		}
	default:
		return scenario.Scenario{}, experiments.CwndTraceParams{}, fmt.Errorf("spec: unknown base.kind %q", b.Kind)
	}

	sc.TrainSize = b.Train
	sc.Shards = b.Shards
	if b.Faults != "" {
		plan, err := faults.Preset(b.Faults, sc.RelayIDs())
		if err != nil {
			return scenario.Scenario{}, experiments.CwndTraceParams{}, fmt.Errorf("spec: base.faults: %w", err)
		}
		sc.Faults = plan
	}
	if len(b.FaultPlan) > 0 {
		plan, err := faults.ParseSpec(b.FaultPlan)
		if err != nil {
			return scenario.Scenario{}, experiments.CwndTraceParams{}, fmt.Errorf("spec: base.fault_plan: %w", err)
		}
		sc.Faults = plan
	}
	return sc, traceParams, nil
}

// buildDim renders one dimension block, enforcing that it names
// exactly one axis.
func (b *Base) buildDim(d Dim, traceParams experiments.CwndTraceParams) (sweep.Dimension, error) {
	var out []sweep.Dimension
	var errs []error
	add := func(dim sweep.Dimension, err error) {
		if err != nil {
			errs = append(errs, err)
			return
		}
		out = append(out, dim)
	}
	if len(d.Gammas) > 0 {
		add(sweep.Gamma(d.Gammas...), nil)
	}
	if len(d.Policies) > 0 {
		add(sweep.Policies(d.Policies...))
	}
	if len(d.BandwidthsMbps) > 0 {
		rates := make([]units.DataRate, len(d.BandwidthsMbps))
		for i, m := range d.BandwidthsMbps {
			rates[i] = units.Mbps(m)
		}
		if b.Kind == "trace" {
			add(TraceBandwidths(b.Distance, rates...), nil)
		} else {
			add(sweep.PopulationBandwidths(rates...), nil)
		}
	}
	if len(d.HopCounts) > 0 {
		if b.Kind == "trace" {
			add(TraceHops(traceParams, d.HopCounts...), nil)
		} else {
			add(sweep.Hops(d.HopCounts...), nil)
		}
	}
	if len(d.SizesBytes) > 0 {
		sizes := make([]units.DataSize, len(d.SizesBytes))
		for i, n := range d.SizesBytes {
			sizes[i] = units.DataSize(n)
		}
		add(sweep.TransferSizes(sizes...), nil)
	}
	if len(d.SizeDists) > 0 {
		add(sweep.DimSizeDist(d.SizeDists...))
	}
	if len(d.Counts) > 0 {
		add(sweep.Circuits(d.Counts...), nil)
	}
	if len(d.Trains) > 0 {
		add(sweep.DimTrainSize(d.Trains...))
	}
	if len(d.ShardCounts) > 0 {
		add(sweep.DimShards(d.ShardCounts...))
	}
	if len(d.Faults) > 0 {
		add(sweep.DimFaults(d.Faults...))
	}
	if len(d.Schedulers) > 0 {
		add(sweep.DimScheduler(d.Schedulers...))
	}
	if len(d.Seeds) > 0 {
		add(sweep.Seeds(d.Seeds...), nil)
	}
	if len(errs) > 0 {
		return sweep.Dimension{}, errs[0]
	}
	if len(out) != 1 {
		return sweep.Dimension{}, fmt.Errorf("needs exactly one axis list, has %d", len(out))
	}
	return out[0], nil
}

// TraceBandwidths sweeps the trace base's bottleneck access rate. The
// bottleneck sits at the base distance, clamped to the current path
// length — so it keeps targeting the relay TraceHops put the bottleneck
// on when a hops axis shortened the circuit below the base distance,
// whichever order the two axes appear in.
func TraceBandwidths(distance int, rates ...units.DataRate) sweep.Dimension {
	d := sweep.Dimension{Name: "bottleneck_bw"}
	for _, r := range rates {
		r := r
		d.Values = append(d.Values, sweep.Value{
			Label: r.String(),
			Apply: func(sc *scenario.Scenario) error {
				idx := distance
				if n := len(sc.Topology.Relays); idx > n {
					idx = n
				}
				bottleneck := netem.NodeID(fmt.Sprintf("relay-%d", idx))
				for i := range sc.Topology.Relays {
					if sc.Topology.Relays[i].ID == bottleneck {
						sc.Topology.Relays[i].Access.UpRate = r
						sc.Topology.Relays[i].Access.DownRate = r
						return nil
					}
				}
				return fmt.Errorf("explicit topology has no relay %q", bottleneck)
			},
		})
	}
	return d
}

// TraceHops sweeps the circuit length of the trace base by regenerating
// the explicit topology and path per value. The bottleneck stays at the
// base distance, clamped to the new length, and keeps whatever rate the
// current scenario's bottleneck relay carries — so a bandwidth axis
// composes with this one in either dimension order instead of being
// silently clobbered by the rebuild.
func TraceHops(p experiments.CwndTraceParams, counts ...int) sweep.Dimension {
	d := sweep.Dimension{Name: "hops"}
	for _, h := range counts {
		h := h
		d.Values = append(d.Values, sweep.Value{
			Label: fmt.Sprintf("%d", h),
			Apply: func(sc *scenario.Scenario) error {
				if h < 1 {
					return fmt.Errorf("%d hops", h)
				}
				q := p
				q.Hops = h
				if q.BottleneckHop > h {
					q.BottleneckHop = h
				}
				bottleneck := netem.NodeID(fmt.Sprintf("relay-%d", p.BottleneckHop))
				for _, r := range sc.Topology.Relays {
					if r.ID == bottleneck {
						q.BottleneckRate = r.Access.UpRate
					}
				}
				fresh := q.Scenario(nil)
				sc.Topology = fresh.Topology
				sc.Circuits.Paths = fresh.Circuits.Paths
				return nil
			},
		})
	}
	return d
}

// FromScenario renders a programmatically built population scenario
// back into a canonical spec File (no dimensions — add them before
// submitting). Scenario features the wire schema cannot express —
// explicit topologies, fabric specs, churn, relay events, replications,
// per-arm relay divergence — are rejected by name rather than silently
// dropped, so a File always round-trips to an equivalent scenario.
func FromScenario(sc scenario.Scenario) (*File, error) {
	if sc.Topology.Population == nil {
		return nil, fmt.Errorf("spec: only generated population scenarios are representable (explicit topologies carry per-relay state the schema does not)")
	}
	reject := map[string]bool{
		"Topology.Fabric":  sc.Topology.Fabric != nil,
		"Circuits.Paths":   len(sc.Circuits.Paths) > 0,
		"Circuits.SizeMix": len(sc.Circuits.SizeMix) > 0,
		"ClientAccess":     sc.ClientAccess != (netem.AccessConfig{}),
		"RunFullHorizon":   sc.RunFullHorizon,
		"Replications":     sc.Replications > 1,
		"Events":           len(sc.Events) > 0,
		"CircuitEvents": sc.CircuitEvents.ArrivalRate != 0 || sc.CircuitEvents.Arrivals != 0 ||
			sc.CircuitEvents.TeardownDelay != 0 || len(sc.CircuitEvents.Teardowns) > 0,
		"RelayEvents":      len(sc.RelayEvents) > 0,
		"Probes.TraceCwnd": sc.Probes.TraceCwnd,
	}
	for field, set := range reject {
		if set {
			return nil, fmt.Errorf("spec: scenario field %s is not representable in the wire schema", field)
		}
	}
	if len(sc.Arms) == 0 {
		return nil, fmt.Errorf("spec: scenario has no arms")
	}

	b := Base{Kind: "population"}
	relayCfg := sc.Arms[0].Relay
	for _, a := range sc.Arms {
		if a.Name != a.Transport.Policy {
			return nil, fmt.Errorf("spec: arm %q: the wire schema names arms by their policy (policy is %q)", a.Name, a.Transport.Policy)
		}
		if a.Rebuild {
			return nil, fmt.Errorf("spec: arm %q: Rebuild is not representable in the wire schema", a.Name)
		}
		if a.Relay != relayCfg {
			return nil, fmt.Errorf("spec: arm %q: per-arm relay configuration diverges (the schema applies one config to all arms)", a.Name)
		}
		b.Arms = append(b.Arms, a.Name)
	}
	if relayCfg.HalfLife != 0 || relayCfg.Limits.Bandwidth != 0 || relayCfg.Limits.Burst != 0 {
		return nil, fmt.Errorf("spec: relay config uses fields (HalfLife/Bandwidth/Burst) the wire schema does not carry")
	}
	b.Scheduler = relayCfg.Scheduler
	b.MaxCircuits = relayCfg.Limits.MaxCircuits
	b.MaxMemoryBytes = int64(relayCfg.Limits.MaxMemory)
	if relayCfg.Limits.Policy != 0 {
		b.KillPolicy = relayCfg.Limits.Policy.String()
	}

	pop := sc.Topology.Population
	b.Relays = pop.N
	if def := workload.DefaultRelayParams(pop.N); *pop != def {
		b.Population = &Population{
			MedianMbps:    pop.BandwidthMedian.Mbit(),
			Sigma:         pop.BandwidthSigma,
			MinMbps:       pop.MinBandwidth.Mbit(),
			MaxMbps:       pop.MaxBandwidth.Mbit(),
			DelayMinMs:    float64(pop.DelayMin) / float64(time.Millisecond),
			DelayMaxMs:    float64(pop.DelayMax) / float64(time.Millisecond),
			QueueCapBytes: int64(pop.QueueCap),
			GuardFrac:     pop.GuardFrac,
			ExitFrac:      pop.ExitFrac,
		}
	}

	b.Hops = sc.Circuits.Hops
	b.Circuits = sc.Circuits.Count
	b.Download = sc.Circuits.Download
	if d := sc.Circuits.SizeDist; d != nil {
		b.SizeDist = d.Label()
	} else {
		b.SizeBytes = int64(sc.Circuits.TransferSize)
	}
	switch sc.Circuits.Arrival.Kind {
	case scenario.ArriveTogether:
		zero := 0.0
		b.SpreadMs = &zero
	case scenario.ArriveUniform:
		ms := float64(sc.Circuits.Arrival.Spread) / float64(time.Millisecond)
		b.SpreadMs = &ms
	case scenario.ArrivePoisson:
		b.PoissonRate = sc.Circuits.Arrival.Rate
	default:
		return nil, fmt.Errorf("spec: arrival kind %d is not representable", sc.Circuits.Arrival.Kind)
	}
	b.HorizonSec = float64(sc.Horizon) / float64(time.Second)
	b.Train = sc.TrainSize
	b.Shards = sc.Shards
	if sc.Faults.Enabled() {
		plan, err := faults.MarshalSpec(sc.Faults)
		if err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
		b.FaultPlan = plan
	}

	seed := sc.Seed
	f := &File{Version: Version, Name: sc.Name, Seed: &seed, Base: b}
	if err := f.normalize(); err != nil {
		return nil, err
	}
	return f, nil
}
