package transport

import (
	"testing"
	"time"

	"circuitstart/internal/cell"
	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// hopHarness wires one Sender and one Receiver across a two-node netem
// star, giving transport unit tests realistic serialization and
// propagation behaviour. The receiving side acts as a sink with a
// configurable forwarding rate: rate 0 forwards (delivers) instantly,
// a positive rate emulates a constrained successor that forwards one
// cell per serialization time.
type hopHarness struct {
	t     *testing.T
	clock *sim.Clock
	star  *netem.Star

	sender *Sender
	recv   *Receiver

	delivered    []*cell.Cell
	lastDelivery sim.Time

	// forwarding emulation at the receiver
	fwdRate  units.DataRate
	fwdQueue int
	fwdBusy  bool
	fwdCount uint64
}

// simSecond is one virtual second, for ad-hoc horizon checks.
const simSecond = sim.Time(time.Second)

// newClockForTest returns a fresh simulation clock.
func newClockForTest() *sim.Clock { return sim.NewClock() }

type harnessConfig struct {
	senderCfg Config // Clock/Send filled in by the harness
	srcRate   units.DataRate
	dstRate   units.DataRate
	delay     time.Duration
	fwdRate   units.DataRate // 0 = instant forwarding at the receiver
	lossProb  float64        // applied on the forward (src uplink) link
	queueCap  units.DataSize
	circ      cell.CircID
}

func newHopHarness(t *testing.T, hc harnessConfig) *hopHarness {
	t.Helper()
	if hc.srcRate == 0 {
		hc.srcRate = units.Mbps(16)
	}
	if hc.dstRate == 0 {
		hc.dstRate = units.Mbps(16)
	}
	if hc.delay == 0 {
		hc.delay = 10 * time.Millisecond
	}
	h := &hopHarness{t: t, clock: sim.NewClock(), fwdRate: hc.fwdRate}
	h.star = netem.NewStar(h.clock)

	var rng *sim.RNG
	if hc.lossProb > 0 {
		rng = sim.NewRNG(1234, "harness-loss")
	}
	srcPort := h.star.Attach("src", netem.AccessConfig{
		UpRate: hc.srcRate, DownRate: hc.srcRate, Delay: hc.delay,
		QueueCap: hc.queueCap, LossProb: hc.lossProb,
	}, netem.HandlerFunc(h.deliverToSender), rng)
	dstPort := h.star.Attach("dst", netem.AccessConfig{
		UpRate: hc.dstRate, DownRate: hc.dstRate, Delay: hc.delay,
		QueueCap: hc.queueCap,
	}, netem.HandlerFunc(h.deliverToReceiver), nil)

	cfg := hc.senderCfg
	cfg.Clock = h.clock
	cfg.Circ = hc.circ
	cfg.Send = func(seg Segment) bool {
		return srcPort.Send("dst", seg.WireSize(), seg)
	}
	h.sender = NewSender(cfg)

	h.recv = NewReceiver(hc.circ, func(seg Segment) bool {
		return dstPort.Send("src", seg.WireSize(), seg)
	}, h.consume)
	return h
}

// deliverToReceiver handles frames arriving at the dst node.
func (h *hopHarness) deliverToReceiver(f *netem.Frame) {
	seg := f.Payload.(Segment)
	switch seg.Kind {
	case KindData:
		h.recv.HandleData(seg.Seq, seg.Cell)
	case KindProbe:
		h.recv.HandleProbe()
	default:
		h.t.Fatalf("receiver got unexpected segment %v", seg)
	}
}

// deliverToSender handles control frames arriving back at the src node.
func (h *hopHarness) deliverToSender(f *netem.Frame) {
	seg := f.Payload.(Segment)
	switch seg.Kind {
	case KindAck:
		h.sender.HandleAck(seg.Count)
	case KindFeedback:
		h.sender.HandleFeedback(seg.Count)
	default:
		h.t.Fatalf("sender got unexpected segment %v", seg)
	}
}

// consume models the receiving node's forwarding stage.
func (h *hopHarness) consume(c *cell.Cell) {
	h.delivered = append(h.delivered, c)
	h.lastDelivery = h.clock.Now()
	if h.fwdRate == 0 {
		h.fwdCount++
		h.recv.NotifyForwarded(h.fwdCount)
		return
	}
	h.fwdQueue++
	h.pumpForward()
}

func (h *hopHarness) pumpForward() {
	if h.fwdBusy || h.fwdQueue == 0 {
		return
	}
	h.fwdBusy = true
	h.fwdQueue--
	h.clock.After(h.fwdRate.TransmissionTime(DataWireSize), func() {
		h.fwdCount++
		h.recv.NotifyForwarded(h.fwdCount)
		h.fwdBusy = false
		h.pumpForward()
	})
}

// sendCells enqueues n distinct data cells at the sender.
func (h *hopHarness) sendCells(n int) {
	for i := 0; i < n; i++ {
		c := &cell.Cell{Circ: 1, Cmd: cell.CmdRelay}
		c.Payload[0] = byte(i)
		c.Payload[1] = byte(i >> 8)
		c.Payload[2] = byte(i >> 16)
		h.sender.Enqueue(c)
	}
}

// run drives the simulation until quiescence or the horizon.
func (h *hopHarness) run(horizon time.Duration) {
	h.clock.RunUntil(sim.Time(horizon))
}

// assertDeliveredInOrder checks that exactly n cells arrived, in the
// order they were enqueued.
func (h *hopHarness) assertDeliveredInOrder(n int) {
	h.t.Helper()
	if len(h.delivered) != n {
		h.t.Fatalf("delivered %d cells, want %d", len(h.delivered), n)
	}
	for i, c := range h.delivered {
		got := int(c.Payload[0]) | int(c.Payload[1])<<8 | int(c.Payload[2])<<16
		if got != i {
			h.t.Fatalf("cell %d carries index %d: order violated", i, got)
		}
	}
}
