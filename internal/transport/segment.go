// Package transport implements the per-hop, window-based transport
// protocol the paper assumes ("a custom, window-based transport protocol
// that allows low-latency communication between neighboring relays"),
// re-creating BackTap (Tschorsch & Scheuermann, NSDI'16) as the base
// protocol and CircuitStart as its start-up scheme.
//
// Each hop of a circuit runs an independent (Sender, Receiver) pair:
//
//	source ── hop0 ──> relay1 ── hop1 ──> relay2 ── ... ──> sink
//
// Three message kinds cross a hop:
//
//   - DATA carries one fixed-size cell with a sequence number.
//   - ACK acknowledges in-order *reception* (reliability, and the clock
//     of a traditional slow start).
//   - FEEDBACK reports cumulative cells *forwarded onward* by the
//     receiver — the paper's "cells are moving" signal. CircuitStart
//     clocks its rounds on FEEDBACK, and Vegas-style queue estimation
//     uses the DATA→FEEDBACK round-trip.
//
// The distinction between ACK and FEEDBACK is the paper's first design
// point: "an increase of the cwnd is not triggered by the reception of
// an ACK, but by feedback messages indicating that the cell has been
// forwarded by the successor relay."
package transport

import (
	"fmt"

	"circuitstart/internal/cell"
	"circuitstart/internal/units"
)

// Kind discriminates hop segments.
type Kind uint8

// Segment kinds.
const (
	KindData Kind = iota + 1
	KindAck
	KindFeedback
	// KindProbe requests a fresh ACK + FEEDBACK report. Senders emit it
	// when all data has been received but feedback is outstanding for
	// longer than an RTO — the cumulative FEEDBACK stream is not
	// retransmitted, so a lost tail report would otherwise stall the
	// window forever (the transport's analogue of TCP's persist timer).
	KindProbe
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "DATA"
	case KindAck:
		return "ACK"
	case KindFeedback:
		return "FEEDBACK"
	case KindProbe:
		return "PROBE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Wire sizes. DATA segments carry a full cell plus the hop header;
// control segments are small. These sizes are charged by the network
// emulator, so control traffic consumes (reverse-path) bandwidth.
const (
	// HeaderSize covers kind, circuit ID, sequence/count and framing.
	HeaderSize = 16
	// DataWireSize is the on-wire size of a DATA segment.
	DataWireSize = units.DataSize(cell.Size + HeaderSize)
	// CtrlWireSize is the on-wire size of ACK and FEEDBACK segments.
	CtrlWireSize = units.DataSize(24)
)

// Dir distinguishes the two data directions of a circuit: Forward runs
// source → sink (onion layers are peeled hop by hop), Backward runs
// sink → source (layers are added hop by hop, the client unwraps). Each
// direction is an independent transport instance per hop; the zero
// value is Forward so unidirectional deployments never mention it.
type Dir uint8

// Directions.
const (
	DirForward Dir = iota
	DirBackward
)

func (d Dir) String() string {
	if d == DirBackward {
		return "back"
	}
	return "fwd"
}

// Segment is one hop-transport message.
//
// Sequence semantics: DATA carries Seq = the 0-based index of the cell
// on this hop. ACK and FEEDBACK carry Count = the *cumulative number* of
// cells received in order (ACK) or forwarded onward (FEEDBACK); i.e. a
// count of n covers sequence numbers 0..n-1.
type Segment struct {
	Kind  Kind
	Dir   Dir
	Circ  cell.CircID
	Seq   uint64     // DATA only
	Count uint64     // ACK / FEEDBACK only
	Cell  *cell.Cell // DATA only
}

// WireSize returns the size the network charges for this segment.
func (s Segment) WireSize() units.DataSize {
	if s.Kind == KindData {
		return DataWireSize
	}
	return CtrlWireSize
}

func (s Segment) String() string {
	switch s.Kind {
	case KindData:
		return fmt.Sprintf("DATA{%v circ=%d seq=%d}", s.Dir, s.Circ, s.Seq)
	default:
		return fmt.Sprintf("%v{%v circ=%d count=%d}", s.Kind, s.Dir, s.Circ, s.Count)
	}
}
