package transport

import (
	"math/rand"
	"testing"
	"testing/quick"

	"circuitstart/internal/cell"
	"circuitstart/internal/sim"
)

// TestReceiverDeliversExactlyOnceInOrder: for any arrival order of a
// set of sequences (with arbitrary duplication), the receiver delivers
// each cell exactly once, in sequence order.
func TestReceiverDeliversExactlyOnceInOrder(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))

		var delivered []uint64
		r := NewReceiver(1,
			func(Segment) bool { return true },
			func(c *cell.Cell) {
				seq := uint64(c.Payload[0]) | uint64(c.Payload[1])<<8
				delivered = append(delivered, seq)
			})

		// Arrival order: a shuffle of 0..n-1 plus ~30% duplicates.
		order := rng.Perm(n)
		arrivals := make([]int, 0, n*2)
		for _, seq := range order {
			arrivals = append(arrivals, seq)
			if rng.Intn(3) == 0 {
				arrivals = append(arrivals, rng.Intn(n))
			}
		}
		for _, seq := range arrivals {
			c := &cell.Cell{}
			c.Payload[0] = byte(seq)
			c.Payload[1] = byte(seq >> 8)
			r.HandleData(uint64(seq), c)
		}

		if len(delivered) != n {
			return false
		}
		for i, seq := range delivered {
			if seq != uint64(i) {
				return false
			}
		}
		return r.Expected() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestReceiverForwardedNeverExceedsDelivered: NotifyForwarded beyond
// the delivered count must panic (the invariant is load-bearing for
// feedback semantics), and within it must be monotone.
func TestReceiverForwardedNeverExceedsDelivered(t *testing.T) {
	r := NewReceiver(1, func(Segment) bool { return true }, func(*cell.Cell) {})
	c := &cell.Cell{}
	r.HandleData(0, c)
	r.HandleData(1, c)
	r.NotifyForwarded(1)
	r.NotifyForwarded(1) // idempotent
	r.NotifyForwarded(2)
	defer func() {
		if recover() == nil {
			t.Fatal("over-reporting forwarded did not panic")
		}
	}()
	r.NotifyForwarded(3)
}

// TestSenderCountInvariants: driving a sender with any interleaving of
// enqueues and (valid) cumulative ack/feedback reports preserves
// acked ≤ sent, feedback ≤ sent, and Idle ⇔ fully drained.
func TestSenderCountInvariants(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		clock := sim.NewClock()
		s := NewSender(Config{
			Clock: clock,
			Send:  func(Segment) bool { return true },
		})
		ops := int(opsRaw%60) + 5
		for i := 0; i < ops; i++ {
			st := s.Stats()
			sent := st.Transmitted
			switch rng.Intn(3) {
			case 0:
				s.Enqueue(&cell.Cell{})
			case 1:
				if sent > st.Acked {
					s.HandleAck(st.Acked + 1 + uint64(rng.Int63n(int64(sent-st.Acked))))
				}
			case 2:
				st = s.Stats()
				// Feedback only for cells the peer can have forwarded,
				// i.e. cells it received (acked here, as a conservative
				// stand-in for the real pipeline).
				if st.Acked > st.Feedback {
					s.HandleFeedback(st.Feedback + 1 + uint64(rng.Int63n(int64(st.Acked-st.Feedback))))
				}
			}
			// Let timers fire occasionally.
			if rng.Intn(5) == 0 {
				clock.RunUntil(clock.Now() + sim.Millisecond)
			}

			st = s.Stats()
			if st.Acked > st.Transmitted+st.Retransmitted || st.Feedback > st.Transmitted+st.Retransmitted {
				return false
			}
			if st.Feedback > st.Acked {
				return false
			}
		}
		st := s.Stats()
		drained := s.QueueLen() == 0 && st.Acked == st.Transmitted && st.Feedback == st.Transmitted
		return s.Idle() == drained
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSenderWindowNeverNegative: the window stays within
// [MinCwnd, MaxCwnd] under any drive pattern.
func TestSenderWindowBounds(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		clock := sim.NewClock()
		violated := false
		var s *Sender
		s = NewSender(Config{
			Clock: clock,
			Send:  func(Segment) bool { return rng.Intn(10) > 0 }, // 10% local rejects
			OnCwnd: func(cwnd float64, _ Phase) {
				if s == nil {
					return // construction-time notification
				}
				if cwnd < s.cfg.MinCwnd-1e-9 || cwnd > s.cfg.MaxCwnd+1e-9 {
					violated = true
				}
			},
		})
		for i := 0; i < int(opsRaw%80)+10; i++ {
			st := s.Stats()
			switch rng.Intn(3) {
			case 0:
				s.Enqueue(&cell.Cell{})
			case 1:
				if st.Transmitted > st.Acked {
					s.HandleAck(st.Acked + 1)
				}
			case 2:
				if st.Acked > st.Feedback {
					s.HandleFeedback(st.Feedback + 1)
				}
			}
			clock.RunUntil(clock.Now() + sim.Time(rng.Int63n(int64(5*sim.Millisecond))))
		}
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSenderRejectsInvalidReports: cumulative counts beyond what was
// transmitted must panic — silently accepting them would corrupt the
// window accounting.
func TestSenderRejectsInvalidReports(t *testing.T) {
	mk := func() *Sender {
		return NewSender(Config{Clock: sim.NewClock(), Send: func(Segment) bool { return true }})
	}
	t.Run("ack beyond sent", func(t *testing.T) {
		s := mk()
		s.Enqueue(&cell.Cell{})
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		s.HandleAck(5)
	})
	t.Run("feedback beyond sent", func(t *testing.T) {
		s := mk()
		s.Enqueue(&cell.Cell{})
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		s.HandleFeedback(5)
	})
}

// TestPolicyByNameRoundTrip: every policy the registry returns reports
// the name it was requested under.
func TestPolicyByNameRoundTrip(t *testing.T) {
	for _, name := range []string{"circuitstart", "slowstart", "circuitstart-halve", "slowstart-compensated", "backtap", "fixed"} {
		p, err := PolicyByName(name, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name != "fixed" && name != "backtap" && p.Name() != name {
			t.Fatalf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PolicyByName("nope", 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
	// The vegas alias maps to backtap.
	p, err := PolicyByName("vegas", 0)
	if err != nil || p.Name() != "backtap" {
		t.Fatalf("vegas alias: %v, %v", p, err)
	}
}
