package transport

import (
	"testing"

	"circuitstart/internal/cell"
)

func TestBatchedDeliveryDefersAckUntilFlush(t *testing.T) {
	r, delivered, ctrl := collectReceiver(t)
	for i := 0; i < 4; i++ {
		first := r.HandleDataBatched(uint64(i), mkCell(i))
		if want := i == 0; first != want {
			t.Errorf("HandleDataBatched(%d) first-deferral = %v, want %v", i, first, want)
		}
	}
	if len(*delivered) != 4 {
		t.Fatalf("delivered %d cells mid-batch, want 4 (delivery is not deferred)", len(*delivered))
	}
	if len(*ctrl) != 0 {
		t.Fatalf("sent %d control segments before Flush, want 0", len(*ctrl))
	}
	r.Flush()
	if len(*ctrl) != 1 {
		t.Fatalf("Flush sent %d segments, want 1 cumulative ack", len(*ctrl))
	}
	if seg := (*ctrl)[0]; seg.Kind != KindAck || seg.Count != 4 || seg.Circ != 7 {
		t.Errorf("flushed segment = %+v, want ack count 4", seg)
	}
	if st := r.Stats(); st.AcksSent != 1 {
		t.Errorf("AcksSent = %d, want 1 — the batch acks once", st.AcksSent)
	}
	// A second Flush with nothing pending must send nothing.
	r.Flush()
	if len(*ctrl) != 1 {
		t.Errorf("idempotent Flush sent %d extra segments", len(*ctrl)-1)
	}
}

func TestBatchedFlushOrdersFeedbackBeforeAck(t *testing.T) {
	// A relay's delivery chain forwards each cell synchronously and
	// reports it via NotifyForwarded from inside the batched handler.
	// Those reports must park and come out of Flush as one cumulative
	// FEEDBACK, sent before the ack — the same relative order the
	// per-cell path produces.
	var ctrl []Segment
	var r *Receiver
	r = NewReceiver(9, func(seg Segment) bool {
		ctrl = append(ctrl, seg)
		return true
	}, func(c *cell.Cell) { r.NotifyForwarded(r.Expected()) })
	for i := 0; i < 3; i++ {
		r.HandleDataBatched(uint64(i), mkCell(i))
	}
	if len(ctrl) != 0 {
		t.Fatalf("%d segments escaped before Flush", len(ctrl))
	}
	r.Flush()
	if len(ctrl) != 2 {
		t.Fatalf("Flush sent %d segments, want feedback + ack", len(ctrl))
	}
	if ctrl[0].Kind != KindFeedback || ctrl[0].Count != 3 {
		t.Errorf("first flushed segment = %+v, want cumulative feedback 3", ctrl[0])
	}
	if ctrl[1].Kind != KindAck || ctrl[1].Count != 3 {
		t.Errorf("second flushed segment = %+v, want cumulative ack 3", ctrl[1])
	}
	if st := r.Stats(); st.FeedbackSent != 1 || st.AcksSent != 1 {
		t.Errorf("FeedbackSent=%d AcksSent=%d, want 1/1", st.FeedbackSent, st.AcksSent)
	}
}

func TestBatchedReorderAcksCumulatively(t *testing.T) {
	// Out-of-order arrivals within a train reorder exactly as the
	// per-cell path does; the single flushed ack carries the contiguous
	// prefix after the whole train was processed.
	r, delivered, ctrl := collectReceiver(t)
	r.HandleDataBatched(2, mkCell(2))
	r.HandleDataBatched(0, mkCell(0))
	r.HandleDataBatched(1, mkCell(1))
	r.HandleDataBatched(4, mkCell(4)) // gap: 3 missing
	r.Flush()
	if len(*delivered) != 3 {
		t.Fatalf("delivered %d, want the in-order prefix of 3", len(*delivered))
	}
	for i, c := range *delivered {
		if int(c.Payload[0]) != i {
			t.Errorf("delivered[%d] = cell %d", i, c.Payload[0])
		}
	}
	if len(*ctrl) != 1 || (*ctrl)[0].Count != 3 {
		t.Fatalf("flushed %v, want one ack with count 3", *ctrl)
	}
	if st := r.Stats(); st.Buffered != 2 {
		t.Errorf("Buffered = %d, want 2 (seq 2 and 4)", st.Buffered)
	}
}

func TestNotifyForwardedOutsideBatchSendsImmediately(t *testing.T) {
	// Deferral is scoped to the batched handler call: a forwarding
	// report arriving between trains (an onward link draining later)
	// signals upstream immediately, exactly like the per-cell path.
	r, _, ctrl := collectReceiver(t)
	r.HandleDataBatched(0, mkCell(0))
	r.Flush()
	n := len(*ctrl)
	r.NotifyForwarded(1)
	if len(*ctrl) != n+1 {
		t.Fatalf("NotifyForwarded after Flush sent %d segments, want 1", len(*ctrl)-n)
	}
	if seg := (*ctrl)[n]; seg.Kind != KindFeedback || seg.Count != 1 {
		t.Errorf("segment = %+v, want immediate feedback 1", seg)
	}
}

func TestBatchedCloseMidBatchDropsPendingSignals(t *testing.T) {
	// Teardown can fire from inside the delivery chain. Pending deferred
	// signals die with the receiver: Flush on a closed receiver sends
	// nothing, and further batched arrivals report not-first.
	var ctrl []Segment
	var r *Receiver
	r = NewReceiver(9, func(seg Segment) bool {
		ctrl = append(ctrl, seg)
		return true
	}, func(c *cell.Cell) { r.Close() })
	if first := r.HandleDataBatched(0, mkCell(0)); first {
		t.Error("delivery chain closed the receiver: no ack should be owed")
	}
	r.Flush()
	if len(ctrl) != 0 {
		t.Fatalf("closed receiver flushed %d segments", len(ctrl))
	}
}

func TestBatchedAndPerCellPathsDeliverIdentically(t *testing.T) {
	// The two handler paths must deliver the same cells in the same
	// order and end with the same cumulative state — only the signal
	// timing differs (per cell vs per train).
	run := func(batched bool) ([]int, uint64, ReceiverStats) {
		r, delivered, _ := collectReceiver(t)
		seqs := []uint64{1, 0, 3, 2, 4}
		for _, s := range seqs {
			if batched {
				r.HandleDataBatched(s, mkCell(int(s)))
			} else {
				r.HandleData(s, mkCell(int(s)))
			}
		}
		if batched {
			r.Flush()
		}
		var got []int
		for _, c := range *delivered {
			got = append(got, int(c.Payload[0]))
		}
		return got, r.Expected(), r.Stats()
	}
	bGot, bExp, bSt := run(true)
	pGot, pExp, pSt := run(false)
	if len(bGot) != len(pGot) {
		t.Fatalf("batched delivered %d, per-cell %d", len(bGot), len(pGot))
	}
	for i := range bGot {
		if bGot[i] != pGot[i] {
			t.Fatalf("delivery %d: batched cell %d vs per-cell %d", i, bGot[i], pGot[i])
		}
	}
	if bExp != pExp {
		t.Errorf("Expected() %d vs %d", bExp, pExp)
	}
	if bSt.Received != pSt.Received || bSt.Delivered != pSt.Delivered || bSt.Buffered != pSt.Buffered {
		t.Errorf("delivery stats diverged: %+v vs %+v", bSt, pSt)
	}
	if bSt.AcksSent != 1 {
		t.Errorf("batched AcksSent = %d, want 1", bSt.AcksSent)
	}
	if pSt.AcksSent != 5 {
		t.Errorf("per-cell AcksSent = %d, want 5", pSt.AcksSent)
	}
}
