package transport

import (
	"fmt"
	"math"
)

// Startup governs congestion-window evolution during a hop sender's
// start-up phase. Implementations receive hooks from the sender and
// manipulate it through Cwnd/SetCwnd/ExitStartup.
//
// Two orthogonal design choices distinguish the paper's algorithm from a
// traditional slow start, and the implementations below cover the full
// cross product so ablations can attribute the benefit:
//
//  1. Clocking: growth per reception ACK (traditional) vs. per round of
//     FEEDBACK messages (CircuitStart).
//  2. Exit adjustment: halving (traditional) vs. overshooting
//     compensation — cwnd := cells confirmed moving in the current
//     round so far (CircuitStart).
type Startup interface {
	// Name identifies the policy in traces and experiment output.
	Name() string
	// BurstMode reports whether the sender transmits in discrete
	// per-round trains during start-up (CircuitStart) instead of
	// continuously refilling the window.
	BurstMode() bool
	// OnAck runs after n new cells were cumulatively acknowledged
	// (received by the successor).
	OnAck(s *Sender, n int)
	// OnFeedback runs after new feedback arrived and round bookkeeping
	// (RTT samples, running diff) is up to date. Policies that exit
	// mid-round (overshoot detection "so far") do it here.
	OnFeedback(s *Sender)
	// OnRoundComplete runs when feedback covers the round boundary;
	// diff is the Vegas queue estimate of the completed round.
	OnRoundComplete(s *Sender, diff float64)
}

// DefaultGamma is the paper's start-up exit threshold ("we define a
// threshold γ, currently set to 4").
const DefaultGamma = 4.0

// Compensation selects how CircuitStart computes the post-overshoot
// window ("the cwnd is set to the amount of data acknowledged within the
// current round so far").
type Compensation int

// Compensation variants.
const (
	// CompMeasured opens a one-baseRtt measurement window when the
	// delay signal trips and exits with the feedback counted inside it.
	// This realizes the paper's packet-train analysis — "the length of
	// the packet train that could be forwarded by the successor without
	// additional delay is a good estimation for the optimal window" —
	// while being robust to bursty upstream forwarding: counting over a
	// full base RTT averages across bursts and idle gaps, yielding
	// rate × baseRtt, the minimal fully-utilizing window. Default.
	CompMeasured Compensation = iota
	// CompCounted applies the paper's sentence at face value: exit
	// immediately with the number of cells feedback-confirmed within
	// the current round at the moment the signal trips. It undershoots
	// badly when the signal trips early in a round (one feedback seen →
	// window collapses to the floor). Kept as an ablation
	// (see BenchmarkAblationCompensation).
	CompCounted
)

func (c Compensation) String() string {
	if c == CompCounted {
		return "counted"
	}
	return "measured"
}

// CircuitStart is the paper's start-up scheme: an initial window of two
// cells, doubled once per round upon feedback, with overshooting
// compensation on exit.
type CircuitStart struct {
	// Gamma is the Vegas-style exit threshold in cells.
	Gamma float64
	// Compensation selects the exit-window estimator.
	Compensation Compensation
}

// NewCircuitStart returns the paper's policy with γ = DefaultGamma and
// measured compensation.
func NewCircuitStart() *CircuitStart { return &CircuitStart{Gamma: DefaultGamma} }

// Name implements Startup.
func (p *CircuitStart) Name() string { return "circuitstart" }

// BurstMode implements Startup: discrete rounds produce the packet
// trains whose timing the algorithm analyses.
func (p *CircuitStart) BurstMode() bool { return true }

// OnAck implements Startup. Reception ACKs do not drive CircuitStart.
func (p *CircuitStart) OnAck(*Sender, int) {}

// exit applies the configured compensation when the delay signal trips.
func (p *CircuitStart) exit(s *Sender) {
	if p.Compensation == CompCounted {
		s.ExitStartup(float64(s.RoundFeedback()))
		return
	}
	s.BeginExitMeasurement()
}

// OnFeedback implements Startup: if the queue estimate exceeds γ, begin
// the overshooting compensation — "the cwnd is set to the amount of
// data acknowledged within the current round so far".
func (p *CircuitStart) OnFeedback(s *Sender) {
	if s.VegasDiff() > p.Gamma {
		p.exit(s)
	}
}

// OnRoundComplete implements Startup: double the window and continue
// ramping (the γ check already ran per feedback batch). Two guards
// apply. While the exit measurement is open the window holds, so the
// count reflects the successor's drain rate at a stable offered load.
// And a round that was application-limited proved nothing about the
// network, so the window holds (RFC 2861-style validation) — this is
// what lets an upstream-throttled relay's window track its actual usage
// instead of doubling to the cap, preserving back-propagation.
func (p *CircuitStart) OnRoundComplete(s *Sender, diff float64) {
	if s.ExitMeasuring() {
		return
	}
	if diff > p.Gamma {
		p.exit(s)
		return
	}
	if !s.RoundAppLimited() {
		s.SetCwnd(s.Cwnd() * 2)
	}
}

// ClassicSlowStart is the baseline ("without CircuitStart"): continuous
// ACK-clocked exponential growth — cwnd grows by one cell per
// acknowledged cell — with the traditional halving when the delay signal
// says the ramp overshot.
type ClassicSlowStart struct {
	// Gamma is the Vegas-style exit threshold in cells.
	Gamma float64
}

// NewClassicSlowStart returns the baseline policy with γ = DefaultGamma.
func NewClassicSlowStart() *ClassicSlowStart { return &ClassicSlowStart{Gamma: DefaultGamma} }

// Name implements Startup.
func (p *ClassicSlowStart) Name() string { return "slowstart" }

// BurstMode implements Startup: traditional slow start is ACK-clocked
// and continuous.
func (p *ClassicSlowStart) BurstMode() bool { return false }

// OnAck implements Startup: one cell of growth per acknowledged cell —
// but only while the window is the binding constraint (the in-flight
// data before this acknowledgment filled the window). Growing while
// application-limited would inflate the window without probing anything.
func (p *ClassicSlowStart) OnAck(s *Sender, n int) {
	if s.InFlight()+n >= int(math.Floor(s.Cwnd())) {
		s.SetCwnd(s.Cwnd() + float64(n))
	}
}

// OnFeedback implements Startup: the traditional scheme only evaluates
// the delay signal once per RTT.
func (p *ClassicSlowStart) OnFeedback(*Sender) {}

// OnRoundComplete implements Startup: exit by halving, as traditional
// start-up schemes do ("traditional start-up schemes would halve the
// cwnd before entering congestion avoidance").
func (p *ClassicSlowStart) OnRoundComplete(s *Sender, diff float64) {
	if diff > p.Gamma {
		s.ExitStartup(s.Cwnd() / 2)
	}
}

// CircuitStartHalve is an ablation: CircuitStart's feedback-clocked
// discrete rounds, but with the traditional halving instead of
// overshooting compensation. Comparing it against CircuitStart isolates
// the contribution of the compensation step.
type CircuitStartHalve struct {
	Gamma float64
}

// Name implements Startup.
func (p *CircuitStartHalve) Name() string { return "circuitstart-halve" }

// BurstMode implements Startup.
func (p *CircuitStartHalve) BurstMode() bool { return true }

// OnAck implements Startup.
func (p *CircuitStartHalve) OnAck(*Sender, int) {}

// OnFeedback implements Startup.
func (p *CircuitStartHalve) OnFeedback(s *Sender) {
	if s.VegasDiff() > p.Gamma {
		s.ExitStartup(s.Cwnd() / 2)
	}
}

// OnRoundComplete implements Startup.
func (p *CircuitStartHalve) OnRoundComplete(s *Sender, diff float64) {
	if diff > p.Gamma {
		s.ExitStartup(s.Cwnd() / 2)
		return
	}
	if !s.RoundAppLimited() {
		s.SetCwnd(s.Cwnd() * 2)
	}
}

// ClassicCompensated is an ablation: traditional ACK-clocked growth, but
// CircuitStart's overshooting compensation on exit. Comparing it against
// ClassicSlowStart isolates the contribution of feedback clocking.
type ClassicCompensated struct {
	Gamma float64
}

// Name implements Startup.
func (p *ClassicCompensated) Name() string { return "slowstart-compensated" }

// BurstMode implements Startup.
func (p *ClassicCompensated) BurstMode() bool { return false }

// OnAck implements Startup.
func (p *ClassicCompensated) OnAck(s *Sender, n int) {
	if s.InFlight()+n >= int(math.Floor(s.Cwnd())) {
		s.SetCwnd(s.Cwnd() + float64(n))
	}
}

// OnFeedback implements Startup: begins the measured exit like
// CircuitStart.
func (p *ClassicCompensated) OnFeedback(s *Sender) {
	if s.VegasDiff() > p.Gamma {
		s.BeginExitMeasurement()
	}
}

// OnRoundComplete implements Startup.
func (p *ClassicCompensated) OnRoundComplete(s *Sender, diff float64) {
	if !s.ExitMeasuring() && diff > p.Gamma {
		s.BeginExitMeasurement()
	}
}

// VegasOnly is plain BackTap — the paper's "without CircuitStart"
// baseline: no dedicated start-up phase at all. The sender drops into
// delay-based congestion avoidance immediately, growing from the initial
// window by at most one cell per RTT. This is exactly the behaviour the
// paper motivates against: "Most tailored approaches, however, neglect
// the protocol dynamics, particularly the question of how to ramp-up the
// congestion window during the initial phase of a circuit."
type VegasOnly struct{}

// Name implements Startup.
func (VegasOnly) Name() string { return "backtap" }

// BurstMode implements Startup.
func (VegasOnly) BurstMode() bool { return false }

// OnAck implements Startup.
func (VegasOnly) OnAck(*Sender, int) {}

// OnFeedback implements Startup.
func (VegasOnly) OnFeedback(*Sender) {}

// OnRoundComplete implements Startup: hand over to congestion avoidance
// at the current window after the very first measurement round.
func (VegasOnly) OnRoundComplete(s *Sender, _ float64) {
	s.ExitStartup(s.Cwnd())
}

// NoStartup pins the window: no growth, no exit. Combined with
// Config.DisableAvoidance it yields a fixed-window sender (the
// Tor-SENDME-like static baseline).
type NoStartup struct{}

// Name implements Startup.
func (NoStartup) Name() string { return "fixed" }

// BurstMode implements Startup.
func (NoStartup) BurstMode() bool { return false }

// OnAck implements Startup.
func (NoStartup) OnAck(*Sender, int) {}

// OnFeedback implements Startup.
func (NoStartup) OnFeedback(*Sender) {}

// OnRoundComplete implements Startup.
func (NoStartup) OnRoundComplete(*Sender, float64) {}

// PolicyByName returns a startup policy from its Name string, with the
// given gamma (0 selects DefaultGamma). It powers CLI flag parsing.
func PolicyByName(name string, gamma float64) (Startup, error) {
	if gamma == 0 {
		gamma = DefaultGamma
	}
	switch name {
	case "circuitstart":
		return &CircuitStart{Gamma: gamma}, nil
	case "slowstart":
		return &ClassicSlowStart{Gamma: gamma}, nil
	case "circuitstart-halve":
		return &CircuitStartHalve{Gamma: gamma}, nil
	case "slowstart-compensated":
		return &ClassicCompensated{Gamma: gamma}, nil
	case "backtap", "vegas":
		return VegasOnly{}, nil
	case "fixed":
		return NoStartup{}, nil
	default:
		return nil, fmt.Errorf("transport: unknown startup policy %q", name)
	}
}
