package transport

import (
	"fmt"

	"circuitstart/internal/cell"
)

// ReceiverStats counts receiver activity.
type ReceiverStats struct {
	Received     uint64 // data segments seen (including duplicates)
	Duplicates   uint64
	Buffered     uint64 // out-of-order segments parked
	Delivered    uint64 // cells handed to the consumer, in order
	AcksSent     uint64
	FeedbackSent uint64
}

// Receiver is the per-hop receive side: it acknowledges reception,
// reorders, delivers cells in order to its consumer, and reports
// *forwarding* progress back to the sender as FEEDBACK.
//
// Who calls NotifyForwarded distinguishes node roles: a relay wires it
// to its own onward sender's first-transmission hook ("the cell is
// moving"), while a sink calls it immediately upon delivery (delivering
// to the application is the final forwarding step).
type Receiver struct {
	circ cell.CircID
	// send transmits control segments back toward the sender.
	send func(Segment) bool
	// deliver consumes in-order cells.
	deliver func(*cell.Cell)

	expected uint64 // next in-order sequence
	buffer   map[uint64]*cell.Cell

	forwarded    uint64 // highest forwarding count reported to us
	feedbackSent uint64 // highest count actually signalled upstream

	// Batched delivery (cell trains) processes every data segment in
	// the train first and flushes one cumulative ACK — and at most one
	// cumulative FEEDBACK — covering the whole run, instead of one per
	// cell. Both signals are cumulative counts, so the coalesced pair
	// carries exactly the information the per-cell segments would have.
	// deferSignals is set for the duration of a batched handler call so
	// nested NotifyForwarded calls (the delivery chain forwards the
	// cell onward synchronously) park their report in fbDue instead of
	// sending; ackDue/fbDue persist until Flush.
	deferSignals bool
	ackDue       bool
	fbDue        bool

	stats ReceiverStats

	closed bool
}

// NewReceiver creates a hop receiver. send transmits ACK/FEEDBACK
// segments to the predecessor; deliver consumes in-order cells.
func NewReceiver(circ cell.CircID, send func(Segment) bool, deliver func(*cell.Cell)) *Receiver {
	if send == nil {
		panic("transport: NewReceiver with nil send")
	}
	if deliver == nil {
		panic("transport: NewReceiver with nil deliver")
	}
	return &Receiver{
		circ:    circ,
		send:    send,
		deliver: deliver,
		buffer:  make(map[uint64]*cell.Cell),
	}
}

// Expected returns the next in-order sequence number (equivalently, the
// cumulative count of in-order cells received).
func (r *Receiver) Expected() uint64 { return r.expected }

// Close shuts the receiver down as part of a circuit teardown: the
// reorder buffer is dropped (its cells may alias the upstream sender's
// retransmission state, so they are abandoned to the collector rather
// than recycled — see DESIGN.md, "Teardown ownership") and every
// subsequent handler call is a no-op.
func (r *Receiver) Close() {
	if r.closed {
		return
	}
	r.closed = true
	r.buffer = nil
}

// Closed reports whether the receiver has been shut down.
func (r *Receiver) Closed() bool { return r.closed }

// Stats returns a snapshot of the counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// HandleData processes an arriving DATA segment: acknowledge, reorder,
// deliver. Nested forwarding reports fire per cell, as they always
// have — this is the byte-identical unbatched path.
func (r *Receiver) HandleData(seq uint64, c *cell.Cell) {
	if !r.handleData(seq, c) {
		return
	}
	r.stats.AcksSent++
	r.send(Segment{Kind: KindAck, Circ: r.circ, Count: r.expected})
}

// HandleDataBatched is HandleData with all upstream signalling deferred
// to the train boundary: reorder and deliver now; the ack — and any
// forwarding report the synchronous delivery chain produces — go out in
// Flush. It reports whether this call newly put an ack on the books
// (the first deferral since the last flush), so a batch loop can record
// the receiver for flushing exactly once.
func (r *Receiver) HandleDataBatched(seq uint64, c *cell.Cell) bool {
	r.deferSignals = true
	ok := r.handleData(seq, c)
	r.deferSignals = false
	if !ok {
		return false
	}
	first := !r.ackDue
	r.ackDue = true
	return first
}

// handleData is the shared reorder/deliver body. It reports whether the
// arrival should be acknowledged (false = receiver closed, possibly by
// the delivery chain itself mid-call).
func (r *Receiver) handleData(seq uint64, c *cell.Cell) bool {
	if c == nil {
		panic("transport: HandleData with nil cell")
	}
	if r.closed {
		return false
	}
	r.stats.Received++
	switch {
	case seq < r.expected:
		r.stats.Duplicates++ // retransmission of something delivered; re-ack below
	case seq == r.expected:
		r.deliverCell(c)
		// Drain any contiguous run parked in the buffer.
		for {
			nxt, ok := r.buffer[r.expected]
			if !ok {
				break
			}
			delete(r.buffer, r.expected)
			r.deliverCell(nxt)
		}
	default: // out of order
		if _, dup := r.buffer[seq]; dup {
			r.stats.Duplicates++
		} else {
			r.buffer[seq] = c
			r.stats.Buffered++
		}
	}
	return !r.closed
}

// Flush sends the signals a batched delivery deferred: the cumulative
// forwarding report first, then the cumulative acknowledgment — the
// same relative order the per-cell path produces. Delivery may have
// closed the receiver mid-batch (teardown), in which case the pending
// signals are dropped with the rest of its state.
func (r *Receiver) Flush() {
	if r.closed {
		return
	}
	if r.fbDue {
		r.fbDue = false
		if r.forwarded > r.feedbackSent {
			r.feedbackSent = r.forwarded
			r.stats.FeedbackSent++
			r.send(Segment{Kind: KindFeedback, Circ: r.circ, Count: r.forwarded})
		}
	}
	if r.ackDue {
		r.ackDue = false
		r.stats.AcksSent++
		r.send(Segment{Kind: KindAck, Circ: r.circ, Count: r.expected})
	}
}

func (r *Receiver) deliverCell(c *cell.Cell) {
	r.expected++
	r.stats.Delivered++
	r.deliver(c)
}

// HandleProbe answers a window probe by re-sending the current
// cumulative reception and forwarding reports. Probes heal lost tail
// ACK/FEEDBACK segments, which are otherwise never retransmitted.
func (r *Receiver) HandleProbe() {
	if r.closed {
		return
	}
	r.stats.AcksSent++
	r.send(Segment{Kind: KindAck, Circ: r.circ, Count: r.expected})
	if r.forwarded > 0 {
		r.stats.FeedbackSent++
		r.send(Segment{Kind: KindFeedback, Circ: r.circ, Count: r.forwarded})
	}
}

// NotifyForwarded reports that the node has forwarded count cells of
// this hop onward (cumulative). New progress is signalled upstream as a
// FEEDBACK segment.
func (r *Receiver) NotifyForwarded(count uint64) {
	if r.closed {
		return
	}
	if count > r.expected {
		panic(fmt.Sprintf("transport: forwarded %d cells but only %d delivered", count, r.expected))
	}
	if count <= r.forwarded {
		return
	}
	r.forwarded = count
	if r.deferSignals {
		r.fbDue = true // parked; Flush sends one cumulative report
		return
	}
	if count > r.feedbackSent {
		r.feedbackSent = count
		r.stats.FeedbackSent++
		r.send(Segment{Kind: KindFeedback, Circ: r.circ, Count: count})
	}
}
