package transport

import (
	"testing"
	"time"

	"circuitstart/internal/cell"
	"circuitstart/internal/units"
)

// collectReceiver builds a Receiver delivering into a slice, with sent
// control segments captured.
func collectReceiver(t *testing.T) (*Receiver, *[]*cell.Cell, *[]Segment) {
	t.Helper()
	var delivered []*cell.Cell
	var ctrl []Segment
	r := NewReceiver(7, func(seg Segment) bool {
		ctrl = append(ctrl, seg)
		return true
	}, func(c *cell.Cell) { delivered = append(delivered, c) })
	return r, &delivered, &ctrl
}

func mkCell(i int) *cell.Cell {
	c := &cell.Cell{Circ: 7, Cmd: cell.CmdRelay}
	c.Payload[0] = byte(i)
	return c
}

func TestReceiverInOrder(t *testing.T) {
	r, delivered, ctrl := collectReceiver(t)
	for i := 0; i < 5; i++ {
		r.HandleData(uint64(i), mkCell(i))
	}
	if len(*delivered) != 5 {
		t.Fatalf("delivered %d", len(*delivered))
	}
	if r.Expected() != 5 {
		t.Errorf("Expected() = %d", r.Expected())
	}
	// Every data segment triggers a cumulative ACK 1..5.
	if len(*ctrl) != 5 {
		t.Fatalf("sent %d control segments", len(*ctrl))
	}
	for i, seg := range *ctrl {
		if seg.Kind != KindAck || seg.Count != uint64(i+1) || seg.Circ != 7 {
			t.Errorf("ctrl[%d] = %v", i, seg)
		}
	}
}

func TestReceiverReordersOutOfOrder(t *testing.T) {
	r, delivered, ctrl := collectReceiver(t)
	r.HandleData(2, mkCell(2))
	r.HandleData(0, mkCell(0))
	r.HandleData(1, mkCell(1))
	if len(*delivered) != 3 {
		t.Fatalf("delivered %d", len(*delivered))
	}
	for i, c := range *delivered {
		if int(c.Payload[0]) != i {
			t.Errorf("delivered[%d] = cell %d", i, c.Payload[0])
		}
	}
	// ACK counts: after seq2 → 0 (gap), after seq0 → 1, after seq1 → 3.
	wantCounts := []uint64{0, 1, 3}
	for i, seg := range *ctrl {
		if seg.Count != wantCounts[i] {
			t.Errorf("ack %d count = %d, want %d", i, seg.Count, wantCounts[i])
		}
	}
	st := r.Stats()
	if st.Buffered != 1 {
		t.Errorf("Buffered = %d, want 1", st.Buffered)
	}
}

func TestReceiverDuplicates(t *testing.T) {
	r, delivered, ctrl := collectReceiver(t)
	r.HandleData(0, mkCell(0))
	r.HandleData(0, mkCell(0)) // dup of delivered
	r.HandleData(3, mkCell(3))
	r.HandleData(3, mkCell(3)) // dup of buffered
	if len(*delivered) != 1 {
		t.Fatalf("delivered %d, want 1", len(*delivered))
	}
	st := r.Stats()
	if st.Duplicates != 2 {
		t.Errorf("Duplicates = %d, want 2", st.Duplicates)
	}
	// Duplicates still elicit (re-)ACKs so a lost ACK heals.
	if len(*ctrl) != 4 {
		t.Errorf("sent %d acks, want 4", len(*ctrl))
	}
}

func TestReceiverNotifyForwarded(t *testing.T) {
	r, _, ctrl := collectReceiver(t)
	for i := 0; i < 3; i++ {
		r.HandleData(uint64(i), mkCell(i))
	}
	*ctrl = (*ctrl)[:0]
	r.NotifyForwarded(2)
	r.NotifyForwarded(2) // no-op: already reported
	r.NotifyForwarded(1) // no-op: regression
	r.NotifyForwarded(3)
	if len(*ctrl) != 2 {
		t.Fatalf("sent %d feedback segments, want 2: %v", len(*ctrl), *ctrl)
	}
	if (*ctrl)[0].Kind != KindFeedback || (*ctrl)[0].Count != 2 {
		t.Errorf("first feedback = %v", (*ctrl)[0])
	}
	if (*ctrl)[1].Count != 3 {
		t.Errorf("second feedback = %v", (*ctrl)[1])
	}
}

func TestReceiverNotifyForwardedBeyondDeliveredPanics(t *testing.T) {
	r, _, _ := collectReceiver(t)
	r.HandleData(0, mkCell(0))
	defer func() {
		if recover() == nil {
			t.Error("no panic for forwarding more than delivered")
		}
	}()
	r.NotifyForwarded(2)
}

func TestReceiverValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	send := func(Segment) bool { return true }
	deliver := func(*cell.Cell) {}
	mustPanic("nil send", func() { NewReceiver(1, nil, deliver) })
	mustPanic("nil deliver", func() { NewReceiver(1, send, nil) })
	r := NewReceiver(1, send, deliver)
	mustPanic("nil cell", func() { r.HandleData(0, nil) })
}

// --- loss and recovery over the netem harness -------------------------

func TestRecoveryFromSingleLoss(t *testing.T) {
	// A tiny queue cap forces a tail drop during the ramp; the RTO must
	// recover it and the full transfer must complete in order.
	h := newHopHarness(t, harnessConfig{
		queueCap: 8 * DataWireSize,
	})
	h.sendCells(200)
	h.run(120 * time.Second)
	h.assertDeliveredInOrder(200)
	st := h.sender.Stats()
	if st.WireRejected == 0 {
		t.Skip("no drop occurred with these parameters; scenario not exercised")
	}
	if st.Retransmitted == 0 {
		t.Error("drops occurred but nothing was retransmitted")
	}
}

func TestRecoveryFromRandomLoss(t *testing.T) {
	// 5% random loss on the forward path: reliability must deliver
	// everything, in order, exactly once.
	h := newHopHarness(t, harnessConfig{lossProb: 0.05})
	h.sendCells(400)
	h.run(300 * time.Second)
	h.assertDeliveredInOrder(400)
	st := h.sender.Stats()
	if st.Retransmitted == 0 {
		t.Error("5% loss but zero retransmissions")
	}
	rst := h.recv.Stats()
	if rst.Delivered != 400 {
		t.Errorf("receiver delivered %d", rst.Delivered)
	}
	t.Logf("loss recovery: %d first transmissions, %d retransmissions, %d RTOs",
		st.Transmitted, st.Retransmitted, st.RTOs)
}

func TestRecoveryUnderHeavyLossWithBothPolicies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy Startup
	}{
		{"circuitstart", NewCircuitStart()},
		{"slowstart", NewClassicSlowStart()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := newHopHarness(t, harnessConfig{
				lossProb:  0.15,
				senderCfg: Config{Startup: tc.policy},
			})
			h.sendCells(150)
			h.run(600 * time.Second)
			h.assertDeliveredInOrder(150)
		})
	}
}

func TestThroughputUnderBottleneckMatchesRate(t *testing.T) {
	// Goodput through a 2 Mbit/s forwarding stage must approach
	// 2 Mbit/s of wire data once the ramp settles.
	h := newHopHarness(t, harnessConfig{fwdRate: units.Mbps(2)})
	const n = 2000
	h.sendCells(n)
	h.run(120 * time.Second)
	h.assertDeliveredInOrder(n)
	elapsed := h.lastDelivery.Duration()
	rate := units.RateFromTransfer(units.DataSize(n)*DataWireSize, elapsed)
	if r := rate.Mbit(); r < 1.6 || r > 2.05 {
		t.Errorf("goodput %.2f Mbit/s through a 2 Mbit/s forwarder", r)
	}
}
