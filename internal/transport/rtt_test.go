package transport

import (
	"testing"
	"time"
)

func TestRTTFirstSample(t *testing.T) {
	e := NewRTTEstimator(0, 0)
	if e.Valid() {
		t.Error("Valid before first sample")
	}
	e.Sample(100 * time.Millisecond)
	if !e.Valid() {
		t.Error("not Valid after sample")
	}
	if e.SRTT() != 100*time.Millisecond {
		t.Errorf("SRTT = %v, want 100ms", e.SRTT())
	}
	if e.Min() != 100*time.Millisecond {
		t.Errorf("Min = %v", e.Min())
	}
	// RTO = srtt + 4*rttvar = 100 + 4*50 = 300ms.
	if e.RTO() != 300*time.Millisecond {
		t.Errorf("RTO = %v, want 300ms", e.RTO())
	}
}

func TestRTTSmoothing(t *testing.T) {
	e := NewRTTEstimator(0, 0)
	e.Sample(100 * time.Millisecond)
	e.Sample(200 * time.Millisecond)
	// srtt = 7/8*100 + 1/8*200 = 112.5ms
	want := 112500 * time.Microsecond
	if e.SRTT() != want {
		t.Errorf("SRTT = %v, want %v", e.SRTT(), want)
	}
	if e.Min() != 100*time.Millisecond {
		t.Errorf("Min = %v, want 100ms", e.Min())
	}
	e.Sample(50 * time.Millisecond)
	if e.Min() != 50*time.Millisecond {
		t.Errorf("Min = %v, want 50ms", e.Min())
	}
}

func TestRTTIgnoresNonPositive(t *testing.T) {
	e := NewRTTEstimator(0, 0)
	e.Sample(0)
	e.Sample(-time.Second)
	if e.Valid() {
		t.Error("non-positive samples must be ignored")
	}
}

func TestRTOClampedToMin(t *testing.T) {
	e := NewRTTEstimator(50*time.Millisecond, 0)
	e.Sample(time.Millisecond) // srtt+4var = 3ms << min
	if e.RTO() != 50*time.Millisecond {
		t.Errorf("RTO = %v, want clamped 50ms", e.RTO())
	}
}

func TestRTODefaultBeforeSamples(t *testing.T) {
	e := NewRTTEstimator(10*time.Millisecond, 0)
	if e.RTO() != 100*time.Millisecond {
		t.Errorf("initial RTO = %v, want 10× floor", e.RTO())
	}
}

func TestRTOBackoff(t *testing.T) {
	e := NewRTTEstimator(0, 0)
	e.Sample(100 * time.Millisecond)
	base := e.RTO()
	e.Backoff()
	if e.RTO() != 2*base {
		t.Errorf("after backoff RTO = %v, want %v", e.RTO(), 2*base)
	}
	e.Backoff()
	if e.RTO() != 4*base {
		t.Errorf("after 2nd backoff RTO = %v, want %v", e.RTO(), 4*base)
	}
	e.Sample(100 * time.Millisecond) // backoff resets
	if got := e.RTO(); got > base+base/4 {
		t.Errorf("RTO after new sample = %v, backoff did not reset", got)
	}
}

func TestRTOClampedToMax(t *testing.T) {
	e := NewRTTEstimator(0, 500*time.Millisecond)
	e.Sample(400 * time.Millisecond)
	for i := 0; i < 10; i++ {
		e.Backoff()
	}
	if e.RTO() != 500*time.Millisecond {
		t.Errorf("RTO = %v, want clamped 500ms", e.RTO())
	}
}
