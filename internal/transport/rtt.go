package transport

import "time"

// RTTEstimator maintains a smoothed round-trip estimate and a
// retransmission timeout per Jacobson/Karels (RFC 6298): on the first
// sample SRTT = R and RTTVAR = R/2; afterwards RTTVAR is blended with
// |SRTT − R| (factor 1/4) and SRTT with R (factor 1/8).
type RTTEstimator struct {
	srtt   time.Duration
	rttvar time.Duration
	min    time.Duration // smallest sample ever seen
	valid  bool

	// rtoMin and rtoMax clamp the computed RTO.
	rtoMin, rtoMax time.Duration
	// backoff multiplies the RTO after a timeout (Karn's exponential
	// backoff); it resets to 1 on the next valid sample.
	backoff time.Duration
}

// Default RTO bounds. The minimum is far below TCP's 1s: the protocol
// runs between overlay neighbours where spurious timeouts are cheap and
// interactivity matters.
const (
	DefaultRTOMin = 10 * time.Millisecond
	DefaultRTOMax = 10 * time.Second
)

// NewRTTEstimator creates an estimator with the given RTO bounds; zero
// values select the defaults.
func NewRTTEstimator(rtoMin, rtoMax time.Duration) *RTTEstimator {
	if rtoMin <= 0 {
		rtoMin = DefaultRTOMin
	}
	if rtoMax <= 0 {
		rtoMax = DefaultRTOMax
	}
	return &RTTEstimator{rtoMin: rtoMin, rtoMax: rtoMax, backoff: 1}
}

// Sample folds a new RTT measurement into the estimate.
func (e *RTTEstimator) Sample(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if !e.valid {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.min = rtt
		e.valid = true
	} else {
		d := e.srtt - rtt
		if d < 0 {
			d = -d
		}
		e.rttvar = (3*e.rttvar + d) / 4
		e.srtt = (7*e.srtt + rtt) / 8
		if rtt < e.min {
			e.min = rtt
		}
	}
	e.backoff = 1
}

// Valid reports whether at least one sample has been folded in.
func (e *RTTEstimator) Valid() bool { return e.valid }

// SRTT returns the smoothed RTT (zero before the first sample).
func (e *RTTEstimator) SRTT() time.Duration { return e.srtt }

// Min returns the smallest RTT ever sampled (the transport's baseRtt).
func (e *RTTEstimator) Min() time.Duration { return e.min }

// RTO returns the current retransmission timeout, including any backoff.
func (e *RTTEstimator) RTO() time.Duration {
	rto := e.rtoMin
	if e.valid {
		rto = e.srtt + 4*e.rttvar
		// Floor at twice the smoothed RTT: with low RTT variance (a
		// deterministic network, or a long stable path) srtt + 4·rttvar
		// degenerates toward srtt itself, which cannot even cover one
		// round trip and guarantees spurious timeouts.
		if rto < 2*e.srtt {
			rto = 2 * e.srtt
		}
		if rto < e.rtoMin {
			rto = e.rtoMin
		}
	} else {
		// No sample yet: start conservatively at 10× the floor.
		rto = 10 * e.rtoMin
	}
	rto *= e.backoff
	if rto > e.rtoMax {
		rto = e.rtoMax
	}
	return rto
}

// Backoff doubles the RTO after a retransmission timeout.
func (e *RTTEstimator) Backoff() {
	if e.backoff < 64 {
		e.backoff *= 2
	}
}
