package transport

// SegmentPool recycles boxed *Segment wrappers. The overlay attaches
// segments to netem frames as `any` payloads; boxing a Segment value
// allocates 136 bytes per hop transmission, which profiling showed was
// >80% of a transfer's steady-state allocations. Instead, senders draw
// a wrapper here, and the fabric's FramePool returns it through its
// OnReclaim hook the moment the carrying frame dies (delivery, tail
// drop or random loss) — the one place every frame death is visible,
// so each wrapper is recycled exactly once.
//
// Like the other pools in this repository it is a plain free list: a
// simulation is single-threaded on its clock, so no locking, and reuse
// order is deterministic. A nil *SegmentPool is valid and degrades to
// plain allocation, keeping unpooled construction paths (direct relay
// tests) working unchanged.
// The pool remembers every segment it ever allocated so Reset can
// reclaim wrappers stranded in a dead trial's frames along with the
// free ones.
type SegmentPool struct {
	free []*Segment
	all  []*Segment
}

// NewSegmentPool returns an empty pool.
func NewSegmentPool() *SegmentPool { return &SegmentPool{} }

// Get returns a zeroed segment for the caller to fill.
func (p *SegmentPool) Get() *Segment {
	if p == nil {
		return &Segment{}
	}
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return s
	}
	s := &Segment{}
	p.all = append(p.all, s)
	return s
}

// Put recycles a dead wrapper. The segment is zeroed so the pool pins
// neither cells nor stale header fields.
func (p *SegmentPool) Put(s *Segment) {
	if p == nil || s == nil {
		return
	}
	*s = Segment{}
	p.free = append(p.free, s)
}

// Reset reclaims every wrapper the pool ever allocated — free or not —
// zeroing each and rebuilding the free list in allocation order. Only
// call it at a trial boundary, after the frames carrying the wrappers
// have been discarded; resetting under live traffic aliases memory.
func (p *SegmentPool) Reset() {
	if p == nil {
		return
	}
	p.free = p.free[:0]
	for _, s := range p.all {
		*s = Segment{}
		p.free = append(p.free, s)
	}
}
