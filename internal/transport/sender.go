package transport

import (
	"fmt"
	"math"
	"sort"
	"time"

	"circuitstart/internal/cell"
	"circuitstart/internal/sim"
)

// Phase is the sender's congestion-control phase.
type Phase int

// Phases.
const (
	// PhaseStartup is the ramp-up phase governed by the Startup policy.
	PhaseStartup Phase = iota
	// PhaseAvoidance is delay-based congestion avoidance (TCP-Vegas
	// style, as in BackTap).
	PhaseAvoidance
)

func (p Phase) String() string {
	switch p {
	case PhaseStartup:
		return "startup"
	case PhaseAvoidance:
		return "avoidance"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// WindowClock selects which signal bounds the in-flight window.
type WindowClock int

// Window clock options.
const (
	// ClockFeedback bounds in-flight data by cells not yet confirmed
	// *forwarded* — BackTap's backpressure semantics, and the default.
	ClockFeedback WindowClock = iota
	// ClockAck bounds in-flight data by cells not yet *received* — the
	// semantics of a chained ("split TCP"-like) per-hop protocol. Used
	// by the feedback-clocking ablation.
	ClockAck
)

func (w WindowClock) String() string {
	if w == ClockAck {
		return "ack"
	}
	return "feedback"
}

// Vegas congestion-avoidance defaults (cells of queue estimate), as in
// TCP Vegas / BackTap.
const (
	DefaultAlpha = 2.0
	DefaultBeta  = 4.0
)

// DefaultInitialCwnd is the paper's initial window: "Each relay starts
// with an initial congestion window (cwnd) of two cells."
const DefaultInitialCwnd = 2.0

// DefaultMaxCwnd caps runaway windows (cells).
const DefaultMaxCwnd = 4096.0

// Config parameterizes a hop sender.
type Config struct {
	// Clock is the simulation clock. Required.
	Clock *sim.Clock
	// Circ is the circuit ID stamped on segments.
	Circ cell.CircID
	// Send transmits a segment toward the successor. Required. The
	// return value reports whether the network accepted the segment
	// (false = tail drop at the local queue).
	Send func(Segment) bool
	// Startup is the ramp-up policy. Defaults to NewCircuitStart().
	Startup Startup
	// Alpha, Beta are the Vegas congestion-avoidance thresholds.
	// Zero selects the defaults.
	Alpha, Beta float64
	// InitialCwnd is the starting window in cells (default 2).
	InitialCwnd float64
	// MinCwnd floors the window (default 2).
	MinCwnd float64
	// MaxCwnd caps the window (default DefaultMaxCwnd).
	MaxCwnd float64
	// WindowClock selects backpressure (feedback) or reception (ack)
	// window accounting.
	WindowClock WindowClock
	// DisableAvoidance freezes the window after startup exit (used with
	// NoStartup for fixed-window baselines).
	DisableAvoidance bool
	// RestartRounds, when positive, enables the paper's future-work
	// extension: after this many consecutive underutilized avoidance
	// rounds while data is waiting, the sender re-enters startup to
	// re-probe quickly for newly available capacity.
	RestartRounds int
	// SevereRemeasure is the downward counterpart of RestartRounds:
	// when an avoidance round's queue estimate exceeds Beta by this
	// factor (severe overshoot — e.g. the window was set from a
	// transient, or the bottleneck moved), the sender re-runs the
	// one-baseRtt drain measurement and shrinks straight to the result
	// instead of crawling down one cell per RTT. Zero disables it.
	SevereRemeasure float64
	// RTOMin, RTOMax bound the retransmission timeout (zero = default).
	RTOMin, RTOMax time.Duration
	// OnCwnd, if set, observes every window change.
	OnCwnd func(cwnd float64, phase Phase)
	// OnFirstTransmit, if set, observes the cumulative count of cells
	// transmitted for the first time. Relays wire this to the upstream
	// receiver's feedback ("this cell is moving").
	OnFirstTransmit func(count uint64)
	// OnHeld, if set, observes changes to the number of cells this
	// sender holds — queued awaiting first transmission plus retained
	// for retransmission. Relays wire it to the resource manager's
	// per-circuit memory accounting; Close reports the final release.
	OnHeld func(delta int)
	// BatchSignals defers OnFirstTransmit to pump-drain boundaries: one
	// call with the final cumulative count per burst instead of one per
	// cell. On a train-running network this collapses a burst's worth
	// of per-cell FEEDBACK segments into one (the count is cumulative,
	// so nothing is lost). Off by default — per-cell signalling is the
	// byte-identical baseline behavior.
	BatchSignals bool
}

// SenderStats counts sender activity.
type SenderStats struct {
	Transmitted   uint64 // first transmissions
	Retransmitted uint64
	WireRejected  uint64 // segments the local queue refused
	Acked         uint64 // cumulative cells acked
	Feedback      uint64 // cumulative cells feedback-confirmed
	Rounds        uint64 // completed measurement rounds
	RTOs          uint64
	Probes        uint64 // feedback window probes sent
	StartupExits  uint64
	Restarts      uint64   // dynamic re-probes (extension)
	ExitCwnd      float64  // cwnd chosen at the most recent startup exit
	ExitTime      sim.Time // when startup was most recently exited
}

// Sender is the per-hop window-based transmitter. It owns the congestion
// window, reliability (cumulative ACK + RTO), the round structure, and
// the Vegas queue estimator over DATA→FEEDBACK RTTs.
type Sender struct {
	cfg   Config
	clock *sim.Clock

	// queue holds cells awaiting first transmission; qhead indexes the
	// next cell to leave. Dequeue advances the cursor instead of
	// shifting the slice (a large transfer front-loads thousands of
	// cells, and an O(n) shift per transmission made dequeue quadratic);
	// Enqueue rewinds the cursor whenever the queue drains.
	queue []*cell.Cell
	qhead int

	retain   map[uint64]*cell.Cell // sent, not yet acked (for retransmission)
	sendTime map[uint64]sim.Time   // first-transmission times
	rtx      map[uint64]bool       // sequence was retransmitted (Karn)

	nextSeq  uint64 // next fresh sequence number
	acked    uint64 // cumulative count received by peer
	feedback uint64 // cumulative count forwarded by peer

	cwnd  float64
	phase Phase

	rtt     *RTTEstimator // over DATA→ACK, drives the RTO
	baseRtt time.Duration // minimum DATA→FEEDBACK sample ("baseRtt")

	// Round state. A round is delimited in sequence space: it completes
	// when feedback covers roundBoundary.
	roundActive   bool
	roundBoundary uint64        // one past the last sequence of the round
	roundStartFb  uint64        // feedback count when the round began
	roundBudget   int           // burst mode: cells still allowed this round
	roundRttSum   time.Duration // feedback RTT samples this round
	roundRttCnt   int
	roundFirstFb  sim.Time // arrival of the round's first feedback
	roundHasFb    bool
	// roundStartCwnd and roundMaxInFlight implement RFC 2861-style
	// "congestion window validation": a round only proves something
	// about the network if the in-flight data actually reached the
	// window at some point during it. Policies consult the verdict via
	// RoundAppLimited during OnRoundComplete: growing the window in an
	// application-limited round would let idle hops (e.g. a relay
	// throttled by its upstream) double forever without ever probing the
	// network, destroying the back-propagation property.
	roundStartCwnd      float64
	roundMaxInFlight    int
	lastRoundAppLimited bool

	// Accelerated re-probe state (the paper's future-work extension).
	// underuseRounds counts consecutive window-limited avoidance rounds
	// with diff < α; once it reaches restartThreshold the window grows
	// multiplicatively (×1.5 per round) instead of +1, so a capacity
	// jump is found in a handful of RTTs — and because each hop runs
	// the same law, the opening cascades along the circuit. A probe
	// phase that ends without having found meaningful capacity doubles
	// restartThreshold (bounded), so steady-state throughput is not
	// eaten by periodic futile probes; a successful one resets it.
	underuseRounds   int
	restartThreshold int
	accelPhase       bool
	accelStartCwnd   float64

	// Exit measurement: after the ramp's delay signal trips, the sender
	// counts feedback for exactly one baseRtt and exits with that count
	// as the window — the paper's packet-train analysis ("the length of
	// the packet train that could be forwarded by the successor without
	// additional delay is a good estimation for the optimal window").
	// The counting window opens only once feedback for a *post-trip*
	// cell arrives (exitAligned): counting from the trip instant would
	// span the dead time while the measurement train is still in flight
	// and grossly undercount the drain rate.
	exitMeasuring bool
	exitAligned   bool
	exitStarved   bool // sender went idle during the window: measurement void
	exitMarkSeq   uint64
	exitFbStart   uint64
	exitSpacings  []time.Duration // inter-feedback spacing inside the window
	exitLastFb    sim.Time
	exitTimer     *sim.Timer

	rtoTimer     *sim.Timer
	probeTimer   *sim.Timer
	probeBackoff time.Duration
	stats        SenderStats

	closed bool
}

// NewSender validates cfg and creates a sender.
func NewSender(cfg Config) *Sender {
	if cfg.Clock == nil {
		panic("transport: Config.Clock is required")
	}
	if cfg.Send == nil {
		panic("transport: Config.Send is required")
	}
	if cfg.Startup == nil {
		cfg.Startup = NewCircuitStart()
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = DefaultAlpha
	}
	if cfg.Beta == 0 {
		cfg.Beta = DefaultBeta
	}
	if cfg.InitialCwnd == 0 {
		cfg.InitialCwnd = DefaultInitialCwnd
	}
	if cfg.MinCwnd == 0 {
		cfg.MinCwnd = DefaultInitialCwnd
	}
	if cfg.MaxCwnd == 0 {
		cfg.MaxCwnd = DefaultMaxCwnd
	}
	if cfg.Alpha > cfg.Beta {
		panic(fmt.Sprintf("transport: alpha %v > beta %v", cfg.Alpha, cfg.Beta))
	}
	s := &Sender{
		cfg:      cfg,
		clock:    cfg.Clock,
		retain:   make(map[uint64]*cell.Cell),
		sendTime: make(map[uint64]sim.Time),
		rtx:      make(map[uint64]bool),
		cwnd:     cfg.InitialCwnd,
		phase:    PhaseStartup,
		rtt:      NewRTTEstimator(cfg.RTOMin, cfg.RTOMax),
	}
	s.rtoTimer = sim.NewTimer(s.clock, s.onRTO)
	s.probeTimer = sim.NewTimer(s.clock, s.onProbe)
	s.exitTimer = sim.NewTimer(s.clock, s.onExitMeasured)
	s.restartThreshold = cfg.RestartRounds
	s.probeBackoff = 1
	s.notifyCwnd()
	return s
}

// Close shuts the sender down as part of a circuit teardown. All three
// timers are stopped, which returns their events to the clock's free
// list immediately; cells still waiting for their first transmission
// are handed to release one by one; and every subsequent handler call
// is a no-op, so segments already in flight when the circuit died are
// absorbed silently.
//
// release is non-nil only at the hop that originated the cells (the
// source's forward sender, the sink's backward sender), where a
// never-transmitted cell has exactly one owner and may be recycled to
// the endpoint's pool. Relay senders pass nil: a transmitted cell is
// retained here AND referenced by the upstream hop until the in-flight
// ACK lands, so recycling relay-held cells could hand one cell to two
// circuits. See DESIGN.md, "Teardown ownership".
func (s *Sender) Close(release func(*cell.Cell)) {
	if s.closed {
		return
	}
	s.closed = true
	s.rtoTimer.Stop()
	s.probeTimer.Stop()
	s.exitTimer.Stop()
	if s.cfg.OnHeld != nil {
		if held := s.QueueLen() + len(s.retain); held > 0 {
			s.cfg.OnHeld(-held)
		}
	}
	for i := s.qhead; i < len(s.queue); i++ {
		if release != nil {
			release(s.queue[i])
		}
		s.queue[i] = nil
	}
	s.queue = nil
	s.qhead = 0
	s.retain = nil
	s.sendTime = nil
	s.rtx = nil
	s.exitSpacings = nil
}

// Closed reports whether the sender has been shut down.
func (s *Sender) Closed() bool { return s.closed }

// --- accessors -------------------------------------------------------

// Cwnd returns the congestion window in cells.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// CwndBytes returns the window expressed in payload bytes (cells ×
// cell.Size), the unit of the paper's Figure 1 y-axis.
func (s *Sender) CwndBytes() float64 { return s.cwnd * cell.Size }

// Phase returns the current congestion-control phase.
func (s *Sender) Phase() Phase { return s.phase }

// QueueLen returns cells waiting for their first transmission.
func (s *Sender) QueueLen() int { return len(s.queue) - s.qhead }

// InFlight returns the window occupancy in cells under the configured
// window clock.
func (s *Sender) InFlight() int {
	if s.cfg.WindowClock == ClockAck {
		return int(s.nextSeq - s.acked)
	}
	return int(s.nextSeq - s.feedback)
}

// Unacked returns cells transmitted but not yet acknowledged.
func (s *Sender) Unacked() int { return int(s.nextSeq - s.acked) }

// BaseRTT returns the minimum DATA→FEEDBACK RTT observed.
func (s *Sender) BaseRTT() time.Duration { return s.baseRtt }

// SRTT returns the smoothed DATA→ACK RTT.
func (s *Sender) SRTT() time.Duration { return s.rtt.SRTT() }

// Stats returns a snapshot of the counters.
func (s *Sender) Stats() SenderStats {
	st := s.stats
	st.Acked = s.acked
	st.Feedback = s.feedback
	return st
}

// RoundFeedback returns the number of cells confirmed moving within the
// current round so far — the quantity CircuitStart's overshooting
// compensation sets the window to.
func (s *Sender) RoundFeedback() int { return int(s.feedback - s.roundStartFb) }

// RoundAppLimited reports whether the most recently completed round was
// constrained by available data rather than the congestion window. It is
// meaningful during Startup.OnRoundComplete; policies must not grow the
// window after an application-limited round.
func (s *Sender) RoundAppLimited() bool { return s.lastRoundAppLimited }

// DispersionWindow estimates the optimal window from the current
// round's packet-train dispersion: the successor's forwarding rate,
// measured as feedback spacing, times the base RTT. This is the
// "elaborate analysis of the timing information gathered" that the
// discrete rounds' packet trains enable — the train prefix the
// successor forwards back-to-back reveals its drain rate, and
// rate × baseRtt is the minimal window that fully utilizes it.
// ok is false until the round has at least two spaced feedback events.
func (s *Sender) DispersionWindow() (cells float64, ok bool) {
	n := s.RoundFeedback()
	if !s.roundHasFb || n < 2 || s.baseRtt <= 0 {
		return 0, false
	}
	elapsed := s.clock.Now().Sub(s.roundFirstFb)
	if elapsed <= 0 {
		return 0, false
	}
	rate := float64(n-1) / elapsed.Seconds() // cells per second
	return rate * s.baseRtt.Seconds(), true
}

// VegasDiff returns the live queue estimate of the current round:
// diff = cwnd·(currentRtt/baseRtt) − cwnd, with currentRtt the mean
// feedback RTT of the round so far. Zero until samples exist.
func (s *Sender) VegasDiff() float64 {
	if s.roundRttCnt == 0 || s.baseRtt <= 0 {
		return 0
	}
	current := time.Duration(int64(s.roundRttSum) / int64(s.roundRttCnt))
	return s.cwnd*(float64(current)/float64(s.baseRtt)) - s.cwnd
}

// --- window manipulation (used by Startup policies) -------------------

func (s *Sender) clampCwnd(v float64) float64 {
	if v < s.cfg.MinCwnd {
		v = s.cfg.MinCwnd
	}
	if v > s.cfg.MaxCwnd {
		v = s.cfg.MaxCwnd
	}
	return v
}

// SetCwnd sets the window, clamped to [MinCwnd, MaxCwnd].
func (s *Sender) SetCwnd(v float64) {
	v = s.clampCwnd(v)
	if v == s.cwnd {
		return
	}
	s.cwnd = v
	s.notifyCwnd()
}

// ExitStartup leaves the ramp-up phase with the given window and enters
// congestion avoidance. Calling it outside PhaseStartup is a no-op.
func (s *Sender) ExitStartup(newCwnd float64) {
	if s.phase != PhaseStartup {
		return
	}
	s.phase = PhaseAvoidance
	s.exitMeasuring = false
	s.exitTimer.Stop()
	s.stats.StartupExits++
	s.stats.ExitCwnd = s.clampCwnd(newCwnd)
	s.stats.ExitTime = s.clock.Now()
	s.cwnd = s.stats.ExitCwnd
	s.endRound()
	s.notifyCwnd()
}

// BeginExitMeasurement starts the overshooting-compensation measurement.
// The sender keeps transmitting (with headroom for the doubling this
// round would have performed, so the successor stays saturated), waits
// for the first feedback covering a post-trip cell, then counts feedback
// for exactly one baseRtt and leaves startup with the counted amount as
// its window. Redundant calls are no-ops.
func (s *Sender) BeginExitMeasurement() {
	if s.phase != PhaseStartup {
		return
	}
	s.beginMeasurement()
	s.pump() // the measurement headroom may admit more cells right away
}

// beginMeasurement arms the one-baseRtt drain measurement in either
// phase. In startup it ends with ExitStartup; in avoidance (severe
// remeasure) it shrinks the window to the measured drain.
func (s *Sender) beginMeasurement() {
	if s.exitMeasuring {
		return
	}
	s.exitMeasuring = true
	s.exitAligned = false
	s.exitStarved = false
	s.exitMarkSeq = s.nextSeq
	s.exitFbStart = s.feedback
	// Safety net: if no post-trip feedback ever arrives (stall, loss),
	// finish anyway with whatever was counted.
	s.exitTimer.Arm(4 * s.rtt.RTO())
}

// ExitMeasuring reports whether the exit measurement is in progress.
func (s *Sender) ExitMeasuring() bool { return s.exitMeasuring }

// observeExitFeedback feeds the measurement with a feedback batch that
// advanced the cumulative count by delta cells. It opens the counting
// window on the first feedback that covers a post-trip cell, and inside
// the window records inter-feedback spacings for the dispersion
// estimator.
func (s *Sender) observeExitFeedback(delta uint64) {
	if !s.exitMeasuring {
		return
	}
	now := s.clock.Now()
	if !s.exitAligned {
		if s.feedback <= s.exitMarkSeq {
			return
		}
		s.exitAligned = true
		s.exitFbStart = s.exitMarkSeq // count every post-trip cell covered so far
		s.exitSpacings = s.exitSpacings[:0]
		s.exitLastFb = now
		window := s.baseRtt
		if window <= 0 {
			window = s.rtt.RTO()
		}
		s.exitTimer.Arm(window)
		return
	}
	// A batch of delta cells at one instant is delta samples: one at the
	// observed spacing, the rest back-to-back (zero spacing).
	s.exitSpacings = append(s.exitSpacings, now.Sub(s.exitLastFb))
	for i := uint64(1); i < delta; i++ {
		s.exitSpacings = append(s.exitSpacings, 0)
	}
	s.exitLastFb = now
}

// onExitMeasured closes the measurement window and performs the exit.
//
// Two estimators are combined, each an over-estimate in a failure mode
// the other does not share. The raw count of cells confirmed moving
// within one baseRtt over-estimates when the successor released queued
// backlog inside the window (a burst of "moving" cells that is not a
// sustainable rate); the dispersion estimate — baseRtt divided by the
// median inter-feedback spacing — over-estimates when the successor
// forwards in line-rate bursts separated by idle gaps. Their minimum is
// a safe window in both regimes, in line with the paper's stance that
// under-estimation is acceptable ("this is in line with our goal of
// being safe").
func (s *Sender) onExitMeasured() {
	if !s.exitMeasuring {
		return
	}
	if s.exitStarved {
		// The measurement is void: the sender idled, so the count says
		// nothing about the successor's capacity. Keep the window. In
		// startup, still hand over to avoidance — the delay signal that
		// opened the measurement was real, and the app-limited guard
		// plus re-probe govern the window from here.
		s.exitMeasuring = false
		if s.phase == PhaseStartup {
			s.ExitStartup(s.cwnd)
		} else {
			s.endRound()
			s.pump()
		}
		return
	}
	est := float64(s.feedback - s.exitFbStart)
	if len(s.exitSpacings) >= 4 && s.baseRtt > 0 {
		sorted := make([]time.Duration, len(s.exitSpacings))
		copy(sorted, s.exitSpacings)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if med := sorted[len(sorted)/2]; med > 0 {
			if disp := float64(s.baseRtt) / float64(med); disp < est {
				est = disp
			}
		}
	}
	if s.phase == PhaseStartup {
		// If the count saturated the measurement's own in-flight
		// allowance (~2× the window), the probe hit its self-imposed
		// ceiling, not the network's: adopt the estimate and keep
		// ramping instead of exiting below capacity.
		if est >= 1.8*s.cwnd {
			s.exitMeasuring = false
			s.SetCwnd(est)
			s.endRound()
			s.pump()
			return
		}
		s.ExitStartup(est) // clears exitMeasuring
		return
	}
	// Severe remeasure in avoidance: only ever shrink — growth goes
	// through the re-probe path, which validates it against the network.
	s.exitMeasuring = false
	if est < s.cwnd {
		s.SetCwnd(est)
	}
	s.endRound()
	s.pump()
}

// enterStartup re-enters the ramp-up phase (RTO recovery or the dynamic
// re-probe extension), keeping the current window as the new ramp base.
func (s *Sender) enterStartup() {
	s.phase = PhaseStartup
	s.exitMeasuring = false
	s.exitTimer.Stop()
	s.underuseRounds = 0
	s.endRound()
	s.notifyCwnd()
}

func (s *Sender) notifyCwnd() {
	if s.cfg.OnCwnd != nil {
		s.cfg.OnCwnd(s.cwnd, s.phase)
	}
}

// --- data path --------------------------------------------------------

// Enqueue submits a cell for transmission. Cells leave in FIFO order
// when the window (or, in burst mode, the round budget) allows.
func (s *Sender) Enqueue(c *cell.Cell) {
	if c == nil {
		panic("transport: Enqueue(nil)")
	}
	if s.closed {
		panic("transport: Enqueue on a closed sender")
	}
	if s.qhead == len(s.queue) && s.qhead > 0 {
		s.queue = s.queue[:0]
		s.qhead = 0
	}
	s.queue = append(s.queue, c)
	if s.cfg.OnHeld != nil {
		s.cfg.OnHeld(1)
	}
	s.pump()
	s.updateProbeTimer()
}

// burstMode reports whether transmission is currently governed by
// discrete round budgets. During the exit measurement the sender
// switches to continuous window refill: a train boundary would open a
// feedback gap of a full RTT inside the measurement window and starve
// the count.
func (s *Sender) burstMode() bool {
	return s.phase == PhaseStartup && s.cfg.Startup.BurstMode() && !s.exitMeasuring
}

// pump transmits as long as data and window allow.
func (s *Sender) pump() {
	first := s.nextSeq
	defer func() {
		// Batched signalling: one cumulative first-transmission report
		// for the whole drain (see Config.BatchSignals).
		if s.cfg.BatchSignals && s.nextSeq > first && s.cfg.OnFirstTransmit != nil {
			s.cfg.OnFirstTransmit(s.nextSeq)
		}
		// A drain measurement is only valid while the window is the
		// binding constraint. Running out of data mid-measurement means
		// the count reflects upstream supply, not successor capacity.
		if s.exitMeasuring && s.QueueLen() == 0 && s.InFlight() < int(math.Floor(s.cwnd)) {
			s.exitStarved = true
		}
	}()
	for s.QueueLen() > 0 {
		if s.burstMode() {
			if !s.roundActive {
				s.beginRound()
			}
			if s.roundBudget <= 0 {
				return // train sent; wait for the round's feedback
			}
		} else {
			limit := s.cwnd
			if s.exitMeasuring && s.phase == PhaseStartup {
				// The measurement needs the successor saturated: allow
				// the doubling this round would have performed anyway,
				// so the counted drain reflects capacity rather than
				// the (possibly still sub-optimal) tripped window. This
				// is the "temporary overshooting" the compensation then
				// cancels.
				limit = 2 * s.cwnd
			}
			if s.InFlight() >= int(math.Floor(limit)) {
				return
			}
			if !s.roundActive {
				s.beginRound()
			}
		}
		s.transmitNext()
	}
}

// beginRound opens a measurement round. In burst mode the budget is the
// whole window; in continuous mode the boundary is pinned after each
// transmission (see transmitNext) so a round spans roughly one RTT.
func (s *Sender) beginRound() {
	s.roundActive = true
	s.roundStartFb = s.feedback
	s.roundRttSum = 0
	s.roundRttCnt = 0
	s.roundHasFb = false
	s.roundStartCwnd = s.cwnd
	s.roundMaxInFlight = s.InFlight()
	// The round completes when feedback covers its boundary. In burst
	// mode the boundary grows to cover the whole train (see
	// transmitNext); in continuous mode it is pinned to the first cell
	// of the round, so a round spans roughly one RTT.
	s.roundBoundary = s.nextSeq + 1
	if s.burstMode() {
		s.roundBudget = int(math.Floor(s.cwnd))
	} else {
		s.roundBudget = 0
	}
}

func (s *Sender) endRound() {
	s.roundActive = false
	s.roundBudget = 0
}

func (s *Sender) transmitNext() {
	c := s.queue[s.qhead]
	s.queue[s.qhead] = nil
	s.qhead++

	seq := s.nextSeq
	s.nextSeq++
	s.retain[seq] = c
	s.sendTime[seq] = s.clock.Now()
	if s.roundActive && s.burstMode() {
		s.roundBudget--
		if seq >= s.roundBoundary {
			s.roundBoundary = seq + 1
		}
	}
	if s.roundActive {
		if inf := s.InFlight(); inf > s.roundMaxInFlight {
			s.roundMaxInFlight = inf
		}
	}
	ok := s.cfg.Send(Segment{Kind: KindData, Circ: s.cfg.Circ, Seq: seq, Cell: c})
	if !ok {
		s.stats.WireRejected++
	}
	s.stats.Transmitted++
	if !s.rtoTimer.Armed() {
		s.rtoTimer.Arm(s.rtt.RTO())
	}
	if s.cfg.OnFirstTransmit != nil && !s.cfg.BatchSignals {
		s.cfg.OnFirstTransmit(s.nextSeq)
	}
}

// HandleAck processes a cumulative reception acknowledgment: count cells
// have been received in order by the peer.
func (s *Sender) HandleAck(count uint64) {
	if s.closed {
		return
	}
	if count > s.nextSeq {
		panic(fmt.Sprintf("transport: ack count %d beyond transmitted %d", count, s.nextSeq))
	}
	if count <= s.acked {
		return // stale or duplicate
	}
	newly := int(count - s.acked)
	// Sample only the newest covered sequence (and only if it was never
	// retransmitted — Karn's rule). Older cells in the batch were held
	// back by a gap, so "now − sendTime" would grossly overestimate
	// their RTT and pollute the RTO.
	if last := count - 1; !s.rtx[last] {
		if t, ok := s.sendTime[last]; ok {
			s.rtt.Sample(s.clock.Now().Sub(t))
		}
	}
	for seq := s.acked; seq < count; seq++ {
		delete(s.retain, seq)
		delete(s.rtx, seq)
		if seq < s.feedback {
			delete(s.sendTime, seq)
		}
	}
	s.acked = count
	if s.cfg.OnHeld != nil {
		s.cfg.OnHeld(-newly)
	}

	if s.Unacked() == 0 {
		s.rtoTimer.Stop()
	} else {
		s.rtoTimer.Arm(s.rtt.RTO())
	}
	if s.phase == PhaseStartup {
		s.cfg.Startup.OnAck(s, newly)
	}
	s.pump()
	s.updateProbeTimer()
}

// HandleFeedback processes a cumulative feedback report: count cells
// have been forwarded onward by the peer.
func (s *Sender) HandleFeedback(count uint64) {
	if s.closed {
		return
	}
	if count > s.nextSeq {
		panic(fmt.Sprintf("transport: feedback count %d beyond transmitted %d", count, s.nextSeq))
	}
	if count <= s.feedback {
		return
	}
	now := s.clock.Now()
	if s.roundActive && !s.roundHasFb {
		s.roundHasFb = true
		s.roundFirstFb = now
	}
	// As with ACKs, sample only the newest covered sequence: a batch
	// report (after a lost FEEDBACK healed) covers cells whose
	// individual reports are long gone, and their apparent RTTs would
	// be inflated by the healing delay, not by queueing.
	if last := count - 1; !s.rtx[last] {
		if t, ok := s.sendTime[last]; ok {
			rtt := now.Sub(t)
			if s.baseRtt == 0 || rtt < s.baseRtt {
				s.baseRtt = rtt
			}
			if s.roundActive {
				s.roundRttSum += rtt
				s.roundRttCnt++
			}
		}
	}
	for seq := s.feedback; seq < count; seq++ {
		if seq < s.acked {
			delete(s.sendTime, seq)
		}
	}
	delta := count - s.feedback
	s.feedback = count
	s.observeExitFeedback(delta)

	if s.phase == PhaseStartup {
		s.cfg.Startup.OnFeedback(s)
	}
	// The policy may have exited startup and reset the round.
	if s.roundActive && s.feedback >= s.roundBoundary {
		s.completeRound()
	}
	s.pump()
	s.updateProbeTimer()
}

// completeRound closes the measurement round and lets the phase logic
// act on the Vegas diff.
func (s *Sender) completeRound() {
	diff := s.VegasDiff()
	// The round was application-limited if in-flight data never reached
	// the window that was in force when it began: the window was not the
	// binding constraint, so its size was not actually probed.
	s.lastRoundAppLimited = s.roundMaxInFlight < int(math.Floor(s.roundStartCwnd))
	s.stats.Rounds++
	s.endRound()

	switch s.phase {
	case PhaseStartup:
		s.cfg.Startup.OnRoundComplete(s, diff)
	case PhaseAvoidance:
		if s.cfg.DisableAvoidance {
			break
		}
		if s.exitMeasuring {
			break // a remeasure is in progress; let it conclude
		}
		switch {
		case diff < s.cfg.Alpha:
			if s.lastRoundAppLimited {
				break // a slack round proves nothing; hold the window
			}
			// Dynamic re-probe extension: after RestartRounds
			// consecutive window-limited underuse rounds with an
			// essentially empty queue estimate, conditions have
			// demonstrably improved — grow multiplicatively instead of
			// crawling one cell per RTT. diff ≥ α/2 means a queue is
			// already forming, so acceleration stops there.
			s.underuseRounds++
			if s.cfg.RestartRounds > 0 && s.underuseRounds >= s.restartThreshold && diff < s.cfg.Alpha/2 {
				if !s.accelPhase {
					s.accelPhase = true
					// Judge the previous probe by where the window
					// rests NOW, after any correction: a probe whose
					// gains were reverted was futile, so the next one
					// waits longer (bounded); a kept gain resets the
					// cadence.
					if s.accelStartCwnd > 0 {
						if s.cwnd < 1.5*s.accelStartCwnd {
							if s.restartThreshold < 32 {
								s.restartThreshold *= 2
							}
						} else {
							s.restartThreshold = s.cfg.RestartRounds
						}
					}
					s.accelStartCwnd = s.cwnd
				}
				s.stats.Restarts++
				s.SetCwnd(s.cwnd * 1.5)
			} else {
				s.SetCwnd(s.cwnd + 1)
			}
		case s.cfg.SevereRemeasure > 0 && diff > s.cfg.SevereRemeasure*s.cfg.Beta:
			s.endUnderuseStreak()
			s.beginMeasurement()
		case diff > s.cfg.Beta:
			s.endUnderuseStreak()
			s.SetCwnd(s.cwnd - 1)
		default:
			s.endUnderuseStreak()
		}
	}
	// A new round begins lazily with the next transmission.
}

// endUnderuseStreak closes an accelerated-growth phase; the phase's
// verdict (futile or successful) is judged when the next phase starts,
// after any correction has settled the window.
func (s *Sender) endUnderuseStreak() {
	s.underuseRounds = 0
	s.accelPhase = false
}

// updateProbeTimer arms the feedback probe when the sender is waiting
// purely on feedback (everything sent has been received) and stops it
// otherwise. A lost tail FEEDBACK report is unrecoverable without this:
// no retransmission will trigger a fresh one.
func (s *Sender) updateProbeTimer() {
	waitingOnFeedback := s.feedback < s.nextSeq && s.acked == s.nextSeq
	if waitingOnFeedback {
		if !s.probeTimer.Armed() {
			s.probeTimer.Arm(s.rtt.RTO() * s.probeBackoff)
		}
	} else {
		s.probeTimer.Stop()
		s.probeBackoff = 1
	}
}

// onProbe requests a fresh cumulative report from the peer.
func (s *Sender) onProbe() {
	if !(s.feedback < s.nextSeq && s.acked == s.nextSeq) {
		s.probeBackoff = 1
		return
	}
	s.stats.Probes++
	if !s.cfg.Send(Segment{Kind: KindProbe, Circ: s.cfg.Circ, Count: s.feedback}) {
		s.stats.WireRejected++
	}
	if s.probeBackoff < 32 {
		s.probeBackoff *= 2
	}
	s.probeTimer.Arm(s.rtt.RTO() * s.probeBackoff)
}

// onRTO fires when the oldest unacked cell's retransmission timer
// expires: retransmit it, back off, and restart the ramp from the
// initial window (loss means the estimate was wrong).
func (s *Sender) onRTO() {
	if s.closed {
		return
	}
	if s.Unacked() == 0 {
		return
	}
	seq := s.acked
	c, ok := s.retain[seq]
	if !ok {
		return
	}
	s.rtx[seq] = true
	s.stats.Retransmitted++
	s.stats.RTOs++
	if !s.cfg.Send(Segment{Kind: KindData, Circ: s.cfg.Circ, Seq: seq, Cell: c}) {
		s.stats.WireRejected++
	}
	s.rtt.Backoff()
	s.rtoTimer.Arm(s.rtt.RTO())

	s.SetCwnd(s.cfg.InitialCwnd)
	if s.phase != PhaseStartup && !s.cfg.DisableAvoidance {
		s.enterStartup()
	} else {
		s.endRound()
	}
}

// Idle reports whether the sender has nothing queued and nothing in
// flight (transfer drained through this hop).
func (s *Sender) Idle() bool {
	return s.QueueLen() == 0 && s.nextSeq == s.acked && s.nextSeq == s.feedback
}

// DebugState renders internal sender state for diagnostics.
func (s *Sender) DebugState() string {
	return fmt.Sprintf("phase=%v cwnd=%.1f measuring=%v aligned=%v starved=%v roundActive=%v budget=%d boundary=%d sent=%d acked=%d fb=%d queue=%d inflight=%d exitTimerArmed=%v rtoArmed=%v",
		s.phase, s.cwnd, s.exitMeasuring, s.exitAligned, s.exitStarved, s.roundActive, s.roundBudget, s.roundBoundary,
		s.nextSeq, s.acked, s.feedback, s.QueueLen(), s.InFlight(), s.exitTimer.Armed(), s.rtoTimer.Armed())
}
