package transport

import (
	"math"
	"testing"
	"time"

	"circuitstart/internal/units"
)

func TestReliableInOrderTransfer(t *testing.T) {
	h := newHopHarness(t, harnessConfig{})
	h.sendCells(100)
	h.run(10 * time.Second)
	h.assertDeliveredInOrder(100)
	if !h.sender.Idle() {
		t.Errorf("sender not idle: queue=%d unacked=%d inflight=%d",
			h.sender.QueueLen(), h.sender.Unacked(), h.sender.InFlight())
	}
	st := h.sender.Stats()
	if st.Transmitted != 100 || st.Retransmitted != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Acked != 100 || st.Feedback != 100 {
		t.Errorf("acked=%d feedback=%d, want 100/100", st.Acked, st.Feedback)
	}
}

func TestCircuitStartDoublesPerRound(t *testing.T) {
	var cwnds []float64
	h := newHopHarness(t, harnessConfig{senderCfg: Config{
		Startup: NewCircuitStart(),
		OnCwnd: func(c float64, p Phase) {
			if p == PhaseStartup {
				cwnds = append(cwnds, c)
			}
		},
	}})
	// Unconstrained successor: the ramp should double cleanly.
	h.sendCells(300)
	h.run(2 * time.Second)
	h.assertDeliveredInOrder(300)
	// Trace starts at 2 and doubles while startup lasts: 2,4,8,...
	if len(cwnds) < 4 {
		t.Fatalf("cwnd trace too short: %v", cwnds)
	}
	if cwnds[0] != 2 {
		t.Errorf("initial cwnd = %v, want 2 (the paper's initial window)", cwnds[0])
	}
	for i := 1; i < len(cwnds); i++ {
		if cwnds[i] != cwnds[i-1]*2 {
			t.Errorf("cwnd step %d: %v -> %v, want doubling; full trace %v",
				i, cwnds[i-1], cwnds[i], cwnds)
			break
		}
	}
}

func TestCircuitStartExitsWithCompensationAtBottleneck(t *testing.T) {
	// Successor forwards at 4 Mbit/s while the path runs at 16 Mbit/s:
	// feedback RTTs inflate during trains and CircuitStart must exit
	// with the compensated window instead of ramping forever.
	h := newHopHarness(t, harnessConfig{
		fwdRate: units.Mbps(4),
	})
	h.sendCells(800)
	h.run(20 * time.Second)
	h.assertDeliveredInOrder(800)

	st := h.sender.Stats()
	if st.StartupExits != 1 {
		t.Fatalf("StartupExits = %d, want 1", st.StartupExits)
	}
	if h.sender.Phase() != PhaseAvoidance {
		t.Errorf("phase = %v, want avoidance", h.sender.Phase())
	}
	// The optimal window is bottleneck rate × base feedback RTT.
	base := h.sender.BaseRTT()
	optimal := float64(units.BDP(units.Mbps(4), base)) / float64(DataWireSize)
	if st.ExitCwnd <= 2 {
		t.Errorf("ExitCwnd = %v: compensation collapsed to the floor", st.ExitCwnd)
	}
	if st.ExitCwnd > 2*optimal {
		t.Errorf("ExitCwnd = %v overshoots the optimal %v by more than 2x",
			st.ExitCwnd, optimal)
	}
	// Safety goal: compensation must not leave a massively inflated
	// window (the paper: halving "can still massively overshoot").
	t.Logf("exit cwnd %.1f cells, analytic optimal %.1f cells, baseRTT %v",
		st.ExitCwnd, optimal, base)
}

func TestClassicSlowStartHalvesOnExit(t *testing.T) {
	var preExit float64
	h := newHopHarness(t, harnessConfig{
		fwdRate: units.Mbps(4),
		senderCfg: Config{
			Startup: NewClassicSlowStart(),
			OnCwnd: func(c float64, p Phase) {
				if p == PhaseStartup {
					preExit = c
				}
			},
		},
	})
	h.sendCells(800)
	h.run(20 * time.Second)
	h.assertDeliveredInOrder(800)
	st := h.sender.Stats()
	if st.StartupExits != 1 {
		t.Fatalf("StartupExits = %d, want 1", st.StartupExits)
	}
	if got := st.ExitCwnd; got != preExit/2 && got != h.sender.cfg.MinCwnd {
		t.Errorf("ExitCwnd = %v, want half of pre-exit %v", got, preExit)
	}
}

func TestClassicOvershootsMoreThanCircuitStart(t *testing.T) {
	// The paper's core claim: the feedback-clocked rounds with
	// compensation leave startup with a window close to optimal, while
	// the ACK-clocked ramp exits much higher (it keeps growing while
	// the bottleneck signal is still in flight).
	run := func(policy Startup) (exitCwnd, maxCwnd, optimal float64) {
		var peak float64
		h := newHopHarness(t, harnessConfig{
			fwdRate: units.Mbps(4),
			senderCfg: Config{
				Startup: policy,
				OnCwnd: func(c float64, p Phase) {
					if c > peak {
						peak = c
					}
				},
			},
		})
		h.sendCells(800)
		h.run(20 * time.Second)
		opt := float64(units.BDP(units.Mbps(4), h.sender.BaseRTT())) / float64(DataWireSize)
		return h.sender.Stats().ExitCwnd, peak, opt
	}
	csExit, csPeak, opt := run(NewCircuitStart())
	ssExit, ssPeak, _ := run(NewClassicSlowStart())
	t.Logf("optimal=%.1f; circuitstart: exit=%.1f peak=%.1f; slowstart: exit=%.1f peak=%.1f",
		opt, csExit, csPeak, ssExit, ssPeak)
	if ssPeak <= csPeak {
		t.Errorf("classic peak %v should exceed circuitstart peak %v", ssPeak, csPeak)
	}
	csErr := math.Abs(csExit - opt)
	ssErr := math.Abs(ssExit - opt)
	if csErr >= ssErr {
		t.Errorf("circuitstart exit error %.1f should beat classic %.1f (exit %v vs %v, optimal %v)",
			csErr, ssErr, csExit, ssExit, opt)
	}
}

func TestBurstModeRespectsRoundBudget(t *testing.T) {
	// In burst mode, in-flight data never exceeds the round's window —
	// except during the exit measurement, which saturates the successor
	// with up to double the tripped window (see BeginExitMeasurement).
	h := newHopHarness(t, harnessConfig{fwdRate: units.Mbps(2)})
	maxInflight := 0
	maxAllowed := 0.0
	h.sendCells(400)
	for h.clock.Pending() > 0 {
		if !h.clock.Step() {
			break
		}
		if h.sender.Phase() == PhaseStartup {
			if f := h.sender.InFlight(); f > maxInflight {
				maxInflight = f
			}
			allowed := h.sender.Cwnd()
			if h.sender.ExitMeasuring() {
				allowed *= 2
			}
			if allowed > maxAllowed {
				maxAllowed = allowed
			}
		}
		if h.clock.Now() > simSecond {
			break
		}
	}
	if maxInflight > int(maxAllowed) {
		t.Errorf("in-flight %d exceeded the startup window %v", maxInflight, maxAllowed)
	}
}

func TestContinuousModeRespectsWindow(t *testing.T) {
	// The window invariant holds at transmission time: a new cell may
	// only leave while occupancy is within the window. (Occupancy can
	// exceed a freshly *reduced* window until feedback drains — that is
	// correct and not a violation.)
	var h *hopHarness
	violations := 0
	h = newHopHarness(t, harnessConfig{
		fwdRate: units.Mbps(2),
		senderCfg: Config{
			Startup: NewClassicSlowStart(),
			OnFirstTransmit: func(count uint64) {
				// The cell just sent is included in InFlight, so the
				// pre-send occupancy was InFlight()-1.
				if float64(h.sender.InFlight()-1) >= h.sender.Cwnd() {
					violations++
				}
			},
		},
	})
	h.sendCells(400)
	h.run(60 * time.Second)
	h.assertDeliveredInOrder(400)
	if violations > 0 {
		t.Errorf("%d transmissions happened with a full window", violations)
	}
}

func TestFixedWindowNeverAdapts(t *testing.T) {
	changes := 0
	h := newHopHarness(t, harnessConfig{
		fwdRate: units.Mbps(2),
		senderCfg: Config{
			Startup:          NoStartup{},
			InitialCwnd:      10,
			DisableAvoidance: true,
			OnCwnd:           func(c float64, p Phase) { changes++ },
		},
	})
	h.sendCells(200)
	h.run(30 * time.Second)
	h.assertDeliveredInOrder(200)
	if h.sender.Cwnd() != 10 {
		t.Errorf("cwnd = %v, want fixed 10", h.sender.Cwnd())
	}
	if changes != 1 { // only the initial notification
		t.Errorf("cwnd changed %d times, want 1 (initial)", changes)
	}
}

func TestVegasAvoidanceConvergesNearOptimal(t *testing.T) {
	// Long transfer: after startup, Vegas should hold the window in a
	// band around the bandwidth-delay product of the bottleneck.
	h := newHopHarness(t, harnessConfig{fwdRate: units.Mbps(4)})
	h.sendCells(3000)
	h.run(60 * time.Second)
	h.assertDeliveredInOrder(3000)
	base := h.sender.BaseRTT()
	optimal := float64(units.BDP(units.Mbps(4), base)) / float64(DataWireSize)
	got := h.sender.Cwnd()
	// The Vegas band keeps a few extra cells queued (α..β); accept a
	// generous band around the analytic optimum.
	if got < optimal*0.5 || got > optimal*1.8 {
		t.Errorf("steady-state cwnd %.1f outside [%.1f, %.1f] (optimal %.1f)",
			got, optimal*0.5, optimal*1.8, optimal)
	}
}

func TestWindowClockAckAblation(t *testing.T) {
	// With ACK-based window accounting the sender can stuff far more
	// into the successor's queue: occupancy is bounded by reception,
	// not forwarding.
	run := func(clock WindowClock) int {
		h := newHopHarness(t, harnessConfig{
			fwdRate:   units.Mbps(2),
			senderCfg: Config{WindowClock: clock, Startup: NewClassicSlowStart()},
		})
		h.sendCells(600)
		maxQueued := 0
		for h.clock.Pending() > 0 {
			if !h.clock.Step() {
				break
			}
			if q := h.fwdQueue; q > maxQueued {
				maxQueued = q
			}
		}
		return maxQueued
	}
	fbQueue := run(ClockFeedback)
	ackQueue := run(ClockAck)
	t.Logf("max successor queue: feedback-clocked=%d, ack-clocked=%d", fbQueue, ackQueue)
	if ackQueue <= fbQueue {
		t.Errorf("ack-clocked window should queue more at the successor (%d <= %d)",
			ackQueue, fbQueue)
	}
}

func TestSenderValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	clock := newClockForTest()
	mustPanic("nil clock", func() { NewSender(Config{Send: func(Segment) bool { return true }}) })
	mustPanic("nil send", func() { NewSender(Config{Clock: clock}) })
	mustPanic("alpha>beta", func() {
		NewSender(Config{Clock: clock, Send: func(Segment) bool { return true }, Alpha: 5, Beta: 1})
	})
	s := NewSender(Config{Clock: clock, Send: func(Segment) bool { return true }})
	mustPanic("nil cell", func() { s.Enqueue(nil) })
	mustPanic("ack beyond sent", func() { s.HandleAck(99) })
	mustPanic("feedback beyond sent", func() { s.HandleFeedback(99) })
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{
		"circuitstart", "slowstart", "circuitstart-halve", "slowstart-compensated", "fixed",
	} {
		p, err := PolicyByName(name, 0)
		if err != nil {
			t.Errorf("PolicyByName(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PolicyByName("bogus", 0); err == nil {
		t.Error("unknown policy accepted")
	}
	p, err := PolicyByName("circuitstart", 8)
	if err != nil {
		t.Fatal(err)
	}
	if cs := p.(*CircuitStart); cs.Gamma != 8 {
		t.Errorf("gamma = %v, want 8", cs.Gamma)
	}
	p, _ = PolicyByName("circuitstart", 0)
	if cs := p.(*CircuitStart); cs.Gamma != DefaultGamma {
		t.Errorf("default gamma = %v, want %v", cs.Gamma, DefaultGamma)
	}
}

func TestPhaseAndClockStrings(t *testing.T) {
	if PhaseStartup.String() != "startup" || PhaseAvoidance.String() != "avoidance" {
		t.Error("phase strings wrong")
	}
	if Phase(9).String() != "Phase(9)" {
		t.Error("unknown phase string wrong")
	}
	if ClockFeedback.String() != "feedback" || ClockAck.String() != "ack" {
		t.Error("window clock strings wrong")
	}
	if KindData.String() != "DATA" || KindAck.String() != "ACK" || KindFeedback.String() != "FEEDBACK" {
		t.Error("kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestSegmentWireSizes(t *testing.T) {
	d := Segment{Kind: KindData}
	if d.WireSize() != DataWireSize || DataWireSize != 528 {
		t.Errorf("data wire size = %v", d.WireSize())
	}
	a := Segment{Kind: KindAck}
	if a.WireSize() != CtrlWireSize {
		t.Errorf("ack wire size = %v", a.WireSize())
	}
	if got := (Segment{Kind: KindData, Circ: 1, Seq: 2}).String(); got != "DATA{fwd circ=1 seq=2}" {
		t.Errorf("String = %q", got)
	}
	if got := (Segment{Kind: KindAck, Circ: 1, Count: 3}).String(); got != "ACK{fwd circ=1 count=3}" {
		t.Errorf("String = %q", got)
	}
}
