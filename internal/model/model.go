// Package model computes analytic baselines for the experiments — most
// importantly the source's *optimal congestion window* in a multi-hop
// circuit, the dashed reference line of the paper's Figure 1: "As a
// baseline, we developed a model to calculate the source's optimal
// congestion window in a multi-hop scenario."
//
// The model is a fluid approximation over the topology fabric: every
// hop traverses its endpoints' access links plus any fabric-internal
// transit links (backbone trunks) between them, a hop's no-load feedback
// round-trip is two one-way traversals (DATA forward, FEEDBACK control
// segment back), and in steady state each hop's feedback arrives at the
// rate of the slowest link downstream of it (backpressure). The minimal
// window that fully utilizes the circuit is then
//
//	W_opt(hop i) = downstreamBottleneckRate(i) × feedbackRTT(i)
//
// in cells — exactly the "length of the packet train that could be
// forwarded by the successor without additional delay" that CircuitStart
// estimates empirically.
package model

import (
	"fmt"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
)

// Node is one participant on the circuit's node sequence (source,
// relays, sink) described by its access parameters.
type Node struct {
	// UpRate and DownRate are the node's access link capacities.
	UpRate, DownRate units.DataRate
	// Delay is the one-way propagation delay of each access link.
	Delay time.Duration
}

// Transit is one fabric-internal link (a backbone trunk) a hop's frames
// cross between the two nodes' access links: one serialization at Rate
// plus one propagation Delay per traversal.
type Transit struct {
	Rate  units.DataRate
	Delay time.Duration
}

// FromAccess converts a netem access configuration to a model node.
func FromAccess(cfg netem.AccessConfig) Node {
	return Node{UpRate: cfg.UpRate, DownRate: cfg.DownRate, Delay: cfg.Delay}
}

// Path is the full node sequence of a circuit: source, each relay in
// order, sink. It must contain at least two nodes (one hop). On a
// routed fabric each hop may additionally cross transit links, possibly
// along different physical routes per direction (equal-cost paths).
type Path struct {
	nodes []Node
	// fwd[i] lists the fabric-internal links hop i crosses from node i
	// toward node i+1; rev[i] the links crossed back from node i+1
	// toward node i. Both nil on a star.
	fwd, rev [][]Transit
}

// NewPath validates the node sequence and builds a Path.
func NewPath(nodes []Node) Path {
	return NewPathWithTransits(nodes, nil, nil)
}

// NewPathWithTransits builds a Path whose hop i crosses forward[i]
// toward the sink and reverse[i] back toward the source — the analytic
// mirror of a circuit routed over a GraphFabric, where equal-cost
// routing may pick different physical paths per direction. Each list
// may be nil (a star, or a symmetric route mirroring the other list)
// or must have one entry (possibly nil) per hop.
func NewPathWithTransits(nodes []Node, forward, reverse [][]Transit) Path {
	if len(nodes) < 2 {
		panic(fmt.Sprintf("model: path needs >= 2 nodes, got %d", len(nodes)))
	}
	for i, n := range nodes {
		if n.UpRate <= 0 || n.DownRate <= 0 {
			panic(fmt.Sprintf("model: node %d with non-positive rate", i))
		}
		if n.Delay < 0 {
			panic(fmt.Sprintf("model: node %d with negative delay", i))
		}
	}
	p := Path{nodes: make([]Node, len(nodes))}
	copy(p.nodes, nodes)
	p.fwd = copyTransits(nodes, forward)
	p.rev = copyTransits(nodes, reverse)
	if p.rev == nil {
		p.rev = p.fwd
	} else if p.fwd == nil {
		p.fwd = p.rev
	}
	return p
}

// copyTransits validates and deep-copies one direction's transit lists.
func copyTransits(nodes []Node, transits [][]Transit) [][]Transit {
	if transits == nil {
		return nil
	}
	if len(transits) != len(nodes)-1 {
		panic(fmt.Sprintf("model: %d transit hops for %d-node path", len(transits), len(nodes)))
	}
	out := make([][]Transit, len(transits))
	for i, ts := range transits {
		for _, t := range ts {
			if t.Rate <= 0 {
				panic(fmt.Sprintf("model: hop %d transit with non-positive rate", i))
			}
			if t.Delay < 0 {
				panic(fmt.Sprintf("model: hop %d transit with negative delay", i))
			}
		}
		out[i] = append([]Transit(nil), ts...)
	}
	return out
}

// PathFromAccess builds a Path from netem access configurations.
func PathFromAccess(cfgs []netem.AccessConfig) Path {
	nodes := make([]Node, len(cfgs))
	for i, c := range cfgs {
		nodes[i] = FromAccess(c)
	}
	return NewPath(nodes)
}

// Hops returns the number of transport hops (nodes − 1).
func (p Path) Hops() int { return len(p.nodes) - 1 }

// Node returns node i of the sequence (0 = source).
func (p Path) Node(i int) Node { return p.nodes[i] }

// hopTransits returns the transit links crossed travelling from
// adjacent node a to adjacent node b: the hop's forward route when
// a < b, its reverse route otherwise.
func (p Path) hopTransits(a, b int) []Transit {
	if a < b {
		if p.fwd == nil {
			return nil
		}
		return p.fwd[a]
	}
	if p.rev == nil {
		return nil
	}
	return p.rev[b]
}

// oneWay is the no-load latency for a frame of the given size between
// adjacent nodes a and b through the fabric: serialize up, propagate,
// one serialization and propagation per transit link, serialize down,
// propagate.
func (p Path) oneWay(a, b int, size units.DataSize) time.Duration {
	na, nb := p.nodes[a], p.nodes[b]
	d := na.UpRate.TransmissionTime(size) + na.Delay +
		nb.DownRate.TransmissionTime(size) + nb.Delay
	for _, t := range p.hopTransits(a, b) {
		d += t.Rate.TransmissionTime(size) + t.Delay
	}
	return d
}

// FeedbackRTT returns the no-load DATA→FEEDBACK round-trip of hop i
// (sender = node i, receiver = node i+1): a full cell forward, plus a
// control segment back. The receiver's forwarding signal itself is
// instantaneous in an unloaded network — a relay emits feedback the
// moment it begins its own onward transmission, which under no load is
// the moment of delivery.
func (p Path) FeedbackRTT(i int) time.Duration {
	p.checkHop(i)
	return p.oneWay(i, i+1, transport.DataWireSize) +
		p.oneWay(i+1, i, transport.CtrlWireSize)
}

// AckRTT returns the no-load DATA→ACK round-trip of hop i. It differs
// from FeedbackRTT only in name under no load, but is kept distinct for
// clarity in ablation reports.
func (p Path) AckRTT(i int) time.Duration {
	p.checkHop(i)
	return p.oneWay(i, i+1, transport.DataWireSize) +
		p.oneWay(i+1, i, transport.CtrlWireSize)
}

// CircuitRTT returns the no-load source→sink→source round-trip: a DATA
// cell all the way forward, a control segment all the way back.
func (p Path) CircuitRTT() time.Duration {
	var d time.Duration
	for i := 0; i < p.Hops(); i++ {
		d += p.oneWay(i, i+1, transport.DataWireSize)
		d += p.oneWay(i+1, i, transport.CtrlWireSize)
	}
	return d
}

// linkRate returns the forwarding rate of the data path from node i to
// node i+1: the minimum of i's uplink, any transit links on the
// forward route, and i+1's downlink.
func (p Path) linkRate(i int) units.DataRate {
	rate := p.nodes[i].UpRate
	if down := p.nodes[i+1].DownRate; down < rate {
		rate = down
	}
	for _, t := range p.hopTransits(i, i+1) {
		if t.Rate < rate {
			rate = t.Rate
		}
	}
	return rate
}

// BottleneckRate returns the slowest data-path link rate of the whole
// circuit.
func (p Path) BottleneckRate() units.DataRate {
	return p.downstreamRate(0)
}

// BottleneckHop returns the index of the hop whose link is the circuit
// bottleneck (ties resolve to the hop closest to the source).
func (p Path) BottleneckHop() int {
	best, rate := 0, p.linkRate(0)
	for i := 1; i < p.Hops(); i++ {
		if r := p.linkRate(i); r < rate {
			best, rate = i, r
		}
	}
	return best
}

// downstreamRate returns the slowest link rate on hops i..last — the
// steady-state rate at which hop i's feedback arrives under backpressure.
func (p Path) downstreamRate(i int) units.DataRate {
	p.checkHop(i)
	rate := p.linkRate(i)
	for j := i + 1; j < p.Hops(); j++ {
		if r := p.linkRate(j); r < rate {
			rate = r
		}
	}
	return rate
}

// cellsPerSecond converts a wire rate to DATA cells per second.
func cellsPerSecond(r units.DataRate) float64 {
	return r.BytesPerSecond() / float64(transport.DataWireSize)
}

// OptimalWindowCells returns the minimal window (in cells) at hop i that
// fully utilizes the circuit: feedback arrival rate × feedback RTT.
func (p Path) OptimalWindowCells(i int) float64 {
	return cellsPerSecond(p.downstreamRate(i)) * p.FeedbackRTT(i).Seconds()
}

// OptimalSourceWindowCells returns the optimal window of hop 0 — the
// quantity the paper's dashed line marks.
func (p Path) OptimalSourceWindowCells() float64 { return p.OptimalWindowCells(0) }

// OptimalSourceWindowBytes returns the source's optimal window in
// payload bytes (cells × cell size), the unit of Figure 1's y axis.
func (p Path) OptimalSourceWindowBytes() float64 {
	return p.OptimalSourceWindowCells() * float64(transport.DataWireSize-transport.HeaderSize)
}

// LowerBoundTTLB returns an analytic lower bound on the time-to-last-
// byte of a transfer occupying nCells cells: the pipeline fill (first
// cell's one-way latency to the sink) plus draining the remaining cells
// through the bottleneck. Ramp-up, queueing and control-plane effects
// only add to this, so every simulated TTLB must exceed it.
func (p Path) LowerBoundTTLB(nCells int) time.Duration {
	if nCells <= 0 {
		panic(fmt.Sprintf("model: LowerBoundTTLB(%d)", nCells))
	}
	var first time.Duration
	for i := 0; i < p.Hops(); i++ {
		first += p.oneWay(i, i+1, transport.DataWireSize)
	}
	drain := time.Duration(float64(nCells-1) / cellsPerSecond(p.BottleneckRate()) * float64(time.Second))
	return first + drain
}

func (p Path) checkHop(i int) {
	if i < 0 || i >= p.Hops() {
		panic(fmt.Sprintf("model: hop %d outside path with %d hops", i, p.Hops()))
	}
}
