package model

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
)

func sym(rate units.DataRate, delay time.Duration) Node {
	return Node{UpRate: rate, DownRate: rate, Delay: delay}
}

// fourNode builds source → R1 → R2 → sink with a configurable slow link.
func fourNode(slow int, slowRate units.DataRate) Path {
	nodes := make([]Node, 4)
	for i := range nodes {
		nodes[i] = sym(units.Mbps(100), 5*time.Millisecond)
	}
	nodes[slow].UpRate = slowRate
	nodes[slow].DownRate = slowRate
	return NewPath(nodes)
}

func TestNewPathValidation(t *testing.T) {
	cases := []struct {
		name  string
		nodes []Node
	}{
		{"too short", []Node{sym(units.Mbps(1), 0)}},
		{"zero rate", []Node{sym(0, 0), sym(units.Mbps(1), 0)}},
		{"negative delay", []Node{sym(units.Mbps(1), -time.Millisecond), sym(units.Mbps(1), 0)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			NewPath(c.nodes)
		})
	}
}

func TestPathFromAccess(t *testing.T) {
	cfgs := []netem.AccessConfig{
		netem.Symmetric(units.Mbps(10), time.Millisecond, 0),
		netem.Symmetric(units.Mbps(20), 2*time.Millisecond, 0),
	}
	p := PathFromAccess(cfgs)
	if p.Hops() != 1 {
		t.Fatalf("Hops = %d", p.Hops())
	}
	if p.Node(0).UpRate != units.Mbps(10) || p.Node(1).Delay != 2*time.Millisecond {
		t.Fatalf("nodes not copied: %+v, %+v", p.Node(0), p.Node(1))
	}
}

func TestBottleneckIdentification(t *testing.T) {
	for slot := 1; slot <= 2; slot++ {
		p := fourNode(slot, units.Mbps(8))
		if got := p.BottleneckRate(); got != units.Mbps(8) {
			t.Errorf("slot %d: BottleneckRate = %v", slot, got)
		}
	}
	// Slow node 1 bottlenecks hop 0 (its downlink) — ties resolve to the
	// hop closest to the source.
	if got := fourNode(1, units.Mbps(8)).BottleneckHop(); got != 0 {
		t.Errorf("BottleneckHop(node1 slow) = %d, want 0", got)
	}
	// Slow node 2: its downlink is on hop 1.
	if got := fourNode(2, units.Mbps(8)).BottleneckHop(); got != 1 {
		t.Errorf("BottleneckHop(node2 slow) = %d, want 1", got)
	}
	// Homogeneous path: hop 0 wins ties.
	if got := fourNode(1, units.Mbps(100)).BottleneckHop(); got != 0 {
		t.Errorf("BottleneckHop(homogeneous) = %d, want 0", got)
	}
}

func TestFeedbackRTTAgainstHandComputation(t *testing.T) {
	// 10 Mbit/s everywhere, 5 ms delays. One-way DATA = tx_up + 5ms +
	// tx_down + 5ms; control the same with the smaller size.
	rate := units.Mbps(10)
	p := NewPath([]Node{sym(rate, 5*time.Millisecond), sym(rate, 5*time.Millisecond)})
	txData := rate.TransmissionTime(transport.DataWireSize)
	txCtrl := rate.TransmissionTime(transport.CtrlWireSize)
	want := (txData + 10*time.Millisecond + txData) + (txCtrl + 10*time.Millisecond + txCtrl)
	if got := p.FeedbackRTT(0); got != want {
		t.Fatalf("FeedbackRTT = %v, want %v", got, want)
	}
	if got := p.AckRTT(0); got != want {
		t.Fatalf("AckRTT = %v, want %v", got, want)
	}
}

func TestCircuitRTTIsSumOfHops(t *testing.T) {
	p := fourNode(2, units.Mbps(8))
	var want time.Duration
	for i := 0; i < p.Hops(); i++ {
		want += p.oneWay(i, i+1, transport.DataWireSize) + p.oneWay(i+1, i, transport.CtrlWireSize)
	}
	if got := p.CircuitRTT(); got != want {
		t.Fatalf("CircuitRTT = %v, want %v", got, want)
	}
}

func TestOptimalWindowScalesWithBottleneck(t *testing.T) {
	slowPath := fourNode(2, units.Mbps(4))
	fastPath := fourNode(2, units.Mbps(8))
	ws, wf := slowPath.OptimalSourceWindowCells(), fastPath.OptimalSourceWindowCells()
	if ws <= 0 || wf <= 0 {
		t.Fatalf("non-positive windows %v, %v", ws, wf)
	}
	// Doubling the bottleneck roughly doubles the optimal window (the
	// feedback RTT shifts slightly with serialization time, so allow 15%).
	ratio := wf / ws
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("window ratio = %v, want ≈ 2", ratio)
	}
}

func TestOptimalWindowIndependentOfBottleneckPosition(t *testing.T) {
	// The paper's headline claim needs the target itself to be nearly
	// position-independent for a symmetric path: same bottleneck rate at
	// different hops gives nearly the same source window (feedback RTT of
	// hop 0 changes only via serialization differences).
	near := fourNode(1, units.Mbps(8)).OptimalSourceWindowCells()
	far := fourNode(3, units.Mbps(8)).OptimalSourceWindowCells()
	if math.Abs(near-far)/near > 0.25 {
		t.Fatalf("optimal window varies too much with position: near=%v far=%v", near, far)
	}
}

func TestOptimalWindowBytes(t *testing.T) {
	p := fourNode(2, units.Mbps(8))
	cells := p.OptimalSourceWindowCells()
	bytes := p.OptimalSourceWindowBytes()
	if bytes <= cells {
		t.Fatalf("bytes %v not > cells %v", bytes, cells)
	}
	per := bytes / cells
	if per != float64(transport.DataWireSize-transport.HeaderSize) {
		t.Fatalf("bytes per cell = %v", per)
	}
}

func TestLowerBoundTTLB(t *testing.T) {
	p := fourNode(2, units.Mbps(8))
	one := p.LowerBoundTTLB(1)
	var firstCell time.Duration
	for i := 0; i < p.Hops(); i++ {
		firstCell += p.oneWay(i, i+1, transport.DataWireSize)
	}
	if one != firstCell {
		t.Fatalf("LowerBoundTTLB(1) = %v, want %v", one, firstCell)
	}
	hundred := p.LowerBoundTTLB(100)
	if hundred <= one {
		t.Fatal("more cells should take longer")
	}
	// 99 additional cells at the bottleneck.
	drain := time.Duration(99 * float64(transport.DataWireSize.Bits()) / float64(units.Mbps(8)) * float64(time.Second))
	if diff := hundred - one - drain; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("drain time off by %v", diff)
	}
}

func TestLowerBoundTTLBPanicsOnZeroCells(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	fourNode(1, units.Mbps(8)).LowerBoundTTLB(0)
}

func TestHopIndexValidation(t *testing.T) {
	p := fourNode(1, units.Mbps(8))
	for _, i := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FeedbackRTT(%d) did not panic", i)
				}
			}()
			p.FeedbackRTT(i)
		}()
	}
}

// Property: the optimal window at the source never exceeds the window
// computed for an otherwise-identical path whose bottleneck is faster,
// and downstream rates are monotone along the path.
func TestOptimalWindowMonotoneProperty(t *testing.T) {
	f := func(rawRates [4]uint8, delayMS uint8) bool {
		nodes := make([]Node, 4)
		for i, r := range rawRates {
			mbps := 1 + float64(r%100)
			nodes[i] = sym(units.Mbps(mbps), time.Duration(delayMS%20)*time.Millisecond)
		}
		p := NewPath(nodes)
		// Downstream bottleneck rate is non-decreasing as we move toward
		// the sink (the min is over a shrinking suffix).
		for i := 0; i+1 < p.Hops(); i++ {
			if p.downstreamRate(i) > p.downstreamRate(i+1) {
				return false
			}
		}
		// Speeding every node up never shrinks the optimal window.
		faster := make([]Node, 4)
		for i := range nodes {
			faster[i] = nodes[i]
			faster[i].UpRate *= 2
			faster[i].DownRate *= 2
		}
		return NewPath(faster).OptimalSourceWindowCells() >= p.OptimalSourceWindowCells()*0.99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTransitsBottleneckAndRTT(t *testing.T) {
	// Four fast nodes; hop 1 (R1 → R2) crosses a slow 8 Mbit/s trunk
	// with 10 ms delay. The trunk must become the model's bottleneck
	// and stretch exactly hop 1's RTT.
	nodes := make([]Node, 4)
	for i := range nodes {
		nodes[i] = sym(units.Mbps(100), 5*time.Millisecond)
	}
	trunk := Transit{Rate: units.Mbps(8), Delay: 10 * time.Millisecond}
	p := NewPathWithTransits(nodes, [][]Transit{nil, {trunk}, nil}, nil)
	flat := NewPath(nodes)

	if got := p.BottleneckRate(); got != units.Mbps(8) {
		t.Errorf("BottleneckRate = %v, want the 8 Mbit/s trunk", got)
	}
	if got := p.BottleneckHop(); got != 1 {
		t.Errorf("BottleneckHop = %d, want 1", got)
	}
	// Hop 1's feedback RTT gains the trunk's serialization + delay in
	// both directions; hop 0's is untouched.
	wantExtra := trunk.Rate.TransmissionTime(transport.DataWireSize) +
		trunk.Rate.TransmissionTime(transport.CtrlWireSize) + 2*trunk.Delay
	if got := p.FeedbackRTT(1) - flat.FeedbackRTT(1); got != wantExtra {
		t.Errorf("hop 1 RTT extra = %v, want %v", got, wantExtra)
	}
	if p.FeedbackRTT(0) != flat.FeedbackRTT(0) {
		t.Error("hop 0 RTT changed by a hop-1 transit")
	}
	// The optimal source window is trunk-limited, far below the
	// star-only model's answer.
	if p.OptimalSourceWindowCells() >= flat.OptimalSourceWindowCells() {
		t.Errorf("transit model %v ≥ star model %v",
			p.OptimalSourceWindowCells(), flat.OptimalSourceWindowCells())
	}
	if p.CircuitRTT() <= flat.CircuitRTT() {
		t.Error("CircuitRTT ignores transits")
	}
	if lb := p.LowerBoundTTLB(100); lb <= flat.LowerBoundTTLB(100) {
		t.Error("LowerBoundTTLB ignores transits")
	}
}

func TestTransitsValidation(t *testing.T) {
	nodes := []Node{sym(units.Mbps(10), 0), sym(units.Mbps(10), 0)}
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("transit count mismatch", func() {
		NewPathWithTransits(nodes, [][]Transit{nil, nil}, nil)
	})
	expectPanic("zero transit rate", func() {
		NewPathWithTransits(nodes, [][]Transit{{{Rate: 0}}}, nil)
	})
	expectPanic("negative transit delay", func() {
		NewPathWithTransits(nodes, nil, [][]Transit{{{Rate: 1, Delay: -time.Second}}})
	})
}

func TestDirectionalTransits(t *testing.T) {
	// The forward leg crosses a slow trunk, the reverse leg a fast one
	// (equal-cost routes over different physical trunks). The data
	// path is limited by the forward trunk; the feedback RTT must
	// serialize the control segment at the reverse trunk's rate.
	nodes := []Node{sym(units.Mbps(100), time.Millisecond), sym(units.Mbps(100), time.Millisecond)}
	slow := Transit{Rate: units.Mbps(8), Delay: 2 * time.Millisecond}
	fast := Transit{Rate: units.Mbps(80), Delay: 2 * time.Millisecond}
	p := NewPathWithTransits(nodes, [][]Transit{{slow}}, [][]Transit{{fast}})

	if got := p.BottleneckRate(); got != units.Mbps(8) {
		t.Errorf("BottleneckRate = %v, want the forward trunk's 8 Mbit/s", got)
	}
	mirror := NewPathWithTransits(nodes, [][]Transit{{slow}}, nil)
	wantLess := mirror.FeedbackRTT(0) -
		slow.Rate.TransmissionTime(transport.CtrlWireSize) +
		fast.Rate.TransmissionTime(transport.CtrlWireSize)
	if got := p.FeedbackRTT(0); got != wantLess {
		t.Errorf("FeedbackRTT = %v, want %v (control leg at the reverse trunk's rate)", got, wantLess)
	}
}
