// Package resource implements the per-relay resource manager: caps on
// concurrent circuits, buffered cell memory and (via the sched-package
// policer) uplink bandwidth, with deterministic admission and kill
// policies. The paper measures CircuitStart on relays with unbounded
// state; this package makes overload — the regime a deployed network
// actually lives in — expressible as configuration.
//
// Determinism: victims are selected by a total order (the policy's
// criterion, then the circuit's admission sequence), never map order,
// and memory-triggered kills are deferred through the simulation clock
// (delay 0), so a kill never re-enters the transport machinery that
// reported the breach mid-callback and every run replays identically.
package resource

import (
	"fmt"

	"circuitstart/internal/cell"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// Policy selects what happens when a limit is hit.
type Policy int

const (
	// RejectNew refuses new circuits at the circuit cap; a memory
	// breach kills the circuit whose buffered cell pushed it over.
	RejectNew Policy = iota
	// KillOldest evicts the longest-admitted circuit to make room (or
	// shed memory), admitting the newcomer.
	KillOldest
	// KillHeaviest evicts the circuit holding the most buffered cells.
	KillHeaviest
)

// PolicyByName maps the configuration names to policies ("" selects
// RejectNew).
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "reject-new":
		return RejectNew, nil
	case "kill-oldest":
		return KillOldest, nil
	case "kill-heaviest":
		return KillHeaviest, nil
	default:
		return 0, fmt.Errorf("resource: unknown policy %q (want reject-new, kill-oldest or kill-heaviest)", name)
	}
}

func (p Policy) String() string {
	switch p {
	case RejectNew:
		return "reject-new"
	case KillOldest:
		return "kill-oldest"
	case KillHeaviest:
		return "kill-heaviest"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Limits caps a relay's resources. The zero value is unlimited — a
// relay configured with it behaves byte-identically to one with no
// manager at all.
type Limits struct {
	// MaxCircuits bounds concurrently admitted circuits (0 = unlimited).
	MaxCircuits int
	// MaxMemory bounds the cell memory buffered across all of the
	// relay's transport senders — queued plus retained-for-retransmit,
	// at cell.Size bytes each (0 = unlimited).
	MaxMemory units.DataSize
	// Bandwidth caps the relay's uplink data rate with a token-bucket
	// policer (0 = uncapped). Control segments are never policed.
	Bandwidth units.DataRate
	// Burst is the policer's bucket depth (0 = sched.DefaultBurst).
	Burst units.DataSize
	// Policy selects the admission/kill behaviour at the caps.
	Policy Policy
}

// Enabled reports whether any cap is set.
func (l Limits) Enabled() bool {
	return l.MaxCircuits > 0 || l.MaxMemory > 0 || l.Bandwidth > 0
}

// Validate rejects negative caps.
func (l Limits) Validate() error {
	if l.MaxCircuits < 0 {
		return fmt.Errorf("resource: MaxCircuits %d", l.MaxCircuits)
	}
	if l.MaxMemory < 0 {
		return fmt.Errorf("resource: MaxMemory %v", l.MaxMemory)
	}
	if l.Bandwidth < 0 {
		return fmt.Errorf("resource: Bandwidth %v", l.Bandwidth)
	}
	if l.Burst < 0 {
		return fmt.Errorf("resource: Burst %v", l.Burst)
	}
	if l.Policy < RejectNew || l.Policy > KillHeaviest {
		return fmt.Errorf("resource: unknown policy %d", int(l.Policy))
	}
	return nil
}

// Label renders the limits compactly for sweep axes and tables
// ("unlimited", "c64/m256.00kB/kill-oldest", …).
func (l Limits) Label() string {
	if !l.Enabled() {
		return "unlimited"
	}
	s := ""
	if l.MaxCircuits > 0 {
		s += fmt.Sprintf("c%d/", l.MaxCircuits)
	}
	if l.MaxMemory > 0 {
		s += fmt.Sprintf("m%v/", l.MaxMemory)
	}
	if l.Bandwidth > 0 {
		s += fmt.Sprintf("b%v/", l.Bandwidth)
	}
	return s + l.Policy.String()
}

// Stats counts what the manager did. Counters are cumulative.
type Stats struct {
	Admitted     uint64         // circuits admitted
	Rejected     uint64         // circuits refused at admission
	Killed       uint64         // circuits evicted by a kill policy
	MemHighWater units.DataSize // peak buffered cell memory
}

// Merge accumulates another snapshot: counters add, the high-water
// mark takes the maximum (relays and replications pool this way).
func (s *Stats) Merge(o Stats) {
	s.Admitted += o.Admitted
	s.Rejected += o.Rejected
	s.Killed += o.Killed
	if o.MemHighWater > s.MemHighWater {
		s.MemHighWater = o.MemHighWater
	}
}

// entry is one admitted circuit's accounting.
type entry struct {
	seq  uint64 // admission order
	held int    // buffered cells (queued + retained), both directions
}

// Manager tracks one relay's admitted circuits and buffered memory
// and enforces the limits. The relay calls Admit/Release around hop
// setup/teardown and Held from its transport senders' OnHeld hooks;
// kills are delivered through the callback installed with OnKill
// (typically core.Network's circuit teardown).
type Manager struct {
	clock  *sim.Clock
	limits Limits
	kill   func(circ cell.CircID)

	circuits  map[cell.CircID]*entry
	nextSeq   uint64
	heldCells int
	stats     Stats

	killPending bool
	breacher    cell.CircID // circuit whose cell caused the pending breach
}

// NewManager returns a manager enforcing limits on the given clock.
func NewManager(clock *sim.Clock, limits Limits) *Manager {
	if clock == nil {
		panic("resource: NewManager with nil clock")
	}
	if err := limits.Validate(); err != nil {
		panic(err)
	}
	return &Manager{
		clock:    clock,
		limits:   limits,
		circuits: make(map[cell.CircID]*entry),
	}
}

// Limits returns the configured caps.
func (m *Manager) Limits() Limits { return m.limits }

// OnKill installs the eviction callback. The callback must tear the
// circuit down end to end (releasing the relay's hop via Release);
// without one, kill policies degrade to rejecting/ignoring.
func (m *Manager) OnKill(fn func(circ cell.CircID)) { m.kill = fn }

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// Circuits returns the number of currently admitted circuits.
func (m *Manager) Circuits() int { return len(m.circuits) }

// HeldMemory returns the currently buffered cell memory.
func (m *Manager) HeldMemory() units.DataSize {
	return units.DataSize(m.heldCells) * cell.Size
}

// Admit asks to admit a circuit. At the circuit cap, RejectNew refuses
// it; the kill policies synchronously evict victims until there is
// room (admission never runs inside a transport callback, so an
// immediate kill is safe), and only refuse if no victim can be evicted.
func (m *Manager) Admit(circ cell.CircID) bool {
	if _, dup := m.circuits[circ]; dup {
		panic(fmt.Sprintf("resource: circuit %d admitted twice", circ))
	}
	for m.limits.MaxCircuits > 0 && len(m.circuits) >= m.limits.MaxCircuits {
		if m.limits.Policy == RejectNew || m.kill == nil {
			m.stats.Rejected++
			return false
		}
		victim, ok := m.victim(m.limits.Policy)
		if !ok {
			m.stats.Rejected++
			return false
		}
		m.stats.Killed++
		m.kill(victim)
		if _, still := m.circuits[victim]; still {
			// The kill callback failed to release the hop; refuse the
			// newcomer rather than spin.
			m.stats.Rejected++
			return false
		}
	}
	m.nextSeq++
	m.circuits[circ] = &entry{seq: m.nextSeq}
	m.stats.Admitted++
	return true
}

// Release drops an admitted circuit's accounting (hop teardown). A
// circuit the manager does not know is ignored.
func (m *Manager) Release(circ cell.CircID) {
	e := m.circuits[circ]
	if e == nil {
		return
	}
	m.heldCells -= e.held
	delete(m.circuits, circ)
}

// Held adjusts a circuit's buffered-cell count by delta. Crossing the
// memory cap schedules a deferred kill pass (clock delay 0): the
// breach is reported from inside a transport callback, and tearing the
// breacher down mid-callback would free state the caller still holds.
func (m *Manager) Held(circ cell.CircID, delta int) {
	e := m.circuits[circ]
	if e == nil {
		return
	}
	e.held += delta
	m.heldCells += delta
	if mem := m.HeldMemory(); mem > m.stats.MemHighWater {
		m.stats.MemHighWater = mem
	}
	if m.limits.MaxMemory <= 0 || m.kill == nil || m.killPending {
		return
	}
	if m.HeldMemory() > m.limits.MaxMemory {
		m.killPending = true
		m.breacher = circ
		m.clock.After(0, m.memoryKills)
	}
}

// memoryKills evicts circuits until buffered memory is back under the
// cap: the breacher first under RejectNew, then by the kill policy's
// criterion (falling back to heaviest when RejectNew's breacher is
// already gone).
func (m *Manager) memoryKills() {
	m.killPending = false
	breacher := m.breacher
	for m.HeldMemory() > m.limits.MaxMemory && len(m.circuits) > 0 {
		victim, ok := breacher, false
		if m.limits.Policy == RejectNew {
			_, ok = m.circuits[breacher]
		}
		if !ok {
			policy := m.limits.Policy
			if policy == RejectNew {
				policy = KillHeaviest
			}
			if victim, ok = m.victim(policy); !ok {
				return
			}
		}
		breacher = 0
		m.stats.Killed++
		m.kill(victim)
		if _, still := m.circuits[victim]; still {
			return // kill callback did not release; avoid spinning
		}
	}
}

// victim picks the circuit a kill policy evicts: the lowest admission
// sequence for KillOldest, the most buffered cells (ties to the oldest)
// for KillHeaviest. The scan is over a map, but the (criterion, seq)
// order is total, so the result is independent of iteration order.
func (m *Manager) victim(policy Policy) (cell.CircID, bool) {
	var (
		best  cell.CircID
		bestE *entry
		found bool
	)
	for circ, e := range m.circuits {
		if !found {
			best, bestE, found = circ, e, true
			continue
		}
		switch policy {
		case KillOldest:
			if e.seq < bestE.seq {
				best, bestE = circ, e
			}
		case KillHeaviest:
			if e.held > bestE.held || (e.held == bestE.held && e.seq < bestE.seq) {
				best, bestE = circ, e
			}
		}
	}
	return best, found
}
