package resource

import (
	"testing"

	"circuitstart/internal/cell"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

func TestPolicyByName(t *testing.T) {
	cases := []struct {
		name string
		want Policy
		ok   bool
	}{
		{"", RejectNew, true},
		{"reject-new", RejectNew, true},
		{"kill-oldest", KillOldest, true},
		{"kill-heaviest", KillHeaviest, true},
		{"banish", 0, false},
	}
	for _, c := range cases {
		got, err := PolicyByName(c.name)
		if c.ok != (err == nil) {
			t.Fatalf("PolicyByName(%q) err = %v, want ok=%v", c.name, err, c.ok)
		}
		if err == nil && got != c.want {
			t.Fatalf("PolicyByName(%q) = %v, want %v", c.name, got, c.want)
		}
		if err == nil && got.String() != c.name && c.name != "" {
			t.Fatalf("Policy %v round-trips to %q, want %q", got, got.String(), c.name)
		}
	}
}

func TestLimitsValidateAndLabel(t *testing.T) {
	if (Limits{}).Enabled() {
		t.Fatal("zero Limits reports enabled")
	}
	if got := (Limits{}).Label(); got != "unlimited" {
		t.Fatalf("zero Limits label %q", got)
	}
	l := Limits{MaxCircuits: 64, MaxMemory: 256 * units.Kilobyte, Policy: KillOldest}
	if !l.Enabled() {
		t.Fatal("capped Limits reports disabled")
	}
	if got := l.Label(); got != "c64/m256.00kB/kill-oldest" {
		t.Fatalf("label = %q", got)
	}
	bad := []Limits{
		{MaxCircuits: -1},
		{MaxMemory: -1},
		{Bandwidth: -1},
		{Burst: -1},
		{Policy: Policy(9)},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Fatalf("case %d: %+v validated", i, l)
		}
	}
}

func TestStatsMerge(t *testing.T) {
	s := Stats{Admitted: 1, Rejected: 2, Killed: 3, MemHighWater: 100}
	s.Merge(Stats{Admitted: 10, Rejected: 20, Killed: 30, MemHighWater: 50})
	want := Stats{Admitted: 11, Rejected: 22, Killed: 33, MemHighWater: 100}
	if s != want {
		t.Fatalf("merged = %+v, want %+v", s, want)
	}
	s.Merge(Stats{MemHighWater: 500})
	if s.MemHighWater != 500 {
		t.Fatalf("high-water after merge = %v, want 500", s.MemHighWater)
	}
}

// killLog installs a kill callback that records victims in order and
// releases them, the way core.Network's teardown does.
func killLog(m *Manager) *[]cell.CircID {
	var killed []cell.CircID
	m.OnKill(func(circ cell.CircID) {
		killed = append(killed, circ)
		m.Release(circ)
	})
	return &killed
}

func TestAdmitRejectNew(t *testing.T) {
	m := NewManager(sim.NewClock(), Limits{MaxCircuits: 2})
	if !m.Admit(1) || !m.Admit(2) {
		t.Fatal("admission under the cap refused")
	}
	if m.Admit(3) {
		t.Fatal("admission at the cap accepted under reject-new")
	}
	if got := m.Stats(); got.Admitted != 2 || got.Rejected != 1 || got.Killed != 0 {
		t.Fatalf("stats = %+v", got)
	}
	m.Release(1)
	if !m.Admit(3) {
		t.Fatal("admission refused after a release made room")
	}
	if m.Circuits() != 2 {
		t.Fatalf("%d circuits admitted, want 2", m.Circuits())
	}
}

func TestAdmitKillOldest(t *testing.T) {
	m := NewManager(sim.NewClock(), Limits{MaxCircuits: 2, Policy: KillOldest})
	killed := killLog(m)
	m.Admit(1)
	m.Admit(2)
	if !m.Admit(3) {
		t.Fatal("kill-oldest refused the newcomer")
	}
	if len(*killed) != 1 || (*killed)[0] != 1 {
		t.Fatalf("killed %v, want [1]", *killed)
	}
	if !m.Admit(4) {
		t.Fatal("second newcomer refused")
	}
	if len(*killed) != 2 || (*killed)[1] != 2 {
		t.Fatalf("killed %v, want [1 2]", *killed)
	}
	if got := m.Stats(); got.Killed != 2 || got.Rejected != 0 || got.Admitted != 4 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestAdmitKillHeaviest(t *testing.T) {
	m := NewManager(sim.NewClock(), Limits{MaxCircuits: 2, Policy: KillHeaviest})
	killed := killLog(m)
	m.Admit(1)
	m.Admit(2)
	m.Held(2, 5)
	m.Held(1, 3)
	if !m.Admit(3) {
		t.Fatal("kill-heaviest refused the newcomer")
	}
	if len(*killed) != 1 || (*killed)[0] != 2 {
		t.Fatalf("killed %v, want [2] (heaviest)", *killed)
	}
	// Ties break to the oldest admission: 1 (3 cells) vs 3 (3 cells).
	m.Held(3, 3)
	if !m.Admit(4) {
		t.Fatal("tied newcomer refused")
	}
	if len(*killed) != 2 || (*killed)[1] != 1 {
		t.Fatalf("killed %v, want [2 1] (tie to oldest)", *killed)
	}
}

func TestAdmitKillPolicyWithoutCallbackRejects(t *testing.T) {
	m := NewManager(sim.NewClock(), Limits{MaxCircuits: 1, Policy: KillOldest})
	m.Admit(1)
	if m.Admit(2) {
		t.Fatal("kill policy with no OnKill callback admitted past the cap")
	}
	if got := m.Stats(); got.Rejected != 1 || got.Killed != 0 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestHeldTracksHighWater(t *testing.T) {
	m := NewManager(sim.NewClock(), Limits{MaxMemory: 100 * cell.Size})
	m.Admit(1)
	m.Held(1, 7)
	if got := m.HeldMemory(); got != 7*cell.Size {
		t.Fatalf("held = %v, want %v", got, units.DataSize(7*cell.Size))
	}
	m.Held(1, -4)
	if got := m.Stats().MemHighWater; got != 7*cell.Size {
		t.Fatalf("high-water = %v after drain, want %v", got, units.DataSize(7*cell.Size))
	}
	m.Release(1)
	if got := m.HeldMemory(); got != 0 {
		t.Fatalf("held = %v after release, want 0", got)
	}
}

// TestMemoryKillDeferred pins the re-entrancy contract: a breach
// reported through Held does not kill synchronously — the eviction
// fires through the clock at delay 0.
func TestMemoryKillDeferred(t *testing.T) {
	clock := sim.NewClock()
	m := NewManager(clock, Limits{MaxMemory: 2 * cell.Size})
	killed := killLog(m)
	m.Admit(1)
	m.Held(1, 3) // breach: 3 cells > 2-cell cap
	if len(*killed) != 0 {
		t.Fatalf("kill fired synchronously inside Held: %v", *killed)
	}
	clock.Run()
	if len(*killed) != 1 || (*killed)[0] != 1 {
		t.Fatalf("killed %v after clock run, want [1]", *killed)
	}
	if got := m.Stats(); got.Killed != 1 {
		t.Fatalf("stats = %+v", got)
	}
}

// TestMemoryKillRejectNewKillsBreacher: under reject-new the circuit
// whose cell caused the breach is the victim, not the heaviest.
func TestMemoryKillRejectNewKillsBreacher(t *testing.T) {
	clock := sim.NewClock()
	m := NewManager(clock, Limits{MaxMemory: 5 * cell.Size})
	killed := killLog(m)
	m.Admit(1)
	m.Admit(2)
	m.Held(1, 4) // heaviest, but under the cap
	m.Held(2, 2) // pushes the total to 6 cells: circuit 2 is the breacher
	clock.Run()
	if len(*killed) != 1 || (*killed)[0] != 2 {
		t.Fatalf("killed %v, want breacher [2]", *killed)
	}
	if got := m.HeldMemory(); got != 4*cell.Size {
		t.Fatalf("held = %v after kill, want %v", got, units.DataSize(4*cell.Size))
	}
}

// TestMemoryKillPolicyEvictsUntilUnderCap: a kill policy sheds the
// heaviest/oldest circuits until memory is back under the cap, even
// when one eviction is not enough.
func TestMemoryKillPolicyEvictsUntilUnderCap(t *testing.T) {
	clock := sim.NewClock()
	m := NewManager(clock, Limits{MaxMemory: 3 * cell.Size, Policy: KillHeaviest})
	killed := killLog(m)
	m.Admit(1)
	m.Admit(2)
	m.Admit(3)
	m.Held(1, 3)
	m.Held(2, 3)
	m.Held(3, 2) // total 8 cells > 3-cell cap
	clock.Run()
	// Heaviest first (1 and 2 tie at 3 cells, oldest wins), then 2;
	// circuit 3's 2 cells fit the cap.
	if len(*killed) != 2 || (*killed)[0] != 1 || (*killed)[1] != 2 {
		t.Fatalf("killed %v, want [1 2]", *killed)
	}
	if m.Circuits() != 1 || m.HeldMemory() != 2*cell.Size {
		t.Fatalf("left %d circuits holding %v", m.Circuits(), m.HeldMemory())
	}
}

func TestReleaseUnknownCircuitIgnored(t *testing.T) {
	m := NewManager(sim.NewClock(), Limits{MaxCircuits: 1})
	m.Release(99)
	m.Held(99, 3)
	if m.HeldMemory() != 0 || m.Circuits() != 0 {
		t.Fatal("unknown circuit affected accounting")
	}
}
