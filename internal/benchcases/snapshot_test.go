package benchcases

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(results ...Result) Snapshot {
	return Snapshot{Schema: "circuitsim-bench/v1", Benchmarks: results}
}

func TestComparePasses(t *testing.T) {
	base := snap(
		Result{Name: "clock_schedule", NsPerOp: 100, AllocsPerOp: 0},
		Result{Name: "single_transfer", NsPerOp: 1e6, AllocsPerOp: 500},
	)
	cur := snap(
		Result{Name: "clock_schedule", NsPerOp: 120, AllocsPerOp: 0}, // +20% < 30%
		Result{Name: "single_transfer", NsPerOp: 5e6, AllocsPerOp: 400},
	)
	if findings := Compare(base, cur, 0.30); len(findings) != 0 {
		t.Fatalf("unexpected findings: %v", findings)
	}
}

func TestCompareNsRegression(t *testing.T) {
	base := snap(Result{Name: "link_transit", NsPerOp: 100, AllocsPerOp: 0})
	cur := snap(Result{Name: "link_transit", NsPerOp: 140, AllocsPerOp: 0})
	findings := Compare(base, cur, 0.30)
	if len(findings) != 1 || !strings.Contains(findings[0], "ns/op regressed") {
		t.Fatalf("findings = %v", findings)
	}
	// single_transfer's ns/op is deliberately not gated.
	base = snap(Result{Name: "single_transfer", NsPerOp: 100, AllocsPerOp: 5})
	cur = snap(Result{Name: "single_transfer", NsPerOp: 900, AllocsPerOp: 5})
	if findings := Compare(base, cur, 0.30); len(findings) != 0 {
		t.Fatalf("single_transfer ns/op gated: %v", findings)
	}
	// A negative tolerance (baseline from different hardware) disables
	// the ns/op gate entirely; the alloc gates stay armed.
	base = snap(Result{Name: "link_transit", NsPerOp: 100, AllocsPerOp: 0})
	cur = snap(Result{Name: "link_transit", NsPerOp: 900, AllocsPerOp: 1})
	findings = Compare(base, cur, -1)
	if len(findings) != 1 || !strings.Contains(findings[0], "zero-alloc") {
		t.Fatalf("findings with disabled ns gate = %v", findings)
	}
}

func TestCompareAllocGates(t *testing.T) {
	// Any alloc on a zero-alloc hot path fails, whatever the baseline.
	base := snap(Result{Name: "timer_rearm", NsPerOp: 10, AllocsPerOp: 0})
	cur := snap(Result{Name: "timer_rearm", NsPerOp: 10, AllocsPerOp: 1})
	findings := Compare(base, cur, 0.30)
	if len(findings) != 1 || !strings.Contains(findings[0], "zero-alloc") {
		t.Fatalf("findings = %v", findings)
	}
	// Off the zero-alloc set, increases beyond the 1% noise headroom
	// fail; within it they pass.
	base = snap(Result{Name: "single_transfer", NsPerOp: 100, AllocsPerOp: 500})
	cur = snap(Result{Name: "single_transfer", NsPerOp: 100, AllocsPerOp: 506})
	findings = Compare(base, cur, 0.30)
	if len(findings) != 1 || !strings.Contains(findings[0], "allocs/op rose") {
		t.Fatalf("findings = %v", findings)
	}
	cur = snap(Result{Name: "single_transfer", NsPerOp: 100, AllocsPerOp: 505})
	if findings := Compare(base, cur, 0.30); len(findings) != 0 {
		t.Fatalf("1%% alloc headroom not applied: %v", findings)
	}
}

func TestCompareNewZeroAllocBenchmark(t *testing.T) {
	// A zero-alloc benchmark absent from the baseline is still gated.
	base := snap(Result{Name: "clock_schedule", NsPerOp: 100, AllocsPerOp: 0})
	cur := snap(
		Result{Name: "clock_schedule", NsPerOp: 100, AllocsPerOp: 0},
		Result{Name: "onion_wrap", NsPerOp: 700, AllocsPerOp: 2},
	)
	findings := Compare(base, cur, 0.30)
	if len(findings) != 1 || !strings.Contains(findings[0], "onion_wrap") {
		t.Fatalf("findings = %v", findings)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := snap(
		Result{Name: "clock_schedule", NsPerOp: 100},
		Result{Name: "link_transit", NsPerOp: 100},
	)
	cur := snap(Result{Name: "clock_schedule", NsPerOp: 100})
	findings := Compare(base, cur, 0.30)
	if len(findings) != 1 || !strings.Contains(findings[0], "link_transit") {
		t.Fatalf("findings = %v", findings)
	}
}

func TestLatestSnapshotPath(t *testing.T) {
	dir := t.TempDir()
	if _, err := LatestSnapshotPath(dir); err == nil {
		t.Fatal("empty dir accepted")
	}
	// A gap in the numbering (no BENCH_1) must not hide later
	// baselines, and BENCH_10 must beat BENCH_9 (numeric, not lexical).
	for _, n := range []string{"BENCH_2.json", "BENCH_9.json", "BENCH_10.json"} {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LatestSnapshotPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_10.json" {
		t.Fatalf("latest = %s", got)
	}
}

func TestReadSnapshot(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "BENCH_1.json")
	data, err := json.Marshal(snap(Result{Name: "clock_schedule", NsPerOp: 14}))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := ReadSnapshot(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 1 || s.Benchmarks[0].Name != "clock_schedule" {
		t.Fatalf("snapshot = %+v", s)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bad); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ReadSnapshot(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestHeadlineCoversCommittedSnapshot pins the headline list to the
// repository's committed baseline: every benchmark the snapshot gates
// must still exist under the same name.
func TestHeadlineCoversCommittedSnapshot(t *testing.T) {
	path, err := LatestSnapshotPath("../..")
	if err != nil {
		t.Skipf("no committed snapshot: %v", err)
	}
	base, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]bool, len(Headline))
	for _, hb := range Headline {
		have[hb.Name] = true
	}
	for _, r := range base.Benchmarks {
		if !have[r.Name] {
			t.Errorf("baseline %s gates %q, which Headline no longer measures", path, r.Name)
		}
	}
}
