package benchcases

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// Headline lists the benchmark bodies that form the repository's
// performance contract, in snapshot order. `circuitsim bench -json`
// snapshots them into BENCH_<n>.json and `benchcheck` re-runs them and
// compares against the latest snapshot, so the committed numbers, the
// CI gate and the developers' local check all measure exactly this
// list.
var Headline = []struct {
	Name string
	Fn   func(b *testing.B)
}{
	{"clock_schedule", ClockSchedule},
	{"timer_rearm", TimerRearm},
	{"link_transit", LinkTransit},
	{"link_transit_train", LinkTransitTrain},
	{"star_transit", StarTransit},
	{"onion_wrap", OnionWrap},
	{"onion_unwrap", OnionUnwrap},
	{"scheduler_enqueue_dequeue", SchedulerEnqueueDequeue},
	{"single_transfer", SingleTransfer},
	{"sharded_churn_1shard", ShardedChurn1},
	{"sharded_churn_4shard", ShardedChurn4},
}

// Result is one benchmark's measurement in a snapshot.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Snapshot is the BENCH_<n>.json schema: enough environment to
// interpret the numbers, plus the headline benchmarks in fixed order.
type Snapshot struct {
	Schema     string   `json:"schema"`
	Date       string   `json:"date"`
	GoVersion  string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPUs       int      `json:"cpus"`
	Benchmarks []Result `json:"benchmarks"`
}

// Collect runs every headline benchmark once via testing.Benchmark and
// returns the populated snapshot.
func Collect() Snapshot {
	snap := Snapshot{
		Schema:    "circuitsim-bench/v1",
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	for _, hb := range Headline {
		r := testing.Benchmark(hb.Fn)
		snap.Benchmarks = append(snap.Benchmarks, Result{
			Name:        hb.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return snap
}

// LatestSnapshotPath returns the committed BENCH_<n>.json with the
// highest n in dir, or an error when none exists. Gaps in the
// numbering are fine — a deleted early snapshot must not hide the
// later baselines.
func LatestSnapshotPath(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", 0
	for _, path := range matches {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(path), "BENCH_%d.json", &n); err == nil && n > bestN {
			best, bestN = path, n
		}
	}
	if bestN == 0 {
		return "", fmt.Errorf("benchcases: no BENCH_<n>.json snapshot in %s", dir)
	}
	return best, nil
}

// SameEnvironment reports whether the snapshot was recorded on an
// environment comparable to the current one (OS, architecture, CPU
// count — a proxy for "same class of machine"). Wall-clock gates are
// only meaningful against a comparable baseline; allocation gates hold
// everywhere.
func (s Snapshot) SameEnvironment() bool {
	return s.GOOS == runtime.GOOS && s.GOARCH == runtime.GOARCH && s.CPUs == runtime.NumCPU()
}

// ReadSnapshot loads and validates a snapshot file.
func ReadSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return Snapshot{}, fmt.Errorf("benchcases: %s: %w", path, err)
	}
	if snap.Schema != "circuitsim-bench/v1" {
		return Snapshot{}, fmt.Errorf("benchcases: %s has schema %q, want circuitsim-bench/v1", path, snap.Schema)
	}
	return snap, nil
}

// zeroAllocGated names the benchmarks whose hot paths must stay
// allocation-free outright (the event free list, in-place timer
// rearm, pooled links/fabrics, the onion scratch buffers and the
// scheduler's free-listed circuit nodes) — everything headline except
// the whole-transfer profile.
var zeroAllocGated = map[string]bool{
	"clock_schedule": true, "timer_rearm": true, "link_transit": true,
	"link_transit_train": true, "star_transit": true,
	"onion_wrap": true, "onion_unwrap": true,
	"scheduler_enqueue_dequeue": true,
}

// nsGated names the benchmarks whose ns/op is compared against the
// baseline. single_transfer is excluded: its run-to-run variance
// (whole-simulation iterations, few samples) would make a percentage
// gate flaky, and its regressions surface through the gated layers
// beneath it anyway.
var nsGated = zeroAllocGated

// Compare checks current against baseline and returns one finding per
// violated gate (empty = pass):
//
//   - every baseline benchmark must still be present (a rename must
//     not silently disarm the gate);
//   - the zero-alloc set must report exactly zero allocs/op, and the
//     remaining benchmarks must not grow allocs/op beyond 1% (noise
//     headroom for seed-averaged whole-workload profiles);
//   - ns/op on the gated set must not regress by more than
//     nsTolerance (e.g. 0.30 = +30%). A negative nsTolerance disables
//     the ns/op gate entirely — the caller's signal that the baseline
//     came from different hardware, where wall-clock comparison would
//     be noise (allocs/op stays gated: it is machine-independent).
func Compare(baseline, current Snapshot, nsTolerance float64) []string {
	var findings []string
	cur := make(map[string]Result, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		cur[r.Name] = r
	}
	for _, base := range baseline.Benchmarks {
		now, ok := cur[base.Name]
		if !ok {
			findings = append(findings, fmt.Sprintf("%s: present in baseline but not measured (renames must update the snapshot)", base.Name))
			continue
		}
		if zeroAllocGated[base.Name] {
			if now.AllocsPerOp != 0 {
				findings = append(findings, fmt.Sprintf("%s: %d allocs/op on a zero-alloc hot path", base.Name, now.AllocsPerOp))
			}
		} else if now.AllocsPerOp > base.AllocsPerOp+base.AllocsPerOp/100 {
			// Whole-workload benchmarks average allocations over
			// seed-varied iterations, so the count jitters by a few per
			// op with the iteration count; 1% headroom absorbs that
			// while still catching real regressions, which arrive in
			// thousands (the pooling work was a 9× reduction).
			findings = append(findings, fmt.Sprintf("%s: allocs/op rose %d → %d (>1%%)", base.Name, base.AllocsPerOp, now.AllocsPerOp))
		}
		if nsTolerance >= 0 && nsGated[base.Name] && base.NsPerOp > 0 {
			ratio := now.NsPerOp / base.NsPerOp
			if ratio > 1+nsTolerance {
				findings = append(findings, fmt.Sprintf("%s: ns/op regressed %.1f → %.1f (%+.0f%%, tolerance %+.0f%%)",
					base.Name, base.NsPerOp, now.NsPerOp, (ratio-1)*100, nsTolerance*100))
			}
		}
	}
	// A zero-alloc benchmark added after the baseline snapshot is still
	// gated — the invariant must not wait for a fresh snapshot to arm
	// (the same disarm-by-omission the rename check guards against).
	known := make(map[string]bool, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		known[r.Name] = true
	}
	for _, now := range current.Benchmarks {
		if !known[now.Name] && zeroAllocGated[now.Name] && now.AllocsPerOp != 0 {
			findings = append(findings, fmt.Sprintf("%s: %d allocs/op on a zero-alloc hot path (new benchmark, not yet in the baseline)", now.Name, now.AllocsPerOp))
		}
	}
	return findings
}
