package benchcases

import (
	"testing"

	"circuitstart/internal/experiments"
	"circuitstart/internal/scenario"
)

// shardedChurn runs one whole-network churn trial per iteration at the
// scale ablation's default population (1,024 relays behind a 16-switch
// ring, 48 initial + 96 arriving downloads) and the given shard count.
// The 1-vs-4-shard pair in the headline snapshot records the sharded
// engine's wall-clock trajectory alongside the microbenchmarks; unlike
// those it allocates whole trials, so it is deliberately NOT in the
// zero-alloc gate.
func shardedChurn(b *testing.B, shards int) {
	sc, err := experiments.DefaultScaleParams().Scenario(shards)
	if err != nil {
		b.Fatal(err)
	}
	runner := scenario.Runner{Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// ShardedChurn1 is the single-shard baseline of the pair.
func ShardedChurn1(b *testing.B) { shardedChurn(b, 1) }

// ShardedChurn4 is the same trial split across four shards.
func ShardedChurn4(b *testing.B) { shardedChurn(b, 4) }
