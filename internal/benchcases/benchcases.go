// Package benchcases holds the bodies of the headline per-layer
// microbenchmarks — clock scheduling, timer rearm, link and star
// transit, onion wrap/unwrap, and the full single-transfer profile.
//
// The bodies live in a normal (non-test) package for one reason: they
// are shared verbatim between the benchmark wrappers in this package's
// test file (which CI gates on allocs/op) and the `circuitsim bench
// -json` subcommand (which snapshots BENCH_<n>.json). A committed
// snapshot therefore measures exactly the code the CI gate guards —
// the two cannot drift apart.
package benchcases

import (
	"testing"
	"time"

	"circuitstart/internal/arena"
	"circuitstart/internal/cell"
	"circuitstart/internal/netem"
	"circuitstart/internal/onion"
	"circuitstart/internal/sched"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// ClockSchedule measures the allocation-free scheduling fast path:
// schedule one event (callback hoisted out of the loop) and drain it.
// CI fails if this reports nonzero allocs/op — the event free list
// must absorb every fired event.
func ClockSchedule(b *testing.B) {
	c := sim.NewClock()
	n := 0
	fn := func() { n++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.After(time.Microsecond, fn)
		c.Run()
	}
	if n != b.N {
		b.Fatalf("executed %d of %d", n, b.N)
	}
}

// TimerRearm measures the rearm pattern the transport RTO uses on
// every acknowledgment. Rescheduling happens in place, so CI fails if
// this allocates.
func TimerRearm(b *testing.B) {
	c := sim.NewClock()
	tm := sim.NewTimer(c, func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Arm(time.Millisecond)
	}
	tm.Stop()
	c.Run()
}

// LinkTransit measures one full frame transit — enqueue, serialize,
// propagate, deliver, recycle — through a pooled link. CI fails if this
// reports nonzero allocs/op: the ring buffers, the pre-bound stage
// callbacks, the clock's event free list and the frame pool must
// together make steady-state transit allocation-free.
func LinkTransit(b *testing.B) {
	clock := sim.NewClock()
	delivered := 0
	link := netem.NewLink("bench", clock, netem.LinkConfig{
		Rate: units.Mbps(100), Delay: time.Millisecond,
	}, netem.HandlerFunc(func(f *netem.Frame) { delivered++ }))
	pool := netem.NewFramePool()
	link.UsePool(pool, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := pool.Get()
		f.Src, f.Dst, f.Size, f.Priority = "a", "b", 512, false
		link.Send(f)
		clock.Run()
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// trainSink is a TrainHandler that counts batched and single deliveries
// without allocating.
type trainSink struct{ cells, trains int }

func (t *trainSink) Deliver(*netem.Frame) { t.cells++ }
func (t *trainSink) DeliverTrain(fs []*netem.Frame) {
	t.cells += len(fs)
	t.trains++
}

// LinkTransitTrain measures the batched counterpart of LinkTransit: a
// burst of back-to-back frames coalesced into cell trains through a
// pooled link (one serialization event and one batched delivery per
// train instead of per cell). CI fails if this reports nonzero
// allocs/op — train formation, the survivor ring and the batched
// delivery scratch must all recycle.
func LinkTransitTrain(b *testing.B) {
	const trainSize = 8
	clock := sim.NewClock()
	sink := &trainSink{}
	link := netem.NewLink("bench", clock, netem.LinkConfig{
		Rate: units.Mbps(100), Delay: time.Millisecond, TrainSize: trainSize,
	}, sink)
	pool := netem.NewFramePool()
	link.UsePool(pool, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The first frame departs alone (the link is idle when it
		// arrives); the rest queue behind it and coalesce.
		for j := 0; j < trainSize; j++ {
			f := pool.Get()
			f.Src, f.Dst, f.Size = "a", "b", 512
			link.Send(f)
		}
		clock.Run()
	}
	if sink.cells != b.N*trainSize {
		b.Fatalf("delivered %d of %d cells", sink.cells, b.N*trainSize)
	}
	if sink.trains == 0 {
		b.Fatal("no batched deliveries — trains never formed")
	}
}

// StarTransit measures a node-to-node frame crossing the star fabric:
// uplink, switch, downlink. Two link transits plus routing.
func StarTransit(b *testing.B) {
	clock := sim.NewClock()
	star := netem.NewStarFabric(clock)
	delivered := 0
	pa := star.Attach("a", netem.Symmetric(units.Mbps(100), time.Millisecond, 0), netem.HandlerFunc(func(f *netem.Frame) {}), nil)
	star.Attach("b", netem.Symmetric(units.Mbps(100), time.Millisecond, 0), netem.HandlerFunc(func(f *netem.Frame) { delivered++ }), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa.Send("b", 512, nil)
		clock.Run()
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// SchedulerEnqueueDequeue measures the EWMA quiet-circuit scheduler's
// per-frame cost on a relay uplink: one push/pop cycle of 8 competing
// circuits' pooled frames through the cost heap. CI fails if this
// reports nonzero allocs/op — circuit nodes come from the free list and
// the rings and heap grow to the working set once, so steady-state
// scheduling must be allocation-free.
func SchedulerEnqueueDequeue(b *testing.B) {
	clock := sim.NewClock()
	q := sched.NewEWMA(clock, 0)
	pool := netem.NewFramePool()
	const circuits = 8
	frames := make([]*netem.Frame, circuits)
	for i := range frames {
		f := pool.Get()
		f.Src, f.Dst, f.Size = "a", "b", 512
		f.Circ = uint32(i + 1)
		frames[i] = f
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range frames {
			q.Push(f)
		}
		for j := 0; j < circuits; j++ {
			if q.Pop() == nil {
				b.Fatal("scheduler ran dry")
			}
		}
	}
	if q.Len() != 0 {
		b.Fatalf("%d frames left queued", q.Len())
	}
}

// benchRand is a deterministic byte stream for key generation.
type benchRand struct{ ctr byte }

func (r *benchRand) Read(p []byte) (int, error) {
	for i := range p {
		r.ctr += 31
		p[i] = r.ctr ^ byte(i)
	}
	return len(p), nil
}

// benchCircuit establishes a hops-long circuit's key material.
func benchCircuit(b *testing.B, hops int) (*onion.CircuitCrypto, []*onion.HopKeys) {
	b.Helper()
	rnd := &benchRand{}
	idents := make([]*onion.Identity, hops)
	for i := range idents {
		id, err := onion.NewIdentity(rnd)
		if err != nil {
			b.Fatal(err)
		}
		idents[i] = id
	}
	cc, rk, err := onion.BuildCircuit(rnd, idents)
	if err != nil {
		b.Fatal(err)
	}
	return cc, rk
}

// OnionWrap measures the client-side cost of sealing and
// triple-encrypting one 512 B cell.
func OnionWrap(b *testing.B) {
	cc, _ := benchCircuit(b, 3)
	c := &cell.Cell{}
	if err := c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData, StreamID: 1}, make([]byte, cell.MaxRelayData)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(cell.Size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.WrapForward(c)
	}
}

// OnionUnwrap measures the client-side cost of peeling a 3-hop backward
// cell: per hop one stream decryption and a header parse, plus the
// digest verification at the recognizing hop. The snapshot/rollback
// machinery must keep this allocation-free.
func OnionUnwrap(b *testing.B) {
	cc, relayKeys := benchCircuit(b, 3)
	exit := relayKeys[len(relayKeys)-1]
	c := &cell.Cell{}
	data := make([]byte, cell.MaxRelayData)
	b.SetBytes(cell.Size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The exit seals and every hop adds its backward layer; the
		// client unwraps. Both running digests advance once per cell, so
		// the pair stays in lockstep across iterations.
		if err := c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData, StreamID: 1}, data); err != nil {
			b.Fatal(err)
		}
		exit.SealBackward(c)
		for h := len(relayKeys) - 1; h >= 0; h-- {
			relayKeys[h].EncryptBackward(c)
		}
		if _, err := cc.UnwrapBackward(c); err != nil {
			b.Fatal(err)
		}
	}
}

// SingleTransfer measures raw simulator throughput and its allocation
// profile: one 1 MB transfer over a 3-hop circuit per iteration (an
// engineering metric, not a paper figure). It runs the way experiments
// actually run the hot path — cell trains on every link and the
// population/circuit substrate amortized across transfers the same way
// the parallel runner's per-worker arena amortizes it across trials —
// so the steady-state number is the per-transfer cost, not the
// per-trial setup cost.
func SingleTransfer(b *testing.B) {
	ar := arena.New()
	sc, err := workload.Build(1, workload.ScenarioParams{
		Relays:         workload.DefaultRelayParams(8),
		Circuits:       1,
		HopsPerCircuit: 3,
		TransferSize:   1 * units.Megabyte,
		TrainSize:      8,
		Arena:          ar,
	})
	if err != nil {
		b.Fatal(err)
	}
	n := sc.Network
	c := sc.Circuits[0]
	clock := n.Clock()
	onDone := func(time.Duration) { clock.Stop() }
	// One untimed transfer grows every pool and slab to its working
	// set; without it the first timed iteration's warmup allocations
	// amortize over b.N and the reported allocs/op varies with the
	// iteration count instead of measuring the steady state.
	c.Transfer(1*units.Megabyte, onDone)
	n.Run()
	if !c.Done() {
		b.Fatal("warmup transfer incomplete")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Transfer(1*units.Megabyte, onDone)
		n.Run()
		if !c.Done() {
			b.Fatal("incomplete")
		}
	}
}
