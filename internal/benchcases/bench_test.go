package benchcases

import "testing"

// The wrappers CI runs. BenchmarkClockSchedule, BenchmarkTimerRearm and
// BenchmarkLinkTransit are gated to 0 allocs/op by the zero-alloc CI
// step; the bodies are the exact code `circuitsim bench` snapshots.

func BenchmarkClockSchedule(b *testing.B)    { ClockSchedule(b) }
func BenchmarkTimerRearm(b *testing.B)       { TimerRearm(b) }
func BenchmarkLinkTransit(b *testing.B)      { LinkTransit(b) }
func BenchmarkLinkTransitTrain(b *testing.B) { LinkTransitTrain(b) }
func BenchmarkStarTransit(b *testing.B)      { StarTransit(b) }
func BenchmarkOnionWrap(b *testing.B)        { OnionWrap(b) }
func BenchmarkOnionUnwrap(b *testing.B)      { OnionUnwrap(b) }

func BenchmarkSchedulerEnqueueDequeue(b *testing.B) { SchedulerEnqueueDequeue(b) }

func BenchmarkSingleTransfer(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-scale transfer")
	}
	SingleTransfer(b)
}

func BenchmarkShardedChurn1(b *testing.B) {
	if testing.Short() {
		b.Skip("consensus-scale churn trial")
	}
	ShardedChurn1(b)
}

func BenchmarkShardedChurn4(b *testing.B) {
	if testing.Short() {
		b.Skip("consensus-scale churn trial")
	}
	ShardedChurn4(b)
}
