package sched

import (
	"testing"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

func frame(circ uint32, size units.DataSize) *netem.Frame {
	return &netem.Frame{Src: "a", Dst: "b", Size: size, Circ: circ}
}

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO()
	for i := uint32(1); i <= 20; i++ {
		if !q.Push(frame(i, 512)) {
			t.Fatalf("FIFO refused frame %d", i)
		}
	}
	if q.Len() != 20 {
		t.Fatalf("Len = %d, want 20", q.Len())
	}
	for i := uint32(1); i <= 20; i++ {
		f := q.Pop()
		if f == nil || f.Circ != i {
			t.Fatalf("popped %+v, want circuit %d", f, i)
		}
	}
	if q.Pop() != nil {
		t.Fatal("empty FIFO popped a frame")
	}
}

// TestEWMAPrefersQuietCircuit: after a bulk circuit has been charged
// for its transmissions, a newly queued quiet circuit's frame jumps
// ahead of the bulk backlog at the next slot.
func TestEWMAPrefersQuietCircuit(t *testing.T) {
	clock := sim.NewClock()
	q := NewEWMA(clock, 0)
	// Bulk circuit 1 sends four cells, accumulating cost.
	for i := 0; i < 4; i++ {
		q.Push(frame(1, 512))
		if f := q.Pop(); f.Circ != 1 {
			t.Fatalf("warm-up popped circuit %d", f.Circ)
		}
	}
	// Both queue one frame; the quiet circuit 2 must win the slot.
	q.Push(frame(1, 512))
	q.Push(frame(2, 512))
	if f := q.Pop(); f.Circ != 2 {
		t.Fatalf("popped circuit %d, want quiet circuit 2", f.Circ)
	}
	if f := q.Pop(); f.Circ != 1 {
		t.Fatalf("popped circuit %d, want bulk circuit 1", f.Circ)
	}
}

// TestEWMATieBreaksOnCreationOrder: equal costs are ordered by the
// deterministic creation sequence, never map order.
func TestEWMATieBreaksOnCreationOrder(t *testing.T) {
	clock := sim.NewClock()
	q := NewEWMA(clock, 0)
	for circ := uint32(1); circ <= 8; circ++ {
		q.Push(frame(circ, 512))
	}
	for circ := uint32(1); circ <= 8; circ++ {
		f := q.Pop()
		if f.Circ != circ {
			t.Fatalf("popped circuit %d, want %d (creation order)", f.Circ, circ)
		}
	}
}

// TestEWMACostDecays: a past heavy sender's cost decays relative to
// fresh charges, so after several half-lives it competes as if quiet.
func TestEWMACostDecays(t *testing.T) {
	clock := sim.NewClock()
	q := NewEWMA(clock, 100*time.Millisecond)
	// Circuit 1 sends ten cells at t=0.
	for i := 0; i < 10; i++ {
		q.Push(frame(1, 512))
		q.Pop()
	}
	// Circuit 2 sends one cell much later: its single fresh charge
	// outweighs circuit 1's decayed history.
	clock.After(time.Second, func() {
		q.Push(frame(2, 512))
		q.Pop()
		q.Push(frame(1, 512))
		q.Push(frame(2, 512))
		if f := q.Pop(); f.Circ != 1 {
			t.Fatalf("popped circuit %d, want decayed circuit 1", f.Circ)
		}
	})
	clock.Run()
}

// TestEWMAForget releases idle circuits but leaves queued ones alone.
func TestEWMAForget(t *testing.T) {
	clock := sim.NewClock()
	q := NewEWMA(clock, 0)
	q.Push(frame(1, 512))
	q.Forget(1) // queued: must be a no-op
	if f := q.Pop(); f == nil || f.Circ != 1 {
		t.Fatal("Forget dropped a circuit with queued frames")
	}
	q.Forget(1) // idle: released to the free list
	q.Forget(9) // unknown: no-op
	// The freed node is reused with reset cost and a fresh sequence.
	q.Push(frame(2, 512))
	q.Pop()
	q.Push(frame(1, 512))
	q.Push(frame(2, 512))
	if f := q.Pop(); f.Circ != 1 {
		t.Fatalf("popped circuit %d, want re-created circuit 1 at cost 0", f.Circ)
	}
}

// TestEWMAZeroAllocSteadyState pins the hot-path contract directly
// (the benchcases gate measures the same thing in CI).
func TestEWMAZeroAllocSteadyState(t *testing.T) {
	clock := sim.NewClock()
	q := NewEWMA(clock, 0)
	frames := make([]*netem.Frame, 8)
	for i := range frames {
		frames[i] = frame(uint32(i+1), 512)
	}
	cycle := func() {
		for _, f := range frames {
			q.Push(f)
		}
		for range frames {
			q.Pop()
		}
	}
	cycle() // warm the rings, heap and node map
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("steady-state push/pop allocates %.1f per cycle", avg)
	}
}

func TestPoliceRefusesWhenDry(t *testing.T) {
	clock := sim.NewClock()
	q := NewPolice(NewFIFO(), clock, units.Mbps(8), 1024*units.Byte)
	if !q.Push(frame(1, 512)) || !q.Push(frame(1, 512)) {
		t.Fatal("burst-sized pushes refused")
	}
	if q.Push(frame(1, 512)) {
		t.Fatal("push beyond the bucket accepted")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	// 8 Mbit/s = 1 MB/s: after 1 ms the bucket holds ~1000 bytes again.
	clock.After(time.Millisecond, func() {
		if !q.Push(frame(1, 512)) {
			t.Fatal("push after refill refused")
		}
	})
	clock.Run()
	for i := 0; i < 3; i++ {
		if q.Pop() == nil {
			t.Fatalf("admitted frame %d missing", i)
		}
	}
}

func TestPoliceBucketCapsAtBurst(t *testing.T) {
	clock := sim.NewClock()
	q := NewPolice(NewFIFO(), clock, units.Mbps(100), 512*units.Byte)
	// However long the idle period, the bucket never exceeds one burst.
	clock.After(time.Second, func() {
		if !q.Push(frame(1, 512)) {
			t.Fatal("first push refused")
		}
		if q.Push(frame(1, 512)) {
			t.Fatal("bucket exceeded its burst depth")
		}
	})
	clock.Run()
}
