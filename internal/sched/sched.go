// Package sched provides the pluggable circuit schedulers a relay
// uplink or backbone trunk can install via netem.Link.SetScheduler:
// FIFO (the built-in discipline, reified so it can be wrapped), a
// Tor-style EWMA quiet-circuit priority scheduler, and a token-bucket
// bandwidth policer that wraps either.
//
// All schedulers are deterministic — ties break on a monotonic
// activation sequence, never on map order — and allocation-free in
// steady state, so they fit the pooled-event hot path: rings and heaps
// grow to their working set once, circuit nodes come from a free list,
// and Push/Pop never allocate afterwards.
package sched

import (
	"fmt"
	"math"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// Queue is the scheduler contract a relay holds: the link-facing
// netem.SchedQueue plus Forget, which releases a torn-down circuit's
// bookkeeping (EWMA cost, free-listed node) so long churn runs do not
// accumulate dead-circuit state.
type Queue interface {
	netem.SchedQueue
	// Forget drops the per-circuit state of a circuit with no queued
	// frames. Forgetting a circuit that still has frames queued, or one
	// the scheduler never saw, is a no-op.
	Forget(circ uint32)
}

// frameRing is a growable power-of-two FIFO of frames (the same shape
// as netem's internal ring, duplicated here because that one is
// unexported and this package sits beside netem, not inside it).
type frameRing struct {
	buf  []*netem.Frame
	head int
	n    int
}

func (r *frameRing) len() int { return r.n }

func (r *frameRing) push(f *netem.Frame) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = f
	r.n++
}

func (r *frameRing) pop() *netem.Frame {
	if r.n == 0 {
		return nil
	}
	f := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return f
}

func (r *frameRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]*netem.Frame, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// FIFO serves frames strictly in arrival order — behaviourally
// identical to a link's built-in data ring. It exists so the policer
// (and sweep arms that name a discipline explicitly) have a concrete
// queue to wrap.
type FIFO struct {
	ring frameRing
}

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Push accepts every frame.
func (q *FIFO) Push(f *netem.Frame) bool { q.ring.push(f); return true }

// Pop returns the oldest frame, or nil when empty.
func (q *FIFO) Pop() *netem.Frame { return q.ring.pop() }

// Len returns the number of queued frames.
func (q *FIFO) Len() int { return q.ring.len() }

// Forget is a no-op: FIFO keeps no per-circuit state.
func (q *FIFO) Forget(uint32) {}

// DefaultHalfLife is the EWMA decay half-life when none is given —
// Tor's CircuitPriorityHalflife default of 30 s.
const DefaultHalfLife = 30 * time.Second

// renormThreshold bounds the shared EWMA scale factor. Costs are
// stored at epoch scale and increments grow as 2^(Δt/halfLife), so
// after enough simulated time the scale overflows float64; dividing
// every cost by the current scale and restarting the epoch preserves
// all orderings exactly (uniform positive scaling).
const renormThreshold = 1e100

// circNode is one circuit's state in the EWMA scheduler: its queued
// frames, its decayed cost, and its position in the active heap
// (heapIdx < 0 when idle). seq is the creation sequence, the
// deterministic tie-break for equal costs.
type circNode struct {
	circ    uint32
	cost    float64
	seq     uint64
	heapIdx int
	ring    frameRing
	next    *circNode // free list
}

// EWMA is a Tor-style quiet-circuit priority scheduler: each circuit
// accumulates an exponentially-decayed cost for the bytes it has
// recently sent, and the serializer always picks the queued circuit
// with the lowest cost. Interactive circuits, mostly quiet, keep a low
// cost and jump ahead of bulk circuits at every transmission slot —
// the "EWMA" scheduler of Tang & Goldberg that Tor ships as
// CircuitPriorityHalflife.
//
// Implementation: costs are stored at a fixed epoch scale and
// increments are multiplied by 2^((now−epoch)/halfLife), which makes
// the uniform decay implicit (old costs shrink relative to new
// increments) and keeps Pop O(log n) without touching idle circuits.
type EWMA struct {
	clock    *sim.Clock
	halfLife time.Duration
	epoch    sim.Time

	nodes   map[uint32]*circNode
	heap    []*circNode // active (ring.len > 0) circuits, min-cost first
	free    *circNode
	nextSeq uint64
	length  int
}

// NewEWMA returns an empty EWMA scheduler on the given clock.
// halfLife ≤ 0 selects DefaultHalfLife.
func NewEWMA(clock *sim.Clock, halfLife time.Duration) *EWMA {
	if clock == nil {
		panic("sched: NewEWMA with nil clock")
	}
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	return &EWMA{
		clock:    clock,
		halfLife: halfLife,
		epoch:    clock.Now(),
		nodes:    make(map[uint32]*circNode),
	}
}

// scale returns the cost multiplier for an increment at the current
// time, renormalizing the epoch when it would grow unboundedly.
func (q *EWMA) scale() float64 {
	now := q.clock.Now()
	s := math.Exp2(float64(now.Sub(q.epoch)) / float64(q.halfLife))
	if s > renormThreshold {
		inv := 1 / s
		for _, n := range q.nodes {
			n.cost *= inv
		}
		q.epoch = now
		return 1
	}
	return s
}

// node returns the circuit's node, creating (or reviving from the free
// list) one on first sight.
func (q *EWMA) node(circ uint32) *circNode {
	if n := q.nodes[circ]; n != nil {
		return n
	}
	n := q.free
	if n != nil {
		q.free = n.next
		n.next = nil
	} else {
		n = &circNode{}
	}
	n.circ = circ
	n.cost = 0
	n.heapIdx = -1
	q.nextSeq++
	n.seq = q.nextSeq
	q.nodes[circ] = n
	return n
}

// Push accepts every frame, activating its circuit if it was idle.
func (q *EWMA) Push(f *netem.Frame) bool {
	n := q.node(f.Circ)
	n.ring.push(f)
	q.length++
	if n.heapIdx < 0 {
		q.heapPush(n)
	}
	return true
}

// Pop returns the next frame of the lowest-cost queued circuit and
// charges that circuit the frame's bytes at the current decay scale.
func (q *EWMA) Pop() *netem.Frame {
	if len(q.heap) == 0 {
		return nil
	}
	n := q.heap[0]
	f := n.ring.pop()
	q.length--
	n.cost += q.scale() * float64(f.Size)
	if n.ring.len() == 0 {
		q.heapRemoveTop()
	} else {
		q.siftDown(0)
	}
	return f
}

// Len returns the number of queued frames across all circuits.
func (q *EWMA) Len() int { return q.length }

// PeekCirc reports the circuit the next Pop would serve — the heap
// root's circuit — without popping or charging cost. Trained links use
// it to end a train exactly where EWMA would preempt, so batching
// never changes which circuit gets the wire next. (The FIFO scheduler
// deliberately lacks this method: FIFO has no preemption points, so
// its trains coalesce across circuits.)
func (q *EWMA) PeekCirc() (uint32, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].circ, true
}

// Forget releases an idle circuit's node to the free list. Circuits
// with queued frames are left alone (their frames still must drain).
func (q *EWMA) Forget(circ uint32) {
	n := q.nodes[circ]
	if n == nil || n.ring.len() > 0 {
		return
	}
	delete(q.nodes, circ)
	n.next = q.free
	q.free = n
}

// less orders the heap: lower cost first, creation order on ties.
func less(a, b *circNode) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return a.seq < b.seq
}

func (q *EWMA) heapPush(n *circNode) {
	n.heapIdx = len(q.heap)
	q.heap = append(q.heap, n)
	q.siftUp(n.heapIdx)
}

func (q *EWMA) heapRemoveTop() {
	top := q.heap[0]
	top.heapIdx = -1
	last := len(q.heap) - 1
	if last > 0 {
		q.heap[0] = q.heap[last]
		q.heap[0].heapIdx = 0
	}
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if last > 0 {
		q.siftDown(0)
	}
}

func (q *EWMA) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(q.heap[i], q.heap[parent]) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *EWMA) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(q.heap) && less(q.heap[l], q.heap[min]) {
			min = l
		}
		if r < len(q.heap) && less(q.heap[r], q.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		q.swap(i, min)
		i = min
	}
}

func (q *EWMA) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].heapIdx = i
	q.heap[j].heapIdx = j
}

// DefaultBurst is the policer's bucket depth when none is given: 64
// cells' worth of wire bytes, enough that a window-sized burst at the
// configured rate is not clipped, small enough that the long-run rate
// binds within a round-trip.
const DefaultBurst = 64 * 512 * units.Byte

// Police wraps a scheduler with a token-bucket bandwidth cap: frames
// arriving when the bucket is dry are refused at Push (the link counts
// a SchedDrop), not queued — policing, not shaping, so the scheduler
// needs no timer and the serializer stays work-conserving for frames
// already admitted. A refused data frame is recoverable: its cell is
// retained by the upstream sender until acknowledged, so the drop
// surfaces as a retransmission, exactly like a tail drop.
type Police struct {
	inner  Queue
	clock  *sim.Clock
	rate   units.DataRate
	burst  units.DataSize
	tokens float64 // bytes available
	last   sim.Time
}

// NewPolice wraps inner with a token-bucket cap of rate (burst ≤ 0
// selects DefaultBurst). The bucket starts full.
func NewPolice(inner Queue, clock *sim.Clock, rate units.DataRate, burst units.DataSize) *Police {
	if inner == nil {
		panic("sched: NewPolice with nil inner queue")
	}
	if clock == nil {
		panic("sched: NewPolice with nil clock")
	}
	if rate <= 0 {
		panic(fmt.Sprintf("sched: NewPolice with rate %v", rate))
	}
	if burst <= 0 {
		burst = DefaultBurst
	}
	return &Police{
		inner: inner, clock: clock, rate: rate, burst: burst,
		tokens: float64(burst), last: clock.Now(),
	}
}

// refill credits the bucket for the time elapsed since the last call.
func (q *Police) refill() {
	now := q.clock.Now()
	if now == q.last {
		return
	}
	q.tokens += q.rate.BytesPerSecond() * now.Sub(q.last).Seconds()
	if max := float64(q.burst); q.tokens > max {
		q.tokens = max
	}
	q.last = now
}

// Push admits the frame if the bucket holds its size in tokens,
// refusing it otherwise.
func (q *Police) Push(f *netem.Frame) bool {
	q.refill()
	if q.tokens < float64(f.Size) {
		return false
	}
	q.tokens -= float64(f.Size)
	return q.inner.Push(f)
}

// Pop forwards to the wrapped scheduler.
func (q *Police) Pop() *netem.Frame { return q.inner.Pop() }

// Len forwards to the wrapped scheduler.
func (q *Police) Len() int { return q.inner.Len() }

// Forget forwards to the wrapped scheduler.
func (q *Police) Forget(circ uint32) { q.inner.Forget(circ) }

// PeekCirc forwards to the wrapped scheduler when it can peek —
// policing acts at admission, so the dequeue order (and therefore the
// train split points) is entirely the inner scheduler's.
func (q *Police) PeekCirc() (uint32, bool) {
	if p, ok := q.inner.(netem.CircPeeker); ok {
		return p.PeekCirc()
	}
	return 0, false
}
