package netem

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// SwitchID names a backbone switch of a GraphFabric. Switches are
// fabric-internal: nodes never address them, they only home to one.
type SwitchID string

// TrunkConfig describes one switch-to-switch trunk. A trunk is
// bidirectional: each direction is a full Link with this configuration,
// so rate, delay, bounded queue and random loss all apply per direction.
type TrunkConfig struct {
	// Rate is the serialization rate of each direction. Must be positive.
	Rate units.DataRate
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueCap bounds each direction's queue (0 = unbounded).
	QueueCap units.DataSize
	// LossProb drops frames independently on each direction.
	LossProb float64
	// TrainSize enables cell trains on both directions (see
	// LinkConfig.TrainSize). <= 1 keeps the per-frame machinery.
	TrainSize int
}

// SymmetricTrunk returns a TrunkConfig without loss.
func SymmetricTrunk(rate units.DataRate, delay time.Duration, queueCap units.DataSize) TrunkConfig {
	return TrunkConfig{Rate: rate, Delay: delay, QueueCap: queueCap}
}

// TrunkSpec declares one trunk of a GraphSpec.
type TrunkSpec struct {
	A, B   SwitchID
	Config TrunkConfig
}

// GraphSpec is the data description of a routed backbone: switches,
// trunks between them, and which switch each node homes to. It is plain
// data so scenarios can carry it and every trial can build its own
// fabric (sharing a built fabric across parallel trials would race).
type GraphSpec struct {
	// Switches lists the backbone switches. At least one.
	Switches []SwitchID
	// Trunks lists the bidirectional trunk links.
	Trunks []TrunkSpec
	// Homes pins nodes to switches. Nodes not listed here home to a
	// switch chosen by a deterministic hash of their ID, so generated
	// populations and ad-hoc clients attach without enumeration.
	Homes map[NodeID]SwitchID
}

// Validate checks the spec for structural errors: no switches, duplicate
// switches, trunks naming unknown or identical endpoints, duplicate
// trunks, non-positive trunk rates, or homes to unknown switches.
func (gs GraphSpec) Validate() error {
	if len(gs.Switches) == 0 {
		return fmt.Errorf("netem: graph spec with no switches")
	}
	switches := make(map[SwitchID]bool, len(gs.Switches))
	for _, id := range gs.Switches {
		if switches[id] {
			return fmt.Errorf("netem: duplicate switch %q", id)
		}
		switches[id] = true
	}
	pairs := make(map[[2]SwitchID]bool, len(gs.Trunks))
	for _, t := range gs.Trunks {
		if t.A == t.B {
			return fmt.Errorf("netem: trunk %q-%q is a self-loop", t.A, t.B)
		}
		if !switches[t.A] || !switches[t.B] {
			return fmt.Errorf("netem: trunk %q-%q names an unknown switch", t.A, t.B)
		}
		key := [2]SwitchID{t.A, t.B}
		if t.B < t.A {
			key = [2]SwitchID{t.B, t.A}
		}
		if pairs[key] {
			return fmt.Errorf("netem: duplicate trunk %q-%q", t.A, t.B)
		}
		pairs[key] = true
		if t.Config.Rate <= 0 {
			return fmt.Errorf("netem: trunk %q-%q with non-positive rate %v", t.A, t.B, t.Config.Rate)
		}
		if t.Config.Delay < 0 {
			return fmt.Errorf("netem: trunk %q-%q with negative delay %v", t.A, t.B, t.Config.Delay)
		}
		if t.Config.LossProb < 0 || t.Config.LossProb > 1 {
			return fmt.Errorf("netem: trunk %q-%q loss probability %v outside [0,1]", t.A, t.B, t.Config.LossProb)
		}
	}
	for node, sw := range gs.Homes {
		if !switches[sw] {
			return fmt.Errorf("netem: node %q homed to unknown switch %q", node, sw)
		}
	}
	return nil
}

// Clone returns a deep copy of the spec: mutating the copy's switch or
// trunk lists, or its home map, never aliases the original. Sweep
// dimensions use this to vary trunk parameters per grid point.
func (gs GraphSpec) Clone() GraphSpec {
	out := gs
	if gs.Switches != nil {
		out.Switches = append([]SwitchID(nil), gs.Switches...)
	}
	if gs.Trunks != nil {
		out.Trunks = append([]TrunkSpec(nil), gs.Trunks...)
	}
	if gs.Homes != nil {
		out.Homes = make(map[NodeID]SwitchID, len(gs.Homes))
		for n, s := range gs.Homes {
			out.Homes[n] = s
		}
	}
	return out
}

// HasTrunk reports whether the spec declares a trunk between a and b (in
// either declaration order).
func (gs GraphSpec) HasTrunk(a, b SwitchID) bool {
	for _, t := range gs.Trunks {
		if (t.A == a && t.B == b) || (t.A == b && t.B == a) {
			return true
		}
	}
	return false
}

// MinPositiveTrunkDelay returns the smallest nonzero propagation delay
// over every trunk in the spec, or zero when no trunk has one. It is a
// partition-independent lower bound on any ShardPlan's lookahead (the
// lookahead minimizes over cut trunks, a subset), so scenario engines
// use it as the shard-count-invariant barrier window: the same barrier
// schedule at every shard count, including one.
func (gs GraphSpec) MinPositiveTrunkDelay() time.Duration {
	min := time.Duration(0)
	for _, t := range gs.Trunks {
		if d := t.Config.Delay; d > 0 && (min == 0 || d < min) {
			min = d
		}
	}
	return min
}

// Build constructs the fabric the spec describes on the given clock. rng
// drives trunk loss processes (only consulted when a trunk has loss).
// Build panics on an invalid spec — Validate first when the spec comes
// from user input.
func (gs GraphSpec) Build(clock *sim.Clock, rng *sim.RNG) *GraphFabric {
	if err := gs.Validate(); err != nil {
		panic(err)
	}
	g := NewGraphFabric(clock)
	for _, id := range gs.Switches {
		g.AddSwitch(id)
	}
	for _, t := range gs.Trunks {
		g.AddTrunk(t.A, t.B, t.Config, rng)
	}
	for _, node := range sortedNodes(gs.Homes) {
		g.AssignHome(node, gs.Homes[node])
	}
	return g
}

func sortedNodes(m map[NodeID]SwitchID) []NodeID {
	ids := make([]NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// gswitch is one backbone switch: its outgoing trunk per neighbor and
// the build-time next-hop table toward every other switch.
type gswitch struct {
	id   SwitchID
	out  map[SwitchID]*Link    // neighbor → trunk link this switch transmits on
	next map[SwitchID]SwitchID // destination switch → next hop
}

// GraphFabric routes frames across an arbitrary switch graph: a node's
// uplink feeds its home switch, the switch graph forwards along
// precomputed shortest paths over trunk links (each a full Link, so
// trunks serialize, queue, delay and drop like any access link), and the
// destination's home switch feeds its downlink. With a single switch it
// degenerates to exactly the star.
//
// Construction is two-phase: AddSwitch/AddTrunk build the backbone, the
// first Attach freezes it and computes the routes (deterministic
// shortest path: trunk propagation delay, then hop count, then
// lexicographic next-hop as tie-breakers). Mutating the backbone after
// the freeze panics — rerouting under live traffic would invalidate
// running experiments.
type GraphFabric struct {
	clock    *sim.Clock
	switches map[SwitchID]*gswitch
	order    []SwitchID // sorted, fixed at freeze
	trunks   []*Link    // both directions, deterministic order
	frozen   bool

	ports  map[NodeID]*Port
	pinned map[NodeID]SwitchID // explicit homes
	homes  map[NodeID]SwitchID // resolved at attach
	pool   *FramePool

	// Sharded-execution hooks (see shard.go). remoteHome resolves nodes
	// attached on other shards of a ShardedFabric so routeFrom forwards
	// toward their home switch instead of counting an unknown
	// destination; onAttach mirrors local attachments into the sharded
	// fabric's global registry. Both are nil on standalone fabrics.
	remoteHome func(NodeID) (SwitchID, bool)
	onAttach   func(id NodeID, home SwitchID, p *Port)

	unknownDst uint64
	unroutable uint64
}

var _ Fabric = (*GraphFabric)(nil)

// NewGraphFabric creates an empty routed fabric on the given clock.
func NewGraphFabric(clock *sim.Clock) *GraphFabric {
	if clock == nil {
		panic("netem: NewGraphFabric with nil clock")
	}
	return &GraphFabric{
		clock:    clock,
		switches: make(map[SwitchID]*gswitch),
		ports:    make(map[NodeID]*Port),
		pinned:   make(map[NodeID]SwitchID),
		homes:    make(map[NodeID]SwitchID),
		pool:     NewFramePool(),
	}
}

// Clock returns the simulation clock the network runs on.
func (g *GraphFabric) Clock() *sim.Clock { return g.clock }

// AddSwitch registers a backbone switch. Panics on duplicates or after
// the fabric is frozen.
func (g *GraphFabric) AddSwitch(id SwitchID) {
	if g.frozen {
		panic(fmt.Sprintf("netem: AddSwitch(%q) after first Attach", id))
	}
	if _, dup := g.switches[id]; dup {
		panic(fmt.Sprintf("netem: switch %q added twice", id))
	}
	g.switches[id] = &gswitch{
		id:   id,
		out:  make(map[SwitchID]*Link),
		next: make(map[SwitchID]SwitchID),
	}
}

// AddTrunk connects two switches with a bidirectional trunk: one Link
// per direction, named "trunk:a>b" and "trunk:b>a". rng drives the loss
// process (may be nil when cfg.LossProb is zero). Panics on unknown
// switches, self-loops, duplicate pairs, or after the freeze.
func (g *GraphFabric) AddTrunk(a, b SwitchID, cfg TrunkConfig, rng *sim.RNG) {
	if g.frozen {
		panic(fmt.Sprintf("netem: AddTrunk(%q, %q) after first Attach", a, b))
	}
	if a == b {
		panic(fmt.Sprintf("netem: trunk %q-%q is a self-loop", a, b))
	}
	sa, sb := g.switches[a], g.switches[b]
	if sa == nil || sb == nil {
		panic(fmt.Sprintf("netem: trunk %q-%q names an unknown switch", a, b))
	}
	if _, dup := sa.out[b]; dup {
		panic(fmt.Sprintf("netem: duplicate trunk %q-%q", a, b))
	}
	lc := LinkConfig{Rate: cfg.Rate, Delay: cfg.Delay, QueueCap: cfg.QueueCap, LossProb: cfg.LossProb, RNG: rng, TrainSize: cfg.TrainSize}
	sa.out[b] = NewLink(trunkName(a, b), g.clock, lc, &switchIngress{g: g, sw: sb})
	sa.out[b].UsePool(g.pool, false)
	sb.out[a] = NewLink(trunkName(b, a), g.clock, lc, &switchIngress{g: g, sw: sa})
	sb.out[a].UsePool(g.pool, false)
}

// switchIngress is the handler feeding a switch's routing stage — the
// destination of every uplink and trunk that terminates there. It
// implements TrainHandler so an arriving train is routed as one batch
// and its members enqueue back to back on their next link, keeping the
// coalescing alive across the backbone.
type switchIngress struct {
	g  *GraphFabric
	sw *gswitch
}

func (in *switchIngress) Deliver(f *Frame) { in.g.routeFrom(in.sw, f) }

func (in *switchIngress) DeliverTrain(fs []*Frame) {
	for _, f := range fs {
		in.g.routeFrom(in.sw, f)
	}
}

func trunkName(a, b SwitchID) string { return fmt.Sprintf("trunk:%s>%s", a, b) }

// Trunk returns the directed trunk link a → b, or nil. Experiments use
// it to step a shared bottleneck's capacity mid-run and to read stats.
func (g *GraphFabric) Trunk(a, b SwitchID) *Link {
	sa := g.switches[a]
	if sa == nil {
		return nil
	}
	return sa.out[b]
}

// Trunks returns every directed trunk link in deterministic
// (source switch, destination switch) order.
func (g *GraphFabric) Trunks() []*Link {
	if !g.frozen {
		g.freeze()
	}
	return g.trunks
}

// AssignHome pins a node to a switch before it attaches. Unpinned nodes
// home to a deterministic hash of their ID. Panics on unknown switches
// or nodes that already attached.
func (g *GraphFabric) AssignHome(node NodeID, sw SwitchID) {
	if _, ok := g.switches[sw]; !ok {
		panic(fmt.Sprintf("netem: AssignHome(%q) to unknown switch %q", node, sw))
	}
	if _, attached := g.ports[node]; attached {
		panic(fmt.Sprintf("netem: AssignHome(%q) after the node attached", node))
	}
	g.pinned[node] = sw
}

// Home returns the switch a node homes (or would home) to.
func (g *GraphFabric) Home(node NodeID) SwitchID {
	if sw, ok := g.homes[node]; ok {
		return sw
	}
	if sw, ok := g.pinned[node]; ok {
		return sw
	}
	if !g.frozen {
		g.freeze()
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s", node)
	return g.order[h.Sum64()%uint64(len(g.order))]
}

// Attach connects a node to its home switch. The handler receives every
// frame addressed to id. Attach panics if id is already attached, the
// handler is nil, or the fabric has no switches. The first Attach
// freezes the backbone and computes the routing tables.
func (g *GraphFabric) Attach(id NodeID, cfg AccessConfig, h Handler, rng *sim.RNG) *Port {
	if _, dup := g.ports[id]; dup {
		panic(fmt.Sprintf("netem: node %q attached twice", id))
	}
	if h == nil {
		panic(fmt.Sprintf("netem: node %q attached with nil handler", id))
	}
	if !g.frozen {
		g.freeze()
	}
	home := g.Home(id)
	sw := g.switches[home]
	p := newPort(id, g.clock, cfg, &switchIngress{g: g, sw: sw}, h, rng, g.pool)
	g.ports[id] = p
	g.homes[id] = home
	if g.onAttach != nil {
		g.onAttach(id, home, p)
	}
	return p
}

// freeze fixes the backbone: sorts the switch order, collects the trunk
// list, and computes every switch's next-hop table.
func (g *GraphFabric) freeze() {
	if len(g.switches) == 0 {
		panic("netem: graph fabric with no switches")
	}
	g.frozen = true
	g.order = make([]SwitchID, 0, len(g.switches))
	for id := range g.switches {
		g.order = append(g.order, id)
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i] < g.order[j] })
	for _, a := range g.order {
		sa := g.switches[a]
		for _, b := range g.neighbors(sa) {
			g.trunks = append(g.trunks, sa.out[b])
		}
	}
	for _, src := range g.order {
		g.computeRoutes(src)
	}
}

// neighbors returns a switch's trunk neighbors in sorted order.
func (g *GraphFabric) neighbors(s *gswitch) []SwitchID {
	out := make([]SwitchID, 0, len(s.out))
	for id := range s.out {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// computeRoutes runs Dijkstra from src over trunk propagation delay,
// breaking ties by hop count and then by lexicographic first hop, and
// stores src's next-hop table. Every step is over sorted orders, so the
// routes are a pure function of the spec.
func (g *GraphFabric) computeRoutes(src SwitchID) {
	type est struct {
		dist  time.Duration
		hops  int
		first SwitchID // next hop out of src
		known bool
	}
	ests := make(map[SwitchID]*est, len(g.order))
	for _, id := range g.order {
		ests[id] = &est{}
	}
	ests[src].known = true
	visited := make(map[SwitchID]bool, len(g.order))

	better := func(d time.Duration, hops int, first SwitchID, cur *est) bool {
		if !cur.known {
			return true
		}
		if d != cur.dist {
			return d < cur.dist
		}
		if hops != cur.hops {
			return hops < cur.hops
		}
		return first < cur.first
	}

	for range g.order {
		// Pick the unvisited known switch with the smallest
		// (dist, hops, first) estimate — the full tie-break order, so a
		// selected switch's estimate is final — breaking exact ties by
		// ID order.
		var u SwitchID
		found := false
		for _, id := range g.order {
			e := ests[id]
			if visited[id] || !e.known {
				continue
			}
			if !found || better(e.dist, e.hops, e.first, ests[u]) ||
				(*e == *ests[u] && id < u) {
				u, found = id, true
			}
		}
		if !found {
			break // remaining switches unreachable
		}
		visited[u] = true
		su := g.switches[u]
		for _, v := range g.neighbors(su) {
			// A visited switch's estimate is final; re-relaxing it
			// could retroactively change tie-break fields its
			// downstream switches already inherited.
			if visited[v] {
				continue
			}
			link := su.out[v]
			d := ests[u].dist + link.Config().Delay
			hops := ests[u].hops + 1
			first := ests[u].first
			if u == src {
				first = v
			}
			if ev := ests[v]; better(d, hops, first, ev) {
				*ev = est{dist: d, hops: hops, first: first, known: true}
			}
		}
	}

	next := g.switches[src].next
	for _, dst := range g.order {
		if dst == src {
			continue
		}
		if e := ests[dst]; e.known {
			next[dst] = e.first
		}
	}
}

// routeFrom forwards a frame that arrived at sw: deliver locally when
// the destination homes here, otherwise transmit on the trunk toward
// the destination's home switch. Unattached destinations and
// destinations without a route are counted and dropped — loudly
// surfaced by the scenario layer so a routing bug cannot silently
// blackhole an experiment.
func (g *GraphFabric) routeFrom(sw *gswitch, f *Frame) {
	dst, ok := g.ports[f.Dst]
	if !ok {
		if g.remoteHome != nil {
			if home, remote := g.remoteHome(f.Dst); remote {
				nh, routed := sw.next[home]
				if !routed {
					g.unroutable++
					g.pool.Put(f)
					return
				}
				sw.out[nh].Send(f)
				return
			}
		}
		g.unknownDst++
		g.pool.Put(f)
		return
	}
	home := g.homes[f.Dst]
	if home == sw.id {
		dst.down.Send(f)
		return
	}
	nh, ok := sw.next[home]
	if !ok {
		g.unroutable++
		g.pool.Put(f)
		return
	}
	sw.out[nh].Send(f)
}

// Port returns the port of an attached node, or nil.
func (g *GraphFabric) Port(id NodeID) *Port { return g.ports[id] }

// Nodes returns the attached node IDs in sorted order.
func (g *GraphFabric) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(g.ports))
	for id := range g.ports {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Switches returns the backbone switch IDs in sorted order.
func (g *GraphFabric) Switches() []SwitchID {
	if !g.frozen {
		g.freeze()
	}
	out := make([]SwitchID, len(g.order))
	copy(out, g.order)
	return out
}

// FramePool returns the fabric's frame pool.
func (g *GraphFabric) FramePool() *FramePool { return g.pool }

// UnknownDst returns how many frames were addressed to detached nodes.
func (g *GraphFabric) UnknownDst() uint64 { return g.unknownDst }

// Unroutable returns how many frames were dropped for lack of a route
// between their home switches (a disconnected backbone).
func (g *GraphFabric) Unroutable() uint64 { return g.unroutable }

// ResetStats zeroes the drop counters and every access and trunk link's
// stats.
func (g *GraphFabric) ResetStats() {
	g.unknownDst = 0
	g.unroutable = 0
	for _, id := range g.Nodes() {
		p := g.ports[id]
		p.up.ResetStats()
		p.down.ResetStats()
	}
	for _, l := range g.Trunks() {
		l.ResetStats()
	}
}

// route returns the switch sequence from a's home to b's home
// (inclusive), or nil when no route exists.
func (g *GraphFabric) route(a, b SwitchID) []SwitchID {
	hops := []SwitchID{a}
	for cur := a; cur != b; {
		nh, ok := g.switches[cur].next[b]
		if !ok {
			return nil
		}
		hops = append(hops, nh)
		cur = nh
	}
	return hops
}

// trunkPath returns the directed trunk links between two attached
// nodes' home switches, or panics when the backbone is disconnected
// between them — analytic path queries on unroutable pairs are
// programming errors.
func (g *GraphFabric) trunkPath(a, b NodeID) []*Link {
	ha, hb := g.homes[a], g.homes[b]
	sws := g.route(ha, hb)
	if sws == nil {
		panic(fmt.Sprintf("netem: no route between %q (home %q) and %q (home %q)", a, ha, b, hb))
	}
	links := make([]*Link, 0, len(sws)-1)
	for i := 0; i+1 < len(sws); i++ {
		links = append(links, g.switches[sws[i]].out[sws[i+1]])
	}
	return links
}

// PathTransits returns the directed trunk links a frame from a to b
// crosses, in traversal order. Panics on unattached nodes or when the
// backbone is disconnected between their homes.
func (g *GraphFabric) PathTransits(a, b NodeID) []*Link {
	if g.ports[a] == nil || g.ports[b] == nil {
		panic(fmt.Sprintf("netem: PathTransits between unattached nodes %q, %q", a, b))
	}
	return g.trunkPath(a, b)
}

// PathOneWay returns the analytic no-queueing one-way latency from a to
// b for a frame of the given size: access serialization and delay on
// both ends plus one serialization and propagation per trunk crossed.
func (g *GraphFabric) PathOneWay(a, b NodeID, size units.DataSize) time.Duration {
	pa, pb := g.ports[a], g.ports[b]
	if pa == nil || pb == nil {
		panic(fmt.Sprintf("netem: PathOneWay between unattached nodes %q, %q", a, b))
	}
	total := pa.cfg.UpRate.TransmissionTime(size) + pa.cfg.Delay +
		pb.cfg.DownRate.TransmissionTime(size) + pb.cfg.Delay
	for _, l := range g.trunkPath(a, b) {
		total += l.Config().Rate.TransmissionTime(size) + l.Config().Delay
	}
	return total
}

// PathRTT returns the analytic no-queueing round-trip time between two
// attached nodes for a frame of the given size in each direction.
func (g *GraphFabric) PathRTT(a, b NodeID, size units.DataSize) time.Duration {
	return g.PathOneWay(a, b, size) + g.PathOneWay(b, a, size)
}

// BottleneckRate returns the minimum forwarding rate along the node
// sequence path: each sender's uplink, every trunk its frames cross,
// and each receiver's downlink.
func (g *GraphFabric) BottleneckRate(path []NodeID) units.DataRate {
	if len(path) < 2 {
		panic("netem: BottleneckRate needs at least two nodes")
	}
	min := units.DataRate(1<<63 - 1)
	for i := 0; i < len(path)-1; i++ {
		src, dst := g.ports[path[i]], g.ports[path[i+1]]
		if src == nil || dst == nil {
			panic(fmt.Sprintf("netem: BottleneckRate over unattached hop %q→%q", path[i], path[i+1]))
		}
		if src.cfg.UpRate < min {
			min = src.cfg.UpRate
		}
		if dst.cfg.DownRate < min {
			min = dst.cfg.DownRate
		}
		for _, l := range g.trunkPath(path[i], path[i+1]) {
			if r := l.Config().Rate; r < min {
				min = r
			}
		}
	}
	return min
}
