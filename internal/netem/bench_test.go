package netem

import (
	"testing"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// BenchmarkLinkQueued measures a burst of 64 frames pushed through the
// queue per iteration — exercises ring wraparound and the busy
// serializer path rather than the idle-link fast path.
func BenchmarkLinkQueued(b *testing.B) {
	clock := sim.NewClock()
	delivered := 0
	link := NewLink("bench", clock, LinkConfig{
		Rate: units.Mbps(100), Delay: time.Millisecond,
	}, HandlerFunc(func(f *Frame) { delivered++ }))
	pool := NewFramePool()
	link.UsePool(pool, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			f := pool.Get()
			f.Src, f.Dst, f.Size = "a", "b", 512
			f.Priority = j%8 == 0
			link.Send(f)
		}
		clock.Run()
	}
	if delivered != 64*b.N {
		b.Fatalf("delivered %d of %d", delivered, 64*b.N)
	}
}
