package netem

import (
	"fmt"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// LinkConfig describes a unidirectional point-to-point link.
type LinkConfig struct {
	// Rate is the serialization rate. Must be positive.
	Rate units.DataRate
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueCap bounds the egress queue in bytes, *excluding* the frame
	// currently being serialized. Zero means unbounded (useful for
	// analytically clean single-flow experiments; the paper's scenarios
	// rely on backpressure rather than drops).
	QueueCap units.DataSize
	// LossProb drops each frame independently with this probability
	// after serialization ("in flight"), emulating lossy paths for the
	// failure-injection tests. Requires RNG when non-zero.
	LossProb float64
	// RNG drives random loss. Only consulted when LossProb > 0.
	RNG *sim.RNG
	// TrainSize, when > 1, enables cell trains: up to TrainSize
	// back-to-back queued frames are coalesced into one train that
	// serializes, propagates and delivers as a batch, amortizing event
	// scheduling, ring churn and handler dispatch across the burst.
	// Values <= 1 select the untrained per-frame machinery verbatim, so
	// TrainSize 0 and 1 are byte-identical (the determinism fixture
	// relies on this). Train membership is decided at formation time:
	// frames arriving while a train serializes join the next one, a
	// train never mixes the priority and data classes, and an installed
	// scheduler's preemption points split trains (see transmitTrain).
	TrainSize int
}

// Validate checks the configuration. NewLink panics on exactly these
// errors; layers that assemble configs from user input (scenario specs,
// sweep grids) call Validate first so a bad grid point fails cleanly
// instead of crashing a worker.
func (c LinkConfig) Validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("netem: non-positive rate %v", c.Rate)
	}
	if c.Delay < 0 {
		return fmt.Errorf("netem: negative delay %v", c.Delay)
	}
	if c.LossProb < 0 || c.LossProb > 1 {
		return fmt.Errorf("netem: loss probability %v outside [0,1]", c.LossProb)
	}
	if c.LossProb > 0 && c.RNG == nil {
		return fmt.Errorf("netem: loss probability %v but no RNG", c.LossProb)
	}
	if c.TrainSize < 0 {
		return fmt.Errorf("netem: negative train size %d", c.TrainSize)
	}
	return nil
}

// LinkStats counts what happened on a link. All counters are cumulative
// since construction or the last ResetStats.
//
// CellsDelivered counts frames handed to the receiver; TrainsDelivered
// counts delivery events. On an untrained link the two advance in
// lockstep (every delivery carries one frame), so their ratio — the
// mean train length, see MeanTrainLen — is exactly 1 there and measures
// the achieved coalescing on trained links.
type LinkStats struct {
	Enqueued        uint64         // frames accepted into the queue
	CellsDelivered  uint64         // frames handed to the receiver
	TrainsDelivered uint64         // delivery events (trains; = frames when untrained)
	TrainStretched  uint64         // frames that joined a train mid-serialization
	TailDrops       uint64         // frames dropped because the queue was full
	RandomLoss      uint64         // frames dropped by the loss process
	DownDrops       uint64         // frames dropped because the link was down
	SchedDrops      uint64         // frames refused by the installed scheduler
	BytesOut        units.DataSize // payload bytes delivered
	QueueDelay      time.Duration  // total time frames spent queued (excl. serialization)
	MaxQueueLen     int            // high-water mark of queued frames
}

// MeanTrainLen returns frames per delivery event — 1.0 on an untrained
// link, up to TrainSize under full coalescing, 0 when nothing was
// delivered. Result tables and sweep sinks surface it as a derived
// column.
func (s LinkStats) MeanTrainLen() float64 {
	if s.TrainsDelivered == 0 {
		return 0
	}
	return float64(s.CellsDelivered) / float64(s.TrainsDelivered)
}

// Merge accumulates another snapshot into s: counters add, the queue
// high-water mark takes the maximum. Result aggregation uses it to pool
// the same link's stats across replications.
func (s *LinkStats) Merge(o LinkStats) {
	s.Enqueued += o.Enqueued
	s.CellsDelivered += o.CellsDelivered
	s.TrainsDelivered += o.TrainsDelivered
	s.TrainStretched += o.TrainStretched
	s.TailDrops += o.TailDrops
	s.RandomLoss += o.RandomLoss
	s.DownDrops += o.DownDrops
	s.SchedDrops += o.SchedDrops
	s.BytesOut += o.BytesOut
	s.QueueDelay += o.QueueDelay
	if o.MaxQueueLen > s.MaxQueueLen {
		s.MaxQueueLen = o.MaxQueueLen
	}
}

// Link is a unidirectional pipe with a drop-tail FIFO, a serializer that
// transmits one frame at a time at the configured rate, and a
// propagation-delay stage. It is the only place in the simulator where
// bandwidth contention happens.
//
// The per-frame machinery is a pre-bound state machine: the two stage
// callbacks (serialization complete, propagation complete) are bound
// once at construction, the serializer's current frame lives in a field,
// and frames past the serializer wait in a FIFO ring — propagation delay
// is constant per link, so deliveries complete in the order they were
// scheduled. Together with ring-buffered queues and a FramePool this
// makes the transit of a frame allocation-free.
type Link struct {
	name  string
	clock *sim.Clock
	cfg   LinkConfig
	dst   Handler

	queue       frameRing  // data frames (unused when sched is set)
	prioQueue   frameRing  // control frames, serialized first
	sched       SchedQueue // optional data-frame scheduler, replaces queue
	queuedBytes units.DataSize
	busy        bool

	serializing *Frame    // the frame occupying the serializer (untrained)
	inflight    frameRing // serialized frames in the propagation stage

	// Train state (TrainSize > 1 only). train holds the members of the
	// train occupying the serializer; survivors records, per in-flight
	// train, how many members passed the loss stage (the propagation
	// FIFO interleaves members of consecutive trains, so delivery needs
	// the per-train count); deliverBuf is the scratch batch handed to a
	// TrainHandler. All three reach their working set once and are
	// reused — steady-state train transit is allocation-free.
	train      []*Frame
	survivors  countRing
	deliverBuf []*Frame

	// Stretching state: a frame arriving while a train with room is in
	// the serializer joins it, pushing the train's completion back by
	// the frame's own serialization time. trainSrc records which queue
	// the train draws from (a train never mixes sources), trainRate the
	// formation-time rate every member — joiners included — serializes
	// at, trainDoneAt the currently scheduled completion instant, and
	// txDoneEv the completion event being pushed back.
	trainSrc    trainSource
	trainRate   units.DataRate
	trainDoneAt sim.Time
	txDoneEv    sim.Handle

	txDoneFn  func() // onTxDone / onTxDoneTrain bound once
	deliverFn func() // onDeliver / onDeliverTrain bound once

	// Fault-injection state (see internal/faults). down drops every frame
	// completing serialization (flapping links, trunk partitions);
	// lossModel adds a stateful loss process on top of cfg.LossProb;
	// jitter perturbs propagation delay per delivery, with delivery
	// instants clamped monotone (lastDeliverAt) so the in-flight FIFO
	// stays ordered. All three are nil/false in fault-free runs, leaving
	// the hot path and the RNG draw order byte-identical.
	down          bool
	lossModel     LossModel
	jitter        JitterModel
	lastDeliverAt sim.Time

	// pool, when non-nil, receives dead frames (dropped, lost, or — on
	// terminal links — delivered). terminal marks the last link before a
	// node handler: only there does Deliver end a frame's life; on
	// fabric-internal links the routing stage sends it onward.
	pool     *FramePool
	terminal bool

	// export, when set, makes this a shard-boundary egress: frames that
	// survive serialization are handed to the sharded fabric at
	// serialization end, stamped with the instant they would have been
	// delivered (now + Delay, jitter-clamped), instead of entering the
	// local propagation FIFO. The callback owns the frames for the
	// duration of the call and must detach payloads it keeps — the
	// propagation stage and delivery stats then happen on the importing
	// shard, so LinkStats stay identical to local delivery.
	export func(fs []*Frame, arrival sim.Time)

	stats LinkStats

	// OnDrop, if non-nil, observes every dropped frame (tail drop or
	// random loss). Tests use it for failure injection assertions. The
	// frame is recycled when the observer returns.
	OnDrop func(f *Frame, reason DropReason)
}

// DropReason says why a frame was discarded.
type DropReason int

// Drop reasons.
const (
	DropTail  DropReason = iota // egress queue full
	DropLoss                    // random loss process
	DropSched                   // refused by the installed scheduler (policer)
	DropDown                    // link administratively down (flap / partition)
)

func (r DropReason) String() string {
	switch r {
	case DropTail:
		return "tail-drop"
	case DropLoss:
		return "random-loss"
	case DropSched:
		return "sched-drop"
	case DropDown:
		return "down-drop"
	default:
		return fmt.Sprintf("DropReason(%d)", int(r))
	}
}

// NewLink creates a link feeding dst. Name appears in panics and traces.
func NewLink(name string, clock *sim.Clock, cfg LinkConfig, dst Handler) *Link {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("link %q: %v", name, err))
	}
	if dst == nil {
		panic(fmt.Sprintf("netem: link %q with nil destination", name))
	}
	l := &Link{name: name, clock: clock, cfg: cfg, dst: dst}
	if cfg.TrainSize > 1 {
		l.txDoneFn = l.onTxDoneTrain
		l.deliverFn = l.onDeliverTrain
	} else {
		l.txDoneFn = l.onTxDone
		l.deliverFn = l.onDeliver
	}
	return l
}

// UsePool wires frame recycling: dead frames go back to pool, and — when
// terminal is true — a frame's delivery to the destination handler ends
// its life (fabrics set this on the last link before a node). Standalone
// links without a pool never recycle.
func (l *Link) UsePool(pool *FramePool, terminal bool) {
	l.pool = pool
	l.terminal = terminal
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// SetRate changes the link's serialization rate. The new rate applies
// from the next frame onward (a frame already serializing finishes at
// the old rate). Experiments use it to model capacity changes mid-run.
func (l *Link) SetRate(r units.DataRate) {
	if r <= 0 {
		panic(fmt.Sprintf("netem: link %q SetRate(%v)", l.name, r))
	}
	l.cfg.Rate = r
}

// SetDown takes the link down (true) or brings it back up (false). A
// down link still accepts and serializes frames — the node does not know
// its link died — but every frame completing serialization is dropped
// with DropDown instead of propagating. Fault plans flap access links
// and partition trunks through this switch.
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the link is administratively down.
func (l *Link) Down() bool { return l.down }

// SetLossModel installs (or, with nil, removes) a stateful loss process
// consulted once per serialized frame in addition to cfg.LossProb. The
// model must draw from its own RNG stream (see LossModel).
func (l *Link) SetLossModel(m LossModel) { l.lossModel = m }

// SetJitter installs (or, with nil, removes) a propagation-jitter model
// consulted once per scheduled delivery.
func (l *Link) SetJitter(m JitterModel) { l.jitter = m }

// SetScheduler installs a data-frame scheduler, replacing the built-in
// FIFO ring for non-priority frames (priority frames keep strict
// precedence). Install it before any data frame flows: frames already
// queued in the FIFO ring stay there and drain first. A nil scheduler
// restores the built-in FIFO.
func (l *Link) SetScheduler(q SchedQueue) { l.sched = q }

// Scheduler returns the installed data-frame scheduler, or nil.
func (l *Link) Scheduler() SchedQueue { return l.sched }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// ResetStats zeroes the counters (including MaxQueueLen and QueueDelay)
// without touching frames in flight, so back-to-back trials on a reused
// fabric do not leak queue high-water marks across trial boundaries.
func (l *Link) ResetStats() { l.stats = LinkStats{} }

// QueueLen returns the number of frames waiting (not counting the one in
// serialization), across both priority classes and any installed
// scheduler.
func (l *Link) QueueLen() int {
	n := l.queue.len() + l.prioQueue.len()
	if l.sched != nil {
		n += l.sched.Len()
	}
	return n
}

// QueuedBytes returns the bytes waiting in the queue.
func (l *Link) QueuedBytes() units.DataSize { return l.queuedBytes }

// Busy reports whether a frame is currently being serialized.
func (l *Link) Busy() bool { return l.busy }

// Send offers a frame to the link. If the queue has room it is accepted
// and will eventually be delivered (unless randomly lost); otherwise it
// is tail-dropped. Send reports whether the frame was accepted.
func (l *Link) Send(f *Frame) bool {
	if f.Size <= 0 {
		panic(fmt.Sprintf("netem: link %q sending frame with non-positive size %v", l.name, f.Size))
	}
	if l.cfg.QueueCap > 0 && l.queuedBytes+f.Size > l.cfg.QueueCap {
		l.stats.TailDrops++
		if l.OnDrop != nil {
			l.OnDrop(f, DropTail)
		}
		l.pool.Put(f)
		return false
	}
	f.enqueuedAt = l.clock.Now()
	switch {
	case f.Priority:
		l.prioQueue.push(f)
	case l.sched != nil:
		if !l.sched.Push(f) {
			l.stats.SchedDrops++
			if l.OnDrop != nil {
				l.OnDrop(f, DropSched)
			}
			l.pool.Put(f)
			return false
		}
	default:
		l.queue.push(f)
	}
	l.queuedBytes += f.Size
	l.stats.Enqueued++
	if n := l.QueueLen(); n > l.stats.MaxQueueLen {
		l.stats.MaxQueueLen = n
	}
	switch {
	case !l.busy:
		l.transmitNext()
	case len(l.train) > 0 && len(l.train) < l.cfg.TrainSize:
		// A train with room is mid-serialization: the arrival may join
		// it instead of waiting a full train cycle. This is what lets
		// coalescing survive smooth arrivals — a steady stream at the
		// service rate would otherwise always find the serializer busy
		// and form singleton trains forever.
		l.stretchTrain()
	}
	return true
}

// transmitNext pops the next frame — control before data, FIFO (or the
// installed scheduler's pick) within each class — and serializes it.
func (l *Link) transmitNext() {
	if l.cfg.TrainSize > 1 {
		l.transmitTrain()
		return
	}
	var f *Frame
	switch {
	case l.prioQueue.len() > 0:
		f = l.prioQueue.pop()
	case l.queue.len() > 0:
		f = l.queue.pop()
	case l.sched != nil && l.sched.Len() > 0:
		f = l.sched.Pop()
	default:
		l.busy = false
		return
	}
	l.queuedBytes -= f.Size
	l.stats.QueueDelay += l.clock.Now().Sub(f.enqueuedAt)

	l.busy = true
	l.serializing = f
	l.clock.After(l.cfg.Rate.TransmissionTime(f.Size), l.txDoneFn)
}

// lossDraws consults the built-in Bernoulli process and the installed
// loss model for one serialized frame. Both draw unconditionally — each
// stream's consumption depends only on the frame sequence, never on the
// other process's outcome or the link's down state — so enabling one
// fault source cannot perturb another's draw order.
func (l *Link) lossDraws() bool {
	lost := l.cfg.LossProb > 0 && l.cfg.RNG.Bernoulli(l.cfg.LossProb)
	if l.lossModel != nil && l.lossModel.Drop() {
		lost = true
	}
	return lost
}

// scheduleDeliver schedules the propagation-complete event for the frame
// or train just pushed in flight. With jitter installed, delivery
// instants are clamped monotone so the in-flight FIFO pop discipline
// survives arbitrary extra delay (equal instants fire in scheduling
// order on the sim clock).
func (l *Link) scheduleDeliver() {
	if l.jitter == nil && l.lastDeliverAt == 0 {
		l.clock.After(l.cfg.Delay, l.deliverFn)
		return
	}
	// Once any delivery has been jitter-scheduled, stay on the clamped
	// path even after the model is removed: a spike-delayed frame may
	// still be in flight, and an unclamped successor would overtake it.
	extra := time.Duration(0)
	if l.jitter != nil {
		extra = l.jitter.Extra()
	}
	at := l.clock.Now().Add(l.cfg.Delay + extra)
	if at.Before(l.lastDeliverAt) {
		at = l.lastDeliverAt
	}
	l.lastDeliverAt = at
	l.clock.At(at, l.deliverFn)
}

// setExport installs the shard-boundary export callback (see the export
// field). Only the sharded fabric sets it, at construction, before any
// traffic flows.
func (l *Link) setExport(fn func(fs []*Frame, arrival sim.Time)) { l.export = fn }

// exportArrival computes the delivery instant an exported frame or
// train would have had locally: now + Delay, with the same monotone
// jitter clamp scheduleDeliver applies, so a jittered boundary link
// exports in delivery order.
func (l *Link) exportArrival() sim.Time {
	if l.jitter == nil && l.lastDeliverAt == 0 {
		return l.clock.Now().Add(l.cfg.Delay)
	}
	extra := time.Duration(0)
	if l.jitter != nil {
		extra = l.jitter.Extra()
	}
	at := l.clock.Now().Add(l.cfg.Delay + extra)
	if at.Before(l.lastDeliverAt) {
		at = l.lastDeliverAt
	}
	l.lastDeliverAt = at
	return at
}

// onTxDone runs when the serializer finishes a frame: the link head is
// free for the next frame while this one propagates (or is lost).
func (l *Link) onTxDone() {
	f := l.serializing
	l.serializing = nil
	lost := l.lossDraws()
	switch {
	case l.down:
		l.stats.DownDrops++
		if l.OnDrop != nil {
			l.OnDrop(f, DropDown)
		}
		l.pool.Put(f)
	case lost:
		l.stats.RandomLoss++
		if l.OnDrop != nil {
			l.OnDrop(f, DropLoss)
		}
		l.pool.Put(f)
	case l.export != nil:
		l.deliverBuf = append(l.deliverBuf[:0], f)
		l.export(l.deliverBuf, l.exportArrival())
		l.deliverBuf[0] = nil
		l.deliverBuf = l.deliverBuf[:0]
	default:
		l.inflight.push(f)
		l.scheduleDeliver()
	}
	l.transmitNext()
}

// onDeliver completes the propagation of the oldest in-flight frame.
// Delay is fixed per link and serialization completions are ordered, so
// the FIFO head is always the frame this event was scheduled for.
func (l *Link) onDeliver() {
	f := l.inflight.pop()
	l.stats.CellsDelivered++
	l.stats.TrainsDelivered++
	l.stats.BytesOut += f.Size
	l.dst.Deliver(f)
	if l.terminal {
		l.pool.Put(f)
	}
}

// --- cell trains (TrainSize > 1) --------------------------------------

// trainSource identifies the queue a forming train draws from. Control
// and data frames never share a train, and a scheduler-sourced train
// respects the scheduler's preemption points, so the source is fixed at
// formation and constrains who may join mid-serialization.
type trainSource uint8

const (
	trainSrcNone trainSource = iota
	trainSrcPrio
	trainSrcData
	trainSrcSched
)

// transmitTrain forms and serializes the next train. Formation rules:
//
//   - A train draws from exactly one source — the priority ring, the
//     data ring, or the installed scheduler — chosen with the same
//     precedence as the per-frame path. Control and data frames never
//     share a train, so priority precedence is preserved at train
//     granularity.
//   - Up to TrainSize frames are taken, but only frames that are
//     already queued: arrivals during serialization join the next
//     train, exactly as a hardware burst-dequeue sees only its moment's
//     backlog.
//   - A scheduler that exposes its next pick's circuit (CircPeeker,
//     implemented by the EWMA scheduler) bounds the train to one
//     circuit: the train ends where the scheduler would preempt.
//     Schedulers without the method (FIFO) are circuit-agnostic and
//     coalesce freely, as does the built-in ring.
//
// The whole train serializes as one event at the formation-time rate
// over its summed bytes — SetRate mid-train therefore applies from the
// *next* train, the batched analogue of the per-frame rule.
func (l *Link) transmitTrain() {
	l.train = l.train[:0]
	max := l.cfg.TrainSize
	switch {
	case l.prioQueue.len() > 0:
		l.trainSrc = trainSrcPrio
		for len(l.train) < max && l.prioQueue.len() > 0 {
			l.train = append(l.train, l.prioQueue.pop())
		}
	case l.queue.len() > 0:
		l.trainSrc = trainSrcData
		for len(l.train) < max && l.queue.len() > 0 {
			l.train = append(l.train, l.queue.pop())
		}
	case l.sched != nil && l.sched.Len() > 0:
		l.trainSrc = trainSrcSched
		peeker, _ := l.sched.(CircPeeker)
		first := l.sched.Pop()
		l.train = append(l.train, first)
		for len(l.train) < max && l.sched.Len() > 0 {
			if peeker != nil {
				if circ, ok := peeker.PeekCirc(); !ok || circ != first.Circ {
					break // scheduler preemption point: never span it
				}
			}
			l.train = append(l.train, l.sched.Pop())
		}
	default:
		l.trainSrc = trainSrcNone
		l.busy = false
		return
	}
	now := l.clock.Now()
	var bytes units.DataSize
	for _, f := range l.train {
		l.queuedBytes -= f.Size
		l.stats.QueueDelay += now.Sub(f.enqueuedAt)
		bytes += f.Size
	}
	l.busy = true
	l.trainRate = l.cfg.Rate
	l.trainDoneAt = now.Add(l.trainRate.TransmissionTime(bytes))
	l.txDoneEv = l.clock.At(l.trainDoneAt, l.txDoneFn)
}

// stretchTrain moves joinable queued frames into the train occupying
// the serializer, pushing its completion event back by each joiner's
// serialization time at the train's formation-time rate (a SetRate
// still applies from the next train, stretched or not). Only frames
// from the train's own source may join, and a scheduler-sourced train
// still ends at the scheduler's preemption point — stretching never
// reorders anything, it only re-draws the train boundary around frames
// that would have been next anyway.
func (l *Link) stretchTrain() {
	now := l.clock.Now()
	joined := false
	for len(l.train) < l.cfg.TrainSize {
		var f *Frame
		switch l.trainSrc {
		case trainSrcPrio:
			if l.prioQueue.len() == 0 {
				goto done
			}
			f = l.prioQueue.pop()
		case trainSrcData:
			if l.queue.len() == 0 {
				goto done
			}
			f = l.queue.pop()
		case trainSrcSched:
			if l.sched == nil || l.sched.Len() == 0 {
				goto done
			}
			if peeker, ok := l.sched.(CircPeeker); ok {
				if circ, ok := peeker.PeekCirc(); !ok || circ != l.train[0].Circ {
					goto done
				}
			}
			f = l.sched.Pop()
		default:
			goto done
		}
		l.queuedBytes -= f.Size
		l.stats.QueueDelay += now.Sub(f.enqueuedAt)
		l.stats.TrainStretched++
		l.train = append(l.train, f)
		l.trainDoneAt = l.trainDoneAt.Add(l.trainRate.TransmissionTime(f.Size))
		joined = true
	}
done:
	if joined && !l.txDoneEv.Reschedule(l.trainDoneAt) {
		panic(fmt.Sprintf("netem: link %q stretching a train with no pending completion", l.name))
	}
}

// onTxDoneTrain moves a serialized train into the propagation stage.
// The loss process stays per-cell: each member gets its own Bernoulli
// draw, in queue order, so a mid-train cell can be lost while its
// neighbors survive — and a link's draw sequence is identical to what
// the same frame sequence would consume untrained. Survivors enter the
// propagation FIFO together with their count; a fully-lost train
// schedules no delivery at all.
func (l *Link) onTxDoneTrain() {
	survived := 0
	batch := l.deliverBuf[:0]
	for i, f := range l.train {
		lost := l.lossDraws()
		switch {
		case l.down:
			l.stats.DownDrops++
			if l.OnDrop != nil {
				l.OnDrop(f, DropDown)
			}
			l.pool.Put(f)
		case lost:
			l.stats.RandomLoss++
			if l.OnDrop != nil {
				l.OnDrop(f, DropLoss)
			}
			l.pool.Put(f)
		case l.export != nil:
			batch = append(batch, f)
			survived++
		default:
			l.inflight.push(f)
			survived++
		}
		l.train[i] = nil
	}
	l.train = l.train[:0]
	if survived > 0 {
		switch {
		case l.export != nil:
			l.deliverBuf = batch
			l.export(batch, l.exportArrival())
			for i := range batch {
				batch[i] = nil
			}
			l.deliverBuf = l.deliverBuf[:0]
		default:
			l.survivors.push(survived)
			l.scheduleDeliver()
		}
	}
	l.transmitTrain()
}

// onDeliverTrain completes the propagation of the oldest in-flight
// train: its surviving members leave the FIFO as one batch. A
// destination that implements TrainHandler receives the whole batch in
// a single call (relays use this to amortize per-circuit lookups);
// otherwise members are handed over one Deliver at a time, in order.
func (l *Link) onDeliverTrain() {
	n := l.survivors.pop()
	batch := l.deliverBuf[:0]
	var bytes units.DataSize
	for i := 0; i < n; i++ {
		f := l.inflight.pop()
		batch = append(batch, f)
		bytes += f.Size
	}
	l.deliverBuf = batch
	l.stats.CellsDelivered += uint64(n)
	l.stats.TrainsDelivered++
	l.stats.BytesOut += bytes
	if th, ok := l.dst.(TrainHandler); ok && n > 1 {
		th.DeliverTrain(batch)
	} else {
		for _, f := range batch {
			l.dst.Deliver(f)
		}
	}
	if l.terminal {
		for _, f := range batch {
			l.pool.Put(f)
		}
	}
	for i := range batch {
		batch[i] = nil
	}
	l.deliverBuf = l.deliverBuf[:0]
}

// countRing is a growable FIFO of per-train survivor counts, the
// companion of the inflight frame ring. Power-of-two capacity, mask
// wrap, amortized growth — allocation-free once at its working set.
type countRing struct {
	buf  []int
	head int
	n    int
}

func (r *countRing) push(v int) {
	if r.n == len(r.buf) {
		size := len(r.buf) * 2
		if size == 0 {
			size = 8
		}
		buf := make([]int, size)
		for i := 0; i < r.n; i++ {
			buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf = buf
		r.head = 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *countRing) pop() int {
	if r.n == 0 {
		return 0
	}
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}
