package netem

import (
	"fmt"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// LinkConfig describes a unidirectional point-to-point link.
type LinkConfig struct {
	// Rate is the serialization rate. Must be positive.
	Rate units.DataRate
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueCap bounds the egress queue in bytes, *excluding* the frame
	// currently being serialized. Zero means unbounded (useful for
	// analytically clean single-flow experiments; the paper's scenarios
	// rely on backpressure rather than drops).
	QueueCap units.DataSize
	// LossProb drops each frame independently with this probability
	// after serialization ("in flight"), emulating lossy paths for the
	// failure-injection tests. Requires RNG when non-zero.
	LossProb float64
	// RNG drives random loss. Only consulted when LossProb > 0.
	RNG *sim.RNG
}

// LinkStats counts what happened on a link. All counters are cumulative
// since construction or the last ResetStats.
type LinkStats struct {
	Enqueued    uint64         // frames accepted into the queue
	Delivered   uint64         // frames handed to the receiver
	TailDrops   uint64         // frames dropped because the queue was full
	RandomLoss  uint64         // frames dropped by the loss process
	SchedDrops  uint64         // frames refused by the installed scheduler
	BytesOut    units.DataSize // payload bytes delivered
	QueueDelay  time.Duration  // total time frames spent queued (excl. serialization)
	MaxQueueLen int            // high-water mark of queued frames
}

// Merge accumulates another snapshot into s: counters add, the queue
// high-water mark takes the maximum. Result aggregation uses it to pool
// the same link's stats across replications.
func (s *LinkStats) Merge(o LinkStats) {
	s.Enqueued += o.Enqueued
	s.Delivered += o.Delivered
	s.TailDrops += o.TailDrops
	s.RandomLoss += o.RandomLoss
	s.SchedDrops += o.SchedDrops
	s.BytesOut += o.BytesOut
	s.QueueDelay += o.QueueDelay
	if o.MaxQueueLen > s.MaxQueueLen {
		s.MaxQueueLen = o.MaxQueueLen
	}
}

// Link is a unidirectional pipe with a drop-tail FIFO, a serializer that
// transmits one frame at a time at the configured rate, and a
// propagation-delay stage. It is the only place in the simulator where
// bandwidth contention happens.
//
// The per-frame machinery is a pre-bound state machine: the two stage
// callbacks (serialization complete, propagation complete) are bound
// once at construction, the serializer's current frame lives in a field,
// and frames past the serializer wait in a FIFO ring — propagation delay
// is constant per link, so deliveries complete in the order they were
// scheduled. Together with ring-buffered queues and a FramePool this
// makes the transit of a frame allocation-free.
type Link struct {
	name  string
	clock *sim.Clock
	cfg   LinkConfig
	dst   Handler

	queue       frameRing  // data frames (unused when sched is set)
	prioQueue   frameRing  // control frames, serialized first
	sched       SchedQueue // optional data-frame scheduler, replaces queue
	queuedBytes units.DataSize
	busy        bool

	serializing *Frame    // the frame occupying the serializer
	inflight    frameRing // serialized frames in the propagation stage

	txDoneFn  func() // onTxDone bound once
	deliverFn func() // onDeliver bound once

	// pool, when non-nil, receives dead frames (dropped, lost, or — on
	// terminal links — delivered). terminal marks the last link before a
	// node handler: only there does Deliver end a frame's life; on
	// fabric-internal links the routing stage sends it onward.
	pool     *FramePool
	terminal bool

	stats LinkStats

	// OnDrop, if non-nil, observes every dropped frame (tail drop or
	// random loss). Tests use it for failure injection assertions. The
	// frame is recycled when the observer returns.
	OnDrop func(f *Frame, reason DropReason)
}

// DropReason says why a frame was discarded.
type DropReason int

// Drop reasons.
const (
	DropTail  DropReason = iota // egress queue full
	DropLoss                    // random loss process
	DropSched                   // refused by the installed scheduler (policer)
)

func (r DropReason) String() string {
	switch r {
	case DropTail:
		return "tail-drop"
	case DropLoss:
		return "random-loss"
	case DropSched:
		return "sched-drop"
	default:
		return fmt.Sprintf("DropReason(%d)", int(r))
	}
}

// NewLink creates a link feeding dst. Name appears in panics and traces.
func NewLink(name string, clock *sim.Clock, cfg LinkConfig, dst Handler) *Link {
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("netem: link %q with non-positive rate %v", name, cfg.Rate))
	}
	if cfg.Delay < 0 {
		panic(fmt.Sprintf("netem: link %q with negative delay %v", name, cfg.Delay))
	}
	if cfg.LossProb < 0 || cfg.LossProb > 1 {
		panic(fmt.Sprintf("netem: link %q with loss probability %v outside [0,1]", name, cfg.LossProb))
	}
	if cfg.LossProb > 0 && cfg.RNG == nil {
		panic(fmt.Sprintf("netem: link %q has loss but no RNG", name))
	}
	if dst == nil {
		panic(fmt.Sprintf("netem: link %q with nil destination", name))
	}
	l := &Link{name: name, clock: clock, cfg: cfg, dst: dst}
	l.txDoneFn = l.onTxDone
	l.deliverFn = l.onDeliver
	return l
}

// UsePool wires frame recycling: dead frames go back to pool, and — when
// terminal is true — a frame's delivery to the destination handler ends
// its life (fabrics set this on the last link before a node). Standalone
// links without a pool never recycle.
func (l *Link) UsePool(pool *FramePool, terminal bool) {
	l.pool = pool
	l.terminal = terminal
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// SetRate changes the link's serialization rate. The new rate applies
// from the next frame onward (a frame already serializing finishes at
// the old rate). Experiments use it to model capacity changes mid-run.
func (l *Link) SetRate(r units.DataRate) {
	if r <= 0 {
		panic(fmt.Sprintf("netem: link %q SetRate(%v)", l.name, r))
	}
	l.cfg.Rate = r
}

// SetScheduler installs a data-frame scheduler, replacing the built-in
// FIFO ring for non-priority frames (priority frames keep strict
// precedence). Install it before any data frame flows: frames already
// queued in the FIFO ring stay there and drain first. A nil scheduler
// restores the built-in FIFO.
func (l *Link) SetScheduler(q SchedQueue) { l.sched = q }

// Scheduler returns the installed data-frame scheduler, or nil.
func (l *Link) Scheduler() SchedQueue { return l.sched }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// ResetStats zeroes the counters (including MaxQueueLen and QueueDelay)
// without touching frames in flight, so back-to-back trials on a reused
// fabric do not leak queue high-water marks across trial boundaries.
func (l *Link) ResetStats() { l.stats = LinkStats{} }

// QueueLen returns the number of frames waiting (not counting the one in
// serialization), across both priority classes and any installed
// scheduler.
func (l *Link) QueueLen() int {
	n := l.queue.len() + l.prioQueue.len()
	if l.sched != nil {
		n += l.sched.Len()
	}
	return n
}

// QueuedBytes returns the bytes waiting in the queue.
func (l *Link) QueuedBytes() units.DataSize { return l.queuedBytes }

// Busy reports whether a frame is currently being serialized.
func (l *Link) Busy() bool { return l.busy }

// Send offers a frame to the link. If the queue has room it is accepted
// and will eventually be delivered (unless randomly lost); otherwise it
// is tail-dropped. Send reports whether the frame was accepted.
func (l *Link) Send(f *Frame) bool {
	if f.Size <= 0 {
		panic(fmt.Sprintf("netem: link %q sending frame with non-positive size %v", l.name, f.Size))
	}
	if l.cfg.QueueCap > 0 && l.queuedBytes+f.Size > l.cfg.QueueCap {
		l.stats.TailDrops++
		if l.OnDrop != nil {
			l.OnDrop(f, DropTail)
		}
		l.pool.Put(f)
		return false
	}
	f.enqueuedAt = l.clock.Now()
	switch {
	case f.Priority:
		l.prioQueue.push(f)
	case l.sched != nil:
		if !l.sched.Push(f) {
			l.stats.SchedDrops++
			if l.OnDrop != nil {
				l.OnDrop(f, DropSched)
			}
			l.pool.Put(f)
			return false
		}
	default:
		l.queue.push(f)
	}
	l.queuedBytes += f.Size
	l.stats.Enqueued++
	if n := l.QueueLen(); n > l.stats.MaxQueueLen {
		l.stats.MaxQueueLen = n
	}
	if !l.busy {
		l.transmitNext()
	}
	return true
}

// transmitNext pops the next frame — control before data, FIFO (or the
// installed scheduler's pick) within each class — and serializes it.
func (l *Link) transmitNext() {
	var f *Frame
	switch {
	case l.prioQueue.len() > 0:
		f = l.prioQueue.pop()
	case l.queue.len() > 0:
		f = l.queue.pop()
	case l.sched != nil && l.sched.Len() > 0:
		f = l.sched.Pop()
	default:
		l.busy = false
		return
	}
	l.queuedBytes -= f.Size
	l.stats.QueueDelay += l.clock.Now().Sub(f.enqueuedAt)

	l.busy = true
	l.serializing = f
	l.clock.After(l.cfg.Rate.TransmissionTime(f.Size), l.txDoneFn)
}

// onTxDone runs when the serializer finishes a frame: the link head is
// free for the next frame while this one propagates (or is lost).
func (l *Link) onTxDone() {
	f := l.serializing
	l.serializing = nil
	if l.cfg.LossProb > 0 && l.cfg.RNG.Bernoulli(l.cfg.LossProb) {
		l.stats.RandomLoss++
		if l.OnDrop != nil {
			l.OnDrop(f, DropLoss)
		}
		l.pool.Put(f)
	} else {
		l.inflight.push(f)
		l.clock.After(l.cfg.Delay, l.deliverFn)
	}
	l.transmitNext()
}

// onDeliver completes the propagation of the oldest in-flight frame.
// Delay is fixed per link and serialization completions are ordered, so
// the FIFO head is always the frame this event was scheduled for.
func (l *Link) onDeliver() {
	f := l.inflight.pop()
	l.stats.Delivered++
	l.stats.BytesOut += f.Size
	l.dst.Deliver(f)
	if l.terminal {
		l.pool.Put(f)
	}
}
