package netem

import (
	"fmt"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// LinkConfig describes a unidirectional point-to-point link.
type LinkConfig struct {
	// Rate is the serialization rate. Must be positive.
	Rate units.DataRate
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueCap bounds the egress queue in bytes, *excluding* the frame
	// currently being serialized. Zero means unbounded (useful for
	// analytically clean single-flow experiments; the paper's scenarios
	// rely on backpressure rather than drops).
	QueueCap units.DataSize
	// LossProb drops each frame independently with this probability
	// after serialization ("in flight"), emulating lossy paths for the
	// failure-injection tests. Requires RNG when non-zero.
	LossProb float64
	// RNG drives random loss. Only consulted when LossProb > 0.
	RNG *sim.RNG
}

// LinkStats counts what happened on a link. All counters are cumulative
// since construction or the last ResetStats.
type LinkStats struct {
	Enqueued    uint64         // frames accepted into the queue
	Delivered   uint64         // frames handed to the receiver
	TailDrops   uint64         // frames dropped because the queue was full
	RandomLoss  uint64         // frames dropped by the loss process
	BytesOut    units.DataSize // payload bytes delivered
	QueueDelay  time.Duration  // total time frames spent queued (excl. serialization)
	MaxQueueLen int            // high-water mark of queued frames
}

// Merge accumulates another snapshot into s: counters add, the queue
// high-water mark takes the maximum. Result aggregation uses it to pool
// the same link's stats across replications.
func (s *LinkStats) Merge(o LinkStats) {
	s.Enqueued += o.Enqueued
	s.Delivered += o.Delivered
	s.TailDrops += o.TailDrops
	s.RandomLoss += o.RandomLoss
	s.BytesOut += o.BytesOut
	s.QueueDelay += o.QueueDelay
	if o.MaxQueueLen > s.MaxQueueLen {
		s.MaxQueueLen = o.MaxQueueLen
	}
}

// Link is a unidirectional pipe with a drop-tail FIFO, a serializer that
// transmits one frame at a time at the configured rate, and a
// propagation-delay stage. It is the only place in the simulator where
// bandwidth contention happens.
type Link struct {
	name  string
	clock *sim.Clock
	cfg   LinkConfig
	dst   Handler

	queue       []*Frame // data frames
	prioQueue   []*Frame // control frames, serialized first
	queuedBytes units.DataSize
	busy        bool

	stats LinkStats

	// OnDrop, if non-nil, observes every dropped frame (tail drop or
	// random loss). Tests use it for failure injection assertions.
	OnDrop func(f *Frame, reason DropReason)
}

// DropReason says why a frame was discarded.
type DropReason int

// Drop reasons.
const (
	DropTail DropReason = iota // egress queue full
	DropLoss                   // random loss process
)

func (r DropReason) String() string {
	switch r {
	case DropTail:
		return "tail-drop"
	case DropLoss:
		return "random-loss"
	default:
		return fmt.Sprintf("DropReason(%d)", int(r))
	}
}

// NewLink creates a link feeding dst. Name appears in panics and traces.
func NewLink(name string, clock *sim.Clock, cfg LinkConfig, dst Handler) *Link {
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("netem: link %q with non-positive rate %v", name, cfg.Rate))
	}
	if cfg.Delay < 0 {
		panic(fmt.Sprintf("netem: link %q with negative delay %v", name, cfg.Delay))
	}
	if cfg.LossProb < 0 || cfg.LossProb > 1 {
		panic(fmt.Sprintf("netem: link %q with loss probability %v outside [0,1]", name, cfg.LossProb))
	}
	if cfg.LossProb > 0 && cfg.RNG == nil {
		panic(fmt.Sprintf("netem: link %q has loss but no RNG", name))
	}
	if dst == nil {
		panic(fmt.Sprintf("netem: link %q with nil destination", name))
	}
	return &Link{name: name, clock: clock, cfg: cfg, dst: dst}
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// SetRate changes the link's serialization rate. The new rate applies
// from the next frame onward (a frame already serializing finishes at
// the old rate). Experiments use it to model capacity changes mid-run.
func (l *Link) SetRate(r units.DataRate) {
	if r <= 0 {
		panic(fmt.Sprintf("netem: link %q SetRate(%v)", l.name, r))
	}
	l.cfg.Rate = r
}

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// ResetStats zeroes the counters (including MaxQueueLen and QueueDelay)
// without touching frames in flight, so back-to-back trials on a reused
// fabric do not leak queue high-water marks across trial boundaries.
func (l *Link) ResetStats() { l.stats = LinkStats{} }

// QueueLen returns the number of frames waiting (not counting the one in
// serialization), across both priority classes.
func (l *Link) QueueLen() int { return len(l.queue) + len(l.prioQueue) }

// QueuedBytes returns the bytes waiting in the queue.
func (l *Link) QueuedBytes() units.DataSize { return l.queuedBytes }

// Busy reports whether a frame is currently being serialized.
func (l *Link) Busy() bool { return l.busy }

// Send offers a frame to the link. If the queue has room it is accepted
// and will eventually be delivered (unless randomly lost); otherwise it
// is tail-dropped. Send reports whether the frame was accepted.
func (l *Link) Send(f *Frame) bool {
	if f.Size <= 0 {
		panic(fmt.Sprintf("netem: link %q sending frame with non-positive size %v", l.name, f.Size))
	}
	if l.cfg.QueueCap > 0 && l.queuedBytes+f.Size > l.cfg.QueueCap {
		l.stats.TailDrops++
		if l.OnDrop != nil {
			l.OnDrop(f, DropTail)
		}
		return false
	}
	f.enqueuedAt = l.clock.Now()
	if f.Priority {
		l.prioQueue = append(l.prioQueue, f)
	} else {
		l.queue = append(l.queue, f)
	}
	l.queuedBytes += f.Size
	l.stats.Enqueued++
	if n := len(l.queue) + len(l.prioQueue); n > l.stats.MaxQueueLen {
		l.stats.MaxQueueLen = n
	}
	if !l.busy {
		l.transmitNext()
	}
	return true
}

// transmitNext pops the next frame — control before data, FIFO within
// each class — and serializes it.
func (l *Link) transmitNext() {
	var f *Frame
	switch {
	case len(l.prioQueue) > 0:
		f = l.prioQueue[0]
		copy(l.prioQueue, l.prioQueue[1:])
		l.prioQueue[len(l.prioQueue)-1] = nil
		l.prioQueue = l.prioQueue[:len(l.prioQueue)-1]
	case len(l.queue) > 0:
		f = l.queue[0]
		copy(l.queue, l.queue[1:])
		l.queue[len(l.queue)-1] = nil
		l.queue = l.queue[:len(l.queue)-1]
	default:
		l.busy = false
		return
	}
	l.queuedBytes -= f.Size
	l.stats.QueueDelay += l.clock.Now().Sub(f.enqueuedAt)

	l.busy = true
	txTime := l.cfg.Rate.TransmissionTime(f.Size)
	l.clock.After(txTime, func() {
		// Serialization finished: the link head is free for the next
		// frame while this one propagates.
		lost := l.cfg.LossProb > 0 && l.cfg.RNG.Bernoulli(l.cfg.LossProb)
		if lost {
			l.stats.RandomLoss++
			if l.OnDrop != nil {
				l.OnDrop(f, DropLoss)
			}
		} else {
			l.clock.After(l.cfg.Delay, func() {
				l.stats.Delivered++
				l.stats.BytesOut += f.Size
				l.dst.Deliver(f)
			})
		}
		l.transmitNext()
	})
}
