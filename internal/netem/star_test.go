package netem

import (
	"testing"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

func TestStarEndToEndDelivery(t *testing.T) {
	clock := sim.NewClock()
	star := NewStar(clock)
	got := &sink{clock: clock}
	star.Attach("a", Symmetric(units.Mbps(10), 5*time.Millisecond, 0), &sink{clock: clock}, nil)
	pb := star.Attach("b", Symmetric(units.Mbps(10), 5*time.Millisecond, 0), got, nil)
	_ = pb

	pa := star.Port("a")
	if !pa.Send("b", 512, "hello") {
		t.Fatal("Send rejected")
	}
	clock.Run()
	if len(got.frames) != 1 {
		t.Fatalf("b received %d frames, want 1", len(got.frames))
	}
	f := got.frames[0]
	if f.Src != "a" || f.Dst != "b" || f.Payload != "hello" {
		t.Errorf("frame = %+v", f)
	}
	// Latency: 2 serializations (512B @10Mbit/s = 409.6→410µs... exact:
	// 4096/1e7 s = 409.6µs, rounded up per serialization) + 2×5ms.
	ser := units.Mbps(10).TransmissionTime(512)
	want := sim.Time(2*ser + 10*time.Millisecond)
	if got.times[0] != want {
		t.Errorf("arrival at %v, want %v", got.times[0], want)
	}
}

func TestStarBidirectional(t *testing.T) {
	clock := sim.NewClock()
	star := NewStar(clock)
	sa := &sink{clock: clock}
	sb := &sink{clock: clock}
	pa := star.Attach("a", Symmetric(units.Mbps(10), time.Millisecond, 0), sa, nil)
	pb := star.Attach("b", Symmetric(units.Mbps(10), time.Millisecond, 0), sb, nil)
	pa.Send("b", 512, 1)
	pb.Send("a", 512, 2)
	clock.Run()
	if len(sb.frames) != 1 || len(sa.frames) != 1 {
		t.Fatalf("a got %d, b got %d; want 1 each", len(sa.frames), len(sb.frames))
	}
}

func TestStarUnknownDestination(t *testing.T) {
	clock := sim.NewClock()
	star := NewStar(clock)
	pa := star.Attach("a", Symmetric(units.Mbps(10), 0, 0), &sink{clock: clock}, nil)
	pa.Send("ghost", 512, nil)
	clock.Run()
	if star.UnknownDst() != 1 {
		t.Errorf("UnknownDst = %d, want 1", star.UnknownDst())
	}
}

func TestStarDuplicateAttachPanics(t *testing.T) {
	clock := sim.NewClock()
	star := NewStar(clock)
	star.Attach("a", Symmetric(units.Mbps(10), 0, 0), &sink{clock: clock}, nil)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Attach did not panic")
		}
	}()
	star.Attach("a", Symmetric(units.Mbps(10), 0, 0), &sink{clock: clock}, nil)
}

func TestStarNodesSorted(t *testing.T) {
	clock := sim.NewClock()
	star := NewStar(clock)
	for _, id := range []NodeID{"zeta", "alpha", "mid"} {
		star.Attach(id, Symmetric(units.Mbps(10), 0, 0), &sink{clock: clock}, nil)
	}
	got := star.Nodes()
	want := []NodeID{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", got, want)
		}
	}
}

func TestStarAsymmetricBottleneck(t *testing.T) {
	// a has a fast uplink; b has a slow downlink. The b downlink
	// bounds throughput a→b.
	clock := sim.NewClock()
	star := NewStar(clock)
	got := &sink{clock: clock}
	star.Attach("a", Symmetric(units.Mbps(100), time.Millisecond, 0), &sink{clock: clock}, nil)
	star.Attach("b", AccessConfig{
		UpRate: units.Mbps(100), DownRate: units.Mbps(2),
		Delay: time.Millisecond,
	}, got, nil)
	const n = 200
	pa := star.Port("a")
	for i := 0; i < n; i++ {
		pa.Send("b", 512, i)
	}
	end := clock.Run()
	if len(got.frames) != n {
		t.Fatalf("delivered %d", len(got.frames))
	}
	rate := units.RateFromTransfer(n*512, end.Duration())
	if r := rate.Mbit(); r > 2.05 {
		t.Errorf("achieved %.2f Mbit/s through a 2 Mbit/s bottleneck", r)
	}
}

func TestPathRTTAndOneWay(t *testing.T) {
	clock := sim.NewClock()
	star := NewStar(clock)
	star.Attach("a", Symmetric(units.Mbps(8), 5*time.Millisecond, 0), &sink{clock: clock}, nil)
	star.Attach("b", Symmetric(units.Mbps(8), 7*time.Millisecond, 0), &sink{clock: clock}, nil)
	ser := units.Mbps(8).TransmissionTime(512) // 512µs
	oneWay := star.PathOneWay("a", "b", 512)
	if want := 2*ser + 12*time.Millisecond; oneWay != want {
		t.Errorf("PathOneWay = %v, want %v", oneWay, want)
	}
	rtt := star.PathRTT("a", "b", 512)
	if want := 4*ser + 24*time.Millisecond; rtt != want {
		t.Errorf("PathRTT = %v, want %v", rtt, want)
	}
	// RTT must equal the measured echo time: a→b then b→a.
	gotA := &sink{clock: clock}
	echoB := star.Port("b")
	// Rewire b's handler is not possible (fixed at attach); instead
	// verify analytically against two one-way latencies.
	if rtt != star.PathOneWay("a", "b", 512)+star.PathOneWay("b", "a", 512) {
		t.Error("RTT != sum of one-way latencies")
	}
	_ = gotA
	_ = echoB
}

func TestBottleneckRate(t *testing.T) {
	clock := sim.NewClock()
	star := NewStar(clock)
	mk := func(id NodeID, up, down float64) {
		star.Attach(id, AccessConfig{UpRate: units.Mbps(up), DownRate: units.Mbps(down), Delay: time.Millisecond}, &sink{clock: clock}, nil)
	}
	mk("c", 50, 50)
	mk("r1", 100, 100)
	mk("r2", 8, 100) // slow uplink — the bottleneck
	mk("r3", 100, 100)
	mk("s", 100, 100)
	got := star.BottleneckRate([]NodeID{"c", "r1", "r2", "r3", "s"})
	if got != units.Mbps(8) {
		t.Errorf("BottleneckRate = %v, want 8Mbit/s", got)
	}
}

func TestBottleneckRatePanicsOnShortPath(t *testing.T) {
	star := NewStar(sim.NewClock())
	defer func() {
		if recover() == nil {
			t.Error("no panic on single-node path")
		}
	}()
	star.BottleneckRate([]NodeID{"only"})
}

func TestStarAttachValidation(t *testing.T) {
	star := NewStar(sim.NewClock())
	defer func() {
		if recover() == nil {
			t.Error("nil handler did not panic")
		}
	}()
	star.Attach("x", Symmetric(units.Mbps(1), 0, 0), nil, nil)
}
