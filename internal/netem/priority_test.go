package netem

import (
	"testing"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// collector records delivered frames with timestamps.
type collector struct {
	clock *sim.Clock
	got   []delivered
}

type delivered struct {
	f  *Frame
	at sim.Time
}

func (c *collector) Deliver(f *Frame) {
	cp := *f
	c.got = append(c.got, delivered{f: &cp, at: c.clock.Now()})
}

func TestPriorityFramesJumpDataQueue(t *testing.T) {
	clock := sim.NewClock()
	col := &collector{clock: clock}
	// Slow link: 1 Mbit/s, so a 500 B data frame takes 4 ms to serialize.
	link := NewLink("l", clock, LinkConfig{Rate: units.Mbps(1), Delay: 0}, col)

	// Fill the queue with three data frames, then offer a control frame.
	for i := 0; i < 3; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: i})
	}
	link.Send(&Frame{Src: "a", Dst: "b", Size: 24, Payload: "ctrl", Priority: true})

	clock.Run()
	if len(col.got) != 4 {
		t.Fatalf("delivered %d frames", len(col.got))
	}
	// Frame 0 was already serializing when the control frame arrived;
	// the control frame must overtake frames 1 and 2.
	if col.got[0].f.Payload != 0 {
		t.Fatalf("first delivery = %v", col.got[0].f.Payload)
	}
	if col.got[1].f.Payload != "ctrl" {
		t.Fatalf("control frame did not jump the queue: order %v, %v, %v, %v",
			col.got[0].f.Payload, col.got[1].f.Payload, col.got[2].f.Payload, col.got[3].f.Payload)
	}
}

func TestPriorityFIFOWithinClass(t *testing.T) {
	clock := sim.NewClock()
	col := &collector{clock: clock}
	link := NewLink("l", clock, LinkConfig{Rate: units.Mbps(1), Delay: 0}, col)

	link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: "d0"})
	link.Send(&Frame{Src: "a", Dst: "b", Size: 24, Payload: "c0", Priority: true})
	link.Send(&Frame{Src: "a", Dst: "b", Size: 24, Payload: "c1", Priority: true})
	link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: "d1"})

	clock.Run()
	want := []any{"d0", "c0", "c1", "d1"}
	for i, w := range want {
		if col.got[i].f.Payload != w {
			t.Fatalf("delivery %d = %v, want %v", i, col.got[i].f.Payload, w)
		}
	}
}

func TestPriorityCountsAgainstQueueCap(t *testing.T) {
	clock := sim.NewClock()
	col := &collector{clock: clock}
	link := NewLink("l", clock, LinkConfig{
		Rate: units.Kbps(64), Delay: 0, QueueCap: 600,
	}, col)

	// First frame starts serializing (does not occupy the queue); the
	// second fills the 600 B cap; control frames must then be refused
	// like any other frame — the cap models real buffer memory.
	if !link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: 0}) {
		t.Fatal("first frame refused")
	}
	if !link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: 1}) {
		t.Fatal("second frame refused")
	}
	if link.Send(&Frame{Src: "a", Dst: "b", Size: 200, Payload: "ctrl", Priority: true}) {
		t.Fatal("control frame accepted beyond the queue cap")
	}
	if link.Stats().TailDrops != 1 {
		t.Fatalf("TailDrops = %d", link.Stats().TailDrops)
	}
}

func TestSendPriorityTraversesStar(t *testing.T) {
	clock := sim.NewClock()
	star := NewStar(clock)
	colA := &collector{clock: clock}
	colB := &collector{clock: clock}
	pa := star.Attach("a", Symmetric(units.Mbps(1), time.Millisecond, 0), colA, nil)
	star.Attach("b", Symmetric(units.Mbps(1), time.Millisecond, 0), colB, nil)

	// Two bulk frames, then a priority frame: on b's downlink the
	// priority frame must again overtake the queued bulk frame.
	pa.Send("b", 500, "bulk0")
	pa.Send("b", 500, "bulk1")
	pa.SendPriority("b", 24, "ctrl")
	clock.Run()

	if len(colB.got) != 3 {
		t.Fatalf("b received %d frames", len(colB.got))
	}
	// On the uplink the ctrl frame overtakes bulk1; order at b is then
	// bulk0, ctrl, bulk1.
	if colB.got[1].f.Payload != "ctrl" {
		t.Fatalf("order at b: %v, %v, %v",
			colB.got[0].f.Payload, colB.got[1].f.Payload, colB.got[2].f.Payload)
	}
	if !colB.got[1].f.Priority {
		t.Fatal("priority bit lost crossing the switch")
	}
}

func TestSetRateAppliesToSubsequentFrames(t *testing.T) {
	clock := sim.NewClock()
	col := &collector{clock: clock}
	link := NewLink("l", clock, LinkConfig{Rate: units.Mbps(1), Delay: 0}, col)

	// 500 B at 1 Mbit/s = 4 ms each.
	link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: 0})
	link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: 1})
	// Double the rate while frame 0 is serializing.
	clock.After(time.Millisecond, func() { link.SetRate(units.Mbps(2)) })
	clock.Run()

	if len(col.got) != 2 {
		t.Fatalf("delivered %d", len(col.got))
	}
	// Frame 0 finishes at 4 ms (old rate); frame 1 serializes at 2
	// Mbit/s → 2 ms → delivered at 6 ms.
	if got := col.got[0].at; got != sim.Time(4*time.Millisecond) {
		t.Fatalf("frame 0 delivered at %v", got)
	}
	if got := col.got[1].at; got != sim.Time(6*time.Millisecond) {
		t.Fatalf("frame 1 delivered at %v, want 6ms", got)
	}
}

func TestSetRatePanicsOnNonPositive(t *testing.T) {
	clock := sim.NewClock()
	link := NewLink("l", clock, LinkConfig{Rate: units.Mbps(1)}, HandlerFunc(func(*Frame) {}))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	link.SetRate(0)
}
