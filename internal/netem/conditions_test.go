package netem

import (
	"strings"
	"testing"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

func TestGilbertElliottValidate(t *testing.T) {
	rng := sim.NewRNG(1, "ge-test")
	cases := []struct {
		name string
		ge   GilbertElliott
		want string
	}{
		{"bad transition", GilbertElliott{PGoodBad: 1.5, RNG: rng}, "p-good-bad"},
		{"negative loss", GilbertElliott{LossBad: -0.1, RNG: rng}, "loss-bad"},
		{"no rng", GilbertElliott{PGoodBad: 0.1}, "without RNG"},
	}
	for _, tc := range cases {
		err := tc.ge.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	ok := GilbertElliott{PGoodBad: 0.01, PBadGood: 0.1, LossBad: 0.8, RNG: rng}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGilbertElliottBurstiness pins the defining property of the
// two-state channel: with the same marginal loss rate, drops cluster
// into bursts rather than arriving i.i.d. A sticky bad state
// (PBadGood small) must yield long runs of consecutive drops.
func TestGilbertElliottBurstiness(t *testing.T) {
	g := &GilbertElliott{
		PGoodBad: 0.01, PBadGood: 0.05,
		LossGood: 0, LossBad: 0.9,
		RNG: sim.NewRNG(7, "ge-burst"),
	}
	const frames = 20000
	drops, run, maxRun := 0, 0, 0
	for i := 0; i < frames; i++ {
		if g.Drop() {
			drops++
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if drops == 0 || drops == frames {
		t.Fatalf("degenerate channel: %d/%d drops", drops, frames)
	}
	// Mean bad-state sojourn is 1/PBadGood = 20 frames at 90% loss;
	// i.i.d. loss at the same marginal rate would make a run of 8
	// vanishingly rare, while bursts reach it routinely.
	if maxRun < 8 {
		t.Fatalf("longest drop burst %d frames — channel is not bursty", maxRun)
	}
}

// TestGilbertElliottDeterministicDraws checks the fixed two-draws-per-
// frame contract: two models on identical streams stay in lockstep
// regardless of state, so stream consumption is a pure function of the
// frame count.
func TestGilbertElliottDeterministicDraws(t *testing.T) {
	mk := func() *GilbertElliott {
		return &GilbertElliott{
			PGoodBad: 0.05, PBadGood: 0.1, LossBad: 0.7,
			RNG: sim.NewRNG(42, "ge-det"),
		}
	}
	a, b := mk(), mk()
	for i := 0; i < 5000; i++ {
		da, db := a.Drop(), b.Drop()
		if da != db || a.Bad() != b.Bad() {
			t.Fatalf("frame %d: divergent replicas (%v/%v, bad %v/%v)", i, da, db, a.Bad(), b.Bad())
		}
	}
}

func TestUniformJitterValidate(t *testing.T) {
	rng := sim.NewRNG(1, "jit-test")
	cases := []struct {
		name string
		j    UniformJitter
		want string
	}{
		{"negative amplitude", UniformJitter{Amplitude: -time.Millisecond, RNG: rng}, "amplitude"},
		{"bad spike prob", UniformJitter{SpikeProb: 2, RNG: rng}, "spike probability"},
		{"negative spike", UniformJitter{SpikeDelay: -time.Second, RNG: rng}, "spike delay"},
		{"no rng", UniformJitter{Amplitude: time.Millisecond}, "without RNG"},
	}
	for _, tc := range cases {
		err := tc.j.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestUniformJitterBounds(t *testing.T) {
	j := &UniformJitter{
		Amplitude:  5 * time.Millisecond,
		SpikeProb:  0.1,
		SpikeDelay: 50 * time.Millisecond,
		RNG:        sim.NewRNG(3, "jit-bounds"),
	}
	spikes := 0
	for i := 0; i < 10000; i++ {
		d := j.Extra()
		if d < 0 || d >= 55*time.Millisecond {
			t.Fatalf("draw %d: extra delay %v outside [0, amplitude+spike)", i, d)
		}
		if d >= 5*time.Millisecond {
			spikes++
		}
	}
	if spikes == 0 {
		t.Fatal("no spikes in 10k draws at 10% spike probability")
	}
}

func TestLinkSetDownDropsFrames(t *testing.T) {
	clock, link, dst := newTestLink(t, LinkConfig{Rate: units.Mbps(8), Delay: time.Millisecond})
	link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	clock.Run()
	link.SetDown(true)
	if !link.Down() {
		t.Fatal("link not reported down")
	}
	for i := 0; i < 3; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	}
	clock.Run()
	link.SetDown(false)
	link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	clock.Run()
	if len(dst.frames) != 2 {
		t.Fatalf("delivered %d frames, want 2 (down-window frames dropped)", len(dst.frames))
	}
	if got := link.Stats().DownDrops; got != 3 {
		t.Fatalf("DownDrops = %d, want 3", got)
	}
}

// TestLinkJitterPreservesFIFO drives a link with violent jitter (spikes
// far exceeding inter-frame spacing) and checks the monotone-delivery
// clamp: frames still arrive in send order, and the discipline survives
// removing the model mid-stream (the clamp keeps applying to frames
// scheduled behind a delayed predecessor).
func TestLinkJitterPreservesFIFO(t *testing.T) {
	clock, link, dst := newTestLink(t, LinkConfig{Rate: units.Mbps(100), Delay: time.Millisecond})
	link.SetJitter(&UniformJitter{
		Amplitude:  10 * time.Millisecond,
		SpikeProb:  0.3,
		SpikeDelay: 80 * time.Millisecond,
		RNG:        sim.NewRNG(11, "jit-fifo"),
	})
	for i := 0; i < 25; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 512, Payload: i})
	}
	clock.RunUntil(sim.Time(2 * time.Millisecond))
	link.SetJitter(nil)
	for i := 25; i < 50; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 512, Payload: i})
	}
	clock.Run()
	if len(dst.frames) != 50 {
		t.Fatalf("delivered %d frames, want 50", len(dst.frames))
	}
	for i, f := range dst.frames {
		if f.Payload.(int) != i {
			t.Fatalf("frame %d carries payload %v: FIFO violated under jitter", i, f.Payload)
		}
	}
	for i := 1; i < len(dst.times); i++ {
		if dst.times[i].Before(dst.times[i-1]) {
			t.Fatalf("delivery %d at %v before predecessor at %v", i, dst.times[i], dst.times[i-1])
		}
	}
}

func TestLinkLossModelDrops(t *testing.T) {
	clock, link, dst := newTestLink(t, LinkConfig{Rate: units.Mbps(100), Delay: time.Millisecond})
	// Always-bad channel with certain loss: every frame drops.
	link.SetLossModel(&GilbertElliott{
		PGoodBad: 1, PBadGood: 0, LossGood: 1, LossBad: 1,
		RNG: sim.NewRNG(5, "ge-drop"),
	})
	for i := 0; i < 4; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	}
	clock.Run()
	if len(dst.frames) != 0 {
		t.Fatalf("%d frames survived a certain-loss model", len(dst.frames))
	}
	link.SetLossModel(nil)
	link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	clock.Run()
	if len(dst.frames) != 1 {
		t.Fatalf("delivered %d after removing the model, want 1", len(dst.frames))
	}
}

func TestAccessConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  AccessConfig
		want string
	}{
		{"zero up", AccessConfig{DownRate: units.Mbps(1)}, "up rate"},
		{"zero down", AccessConfig{UpRate: units.Mbps(1)}, "down rate"},
		{"negative delay", AccessConfig{UpRate: units.Mbps(1), DownRate: units.Mbps(1), Delay: -time.Second}, "delay"},
		{"bad loss", AccessConfig{UpRate: units.Mbps(1), DownRate: units.Mbps(1), LossProb: 1.5}, "loss probability"},
		{"negative train", AccessConfig{UpRate: units.Mbps(1), DownRate: units.Mbps(1), TrainSize: -1}, "train size"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if err := Symmetric(units.Mbps(10), time.Millisecond, 0).Validate(); err != nil {
		t.Fatal(err)
	}
}
