package netem

import (
	"fmt"
	"sort"
	"testing"

	"circuitstart/internal/sim"
)

// fuzzHandoffs renders a fuzz input into a deterministic batch of
// handoffs with deliberate arrival-time collisions: arrivals are drawn
// from a tiny range so many handoffs tie on time and the comparator
// must fall through to (trunk, seq). Per-trunk sequences are assigned
// in generation order, mirroring how boundaries stamp them.
func fuzzHandoffs(seed int64, n int, trunks int) []handoff {
	if trunks < 1 {
		trunks = 1
	}
	rng := sim.NewRNG(seed, "fuzz-merge")
	seqs := make(map[string]uint64, trunks)
	out := make([]handoff, n)
	for i := range out {
		trunk := fmt.Sprintf("trunk:sw%02d>sw%02d", rng.Int63n(int64(trunks)), rng.Int63n(int64(trunks)))
		out[i] = handoff{
			arrival: sim.Time(rng.Int63n(8)), // tiny range: force ties
			origin:  sim.Time(rng.Int63n(8)),
			trunk:   trunk,
			seq:     seqs[trunk],
			dstSw:   SwitchID(fmt.Sprintf("sw%02d", rng.Int63n(int64(trunks)))),
		}
		seqs[trunk]++
	}
	return out
}

// FuzzShardMergeOrder pins the property the whole determinism contract
// leans on: handoffBefore is a strict total order over any batch of
// handoffs, so the coordinator's merged import schedule is the same no
// matter how the batch was split across boundary queues — i.e. no
// matter where the partition fell. The fuzzer varies the batch, the
// tie density and two interleavings; the test asserts both interleavings
// sort to the identical sequence and that the comparator is irreflexive,
// asymmetric and antisymmetric-total on every pair.
func FuzzShardMergeOrder(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(3), int64(2))
	f.Add(int64(42), uint8(64), uint8(1), int64(7))
	f.Add(int64(-9), uint8(2), uint8(8), int64(0))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, trunks uint8, shuffleSeed int64) {
		batch := fuzzHandoffs(seed, int(n), int(trunks)%8+1)

		// Two different interleavings of the same batch — stand-ins for
		// two different shard partitions delivering the same handoffs
		// through differently-grouped boundary queues.
		a := append([]handoff(nil), batch...)
		b := append([]handoff(nil), batch...)
		shuf := sim.NewRNG(shuffleSeed, "fuzz-merge-shuffle")
		for i := len(b) - 1; i > 0; i-- {
			j := int(shuf.Int63n(int64(i + 1)))
			b[i], b[j] = b[j], b[i]
		}

		sort.Slice(a, func(i, j int) bool { return handoffBefore(a[i], a[j]) })
		sort.Slice(b, func(i, j int) bool { return handoffBefore(b[i], b[j]) })
		for i := range a {
			if a[i].arrival != b[i].arrival || a[i].trunk != b[i].trunk || a[i].seq != b[i].seq {
				t.Fatalf("merge order depends on the interleaving at %d: %+v vs %+v", i, a[i], b[i])
			}
		}

		// Comparator laws: irreflexive, asymmetric, and total up to key
		// equality — every distinct pair is strictly ordered one way.
		for i := range a {
			if handoffBefore(a[i], a[i]) {
				t.Fatalf("handoffBefore not irreflexive at %d: %+v", i, a[i])
			}
			for j := i + 1; j < len(a); j++ {
				ij, ji := handoffBefore(a[i], a[j]), handoffBefore(a[j], a[i])
				if ij && ji {
					t.Fatalf("handoffBefore not asymmetric: %+v vs %+v", a[i], a[j])
				}
				sameKey := a[i].arrival == a[j].arrival && a[i].trunk == a[j].trunk && a[i].seq == a[j].seq
				if !ij && !ji && !sameKey {
					t.Fatalf("distinct handoffs unordered: %+v vs %+v", a[i], a[j])
				}
			}
		}

		// The sorted order must respect the comparator pairwise — the
		// transitivity check sort.Slice itself cannot promise.
		for i := 0; i+1 < len(a); i++ {
			if handoffBefore(a[i+1], a[i]) {
				t.Fatalf("sorted sequence violates comparator at %d", i)
			}
		}
	})
}
