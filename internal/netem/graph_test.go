package netem

import (
	"testing"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// twoSwitchFabric builds west—east with one trunk and two nodes homed
// on opposite sides.
func twoSwitchFabric(clock *sim.Clock, trunk TrunkConfig) (*GraphFabric, *sink, *sink) {
	g := NewGraphFabric(clock)
	g.AddSwitch("west")
	g.AddSwitch("east")
	g.AddTrunk("west", "east", trunk, nil)
	g.AssignHome("a", "west")
	g.AssignHome("b", "east")
	sa, sb := &sink{clock: clock}, &sink{clock: clock}
	g.Attach("a", Symmetric(units.Mbps(10), 5*time.Millisecond, 0), sa, nil)
	g.Attach("b", Symmetric(units.Mbps(10), 5*time.Millisecond, 0), sb, nil)
	return g, sa, sb
}

func TestGraphRoutedDelivery(t *testing.T) {
	clock := sim.NewClock()
	g, _, sb := twoSwitchFabric(clock, SymmetricTrunk(units.Mbps(100), 3*time.Millisecond, 0))
	if !g.Port("a").Send("b", 512, "hello") {
		t.Fatal("Send rejected")
	}
	clock.Run()
	if len(sb.frames) != 1 {
		t.Fatalf("b received %d frames, want 1", len(sb.frames))
	}
	if f := sb.frames[0]; f.Src != "a" || f.Dst != "b" || f.Payload != "hello" {
		t.Errorf("frame = %+v", f)
	}
	// Latency = uplink ser + 5ms + trunk ser + 3ms + downlink ser + 5ms,
	// exactly the analytic PathOneWay.
	want := sim.Time(g.PathOneWay("a", "b", 512))
	if sb.times[0] != want {
		t.Errorf("arrival at %v, want %v", sb.times[0], want)
	}
	// The trunk saw the frame; the reverse direction did not.
	if st := g.Trunk("west", "east").Stats(); st.CellsDelivered != 1 {
		t.Errorf("west>east delivered %d, want 1", st.CellsDelivered)
	}
	if st := g.Trunk("east", "west").Stats(); st.CellsDelivered != 0 {
		t.Errorf("east>west delivered %d, want 0", st.CellsDelivered)
	}
}

func TestGraphSingleSwitchMatchesStar(t *testing.T) {
	// A one-switch graph is the star: same attach sequence, same frames,
	// identical delivery times.
	starClock, graphClock := sim.NewClock(), sim.NewClock()
	star := NewStar(starClock)
	graph := NewGraphFabric(graphClock)
	graph.AddSwitch("hub")

	starSinks := map[NodeID]*sink{}
	graphSinks := map[NodeID]*sink{}
	cfgs := map[NodeID]AccessConfig{
		"a": Symmetric(units.Mbps(10), 2*time.Millisecond, 0),
		"b": {UpRate: units.Mbps(100), DownRate: units.Mbps(2), Delay: time.Millisecond},
		"c": Symmetric(units.Mbps(50), 0, 0),
	}
	for _, id := range []NodeID{"a", "b", "c"} {
		starSinks[id] = &sink{clock: starClock}
		graphSinks[id] = &sink{clock: graphClock}
		star.Attach(id, cfgs[id], starSinks[id], nil)
		graph.Attach(id, cfgs[id], graphSinks[id], nil)
	}
	send := func(f Fabric, src, dst NodeID, n int) {
		for i := 0; i < n; i++ {
			f.Port(src).Send(dst, 512, i)
		}
		f.Port(src).SendPriority(dst, 24, "ctrl")
	}
	for _, pair := range [][2]NodeID{{"a", "b"}, {"b", "c"}, {"c", "a"}} {
		send(star, pair[0], pair[1], 5)
		send(graph, pair[0], pair[1], 5)
	}
	starClock.Run()
	graphClock.Run()
	for _, id := range []NodeID{"a", "b", "c"} {
		ss, gs := starSinks[id], graphSinks[id]
		if len(ss.frames) != len(gs.frames) {
			t.Fatalf("node %s: star %d frames, graph %d", id, len(ss.frames), len(gs.frames))
		}
		for i := range ss.frames {
			if ss.times[i] != gs.times[i] || ss.frames[i].Payload != gs.frames[i].Payload {
				t.Fatalf("node %s frame %d: star (%v, %v) vs graph (%v, %v)",
					id, i, ss.times[i], ss.frames[i].Payload, gs.times[i], gs.frames[i].Payload)
			}
		}
	}
}

func TestGraphPriorityAcrossMultiHopRoute(t *testing.T) {
	// Three switches in a line; a slow middle trunk builds a queue the
	// priority frame must jump at an interior hop, not just at the edge.
	clock := sim.NewClock()
	g := NewGraphFabric(clock)
	for _, id := range []SwitchID{"s1", "s2", "s3"} {
		g.AddSwitch(id)
	}
	g.AddTrunk("s1", "s2", SymmetricTrunk(units.Mbps(100), time.Millisecond, 0), nil)
	g.AddTrunk("s2", "s3", SymmetricTrunk(units.Mbps(1), time.Millisecond, 0), nil)
	g.AssignHome("a", "s1")
	g.AssignHome("b", "s3")
	col := &sink{clock: clock}
	g.Attach("a", Symmetric(units.Mbps(100), 0, 0), &sink{clock: clock}, nil)
	g.Attach("b", Symmetric(units.Mbps(100), 0, 0), col, nil)

	pa := g.Port("a")
	for i := 0; i < 3; i++ {
		pa.Send("b", 500, i)
	}
	pa.SendPriority("b", 24, "ctrl")
	clock.Run()

	if len(col.frames) != 4 {
		t.Fatalf("delivered %d frames", len(col.frames))
	}
	// The fast edge links drain instantly; the 1 Mbit/s s2>s3 trunk is
	// where the bulk frames queue, and the control frame must overtake
	// all but the frame already serializing there.
	if col.frames[1].Payload != "ctrl" {
		t.Fatalf("order: %v, %v, %v, %v", col.frames[0].Payload,
			col.frames[1].Payload, col.frames[2].Payload, col.frames[3].Payload)
	}
	if !col.frames[1].Priority {
		t.Fatal("priority bit lost crossing the routed backbone")
	}
	if st := g.Trunk("s2", "s3").Stats(); st.MaxQueueLen < 2 {
		t.Errorf("bottleneck trunk MaxQueueLen = %d, want ≥ 2", st.MaxQueueLen)
	}
}

func TestGraphRandomLossOnTrunkRoute(t *testing.T) {
	// Certain loss on the middle trunk: every frame vanishes there and
	// is accounted as RandomLoss on exactly that link.
	clock := sim.NewClock()
	g := NewGraphFabric(clock)
	g.AddSwitch("s1")
	g.AddSwitch("s2")
	rng := sim.NewRNG(1, "trunk-loss")
	g.AddTrunk("s1", "s2", TrunkConfig{Rate: units.Mbps(10), LossProb: 1}, rng)
	g.AssignHome("a", "s1")
	g.AssignHome("b", "s2")
	col := &sink{clock: clock}
	g.Attach("a", Symmetric(units.Mbps(10), 0, 0), &sink{clock: clock}, nil)
	g.Attach("b", Symmetric(units.Mbps(10), 0, 0), col, nil)

	const n = 10
	for i := 0; i < n; i++ {
		g.Port("a").Send("b", 512, i)
	}
	clock.Run()
	if len(col.frames) != 0 {
		t.Fatalf("delivered %d frames through a fully lossy trunk", len(col.frames))
	}
	st := g.Trunk("s1", "s2").Stats()
	if st.RandomLoss != n {
		t.Errorf("trunk RandomLoss = %d, want %d", st.RandomLoss, n)
	}
	if up := g.Port("a").Uplink().Stats(); up.CellsDelivered != n {
		t.Errorf("uplink delivered %d, want %d (loss must happen on the trunk)", up.CellsDelivered, n)
	}
}

func TestGraphDeterministicTieBreak(t *testing.T) {
	// Diamond: hub—{left,right}—far with identical trunks. Both routes
	// cost the same; the lexicographically smaller next hop ("left")
	// must carry the traffic, deterministically.
	clock := sim.NewClock()
	g := NewGraphFabric(clock)
	for _, id := range []SwitchID{"hub", "left", "right", "far"} {
		g.AddSwitch(id)
	}
	cfg := SymmetricTrunk(units.Mbps(100), time.Millisecond, 0)
	g.AddTrunk("hub", "left", cfg, nil)
	g.AddTrunk("hub", "right", cfg, nil)
	g.AddTrunk("left", "far", cfg, nil)
	g.AddTrunk("right", "far", cfg, nil)
	g.AssignHome("a", "hub")
	g.AssignHome("b", "far")
	col := &sink{clock: clock}
	g.Attach("a", Symmetric(units.Mbps(100), 0, 0), &sink{clock: clock}, nil)
	g.Attach("b", Symmetric(units.Mbps(100), 0, 0), col, nil)

	for i := 0; i < 4; i++ {
		g.Port("a").Send("b", 512, i)
	}
	clock.Run()
	if len(col.frames) != 4 {
		t.Fatalf("delivered %d", len(col.frames))
	}
	if st := g.Trunk("hub", "left").Stats(); st.CellsDelivered != 4 {
		t.Errorf("left route delivered %d, want 4", st.CellsDelivered)
	}
	if st := g.Trunk("hub", "right").Stats(); st.Enqueued != 0 {
		t.Errorf("right route saw %d frames, want 0", st.Enqueued)
	}
}

func TestGraphTieBreakSurvivesLateEqualCostPath(t *testing.T) {
	// Two equal-cost, equal-hop routes hub→b (via a,z: 1+4+0 ms; via
	// c,d: 2+2+1 ms). The "a" first hop is lexicographically smaller
	// and must win for b AND for e behind it — even though Dijkstra
	// settles b along the "c" route first and discovers the "a" route
	// later. Regression: relaxing an already-visited switch used to
	// flip b's tie-break after e had inherited the old one.
	clock := sim.NewClock()
	g := NewGraphFabric(clock)
	for _, id := range []SwitchID{"hub", "a", "z", "b", "c", "d", "e"} {
		g.AddSwitch(id)
	}
	ms := func(n int) TrunkConfig {
		return SymmetricTrunk(units.Mbps(100), time.Duration(n)*time.Millisecond, 0)
	}
	g.AddTrunk("hub", "a", ms(1), nil)
	g.AddTrunk("a", "z", ms(4), nil)
	g.AddTrunk("z", "b", ms(0), nil)
	g.AddTrunk("hub", "c", ms(2), nil)
	g.AddTrunk("c", "d", ms(2), nil)
	g.AddTrunk("d", "b", ms(1), nil)
	g.AddTrunk("b", "e", ms(1), nil)
	g.AssignHome("src", "hub")
	g.AssignHome("dstB", "b")
	g.AssignHome("dstE", "e")
	for _, id := range []NodeID{"src", "dstB", "dstE"} {
		g.Attach(id, Symmetric(units.Mbps(100), 0, 0), &sink{clock: clock}, nil)
	}
	g.Port("src").Send("dstB", 512, nil)
	g.Port("src").Send("dstE", 512, nil)
	clock.Run()
	if st := g.Trunk("hub", "a").Stats(); st.CellsDelivered != 2 {
		t.Errorf("hub>a carried %d frames, want 2 (lexicographic tie-break)", st.CellsDelivered)
	}
	if st := g.Trunk("hub", "c").Stats(); st.Enqueued != 0 {
		t.Errorf("hub>c carried %d frames, want 0", st.Enqueued)
	}
	// The analytic transit path agrees with the routed one.
	if ts := g.PathTransits("src", "dstE"); len(ts) != 4 || ts[0].Name() != "trunk:hub>a" {
		names := make([]string, len(ts))
		for i, l := range ts {
			names[i] = l.Name()
		}
		t.Errorf("PathTransits route = %v", names)
	}
}

func TestGraphUnknownAndUnroutable(t *testing.T) {
	clock := sim.NewClock()
	g := NewGraphFabric(clock)
	g.AddSwitch("s1")
	g.AddSwitch("island") // no trunk: disconnected
	g.AssignHome("a", "s1")
	g.AssignHome("b", "island")
	g.Attach("a", Symmetric(units.Mbps(10), 0, 0), &sink{clock: clock}, nil)
	g.Attach("b", Symmetric(units.Mbps(10), 0, 0), &sink{clock: clock}, nil)

	g.Port("a").Send("ghost", 512, nil)
	g.Port("a").Send("b", 512, nil)
	clock.Run()
	if g.UnknownDst() != 1 {
		t.Errorf("UnknownDst = %d, want 1", g.UnknownDst())
	}
	if g.Unroutable() != 1 {
		t.Errorf("Unroutable = %d, want 1", g.Unroutable())
	}
}

func TestGraphStatsResetCleanly(t *testing.T) {
	clock := sim.NewClock()
	g, _, sb := twoSwitchFabric(clock, SymmetricTrunk(units.Mbps(1), time.Millisecond, 0))
	for i := 0; i < 5; i++ {
		g.Port("a").Send("b", 500, i)
	}
	g.Port("a").Send("ghost", 500, nil)
	clock.Run()
	if len(sb.frames) != 5 {
		t.Fatalf("delivered %d", len(sb.frames))
	}
	st := g.Trunk("west", "east").Stats()
	if st.MaxQueueLen == 0 || st.QueueDelay == 0 {
		t.Fatalf("expected trunk queueing, got %+v", st)
	}

	g.ResetStats()
	if g.UnknownDst() != 0 || g.Unroutable() != 0 {
		t.Error("drop counters survived ResetStats")
	}
	for _, l := range g.Trunks() {
		if l.Stats() != (LinkStats{}) {
			t.Errorf("trunk %s stats survived reset: %+v", l.Name(), l.Stats())
		}
	}
	if up := g.Port("a").Uplink().Stats(); up != (LinkStats{}) {
		t.Errorf("access stats survived reset: %+v", up)
	}
	// The fabric still routes after a reset.
	g.Port("a").Send("b", 500, "again")
	clock.Run()
	if g.Trunk("west", "east").Stats().CellsDelivered != 1 {
		t.Error("delivery after reset not accounted from zero")
	}
}

func TestGraphAnalyticPaths(t *testing.T) {
	clock := sim.NewClock()
	g := NewGraphFabric(clock)
	for _, id := range []SwitchID{"s1", "s2", "s3"} {
		g.AddSwitch(id)
	}
	g.AddTrunk("s1", "s2", SymmetricTrunk(units.Mbps(8), 3*time.Millisecond, 0), nil)
	g.AddTrunk("s2", "s3", SymmetricTrunk(units.Mbps(50), 2*time.Millisecond, 0), nil)
	g.AssignHome("a", "s1")
	g.AssignHome("b", "s3")
	g.Attach("a", Symmetric(units.Mbps(10), 5*time.Millisecond, 0), &sink{clock: clock}, nil)
	g.Attach("b", Symmetric(units.Mbps(100), 7*time.Millisecond, 0), &sink{clock: clock}, nil)

	ser := func(mbps float64) time.Duration { return units.Mbps(mbps).TransmissionTime(512) }
	want := ser(10) + 5*time.Millisecond + // a's uplink
		ser(8) + 3*time.Millisecond + // s1>s2
		ser(50) + 2*time.Millisecond + // s2>s3
		ser(100) + 7*time.Millisecond // b's downlink
	if got := g.PathOneWay("a", "b", 512); got != want {
		t.Errorf("PathOneWay = %v, want %v", got, want)
	}
	if rtt := g.PathRTT("a", "b", 512); rtt != g.PathOneWay("a", "b", 512)+g.PathOneWay("b", "a", 512) {
		t.Error("RTT != sum of one-way latencies")
	}
	if got := g.BottleneckRate([]NodeID{"a", "b"}); got != units.Mbps(8) {
		t.Errorf("BottleneckRate = %v, want 8 Mbit/s (the s1>s2 trunk)", got)
	}
}

func TestGraphHomeDefaultIsDeterministic(t *testing.T) {
	build := func() *GraphFabric {
		g := NewGraphFabric(sim.NewClock())
		g.AddSwitch("s1")
		g.AddSwitch("s2")
		g.AddSwitch("s3")
		g.AddTrunk("s1", "s2", SymmetricTrunk(units.Mbps(10), 0, 0), nil)
		g.AddTrunk("s2", "s3", SymmetricTrunk(units.Mbps(10), 0, 0), nil)
		return g
	}
	g1, g2 := build(), build()
	spread := map[SwitchID]int{}
	for i := 0; i < 64; i++ {
		id := NodeID(rune('a'+i%26)) + NodeID(rune('0'+i/26))
		if g1.Home(id) != g2.Home(id) {
			t.Fatalf("node %q homes differ across identical fabrics", id)
		}
		spread[g1.Home(id)]++
	}
	if len(spread) < 2 {
		t.Errorf("hash homing used %d of 3 switches", len(spread))
	}
}

func TestGraphSpecValidate(t *testing.T) {
	trunk := SymmetricTrunk(units.Mbps(10), 0, 0)
	cases := []struct {
		name string
		spec GraphSpec
	}{
		{"no switches", GraphSpec{}},
		{"duplicate switch", GraphSpec{Switches: []SwitchID{"a", "a"}}},
		{"self-loop trunk", GraphSpec{Switches: []SwitchID{"a"}, Trunks: []TrunkSpec{{A: "a", B: "a", Config: trunk}}}},
		{"unknown trunk endpoint", GraphSpec{Switches: []SwitchID{"a"}, Trunks: []TrunkSpec{{A: "a", B: "ghost", Config: trunk}}}},
		{"duplicate trunk", GraphSpec{Switches: []SwitchID{"a", "b"},
			Trunks: []TrunkSpec{{A: "a", B: "b", Config: trunk}, {A: "b", B: "a", Config: trunk}}}},
		{"bad rate", GraphSpec{Switches: []SwitchID{"a", "b"}, Trunks: []TrunkSpec{{A: "a", B: "b"}}}},
		{"bad loss", GraphSpec{Switches: []SwitchID{"a", "b"},
			Trunks: []TrunkSpec{{A: "a", B: "b", Config: TrunkConfig{Rate: 1, LossProb: 2}}}}},
		{"home to unknown switch", GraphSpec{Switches: []SwitchID{"a"},
			Homes: map[NodeID]SwitchID{"n": "ghost"}}},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	ok := GraphSpec{
		Switches: []SwitchID{"a", "b"},
		Trunks:   []TrunkSpec{{A: "a", B: "b", Config: trunk}},
		Homes:    map[NodeID]SwitchID{"n": "a"},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if !ok.HasTrunk("b", "a") || ok.HasTrunk("a", "ghost") {
		t.Error("HasTrunk broken")
	}
}

func TestGraphSpecBuild(t *testing.T) {
	clock := sim.NewClock()
	spec := GraphSpec{
		Switches: []SwitchID{"s1", "s2"},
		Trunks:   []TrunkSpec{{A: "s1", B: "s2", Config: SymmetricTrunk(units.Mbps(10), time.Millisecond, 0)}},
		Homes:    map[NodeID]SwitchID{"a": "s1", "b": "s2"},
	}
	g := spec.Build(clock, nil)
	col := &sink{clock: clock}
	g.Attach("a", Symmetric(units.Mbps(10), 0, 0), &sink{clock: clock}, nil)
	g.Attach("b", Symmetric(units.Mbps(10), 0, 0), col, nil)
	g.Port("a").Send("b", 512, "x")
	clock.Run()
	if len(col.frames) != 1 {
		t.Fatal("spec-built fabric did not deliver")
	}
	if got := len(g.Trunks()); got != 2 {
		t.Fatalf("%d directed trunks, want 2", got)
	}
}

func TestGraphBuildPhasePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	clock := sim.NewClock()
	g := NewGraphFabric(clock)
	g.AddSwitch("s1")
	expectPanic("duplicate switch", func() { g.AddSwitch("s1") })
	expectPanic("self-loop", func() { g.AddTrunk("s1", "s1", SymmetricTrunk(1, 0, 0), nil) })
	expectPanic("unknown trunk switch", func() { g.AddTrunk("s1", "ghost", SymmetricTrunk(1, 0, 0), nil) })
	expectPanic("home to unknown switch", func() { g.AssignHome("n", "ghost") })
	g.Attach("n", Symmetric(units.Mbps(1), 0, 0), &sink{clock: clock}, nil)
	expectPanic("switch after freeze", func() { g.AddSwitch("s2") })
	expectPanic("trunk after freeze", func() { g.AddTrunk("s1", "s2", SymmetricTrunk(1, 0, 0), nil) })
	expectPanic("duplicate attach", func() {
		g.Attach("n", Symmetric(units.Mbps(1), 0, 0), &sink{clock: clock}, nil)
	})
	expectPanic("home after attach", func() { g.AssignHome("n", "s1") })
}
