package netem

import (
	"fmt"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// AccessConfig describes a node's attachment to the fabric: an uplink
// (node → fabric) and a downlink (fabric → node). The paper's evaluation
// connects randomly generated Tor relays "in a star topology", so a
// relay's access capacity is the natural bottleneck location; on routed
// fabrics the trunk links between switches contend as well.
type AccessConfig struct {
	UpRate   units.DataRate
	DownRate units.DataRate
	// Delay is the one-way propagation delay of each access link; the
	// node-to-node one-way delay through the fabric is the sum of the
	// two nodes' Delays plus any trunk delays on the route.
	Delay time.Duration
	// QueueCap bounds each access link's queue (0 = unbounded).
	QueueCap units.DataSize
	// LossProb applies independently on both access links.
	LossProb float64
	// TrainSize enables cell trains on both access links (see
	// LinkConfig.TrainSize). <= 1 keeps the per-frame machinery.
	TrainSize int
}

// Validate checks the access configuration against the same rules
// NewLink enforces by panic, so scenario validation can reject a bad
// grid point cleanly before any fabric is built. The RNG requirement is
// not checked here: fabrics supply the loss stream at Attach time.
func (c AccessConfig) Validate() error {
	if c.UpRate <= 0 {
		return fmt.Errorf("netem: non-positive up rate %v", c.UpRate)
	}
	if c.DownRate <= 0 {
		return fmt.Errorf("netem: non-positive down rate %v", c.DownRate)
	}
	if c.Delay < 0 {
		return fmt.Errorf("netem: negative delay %v", c.Delay)
	}
	if c.LossProb < 0 || c.LossProb > 1 {
		return fmt.Errorf("netem: loss probability %v outside [0,1]", c.LossProb)
	}
	if c.TrainSize < 0 {
		return fmt.Errorf("netem: negative train size %d", c.TrainSize)
	}
	return nil
}

// Symmetric returns an AccessConfig with equal up/down rate.
func Symmetric(rate units.DataRate, delay time.Duration, queueCap units.DataSize) AccessConfig {
	return AccessConfig{UpRate: rate, DownRate: rate, Delay: delay, QueueCap: queueCap}
}

// Fabric is the pluggable topology substrate: it attaches node ports,
// routes frames between them, and accounts what happened on the way.
// StarFabric (the paper's hub-and-spoke switch) and GraphFabric (a
// routed multi-switch backbone) implement it; everything above netem —
// relays, endpoints, core.Network — works against this interface, so a
// scenario swaps topologies without touching the overlay.
type Fabric interface {
	// Clock returns the simulation clock the fabric runs on.
	Clock() *sim.Clock
	// Attach connects a node. The handler receives every frame addressed
	// to id; rng drives the access links' loss processes. Attaching the
	// same id twice, or a nil handler, panics.
	Attach(id NodeID, cfg AccessConfig, h Handler, rng *sim.RNG) *Port
	// Port returns the port of an attached node, or nil.
	Port(id NodeID) *Port
	// Nodes returns the attached node IDs in sorted order.
	Nodes() []NodeID
	// Trunks returns the fabric-internal links (switch-to-switch trunks)
	// in deterministic order; nil when the fabric has none (star).
	Trunks() []*Link
	// UnknownDst returns how many frames were addressed to detached
	// nodes (and silently dropped).
	UnknownDst() uint64
	// Unroutable returns how many frames were dropped because no route
	// existed between their switches (always 0 on a star).
	Unroutable() uint64
	// ResetStats zeroes the drop counters and every access and trunk
	// link's LinkStats, so a fabric reused across trials starts clean.
	ResetStats()
	// PathOneWay returns the analytic no-queueing one-way latency from a
	// to b for a frame of the given size. Panics on unattached nodes.
	PathOneWay(a, b NodeID, size units.DataSize) time.Duration
	// PathRTT returns the analytic no-queueing round-trip time between
	// two attached nodes for a frame of the given size in each direction.
	PathRTT(a, b NodeID, size units.DataSize) time.Duration
	// BottleneckRate returns the minimum forwarding rate along the node
	// sequence path. Panics on paths shorter than two nodes or with
	// unattached hops.
	BottleneckRate(path []NodeID) units.DataRate
	// PathTransits returns the fabric-internal links a frame from a to
	// b crosses between the two access links, in traversal order (nil
	// on a star). The analytic path model folds them into its per-hop
	// rates and latencies. Panics on unattached nodes.
	PathTransits(a, b NodeID) []*Link
	// FramePool returns the fabric's frame pool. The overlay uses it to
	// install an OnReclaim hook for payload wrappers; per-frame traffic
	// must keep going through Port.Send.
	FramePool() *FramePool
}

// Port is a node's view of the network: it sends frames into its uplink
// and receives deliveries from its downlink. Ports are created by a
// Fabric's Attach; the uplink feeds the fabric's routing stage.
type Port struct {
	id   NodeID
	up   *Link // node → fabric
	down *Link // fabric → node
	cfg  AccessConfig
	pool *FramePool // the owning fabric's frame pool (may be nil)
}

// ID returns the node ID this port belongs to.
func (p *Port) ID() NodeID { return p.id }

// Config returns the access configuration.
func (p *Port) Config() AccessConfig { return p.cfg }

// Uplink exposes the node → fabric link (for stats and tests).
func (p *Port) Uplink() *Link { return p.up }

// Downlink exposes the fabric → node link (for stats and tests).
func (p *Port) Downlink() *Link { return p.down }

// Send transmits payload of the given wire size to dst. It reports
// whether the uplink accepted the frame. The frame is drawn from the
// fabric's pool and recycled by the network when it dies (drop, loss,
// or delivery) — see Frame ownership.
func (p *Port) Send(dst NodeID, size units.DataSize, payload any) bool {
	return p.up.Send(p.newFrame(dst, size, payload, false))
}

// SendPriority transmits a control payload that serializes ahead of
// queued data frames on every link it crosses (the priority bit travels
// with the frame through the fabric).
func (p *Port) SendPriority(dst NodeID, size units.DataSize, payload any) bool {
	return p.up.Send(p.newFrame(dst, size, payload, true))
}

// SendCirc is Send with the frame tagged by its overlay circuit, so
// circuit schedulers installed on this uplink (or on trunks the frame
// crosses) can service circuits instead of a single FIFO. With no
// scheduler installed it behaves exactly like Send.
func (p *Port) SendCirc(dst NodeID, size units.DataSize, payload any, circ uint32) bool {
	f := p.newFrame(dst, size, payload, false)
	f.Circ = circ
	return p.up.Send(f)
}

func (p *Port) newFrame(dst NodeID, size units.DataSize, payload any, priority bool) *Frame {
	f := p.pool.Get()
	f.Src = p.id
	f.Dst = dst
	f.Size = size
	f.Payload = payload
	f.Priority = priority
	f.Circ = 0
	return f
}

// newPort wires a node's access links. ingress is the fabric's routing
// stage fed by the uplink; h consumes downlink deliveries. pool is the
// fabric's frame pool: the downlink is the terminal hop of every frame
// it carries, so it recycles frames after the handler returns.
func newPort(id NodeID, clock *sim.Clock, cfg AccessConfig, ingress, h Handler, rng *sim.RNG, pool *FramePool) *Port {
	p := &Port{id: id, cfg: cfg, pool: pool}
	p.up = NewLink(string(id)+"/up", clock, LinkConfig{
		Rate: cfg.UpRate, Delay: cfg.Delay, QueueCap: cfg.QueueCap,
		LossProb: cfg.LossProb, RNG: rng, TrainSize: cfg.TrainSize,
	}, ingress)
	p.up.UsePool(pool, false)
	p.down = NewLink(string(id)+"/down", clock, LinkConfig{
		Rate: cfg.DownRate, Delay: cfg.Delay, QueueCap: cfg.QueueCap,
		LossProb: cfg.LossProb, RNG: rng, TrainSize: cfg.TrainSize,
	}, h)
	p.down.UsePool(pool, true)
	return p
}
