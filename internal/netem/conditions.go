package netem

import (
	"fmt"
	"time"

	"circuitstart/internal/sim"
)

// LossModel is a stateful per-frame loss process installed on a Link in
// addition to the built-in i.i.d. Bernoulli LossProb. The model is
// consulted exactly once for every frame that completes serialization —
// independent of the link's up/down state and of the built-in loss
// draw — so a model's RNG stream consumption is a pure function of the
// frame sequence and never perturbs any other stream.
type LossModel interface {
	// Drop reports whether the frame completing serialization is lost.
	Drop() bool
}

// GilbertElliott is the classic two-state burst-loss channel: a "good"
// state with low loss and a "bad" state with high loss, with geometric
// sojourn times. Each frame first draws the state transition, then the
// loss outcome in the current state, both from the model's own RNG
// stream.
type GilbertElliott struct {
	// PGoodBad and PBadGood are the per-frame transition probabilities
	// good→bad and bad→good.
	PGoodBad, PBadGood float64
	// LossGood and LossBad are the loss probabilities in each state.
	LossGood, LossBad float64
	// RNG drives both the state transitions and the loss draws. It must
	// be a dedicated stream.
	RNG *sim.RNG

	bad bool
}

// Validate checks the model parameters.
func (g *GilbertElliott) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"p-good-bad", g.PGoodBad}, {"p-bad-good", g.PBadGood},
		{"loss-good", g.LossGood}, {"loss-bad", g.LossBad},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("netem: gilbert-elliott %s %v outside [0,1]", p.name, p.v)
		}
	}
	if g.RNG == nil {
		return fmt.Errorf("netem: gilbert-elliott model without RNG")
	}
	return nil
}

// Drop advances the two-state chain by one frame and reports loss. Both
// draws happen unconditionally (transition first, then loss) so the
// stream consumption per frame is fixed.
func (g *GilbertElliott) Drop() bool {
	flip := g.RNG.Float64()
	if g.bad {
		if flip < g.PBadGood {
			g.bad = false
		}
	} else {
		if flip < g.PGoodBad {
			g.bad = true
		}
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return g.RNG.Float64() < p
}

// Bad reports whether the channel is currently in the bad state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// JitterModel adds extra propagation delay per delivery event. The model
// is consulted once per scheduled delivery (per frame untrained, per
// train trained); the link clamps delivery instants monotonically so the
// in-flight FIFO discipline is preserved under arbitrary jitter.
type JitterModel interface {
	// Extra returns the additional one-way delay for the next delivery.
	Extra() time.Duration
}

// UniformJitter draws U[0, Amplitude) of extra delay per delivery, plus
// a SpikeDelay spike with probability SpikeProb — the classic "mostly
// small jitter, occasional bufferbloat excursion" shape. All draws come
// from the model's own RNG stream: one Uniform always, one extra draw
// for the spike only when SpikeProb is in (0,1) (Bernoulli's edge
// short-circuit keeps zero-value spikes draw-free).
type UniformJitter struct {
	// Amplitude bounds the base jitter (0 disables the uniform part).
	Amplitude time.Duration
	// SpikeProb is the per-delivery probability of a latency spike.
	SpikeProb float64
	// SpikeDelay is the extra delay a spike adds.
	SpikeDelay time.Duration
	// RNG drives the draws. It must be a dedicated stream.
	RNG *sim.RNG
}

// Validate checks the model parameters.
func (j *UniformJitter) Validate() error {
	if j.Amplitude < 0 {
		return fmt.Errorf("netem: jitter amplitude %v negative", j.Amplitude)
	}
	if j.SpikeProb < 0 || j.SpikeProb > 1 {
		return fmt.Errorf("netem: jitter spike probability %v outside [0,1]", j.SpikeProb)
	}
	if j.SpikeDelay < 0 {
		return fmt.Errorf("netem: jitter spike delay %v negative", j.SpikeDelay)
	}
	if j.RNG == nil {
		return fmt.Errorf("netem: jitter model without RNG")
	}
	return nil
}

// Extra returns the next delivery's additional delay.
func (j *UniformJitter) Extra() time.Duration {
	d := time.Duration(j.RNG.Float64() * float64(j.Amplitude))
	if j.RNG.Bernoulli(j.SpikeProb) {
		d += j.SpikeDelay
	}
	return d
}
