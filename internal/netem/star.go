package netem

import (
	"fmt"
	"sort"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// AccessConfig describes a node's attachment to the star: an uplink
// (node → switch) and a downlink (switch → node). The paper's evaluation
// connects randomly generated Tor relays "in a star topology", so a
// relay's access capacity is the natural bottleneck location.
type AccessConfig struct {
	UpRate   units.DataRate
	DownRate units.DataRate
	// Delay is the one-way propagation delay of each access link; the
	// node-to-node one-way delay through the switch is the sum of the
	// two nodes' Delays.
	Delay time.Duration
	// QueueCap bounds each access link's queue (0 = unbounded).
	QueueCap units.DataSize
	// LossProb applies independently on both access links.
	LossProb float64
}

// Symmetric returns an AccessConfig with equal up/down rate.
func Symmetric(rate units.DataRate, delay time.Duration, queueCap units.DataSize) AccessConfig {
	return AccessConfig{UpRate: rate, DownRate: rate, Delay: delay, QueueCap: queueCap}
}

// Port is a node's view of the network: it sends frames into its uplink
// and receives deliveries from its downlink.
type Port struct {
	id   NodeID
	star *Star
	up   *Link // node → switch
	down *Link // switch → node
	cfg  AccessConfig
}

// ID returns the node ID this port belongs to.
func (p *Port) ID() NodeID { return p.id }

// Config returns the access configuration.
func (p *Port) Config() AccessConfig { return p.cfg }

// Uplink exposes the node → switch link (for stats and tests).
func (p *Port) Uplink() *Link { return p.up }

// Downlink exposes the switch → node link (for stats and tests).
func (p *Port) Downlink() *Link { return p.down }

// Send transmits payload of the given wire size to dst. It reports
// whether the uplink accepted the frame.
func (p *Port) Send(dst NodeID, size units.DataSize, payload any) bool {
	return p.up.Send(&Frame{Src: p.id, Dst: dst, Size: size, Payload: payload})
}

// SendPriority transmits a control payload that serializes ahead of
// queued data frames on every link it crosses (the priority bit travels
// with the frame through the switch).
func (p *Port) SendPriority(dst NodeID, size units.DataSize, payload any) bool {
	return p.up.Send(&Frame{Src: p.id, Dst: dst, Size: size, Payload: payload, Priority: true})
}

// Star is a hub-and-spoke topology: every node connects to a central
// switch that forwards frames to the destination's downlink. The switch
// fabric itself is non-blocking; all contention happens on access links.
type Star struct {
	clock *sim.Clock
	ports map[NodeID]*Port

	// unknownDst counts frames addressed to detached nodes.
	unknownDst uint64
}

// NewStar creates an empty star network on the given clock.
func NewStar(clock *sim.Clock) *Star {
	if clock == nil {
		panic("netem: NewStar with nil clock")
	}
	return &Star{clock: clock, ports: make(map[NodeID]*Port)}
}

// Clock returns the simulation clock the network runs on.
func (s *Star) Clock() *sim.Clock { return s.clock }

// Attach connects a node to the star. The handler receives every frame
// addressed to id. Attach panics if id is already attached — silently
// replacing a node's handler would invalidate running experiments.
func (s *Star) Attach(id NodeID, cfg AccessConfig, h Handler, rng *sim.RNG) *Port {
	if _, dup := s.ports[id]; dup {
		panic(fmt.Sprintf("netem: node %q attached twice", id))
	}
	if h == nil {
		panic(fmt.Sprintf("netem: node %q attached with nil handler", id))
	}
	p := &Port{id: id, star: s, cfg: cfg}
	p.up = NewLink(string(id)+"/up", s.clock, LinkConfig{
		Rate: cfg.UpRate, Delay: cfg.Delay, QueueCap: cfg.QueueCap,
		LossProb: cfg.LossProb, RNG: rng,
	}, HandlerFunc(s.route))
	p.down = NewLink(string(id)+"/down", s.clock, LinkConfig{
		Rate: cfg.DownRate, Delay: cfg.Delay, QueueCap: cfg.QueueCap,
		LossProb: cfg.LossProb, RNG: rng,
	}, h)
	s.ports[id] = p
	return p
}

// route is the switch fabric: a frame arriving from any uplink is
// forwarded onto the destination's downlink with zero switching delay.
func (s *Star) route(f *Frame) {
	dst, ok := s.ports[f.Dst]
	if !ok {
		s.unknownDst++
		return
	}
	dst.down.Send(f)
}

// Port returns the port of an attached node, or nil.
func (s *Star) Port(id NodeID) *Port { return s.ports[id] }

// Nodes returns the attached node IDs in sorted order (deterministic
// iteration for seeding and reporting).
func (s *Star) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(s.ports))
	for id := range s.ports {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// UnknownDst returns how many frames were addressed to detached nodes.
func (s *Star) UnknownDst() uint64 { return s.unknownDst }

// PathRTT returns the analytic no-queueing round-trip time between two
// attached nodes for a frame of the given size in each direction: two
// serializations and two propagation hops each way. The optimal-window
// model builds on this.
func (s *Star) PathRTT(a, b NodeID, size units.DataSize) time.Duration {
	pa, pb := s.ports[a], s.ports[b]
	if pa == nil || pb == nil {
		panic(fmt.Sprintf("netem: PathRTT between unattached nodes %q, %q", a, b))
	}
	fwd := pa.cfg.UpRate.TransmissionTime(size) + pa.cfg.Delay +
		pb.cfg.DownRate.TransmissionTime(size) + pb.cfg.Delay
	rev := pb.cfg.UpRate.TransmissionTime(size) + pb.cfg.Delay +
		pa.cfg.DownRate.TransmissionTime(size) + pa.cfg.Delay
	return fwd + rev
}

// PathOneWay returns the analytic no-queueing one-way latency from a to
// b for a frame of the given size.
func (s *Star) PathOneWay(a, b NodeID, size units.DataSize) time.Duration {
	pa, pb := s.ports[a], s.ports[b]
	if pa == nil || pb == nil {
		panic(fmt.Sprintf("netem: PathOneWay between unattached nodes %q, %q", a, b))
	}
	return pa.cfg.UpRate.TransmissionTime(size) + pa.cfg.Delay +
		pb.cfg.DownRate.TransmissionTime(size) + pb.cfg.Delay
}

// BottleneckRate returns the minimum forwarding rate along the node
// sequence path (uplink of each sender, downlink of each receiver).
func (s *Star) BottleneckRate(path []NodeID) units.DataRate {
	if len(path) < 2 {
		panic("netem: BottleneckRate needs at least two nodes")
	}
	min := units.DataRate(1<<63 - 1)
	for i := 0; i < len(path)-1; i++ {
		src, dst := s.ports[path[i]], s.ports[path[i+1]]
		if src == nil || dst == nil {
			panic(fmt.Sprintf("netem: BottleneckRate over unattached hop %q→%q", path[i], path[i+1]))
		}
		if src.cfg.UpRate < min {
			min = src.cfg.UpRate
		}
		if dst.cfg.DownRate < min {
			min = dst.cfg.DownRate
		}
	}
	return min
}
