package netem

import (
	"fmt"
	"sort"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// StarFabric is a hub-and-spoke topology: every node connects to a
// central switch that forwards frames to the destination's downlink.
// The switch fabric itself is non-blocking; all contention happens on
// access links. This is the paper's evaluation topology.
type StarFabric struct {
	clock *sim.Clock
	ports map[NodeID]*Port
	pool  *FramePool

	// unknownDst counts frames addressed to detached nodes.
	unknownDst uint64
}

// Star is the historical name of the hub-and-spoke fabric.
//
// Deprecated: use StarFabric. The alias remains for pre-Fabric call
// sites (Network.Star) and will not grow new uses.
type Star = StarFabric

var _ Fabric = (*StarFabric)(nil)

// NewStarFabric creates an empty star network on the given clock.
func NewStarFabric(clock *sim.Clock) *StarFabric {
	if clock == nil {
		panic("netem: NewStarFabric with nil clock")
	}
	return &StarFabric{clock: clock, ports: make(map[NodeID]*Port), pool: NewFramePool()}
}

// NewStar is NewStarFabric under its historical name.
func NewStar(clock *sim.Clock) *Star { return NewStarFabric(clock) }

// Clock returns the simulation clock the network runs on.
func (s *StarFabric) Clock() *sim.Clock { return s.clock }

// Attach connects a node to the star. The handler receives every frame
// addressed to id. Attach panics if id is already attached — silently
// replacing a node's handler would invalidate running experiments.
func (s *StarFabric) Attach(id NodeID, cfg AccessConfig, h Handler, rng *sim.RNG) *Port {
	if _, dup := s.ports[id]; dup {
		panic(fmt.Sprintf("netem: node %q attached twice", id))
	}
	if h == nil {
		panic(fmt.Sprintf("netem: node %q attached with nil handler", id))
	}
	p := newPort(id, s.clock, cfg, s, h, rng, s.pool)
	s.ports[id] = p
	return p
}

// route is the switch fabric: a frame arriving from any uplink is
// forwarded onto the destination's downlink with zero switching delay.
func (s *StarFabric) route(f *Frame) {
	dst, ok := s.ports[f.Dst]
	if !ok {
		s.unknownDst++
		s.pool.Put(f)
		return
	}
	dst.down.Send(f)
}

// Deliver makes the fabric the uplinks' ingress handler: every frame an
// uplink completes enters the switching stage.
func (s *StarFabric) Deliver(f *Frame) { s.route(f) }

// DeliverTrain routes a whole uplink train in one call. The frames
// enqueue on their downlinks back to back at the same instant, so a
// train arriving at the switch leaves it as a train — coalescing
// propagates through the fabric rather than dissolving at each hop.
func (s *StarFabric) DeliverTrain(fs []*Frame) {
	for _, f := range fs {
		s.route(f)
	}
}

// Port returns the port of an attached node, or nil.
func (s *StarFabric) Port(id NodeID) *Port { return s.ports[id] }

// Nodes returns the attached node IDs in sorted order (deterministic
// iteration for seeding and reporting).
func (s *StarFabric) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(s.ports))
	for id := range s.ports {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Trunks returns nil: a star has no fabric-internal links.
func (s *StarFabric) Trunks() []*Link { return nil }

// FramePool returns the fabric's frame pool.
func (s *StarFabric) FramePool() *FramePool { return s.pool }

// UnknownDst returns how many frames were addressed to detached nodes.
func (s *StarFabric) UnknownDst() uint64 { return s.unknownDst }

// Unroutable returns 0: every attached pair is one switch apart.
func (s *StarFabric) Unroutable() uint64 { return 0 }

// ResetStats zeroes the drop counter and every access link's stats.
func (s *StarFabric) ResetStats() {
	s.unknownDst = 0
	for _, id := range s.Nodes() {
		p := s.ports[id]
		p.up.ResetStats()
		p.down.ResetStats()
	}
}

// PathRTT returns the analytic no-queueing round-trip time between two
// attached nodes for a frame of the given size in each direction: two
// serializations and two propagation hops each way. The optimal-window
// model builds on this.
func (s *StarFabric) PathRTT(a, b NodeID, size units.DataSize) time.Duration {
	return s.PathOneWay(a, b, size) + s.PathOneWay(b, a, size)
}

// PathOneWay returns the analytic no-queueing one-way latency from a to
// b for a frame of the given size.
func (s *StarFabric) PathOneWay(a, b NodeID, size units.DataSize) time.Duration {
	pa, pb := s.ports[a], s.ports[b]
	if pa == nil || pb == nil {
		panic(fmt.Sprintf("netem: PathOneWay between unattached nodes %q, %q", a, b))
	}
	return pa.cfg.UpRate.TransmissionTime(size) + pa.cfg.Delay +
		pb.cfg.DownRate.TransmissionTime(size) + pb.cfg.Delay
}

// PathTransits returns nil: on a star the hop is the two access links.
func (s *StarFabric) PathTransits(a, b NodeID) []*Link {
	if s.ports[a] == nil || s.ports[b] == nil {
		panic(fmt.Sprintf("netem: PathTransits between unattached nodes %q, %q", a, b))
	}
	return nil
}

// BottleneckRate returns the minimum forwarding rate along the node
// sequence path (uplink of each sender, downlink of each receiver).
func (s *StarFabric) BottleneckRate(path []NodeID) units.DataRate {
	if len(path) < 2 {
		panic("netem: BottleneckRate needs at least two nodes")
	}
	min := units.DataRate(1<<63 - 1)
	for i := 0; i < len(path)-1; i++ {
		src, dst := s.ports[path[i]], s.ports[path[i+1]]
		if src == nil || dst == nil {
			panic(fmt.Sprintf("netem: BottleneckRate over unattached hop %q→%q", path[i], path[i+1]))
		}
		if src.cfg.UpRate < min {
			min = src.cfg.UpRate
		}
		if dst.cfg.DownRate < min {
			min = dst.cfg.DownRate
		}
	}
	return min
}
