package netem

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// This file implements conservative-lookahead parallel execution of a
// GraphFabric: the backbone is partitioned into shards, each shard owns
// its own sim.Clock and runs its event loop on its own goroutine, and
// the only coupling between shards is the propagation delay of the
// trunks cut by the partition. Because a frame serialized on a cut
// trunk at instant s cannot arrive before s + Delay, and every cut
// trunk's delay is at least the global lookahead L, all shards can
// safely advance one window of width L in parallel: nothing a neighbor
// does during the window can affect this shard before the window ends.
//
// Execution is barrier-synchronous. At each barrier every shard clock
// is parked at the same instant W; the coordinator drains boundary
// queues, merge-sorts the eligible handoffs into the canonical order
// (arrival, trunk, seq), schedules them on their destination shards,
// and releases the shards to run to W + L. The merge key is
// shard-count-invariant — trunk identity and per-trunk serialization
// order do not depend on how the graph was cut — which is what makes
// results byte-identical for any shard count, including one.

// ShardPlan assigns every switch of a GraphSpec to a shard and records
// the conservative lookahead bound the assignment induces.
type ShardPlan struct {
	// Shards is the number of shards actually used (≤ the requested
	// count when the graph has fewer zero-delay-connected components).
	Shards int
	// Assign maps every switch to its shard in [0, Shards).
	Assign map[SwitchID]int
	// Lookahead is the minimum propagation delay over cut trunks —
	// the window width. Zero when the plan has a single shard (no cuts).
	Lookahead time.Duration
}

// PartitionGraph partitions a spec's switches into at most the given
// number of shards. Zero-delay trunks are contracted first (a
// zero-delay cut would leave no lookahead), then the resulting
// components are distributed over the shards balanced by switch count,
// largest component first, deterministically. The effective shard count
// is min(shards, number of components).
func PartitionGraph(gs GraphSpec, shards int) (ShardPlan, error) {
	if err := gs.Validate(); err != nil {
		return ShardPlan{}, err
	}
	if shards < 1 {
		return ShardPlan{}, fmt.Errorf("netem: PartitionGraph with %d shards", shards)
	}

	// Union-find over switches, contracting zero-delay trunks.
	parent := make(map[SwitchID]SwitchID, len(gs.Switches))
	for _, s := range gs.Switches {
		parent[s] = s
	}
	var find func(s SwitchID) SwitchID
	find = func(s SwitchID) SwitchID {
		if parent[s] != s {
			parent[s] = find(parent[s])
		}
		return parent[s]
	}
	for _, t := range gs.Trunks {
		if t.Config.Delay == 0 {
			parent[find(t.A)] = find(t.B)
		}
	}

	// Components in deterministic order: size descending, then lowest
	// member switch.
	members := make(map[SwitchID][]SwitchID)
	for _, s := range gs.Switches {
		r := find(s)
		members[r] = append(members[r], s)
	}
	type comp struct {
		min SwitchID
		sws []SwitchID
	}
	comps := make([]comp, 0, len(members))
	for _, sws := range members {
		sort.Slice(sws, func(i, j int) bool { return sws[i] < sws[j] })
		comps = append(comps, comp{min: sws[0], sws: sws})
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i].sws) != len(comps[j].sws) {
			return len(comps[i].sws) > len(comps[j].sws)
		}
		return comps[i].min < comps[j].min
	})

	k := shards
	if k > len(comps) {
		k = len(comps)
	}
	assign := make(map[SwitchID]int, len(gs.Switches))
	load := make([]int, k)
	for _, c := range comps {
		lightest := 0
		for i := 1; i < k; i++ {
			if load[i] < load[lightest] {
				lightest = i
			}
		}
		for _, s := range c.sws {
			assign[s] = lightest
		}
		load[lightest] += len(c.sws)
	}

	look := time.Duration(0)
	for _, t := range gs.Trunks {
		if assign[t.A] != assign[t.B] {
			if look == 0 || t.Config.Delay < look {
				look = t.Config.Delay
			}
		}
	}
	if k > 1 && look == 0 {
		// Cannot happen: zero-delay trunks never cross components.
		return ShardPlan{}, fmt.Errorf("netem: partition cut a zero-delay trunk")
	}
	return ShardPlan{Shards: k, Assign: assign, Lookahead: look}, nil
}

// handoffFrame is one frame's payload-bearing fields, detached from the
// *Frame (which is recycled into the source shard's pool at export) and
// re-materialized from the destination shard's pool at import.
type handoffFrame struct {
	src, dst NodeID
	size     units.DataSize
	payload  any
	priority bool
	circ     uint32
}

// handoff is one boundary delivery event: a frame or a whole surviving
// train that finished serializing on a cut trunk. arrival is the
// instant it would have been delivered locally; trunk and seq complete
// the canonical merge key.
type handoff struct {
	arrival sim.Time
	origin  sim.Time // serialization end on the source shard
	trunk   string   // egress trunk name — shard-count-invariant identity
	seq     uint64   // per-trunk serialization sequence
	dstSw   SwitchID
	frames  []handoffFrame
}

// handoffBefore is the canonical shard-merge comparator: arrival time,
// then trunk name, then per-trunk sequence. The key is a total order
// (no two handoffs share all three fields) and every component is
// independent of the shard count, so any interleaving of per-shard
// queues merges into one canonical schedule. FuzzShardMergeOrder pins
// this.
func handoffBefore(a, b handoff) bool {
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	if a.trunk != b.trunk {
		return a.trunk < b.trunk
	}
	return a.seq < b.seq
}

// ShardLookaheadCheck is a test-only debug hook: when non-nil it is
// invoked for every imported handoff with the destination shard, that
// shard's parked clock, and the handoff's arrival instant. The
// conservative bound requires arrival to be strictly in the future; the
// property test installs a hook that asserts exactly that. It is called
// only from the coordinator (all shard goroutines parked), so a plain
// package variable is race-free as long as tests set it before running.
var ShardLookaheadCheck func(shard int, clockNow, arrival sim.Time)

// boundary is one cut-trunk direction: the egress link lives on the
// source shard (serialization, queueing, drops and loss all happen
// there, on the source clock), and completed serializations append to
// queue, drained by the coordinator at barriers. The queue is touched
// by the source shard's goroutine during windows and by the coordinator
// between windows; the WaitGroup barrier orders the two, so no lock is
// needed.
type boundary struct {
	link      *Link
	from, to  int
	dstSw     SwitchID
	seq       uint64
	queue     []handoff
	exported  uint64
	highWater int
}

// nodeInfo is the sharded fabric's global registry entry for an
// attached node.
type nodeInfo struct {
	shard int
	home  SwitchID
	port  *Port
}

// ShardedFabric runs one GraphFabric partitioned across per-core
// shards. Each shard is a real *GraphFabric (same switch, trunk and
// link machinery as the unsharded engine) carrying globally-computed
// next-hop tables; cut trunks become boundary egress links whose
// deliveries hand off through the coordinator. Nodes attach to the
// shard owning their home switch; the global registry keeps routing,
// path queries and stats identical to the unsharded fabric.
type ShardedFabric struct {
	spec GraphSpec
	plan ShardPlan

	shards []*GraphFabric
	// oracle is a full single-clock fabric built from the same spec. It
	// carries no nodes and no traffic — it exists so global routes come
	// from the exact same Dijkstra (same tie-breaks) the unsharded
	// engine runs, and so Home resolution hashes over the same global
	// switch order.
	oracle *GraphFabric

	trunkDir   map[[2]SwitchID]*Link // directed trunk → live link on its owning shard
	trunkOrder [][2]SwitchID         // global deterministic order (matches unsharded Trunks)
	boundaries []*boundary
	nodes      map[NodeID]nodeInfo

	imported uint64
	scratch  []handoff // per-barrier merge buffer, reused

	// window, when nonzero, overrides plan.Lookahead as the barrier
	// stride. Scenario engines set it to a partition-independent value
	// (GraphSpec.MinPositiveTrunkDelay) so the barrier schedule — and
	// therefore every barrier-timed decision — is identical at every
	// shard count, including one, where the lookahead itself is zero.
	window time.Duration
}

// NewShardedFabric builds the sharded fabric. clocks supplies one clock
// per shard (len(clocks) must equal plan.Shards); each shard's links,
// relays and endpoints schedule exclusively on their own clock. rng
// drives trunk loss processes exactly as in GraphSpec.Build — sharded
// scenarios validate trunk loss away, but the parameter keeps the
// construction signature parallel.
func NewShardedFabric(spec GraphSpec, plan ShardPlan, clocks []*sim.Clock, rng *sim.RNG) *ShardedFabric {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if len(clocks) != plan.Shards {
		panic(fmt.Sprintf("netem: %d clocks for %d shards", len(clocks), plan.Shards))
	}
	sf := &ShardedFabric{
		spec:     spec,
		plan:     plan,
		oracle:   spec.Build(sim.NewClock(), nil),
		trunkDir: make(map[[2]SwitchID]*Link),
		nodes:    make(map[NodeID]nodeInfo),
	}
	sf.oracle.Switches() // force freeze: routes + global order

	cfgOf := make(map[[2]SwitchID]TrunkConfig, 2*len(spec.Trunks))
	for _, t := range spec.Trunks {
		cfgOf[[2]SwitchID{t.A, t.B}] = t.Config
		cfgOf[[2]SwitchID{t.B, t.A}] = t.Config
	}

	// Per-shard fabrics: local switches with global next-hop tables,
	// frozen from birth so nothing recomputes routes over the partial
	// topology. order is the global order so unpinned nodes hash to the
	// same home switch as on the unsharded fabric.
	sf.shards = make([]*GraphFabric, plan.Shards)
	for i := range sf.shards {
		g := &GraphFabric{
			clock:    clocks[i],
			switches: make(map[SwitchID]*gswitch),
			order:    append([]SwitchID(nil), sf.oracle.order...),
			frozen:   true,
			ports:    make(map[NodeID]*Port),
			pinned:   make(map[NodeID]SwitchID),
			homes:    make(map[NodeID]SwitchID),
			pool:     NewFramePool(),
		}
		for node, sw := range spec.Homes {
			g.pinned[node] = sw
		}
		g.remoteHome = func(id NodeID) (SwitchID, bool) {
			ni, ok := sf.nodes[id]
			if !ok {
				return "", false
			}
			return ni.home, true
		}
		shard := i
		g.onAttach = func(id NodeID, home SwitchID, p *Port) {
			sf.nodes[id] = nodeInfo{shard: shard, home: home, port: p}
		}
		sf.shards[i] = g
	}
	for sw, shard := range plan.Assign {
		g := sf.shards[shard]
		g.switches[sw] = &gswitch{
			id:   sw,
			out:  make(map[SwitchID]*Link),
			next: make(map[SwitchID]SwitchID, len(sf.oracle.switches[sw].next)),
		}
		for dst, nh := range sf.oracle.switches[sw].next {
			g.switches[sw].next[dst] = nh
		}
	}

	// Trunks in the global deterministic order (source switch sorted,
	// then destination sorted) — the same order the unsharded fabric's
	// freeze produces, so Trunks() and every stats table line up.
	for _, a := range sf.oracle.order {
		for _, b := range sf.oracle.neighbors(sf.oracle.switches[a]) {
			from := plan.Assign[a]
			g := sf.shards[from]
			sa := g.switches[a]
			cfg := cfgOf[[2]SwitchID{a, b}]
			lc := LinkConfig{Rate: cfg.Rate, Delay: cfg.Delay, QueueCap: cfg.QueueCap,
				LossProb: cfg.LossProb, RNG: rng, TrainSize: cfg.TrainSize}
			var lnk *Link
			if to := plan.Assign[b]; to == from {
				lnk = NewLink(trunkName(a, b), g.clock, lc, &switchIngress{g: g, sw: g.switches[b]})
			} else {
				lnk = NewLink(trunkName(a, b), g.clock, lc, deadEnd{name: trunkName(a, b)})
				bd := &boundary{link: lnk, from: from, to: to, dstSw: b}
				pool := g.pool
				clk := g.clock
				lnk.setExport(func(fs []*Frame, arrival sim.Time) {
					hf := make([]handoffFrame, len(fs))
					for i, f := range fs {
						hf[i] = handoffFrame{src: f.Src, dst: f.Dst, size: f.Size,
							payload: f.Payload, priority: f.Priority, circ: f.Circ}
						f.Payload = nil // payload migrates; the frame dies here
						pool.Put(f)
					}
					bd.queue = append(bd.queue, handoff{
						arrival: arrival, origin: clk.Now(),
						trunk: bd.link.name, seq: bd.seq,
						dstSw: bd.dstSw, frames: hf,
					})
					bd.seq++
					bd.exported += uint64(len(fs))
					if len(bd.queue) > bd.highWater {
						bd.highWater = len(bd.queue)
					}
				})
				sf.boundaries = append(sf.boundaries, bd)
			}
			lnk.UsePool(g.pool, false)
			sa.out[b] = lnk
			g.trunks = append(g.trunks, lnk)
			sf.trunkDir[[2]SwitchID{a, b}] = lnk
			sf.trunkOrder = append(sf.trunkOrder, [2]SwitchID{a, b})
		}
	}
	return sf
}

// deadEnd is the destination handler of a boundary egress link. The
// export path intercepts every surviving frame at serialization end, so
// local delivery on such a link is a bug.
type deadEnd struct{ name string }

func (d deadEnd) Deliver(*Frame) {
	panic(fmt.Sprintf("netem: boundary link %q delivered locally", d.name))
}

// Plan returns the shard plan the fabric was built from.
func (sf *ShardedFabric) Plan() ShardPlan { return sf.plan }

// Lookahead returns the conservative window width.
func (sf *ShardedFabric) Lookahead() time.Duration { return sf.plan.Lookahead }

// SetWindow overrides the barrier stride. The stride must be positive
// and must not exceed the plan's lookahead (when the plan has cuts) —
// a wider window would let a neighbor's frame arrive inside it,
// violating the conservative bound. Single-shard plans accept any
// positive stride: with no cuts there is nothing to violate, and the
// stride only pins where barriers fall.
func (sf *ShardedFabric) SetWindow(d time.Duration) {
	if d <= 0 {
		panic(fmt.Sprintf("netem: SetWindow(%v)", d))
	}
	if l := sf.plan.Lookahead; l > 0 && d > l {
		panic(fmt.Sprintf("netem: window %v exceeds lookahead %v", d, l))
	}
	sf.window = d
}

// NumShards returns the effective shard count.
func (sf *ShardedFabric) NumShards() int { return len(sf.shards) }

// Shard returns shard i's fabric. Relays and endpoints attach through
// it; everything it schedules lands on shard i's clock.
func (sf *ShardedFabric) Shard(i int) *GraphFabric { return sf.shards[i] }

// ShardOfSwitch returns the shard owning a switch.
func (sf *ShardedFabric) ShardOfSwitch(sw SwitchID) int { return sf.plan.Assign[sw] }

// HomeOf returns the switch a node homes (or would home) to, resolved
// exactly as the unsharded fabric resolves it.
func (sf *ShardedFabric) HomeOf(id NodeID) SwitchID { return sf.oracle.Home(id) }

// ShardOf returns the shard a node attaches (or would attach) to.
func (sf *ShardedFabric) ShardOf(id NodeID) int { return sf.plan.Assign[sf.HomeOf(id)] }

// Trunks returns every directed trunk link in the same global order the
// unsharded fabric reports, so per-trunk stats tables are byte-
// compatible.
func (sf *ShardedFabric) Trunks() []*Link {
	out := make([]*Link, len(sf.trunkOrder))
	for i, key := range sf.trunkOrder {
		out[i] = sf.trunkDir[key]
	}
	return out
}

// Trunk returns the directed trunk link a → b, or nil.
func (sf *ShardedFabric) Trunk(a, b SwitchID) *Link { return sf.trunkDir[[2]SwitchID{a, b}] }

// UnknownDst sums the unknown-destination drops across shards.
func (sf *ShardedFabric) UnknownDst() uint64 {
	var n uint64
	for _, g := range sf.shards {
		n += g.unknownDst
	}
	return n
}

// Unroutable sums the no-route drops across shards.
func (sf *ShardedFabric) Unroutable() uint64 {
	var n uint64
	for _, g := range sf.shards {
		n += g.unroutable
	}
	return n
}

// Exported returns the total frames handed off across shard
// boundaries; Imported the total re-materialized on their destination
// shards. After a run drains, the two are equal and every boundary
// queue is empty — the leak-balance tests assert this.
func (sf *ShardedFabric) Exported() uint64 {
	var n uint64
	for _, b := range sf.boundaries {
		n += b.exported
	}
	return n
}

// Imported returns the total frames re-materialized from boundary
// handoffs.
func (sf *ShardedFabric) Imported() uint64 { return sf.imported }

// QueueHighWater returns the deepest any boundary queue ever got, in
// handoff records. Conservative windows bound it naturally: a queue
// holds at most the frames one trunk serializes in about two windows.
func (sf *ShardedFabric) QueueHighWater() int {
	max := 0
	for _, b := range sf.boundaries {
		if b.highWater > max {
			max = b.highWater
		}
	}
	return max
}

// Idle reports whether nothing remains to run: every shard's event
// queue is empty and no handoff is pending. Scenario drivers use it to
// stop at a barrier once all work has drained.
func (sf *ShardedFabric) Idle() bool {
	for _, b := range sf.boundaries {
		if len(b.queue) > 0 {
			return false
		}
	}
	for _, g := range sf.shards {
		if _, ok := g.clock.Next(); ok {
			return false
		}
	}
	return true
}

// RunWindows advances every shard in barrier-synchronous conservative
// windows of the plan's lookahead until the horizon. barrier, when
// non-nil, runs at every window boundary — including t = 0 before the
// first window and the horizon after the last — with all shard clocks
// parked at the barrier instant; it is the only place control-plane
// work (circuit builds, teardowns, outcome collection) may touch more
// than one shard. Returning false stops the run at that barrier.
// RunWindows returns the instant it stopped at.
func (sf *ShardedFabric) RunWindows(horizon sim.Time, barrier func(now sim.Time) bool) sim.Time {
	w := sim.Time(0)
	for {
		if barrier != nil && !barrier(w) {
			return w
		}
		if w >= horizon {
			return w
		}
		end := horizon
		stride := sf.window
		if stride == 0 {
			stride = sf.plan.Lookahead
		}
		if stride > 0 {
			if e := w.Add(stride); e.Before(end) {
				end = e
			}
		}
		sf.importUpTo(end)
		sf.runWindow(end)
		w = end
	}
}

// importUpTo drains every boundary's handoffs with arrival ≤ end,
// merge-sorts them into the canonical order, and schedules their
// deliveries on the destination shards. Delivery stats are credited to
// the egress link here, at the barrier, while its owning shard is
// parked — crediting them inside the destination shard's window would
// race with the source shard serializing more frames.
func (sf *ShardedFabric) importUpTo(end sim.Time) {
	eligible := sf.scratch[:0]
	for _, b := range sf.boundaries {
		n := 0
		for n < len(b.queue) && !b.queue[n].arrival.After(end) {
			n++
		}
		if n == 0 {
			continue
		}
		for _, h := range b.queue[:n] {
			cells := uint64(len(h.frames))
			var bytes units.DataSize
			for _, hf := range h.frames {
				bytes += hf.size
			}
			b.link.stats.CellsDelivered += cells
			b.link.stats.TrainsDelivered++
			b.link.stats.BytesOut += bytes
			eligible = append(eligible, h)
		}
		rest := copy(b.queue, b.queue[n:])
		for i := rest; i < len(b.queue); i++ {
			b.queue[i] = handoff{}
		}
		b.queue = b.queue[:rest]
	}
	sort.Slice(eligible, func(i, j int) bool { return handoffBefore(eligible[i], eligible[j]) })
	for _, h := range eligible {
		dst := sf.plan.Assign[h.dstSw]
		g := sf.shards[dst]
		if ShardLookaheadCheck != nil {
			ShardLookaheadCheck(dst, g.clock.Now(), h.arrival)
		}
		sf.imported += uint64(len(h.frames))
		h := h
		sw := g.switches[h.dstSw]
		g.clock.AtOrigin(h.arrival, h.origin, func() {
			for _, hf := range h.frames {
				f := g.pool.Get()
				f.Src, f.Dst, f.Size = hf.src, hf.dst, hf.size
				f.Payload, f.Priority, f.Circ = hf.payload, hf.priority, hf.circ
				g.routeFrom(sw, f)
			}
		})
	}
	sf.scratch = eligible[:0]
}

// runWindow advances every shard to end, one goroutine per shard. With
// one shard it runs inline — the single-shard engine pays no
// synchronization cost.
func (sf *ShardedFabric) runWindow(end sim.Time) {
	if len(sf.shards) == 1 {
		sf.shards[0].clock.RunUntil(end)
		return
	}
	var wg sync.WaitGroup
	for _, g := range sf.shards {
		wg.Add(1)
		go func(g *GraphFabric) {
			defer wg.Done()
			g.clock.RunUntil(end)
		}(g)
	}
	wg.Wait()
}

// PathTransits returns the directed trunk links a frame from a to b
// crosses, resolved over the global routes — the links returned live on
// their owning shards. Panics on unattached nodes or a disconnected
// backbone, like the unsharded fabric.
func (sf *ShardedFabric) PathTransits(a, b NodeID) []*Link {
	na, aok := sf.nodes[a]
	nb, bok := sf.nodes[b]
	if !aok || !bok {
		panic(fmt.Sprintf("netem: PathTransits between unattached nodes %q, %q", a, b))
	}
	sws := sf.oracle.route(na.home, nb.home)
	if sws == nil {
		panic(fmt.Sprintf("netem: no route between %q (home %q) and %q (home %q)", a, na.home, b, nb.home))
	}
	links := make([]*Link, 0, len(sws)-1)
	for i := 0; i+1 < len(sws); i++ {
		links = append(links, sf.trunkDir[[2]SwitchID{sws[i], sws[i+1]}])
	}
	return links
}

// PathOneWay returns the analytic no-queueing one-way latency from a to
// b, exactly as the unsharded fabric computes it.
func (sf *ShardedFabric) PathOneWay(a, b NodeID, size units.DataSize) time.Duration {
	na, aok := sf.nodes[a]
	nb, bok := sf.nodes[b]
	if !aok || !bok {
		panic(fmt.Sprintf("netem: PathOneWay between unattached nodes %q, %q", a, b))
	}
	total := na.port.cfg.UpRate.TransmissionTime(size) + na.port.cfg.Delay +
		nb.port.cfg.DownRate.TransmissionTime(size) + nb.port.cfg.Delay
	for _, l := range sf.PathTransits(a, b) {
		total += l.Config().Rate.TransmissionTime(size) + l.Config().Delay
	}
	return total
}

// PathRTT returns the analytic round-trip time between two attached
// nodes.
func (sf *ShardedFabric) PathRTT(a, b NodeID, size units.DataSize) time.Duration {
	return sf.PathOneWay(a, b, size) + sf.PathOneWay(b, a, size)
}

// BottleneckRate returns the minimum forwarding rate along the node
// sequence, mirroring GraphFabric.BottleneckRate over the global
// topology.
func (sf *ShardedFabric) BottleneckRate(path []NodeID) units.DataRate {
	if len(path) < 2 {
		panic("netem: BottleneckRate needs at least two nodes")
	}
	min := units.DataRate(1<<63 - 1)
	for i := 0; i < len(path)-1; i++ {
		na, aok := sf.nodes[path[i]]
		nb, bok := sf.nodes[path[i+1]]
		if !aok || !bok {
			panic(fmt.Sprintf("netem: BottleneckRate over unattached hop %q→%q", path[i], path[i+1]))
		}
		if na.port.cfg.UpRate < min {
			min = na.port.cfg.UpRate
		}
		if nb.port.cfg.DownRate < min {
			min = nb.port.cfg.DownRate
		}
		for _, l := range sf.PathTransits(path[i], path[i+1]) {
			if r := l.Config().Rate; r < min {
				min = r
			}
		}
	}
	return min
}

// Port returns an attached node's port regardless of shard, or nil.
func (sf *ShardedFabric) Port(id NodeID) *Port {
	ni, ok := sf.nodes[id]
	if !ok {
		return nil
	}
	return ni.port
}
