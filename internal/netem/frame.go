// Package netem emulates the network layer the overlay runs on:
// point-to-point links with finite bandwidth, propagation delay and
// drop-tail queues, wired into a star topology through a switch.
//
// This replaces the ns-3 substrate used by the paper's nstor framework.
// The fidelity target is network-level behaviour (the only thing the
// paper's results depend on): serialization delay, queueing delay,
// propagation delay, and tail drops. There is no layer-2/3 header
// modelling — the overlay's fixed-size cells are the unit of transfer
// and their wire size already accounts for framing overhead.
package netem

import (
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// NodeID names an attached node. IDs are plain strings so traces and
// test failures read naturally ("relay-2", "client-17").
type NodeID string

// Frame is one unit of data in flight on a link. Size is the wire size
// used for serialization-time and queue-occupancy accounting; Payload is
// opaque to the network layer (the overlay puts cells here).
//
// Ownership: frames sent through a Fabric belong to the network layer.
// The fabric draws them from its FramePool at Port.Send and recycles
// them as soon as they die — on tail drop, on random loss, or when the
// destination handler's Deliver returns. A Handler must therefore not
// retain a *Frame (or resend it) past the Deliver call; it may retain
// the Payload, which is cleared from the frame on recycle.
type Frame struct {
	Src, Dst NodeID
	Size     units.DataSize
	Payload  any
	// Priority frames (transport control segments: ACK, FEEDBACK,
	// PROBE) are serialized ahead of waiting data frames. Without this,
	// feedback from a saturated relay queues behind the very cells it
	// reports on, and every delay-based estimator upstream reads the
	// reverse-path queue as forward-path congestion.
	Priority bool
	// Circ tags data frames with the overlay circuit they belong to
	// (0 = untagged). The network layer never interprets it beyond
	// handing it to an installed SchedQueue, which uses it to service
	// circuits instead of a single FIFO.
	Circ uint32

	enqueuedAt sim.Time // set by Link for queue-delay accounting
}

// FramePool recycles Frame objects so the per-frame hot path of a fabric
// allocates nothing in steady state. It is a plain free list: each
// simulation is single-threaded on its own clock, so no locking is
// needed, and reuse order is deterministic.
//
// The free list lives in an indirected backing store so a pool can
// Adopt another pool's store: a trial arena owns one long-lived store
// and every per-trial fabric redirects its own pool there, letting the
// frame working set survive fabric teardown. The store remembers every
// frame it ever allocated, so Reset can reclaim frames stranded in
// discarded links (in flight when a trial stopped) along with the free
// ones.
//
// A nil *FramePool is valid and degrades to plain allocation (Get) and
// dropping on the floor (Put) — standalone Links built by tests keep the
// old semantics without wiring a pool.
type FramePool struct {
	s *frameStore
}

type frameStore struct {
	free    []*Frame
	all     []*Frame
	reclaim func(payload any)
}

// NewFramePool returns an empty pool.
func NewFramePool() *FramePool { return &FramePool{s: &frameStore{}} }

// Adopt redirects this pool to src's backing store: subsequent Get/Put
// calls — including through Links that captured this *FramePool earlier
// — draw from and recycle into src's free list. Call it before traffic
// flows; frames already drawn from the old store are simply never
// reused.
func (p *FramePool) Adopt(src *FramePool) {
	if p != nil && src != nil {
		p.s = src.s
	}
}

// OnReclaim installs a hook invoked with a dying frame's non-nil
// Payload just before the pool drops the reference. The overlay uses it
// to recycle the boxed segment wrappers it attaches as payloads: the
// network layer is the one place that reliably sees every frame death
// (delivery, tail drop, random loss), so it is the one place the
// wrapper's life can end exactly once.
func (p *FramePool) OnReclaim(fn func(payload any)) {
	if p != nil {
		p.s.reclaim = fn
	}
}

// Reset reclaims every frame the pool's store ever allocated — free or
// not — rebuilding the free list in allocation order. It exists for
// trial boundaries: frames still sitting in a dead trial's links come
// back without waiting for delivery. Payload references are dropped
// WITHOUT invoking the OnReclaim hook; a caller resetting the frame
// pool is expected to reset the payload pools wholesale too. Calling it
// while any live link still holds frames aliases memory — only reset
// between trials, after the owning fabric is discarded.
func (p *FramePool) Reset() {
	if p == nil {
		return
	}
	s := p.s
	s.free = s.free[:0]
	for _, f := range s.all {
		f.Payload = nil
		s.free = append(s.free, f)
	}
}

// AllLen returns how many frames the pool's store ever allocated.
// Together with FreeLen it lets leak tests assert pool balance: after a
// trial fully drains (or after Reset), every allocated frame must be
// back on the free list.
func (p *FramePool) AllLen() int {
	if p == nil {
		return 0
	}
	return len(p.s.all)
}

// FreeLen returns how many frames are currently on the free list.
func (p *FramePool) FreeLen() int {
	if p == nil {
		return 0
	}
	return len(p.s.free)
}

// Get returns a frame for the caller to fill. Every exported field must
// be set by the caller; recycled frames carry no payload.
func (p *FramePool) Get() *Frame {
	if p == nil {
		return &Frame{}
	}
	s := p.s
	if n := len(s.free); n > 0 {
		f := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return f
	}
	f := &Frame{}
	s.all = append(s.all, f)
	return f
}

// Put recycles a dead frame. The payload reference is dropped so the
// pool does not pin overlay objects; everything else is overwritten by
// the next Get's caller.
func (p *FramePool) Put(f *Frame) {
	if p == nil || f == nil {
		return
	}
	s := p.s
	if s.reclaim != nil && f.Payload != nil {
		s.reclaim(f.Payload)
	}
	f.Payload = nil
	s.free = append(s.free, f)
}

// SchedQueue is a pluggable scheduler for a link's data frames. When
// installed via Link.SetScheduler it replaces the built-in FIFO ring
// for non-priority frames: Send pushes accepted frames, the serializer
// pops the scheduler's pick. Priority (control) frames bypass it and
// keep strict precedence.
//
// Push may refuse a frame (a bandwidth policer, for example); the link
// then counts a SchedDrop and recycles the frame exactly like a tail
// drop. Pop must return frames until Len reaches zero — admission
// decisions belong in Push, so the serializer stays work-conserving.
// Implementations must be deterministic and, to preserve the pooled
// hot path, allocation-free in steady state (see internal/sched).
type SchedQueue interface {
	Push(f *Frame) bool
	Pop() *Frame
	Len() int
}

// CircPeeker is an optional SchedQueue extension: PeekCirc reports the
// circuit of the frame the next Pop would return, without popping it.
// A trained link consults it during train formation so a train never
// spans a scheduler preemption point — the EWMA scheduler implements
// it (its next pick is the cheapest circuit, known from the heap root),
// while the FIFO scheduler deliberately does not (FIFO order has no
// preemption, so trains coalesce across circuits there).
type CircPeeker interface {
	PeekCirc() (circ uint32, ok bool)
}

// Handler consumes frames delivered by the network layer.
type Handler interface {
	// Deliver hands a frame that has fully arrived to the receiver. The
	// frame is only valid for the duration of the call: the network
	// recycles it when Deliver returns (see Frame ownership).
	Deliver(f *Frame)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(f *Frame)

// Deliver implements Handler.
func (h HandlerFunc) Deliver(f *Frame) { h(f) }

// TrainHandler is an optional Handler extension for batch delivery: a
// trained link hands a whole train's surviving frames in one call
// instead of one Deliver each, letting the receiver amortize per-batch
// work (relays hoist the circuit-table lookup across a train's
// same-circuit run). Frame ownership is unchanged — every frame in the
// batch is only valid for the duration of the call. Handlers that do
// not implement it receive per-frame Deliver calls in train order, so
// implementing TrainHandler must be behaviorally equivalent to that
// loop.
type TrainHandler interface {
	Handler
	DeliverTrain(fs []*Frame)
}

// frameRing is a growable FIFO ring buffer of frames. Capacity is a
// power of two so the wrap is a mask; growth is amortized, so a link
// that has reached its working set never allocates per frame again.
type frameRing struct {
	buf  []*Frame
	head int
	n    int
}

func (r *frameRing) len() int { return r.n }

func (r *frameRing) push(f *Frame) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = f
	r.n++
}

func (r *frameRing) pop() *Frame {
	if r.n == 0 {
		return nil
	}
	f := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return f
}

func (r *frameRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]*Frame, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}
