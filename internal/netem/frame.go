// Package netem emulates the network layer the overlay runs on:
// point-to-point links with finite bandwidth, propagation delay and
// drop-tail queues, wired into a star topology through a switch.
//
// This replaces the ns-3 substrate used by the paper's nstor framework.
// The fidelity target is network-level behaviour (the only thing the
// paper's results depend on): serialization delay, queueing delay,
// propagation delay, and tail drops. There is no layer-2/3 header
// modelling — the overlay's fixed-size cells are the unit of transfer
// and their wire size already accounts for framing overhead.
package netem

import (
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// NodeID names an attached node. IDs are plain strings so traces and
// test failures read naturally ("relay-2", "client-17").
type NodeID string

// Frame is one unit of data in flight on a link. Size is the wire size
// used for serialization-time and queue-occupancy accounting; Payload is
// opaque to the network layer (the overlay puts cells here).
type Frame struct {
	Src, Dst NodeID
	Size     units.DataSize
	Payload  any
	// Priority frames (transport control segments: ACK, FEEDBACK,
	// PROBE) are serialized ahead of waiting data frames. Without this,
	// feedback from a saturated relay queues behind the very cells it
	// reports on, and every delay-based estimator upstream reads the
	// reverse-path queue as forward-path congestion.
	Priority bool

	enqueuedAt sim.Time // set by Link for queue-delay accounting
}

// Handler consumes frames delivered by the network layer.
type Handler interface {
	// Deliver hands a frame that has fully arrived to the receiver.
	Deliver(f *Frame)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(f *Frame)

// Deliver implements Handler.
func (h HandlerFunc) Deliver(f *Frame) { h(f) }
