package netem

import (
	"testing"
	"testing/quick"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// sink collects delivered frames with their arrival times.
type sink struct {
	clock  *sim.Clock
	frames []*Frame
	times  []sim.Time
}

func (s *sink) Deliver(f *Frame) {
	s.frames = append(s.frames, f)
	s.times = append(s.times, s.clock.Now())
}

func newTestLink(t *testing.T, cfg LinkConfig) (*sim.Clock, *Link, *sink) {
	t.Helper()
	clock := sim.NewClock()
	dst := &sink{clock: clock}
	return clock, NewLink("test", clock, cfg, dst), dst
}

func TestLinkDeliveryLatency(t *testing.T) {
	// 512B at 8 Mbit/s = 512µs serialization + 10ms propagation.
	clock, link, dst := newTestLink(t, LinkConfig{Rate: units.Mbps(8), Delay: 10 * time.Millisecond})
	link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	clock.Run()
	if len(dst.frames) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(dst.frames))
	}
	want := sim.Time(512*time.Microsecond + 10*time.Millisecond)
	if dst.times[0] != want {
		t.Errorf("delivered at %v, want %v", dst.times[0], want)
	}
}

func TestLinkSerializesSequentially(t *testing.T) {
	// Two back-to-back frames: second arrives one serialization time
	// after the first (pipelined through propagation).
	clock, link, dst := newTestLink(t, LinkConfig{Rate: units.Mbps(8), Delay: 10 * time.Millisecond})
	link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	clock.Run()
	if len(dst.times) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(dst.times))
	}
	gap := dst.times[1].Sub(dst.times[0])
	if gap != 512*time.Microsecond {
		t.Errorf("inter-arrival gap %v, want 512µs (one serialization time)", gap)
	}
}

func TestLinkPreservesFIFOOrder(t *testing.T) {
	clock, link, dst := newTestLink(t, LinkConfig{Rate: units.Mbps(100), Delay: time.Millisecond})
	for i := 0; i < 20; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 512, Payload: i})
	}
	clock.Run()
	if len(dst.frames) != 20 {
		t.Fatalf("delivered %d, want 20", len(dst.frames))
	}
	for i, f := range dst.frames {
		if f.Payload.(int) != i {
			t.Fatalf("frame %d carries payload %v: order violated", i, f.Payload)
		}
	}
}

func TestLinkTailDrop(t *testing.T) {
	// Queue capacity of 2 cells: with one in serialization, the 4th
	// concurrent send must be dropped.
	clock, link, dst := newTestLink(t, LinkConfig{
		Rate: units.Mbps(1), Delay: time.Millisecond, QueueCap: 1024,
	})
	var drops []DropReason
	link.OnDrop = func(f *Frame, r DropReason) { drops = append(drops, r) }

	accepted := 0
	for i := 0; i < 4; i++ {
		if link.Send(&Frame{Src: "a", Dst: "b", Size: 512}) {
			accepted++
		}
	}
	// First send goes straight into serialization (queue momentarily
	// empty again), two fill the queue, the fourth overflows.
	if accepted != 3 {
		t.Errorf("accepted %d frames, want 3", accepted)
	}
	clock.Run()
	if len(dst.frames) != 3 {
		t.Errorf("delivered %d frames, want 3", len(dst.frames))
	}
	st := link.Stats()
	if st.TailDrops != 1 {
		t.Errorf("TailDrops = %d, want 1", st.TailDrops)
	}
	if len(drops) != 1 || drops[0] != DropTail {
		t.Errorf("OnDrop saw %v, want one tail-drop", drops)
	}
}

func TestLinkRandomLoss(t *testing.T) {
	clock := sim.NewClock()
	dst := &sink{clock: clock}
	rng := sim.NewRNG(42, "loss")
	link := NewLink("lossy", clock, LinkConfig{
		Rate: units.Mbps(100), Delay: time.Millisecond, LossProb: 0.3, RNG: rng,
	}, dst)
	const n = 2000
	for i := 0; i < n; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	}
	clock.Run()
	st := link.Stats()
	if st.Delivered+st.RandomLoss != n {
		t.Fatalf("delivered %d + lost %d != %d", st.Delivered, st.RandomLoss, n)
	}
	lossRate := float64(st.RandomLoss) / n
	if lossRate < 0.25 || lossRate > 0.35 {
		t.Errorf("observed loss rate %.3f, want ≈0.3", lossRate)
	}
}

func TestLinkStatsAccounting(t *testing.T) {
	clock, link, _ := newTestLink(t, LinkConfig{Rate: units.Mbps(8), Delay: 0})
	for i := 0; i < 5; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	}
	clock.Run()
	st := link.Stats()
	if st.Enqueued != 5 || st.Delivered != 5 {
		t.Errorf("Enqueued=%d Delivered=%d, want 5/5", st.Enqueued, st.Delivered)
	}
	if st.BytesOut != 5*512 {
		t.Errorf("BytesOut = %v, want 2560", st.BytesOut)
	}
	if st.MaxQueueLen != 4 {
		// 5 concurrent sends: head enters serialization, 4 queue.
		t.Errorf("MaxQueueLen = %d, want 4", st.MaxQueueLen)
	}
	// Queue delay: frame i waits i serialization times ≈ i·512µs.
	wantDelay := time.Duration(1+2+3+4) * 512 * time.Microsecond
	if st.QueueDelay != wantDelay {
		t.Errorf("QueueDelay = %v, want %v", st.QueueDelay, wantDelay)
	}
}

func TestLinkThroughputMatchesRate(t *testing.T) {
	// Saturate a 4 Mbit/s link for 1000 cells and check goodput.
	clock, link, dst := newTestLink(t, LinkConfig{Rate: units.Mbps(4), Delay: 5 * time.Millisecond})
	const n = 1000
	for i := 0; i < n; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	}
	end := clock.Run()
	if len(dst.frames) != n {
		t.Fatalf("delivered %d frames", len(dst.frames))
	}
	elapsed := end.Duration() - 5*time.Millisecond // subtract propagation
	rate := units.RateFromTransfer(n*512, elapsed)
	if r := rate.Mbit(); r < 3.99 || r > 4.01 {
		t.Errorf("achieved %.3f Mbit/s on a 4 Mbit/s link", r)
	}
}

func TestLinkValidation(t *testing.T) {
	clock := sim.NewClock()
	dst := &sink{clock: clock}
	cases := []struct {
		name string
		cfg  LinkConfig
		dst  Handler
	}{
		{"zero rate", LinkConfig{Rate: 0}, dst},
		{"negative delay", LinkConfig{Rate: 1, Delay: -time.Second}, dst},
		{"bad loss prob", LinkConfig{Rate: 1, LossProb: 1.5}, dst},
		{"loss without rng", LinkConfig{Rate: 1, LossProb: 0.1}, dst},
		{"nil dst", LinkConfig{Rate: 1}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLink(%s) did not panic", tc.name)
				}
			}()
			NewLink("bad", clock, tc.cfg, tc.dst)
		})
	}
}

func TestLinkSendZeroSizePanics(t *testing.T) {
	_, link, _ := newTestLink(t, LinkConfig{Rate: units.Mbps(1)})
	defer func() {
		if recover() == nil {
			t.Error("Send with zero size did not panic")
		}
	}()
	link.Send(&Frame{Src: "a", Dst: "b", Size: 0})
}

// Property: with an unbounded queue and no loss, every frame is
// delivered exactly once, in order, and total delivery time is at least
// the analytic lower bound (sum of serializations + propagation).
func TestPropertyLinkConservation(t *testing.T) {
	f := func(sizes []uint8, mbps uint8, delayMs uint8) bool {
		if mbps == 0 || len(sizes) == 0 {
			return true
		}
		if len(sizes) > 100 {
			sizes = sizes[:100]
		}
		clock := sim.NewClock()
		dst := &sink{clock: clock}
		rate := units.Mbps(float64(mbps))
		delay := time.Duration(delayMs) * time.Millisecond
		link := NewLink("prop", clock, LinkConfig{Rate: rate, Delay: delay}, dst)
		var total units.DataSize
		for i, s := range sizes {
			size := units.DataSize(s) + 1
			total += size
			if !link.Send(&Frame{Src: "a", Dst: "b", Size: size, Payload: i}) {
				return false
			}
		}
		end := clock.Run()
		if len(dst.frames) != len(sizes) {
			return false
		}
		for i, fr := range dst.frames {
			if fr.Payload.(int) != i {
				return false
			}
		}
		// TransmissionTime rounds up to the nanosecond; computing it
		// once over the total can land 1 ns above the sum of the
		// per-frame roundings (float ceil), so allow that slack.
		lower := rate.TransmissionTime(total) + delay - time.Nanosecond
		return end.Duration() >= lower
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
