package netem

import (
	"testing"
	"testing/quick"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// sink collects delivered frames with their arrival times. It snapshots
// each frame: fabric-routed frames are recycled the moment Deliver
// returns, so retaining the pointer would read reused storage.
type sink struct {
	clock  *sim.Clock
	frames []*Frame
	times  []sim.Time
}

func (s *sink) Deliver(f *Frame) {
	cp := *f
	s.frames = append(s.frames, &cp)
	s.times = append(s.times, s.clock.Now())
}

func newTestLink(t *testing.T, cfg LinkConfig) (*sim.Clock, *Link, *sink) {
	t.Helper()
	clock := sim.NewClock()
	dst := &sink{clock: clock}
	return clock, NewLink("test", clock, cfg, dst), dst
}

func TestLinkDeliveryLatency(t *testing.T) {
	// 512B at 8 Mbit/s = 512µs serialization + 10ms propagation.
	clock, link, dst := newTestLink(t, LinkConfig{Rate: units.Mbps(8), Delay: 10 * time.Millisecond})
	link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	clock.Run()
	if len(dst.frames) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(dst.frames))
	}
	want := sim.Time(512*time.Microsecond + 10*time.Millisecond)
	if dst.times[0] != want {
		t.Errorf("delivered at %v, want %v", dst.times[0], want)
	}
}

func TestLinkSerializesSequentially(t *testing.T) {
	// Two back-to-back frames: second arrives one serialization time
	// after the first (pipelined through propagation).
	clock, link, dst := newTestLink(t, LinkConfig{Rate: units.Mbps(8), Delay: 10 * time.Millisecond})
	link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	clock.Run()
	if len(dst.times) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(dst.times))
	}
	gap := dst.times[1].Sub(dst.times[0])
	if gap != 512*time.Microsecond {
		t.Errorf("inter-arrival gap %v, want 512µs (one serialization time)", gap)
	}
}

func TestLinkPreservesFIFOOrder(t *testing.T) {
	clock, link, dst := newTestLink(t, LinkConfig{Rate: units.Mbps(100), Delay: time.Millisecond})
	for i := 0; i < 20; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 512, Payload: i})
	}
	clock.Run()
	if len(dst.frames) != 20 {
		t.Fatalf("delivered %d, want 20", len(dst.frames))
	}
	for i, f := range dst.frames {
		if f.Payload.(int) != i {
			t.Fatalf("frame %d carries payload %v: order violated", i, f.Payload)
		}
	}
}

func TestLinkTailDrop(t *testing.T) {
	// Queue capacity of 2 cells: with one in serialization, the 4th
	// concurrent send must be dropped.
	clock, link, dst := newTestLink(t, LinkConfig{
		Rate: units.Mbps(1), Delay: time.Millisecond, QueueCap: 1024,
	})
	var drops []DropReason
	link.OnDrop = func(f *Frame, r DropReason) { drops = append(drops, r) }

	accepted := 0
	for i := 0; i < 4; i++ {
		if link.Send(&Frame{Src: "a", Dst: "b", Size: 512}) {
			accepted++
		}
	}
	// First send goes straight into serialization (queue momentarily
	// empty again), two fill the queue, the fourth overflows.
	if accepted != 3 {
		t.Errorf("accepted %d frames, want 3", accepted)
	}
	clock.Run()
	if len(dst.frames) != 3 {
		t.Errorf("delivered %d frames, want 3", len(dst.frames))
	}
	st := link.Stats()
	if st.TailDrops != 1 {
		t.Errorf("TailDrops = %d, want 1", st.TailDrops)
	}
	if len(drops) != 1 || drops[0] != DropTail {
		t.Errorf("OnDrop saw %v, want one tail-drop", drops)
	}
}

func TestLinkRandomLoss(t *testing.T) {
	clock := sim.NewClock()
	dst := &sink{clock: clock}
	rng := sim.NewRNG(42, "loss")
	link := NewLink("lossy", clock, LinkConfig{
		Rate: units.Mbps(100), Delay: time.Millisecond, LossProb: 0.3, RNG: rng,
	}, dst)
	const n = 2000
	for i := 0; i < n; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	}
	clock.Run()
	st := link.Stats()
	if st.CellsDelivered+st.RandomLoss != n {
		t.Fatalf("delivered %d + lost %d != %d", st.CellsDelivered, st.RandomLoss, n)
	}
	lossRate := float64(st.RandomLoss) / n
	if lossRate < 0.25 || lossRate > 0.35 {
		t.Errorf("observed loss rate %.3f, want ≈0.3", lossRate)
	}
}

func TestLinkStatsAccounting(t *testing.T) {
	clock, link, _ := newTestLink(t, LinkConfig{Rate: units.Mbps(8), Delay: 0})
	for i := 0; i < 5; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	}
	clock.Run()
	st := link.Stats()
	if st.Enqueued != 5 || st.CellsDelivered != 5 {
		t.Errorf("Enqueued=%d Delivered=%d, want 5/5", st.Enqueued, st.CellsDelivered)
	}
	if st.BytesOut != 5*512 {
		t.Errorf("BytesOut = %v, want 2560", st.BytesOut)
	}
	if st.MaxQueueLen != 4 {
		// 5 concurrent sends: head enters serialization, 4 queue.
		t.Errorf("MaxQueueLen = %d, want 4", st.MaxQueueLen)
	}
	// Queue delay: frame i waits i serialization times ≈ i·512µs.
	wantDelay := time.Duration(1+2+3+4) * 512 * time.Microsecond
	if st.QueueDelay != wantDelay {
		t.Errorf("QueueDelay = %v, want %v", st.QueueDelay, wantDelay)
	}
}

func TestLinkThroughputMatchesRate(t *testing.T) {
	// Saturate a 4 Mbit/s link for 1000 cells and check goodput.
	clock, link, dst := newTestLink(t, LinkConfig{Rate: units.Mbps(4), Delay: 5 * time.Millisecond})
	const n = 1000
	for i := 0; i < n; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 512})
	}
	end := clock.Run()
	if len(dst.frames) != n {
		t.Fatalf("delivered %d frames", len(dst.frames))
	}
	elapsed := end.Duration() - 5*time.Millisecond // subtract propagation
	rate := units.RateFromTransfer(n*512, elapsed)
	if r := rate.Mbit(); r < 3.99 || r > 4.01 {
		t.Errorf("achieved %.3f Mbit/s on a 4 Mbit/s link", r)
	}
}

func TestLinkValidation(t *testing.T) {
	clock := sim.NewClock()
	dst := &sink{clock: clock}
	cases := []struct {
		name string
		cfg  LinkConfig
		dst  Handler
	}{
		{"zero rate", LinkConfig{Rate: 0}, dst},
		{"negative delay", LinkConfig{Rate: 1, Delay: -time.Second}, dst},
		{"bad loss prob", LinkConfig{Rate: 1, LossProb: 1.5}, dst},
		{"loss without rng", LinkConfig{Rate: 1, LossProb: 0.1}, dst},
		{"nil dst", LinkConfig{Rate: 1}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLink(%s) did not panic", tc.name)
				}
			}()
			NewLink("bad", clock, tc.cfg, tc.dst)
		})
	}
}

func TestLinkSendZeroSizePanics(t *testing.T) {
	_, link, _ := newTestLink(t, LinkConfig{Rate: units.Mbps(1)})
	defer func() {
		if recover() == nil {
			t.Error("Send with zero size did not panic")
		}
	}()
	link.Send(&Frame{Src: "a", Dst: "b", Size: 0})
}

// Property: with an unbounded queue and no loss, every frame is
// delivered exactly once, in order, and total delivery time is at least
// the analytic lower bound (sum of serializations + propagation).
func TestPropertyLinkConservation(t *testing.T) {
	f := func(sizes []uint8, mbps uint8, delayMs uint8) bool {
		if mbps == 0 || len(sizes) == 0 {
			return true
		}
		if len(sizes) > 100 {
			sizes = sizes[:100]
		}
		clock := sim.NewClock()
		dst := &sink{clock: clock}
		rate := units.Mbps(float64(mbps))
		delay := time.Duration(delayMs) * time.Millisecond
		link := NewLink("prop", clock, LinkConfig{Rate: rate, Delay: delay}, dst)
		var total units.DataSize
		for i, s := range sizes {
			size := units.DataSize(s) + 1
			total += size
			if !link.Send(&Frame{Src: "a", Dst: "b", Size: size, Payload: i}) {
				return false
			}
		}
		end := clock.Run()
		if len(dst.frames) != len(sizes) {
			return false
		}
		for i, fr := range dst.frames {
			if fr.Payload.(int) != i {
				return false
			}
		}
		// TransmissionTime rounds up to the nanosecond; computing it
		// once over the total can land 1 ns above the sum of the
		// per-frame roundings (float ceil), so allow that slack.
		lower := rate.TransmissionTime(total) + delay - time.Nanosecond
		return end.Duration() >= lower
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLinkZeroDelayDeliveryOrdering(t *testing.T) {
	// With zero propagation delay, a frame's delivery event lands at the
	// same instant its successor starts serializing. FIFO (at, seq)
	// ordering must still deliver frames in send order, one
	// serialization time apart.
	clock, link, dst := newTestLink(t, LinkConfig{Rate: units.Mbps(8), Delay: 0})
	const n = 10
	for i := 0; i < n; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 512, Payload: i})
	}
	clock.Run()
	if len(dst.frames) != n {
		t.Fatalf("delivered %d, want %d", len(dst.frames), n)
	}
	ser := sim.Time(units.Mbps(8).TransmissionTime(512))
	for i, f := range dst.frames {
		if f.Payload.(int) != i {
			t.Fatalf("delivery %d carries payload %v", i, f.Payload)
		}
		if want := ser * sim.Time(i+1); dst.times[i] != want {
			t.Fatalf("delivery %d at %v, want %v", i, dst.times[i], want)
		}
	}
}

func TestLinkPriorityOrderAfterRingWraparound(t *testing.T) {
	// Cycle far more frames than the rings' initial capacity through a
	// busy link, with interleaved control frames, so both rings wrap
	// repeatedly. Control must keep overtaking queued data, and each
	// class must stay FIFO — exactly what the slice-shift queues did.
	clock := sim.NewClock()
	col := &collector{clock: clock}
	link := NewLink("wrap", clock, LinkConfig{Rate: units.Mbps(8), Delay: time.Millisecond}, col)
	pool := NewFramePool()
	link.UsePool(pool, true)

	const rounds = 40
	var sent int
	for r := 0; r < rounds; r++ {
		r := r
		clock.At(sim.Time(r)*sim.Time(3*time.Millisecond), func() {
			// Three data frames, then one control frame that must
			// overtake the two still queued behind the serializer.
			// Recycled frames keep their fields: every one must be set.
			for j := 0; j < 3; j++ {
				f := pool.Get()
				f.Src, f.Dst, f.Size, f.Priority, f.Payload = "a", "b", 512, false, 10*r+j
				link.Send(f)
				sent++
			}
			f := pool.Get()
			f.Src, f.Dst, f.Size, f.Priority, f.Payload = "a", "b", 64, true, 10*r+9
			link.Send(f)
			sent++
		})
	}
	clock.Run()
	if len(col.got) != sent {
		t.Fatalf("delivered %d of %d", len(col.got), sent)
	}
	var lastData, lastCtrl = -1, -1
	for i, d := range col.got {
		v := d.f.Payload.(int)
		if d.f.Priority {
			if v <= lastCtrl {
				t.Fatalf("control FIFO violated at delivery %d: %d after %d", i, v, lastCtrl)
			}
			lastCtrl = v
		} else {
			if v <= lastData {
				t.Fatalf("data FIFO violated at delivery %d: %d after %d", i, v, lastData)
			}
			lastData = v
		}
	}
	// Per round: the control frame was offered after all three data
	// frames but must be serialized before the two that were still
	// queued (10r+0 serializing, control, then 10r+1, 10r+2).
	for r := 0; r < rounds; r++ {
		posCtrl, posLast := -1, -1
		for i, d := range col.got {
			switch d.f.Payload.(int) {
			case 10*r + 9:
				posCtrl = i
			case 10*r + 2:
				posLast = i
			}
		}
		if posCtrl == -1 || posLast == -1 {
			t.Fatalf("round %d frames missing", r)
		}
		if posCtrl > posLast {
			t.Fatalf("round %d: control delivered at %d after final data at %d", r, posCtrl, posLast)
		}
	}
}

func TestLinkSetRateMidSerializationAppliesNext(t *testing.T) {
	// A rate change while a frame occupies the serializer must not
	// affect that frame — only the next one. (The pre-bound state
	// machine reads the rate when a serialization starts.)
	clock := sim.NewClock()
	col := &collector{clock: clock}
	link := NewLink("l", clock, LinkConfig{Rate: units.Mbps(1), Delay: 0}, col)
	pool := NewFramePool()
	link.UsePool(pool, true)
	for i := 0; i < 2; i++ {
		f := pool.Get()
		f.Src, f.Dst, f.Size, f.Payload = "a", "b", 500, i
		link.Send(f)
	}
	// Halve the rate 1 ms into frame 0's 4 ms serialization.
	clock.After(time.Millisecond, func() { link.SetRate(units.Kbps(500)) })
	clock.Run()
	if len(col.got) != 2 {
		t.Fatalf("delivered %d", len(col.got))
	}
	// Frame 0 finishes at 4 ms (old rate); frame 1 at 4 + 8 = 12 ms.
	if got := col.got[0].at; got != sim.Time(4*time.Millisecond) {
		t.Fatalf("frame 0 delivered at %v, want 4ms", got)
	}
	if got := col.got[1].at; got != sim.Time(12*time.Millisecond) {
		t.Fatalf("frame 1 delivered at %v, want 12ms", got)
	}
}

func TestFramePoolRecyclesThroughFabric(t *testing.T) {
	// A frame delivered across the star must come back to the pool:
	// steady-state traffic reuses storage instead of allocating.
	clock := sim.NewClock()
	star := NewStarFabric(clock)
	pa := star.Attach("a", Symmetric(units.Mbps(10), 0, 0), HandlerFunc(func(*Frame) {}), nil)
	star.Attach("b", Symmetric(units.Mbps(10), 0, 0), HandlerFunc(func(*Frame) {}), nil)
	pa.Send("b", 512, "x")
	clock.Run()
	if n := len(star.pool.s.free); n != 1 {
		t.Fatalf("pool holds %d frames after delivery, want 1", n)
	}
	f := star.pool.s.free[0]
	if f.Payload != nil {
		t.Fatal("recycled frame retains payload")
	}
	// Unknown destinations recycle too.
	pa.Send("ghost", 512, "y")
	clock.Run()
	if n := len(star.pool.s.free); n != 1 {
		t.Fatalf("pool holds %d frames after unknown-dst drop, want 1", n)
	}
}
