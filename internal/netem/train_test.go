package netem

import (
	"testing"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// trainSink records deliveries with their batch boundaries: Deliver
// appends a singleton batch, DeliverTrain a whole one. Frames are
// snapshotted — trained terminal links recycle them on return.
type trainSink struct {
	clock   *sim.Clock
	batches [][]Frame
	times   []sim.Time
}

func (s *trainSink) Deliver(f *Frame) {
	s.batches = append(s.batches, []Frame{*f})
	s.times = append(s.times, s.clock.Now())
}

func (s *trainSink) DeliverTrain(fs []*Frame) {
	batch := make([]Frame, len(fs))
	for i, f := range fs {
		batch[i] = *f
	}
	s.batches = append(s.batches, batch)
	s.times = append(s.times, s.clock.Now())
}

func (s *trainSink) payloads() []int {
	var out []int
	for _, b := range s.batches {
		for _, f := range b {
			out = append(out, f.Payload.(int))
		}
	}
	return out
}

func newTrainLink(t *testing.T, cfg LinkConfig) (*sim.Clock, *Link, *trainSink) {
	t.Helper()
	clock := sim.NewClock()
	dst := &trainSink{clock: clock}
	return clock, NewLink("train", clock, cfg, dst), dst
}

func TestTrainFormsFromBacklogAndDeliversBatch(t *testing.T) {
	// A control frame occupies the serializer while four data frames
	// queue behind it; when it completes, the backlog forms one train
	// that serializes over its summed bytes and arrives as one batch.
	// The data frames must NOT stretch into the control train: trains
	// never mix sources.
	clock, link, dst := newTrainLink(t, LinkConfig{
		Rate: units.Mbps(1), Delay: time.Millisecond, TrainSize: 4,
	})
	link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Priority: true, Payload: -1})
	for i := 0; i < 4; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: i})
	}
	clock.Run()
	if len(dst.batches) != 2 {
		t.Fatalf("got %d deliveries, want 2 (control, then one data train)", len(dst.batches))
	}
	if len(dst.batches[0]) != 1 || !dst.batches[0][0].Priority {
		t.Fatalf("first delivery = %v, want the lone control frame", dst.batches[0])
	}
	if len(dst.batches[1]) != 4 {
		t.Fatalf("data train carried %d frames, want 4", len(dst.batches[1]))
	}
	for i, f := range dst.batches[1] {
		if f.Payload.(int) != i {
			t.Fatalf("train member %d carries payload %v: order violated", i, f.Payload)
		}
	}
	// 500 B at 1 Mbit/s = 4 ms. Control: 4 ms + 1 ms delay = 5 ms.
	// Data train: forms at 4 ms, serializes 4·4 ms, arrives at 21 ms.
	if want := sim.Time(5 * time.Millisecond); dst.times[0] != want {
		t.Errorf("control delivered at %v, want %v", dst.times[0], want)
	}
	if want := sim.Time(21 * time.Millisecond); dst.times[1] != want {
		t.Errorf("data train delivered at %v, want %v", dst.times[1], want)
	}
	st := link.Stats()
	if st.CellsDelivered != 5 || st.TrainsDelivered != 2 {
		t.Errorf("CellsDelivered=%d TrainsDelivered=%d, want 5/2", st.CellsDelivered, st.TrainsDelivered)
	}
	if st.TrainStretched != 0 {
		t.Errorf("TrainStretched = %d, want 0 (backlog formed at once)", st.TrainStretched)
	}
	if got := st.MeanTrainLen(); got != 2.5 {
		t.Errorf("MeanTrainLen = %v, want 2.5", got)
	}
}

func TestTrainStretchingCoalescesSmoothArrivals(t *testing.T) {
	// Arrivals slightly faster than the service rate: every frame finds
	// the serializer busy with a train that has room, so it joins
	// instead of forming a singleton behind it. Without stretching this
	// pattern degenerates to mean train length ≈ 1 — each arrival waits
	// a full cycle and forms its own train.
	clock, link, dst := newTrainLink(t, LinkConfig{
		Rate: units.Mbps(1), Delay: time.Millisecond, TrainSize: 8,
	})
	const n = 32
	for i := 0; i < n; i++ {
		i := i
		clock.At(sim.Time(i)*sim.Time(3*time.Millisecond), func() {
			link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: i})
		})
	}
	clock.Run()
	got := dst.payloads()
	if len(got) != n {
		t.Fatalf("delivered %d frames, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery %d carries payload %d: stretching reordered frames", i, v)
		}
	}
	for _, b := range dst.batches {
		if len(b) > 8 {
			t.Fatalf("train of %d frames exceeds TrainSize 8", len(b))
		}
	}
	st := link.Stats()
	if st.TrainStretched == 0 {
		t.Error("TrainStretched = 0: no frame ever joined mid-serialization")
	}
	if mean := st.MeanTrainLen(); mean < 2 {
		t.Errorf("MeanTrainLen = %.2f: smooth arrivals did not coalesce", mean)
	}
}

func TestTrainStretchingNeverMixesSources(t *testing.T) {
	// A control frame arriving while a data train serializes must not
	// join it (and vice versa — see the formation test): it waits and
	// wins the next formation by priority.
	clock, link, dst := newTrainLink(t, LinkConfig{
		Rate: units.Mbps(1), Delay: 0, TrainSize: 4,
	})
	link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: 0})
	link.Send(&Frame{Src: "a", Dst: "b", Size: 64, Priority: true, Payload: -1})
	link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: 1})
	clock.Run()
	if len(dst.batches) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(dst.batches))
	}
	first := dst.batches[0]
	if len(first) != 2 || first[0].Priority || first[1].Priority {
		t.Fatalf("first train = %v, want the two data frames", first)
	}
	if !dst.batches[1][0].Priority {
		t.Fatal("control frame did not follow in its own train")
	}
	if st := link.Stats(); st.TrainStretched != 1 {
		t.Errorf("TrainStretched = %d, want 1 (only the second data frame joined)", st.TrainStretched)
	}
}

func TestTrainMidTrainLossParityWithUntrained(t *testing.T) {
	// The loss process is per-cell and consumes RNG draws in frame
	// order, so a trained link and an untrained one fed the same frame
	// sequence from identically seeded RNGs lose exactly the same
	// frames — a mid-train member can die while its neighbors survive,
	// and coalescing changes timing but never the loss pattern.
	run := func(trainSize int) (LinkStats, []int) {
		clock := sim.NewClock()
		dst := &trainSink{clock: clock}
		link := NewLink("lossy", clock, LinkConfig{
			Rate: units.Mbps(10), Delay: time.Millisecond,
			LossProb: 0.3, RNG: sim.NewRNG(7, "trainloss"),
			TrainSize: trainSize,
		}, dst)
		const n = 40
		for i := 0; i < n; i++ {
			link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: i})
		}
		clock.Run()
		return link.Stats(), dst.payloads()
	}
	trainedStats, trainedGot := run(8)
	plainStats, plainGot := run(0)

	if trainedStats.RandomLoss == 0 {
		t.Fatal("no losses at p=0.3 over 40 frames: test is vacuous")
	}
	if trainedStats.RandomLoss != plainStats.RandomLoss {
		t.Errorf("trained lost %d, untrained lost %d: RNG draw sequences diverged",
			trainedStats.RandomLoss, plainStats.RandomLoss)
	}
	if len(trainedGot) != len(plainGot) {
		t.Fatalf("trained delivered %d, untrained %d", len(trainedGot), len(plainGot))
	}
	for i := range trainedGot {
		if trainedGot[i] != plainGot[i] {
			t.Fatalf("survivor %d: trained payload %d vs untrained %d", i, trainedGot[i], plainGot[i])
		}
	}
	if got := trainedStats.CellsDelivered + trainedStats.RandomLoss; got != 40 {
		t.Errorf("delivered %d + lost %d != 40 sent", trainedStats.CellsDelivered, trainedStats.RandomLoss)
	}
}

func TestTrainSetRateMidTrainAppliesNextTrain(t *testing.T) {
	// A rate change while a train occupies the serializer affects
	// neither the train's existing members nor frames that stretch into
	// it afterwards — every member serializes at the formation-time
	// rate; the next train picks up the new one. This is the batched
	// analogue of the per-frame SetRate rule.
	clock, link, dst := newTrainLink(t, LinkConfig{
		Rate: units.Mbps(1), Delay: 0, TrainSize: 4,
	})
	// 500 B at 1 Mbit/s = 4 ms; at 500 kbit/s = 8 ms.
	link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: 0}) // train forms, done 4 ms
	link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: 1}) // stretches, done 8 ms
	clock.After(time.Millisecond, func() { link.SetRate(units.Kbps(500)) })
	clock.After(2*time.Millisecond, func() {
		// Joins the live train: stretched at the formation rate, 12 ms.
		link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: 2})
	})
	clock.After(13*time.Millisecond, func() {
		// Link idle again: a fresh train at the new rate, done 21 ms.
		link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: 3})
	})
	clock.Run()
	if len(dst.batches) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(dst.batches))
	}
	if len(dst.batches[0]) != 3 {
		t.Fatalf("first train carried %d frames, want 3", len(dst.batches[0]))
	}
	if want := sim.Time(12 * time.Millisecond); dst.times[0] != want {
		t.Errorf("stretched train delivered at %v, want %v (formation rate)", dst.times[0], want)
	}
	if want := sim.Time(21 * time.Millisecond); dst.times[1] != want {
		t.Errorf("post-change frame delivered at %v, want %v (new rate)", dst.times[1], want)
	}
}

// peekFIFO is a minimal CircPeeker scheduler: FIFO order, but it
// exposes the head's circuit, so a trained link must end a train where
// the circuit changes — the scheduler's preemption point.
type peekFIFO struct{ q []*Frame }

func (s *peekFIFO) Push(f *Frame) bool { s.q = append(s.q, f); return true }
func (s *peekFIFO) Pop() *Frame {
	f := s.q[0]
	s.q = s.q[1:]
	return f
}
func (s *peekFIFO) Len() int { return len(s.q) }
func (s *peekFIFO) PeekCirc() (uint32, bool) {
	if len(s.q) == 0 {
		return 0, false
	}
	return s.q[0].Circ, true
}

func TestTrainSchedulerPreemptionSplitsTrains(t *testing.T) {
	// With a circuit-aware scheduler installed, a train never spans two
	// circuits — neither at formation nor by stretching. Three frames
	// of circuit 1 followed by two of circuit 2 must arrive as exactly
	// two trains, split at the circuit boundary, even though TrainSize
	// would have room for all five.
	clock, link, dst := newTrainLink(t, LinkConfig{
		Rate: units.Mbps(1), Delay: 0, TrainSize: 8,
	})
	link.SetScheduler(&peekFIFO{})
	for i := 0; i < 3; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Circ: 1, Payload: i})
	}
	for i := 3; i < 5; i++ {
		link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Circ: 2, Payload: i})
	}
	clock.Run()
	if len(dst.batches) != 2 {
		t.Fatalf("got %d trains, want 2 (split at the circuit boundary)", len(dst.batches))
	}
	if len(dst.batches[0]) != 3 || len(dst.batches[1]) != 2 {
		t.Fatalf("train sizes %d/%d, want 3/2", len(dst.batches[0]), len(dst.batches[1]))
	}
	for _, f := range dst.batches[0] {
		if f.Circ != 1 {
			t.Fatalf("circuit-2 frame in the circuit-1 train")
		}
	}
	for _, f := range dst.batches[1] {
		if f.Circ != 2 {
			t.Fatalf("circuit-1 frame in the circuit-2 train")
		}
	}
	// The first send formed a singleton train; the next two circuit-1
	// frames stretched it; the circuit-2 frames were refused.
	if st := link.Stats(); st.TrainStretched != 2 {
		t.Errorf("TrainStretched = %d, want 2", st.TrainStretched)
	}
}

func TestTrainTerminalLinkRecyclesFrames(t *testing.T) {
	// Every frame of a delivered train must return to the pool on a
	// terminal link — batched delivery keeps the pooled hot path
	// allocation-free, so a leaked train member would regress it.
	clock := sim.NewClock()
	dst := &trainSink{clock: clock}
	link := NewLink("terminal", clock, LinkConfig{
		Rate: units.Mbps(1), Delay: time.Millisecond, TrainSize: 4,
	}, dst)
	pool := NewFramePool()
	link.UsePool(pool, true)
	const n = 6
	for i := 0; i < n; i++ {
		f := pool.Get()
		f.Src, f.Dst, f.Size, f.Priority, f.Circ, f.Payload = "a", "b", 500, false, 0, i
		link.Send(f)
	}
	clock.Run()
	if got := dst.payloads(); len(got) != n {
		t.Fatalf("delivered %d frames, want %d", len(got), n)
	}
	if free := len(pool.s.free); free != n {
		t.Fatalf("pool holds %d frames after delivery, want %d", free, n)
	}
	for _, f := range pool.s.free {
		if f.Payload != nil {
			t.Fatal("recycled train frame retains payload")
		}
	}
}

func TestTrainSizeZeroAndOneIdentical(t *testing.T) {
	// TrainSize 0 and 1 must select the untrained machinery verbatim:
	// identical delivery instants, order, and stats. The determinism
	// fixture (golden scenario) rides on this equivalence.
	run := func(trainSize int) (LinkStats, []sim.Time, []int) {
		clock := sim.NewClock()
		dst := &trainSink{clock: clock}
		link := NewLink("id", clock, LinkConfig{
			Rate: units.Mbps(2), Delay: 3 * time.Millisecond, TrainSize: trainSize,
		}, dst)
		const n = 20
		for i := 0; i < n; i++ {
			i := i
			clock.At(sim.Time(i)*sim.Time(700*time.Microsecond), func() {
				link.Send(&Frame{Src: "a", Dst: "b", Size: 500, Payload: i})
			})
		}
		clock.Run()
		return link.Stats(), dst.times, dst.payloads()
	}
	s0, t0, p0 := run(0)
	s1, t1, p1 := run(1)
	if s0 != s1 {
		t.Errorf("stats differ: TrainSize 0 %+v vs TrainSize 1 %+v", s0, s1)
	}
	if len(t0) != len(t1) {
		t.Fatalf("delivery counts differ: %d vs %d", len(t0), len(t1))
	}
	for i := range t0 {
		if t0[i] != t1[i] || p0[i] != p1[i] {
			t.Fatalf("delivery %d: (%v, %d) vs (%v, %d)", i, t0[i], p0[i], t1[i], p1[i])
		}
	}
	if s0.MeanTrainLen() != 1 {
		t.Errorf("untrained MeanTrainLen = %v, want exactly 1", s0.MeanTrainLen())
	}
}
