package cell

// Pool recycles Cell objects between the two ends of a simulated
// circuit: the consuming endpoint returns each in-order-delivered cell,
// and the producing endpoint draws packetization cells from the pool
// instead of the heap. A simulation is single-threaded on its clock, so
// the pool is a plain free list with deterministic reuse order.
//
// Reuse is safe even though hop senders retain delivered cells until
// acknowledgment: retransmissions of an already-delivered sequence are
// discarded by the receiver's sequence check without reading the cell,
// so a recycled cell's new content can never be observed on an old
// sequence number.
//
// A nil *Pool is valid and degrades to plain allocation.
//
// The pool remembers every cell it ever allocated so Reset can reclaim
// cells stranded in a dead trial's structures (in flight or retained
// for retransmission when the trial stopped) along with the free ones.
type Pool struct {
	free []*Cell
	all  []*Cell
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a cell for the caller to fill. The caller must set Circ
// and the full payload (SetRelay overwrites it end to end); recycled
// cells are not zeroed.
func (p *Pool) Get() *Cell {
	if p == nil {
		return &Cell{}
	}
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return c
	}
	c := &Cell{}
	p.all = append(p.all, c)
	return c
}

// Put recycles a cell whose content has been consumed.
func (p *Pool) Put(c *Cell) {
	if p == nil || c == nil {
		return
	}
	p.free = append(p.free, c)
}

// Reset reclaims every cell the pool ever allocated — free or not —
// rebuilding the free list in allocation order. Only call it at a trial
// boundary, after everything that could hold a cell (endpoints, hop
// senders, frames in flight) has been discarded; resetting under a live
// circuit aliases memory.
func (p *Pool) Reset() {
	if p == nil {
		return
	}
	p.free = append(p.free[:0], p.all...)
}

// All exposes the allocation ledger for tests.
func (p *Pool) All() []*Cell { return p.all }

// FreeLen exposes the free-list depth for tests.
func (p *Pool) FreeLen() int { return len(p.free) }
