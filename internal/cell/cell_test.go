package cell

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestConstantsConsistent(t *testing.T) {
	if HeaderSize+PayloadSize != Size {
		t.Errorf("header %d + payload %d != %d", HeaderSize, PayloadSize, Size)
	}
	if RelayHeaderSize+MaxRelayData != PayloadSize {
		t.Errorf("relay header %d + max data %d != payload %d",
			RelayHeaderSize, MaxRelayData, PayloadSize)
	}
	if Size != 512 {
		t.Errorf("cell size %d, want 512 (the paper's fixed cell size)", Size)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := &Cell{Circ: 0xDEADBEEF, Cmd: CmdRelay}
	for i := range c.Payload {
		c.Payload[i] = byte(i * 7)
	}
	buf := c.Marshal()
	if len(buf) != Size {
		t.Fatalf("marshalled %d bytes, want %d", len(buf), Size)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Circ != c.Circ || got.Cmd != c.Cmd || got.Payload != c.Payload {
		t.Error("round trip mismatch")
	}
}

func TestUnmarshalShortBuffer(t *testing.T) {
	if _, err := Unmarshal(make([]byte, Size-1)); err != ErrShortBuffer {
		t.Errorf("err = %v, want ErrShortBuffer", err)
	}
}

func TestMarshalToPanicsOnShortBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MarshalTo with short buffer did not panic")
		}
	}()
	(&Cell{}).MarshalTo(make([]byte, 10))
}

func TestRelayRoundTrip(t *testing.T) {
	c := &Cell{Circ: 7}
	data := bytes.Repeat([]byte{0xAB}, 100)
	hdr := RelayHeader{
		Cmd:      RelayData,
		StreamID: 42,
		Digest:   [4]byte{1, 2, 3, 4},
	}
	if err := c.SetRelay(hdr, data); err != nil {
		t.Fatal(err)
	}
	if c.Cmd != CmdRelay {
		t.Errorf("Cmd = %v, want RELAY", c.Cmd)
	}
	got, gotData, err := c.Relay()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmd != RelayData || got.StreamID != 42 || got.Digest != hdr.Digest {
		t.Errorf("header = %+v", got)
	}
	if got.Length != 100 || !bytes.Equal(gotData, data) {
		t.Error("data mismatch")
	}
	if got.Recognized != 0 {
		t.Errorf("Recognized = %d, want 0", got.Recognized)
	}
}

func TestSetRelayZeroesTail(t *testing.T) {
	c := &Cell{}
	for i := range c.Payload {
		c.Payload[i] = 0xFF
	}
	if err := c.SetRelay(RelayHeader{Cmd: RelayData}, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	for i := RelayHeaderSize + 2; i < PayloadSize; i++ {
		if c.Payload[i] != 0 {
			t.Fatalf("payload[%d] = %#x, tail not zeroed", i, c.Payload[i])
		}
	}
}

func TestSetRelayTooLarge(t *testing.T) {
	c := &Cell{}
	err := c.SetRelay(RelayHeader{Cmd: RelayData}, make([]byte, MaxRelayData+1))
	if err != ErrDataTooLarge {
		t.Errorf("err = %v, want ErrDataTooLarge", err)
	}
}

func TestSetRelayMaxData(t *testing.T) {
	c := &Cell{}
	data := bytes.Repeat([]byte{9}, MaxRelayData)
	if err := c.SetRelay(RelayHeader{Cmd: RelayData}, data); err != nil {
		t.Fatal(err)
	}
	_, gotData, err := c.Relay()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotData, data) {
		t.Error("max-size data mismatch")
	}
}

func TestRelayBadLength(t *testing.T) {
	c := &Cell{}
	c.Payload[9] = 0xFF // length field high byte: way beyond MaxRelayData
	c.Payload[10] = 0xFF
	if _, _, err := c.Relay(); err != ErrBadRelayLen {
		t.Errorf("err = %v, want ErrBadRelayLen", err)
	}
}

func TestDigestFieldAccessors(t *testing.T) {
	c := &Cell{}
	c.SetRelay(RelayHeader{Cmd: RelayData, Digest: [4]byte{9, 8, 7, 6}}, nil)
	if got := c.PayloadDigestField(); got != [4]byte{9, 8, 7, 6} {
		t.Errorf("digest field = %v", got)
	}
	c.ZeroDigest()
	if got := c.PayloadDigestField(); got != [4]byte{} {
		t.Errorf("digest after ZeroDigest = %v", got)
	}
	c.SetDigest([4]byte{1, 1, 2, 3})
	if got := c.PayloadDigestField(); got != [4]byte{1, 1, 2, 3} {
		t.Errorf("digest after SetDigest = %v", got)
	}
}

func TestCommandStrings(t *testing.T) {
	cases := map[string]string{
		CmdPadding.String():       "PADDING",
		CmdCreate.String():        "CREATE",
		CmdCreated.String():       "CREATED",
		CmdRelay.String():         "RELAY",
		CmdDestroy.String():       "DESTROY",
		Command(99).String():      "Command(99)",
		RelayData.String():        "RELAY_DATA",
		RelayBegin.String():       "RELAY_BEGIN",
		RelayConnected.String():   "RELAY_CONNECTED",
		RelayEnd.String():         "RELAY_END",
		RelayExtend.String():      "RELAY_EXTEND",
		RelayExtended.String():    "RELAY_EXTENDED",
		RelaySendme.String():      "RELAY_SENDME",
		RelayCommand(77).String(): "RelayCommand(77)",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestCellString(t *testing.T) {
	c := &Cell{Circ: 3, Cmd: CmdRelay}
	if got := c.String(); got != "cell{circ=3 cmd=RELAY}" {
		t.Errorf("String() = %q", got)
	}
}

// Property: marshal → unmarshal is the identity on (Circ, Cmd, Payload).
func TestPropertyMarshalRoundTrip(t *testing.T) {
	f := func(circ uint32, cmd uint8, seed []byte) bool {
		c := &Cell{Circ: CircID(circ), Cmd: Command(cmd)}
		for i := range c.Payload {
			if len(seed) > 0 {
				c.Payload[i] = seed[i%len(seed)]
			}
		}
		got, err := Unmarshal(c.Marshal())
		if err != nil {
			return false
		}
		return got.Circ == c.Circ && got.Cmd == c.Cmd && got.Payload == c.Payload
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SetRelay → Relay returns exactly the data that was stored.
func TestPropertyRelayRoundTrip(t *testing.T) {
	f := func(cmd uint8, stream uint16, data []byte) bool {
		if len(data) > MaxRelayData {
			data = data[:MaxRelayData]
		}
		c := &Cell{}
		if err := c.SetRelay(RelayHeader{Cmd: RelayCommand(cmd), StreamID: stream}, data); err != nil {
			return false
		}
		hdr, got, err := c.Relay()
		if err != nil {
			return false
		}
		return hdr.Cmd == RelayCommand(cmd) && hdr.StreamID == stream && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
