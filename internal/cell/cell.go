// Package cell implements the fixed-size cell format the overlay
// exchanges, modelled on Tor's link-protocol cells: a 4-byte circuit ID,
// a 1-byte command, and a fixed payload, for a constant 512-byte wire
// unit. Relay cells carry an additional sub-header (command, recognized,
// stream ID, digest, length) inside the payload, exactly as in Tor; the
// digest and recognized fields are what let a relay decide whether a
// multiply-encrypted cell has fully "peeled" at its position.
//
// Fixed-size cells are load-bearing for the paper: congestion windows
// are counted in cells, and the network emulator charges every cell the
// same serialization time.
package cell

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format constants.
const (
	// Size is the fixed wire size of every cell.
	Size = 512
	// HeaderSize is CircID (4) + Command (1).
	HeaderSize = 5
	// PayloadSize is the fixed payload length of every cell.
	PayloadSize = Size - HeaderSize // 507
	// RelayHeaderSize is the relay sub-header inside the payload:
	// relay command (1) + recognized (2) + stream ID (2) + digest (4) +
	// length (2).
	RelayHeaderSize = 11
	// MaxRelayData is the usable data bytes in one relay cell.
	MaxRelayData = PayloadSize - RelayHeaderSize // 496
)

// CircID identifies a circuit on one hop. As in Tor, IDs are per-link,
// chosen by the side that initiated the connection.
type CircID uint32

// Command is the top-level cell command.
type Command uint8

// Top-level commands (a subset of Tor's, sufficient for circuit
// construction, data relaying and teardown).
const (
	CmdPadding Command = 0
	CmdCreate  Command = 1
	CmdCreated Command = 2
	CmdRelay   Command = 3
	CmdDestroy Command = 4
)

func (c Command) String() string {
	switch c {
	case CmdPadding:
		return "PADDING"
	case CmdCreate:
		return "CREATE"
	case CmdCreated:
		return "CREATED"
	case CmdRelay:
		return "RELAY"
	case CmdDestroy:
		return "DESTROY"
	default:
		return fmt.Sprintf("Command(%d)", uint8(c))
	}
}

// RelayCommand is the command of a relay sub-header.
type RelayCommand uint8

// Relay commands.
const (
	RelayData      RelayCommand = 1
	RelayBegin     RelayCommand = 2
	RelayConnected RelayCommand = 3
	RelayEnd       RelayCommand = 4
	RelayExtend    RelayCommand = 5
	RelayExtended  RelayCommand = 6
	RelaySendme    RelayCommand = 7
)

func (c RelayCommand) String() string {
	switch c {
	case RelayData:
		return "RELAY_DATA"
	case RelayBegin:
		return "RELAY_BEGIN"
	case RelayConnected:
		return "RELAY_CONNECTED"
	case RelayEnd:
		return "RELAY_END"
	case RelayExtend:
		return "RELAY_EXTEND"
	case RelayExtended:
		return "RELAY_EXTENDED"
	case RelaySendme:
		return "RELAY_SENDME"
	default:
		return fmt.Sprintf("RelayCommand(%d)", uint8(c))
	}
}

// Cell is one fixed-size overlay cell.
type Cell struct {
	Circ    CircID
	Cmd     Command
	Payload [PayloadSize]byte
}

// Errors returned by decoding.
var (
	ErrShortBuffer  = errors.New("cell: buffer shorter than cell size")
	ErrBadRelayLen  = errors.New("cell: relay length field exceeds payload")
	ErrDataTooLarge = errors.New("cell: relay data exceeds MaxRelayData")
)

// Marshal encodes the cell into exactly Size bytes.
func (c *Cell) Marshal() []byte {
	buf := make([]byte, Size)
	c.MarshalTo(buf)
	return buf
}

// MarshalTo encodes the cell into buf, which must hold at least Size
// bytes. It returns the number of bytes written (always Size).
func (c *Cell) MarshalTo(buf []byte) int {
	if len(buf) < Size {
		panic("cell: MarshalTo buffer too small")
	}
	binary.BigEndian.PutUint32(buf[0:4], uint32(c.Circ))
	buf[4] = byte(c.Cmd)
	copy(buf[HeaderSize:Size], c.Payload[:])
	return Size
}

// Unmarshal decodes a cell from buf, which must hold at least Size bytes.
func Unmarshal(buf []byte) (*Cell, error) {
	if len(buf) < Size {
		return nil, ErrShortBuffer
	}
	c := &Cell{
		Circ: CircID(binary.BigEndian.Uint32(buf[0:4])),
		Cmd:  Command(buf[4]),
	}
	copy(c.Payload[:], buf[HeaderSize:Size])
	return c, nil
}

// RelayHeader is the sub-header of a RELAY cell, stored at the start of
// the payload.
type RelayHeader struct {
	Cmd RelayCommand
	// Recognized is zero in plaintext; after a relay removes its
	// encryption layer, a zero value (together with a matching digest)
	// means the cell has fully decrypted at this hop.
	Recognized uint16
	StreamID   uint16
	// Digest authenticates the relay payload under the hop's running
	// digest (see package onion).
	Digest [4]byte
	// Length is the number of meaningful data bytes following the header.
	Length uint16
}

// SetRelay writes hdr and data into the cell's payload and sets the
// command to CmdRelay. Bytes after the data are zeroed (fixed-size cells
// must not leak previous contents).
func (c *Cell) SetRelay(hdr RelayHeader, data []byte) error {
	if len(data) > MaxRelayData {
		return ErrDataTooLarge
	}
	hdr.Length = uint16(len(data))
	c.Cmd = CmdRelay
	p := c.Payload[:]
	p[0] = byte(hdr.Cmd)
	binary.BigEndian.PutUint16(p[1:3], hdr.Recognized)
	binary.BigEndian.PutUint16(p[3:5], hdr.StreamID)
	copy(p[5:9], hdr.Digest[:])
	binary.BigEndian.PutUint16(p[9:11], hdr.Length)
	n := copy(p[RelayHeaderSize:], data)
	for i := RelayHeaderSize + n; i < PayloadSize; i++ {
		p[i] = 0
	}
	return nil
}

// Relay parses the relay sub-header and returns it with the data slice
// it frames. The returned data aliases the cell's payload.
func (c *Cell) Relay() (RelayHeader, []byte, error) {
	p := c.Payload[:]
	hdr := RelayHeader{
		Cmd:        RelayCommand(p[0]),
		Recognized: binary.BigEndian.Uint16(p[1:3]),
		StreamID:   binary.BigEndian.Uint16(p[3:5]),
		Length:     binary.BigEndian.Uint16(p[9:11]),
	}
	copy(hdr.Digest[:], p[5:9])
	if int(hdr.Length) > MaxRelayData {
		return RelayHeader{}, nil, ErrBadRelayLen
	}
	return hdr, p[RelayHeaderSize : RelayHeaderSize+int(hdr.Length)], nil
}

// ZeroDigest clears the digest field in the payload in place. The
// running-digest construction computes the digest over the payload with
// this field zeroed.
func (c *Cell) ZeroDigest() {
	for i := 5; i < 9; i++ {
		c.Payload[i] = 0
	}
}

// SetDigest stores d into the digest field of the payload.
func (c *Cell) SetDigest(d [4]byte) { copy(c.Payload[5:9], d[:]) }

// PayloadDigestField returns the current digest field bytes.
func (c *Cell) PayloadDigestField() (d [4]byte) {
	copy(d[:], c.Payload[5:9])
	return d
}

func (c *Cell) String() string {
	return fmt.Sprintf("cell{circ=%d cmd=%v}", c.Circ, c.Cmd)
}
