package experiments

import (
	"fmt"

	"circuitstart/internal/core"
)

// AblationExtensions quantifies the dynamic-adaptation extensions this
// reproduction enables by default (DESIGN.md, deviations 6): the same
// distant-bottleneck trace with both, either, and neither of severe
// remeasure and accelerated re-probe.
func AblationExtensions(seed int64) ([]AblationRow, error) {
	type arm struct {
		label string
		opts  core.TransportOptions
	}
	arms := []arm{
		{"both extensions (default)", core.TransportOptions{}},
		{"remeasure only", core.TransportOptions{RestartRounds: -1}},
		{"re-probe only", core.TransportOptions{SevereRemeasure: -1}},
		{"paper-pure (neither)", core.TransportOptions{RestartRounds: -1, SevereRemeasure: -1}},
	}
	rows := make([]AblationRow, 0, len(arms))
	for _, a := range arms {
		p := DefaultCwndTraceParams(3)
		p.Seed = seed
		p.Transport = a.opts
		r, err := Fig1CwndTrace(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rowFromTrace(a.label, r))
	}
	return rows, nil
}

// AblationVegas sweeps the congestion-avoidance thresholds (α, β)
// around BackTap's defaults (2, 4) on the near-bottleneck trace, where
// the post-exit operating point is governed by avoidance.
func AblationVegas(seed int64, pairs [][2]float64) ([]AblationRow, error) {
	if len(pairs) == 0 {
		pairs = [][2]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}, {6, 12}}
	}
	rows := make([]AblationRow, 0, len(pairs))
	for _, ab := range pairs {
		p := DefaultCwndTraceParams(1)
		p.Seed = seed
		p.Transport.Alpha = ab[0]
		p.Transport.Beta = ab[1]
		r, err := Fig1CwndTrace(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rowFromTrace(fmt.Sprintf("alpha=%g beta=%g", ab[0], ab[1]), r))
	}
	return rows, nil
}
