package experiments

import (
	"sort"
	"testing"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// --- Figure 1, upper panels -------------------------------------------

func TestFig1CwndTraceShape(t *testing.T) {
	// The paper's headline shape, for both bottleneck positions:
	// exponential ramp from 2 cells, overshoot, compensation onto the
	// optimal, convergence independent of bottleneck location.
	for _, hop := range []int{1, 3} {
		t.Run((map[int]string{1: "near", 3: "far"})[hop], func(t *testing.T) {
			r, err := Fig1CwndTrace(DefaultCwndTraceParams(hop))
			if err != nil {
				t.Fatal(err)
			}
			if r.Trace.Len() < 5 {
				t.Fatalf("trace has only %d points", r.Trace.Len())
			}
			first := r.Trace.Points()[0]
			if first.Value != 2 {
				t.Errorf("initial window = %v, want 2 cells", first.Value)
			}
			// The ramp must at least reach the optimal; with a distant
			// bottleneck it overshoots well past it ("the cwnd can
			// still massively 'overshoot', especially if the bottleneck
			// is distant from the source").
			if r.PeakCells < 0.8*r.OptimalCells {
				t.Errorf("ramp stopped short: peak %v < optimal %v", r.PeakCells, r.OptimalCells)
			}
			if hop == 3 && r.PeakCells < 1.2*r.OptimalCells {
				t.Errorf("distant bottleneck without overshoot: peak %v, optimal %v", r.PeakCells, r.OptimalCells)
			}
			if r.SettleTime < 0 {
				t.Fatalf("window never settled near the optimal %v (final %v)", r.OptimalCells, r.FinalCells)
			}
			if r.SettleTime > sim.Second {
				t.Errorf("settled only at %v", r.SettleTime)
			}
			if rel := r.FinalCells / r.OptimalCells; rel < 0.5 || rel > 1.6 {
				t.Errorf("final window %.1f not near optimal %.1f", r.FinalCells, r.OptimalCells)
			}
		})
	}
}

func TestFig1CwndTracePositionIndependence(t *testing.T) {
	// "Our approach is able to quickly adjust the cwnd independently of
	// the bottleneck's location": settle times for near and far
	// bottlenecks must be within the same order of magnitude.
	near, err := Fig1CwndTrace(DefaultCwndTraceParams(1))
	if err != nil {
		t.Fatal(err)
	}
	far, err := Fig1CwndTrace(DefaultCwndTraceParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if near.SettleTime < 0 || far.SettleTime < 0 {
		t.Fatal("a trace never settled")
	}
	// "Quickly" is the operative claim: both must converge well within
	// the first second, and neither position may be pathologically
	// slower than the other.
	if near.SettleTime > sim.Second || far.SettleTime > sim.Second {
		t.Errorf("slow convergence: near %v, far %v", near.SettleTime, far.SettleTime)
	}
	ratio := float64(far.SettleTime) / float64(near.SettleTime)
	if ratio > 10 || ratio < 0.1 {
		t.Errorf("settle times differ by %vx (near %v, far %v)", ratio, near.SettleTime, far.SettleTime)
	}
}

func TestFig1CwndTraceDoublingRamp(t *testing.T) {
	r, err := Fig1CwndTrace(DefaultCwndTraceParams(3))
	if err != nil {
		t.Fatal(err)
	}
	// The first window values must double: 2, 4, 8, ...
	pts := r.Trace.Points()
	want := 2.0
	for i := 0; i < 4 && i < len(pts); i++ {
		if pts[i].Value != want {
			t.Fatalf("ramp step %d = %v, want %v", i, pts[i].Value, want)
		}
		want *= 2
	}
}

func TestFig1CwndTraceValidation(t *testing.T) {
	p := DefaultCwndTraceParams(1)
	p.BottleneckHop = 5
	if _, err := Fig1CwndTrace(p); err == nil {
		t.Fatal("bottleneck hop beyond path accepted")
	}
	p = DefaultCwndTraceParams(1)
	p.Hops = 0
	if _, err := Fig1CwndTrace(p); err == nil {
		t.Fatal("zero hops accepted")
	}
}

func TestCwndKBPointsUnits(t *testing.T) {
	r, err := Fig1CwndTrace(DefaultCwndTraceParams(1))
	if err != nil {
		t.Fatal(err)
	}
	kb := r.CwndKBPoints()
	if len(kb) != r.Trace.Len() {
		t.Fatalf("length mismatch")
	}
	// 2 cells ≈ 1.024 KB.
	if kb[0].Value != 2*512.0/1000 {
		t.Fatalf("first point %v KB", kb[0].Value)
	}
}

// --- Figure 1, lower panel --------------------------------------------

// smallCDFParams shrinks the aggregate experiment so the test suite
// stays fast; the benchmark runs the paper-scale version.
func smallCDFParams(seed int64) CDFParams {
	p := DefaultCDFParams()
	p.Seed = seed
	p.Scenario.Relays = workload.DefaultRelayParams(16)
	p.Scenario.Circuits = 12
	p.Scenario.TransferSize = 300 * units.Kilobyte
	return p
}

func TestFig1DownloadCDFShape(t *testing.T) {
	res, err := Fig1DownloadCDF(smallCDFParams(42))
	if err != nil {
		t.Fatal(err)
	}
	with, without := res.Arm("circuitstart"), res.Arm("backtap")
	if with == nil || without == nil {
		t.Fatal("missing arms")
	}
	if with.Incomplete > 0 || without.Incomplete > 0 {
		t.Fatalf("incomplete transfers: with=%d without=%d", with.Incomplete, without.Incomplete)
	}
	if with.TTLB.Len() != 12 || without.TTLB.Len() != 12 {
		t.Fatalf("sample counts %d/%d", with.TTLB.Len(), without.TTLB.Len())
	}
	// The paper's claim: CircuitStart improves download times. At the
	// median, "with" must not be slower, and it must win somewhere in
	// the distribution.
	gap := res.MedianGap("circuitstart", "backtap")
	if gap > 0.05 {
		t.Errorf("median gap %+.3fs — CircuitStart slower", gap)
	}
	if with.TTLB.Mean() >= without.TTLB.Mean() {
		t.Errorf("mean with %.3fs not better than without %.3fs", with.TTLB.Mean(), without.TTLB.Mean())
	}
}

func TestFig1DownloadCDFDeterministic(t *testing.T) {
	a, err := Fig1DownloadCDF(smallCDFParams(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig1DownloadCDF(smallCDFParams(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Arms {
		as, bs := a.Arms[i].TTLB.Sorted(), b.Arms[i].TTLB.Sorted()
		for j := range as {
			if as[j] != bs[j] {
				t.Fatalf("arm %d sample %d differs", i, j)
			}
		}
	}
}

// --- Ablations ---------------------------------------------------------

func TestAblationGamma(t *testing.T) {
	rows, err := AblationGamma(42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// Larger γ tolerates more queueing before exiting: exit time should
	// not decrease as γ grows (weak monotonicity, allowing ties).
	for i := 1; i < len(rows); i++ {
		if rows[i].ExitTime < rows[i-1].ExitTime/2 {
			t.Errorf("γ row %d exits much earlier (%v) than smaller γ (%v)",
				i, rows[i].ExitTime, rows[i-1].ExitTime)
		}
	}
	// Configurations around the paper's γ = 4 must converge. Very large
	// γ exits too late and too high — that failure mode is precisely
	// what this ablation demonstrates, so it is reported, not asserted.
	for i, r := range rows {
		if i <= 2 && r.SettleTime < 0 { // γ ∈ {1, 2, 4}
			t.Errorf("%s never settled", r.Label)
		}
	}
}

func TestAblationCompensation(t *testing.T) {
	rows, err := AblationCompensation(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byLabel := map[string]AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	measured := byLabel["measured (paper)"]
	classic := byLabel["classic slow start"]
	errOf := func(r AblationRow) float64 {
		e := r.ExitCwnd/r.OptimalCells - 1
		if e < 0 {
			e = -e
		}
		return e
	}
	// The measured compensation must land near the optimal, and no
	// worse than classic slow start's halving exit.
	if errOf(measured) > 0.5 {
		t.Errorf("measured exit %.1f vs optimal %.1f", measured.ExitCwnd, measured.OptimalCells)
	}
	if errOf(measured) > errOf(classic)+0.05 {
		t.Errorf("measured exit error %.2f worse than classic %.2f", errOf(measured), errOf(classic))
	}
	// Every compensating variant must converge on this scenario.
	if measured.SettleTime < 0 {
		t.Error("measured variant never settled")
	}
}

func TestAblationFeedbackClock(t *testing.T) {
	rows, err := AblationFeedbackClock(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.PeakCells == 0 {
			t.Errorf("%s produced no trace", r.Label)
		}
	}
}

func TestAblationBottleneckPosition(t *testing.T) {
	rows, err := AblationBottleneckPosition(42, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SettleTime < 0 {
			t.Errorf("%s: never settled", r.Label)
			continue
		}
		if r.SettleTime > sim.Second {
			t.Errorf("%s: settled at %v", r.Label, r.SettleTime)
		}
	}
}

func TestAblationConcurrency(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate sweep")
	}
	rows, err := AblationConcurrency(42, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MedianWith <= 0 || r.MedianWithout <= 0 {
			t.Errorf("concurrency %d: zero medians %+v", r.Circuits, r)
		}
	}
}

// TestAblationGammaScenarioEquivalence asserts the multi-arm scenario
// sweep behind AblationGamma reproduces the one-trace-at-a-time legacy
// implementation bit for bit: each arm's trial is an independent
// network with the same seed, so batching arms must change nothing.
func TestAblationGammaScenarioEquivalence(t *testing.T) {
	rows, err := AblationGamma(42, nil)
	if err != nil {
		t.Fatal(err)
	}
	gammas := []float64{1, 2, 4, 8, 16}
	if len(rows) != len(gammas) {
		t.Fatalf("%d rows", len(rows))
	}
	for i, g := range gammas {
		p := DefaultCwndTraceParams(3)
		p.Seed = 42
		p.Transport.Gamma = g
		r, err := Fig1CwndTrace(p)
		if err != nil {
			t.Fatal(err)
		}
		want := rowFromTrace(rows[i].Label, r)
		if rows[i] != want {
			t.Errorf("gamma=%g: scenario row %+v != per-call row %+v", g, rows[i], want)
		}
	}
}

// TestFig1DownloadCDFScenarioEquivalence asserts the CDF adapter's
// declarative scenario matches running each arm by hand through the
// workload package — the legacy execution path.
func TestFig1DownloadCDFScenarioEquivalence(t *testing.T) {
	p := smallCDFParams(42)
	res, err := Fig1DownloadCDF(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range p.Policies {
		sp := p.Scenario
		sp.Transport.Policy = policy
		sc, err := workload.Build(p.Seed, sp)
		if err != nil {
			t.Fatal(err)
		}
		var want []float64
		for _, r := range sc.Run(p.Horizon) {
			if r.Done {
				want = append(want, r.TTLB.Seconds())
			}
		}
		sort.Float64s(want)
		got := res.Arm(policy).TTLB.Sorted()
		if len(got) != len(want) {
			t.Fatalf("arm %q: %d vs %d samples", policy, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("arm %q sample %d: %v vs %v", policy, i, got[i], want[i])
			}
		}
	}
}

func TestExtensionDynamicRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second capacity-step run")
	}
	base := DynamicRestartParams{
		Seed:       42,
		BeforeRate: units.Mbps(8),
		AfterRate:  units.Mbps(40),
		StepAt:     sim.Second,
		Horizon:    5 * sim.Second,
	}

	withExt := base
	withExt.RestartRounds = 3
	re, err := ExtensionDynamicRestart(withExt)
	if err != nil {
		t.Fatal(err)
	}
	if re.OptimalAfter <= re.OptimalBefore {
		t.Fatalf("model optima not ordered: %v -> %v", re.OptimalBefore, re.OptimalAfter)
	}
	if re.RecoveryTime < 0 {
		t.Fatalf("window never recovered to the new optimal (final %v, target %v)", re.FinalCells, re.OptimalAfter)
	}
	if re.Restarts == 0 {
		t.Error("extension enabled but no re-probe happened")
	}

	without := base
	without.RestartRounds = -1
	ro, err := ExtensionDynamicRestart(without)
	if err != nil {
		t.Fatal(err)
	}
	// Without re-probing, recovery is one cell per RTT — much slower
	// (or absent within the horizon).
	if ro.RecoveryTime >= 0 && ro.RecoveryTime < re.RecoveryTime {
		t.Errorf("baseline recovered faster (%v) than the extension (%v)", ro.RecoveryTime, re.RecoveryTime)
	}
}

func TestAblationExtensions(t *testing.T) {
	rows, err := AblationExtensions(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byLabel := map[string]AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// The default configuration must converge; the paper-pure arm must
	// at least exit near or above the others' exit (it has no downward
	// correction, so its final window may sit higher).
	def := byLabel["both extensions (default)"]
	if def.SettleTime < 0 {
		t.Error("default configuration never settled")
	}
	pure := byLabel["paper-pure (neither)"]
	if pure.PeakCells == 0 {
		t.Error("paper-pure arm produced no trace")
	}
}

func TestAblationVegas(t *testing.T) {
	rows, err := AblationVegas(42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// The default (2,4) must converge; larger thresholds tolerate more
	// standing queue, so the final window is weakly increasing in beta.
	if rows[1].SettleTime < 0 {
		t.Errorf("alpha=2 beta=4 never settled")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].FinalCells < rows[i-1].FinalCells-6 {
			t.Errorf("final window dropped sharply from %s (%.1f) to %s (%.1f)",
				rows[i-1].Label, rows[i-1].FinalCells, rows[i].Label, rows[i].FinalCells)
		}
	}
}
