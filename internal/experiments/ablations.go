package experiments

import (
	"fmt"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/model"
	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
)

// AblationRow is one configuration's outcome in an ablation sweep over
// the single-circuit trace scenario.
type AblationRow struct {
	// Label names the configuration (γ value, policy name, …).
	Label string
	// ExitCwnd, OptimalCells, PeakCells, SettleTime, FinalCells mirror
	// CwndTraceResult.
	ExitCwnd     float64
	OptimalCells float64
	PeakCells    float64
	SettleTime   sim.Time
	FinalCells   float64
	// ExitTime is when startup ended.
	ExitTime sim.Time
}

func rowFromTrace(label string, r CwndTraceResult) AblationRow {
	return AblationRow{
		Label:        label,
		ExitCwnd:     r.ExitCwnd,
		OptimalCells: r.OptimalCells,
		PeakCells:    r.PeakCells,
		SettleTime:   r.SettleTime,
		FinalCells:   r.FinalCells,
		ExitTime:     r.ExitTime,
	}
}

// AblationGamma sweeps the start-up exit threshold γ (paper fixes γ=4)
// on the distant-bottleneck trace scenario.
func AblationGamma(seed int64, gammas []float64) ([]AblationRow, error) {
	if len(gammas) == 0 {
		gammas = []float64{1, 2, 4, 8, 16}
	}
	rows := make([]AblationRow, 0, len(gammas))
	for _, g := range gammas {
		p := DefaultCwndTraceParams(3)
		p.Seed = seed
		p.Transport.Gamma = g
		r, err := Fig1CwndTrace(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rowFromTrace(fmt.Sprintf("gamma=%g", g), r))
	}
	return rows, nil
}

// AblationCompensation compares exit-window strategies: CircuitStart's
// measured compensation, the literal in-round count, halving, and no
// compensation at all (classic slow start), on the distant-bottleneck
// scenario where compensation matters most.
func AblationCompensation(seed int64) ([]AblationRow, error) {
	type arm struct {
		label string
		opts  core.TransportOptions
	}
	arms := []arm{
		{"measured (paper)", core.TransportOptions{Policy: "circuitstart", Compensation: transport.CompMeasured}},
		{"counted (literal)", core.TransportOptions{Policy: "circuitstart", Compensation: transport.CompCounted}},
		{"halving", core.TransportOptions{Policy: "circuitstart-halve"}},
		{"classic slow start", core.TransportOptions{Policy: "slowstart"}},
	}
	rows := make([]AblationRow, 0, len(arms))
	for _, a := range arms {
		mustPolicy(orDefault(a.opts.Policy))
		p := DefaultCwndTraceParams(3)
		p.Seed = seed
		p.Transport = a.opts
		r, err := Fig1CwndTrace(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rowFromTrace(a.label, r))
	}
	return rows, nil
}

// AblationFeedbackClock isolates the feedback-vs-ACK clocking choice:
// the same compensated exit, driven by rounds of FEEDBACK (CircuitStart)
// or by reception ACKs (a chained split-TCP-style ramp).
func AblationFeedbackClock(seed int64) ([]AblationRow, error) {
	type arm struct {
		label string
		opts  core.TransportOptions
	}
	arms := []arm{
		{"feedback rounds (paper)", core.TransportOptions{Policy: "circuitstart"}},
		{"ack clocked + compensation", core.TransportOptions{Policy: "slowstart-compensated"}},
		{"ack clocked + ack window", core.TransportOptions{Policy: "slowstart-compensated", WindowClock: transport.ClockAck}},
	}
	rows := make([]AblationRow, 0, len(arms))
	for _, a := range arms {
		p := DefaultCwndTraceParams(3)
		p.Seed = seed
		p.Transport = a.opts
		r, err := Fig1CwndTrace(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rowFromTrace(a.label, r))
	}
	return rows, nil
}

// AblationBottleneckPosition sweeps the bottleneck hop 1..hops and
// reports convergence per position — the paper's claim is position
// independence ("quickly adjust the cwnd independently of the
// bottleneck's location").
func AblationBottleneckPosition(seed int64, hops int) ([]AblationRow, error) {
	if hops <= 0 {
		hops = 3
	}
	rows := make([]AblationRow, 0, hops)
	for h := 1; h <= hops; h++ {
		p := DefaultCwndTraceParams(h)
		p.Seed = seed
		p.Hops = hops
		r, err := Fig1CwndTrace(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rowFromTrace(fmt.Sprintf("bottleneck at hop %d", h), r))
	}
	return rows, nil
}

// ConcurrencyRow is one concurrency level's outcome.
type ConcurrencyRow struct {
	Circuits            int
	MedianWith          float64 // seconds, CircuitStart
	MedianWithout       float64 // seconds, plain BackTap
	P90With, P90Without float64
	IncompleteWith      int
	IncompleteWithout   int
}

// AblationConcurrency sweeps the number of concurrent circuits in the
// aggregate experiment and reports TTLB quantiles for both policies.
func AblationConcurrency(seed int64, levels []int) ([]ConcurrencyRow, error) {
	if len(levels) == 0 {
		levels = []int{10, 25, 50, 100}
	}
	rows := make([]ConcurrencyRow, 0, len(levels))
	for _, k := range levels {
		p := DefaultCDFParams()
		p.Seed = seed
		p.Scenario.Circuits = k
		// Keep the relay population proportional so load per relay is
		// comparable across levels.
		p.Scenario.Relays.N = maxInt(12, k*4/5)
		res, err := Fig1DownloadCDF(p)
		if err != nil {
			return nil, err
		}
		with, without := res.Arm("circuitstart"), res.Arm("backtap")
		row := ConcurrencyRow{Circuits: k}
		if with.TTLB.Len() > 0 {
			row.MedianWith = with.TTLB.Median()
			row.P90With = with.TTLB.Quantile(0.9)
		}
		if without.TTLB.Len() > 0 {
			row.MedianWithout = without.TTLB.Median()
			row.P90Without = without.TTLB.Quantile(0.9)
		}
		row.IncompleteWith = with.Incomplete
		row.IncompleteWithout = without.Incomplete
		rows = append(rows, row)
	}
	return rows, nil
}

// DynamicRestartParams configures the future-work extension experiment:
// the bottleneck's capacity steps up mid-transfer and the sender must
// re-probe instead of crawling.
type DynamicRestartParams struct {
	Seed int64
	// BeforeRate, AfterRate are the bottleneck's capacity before and
	// after the step.
	BeforeRate, AfterRate units.DataRate
	// StepAt is when the capacity changes.
	StepAt sim.Time
	// Horizon bounds the run.
	Horizon sim.Time
	// RestartRounds configures the extension (-1 disables: baseline).
	RestartRounds int
}

// DynamicRestartResult reports how quickly the window followed the step.
type DynamicRestartResult struct {
	Params DynamicRestartParams
	// OptimalBefore/After are the model windows for the two regimes.
	OptimalBefore, OptimalAfter float64
	// WindowAtStep is the source window just before the step.
	WindowAtStep float64
	// RecoveryTime is how long after the step the window first reached
	// 80% of the new optimal (negative = never).
	RecoveryTime time.Duration
	// FinalCells is the window at the horizon.
	FinalCells float64
	// Restarts counts re-probes the source performed.
	Restarts uint64
}

// ExtensionDynamicRestart runs the capacity-step experiment: a circuit
// whose bottleneck relay's access rate steps from BeforeRate to
// AfterRate at StepAt (netem links apply a rate change from the next
// frame onward). With the re-probe extension the source should find the
// new capacity within a few round trips; without it, Vegas crawls up at
// one cell per RTT.
func ExtensionDynamicRestart(p DynamicRestartParams) (DynamicRestartResult, error) {
	if p.BeforeRate <= 0 || p.AfterRate <= 0 {
		return DynamicRestartResult{}, fmt.Errorf("experiments: rates must be positive")
	}
	if p.StepAt <= 0 {
		p.StepAt = 1 * sim.Second
	}
	if p.Horizon <= p.StepAt {
		p.Horizon = p.StepAt + 4*sim.Second
	}

	n := core.NewNetwork(p.Seed)
	fast := units.Mbps(100)
	delay := 5 * time.Millisecond
	relays := []netem.NodeID{"r1", "r2", "r3"}
	for _, id := range relays {
		rate := fast
		if id == "r2" {
			rate = p.BeforeRate
		}
		if _, err := n.AddRelay(id, netem.Symmetric(rate, delay, 0)); err != nil {
			return DynamicRestartResult{}, err
		}
	}
	opts := core.TransportOptions{RestartRounds: p.RestartRounds}
	c, err := n.BuildCircuit(core.CircuitSpec{
		Source: "client", Sink: "server",
		SourceAccess: netem.Symmetric(fast, delay, 0),
		SinkAccess:   netem.Symmetric(fast, delay, 0),
		Relays:       relays,
		Transport:    opts,
		TraceCwnd:    true,
	})
	if err != nil {
		return DynamicRestartResult{}, err
	}

	res := DynamicRestartResult{Params: p}
	res.OptimalBefore = c.ModelPath().OptimalSourceWindowCells()

	bottleneck := n.Relay("r2").Port()
	n.Clock().At(p.StepAt, func() {
		bottleneck.Uplink().SetRate(p.AfterRate)
		bottleneck.Downlink().SetRate(p.AfterRate)
	})

	// Keep the source backlogged across the whole horizon.
	size := units.DataSize(float64(p.AfterRate.BytesPerSecond()) * p.Horizon.Seconds() * 2)
	c.Transfer(size, nil)
	n.RunUntil(p.Horizon)

	// Optimal after the step, from a model path with the new rate.
	after := make([]model.Node, 0, 5)
	after = append(after, model.FromAccess(netem.Symmetric(fast, delay, 0)))
	for _, id := range relays {
		rate := fast
		if id == "r2" {
			rate = p.AfterRate
		}
		after = append(after, model.FromAccess(netem.Symmetric(rate, delay, 0)))
	}
	after = append(after, model.FromAccess(netem.Symmetric(fast, delay, 0)))
	res.OptimalAfter = model.NewPath(after).OptimalSourceWindowCells()

	tr := c.SourceTrace()
	if v, ok := tr.At(p.StepAt); ok {
		res.WindowAtStep = v
	}
	res.RecoveryTime = -1
	target := 0.8 * res.OptimalAfter
	for _, pt := range tr.Points() {
		if pt.At > p.StepAt && pt.Value >= target {
			res.RecoveryTime = pt.At.Sub(p.StepAt)
			break
		}
	}
	if last, ok := tr.Last(); ok {
		res.FinalCells = last.Value
	}
	res.Restarts = c.SourceSender().Stats().Restarts
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func orDefault(policy string) string {
	if policy == "" {
		return "circuitstart"
	}
	return policy
}
