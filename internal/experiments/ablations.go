package experiments

import (
	"fmt"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/model"
	"circuitstart/internal/netem"
	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
)

// AblationRow is one configuration's outcome in an ablation sweep over
// the single-circuit trace scenario.
type AblationRow struct {
	// Label names the configuration (γ value, policy name, …).
	Label string
	// ExitCwnd, OptimalCells, PeakCells, SettleTime, FinalCells mirror
	// CwndTraceResult.
	ExitCwnd     float64
	OptimalCells float64
	PeakCells    float64
	SettleTime   sim.Time
	FinalCells   float64
	// ExitTime is when startup ended.
	ExitTime sim.Time
}

func rowFromTrace(label string, r CwndTraceResult) AblationRow {
	return AblationRow{
		Label:        label,
		ExitCwnd:     r.ExitCwnd,
		OptimalCells: r.OptimalCells,
		PeakCells:    r.PeakCells,
		SettleTime:   r.SettleTime,
		FinalCells:   r.FinalCells,
		ExitTime:     r.ExitTime,
	}
}

// runTraceArms executes one multi-arm sweep over the trace scenario —
// every arm sees the identical topology and seed, and the runner fans
// the arms out across the CPUs — and renders one row per arm.
func runTraceArms(p CwndTraceParams, arms []scenario.Arm) ([]AblationRow, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	res, err := scenario.Run(p.Scenario(arms))
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, len(res.Arms))
	for i, arm := range res.Arms {
		rows[i] = rowFromTrace(arm.Name, traceResult(p, arm.Circuits[0]))
	}
	return rows, nil
}

// AblationGamma sweeps the start-up exit threshold γ (paper fixes γ=4)
// on the distant-bottleneck trace scenario.
func AblationGamma(seed int64, gammas []float64) ([]AblationRow, error) {
	if len(gammas) == 0 {
		gammas = []float64{1, 2, 4, 8, 16}
	}
	arms := make([]scenario.Arm, len(gammas))
	for i, g := range gammas {
		arms[i] = scenario.Arm{
			Name:      fmt.Sprintf("gamma=%g", g),
			Transport: core.TransportOptions{Gamma: g},
		}
	}
	p := DefaultCwndTraceParams(3)
	p.Seed = seed
	return runTraceArms(p, arms)
}

// AblationCompensation compares exit-window strategies: CircuitStart's
// measured compensation, the literal in-round count, halving, and no
// compensation at all (classic slow start), on the distant-bottleneck
// scenario where compensation matters most.
func AblationCompensation(seed int64) ([]AblationRow, error) {
	arms := []scenario.Arm{
		{Name: "measured (paper)", Transport: core.TransportOptions{Policy: "circuitstart", Compensation: transport.CompMeasured}},
		{Name: "counted (literal)", Transport: core.TransportOptions{Policy: "circuitstart", Compensation: transport.CompCounted}},
		{Name: "halving", Transport: core.TransportOptions{Policy: "circuitstart-halve"}},
		{Name: "classic slow start", Transport: core.TransportOptions{Policy: "slowstart"}},
	}
	for _, a := range arms {
		mustPolicy(orDefault(a.Transport.Policy))
	}
	p := DefaultCwndTraceParams(3)
	p.Seed = seed
	return runTraceArms(p, arms)
}

// AblationFeedbackClock isolates the feedback-vs-ACK clocking choice:
// the same compensated exit, driven by rounds of FEEDBACK (CircuitStart)
// or by reception ACKs (a chained split-TCP-style ramp).
func AblationFeedbackClock(seed int64) ([]AblationRow, error) {
	arms := []scenario.Arm{
		{Name: "feedback rounds (paper)", Transport: core.TransportOptions{Policy: "circuitstart"}},
		{Name: "ack clocked + compensation", Transport: core.TransportOptions{Policy: "slowstart-compensated"}},
		{Name: "ack clocked + ack window", Transport: core.TransportOptions{Policy: "slowstart-compensated", WindowClock: transport.ClockAck}},
	}
	p := DefaultCwndTraceParams(3)
	p.Seed = seed
	return runTraceArms(p, arms)
}

// AblationBottleneckPosition sweeps the bottleneck hop 1..hops and
// reports convergence per position — the paper's claim is position
// independence ("quickly adjust the cwnd independently of the
// bottleneck's location"). Each position is its own topology, so this
// sweep runs one single-arm scenario per hop.
func AblationBottleneckPosition(seed int64, hops int) ([]AblationRow, error) {
	if hops <= 0 {
		hops = 3
	}
	rows := make([]AblationRow, 0, hops)
	for h := 1; h <= hops; h++ {
		p := DefaultCwndTraceParams(h)
		p.Seed = seed
		p.Hops = hops
		r, err := Fig1CwndTrace(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rowFromTrace(fmt.Sprintf("bottleneck at hop %d", h), r))
	}
	return rows, nil
}

// AblationExtensions quantifies the dynamic-adaptation extensions this
// reproduction enables by default (DESIGN.md, deviations): the same
// distant-bottleneck trace with both, either, and neither of severe
// remeasure and accelerated re-probe.
func AblationExtensions(seed int64) ([]AblationRow, error) {
	arms := []scenario.Arm{
		{Name: "both extensions (default)", Transport: core.TransportOptions{}},
		{Name: "remeasure only", Transport: core.TransportOptions{RestartRounds: -1}},
		{Name: "re-probe only", Transport: core.TransportOptions{SevereRemeasure: -1}},
		{Name: "paper-pure (neither)", Transport: core.TransportOptions{RestartRounds: -1, SevereRemeasure: -1}},
	}
	p := DefaultCwndTraceParams(3)
	p.Seed = seed
	return runTraceArms(p, arms)
}

// AblationVegas sweeps the congestion-avoidance thresholds (α, β)
// around BackTap's defaults (2, 4) on the near-bottleneck trace, where
// the post-exit operating point is governed by avoidance.
func AblationVegas(seed int64, pairs [][2]float64) ([]AblationRow, error) {
	if len(pairs) == 0 {
		pairs = [][2]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}, {6, 12}}
	}
	arms := make([]scenario.Arm, len(pairs))
	for i, ab := range pairs {
		arms[i] = scenario.Arm{
			Name:      fmt.Sprintf("alpha=%g beta=%g", ab[0], ab[1]),
			Transport: core.TransportOptions{Alpha: ab[0], Beta: ab[1]},
		}
	}
	p := DefaultCwndTraceParams(1)
	p.Seed = seed
	return runTraceArms(p, arms)
}

// ConcurrencyRow is one concurrency level's outcome.
type ConcurrencyRow struct {
	Circuits            int
	MedianWith          float64 // seconds, CircuitStart
	MedianWithout       float64 // seconds, plain BackTap
	P90With, P90Without float64
	IncompleteWith      int
	IncompleteWithout   int
}

// AblationConcurrency sweeps the number of concurrent circuits in the
// aggregate experiment and reports TTLB quantiles for both policies.
func AblationConcurrency(seed int64, levels []int) ([]ConcurrencyRow, error) {
	if len(levels) == 0 {
		levels = []int{10, 25, 50, 100}
	}
	rows := make([]ConcurrencyRow, 0, len(levels))
	for _, k := range levels {
		p := DefaultCDFParams()
		p.Seed = seed
		p.Scenario.Circuits = k
		// Keep the relay population proportional so load per relay is
		// comparable across levels.
		p.Scenario.Relays.N = max(12, k*4/5)
		res, err := Fig1DownloadCDF(p)
		if err != nil {
			return nil, err
		}
		with, without := res.Arm("circuitstart"), res.Arm("backtap")
		row := ConcurrencyRow{Circuits: k}
		if with.TTLB.Len() > 0 {
			row.MedianWith = with.TTLB.Median()
			row.P90With = with.TTLB.Quantile(0.9)
		}
		if without.TTLB.Len() > 0 {
			row.MedianWithout = without.TTLB.Median()
			row.P90Without = without.TTLB.Quantile(0.9)
		}
		row.IncompleteWith = with.Incomplete
		row.IncompleteWithout = without.Incomplete
		rows = append(rows, row)
	}
	return rows, nil
}

// DynamicRestartParams configures the future-work extension experiment:
// the bottleneck's capacity steps up mid-transfer and the sender must
// re-probe instead of crawling.
type DynamicRestartParams struct {
	Seed int64
	// BeforeRate, AfterRate are the bottleneck's capacity before and
	// after the step.
	BeforeRate, AfterRate units.DataRate
	// StepAt is when the capacity changes.
	StepAt sim.Time
	// Horizon bounds the run.
	Horizon sim.Time
	// RestartRounds configures the extension (-1 disables: baseline).
	RestartRounds int
}

// DynamicRestartResult reports how quickly the window followed the step.
type DynamicRestartResult struct {
	Params DynamicRestartParams
	// OptimalBefore/After are the model windows for the two regimes.
	OptimalBefore, OptimalAfter float64
	// WindowAtStep is the source window just before the step.
	WindowAtStep float64
	// RecoveryTime is how long after the step the window first reached
	// 80% of the new optimal (negative = never).
	RecoveryTime time.Duration
	// FinalCells is the window at the horizon.
	FinalCells float64
	// Restarts counts re-probes the source performed.
	Restarts uint64
}

// ExtensionDynamicRestart runs the capacity-step experiment: a circuit
// whose bottleneck relay's access rate steps from BeforeRate to
// AfterRate at StepAt, declared as a scenario LinkEvent (netem links
// apply a rate change from the next frame onward). With the re-probe
// extension the source should find the new capacity within a few round
// trips; without it, Vegas crawls up at one cell per RTT.
func ExtensionDynamicRestart(p DynamicRestartParams) (DynamicRestartResult, error) {
	if p.BeforeRate <= 0 || p.AfterRate <= 0 {
		return DynamicRestartResult{}, fmt.Errorf("experiments: rates must be positive")
	}
	if p.StepAt <= 0 {
		p.StepAt = 1 * sim.Second
	}
	if p.Horizon <= p.StepAt {
		p.Horizon = p.StepAt + 4*sim.Second
	}

	fast := units.Mbps(100)
	delay := 5 * time.Millisecond
	relayIDs := []netem.NodeID{"r1", "r2", "r3"}
	relays := make([]scenario.RelaySpec, len(relayIDs))
	for i, id := range relayIDs {
		rate := fast
		if id == "r2" {
			rate = p.BeforeRate
		}
		relays[i] = scenario.RelaySpec{ID: id, Access: netem.Symmetric(rate, delay, 0)}
	}
	// Keep the source backlogged across the whole horizon.
	size := units.DataSize(float64(p.AfterRate.BytesPerSecond()) * p.Horizon.Seconds() * 2)
	sres, err := scenario.Runner{Workers: 1}.Run(scenario.Scenario{
		Name:     "extension-dynamic-restart",
		Seed:     p.Seed,
		Topology: scenario.Topology{Relays: relays},
		Circuits: scenario.CircuitSet{
			Count:        1,
			Paths:        [][]netem.NodeID{relayIDs},
			TransferSize: size,
		},
		Arms: []scenario.Arm{
			{Name: "dynamic", Transport: core.TransportOptions{RestartRounds: p.RestartRounds}},
		},
		ClientAccess:   netem.Symmetric(fast, delay, 0),
		Horizon:        p.Horizon,
		RunFullHorizon: true,
		Events:         []scenario.LinkEvent{{At: p.StepAt, Relay: "r2", Rate: p.AfterRate}},
		Probes:         scenario.Probes{TraceCwnd: true},
	})
	if err != nil {
		return DynamicRestartResult{}, err
	}
	o := sres.Arms[0].Circuits[0]

	res := DynamicRestartResult{Params: p}
	// The circuit's model path was built from the pre-step rates.
	res.OptimalBefore = o.OptimalCells

	// Optimal after the step, from a model path with the new rate.
	after := make([]model.Node, 0, 5)
	after = append(after, model.FromAccess(netem.Symmetric(fast, delay, 0)))
	for _, id := range relayIDs {
		rate := fast
		if id == "r2" {
			rate = p.AfterRate
		}
		after = append(after, model.FromAccess(netem.Symmetric(rate, delay, 0)))
	}
	after = append(after, model.FromAccess(netem.Symmetric(fast, delay, 0)))
	res.OptimalAfter = model.NewPath(after).OptimalSourceWindowCells()

	tr := o.Trace
	if v, ok := tr.At(p.StepAt); ok {
		res.WindowAtStep = v
	}
	res.RecoveryTime = -1
	target := 0.8 * res.OptimalAfter
	for _, pt := range tr.Points() {
		if pt.At > p.StepAt && pt.Value >= target {
			res.RecoveryTime = pt.At.Sub(p.StepAt)
			break
		}
	}
	if last, ok := tr.Last(); ok {
		res.FinalCells = last.Value
	}
	res.Restarts = o.Restarts
	return res, nil
}

func orDefault(policy string) string {
	if policy == "" {
		return "circuitstart"
	}
	return policy
}
