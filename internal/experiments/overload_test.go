package experiments

import (
	"bytes"
	"testing"

	"circuitstart/internal/resource"
	"circuitstart/internal/scenario"
	"circuitstart/internal/units"
)

// smallOverloadParams shrinks the default overload ablation for fast
// tests while keeping the limits tight enough to force kills.
func smallOverloadParams() OverloadParams {
	p := DefaultOverloadParams()
	p.CircuitPairs = 4
	p.RelayPairs = 1
	p.Bulk = 500 * units.Kilobyte
	p.Limits = resource.Limits{
		MaxCircuits: 6,
		MaxMemory:   64 * units.Kilobyte,
		Policy:      resource.KillHeaviest,
	}
	return p
}

func TestAblationOverloadReportsPressure(t *testing.T) {
	res, err := AblationOverload(smallOverloadParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range res.Arms {
		if got := len(arm.Circuits); got != 8 {
			t.Fatalf("arm %q has %d circuits, want 8", arm.Name, got)
		}
		rs := arm.Net.Resource
		if rs.Admitted == 0 {
			t.Fatalf("arm %q admitted nothing: %+v", arm.Name, rs)
		}
		if rs.Killed == 0 {
			t.Fatalf("arm %q killed nothing — limits never bit: %+v", arm.Name, rs)
		}
		if rs.MemHighWater == 0 {
			t.Fatalf("arm %q recorded no memory high-water", arm.Name)
		}
		if arm.TTLB.Len() == 0 {
			t.Fatalf("arm %q completed nothing", arm.Name)
		}
		if j := arm.JainTTLB(); j <= 0 || j > 1 {
			t.Fatalf("arm %q Jain index %v outside (0, 1]", arm.Name, j)
		}
		killed := 0
		for _, o := range arm.Circuits {
			if o.Killed {
				killed++
			}
			if o.Done && o.Killed {
				t.Fatalf("arm %q circuit %d both done and killed", arm.Name, o.Index)
			}
		}
		if killed == 0 {
			t.Fatalf("arm %q pooled kills but marked no outcome killed", arm.Name)
		}
	}
}

// TestAblationOverloadDeterministicAcrossWorkers pins the hard
// guarantee on the new subsystem: the rendered overload report —
// fairness indices, kill counts, memory high-water marks and all — is
// byte-identical for any Runner worker count.
func TestAblationOverloadDeterministicAcrossWorkers(t *testing.T) {
	sc := smallOverloadParams().Scenario()
	render := func(workers int) string {
		res, err := scenario.Runner{Workers: workers}.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one, eight := render(1), render(8)
	if one != eight {
		t.Fatalf("overload report differs between 1 and 8 workers\n--- 1 ---\n%s--- 8 ---\n%s", one, eight)
	}
}

func TestAblationOverloadValidation(t *testing.T) {
	cases := []func(*OverloadParams){
		func(p *OverloadParams) { p.CircuitPairs = 0 },
		func(p *OverloadParams) { p.RelayPairs = 0 },
		func(p *OverloadParams) { p.TrunkRate = 0 },
		func(p *OverloadParams) { p.Interactive = 0 },
		func(p *OverloadParams) { p.Bulk = -1 },
		func(p *OverloadParams) { p.Limits.MaxCircuits = -1 },
		func(p *OverloadParams) { p.HalfLife = -1 },
	}
	for i, mutate := range cases {
		p := smallOverloadParams()
		mutate(&p)
		if _, err := AblationOverload(p); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}
