package experiments

import (
	"strings"
	"testing"

	"circuitstart/internal/units"
)

// smallScaleParams shrinks the default scale ablation to test size:
// the structure (per-shard-count timing over byte-identical runs) is
// identical, only the population and workload are smaller.
func smallScaleParams() ScaleParams {
	p := DefaultScaleParams()
	p.Relays = 64
	p.Switches = 8
	p.InitialCircuits = 6
	p.Arrivals = 8
	p.ArrivalRate = 8
	p.TransferSize = 80 * units.Kilobyte
	p.ShardCounts = []int{1, 2, 4}
	return p
}

func TestAblationScale(t *testing.T) {
	p := smallScaleParams()
	res, err := AblationScale(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != len(p.ShardCounts) {
		t.Fatalf("%d runs, want %d", len(res.Runs), len(p.ShardCounts))
	}
	base := res.Runs[0]
	if base.Speedup != 1 {
		t.Fatalf("baseline speedup %v, want 1", base.Speedup)
	}
	if base.Built == 0 || base.TornDown == 0 {
		t.Fatalf("baseline run had no churn: %+v", base)
	}
	for _, run := range res.Runs[1:] {
		// AblationScale errors out if any shard count diverges, so the
		// summary columns must already agree; spot-check anyway.
		if run.MedianTTLB != base.MedianTTLB || run.Built != base.Built ||
			run.TornDown != base.TornDown || run.Rebuilt != base.Rebuilt {
			t.Fatalf("run %+v diverges from baseline %+v", run, base)
		}
		if run.Wall <= 0 || run.Speedup <= 0 {
			t.Fatalf("run at %d shards has no timing: %+v", run.Shards, run)
		}
	}
	var b strings.Builder
	if err := res.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"shards", "speedup", "GOMAXPROCS"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestScaleParamsValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ScaleParams)
	}{
		{"no relays", func(p *ScaleParams) { p.Relays = 0 }},
		{"one switch", func(p *ScaleParams) { p.Switches = 1 }},
		{"zero trunk delay", func(p *ScaleParams) { p.TrunkDelay = 0 }},
		{"no shard counts", func(p *ScaleParams) { p.ShardCounts = nil }},
		{"zero shard count", func(p *ScaleParams) { p.ShardCounts = []int{1, 0} }},
		{"rate without arrivals", func(p *ScaleParams) { p.Arrivals = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := smallScaleParams()
			tc.mutate(&p)
			if _, err := AblationScale(p); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
}
