package experiments

import (
	"testing"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

func TestAblationSharedBottleneck(t *testing.T) {
	p := DefaultSharedBottleneckParams()
	if testing.Short() {
		p.Circuits = 4
		p.TransferSize = 200 * units.Kilobyte
	}
	res, err := AblationSharedBottleneck(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 2 {
		t.Fatalf("%d arms", len(res.Arms))
	}
	for _, arm := range res.Arms {
		if arm.Incomplete != 0 {
			t.Fatalf("arm %s left %d transfers incomplete", arm.Name, arm.Incomplete)
		}
		if arm.TTLB.Len() != p.Circuits {
			t.Fatalf("arm %s has %d samples, want %d", arm.Name, arm.TTLB.Len(), p.Circuits)
		}
		if arm.Net.UnknownDst != 0 || arm.Net.Unroutable != 0 {
			t.Fatalf("arm %s dropped frames in the fabric: %+v", arm.Name, arm.Net)
		}
		// Every circuit's data crossed the shared west>east trunk.
		var westEast uint64
		for _, ts := range arm.Trunks() {
			if ts.Name == "trunk:west>east" {
				westEast = ts.Stats.CellsDelivered
			}
		}
		if westEast == 0 {
			t.Fatalf("arm %s: no frames on the shared trunk", arm.Name)
		}
		// The trunk actually queued — it was the shared bottleneck.
		for _, ts := range arm.Trunks() {
			if ts.Name == "trunk:west>east" && ts.Stats.MaxQueueLen < 2 {
				t.Errorf("arm %s: trunk max queue %d — not a bottleneck", arm.Name, ts.Stats.MaxQueueLen)
			}
		}
	}
	// All transfers complete and the medians are in a sane band: the
	// aggregate can't beat trunk line rate.
	wire := float64(p.TransferSize.Bytes()*8) * float64(p.Circuits) / (float64(p.TrunkRate.Mbit()) * 1e6)
	for _, arm := range res.Arms {
		if arm.TTLB.Quantile(1) < wire/4 {
			t.Errorf("arm %s max TTLB %.3fs implausibly beats the shared trunk (aggregate floor %.3fs)",
				arm.Name, arm.TTLB.Quantile(1), wire)
		}
	}
}

func TestAblationSharedBottleneckValidation(t *testing.T) {
	p := DefaultSharedBottleneckParams()
	p.Circuits = 0
	if _, err := AblationSharedBottleneck(p); err == nil {
		t.Error("zero circuits accepted")
	}
	p = DefaultSharedBottleneckParams()
	p.TrunkRate = 0
	if _, err := AblationSharedBottleneck(p); err == nil {
		t.Error("zero trunk rate accepted")
	}
	p = DefaultSharedBottleneckParams()
	p.TransferSize = 0
	if _, err := AblationSharedBottleneck(p); err == nil {
		t.Error("zero transfer accepted")
	}
}

func TestAblationSharedBottleneckDeterministic(t *testing.T) {
	p := DefaultSharedBottleneckParams()
	p.Circuits = 3
	p.TransferSize = 100 * units.Kilobyte
	p.Horizon = 120 * sim.Second
	a, err := AblationSharedBottleneck(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AblationSharedBottleneck(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Arms {
		as, bs := a.Arms[i].TTLB.Sorted(), b.Arms[i].TTLB.Sorted()
		for j := range as {
			if as[j] != bs[j] {
				t.Fatalf("arm %d sample %d: %v vs %v", i, j, as[j], bs[j])
			}
		}
	}
}
