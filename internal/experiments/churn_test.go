package experiments

import (
	"testing"

	"circuitstart/internal/scenario"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// smallChurnParams shrinks the default churn ablation for fast tests.
func smallChurnParams() ChurnParams {
	p := DefaultChurnParams()
	p.Relays = workload.DefaultRelayParams(16)
	p.InitialCircuits = 5
	p.Arrivals = 10
	p.ArrivalRate = 6
	p.TransferSize = 150 * units.Kilobyte
	p.Failures = 1
	return p
}

func TestAblationChurnLifecycle(t *testing.T) {
	res, err := AblationChurn(smallChurnParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range res.Arms {
		if got := len(arm.Circuits); got != 15 {
			t.Fatalf("arm %q has %d downloads, want 15", arm.Name, got)
		}
		c := arm.Churn
		if c.Built < 15 || c.TornDown != c.Built {
			t.Fatalf("arm %q lifecycle: %+v", arm.Name, c)
		}
		if c.Lifetime.Len() != c.TornDown {
			t.Fatalf("arm %q pooled %d lifetimes for %d teardowns", arm.Name, c.Lifetime.Len(), c.TornDown)
		}
		if arm.TTLB.Len() == 0 {
			t.Fatalf("arm %q completed nothing", arm.Name)
		}
	}
}

func TestAblationChurnDeterministicAcrossWorkers(t *testing.T) {
	p := smallChurnParams()
	sc, err := p.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	a, err := scenario.Runner{Workers: 1}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario.Runner{Workers: 8}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Arms {
		as, bs := a.Arms[i].TTLB.Sorted(), b.Arms[i].TTLB.Sorted()
		if len(as) != len(bs) {
			t.Fatalf("arm %d sample counts %d vs %d", i, len(as), len(bs))
		}
		for j := range as {
			if as[j] != bs[j] {
				t.Fatalf("arm %d sample %d: %v vs %v", i, j, as[j], bs[j])
			}
		}
		if a.Arms[i].Churn.Rebuilt != b.Arms[i].Churn.Rebuilt ||
			a.Arms[i].Churn.Built != b.Arms[i].Churn.Built {
			t.Fatalf("arm %d churn stats differ: %+v vs %+v", i, a.Arms[i].Churn, b.Arms[i].Churn)
		}
	}
}

func TestAblationChurnValidation(t *testing.T) {
	cases := []func(*ChurnParams){
		func(p *ChurnParams) { p.InitialCircuits = 0 },
		func(p *ChurnParams) { p.TransferSize = 0 },
		func(p *ChurnParams) { p.Arrivals = 5; p.ArrivalRate = 0 },
		func(p *ChurnParams) { p.Failures = -1 },
		func(p *ChurnParams) { p.Failures = p.Relays.N + 1 },
		func(p *ChurnParams) { p.FailAt = 0 },
	}
	for i, mutate := range cases {
		p := smallChurnParams()
		mutate(&p)
		if _, err := AblationChurn(p); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

// TestAblationChurnWidensTheGap asserts the headline property: in the
// startup-dominated churn regime — short downloads over fresh circuits,
// relay failures forcing repeated startups — CircuitStart's median win
// over plain BackTap exceeds its win in the static Figure-1 experiment.
func TestAblationChurnWidensTheGap(t *testing.T) {
	if testing.Short() {
		t.Skip("two full aggregate runs")
	}
	churn, err := AblationChurn(DefaultChurnParams())
	if err != nil {
		t.Fatal(err)
	}
	churnGap := churn.MedianGap("backtap", "circuitstart")
	static, err := Fig1DownloadCDF(DefaultCDFParams())
	if err != nil {
		t.Fatal(err)
	}
	staticGap := static.MedianGap("backtap", "circuitstart")
	if churnGap <= 0 {
		t.Fatalf("churn gap %.3fs — CircuitStart not ahead under churn", churnGap)
	}
	if churnGap <= staticGap {
		t.Fatalf("churn gap %.3fs not larger than static gap %.3fs", churnGap, staticGap)
	}
	for _, arm := range churn.Arms {
		if arm.Churn.Rebuilt == 0 {
			t.Fatalf("arm %q saw no rebuilds — the failure schedule missed every circuit", arm.Name)
		}
	}
}
