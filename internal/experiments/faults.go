package experiments

import (
	"fmt"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/faults"
	"circuitstart/internal/netem"
	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// FaultsParams configures the resilience ablation: CircuitStart vs
// classic slow start on an identical two-switch topology while three
// fault classes fire in sequence — Gilbert–Elliott burst loss on one
// guard's access links, a relay hang (blackhole with the relay still
// nominally "up"), and a backbone trunk flap that darkens every
// circuit at once. Endpoint stall detection and rebuild is enabled on
// both arms, so the comparison isolates what the startup policy costs
// when circuits must repeatedly pay a fresh startup to recover. The
// headline metrics are median time-to-recovery, availability and
// goodput-under-fault.
type FaultsParams struct {
	Seed int64
	// RelayPairs is how many guard/exit relay pairs span the trunk;
	// circuits are assigned round-robin.
	RelayPairs int
	// Circuits is the number of concurrent downloads.
	Circuits int
	// TrunkRate is the backbone trunk's per-direction capacity;
	// AccessRate every node's access capacity.
	TrunkRate, AccessRate units.DataRate
	// Delay is the access and trunk one-way propagation delay.
	Delay time.Duration
	// TransferSize is the fixed download per circuit — sized so the
	// transfers span the fault schedule below.
	TransferSize units.DataSize
	// LossFrom/LossUntil bound the burst-loss window on the second
	// guard; LossBad is the bad-state loss rate.
	LossFrom, LossUntil sim.Time
	LossBad             float64
	// HangAt hangs the first guard for HangFor.
	HangAt  sim.Time
	HangFor time.Duration
	// FlapAt takes the backbone trunk down for FlapFor.
	FlapAt  sim.Time
	FlapFor time.Duration
	// Recovery configures the stall detector (zero fields default).
	Recovery faults.Recovery
	// TrainSize caps cell-train coalescing on every link (≤1 = one
	// event per cell, the byte-identical baseline).
	TrainSize int
	// Horizon bounds each trial.
	Horizon sim.Time
}

// DefaultFaultsParams runs 8 downloads of 1.5 MB over 2 relay pairs
// behind a 16 Mbit/s trunk. Guard g-001 takes burst loss from 2 s to
// 20 s, guard g-000 hangs at 4 s for 6 s, and the trunk flaps at 12 s
// for 3 s. Recovery allows 8 rebuilds per download so every fault
// episode is survivable within the backoff budget.
func DefaultFaultsParams() FaultsParams {
	return FaultsParams{
		Seed:         42,
		RelayPairs:   2,
		Circuits:     8,
		TrunkRate:    units.Mbps(16),
		AccessRate:   units.Mbps(50),
		Delay:        5 * time.Millisecond,
		TransferSize: 1500 * units.Kilobyte,
		LossFrom:     2 * sim.Second,
		LossUntil:    20 * sim.Second,
		LossBad:      0.5,
		HangAt:       4 * sim.Second,
		HangFor:      6 * time.Second,
		FlapAt:       12 * sim.Second,
		FlapFor:      3 * time.Second,
		Recovery: faults.Recovery{
			Enabled:    true,
			MaxRetries: 8,
			RTOMax:     5 * time.Second,
		},
		Horizon: 120 * sim.Second,
	}
}

// validate checks the params and fills defaults in place.
func (p *FaultsParams) validate() error {
	if p.RelayPairs < 2 {
		return fmt.Errorf("experiments: faults ablation needs ≥2 relay pairs, got %d", p.RelayPairs)
	}
	if p.Circuits <= 0 {
		return fmt.Errorf("experiments: %d circuits", p.Circuits)
	}
	if p.TrunkRate <= 0 || p.AccessRate <= 0 {
		return fmt.Errorf("experiments: rates must be positive")
	}
	if p.TransferSize <= 0 {
		return fmt.Errorf("experiments: transfer size %v", p.TransferSize)
	}
	if !p.Recovery.Enabled {
		return fmt.Errorf("experiments: faults ablation needs Recovery.Enabled")
	}
	if p.Horizon <= 0 {
		p.Horizon = 120 * sim.Second
	}
	return nil
}

// Scenario renders the params into the declarative two-arm resilience
// scenario: the overload topology's two switches and shared relay
// pairs, a fault plan staggering burst loss, a relay hang and a trunk
// flap, and endpoint recovery on both arms.
func (p FaultsParams) Scenario() scenario.Scenario {
	access := netem.Symmetric(p.AccessRate, p.Delay, 0)
	spec := netem.GraphSpec{
		Switches: []netem.SwitchID{"east", "west"},
		Trunks: []netem.TrunkSpec{{
			A: "west", B: "east",
			Config: netem.TrunkConfig{Rate: p.TrunkRate, Delay: p.Delay},
		}},
		Homes: map[netem.NodeID]netem.SwitchID{},
	}
	relays := make([]scenario.RelaySpec, 0, 2*p.RelayPairs)
	for k := 0; k < p.RelayPairs; k++ {
		g := netem.NodeID(fmt.Sprintf("g-%03d", k))
		e := netem.NodeID(fmt.Sprintf("e-%03d", k))
		relays = append(relays,
			scenario.RelaySpec{ID: g, Access: access},
			scenario.RelaySpec{ID: e, Access: access})
		spec.Homes[g] = "west"
		spec.Homes[e] = "east"
	}
	paths := make([][]netem.NodeID, p.Circuits)
	for i := 0; i < p.Circuits; i++ {
		k := i % p.RelayPairs
		paths[i] = []netem.NodeID{
			netem.NodeID(fmt.Sprintf("g-%03d", k)),
			netem.NodeID(fmt.Sprintf("e-%03d", k)),
		}
		spec.Homes[netem.NodeID(fmt.Sprintf("client-%03d", i))] = "west"
		spec.Homes[netem.NodeID(fmt.Sprintf("server-%03d", i))] = "east"
	}
	plan := faults.Plan{
		BurstLoss: []faults.BurstLoss{{
			Relay: "g-001", From: p.LossFrom, Until: p.LossUntil,
			PGoodBad: 0.01, PBadGood: 0.1, LossBad: p.LossBad,
		}},
		Degrades: []faults.Degrade{{
			Relay: "g-000", Mode: faults.DegradeHang,
			At: p.HangAt, RecoverAfter: p.HangFor,
		}},
		Partitions: []faults.Partition{{
			TrunkA: "west", TrunkB: "east",
			At: p.FlapAt, HealAfter: p.FlapFor,
		}},
		Recovery: p.Recovery,
	}
	return scenario.Scenario{
		Name:     "ablation-faults",
		Seed:     p.Seed,
		Topology: scenario.Topology{Relays: relays, Fabric: &spec},
		Circuits: scenario.CircuitSet{
			Count:        p.Circuits,
			Paths:        paths,
			TransferSize: p.TransferSize,
			Arrival:      scenario.Arrival{Kind: scenario.ArriveUniform, Spread: 200 * time.Millisecond},
		},
		Arms: []scenario.Arm{
			{Name: "circuitstart", Transport: core.TransportOptions{Policy: "circuitstart"}},
			{Name: "slowstart", Transport: core.TransportOptions{Policy: "slowstart"}},
		},
		ClientAccess: access,
		Faults:       plan,
		TrainSize:    p.TrainSize,
		Horizon:      p.Horizon,
	}
}

// AblationFaults runs the resilience comparison: CircuitStart vs
// classic slow start under an identical fault schedule (burst loss,
// relay hang, trunk flap) with endpoint stall detection and rebuild on
// both arms. The returned Result carries the TTLB distributions plus
// the per-arm ResilienceStats (stalls, recoveries, retries, abandons,
// the TTR distribution, availability and goodput-under-fault).
func AblationFaults(p FaultsParams) (*scenario.Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return scenario.Run(p.Scenario())
}
