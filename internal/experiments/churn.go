package experiments

import (
	"fmt"
	"sort"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// ChurnParams configures the churn ablation: the startup-dominated
// regime the paper's scheme targets. Short downloads arrive over fresh
// circuits as an open-loop Poisson process, completed circuits are torn
// down (their state released back to the pools), and high-bandwidth
// relays fail mid-run — every affected download is rebuilt over a new
// path and pays a full circuit startup again. CircuitStart's fast
// compensated ramp is amortized over far less data per circuit than in
// the static Figure-1 experiment, so its median win should widen.
type ChurnParams struct {
	Seed int64
	// Relays shapes the generated Tor-like population.
	Relays workload.RelayParams
	// InitialCircuits start within the first 200 ms.
	InitialCircuits int
	// Arrivals further downloads arrive Poisson at ArrivalRate per
	// second, each over a freshly built circuit.
	Arrivals    int
	ArrivalRate float64
	// TransferSize is the fixed download per circuit — short, so
	// startup dominates the transfer time.
	TransferSize units.DataSize
	// Failures is how many of the population's highest-bandwidth
	// relays fail mid-run (they attract the most circuits, Tor's
	// selection being bandwidth-weighted). Failure k hits at
	// FailAt + k·FailEvery and heals RecoverAfter later.
	Failures     int
	FailAt       sim.Time
	FailEvery    time.Duration
	RecoverAfter time.Duration
	// TrainSize caps cell-train coalescing on every link (≤1 = one
	// event per cell, the byte-identical baseline).
	TrainSize int
	// Horizon bounds each trial.
	Horizon sim.Time
}

// DefaultChurnParams mirrors the aggregate experiment's population but
// replaces its static workload with churn: 10 initial + 40 arriving
// 250 kB downloads at 8 per second, and the two fattest relays failing
// at 1 s and 3 s for 3 s each.
func DefaultChurnParams() ChurnParams {
	return ChurnParams{
		Seed:            42,
		Relays:          workload.DefaultRelayParams(40),
		InitialCircuits: 10,
		Arrivals:        40,
		ArrivalRate:     8,
		TransferSize:    250 * units.Kilobyte,
		Failures:        2,
		FailAt:          1 * sim.Second,
		FailEvery:       2 * time.Second,
		RecoverAfter:    3 * time.Second,
		Horizon:         600 * sim.Second,
	}
}

// validate checks the params and fills defaults in place.
func (p *ChurnParams) validate() error {
	if p.InitialCircuits <= 0 {
		return fmt.Errorf("experiments: %d initial circuits", p.InitialCircuits)
	}
	if p.Arrivals < 0 || (p.Arrivals > 0) != (p.ArrivalRate > 0) {
		return fmt.Errorf("experiments: churn arrivals need both a count and a rate")
	}
	if p.TransferSize <= 0 {
		return fmt.Errorf("experiments: transfer size %v", p.TransferSize)
	}
	if p.Failures < 0 || p.Failures > p.Relays.N {
		return fmt.Errorf("experiments: %d failures over %d relays", p.Failures, p.Relays.N)
	}
	if p.Failures > 0 && (p.FailAt <= 0 || p.RecoverAfter <= 0) {
		return fmt.Errorf("experiments: failures need positive FailAt and RecoverAfter")
	}
	if p.Failures > 1 && p.FailEvery <= 0 {
		return fmt.Errorf("experiments: multiple failures need a positive FailEvery")
	}
	if p.Horizon <= 0 {
		p.Horizon = 600 * sim.Second
	}
	return nil
}

// Scenario renders the params into the declarative two-arm churn
// scenario. The relay failure schedule is derived from the same seeded
// population generation the trial itself performs, so the event list
// names exactly the relays that will exist.
func (p ChurnParams) Scenario() (scenario.Scenario, error) {
	relays, err := workload.GenerateRelays(p.Seed, p.Relays)
	if err != nil {
		return scenario.Scenario{}, err
	}
	// Fail the fattest relays: bandwidth-weighted selection concentrates
	// circuits on them, so their loss forces the most rebuilds.
	sort.Slice(relays, func(i, j int) bool {
		if relays[i].Desc.Bandwidth != relays[j].Desc.Bandwidth {
			return relays[i].Desc.Bandwidth > relays[j].Desc.Bandwidth
		}
		return relays[i].Desc.ID < relays[j].Desc.ID
	})
	var events []scenario.RelayEvent
	for k := 0; k < p.Failures; k++ {
		at := p.FailAt + sim.Time(k)*sim.Time(p.FailEvery)
		events = append(events,
			scenario.RelayEvent{At: at, Relay: relays[k].Desc.ID, Kind: scenario.RelayFail},
			scenario.RelayEvent{At: at + sim.Time(p.RecoverAfter), Relay: relays[k].Desc.ID, Kind: scenario.RelayRecover},
		)
	}
	pop := p.Relays
	return scenario.Scenario{
		Name:     "ablation-churn",
		Seed:     p.Seed,
		Topology: scenario.Topology{Population: &pop},
		Circuits: scenario.CircuitSet{
			Count:        p.InitialCircuits,
			TransferSize: p.TransferSize,
			Arrival:      scenario.Arrival{Kind: scenario.ArriveUniform, Spread: 200 * time.Millisecond},
		},
		Arms: []scenario.Arm{
			{Name: "circuitstart", Transport: core.TransportOptions{Policy: "circuitstart"}, Rebuild: true},
			{Name: "backtap", Transport: core.TransportOptions{Policy: "backtap"}, Rebuild: true},
		},
		CircuitEvents: scenario.CircuitEvents{
			ArrivalRate: p.ArrivalRate,
			Arrivals:    p.Arrivals,
		},
		RelayEvents: events,
		TrainSize:   p.TrainSize,
		Horizon:     p.Horizon,
	}, nil
}

// AblationChurn runs the dynamic-lifecycle comparison: CircuitStart vs
// plain BackTap under Poisson circuit arrivals, per-completion circuit
// teardown and relay failures with rebuilds, on identical topology,
// workload and failure schedule. The returned Result carries the TTLB
// distributions plus the per-arm ChurnStats (circuits built/torn
// down/rebuilt/aborted and the pooled lifetime distribution).
func AblationChurn(p ChurnParams) (*scenario.Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	sc, err := p.Scenario()
	if err != nil {
		return nil, err
	}
	return scenario.Run(sc)
}
