package experiments

import (
	"fmt"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/netem"
	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// SharedBottleneckParams configures the shared-trunk ablation: M
// disjoint circuits whose paths all cross one backbone trunk — the
// congestion structure a star cannot express, because on a star every
// circuit's bottleneck is an access link it owns alone.
type SharedBottleneckParams struct {
	Seed int64
	// Circuits is M, the number of circuits sharing the trunk.
	Circuits int
	// TrunkRate is the shared trunk's per-direction capacity — the
	// bottleneck, sized well below Circuits × AccessRate.
	TrunkRate units.DataRate
	// TrunkQueueCap bounds the trunk queue (0 = unbounded).
	TrunkQueueCap units.DataSize
	// AccessRate is every node's access capacity.
	AccessRate units.DataRate
	// Delay is the access and trunk one-way propagation delay.
	Delay time.Duration
	// TransferSize is the fixed transfer per circuit.
	TransferSize units.DataSize
	// Horizon bounds each trial.
	Horizon sim.Time
}

// DefaultSharedBottleneckParams puts 8 circuits with 100 Mbit/s
// accesses behind a 16 Mbit/s trunk: each circuit's fair share is a
// fraction of its access rate, so all contention is on the trunk.
func DefaultSharedBottleneckParams() SharedBottleneckParams {
	return SharedBottleneckParams{
		Seed:         42,
		Circuits:     8,
		TrunkRate:    units.Mbps(16),
		AccessRate:   units.Mbps(100),
		Delay:        5 * time.Millisecond,
		TransferSize: 500 * units.Kilobyte,
		Horizon:      300 * sim.Second,
	}
}

// Scenario renders the params into the declarative two-arm scenario:
// two switches joined by the shared trunk, and per circuit i a west
// guard g-i and an east exit e-i, so circuit i's forward path
// client-i → g-i → e-i → server-i crosses the trunk exactly once and
// all M circuits contend there.
func (p SharedBottleneckParams) Scenario() scenario.Scenario {
	access := netem.Symmetric(p.AccessRate, p.Delay, 0)
	spec := netem.GraphSpec{
		Switches: []netem.SwitchID{"east", "west"},
		Trunks: []netem.TrunkSpec{{
			A: "west", B: "east",
			Config: netem.TrunkConfig{Rate: p.TrunkRate, Delay: p.Delay, QueueCap: p.TrunkQueueCap},
		}},
		Homes: map[netem.NodeID]netem.SwitchID{
			// Single-circuit runs name the endpoints without an index.
			"client": "west", "server": "east",
		},
	}
	relays := make([]scenario.RelaySpec, 0, 2*p.Circuits)
	paths := make([][]netem.NodeID, p.Circuits)
	for i := 0; i < p.Circuits; i++ {
		g := netem.NodeID(fmt.Sprintf("g-%03d", i))
		e := netem.NodeID(fmt.Sprintf("e-%03d", i))
		relays = append(relays,
			scenario.RelaySpec{ID: g, Access: access},
			scenario.RelaySpec{ID: e, Access: access})
		paths[i] = []netem.NodeID{g, e}
		spec.Homes[g] = "west"
		spec.Homes[e] = "east"
		spec.Homes[netem.NodeID(fmt.Sprintf("client-%03d", i))] = "west"
		spec.Homes[netem.NodeID(fmt.Sprintf("server-%03d", i))] = "east"
	}
	return scenario.Scenario{
		Name:     "ablation-shared-bottleneck",
		Seed:     p.Seed,
		Topology: scenario.Topology{Relays: relays, Fabric: &spec},
		Circuits: scenario.CircuitSet{
			Count:        p.Circuits,
			Paths:        paths,
			TransferSize: p.TransferSize,
			Arrival:      scenario.Arrival{Kind: scenario.ArriveUniform, Spread: 200 * time.Millisecond},
		},
		Arms: []scenario.Arm{
			{Name: "circuitstart", Transport: core.TransportOptions{Policy: "circuitstart"}},
			{Name: "slowstart", Transport: core.TransportOptions{Policy: "slowstart"}},
		},
		ClientAccess: access,
		Horizon:      p.Horizon,
	}
}

// validate checks the params and fills defaults in place.
func (p *SharedBottleneckParams) validate() error {
	if p.Circuits <= 0 {
		return fmt.Errorf("experiments: %d circuits", p.Circuits)
	}
	if p.TrunkRate <= 0 || p.AccessRate <= 0 {
		return fmt.Errorf("experiments: rates must be positive")
	}
	if p.TransferSize <= 0 {
		return fmt.Errorf("experiments: transfer size %v", p.TransferSize)
	}
	if p.Horizon <= 0 {
		p.Horizon = 300 * sim.Second
	}
	return nil
}

// AblationSharedBottleneck runs M circuits across one shared trunk,
// CircuitStart vs classic slow start, on identical topology and seed.
// The returned Result carries the TTLB distributions and the trunk's
// pooled LinkStats (queue high-water mark, drops) per arm.
func AblationSharedBottleneck(p SharedBottleneckParams) (*scenario.Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return scenario.Run(p.Scenario())
}
