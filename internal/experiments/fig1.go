// Package experiments implements one entry point per figure of the
// paper plus the ablations listed in DESIGN.md. Every entry point is a
// thin adapter over the declarative scenario API: it renders its params
// into a scenario.Scenario, hands it to a scenario.Runner, and reshapes
// the aggregated Result into the figure's historical result struct —
// same signatures, same seeded outputs, but multi-arm sweeps now run
// their arms in parallel.
package experiments

import (
	"fmt"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/metrics"
	"circuitstart/internal/netem"
	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// CwndTraceParams configures the single-circuit cwnd-over-time runs of
// Figure 1's upper panels.
type CwndTraceParams struct {
	// Seed drives key generation (the scenario itself is deterministic).
	Seed int64
	// Hops is the number of relays on the circuit (paper: 3).
	Hops int
	// BottleneckHop places the slow relay: 1 = first relay ("distance
	// to bottleneck: 1 hop") … Hops = exit relay.
	BottleneckHop int
	// BottleneckRate and FastRate set the slow relay's and every other
	// node's access capacity.
	BottleneckRate, FastRate units.DataRate
	// AccessDelay is each node's one-way access propagation delay.
	AccessDelay time.Duration
	// Transport selects the start-up policy under test.
	Transport core.TransportOptions
	// TransferSize keeps the source backlogged for the horizon.
	TransferSize units.DataSize
	// Horizon bounds the simulation (paper plots 300 ms; a longer run
	// also shows the post-convergence behaviour).
	Horizon sim.Time
}

// DefaultCwndTraceParams mirrors the paper's setup: a 3-relay circuit
// with an 8 Mbit/s bottleneck in an otherwise 100 Mbit/s overlay.
func DefaultCwndTraceParams(bottleneckHop int) CwndTraceParams {
	return CwndTraceParams{
		Seed:           42,
		Hops:           3,
		BottleneckHop:  bottleneckHop,
		BottleneckRate: units.Mbps(8),
		FastRate:       units.Mbps(100),
		AccessDelay:    5 * time.Millisecond,
		TransferSize:   4 * units.Megabyte,
		Horizon:        2 * sim.Second,
	}
}

// Scenario renders the params into the declarative single-circuit
// scenario the runner executes, with one policy arm per entry. The
// first relay is "relay-1"; the bottleneck sits at BottleneckHop.
func (p CwndTraceParams) Scenario(arms []scenario.Arm) scenario.Scenario {
	relays := make([]scenario.RelaySpec, p.Hops)
	path := make([]netem.NodeID, p.Hops)
	for i := range relays {
		id := netem.NodeID(fmt.Sprintf("relay-%d", i+1))
		rate := p.FastRate
		if i == p.BottleneckHop-1 {
			rate = p.BottleneckRate
		}
		relays[i] = scenario.RelaySpec{ID: id, Access: netem.Symmetric(rate, p.AccessDelay, 0)}
		path[i] = id
	}
	return scenario.Scenario{
		Name:     "fig1-cwnd-trace",
		Seed:     p.Seed,
		Topology: scenario.Topology{Relays: relays},
		Circuits: scenario.CircuitSet{
			Count:        1,
			Paths:        [][]netem.NodeID{path},
			TransferSize: p.TransferSize,
		},
		Arms:           arms,
		ClientAccess:   netem.Symmetric(p.FastRate, p.AccessDelay, 0),
		Horizon:        p.Horizon,
		RunFullHorizon: true,
		Probes:         scenario.Probes{TraceCwnd: true},
	}
}

// validate checks the params and fills defaults in place.
func (p *CwndTraceParams) validate() error {
	if p.Hops < 1 {
		return fmt.Errorf("experiments: %d hops", p.Hops)
	}
	if p.BottleneckHop < 1 || p.BottleneckHop > p.Hops {
		return fmt.Errorf("experiments: bottleneck hop %d outside 1..%d", p.BottleneckHop, p.Hops)
	}
	if p.Horizon <= 0 {
		p.Horizon = 2 * sim.Second
	}
	return nil
}

// CwndTraceResult is one Figure-1-upper-panel run.
type CwndTraceResult struct {
	Params CwndTraceParams
	// Trace is the source's congestion window over time, in cells.
	Trace *metrics.Series
	// OptimalCells is the model's optimal source window (dashed line).
	OptimalCells float64
	// ExitCwnd and ExitTime describe the startup exit.
	ExitCwnd float64
	ExitTime sim.Time
	// PeakCells is the largest window reached (overshoot magnitude).
	PeakCells float64
	// SettleTime is when the window entered ±50% of the optimal and
	// stayed there for ≥ 80% of the remaining horizon (re-probe blips
	// tolerated). Negative if it never converged.
	SettleTime sim.Time
	// FinalCells is the window at the horizon.
	FinalCells float64
}

// CwndKBPoints renders the trace in the paper's units: (ms, KB).
func (r CwndTraceResult) CwndKBPoints() []metrics.Point {
	pts := make([]metrics.Point, r.Trace.Len())
	for i, p := range r.Trace.Points() {
		pts[i] = metrics.Point{At: p.At, Value: p.Value * 512 / 1000}
	}
	return pts
}

// traceResult reshapes one scenario circuit outcome into the figure's
// result struct, deriving the trace statistics.
func traceResult(p CwndTraceParams, o scenario.CircuitOutcome) CwndTraceResult {
	res := CwndTraceResult{
		Params:       p,
		Trace:        o.Trace,
		OptimalCells: o.OptimalCells,
		ExitCwnd:     o.ExitCwnd,
		ExitTime:     o.ExitTime,
	}
	if peak, ok := res.Trace.Max(); ok {
		res.PeakCells = peak
	}
	if last, ok := res.Trace.Last(); ok {
		res.FinalCells = last.Value
	}
	if at, ok := res.Trace.ConvergeTime(res.OptimalCells, res.OptimalCells*0.5, 0.2); ok {
		res.SettleTime = at
	} else {
		res.SettleTime = -1
	}
	return res
}

// Fig1CwndTrace runs one single-circuit trace (Figure 1, upper panels).
func Fig1CwndTrace(p CwndTraceParams) (CwndTraceResult, error) {
	if err := p.validate(); err != nil {
		return CwndTraceResult{}, err
	}
	res, err := scenario.Runner{Workers: 1}.Run(p.Scenario([]scenario.Arm{
		{Name: "trace", Transport: p.Transport},
	}))
	if err != nil {
		return CwndTraceResult{}, err
	}
	return traceResult(p, res.Arms[0].Circuits[0]), nil
}

// CDFParams configures the aggregate download experiment of Figure 1's
// lower panel.
type CDFParams struct {
	Seed int64
	// Scenario shapes the network and workload; the Transport.Policy
	// field is overridden per arm.
	Scenario workload.ScenarioParams
	// Policies are the arms to compare. Default: circuitstart ("with")
	// vs backtap ("without").
	Policies []string
	// Horizon bounds each arm's simulation.
	Horizon sim.Time
}

// DefaultCDFParams mirrors the paper: 50 concurrent circuits over a
// random Tor-like relay population.
func DefaultCDFParams() CDFParams {
	return CDFParams{
		Seed:     42,
		Scenario: workload.DefaultScenario(),
		Policies: []string{"circuitstart", "backtap"},
		Horizon:  600 * sim.Second,
	}
}

// ToScenario renders the params into the declarative aggregate scenario
// with one arm per policy.
func (p CDFParams) ToScenario() scenario.Scenario {
	arms := make([]scenario.Arm, len(p.Policies))
	for i, policy := range p.Policies {
		t := p.Scenario.Transport
		t.Policy = policy
		arms[i] = scenario.Arm{Name: policy, Transport: t}
	}
	var arrival scenario.Arrival
	if p.Scenario.StartSpread > 0 {
		arrival = scenario.Arrival{Kind: scenario.ArriveUniform, Spread: p.Scenario.StartSpread}
	}
	relays := p.Scenario.Relays
	return scenario.Scenario{
		Name:     "fig1-download-cdf",
		Seed:     p.Seed,
		Topology: scenario.Topology{Population: &relays},
		Circuits: scenario.CircuitSet{
			Count:        p.Scenario.Circuits,
			Hops:         p.Scenario.HopsPerCircuit,
			TransferSize: p.Scenario.TransferSize,
			Download:     p.Scenario.Download,
			Arrival:      arrival,
		},
		Arms:         arms,
		ClientAccess: p.Scenario.ClientAccess,
		Horizon:      p.Horizon,
		Probes:       scenario.Probes{TraceCwnd: p.Scenario.TraceCwnd},
	}
}

// CDFArm is one policy's outcome distribution.
type CDFArm struct {
	Policy     string
	TTLB       *metrics.Distribution // seconds
	Incomplete int
}

// CDFResult is the Figure-1-lower-panel comparison.
type CDFResult struct {
	Params CDFParams
	Arms   []CDFArm
}

// Arm returns the named arm, or nil.
func (r CDFResult) Arm(policy string) *CDFArm {
	for i := range r.Arms {
		if r.Arms[i].Policy == policy {
			return &r.Arms[i]
		}
	}
	return nil
}

// MedianGap returns armA's median TTLB minus armB's, in seconds —
// negative when A is faster. It panics if either arm is missing.
func (r CDFResult) MedianGap(a, b string) float64 {
	armA, armB := r.Arm(a), r.Arm(b)
	if armA == nil || armB == nil {
		panic(fmt.Sprintf("experiments: arms %q, %q not both present", a, b))
	}
	return armA.TTLB.Median() - armB.TTLB.Median()
}

// Fig1DownloadCDF runs the aggregate experiment once per policy arm on
// identical topologies and workloads (same seed), so differences in the
// TTLB distribution are attributable to the start-up scheme alone. Arms
// run in parallel, one worker per CPU.
func Fig1DownloadCDF(p CDFParams) (CDFResult, error) {
	if len(p.Policies) == 0 {
		p.Policies = []string{"circuitstart", "backtap"}
	}
	if p.Horizon <= 0 {
		p.Horizon = 600 * sim.Second
	}
	sres, err := scenario.Run(p.ToScenario())
	if err != nil {
		return CDFResult{}, err
	}
	res := CDFResult{Params: p}
	for _, arm := range sres.Arms {
		res.Arms = append(res.Arms, CDFArm{Policy: arm.Name, TTLB: arm.TTLB, Incomplete: arm.Incomplete})
	}
	return res, nil
}

// mustPolicy panics if the policy name is unknown — experiment tables
// are static, so a typo is a programming error.
func mustPolicy(name string) {
	if _, err := transport.PolicyByName(name, 0); err != nil {
		panic(err)
	}
}
