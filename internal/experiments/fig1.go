// Package experiments implements one entry point per figure of the
// paper plus the ablations listed in DESIGN.md. Each experiment returns
// a plain result struct that the CLI renders, benchmarks regenerate, and
// tests assert shape properties on.
package experiments

import (
	"fmt"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/metrics"
	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// CwndTraceParams configures the single-circuit cwnd-over-time runs of
// Figure 1's upper panels.
type CwndTraceParams struct {
	// Seed drives key generation (the scenario itself is deterministic).
	Seed int64
	// Hops is the number of relays on the circuit (paper: 3).
	Hops int
	// BottleneckHop places the slow relay: 1 = first relay ("distance
	// to bottleneck: 1 hop") … Hops = exit relay.
	BottleneckHop int
	// BottleneckRate and FastRate set the slow relay's and every other
	// node's access capacity.
	BottleneckRate, FastRate units.DataRate
	// AccessDelay is each node's one-way access propagation delay.
	AccessDelay time.Duration
	// Transport selects the start-up policy under test.
	Transport core.TransportOptions
	// TransferSize keeps the source backlogged for the horizon.
	TransferSize units.DataSize
	// Horizon bounds the simulation (paper plots 300 ms; a longer run
	// also shows the post-convergence behaviour).
	Horizon sim.Time
}

// DefaultCwndTraceParams mirrors the paper's setup: a 3-relay circuit
// with an 8 Mbit/s bottleneck in an otherwise 100 Mbit/s overlay.
func DefaultCwndTraceParams(bottleneckHop int) CwndTraceParams {
	return CwndTraceParams{
		Seed:           42,
		Hops:           3,
		BottleneckHop:  bottleneckHop,
		BottleneckRate: units.Mbps(8),
		FastRate:       units.Mbps(100),
		AccessDelay:    5 * time.Millisecond,
		TransferSize:   4 * units.Megabyte,
		Horizon:        2 * sim.Second,
	}
}

// CwndTraceResult is one Figure-1-upper-panel run.
type CwndTraceResult struct {
	Params CwndTraceParams
	// Trace is the source's congestion window over time, in cells.
	Trace *metrics.Series
	// OptimalCells is the model's optimal source window (dashed line).
	OptimalCells float64
	// ExitCwnd and ExitTime describe the startup exit.
	ExitCwnd float64
	ExitTime sim.Time
	// PeakCells is the largest window reached (overshoot magnitude).
	PeakCells float64
	// SettleTime is when the window entered ±50% of the optimal and
	// stayed there for ≥ 80% of the remaining horizon (re-probe blips
	// tolerated). Negative if it never converged.
	SettleTime sim.Time
	// FinalCells is the window at the horizon.
	FinalCells float64
}

// CwndKBPoints renders the trace in the paper's units: (ms, KB).
func (r CwndTraceResult) CwndKBPoints() []metrics.Point {
	pts := make([]metrics.Point, r.Trace.Len())
	for i, p := range r.Trace.Points() {
		pts[i] = metrics.Point{At: p.At, Value: p.Value * 512 / 1000}
	}
	return pts
}

// Fig1CwndTrace runs one single-circuit trace (Figure 1, upper panels).
func Fig1CwndTrace(p CwndTraceParams) (CwndTraceResult, error) {
	if p.Hops < 1 {
		return CwndTraceResult{}, fmt.Errorf("experiments: %d hops", p.Hops)
	}
	if p.BottleneckHop < 1 || p.BottleneckHop > p.Hops {
		return CwndTraceResult{}, fmt.Errorf("experiments: bottleneck hop %d outside 1..%d", p.BottleneckHop, p.Hops)
	}
	if p.Horizon <= 0 {
		p.Horizon = 2 * sim.Second
	}

	n := core.NewNetwork(p.Seed)
	relayIDs := make([]netem.NodeID, p.Hops)
	for i := range relayIDs {
		id := netem.NodeID(fmt.Sprintf("relay-%d", i+1))
		rate := p.FastRate
		if i == p.BottleneckHop-1 {
			rate = p.BottleneckRate
		}
		if _, err := n.AddRelay(id, netem.Symmetric(rate, p.AccessDelay, 0)); err != nil {
			return CwndTraceResult{}, err
		}
		relayIDs[i] = id
	}
	c, err := n.BuildCircuit(core.CircuitSpec{
		Source:       "client",
		Sink:         "server",
		SourceAccess: netem.Symmetric(p.FastRate, p.AccessDelay, 0),
		SinkAccess:   netem.Symmetric(p.FastRate, p.AccessDelay, 0),
		Relays:       relayIDs,
		Transport:    p.Transport,
		TraceCwnd:    true,
	})
	if err != nil {
		return CwndTraceResult{}, err
	}
	c.Transfer(p.TransferSize, nil)
	n.RunUntil(p.Horizon)

	res := CwndTraceResult{
		Params:       p,
		Trace:        c.SourceTrace(),
		OptimalCells: c.ModelPath().OptimalSourceWindowCells(),
	}
	st := c.SourceSender().Stats()
	res.ExitCwnd = st.ExitCwnd
	res.ExitTime = st.ExitTime
	if peak, ok := res.Trace.Max(); ok {
		res.PeakCells = peak
	}
	if last, ok := res.Trace.Last(); ok {
		res.FinalCells = last.Value
	}
	if at, ok := res.Trace.ConvergeTime(res.OptimalCells, res.OptimalCells*0.5, 0.2); ok {
		res.SettleTime = at
	} else {
		res.SettleTime = -1
	}
	return res, nil
}

// CDFParams configures the aggregate download experiment of Figure 1's
// lower panel.
type CDFParams struct {
	Seed int64
	// Scenario shapes the network and workload; the Transport.Policy
	// field is overridden per arm.
	Scenario workload.ScenarioParams
	// Policies are the arms to compare. Default: circuitstart ("with")
	// vs backtap ("without").
	Policies []string
	// Horizon bounds each arm's simulation.
	Horizon sim.Time
}

// DefaultCDFParams mirrors the paper: 50 concurrent circuits over a
// random Tor-like relay population.
func DefaultCDFParams() CDFParams {
	return CDFParams{
		Seed:     42,
		Scenario: workload.DefaultScenario(),
		Policies: []string{"circuitstart", "backtap"},
		Horizon:  600 * sim.Second,
	}
}

// CDFArm is one policy's outcome distribution.
type CDFArm struct {
	Policy     string
	TTLB       *metrics.Distribution // seconds
	Incomplete int
}

// CDFResult is the Figure-1-lower-panel comparison.
type CDFResult struct {
	Params CDFParams
	Arms   []CDFArm
}

// Arm returns the named arm, or nil.
func (r CDFResult) Arm(policy string) *CDFArm {
	for i := range r.Arms {
		if r.Arms[i].Policy == policy {
			return &r.Arms[i]
		}
	}
	return nil
}

// MedianGap returns armA's median TTLB minus armB's, in seconds —
// negative when A is faster. It panics if either arm is missing.
func (r CDFResult) MedianGap(a, b string) float64 {
	armA, armB := r.Arm(a), r.Arm(b)
	if armA == nil || armB == nil {
		panic(fmt.Sprintf("experiments: arms %q, %q not both present", a, b))
	}
	return armA.TTLB.Median() - armB.TTLB.Median()
}

// Fig1DownloadCDF runs the aggregate experiment once per policy arm on
// identical topologies and workloads (same seed), so differences in the
// TTLB distribution are attributable to the start-up scheme alone.
func Fig1DownloadCDF(p CDFParams) (CDFResult, error) {
	if len(p.Policies) == 0 {
		p.Policies = []string{"circuitstart", "backtap"}
	}
	if p.Horizon <= 0 {
		p.Horizon = 600 * sim.Second
	}
	res := CDFResult{Params: p}
	for _, policy := range p.Policies {
		sp := p.Scenario
		sp.Transport.Policy = policy
		sc, err := workload.Build(p.Seed, sp)
		if err != nil {
			return CDFResult{}, fmt.Errorf("experiments: arm %q: %w", policy, err)
		}
		arm := CDFArm{Policy: policy, TTLB: metrics.NewDistribution("ttlb_" + policy)}
		for _, r := range sc.Run(p.Horizon) {
			if !r.Done {
				arm.Incomplete++
				continue
			}
			arm.TTLB.Add(r.TTLB.Seconds())
		}
		res.Arms = append(res.Arms, arm)
	}
	return res, nil
}

// mustPolicy panics if the policy name is unknown — experiment tables
// are static, so a typo is a programming error.
func mustPolicy(name string) {
	if _, err := transport.PolicyByName(name, 0); err != nil {
		panic(err)
	}
}
