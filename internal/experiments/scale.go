package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// ScaleParams configures the scale ablation: one whole-network churn
// trial at a consensus-realistic relay count, repeated at each
// requested shard count. Every run must produce byte-identical results
// — the experiment asserts it — so the only thing that may change with
// the shard count is the wall clock.
type ScaleParams struct {
	Seed int64
	// Relays is the generated population size (consensus-realistic:
	// ≥ 1000).
	Relays int
	// Switches is the backbone ring size; relays home round-robin.
	Switches int
	// TrunkDelay is the ring's one-way trunk delay — the conservative
	// lookahead, and hence the barrier stride, of every sharded run.
	TrunkDelay time.Duration
	// InitialCircuits start within the first 200 ms; Arrivals more
	// follow Poisson at ArrivalRate per second, each over a fresh
	// circuit that is torn down when its download completes.
	InitialCircuits int
	Arrivals        int
	ArrivalRate     float64
	// TransferSize is the fixed download per circuit.
	TransferSize units.DataSize
	// TrainSize caps cell-train coalescing on every link.
	TrainSize int
	// ShardCounts lists the shard counts to time, in order. The first
	// entry is the baseline the speedups are relative to.
	ShardCounts []int
	// Horizon bounds each trial.
	Horizon sim.Time
}

// DefaultScaleParams runs 1,024 relays behind a 16-switch ring with 48
// initial and 96 arriving 100 kB downloads, timed at 1, 2 and 4 shards.
func DefaultScaleParams() ScaleParams {
	return ScaleParams{
		Seed:            42,
		Relays:          1024,
		Switches:        16,
		TrunkDelay:      10 * time.Millisecond,
		InitialCircuits: 48,
		Arrivals:        96,
		ArrivalRate:     32,
		TransferSize:    100 * units.Kilobyte,
		ShardCounts:     []int{1, 2, 4},
		Horizon:         600 * sim.Second,
	}
}

// validate checks the params and fills defaults in place.
func (p *ScaleParams) validate() error {
	if p.Relays <= 0 {
		return fmt.Errorf("experiments: %d relays", p.Relays)
	}
	if p.Switches <= 1 {
		return fmt.Errorf("experiments: scale ablation needs ≥ 2 switches to cut, got %d", p.Switches)
	}
	if p.TrunkDelay <= 0 {
		return fmt.Errorf("experiments: trunk delay %v", p.TrunkDelay)
	}
	if p.InitialCircuits <= 0 {
		return fmt.Errorf("experiments: %d initial circuits", p.InitialCircuits)
	}
	if p.Arrivals < 0 || (p.Arrivals > 0) != (p.ArrivalRate > 0) {
		return fmt.Errorf("experiments: scale arrivals need both a count and a rate")
	}
	if p.TransferSize <= 0 {
		return fmt.Errorf("experiments: transfer size %v", p.TransferSize)
	}
	if len(p.ShardCounts) == 0 {
		return fmt.Errorf("experiments: no shard counts to time")
	}
	for _, s := range p.ShardCounts {
		if s <= 0 {
			return fmt.Errorf("experiments: shard count %d", s)
		}
	}
	if p.Horizon <= 0 {
		p.Horizon = 600 * sim.Second
	}
	return nil
}

// Scenario renders the params into the single-arm whole-network churn
// scenario, parameterized by shard count.
func (p ScaleParams) Scenario(shards int) (scenario.Scenario, error) {
	bp := workload.DefaultBackboneParams(p.Relays, p.Switches)
	bp.TrunkDelay = p.TrunkDelay
	spec, err := workload.GenerateBackbone(bp)
	if err != nil {
		return scenario.Scenario{}, err
	}
	return scenario.Scenario{
		Name:     "ablation-scale",
		Seed:     p.Seed,
		Shards:   shards,
		Topology: scenario.Topology{Population: &bp.Relays, Fabric: &spec},
		Circuits: scenario.CircuitSet{
			Count:        p.InitialCircuits,
			TransferSize: p.TransferSize,
			Arrival:      scenario.Arrival{Kind: scenario.ArriveUniform, Spread: 200 * time.Millisecond},
		},
		Arms: []scenario.Arm{{
			Name:      "circuitstart",
			Transport: core.TransportOptions{Policy: "circuitstart"},
			Rebuild:   true,
		}},
		CircuitEvents: scenario.CircuitEvents{
			ArrivalRate: p.ArrivalRate,
			Arrivals:    p.Arrivals,
		},
		TrainSize: p.TrainSize,
		Horizon:   p.Horizon,
	}, nil
}

// ScaleRun is one timed shard count.
type ScaleRun struct {
	Shards int
	// Wall is the trial's wall-clock time (simulation only; topology
	// generation and validation are outside the timer).
	Wall time.Duration
	// Speedup is baselineWall / Wall (1.0 for the baseline entry).
	Speedup float64
	// MedianTTLB and the churn counters summarize the run's results —
	// identical across every row by construction.
	MedianTTLB float64
	Built      int
	TornDown   int
	Rebuilt    int
}

// ScaleResult is the scale ablation's outcome: one timed row per shard
// count over byte-identical simulations.
type ScaleResult struct {
	Params ScaleParams
	Runs   []ScaleRun
	// Cores is runtime.GOMAXPROCS at run time — speedups are bounded
	// by it, so a single-core box reports ~1.0 at every shard count.
	Cores int
}

// WriteText renders the speedup table.
func (r *ScaleResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-8s %12s %9s %12s %7s %9s %8s\n",
		"shards", "wall", "speedup", "median-ttlb", "built", "torndown", "rebuilt"); err != nil {
		return err
	}
	for _, run := range r.Runs {
		if _, err := fmt.Fprintf(w, "%-8d %12s %8.2fx %11.3fs %7d %9d %8d\n",
			run.Shards, run.Wall.Round(time.Millisecond), run.Speedup,
			run.MedianTTLB, run.Built, run.TornDown, run.Rebuilt); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "(GOMAXPROCS=%d; shard parallelism cannot beat the core count)\n", r.Cores)
	return err
}

// AblationScale times one whole-network churn trial at each shard
// count and asserts the results are byte-identical across all of them:
// the scale knob may only buy wall-clock time, never change a result.
func AblationScale(p ScaleParams) (*ScaleResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	res := &ScaleResult{Params: p, Cores: runtime.GOMAXPROCS(0)}
	var baseline *scenario.Result
	for i, shards := range p.ShardCounts {
		sc, err := p.Scenario(shards)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		out, err := scenario.Runner{Workers: 1}.Run(sc)
		wall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("experiments: scale at %d shards: %w", shards, err)
		}
		if i == 0 {
			baseline = out
		} else if err := sameScaleResult(baseline, out); err != nil {
			return nil, fmt.Errorf("experiments: %d shards diverged from %d: %w",
				shards, p.ShardCounts[0], err)
		}
		arm := out.Arms[0]
		run := ScaleRun{
			Shards:     shards,
			Wall:       wall,
			Speedup:    1,
			MedianTTLB: arm.TTLB.Median(),
			Built:      arm.Churn.Built,
			TornDown:   arm.Churn.TornDown,
			Rebuilt:    arm.Churn.Rebuilt,
		}
		if i > 0 && wall > 0 {
			run.Speedup = float64(res.Runs[0].Wall) / float64(wall)
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// sameScaleResult checks two runs of the scale scenario for the
// byte-identity the sharded engine guarantees: every outcome, every
// TTLB sample, every churn counter and every trunk statistic.
func sameScaleResult(a, b *scenario.Result) error {
	if len(a.Arms) != len(b.Arms) {
		return fmt.Errorf("arm counts %d vs %d", len(a.Arms), len(b.Arms))
	}
	for i := range a.Arms {
		aa, ba := a.Arms[i], b.Arms[i]
		if len(aa.Circuits) != len(ba.Circuits) {
			return fmt.Errorf("arm %d outcome counts %d vs %d", i, len(aa.Circuits), len(ba.Circuits))
		}
		for j := range aa.Circuits {
			ao, bo := aa.Circuits[j], ba.Circuits[j]
			if ao.TTLB != bo.TTLB || ao.Done != bo.Done || ao.Aborted != bo.Aborted ||
				ao.Rejected != bo.Rejected || ao.StartAt != bo.StartAt || ao.Rebuilds != bo.Rebuilds {
				return fmt.Errorf("arm %d outcome %d: %+v vs %+v", i, j, ao, bo)
			}
		}
		ac, bc := aa.Churn, ba.Churn
		if ac.Built != bc.Built || ac.TornDown != bc.TornDown ||
			ac.Rebuilt != bc.Rebuilt || ac.Aborted != bc.Aborted || ac.Rejected != bc.Rejected {
			return fmt.Errorf("arm %d churn: %+v vs %+v", i, ac, bc)
		}
		an, bn := aa.Net, ba.Net
		if an.UnknownDst != bn.UnknownDst || an.Unroutable != bn.Unroutable || an.SchedDrops != bn.SchedDrops {
			return fmt.Errorf("arm %d drops: %+v vs %+v", i, an, bn)
		}
		if len(an.Trunks) != len(bn.Trunks) {
			return fmt.Errorf("arm %d trunk counts %d vs %d", i, len(an.Trunks), len(bn.Trunks))
		}
		for j := range an.Trunks {
			if an.Trunks[j] != bn.Trunks[j] {
				return fmt.Errorf("arm %d trunk %d: %+v vs %+v", i, j, an.Trunks[j], bn.Trunks[j])
			}
		}
	}
	return nil
}
