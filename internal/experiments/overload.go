package experiments

import (
	"fmt"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/netem"
	"circuitstart/internal/relay"
	"circuitstart/internal/resource"
	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// OverloadParams configures the overload ablation: an interactive-vs-
// bulk circuit mix crammed onto a few shared relays behind a saturated
// backbone trunk, with per-relay resource limits turned on. The grid is
// CircuitStart vs classic slow start × FIFO vs Tor-style EWMA
// quiet-circuit scheduling, so the result separates what the startup
// policy buys from what the relay scheduler buys when the relay is the
// scarce resource. The headline metrics are Jain's fairness index over
// per-circuit TTLB, the resource managers' kill/rejection counters and
// the per-relay memory high-water mark.
type OverloadParams struct {
	Seed int64
	// CircuitPairs is the number of interactive+bulk circuit pairs; the
	// scenario runs 2×CircuitPairs circuits, sizes alternating.
	CircuitPairs int
	// RelayPairs is how many guard/exit relay pairs the circuits share,
	// assigned round-robin — CircuitPairs·2/RelayPairs circuits land on
	// each relay, so the per-relay limits actually bite.
	RelayPairs int
	// TrunkRate is the shared backbone trunk's per-direction capacity,
	// sized well below the offered load so the backbone stays saturated.
	TrunkRate units.DataRate
	// TrunkQueueCap bounds the trunk queue (0 = unbounded).
	TrunkQueueCap units.DataSize
	// AccessRate is every node's access capacity.
	AccessRate units.DataRate
	// Delay is the access and trunk one-way propagation delay.
	Delay time.Duration
	// Interactive and Bulk are the two transfer sizes of the mix.
	Interactive, Bulk units.DataSize
	// Limits is the per-relay resource envelope applied on every arm.
	Limits resource.Limits
	// HalfLife is the EWMA arms' cost half-life (0 = package default).
	HalfLife sim.Time
	// TrainSize caps cell-train coalescing on every link (≤1 = one
	// event per cell, the byte-identical baseline).
	TrainSize int
	// Horizon bounds each trial.
	Horizon sim.Time
}

// DefaultOverloadParams overloads 2 relay pairs with 8 interactive
// (50 kB) + 8 bulk (2 MB) circuits behind a 16 Mbit/s trunk. Each relay
// admits at most 6 circuits (kill-heaviest beyond that) and may hold at
// most 128 kB of cells, so admission kills and mid-run memory evictions
// both occur.
func DefaultOverloadParams() OverloadParams {
	return OverloadParams{
		Seed:          42,
		CircuitPairs:  8,
		RelayPairs:    2,
		TrunkRate:     units.Mbps(16),
		TrunkQueueCap: 256 * units.Kilobyte,
		AccessRate:    units.Mbps(50),
		Delay:         5 * time.Millisecond,
		Interactive:   50 * units.Kilobyte,
		Bulk:          2000 * units.Kilobyte,
		Limits: resource.Limits{
			MaxCircuits: 6,
			MaxMemory:   128 * units.Kilobyte,
			Policy:      resource.KillHeaviest,
		},
		Horizon: 300 * sim.Second,
	}
}

// validate checks the params and fills defaults in place.
func (p *OverloadParams) validate() error {
	if p.CircuitPairs <= 0 {
		return fmt.Errorf("experiments: %d circuit pairs", p.CircuitPairs)
	}
	if p.RelayPairs <= 0 {
		return fmt.Errorf("experiments: %d relay pairs", p.RelayPairs)
	}
	if p.TrunkRate <= 0 || p.AccessRate <= 0 {
		return fmt.Errorf("experiments: rates must be positive")
	}
	if p.Interactive <= 0 || p.Bulk <= 0 {
		return fmt.Errorf("experiments: transfer sizes %v / %v", p.Interactive, p.Bulk)
	}
	if err := p.Limits.Validate(); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	if p.HalfLife < 0 {
		return fmt.Errorf("experiments: negative half-life %v", p.HalfLife)
	}
	if p.Horizon <= 0 {
		p.Horizon = 300 * sim.Second
	}
	return nil
}

// Scenario renders the params into the declarative four-arm overload
// scenario: two switches joined by the saturated trunk, RelayPairs
// shared guard/exit pairs, and 2×CircuitPairs circuits assigned
// round-robin with sizes alternating interactive, bulk, interactive, …
func (p OverloadParams) Scenario() scenario.Scenario {
	access := netem.Symmetric(p.AccessRate, p.Delay, 0)
	spec := netem.GraphSpec{
		Switches: []netem.SwitchID{"east", "west"},
		Trunks: []netem.TrunkSpec{{
			A: "west", B: "east",
			Config: netem.TrunkConfig{Rate: p.TrunkRate, Delay: p.Delay, QueueCap: p.TrunkQueueCap},
		}},
		Homes: map[netem.NodeID]netem.SwitchID{},
	}
	relays := make([]scenario.RelaySpec, 0, 2*p.RelayPairs)
	for k := 0; k < p.RelayPairs; k++ {
		g := netem.NodeID(fmt.Sprintf("g-%03d", k))
		e := netem.NodeID(fmt.Sprintf("e-%03d", k))
		relays = append(relays,
			scenario.RelaySpec{ID: g, Access: access},
			scenario.RelaySpec{ID: e, Access: access})
		spec.Homes[g] = "west"
		spec.Homes[e] = "east"
	}
	count := 2 * p.CircuitPairs
	paths := make([][]netem.NodeID, count)
	for i := 0; i < count; i++ {
		k := i % p.RelayPairs
		paths[i] = []netem.NodeID{
			netem.NodeID(fmt.Sprintf("g-%03d", k)),
			netem.NodeID(fmt.Sprintf("e-%03d", k)),
		}
		spec.Homes[netem.NodeID(fmt.Sprintf("client-%03d", i))] = "west"
		spec.Homes[netem.NodeID(fmt.Sprintf("server-%03d", i))] = "east"
	}
	arm := func(policy, sched string) scenario.Arm {
		return scenario.Arm{
			Name:      policy + "/" + sched,
			Transport: core.TransportOptions{Policy: policy},
			Relay: relay.Config{
				Scheduler: sched,
				HalfLife:  p.HalfLife,
				Limits:    p.Limits,
			},
		}
	}
	return scenario.Scenario{
		Name:     "ablation-overload",
		Seed:     p.Seed,
		Topology: scenario.Topology{Relays: relays, Fabric: &spec},
		Circuits: scenario.CircuitSet{
			Count:   count,
			Paths:   paths,
			SizeMix: []units.DataSize{p.Interactive, p.Bulk},
			Arrival: scenario.Arrival{Kind: scenario.ArriveUniform, Spread: 200 * time.Millisecond},
		},
		Arms: []scenario.Arm{
			arm("circuitstart", "fifo"),
			arm("circuitstart", "ewma"),
			arm("slowstart", "fifo"),
			arm("slowstart", "ewma"),
		},
		ClientAccess: access,
		TrainSize:    p.TrainSize,
		Horizon:      p.Horizon,
	}
}

// AblationOverload runs the overload grid: CircuitStart vs classic slow
// start × FIFO vs EWMA scheduling, on identical topology, workload mix
// and resource limits. The returned Result carries the TTLB
// distributions plus the per-arm fairness/resource table (Jain's index,
// admissions, rejections, kills, memory high-water, scheduler drops).
func AblationOverload(p OverloadParams) (*scenario.Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return scenario.Run(p.Scenario())
}
