package core

import (
	"errors"
	"fmt"
	"time"

	"circuitstart/internal/arena"
	"circuitstart/internal/cell"
	"circuitstart/internal/endpoint"
	"circuitstart/internal/metrics"
	"circuitstart/internal/model"
	"circuitstart/internal/netem"
	"circuitstart/internal/onion"
	"circuitstart/internal/sim"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
)

// TransportOptions selects the start-up policy and congestion-control
// parameters applied at every hop of a circuit. The zero value is the
// paper's configuration: CircuitStart with γ = 4, Vegas α/β defaults,
// feedback-clocked windows.
type TransportOptions struct {
	// Policy names the start-up scheme: "circuitstart" (default),
	// "slowstart", "circuitstart-halve", "slowstart-compensated", or
	// "fixed" (see transport.PolicyByName).
	Policy string
	// Gamma is the start-up exit threshold (0 = paper default 4).
	Gamma float64
	// Compensation selects CircuitStart's exit-window estimator.
	Compensation transport.Compensation
	// Alpha, Beta are the Vegas avoidance thresholds (0 = defaults).
	Alpha, Beta float64
	// WindowClock selects feedback (default) or ack window accounting.
	WindowClock transport.WindowClock
	// InitialCwnd overrides the initial window (0 = paper default 2).
	InitialCwnd float64
	// MaxCwnd overrides the window cap (0 = transport default).
	MaxCwnd float64
	// FixedWindow, with Policy "fixed", pins the window to this many
	// cells and disables avoidance — the static-window baseline.
	FixedWindow float64
	// RestartRounds configures the dynamic re-probe extension: after
	// this many consecutive underutilized avoidance rounds with data
	// waiting, a sender re-enters the ramp. Zero selects
	// DefaultRestartRounds; a negative value disables the extension
	// (the strictly-as-published algorithm for ablations).
	//
	// The extension is on by default because a fully simultaneous
	// multi-hop ramp has transient interlocks the paper's description
	// does not address: a relay whose successor is still ramping can
	// read the successor's lagging window as a bottleneck, exit with a
	// tiny window, and then need seconds of one-cell-per-RTT growth to
	// recover. The paper names exactly this adaptation as future work.
	RestartRounds int
	// SevereRemeasure is the downward counterpart: when an avoidance
	// round's queue estimate exceeds Beta by this factor, re-run the
	// drain measurement and shrink straight to the result. Zero selects
	// DefaultSevereRemeasure; negative disables.
	SevereRemeasure float64
	// RTOMin, RTOMax bound the retransmission timeout (0 = defaults).
	RTOMin, RTOMax time.Duration
}

// Default dynamic-adaptation parameters (see TransportOptions).
const (
	DefaultRestartRounds   = 3
	DefaultSevereRemeasure = 4.0
)

// policy instantiates the startup scheme. A fresh value per sender keeps
// hops independent even if a policy ever grows state.
func (o TransportOptions) policy() (transport.Startup, error) {
	name := o.Policy
	if name == "" {
		name = "circuitstart"
	}
	p, err := transport.PolicyByName(name, o.Gamma)
	if err != nil {
		return nil, err
	}
	if cs, ok := p.(*transport.CircuitStart); ok {
		cs.Compensation = o.Compensation
	}
	return p, nil
}

// config renders the options into a transport.Config template (Clock,
// Circ, Send and hooks are filled in by the node that owns the sender).
func (o TransportOptions) config() (transport.Config, error) {
	p, err := o.policy()
	if err != nil {
		return transport.Config{}, err
	}
	restart := o.RestartRounds
	if restart == 0 {
		restart = DefaultRestartRounds
	} else if restart < 0 {
		restart = 0
	}
	remeasure := o.SevereRemeasure
	if remeasure == 0 {
		remeasure = DefaultSevereRemeasure
	} else if remeasure < 0 {
		remeasure = 0
	}
	cfg := transport.Config{
		Startup:         p,
		Alpha:           o.Alpha,
		Beta:            o.Beta,
		InitialCwnd:     o.InitialCwnd,
		MaxCwnd:         o.MaxCwnd,
		WindowClock:     o.WindowClock,
		RestartRounds:   restart,
		SevereRemeasure: remeasure,
		RTOMin:          o.RTOMin,
		RTOMax:          o.RTOMax,
	}
	if o.Policy == "fixed" {
		cfg.DisableAvoidance = true
		if o.FixedWindow > 0 {
			cfg.InitialCwnd = o.FixedWindow
			cfg.MinCwnd = o.FixedWindow
			cfg.MaxCwnd = o.FixedWindow
		}
	}
	return cfg, nil
}

// ErrCircuitRejected is wrapped by BuildCircuit when a relay's
// resource manager refuses the circuit at admission. Callers that
// tolerate rejection (overload scenarios) test for it with errors.Is;
// everything else treats it like any other build failure.
var ErrCircuitRejected = errors.New("circuit rejected at admission")

// CircuitSpec describes one circuit to build across a Network.
type CircuitSpec struct {
	// ID is the circuit identifier. Zero selects the next free ID.
	ID cell.CircID
	// Source and Sink name the endpoints' node IDs (attached here).
	Source, Sink netem.NodeID
	// SourceAccess, SinkAccess are the endpoints' star attachments.
	SourceAccess, SinkAccess netem.AccessConfig
	// Relays is the path, first hop first. All must be attached already.
	Relays []netem.NodeID
	// Transport configures every hop's sender.
	Transport TransportOptions
	// TraceCwnd records the source's congestion window over time
	// (Figure 1's upper panels) and each relay's onward window (the
	// back-propagation evidence).
	TraceCwnd bool
}

// Circuit is a built, runnable circuit.
type Circuit struct {
	id      cell.CircID
	network *Network
	spec    CircuitSpec

	source *endpoint.Source
	sink   *endpoint.Sink
	path   model.Path

	sourceTrace *metrics.Series   // source cwnd in cells
	relayTraces []*metrics.Series // per relay, onward cwnd in cells

	transferStart sim.Time
	ttlb          time.Duration
	done          bool

	builtAt  sim.Time
	closedAt sim.Time
	closed   bool
	killed   bool
}

// BuildCircuit constructs the circuit: per-hop key establishment with
// each relay, endpoint attachment, and transport wiring at every hop.
func (n *Network) BuildCircuit(spec CircuitSpec) (*Circuit, error) {
	if len(spec.Relays) == 0 {
		return nil, fmt.Errorf("core: circuit with no relays")
	}
	if spec.Source == "" || spec.Sink == "" {
		return nil, fmt.Errorf("core: circuit needs source and sink IDs")
	}
	if spec.ID == 0 {
		n.nextAutoCirc++
		spec.ID = cell.CircID(n.nextAutoCirc)
	}

	idents := make([]*onion.Identity, len(spec.Relays))
	for i, id := range spec.Relays {
		ident := n.identities[id]
		if ident == nil {
			return nil, fmt.Errorf("core: relay %q not attached", id)
		}
		idents[i] = ident
	}
	clientCrypto, relayKeys, err := onion.BuildCircuit(randReader{n.keyRNG}, idents)
	if err != nil {
		return nil, err
	}

	tmpl, err := spec.Transport.config()
	if err != nil {
		return nil, err
	}

	var c *Circuit
	if n.ar != nil {
		// Trial-lifetime object: draw from the arena slab so churned
		// circuits stop costing a heap allocation each. The pointer is
		// valid until the arena's next ResetTrial.
		slab := n.ar.Slot("core.circuits", func() any {
			return new(arena.Slab[Circuit])
		}).(*arena.Slab[Circuit])
		c = slab.New()
	} else {
		c = &Circuit{}
	}
	*c = Circuit{id: spec.ID, network: n, spec: spec, builtAt: n.Now()}

	// Wire the relay hops. Hop i of the circuit runs between node i and
	// node i+1 of the sequence source, relays..., sink.
	for i, id := range spec.Relays {
		r := n.relays[id]
		pred := spec.Source
		if i > 0 {
			pred = spec.Relays[i-1]
		}
		succ := spec.Sink
		if i < len(spec.Relays)-1 {
			succ = spec.Relays[i+1]
		}
		hopCfg := tmpl
		// Fresh policy value per sender.
		if hopCfg.Startup, err = spec.Transport.policy(); err != nil {
			return nil, err
		}
		if spec.TraceCwnd {
			trace := metrics.NewSeries(fmt.Sprintf("cwnd_cells_%s", id))
			c.relayTraces = append(c.relayTraces, trace)
			clock := n.clock
			hopCfg.OnCwnd = func(cwnd float64, _ transport.Phase) {
				trace.Record(clock.Now(), cwnd)
			}
		}
		if !r.AddHop(spec.ID, pred, succ, relayKeys[i], hopCfg, i == len(spec.Relays)-1) {
			// Admission refused: unwind the hops already wired so the
			// earlier relays release their (admitted) state.
			for _, prev := range spec.Relays[:i] {
				n.relays[prev].RemoveHop(spec.ID)
			}
			return nil, fmt.Errorf("core: circuit %d refused by relay %q: %w", spec.ID, id, ErrCircuitRejected)
		}
	}

	// Source endpoint with its own sender config.
	srcCfg := tmpl
	if srcCfg.Startup, err = spec.Transport.policy(); err != nil {
		return nil, err
	}
	if spec.TraceCwnd {
		c.sourceTrace = metrics.NewSeries("cwnd_cells_source")
		clock := n.clock
		srcCfg.OnCwnd = func(cwnd float64, _ transport.Phase) {
			c.sourceTrace.Record(clock.Now(), cwnd)
		}
	}
	c.source = endpoint.NewSource(spec.Source, n.fabric, spec.SourceAccess,
		spec.ID, clientCrypto, spec.Relays[0], srcCfg, n.lossRNG)
	c.source.UseCellPool(n.cellPool)
	c.source.UseSegmentPool(n.segPool)
	sinkCfg := tmpl
	if sinkCfg.Startup, err = spec.Transport.policy(); err != nil {
		return nil, err
	}
	c.sink = endpoint.NewSink(spec.Sink, n.fabric, spec.SinkAccess,
		spec.ID, spec.Relays[len(spec.Relays)-1], sinkCfg, n.lossRNG)
	c.sink.UseCellPool(n.cellPool)
	c.sink.UseSegmentPool(n.segPool)

	// Analytic model of the same path, including any backbone trunks
	// each hop crosses on a routed fabric.
	seq := make([]netem.NodeID, 0, len(spec.Relays)+2)
	seq = append(seq, spec.Source)
	seq = append(seq, spec.Relays...)
	seq = append(seq, spec.Sink)
	nodes := make([]model.Node, len(seq))
	nodes[0] = model.FromAccess(spec.SourceAccess)
	for i, id := range spec.Relays {
		nodes[i+1] = model.FromAccess(n.relays[id].Port().Config())
	}
	nodes[len(nodes)-1] = model.FromAccess(spec.SinkAccess)
	// Forward and reverse routes separately: equal-cost routing may
	// send the two directions over different physical trunks.
	fwd := make([][]model.Transit, len(seq)-1)
	rev := make([][]model.Transit, len(seq)-1)
	for i := 0; i+1 < len(seq); i++ {
		for _, l := range n.fabric.PathTransits(seq[i], seq[i+1]) {
			lc := l.Config()
			fwd[i] = append(fwd[i], model.Transit{Rate: lc.Rate, Delay: lc.Delay})
		}
		for _, l := range n.fabric.PathTransits(seq[i+1], seq[i]) {
			lc := l.Config()
			rev[i] = append(rev[i], model.Transit{Rate: lc.Rate, Delay: lc.Delay})
		}
	}
	c.path = model.NewPathWithTransits(nodes, fwd, rev)

	n.circuits[spec.ID] = c
	return c, nil
}

// MustBuildCircuit is BuildCircuit for static scenarios.
func (n *Network) MustBuildCircuit(spec CircuitSpec) *Circuit {
	c, err := n.BuildCircuit(spec)
	if err != nil {
		panic(err)
	}
	return c
}

// ID returns the circuit identifier.
func (c *Circuit) ID() cell.CircID { return c.id }

// Source returns the data-origin endpoint.
func (c *Circuit) Source() *endpoint.Source { return c.source }

// Sink returns the destination endpoint.
func (c *Circuit) Sink() *endpoint.Sink { return c.sink }

// SourceSender returns the source's hop sender — the subject of the
// paper's cwnd traces.
func (c *Circuit) SourceSender() *transport.Sender { return c.source.Sender() }

// RelaySender returns relay i's onward sender on this circuit.
func (c *Circuit) RelaySender(i int) *transport.Sender {
	return c.network.relays[c.spec.Relays[i]].HopSender(c.id)
}

// Hops returns the number of transport hops (relays + 1).
func (c *Circuit) Hops() int { return len(c.spec.Relays) + 1 }

// ModelPath returns the analytic model of the circuit's node sequence.
func (c *Circuit) ModelPath() model.Path { return c.path }

// SourceTrace returns the source's cwnd time series (cells), or nil if
// the circuit was built without TraceCwnd.
func (c *Circuit) SourceTrace() *metrics.Series { return c.sourceTrace }

// RelayTrace returns relay i's onward-cwnd time series (cells), or nil.
func (c *Circuit) RelayTrace(i int) *metrics.Series {
	if !c.spec.TraceCwnd || i < 0 || i >= len(c.relayTraces) {
		return nil
	}
	return c.relayTraces[i]
}

// Transfer starts a transfer of size application bytes from source to
// sink at the current virtual time. When the last byte arrives, the
// circuit records its time-to-last-byte and invokes onComplete (which
// may be nil). A circuit runs one transfer at a time.
func (c *Circuit) Transfer(size units.DataSize, onComplete func(ttlb time.Duration)) {
	if size <= 0 {
		panic(fmt.Sprintf("core: Transfer(%v)", size))
	}
	if c.closed {
		panic("core: Transfer on a torn-down circuit")
	}
	c.transferStart = c.network.Now()
	c.done = false
	c.sink.Expect(size, func(at sim.Time) {
		c.ttlb = at.Sub(c.transferStart)
		c.done = true
		if onComplete != nil {
			onComplete(c.ttlb)
		}
	})
	c.source.Send(size)
}

// TransferBackward starts a transfer of size application bytes in the
// download direction — from the sink (the destination server, outside
// the onion) to the source (the client, which unwraps every layer). The
// exit relay seals and onion-encrypts the cells; each relay toward the
// client adds its layer. When the last byte arrives at the client, the
// circuit records the time-to-last-byte and invokes onComplete (which
// may be nil).
func (c *Circuit) TransferBackward(size units.DataSize, onComplete func(ttlb time.Duration)) {
	if size <= 0 {
		panic(fmt.Sprintf("core: TransferBackward(%v)", size))
	}
	if c.closed {
		panic("core: TransferBackward on a torn-down circuit")
	}
	c.transferStart = c.network.Now()
	c.done = false
	c.source.ExpectDownload(size, func(at sim.Time) {
		c.ttlb = at.Sub(c.transferStart)
		c.done = true
		if onComplete != nil {
			onComplete(c.ttlb)
		}
	})
	c.sink.SendBackward(size)
}

// Teardown closes the circuit and releases its state: every relay on
// the path drops the circuit's hop (both directions' transport
// instances close, their timer events returning to the clock's free
// list), and the endpoints shut down, recycling their never-transmitted
// packetization cells to the network's cell pool. A transfer still in
// progress is abandoned — Done stays false and no completion callback
// fires. Frames already in flight when the circuit dies are absorbed
// (relays count them as UnknownCircuit, endpoints drop them silently).
// Teardown is idempotent.
func (c *Circuit) Teardown() {
	if c.closed {
		return
	}
	c.closed = true
	c.closedAt = c.network.Now()
	delete(c.network.circuits, c.id)
	for _, id := range c.spec.Relays {
		if r := c.network.relays[id]; r != nil {
			r.RemoveHop(c.id)
		}
	}
	c.source.Close()
	c.sink.Close()
}

// Closed reports whether the circuit has been torn down.
func (c *Circuit) Closed() bool { return c.closed }

// Killed reports whether the teardown was a resource-limit eviction.
func (c *Circuit) Killed() bool { return c.killed }

// BuiltAt returns the virtual time the circuit was built.
func (c *Circuit) BuiltAt() sim.Time { return c.builtAt }

// ClosedAt returns when the circuit was torn down (meaningful only
// when Closed reports true).
func (c *Circuit) ClosedAt() sim.Time { return c.closedAt }

// Lifetime returns how long the circuit has been alive: ClosedAt −
// BuiltAt once torn down, now − BuiltAt while still up.
func (c *Circuit) Lifetime() time.Duration {
	if c.closed {
		return c.closedAt.Sub(c.builtAt)
	}
	return c.network.Now().Sub(c.builtAt)
}

// Relays returns the circuit's relay path, first hop first. The slice
// is shared; callers must not modify it.
func (c *Circuit) Relays() []netem.NodeID { return c.spec.Relays }

// Done reports whether the current transfer has completed.
func (c *Circuit) Done() bool { return c.done }

// TTLB returns the most recent transfer's time-to-last-byte. ok is
// false while a transfer is still in progress or none ever ran.
func (c *Circuit) TTLB() (time.Duration, bool) { return c.ttlb, c.done }
