package core

import (
	"fmt"
	"time"

	"circuitstart/internal/arena"
	"circuitstart/internal/cell"
	"circuitstart/internal/endpoint"
	"circuitstart/internal/metrics"
	"circuitstart/internal/model"
	"circuitstart/internal/netem"
	"circuitstart/internal/onion"
	"circuitstart/internal/relay"
	"circuitstart/internal/sim"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
)

// ShardedNetwork is a Network partitioned across per-core shards: one
// core.Network per shard, each with its own clock, arena, frame/cell/
// segment pools and relay set, coupled only through the ShardedFabric's
// conservative-lookahead boundary queues.
//
// Determinism contract: identities and circuit keys are drawn from ONE
// global "onion-keys" stream in global AddRelay/BuildCircuit order —
// exactly the order the unsharded engine consumes — so a sharded trial
// is byte-identical to the unsharded one for any shard count. All
// construction, circuit builds and teardowns are control-plane
// operations: they may only run while every shard clock is parked (at
// t = 0 or inside a RunWindows barrier).
type ShardedNetwork struct {
	seed   int64
	fab    *netem.ShardedFabric
	shards []*Network

	keyRNG     *sim.RNG
	identities map[netem.NodeID]*onion.Identity
	relayShard map[netem.NodeID]int

	nextAutoCirc uint32
	circuits     map[cell.CircID]*ShardedCircuit
}

// NewShardedNetwork partitions spec into at most shards shards and
// builds one per-shard Network. arenas, when non-nil, supplies one
// arena per effective shard (len ≥ plan.Shards; extra entries are
// ignored) so trial loops reuse pools across trials; nil allocates
// fresh substrate.
func NewShardedNetwork(seed int64, spec netem.GraphSpec, shards int, arenas []*arena.Arena) (*ShardedNetwork, error) {
	plan, err := netem.PartitionGraph(spec, shards)
	if err != nil {
		return nil, err
	}
	if arenas != nil && len(arenas) < plan.Shards {
		return nil, fmt.Errorf("core: %d arenas for %d shards", len(arenas), plan.Shards)
	}
	if arenas == nil {
		arenas = make([]*arena.Arena, plan.Shards)
		for i := range arenas {
			arenas[i] = arena.New()
		}
	}
	clocks := make([]*sim.Clock, plan.Shards)
	for i := range clocks {
		clocks[i] = arenas[i].Clock
	}
	var fab *netem.ShardedFabric
	sn := &ShardedNetwork{
		seed:       seed,
		keyRNG:     sim.NewRNG(seed, "onion-keys"),
		identities: make(map[netem.NodeID]*onion.Identity),
		relayShard: make(map[netem.NodeID]int),
		circuits:   make(map[cell.CircID]*ShardedCircuit),
	}
	sn.shards = make([]*Network, plan.Shards)
	for i := 0; i < plan.Shards; i++ {
		i := i
		ar := arenas[i]
		sn.shards[i] = newNetwork(ar, seed, func(clock *sim.Clock, lossRNG *sim.RNG) netem.Fabric {
			if fab == nil {
				fab = netem.NewShardedFabric(spec, plan, clocks, lossRNG)
			}
			return fab.Shard(i)
		})
	}
	sn.fab = fab
	return sn, nil
}

// Fabric returns the sharded fabric (global trunk list, path queries,
// boundary accounting).
func (sn *ShardedNetwork) Fabric() *netem.ShardedFabric { return sn.fab }

// NumShards returns the effective shard count.
func (sn *ShardedNetwork) NumShards() int { return len(sn.shards) }

// Shard returns shard i's Network. Use it only for shard-local,
// control-plane inspection (relay stats, scheduler drops).
func (sn *ShardedNetwork) Shard(i int) *Network { return sn.shards[i] }

// Seed returns the experiment seed.
func (sn *ShardedNetwork) Seed() int64 { return sn.seed }

// ConfigureRelays applies the scheduling template on every shard (and,
// for the EWMA discipline, each shard's trunk links — boundary egress
// links included, so backbone scheduling is cut-invariant). Resource
// limits are rejected: an eviction tears a circuit down network-wide
// mid-window, which would touch foreign shards outside a barrier.
func (sn *ShardedNetwork) ConfigureRelays(cfg relay.Config) error {
	if cfg.Limits.Enabled() {
		return fmt.Errorf("core: resource limits are not supported on a sharded network")
	}
	for _, n := range sn.shards {
		if err := n.ConfigureRelays(cfg); err != nil {
			return err
		}
	}
	return nil
}

// AddRelay attaches a relay on the shard owning its home switch. The
// identity comes from the global key stream, in call order.
func (sn *ShardedNetwork) AddRelay(id netem.NodeID, access netem.AccessConfig) (*relay.Relay, error) {
	if _, dup := sn.relayShard[id]; dup {
		return nil, fmt.Errorf("core: relay %q already added", id)
	}
	ident, err := onion.NewIdentity(randReader{sn.keyRNG})
	if err != nil {
		return nil, fmt.Errorf("core: relay %q identity: %w", id, err)
	}
	shard := sn.fab.ShardOf(id)
	n := sn.shards[shard]
	r := relay.New(id, n.fabric, access, n.lossRNG)
	r.UseSegmentPool(n.segPool)
	if err := r.Configure(n.relayCfg, n.killCircuit); err != nil {
		return nil, fmt.Errorf("core: relay %q: %w", id, err)
	}
	n.relays[id] = r
	n.identities[id] = ident
	sn.identities[id] = ident
	sn.relayShard[id] = shard
	return r, nil
}

// Relay returns an attached relay regardless of shard, or nil.
func (sn *ShardedNetwork) Relay(id netem.NodeID) *relay.Relay {
	shard, ok := sn.relayShard[id]
	if !ok {
		return nil
	}
	return sn.shards[shard].relays[id]
}

// RelayShard returns the shard a relay lives on and its clock, or
// (-1, nil) when unknown. Fault installers use it to schedule each
// episode on the owning shard.
func (sn *ShardedNetwork) RelayShard(id netem.NodeID) (int, *sim.Clock) {
	shard, ok := sn.relayShard[id]
	if !ok {
		return -1, nil
	}
	return shard, sn.shards[shard].clock
}

// SchedDrops totals scheduler drops across every shard.
func (sn *ShardedNetwork) SchedDrops() uint64 {
	var total uint64
	for _, n := range sn.shards {
		total += n.SchedDrops()
	}
	return total
}

// RunWindows executes the sharded trial (see ShardedFabric.RunWindows).
func (sn *ShardedNetwork) RunWindows(horizon sim.Time, barrier func(now sim.Time) bool) sim.Time {
	return sn.fab.RunWindows(horizon, barrier)
}

// SetWindow pins the barrier stride to a partition-independent value
// (see ShardedFabric.SetWindow).
func (sn *ShardedNetwork) SetWindow(d time.Duration) { sn.fab.SetWindow(d) }

// Trunk returns the directed trunk link a → b regardless of shard, or
// nil when the spec has no such trunk.
func (sn *ShardedNetwork) Trunk(a, b netem.SwitchID) *netem.Link { return sn.fab.Trunk(a, b) }

// TrunkClock returns the clock of the shard owning the a → b direction
// of a trunk — the only clock fault episodes conditioning that link may
// schedule on.
func (sn *ShardedNetwork) TrunkClock(a, b netem.SwitchID) *sim.Clock {
	return sn.shards[sn.fab.ShardOfSwitch(a)].clock
}

// RelayClock returns the clock of the shard a relay lives on, or nil
// when the relay is unknown.
func (sn *ShardedNetwork) RelayClock(id netem.NodeID) *sim.Clock {
	_, clk := sn.RelayShard(id)
	return clk
}

// ShardedCircuit is a circuit whose endpoints and relays may live on
// different shards. The data plane is unchanged — cells flow through
// relays and boundary links exactly as on one clock; only the
// control plane (build, transfer scheduling, teardown) is barrier-bound.
type ShardedCircuit struct {
	id   cell.CircID
	sn   *ShardedNetwork
	spec CircuitSpec

	source    *endpoint.Source
	sink      *endpoint.Sink
	srcShard  int
	sinkShard int
	path      model.Path

	sourceTrace *metrics.Series
	relayTraces []*metrics.Series

	transferStart sim.Time
	ttlb          time.Duration
	done          bool

	builtAt  sim.Time
	closedAt sim.Time
	closed   bool
}

// BuildCircuit mirrors Network.BuildCircuit across shards: the global
// key stream is consumed in the same order, each relay hop is wired on
// its owning shard, and the endpoints attach on theirs. Call only while
// all shard clocks are parked at the same instant.
func (sn *ShardedNetwork) BuildCircuit(spec CircuitSpec) (*ShardedCircuit, error) {
	if len(spec.Relays) == 0 {
		return nil, fmt.Errorf("core: circuit with no relays")
	}
	if spec.Source == "" || spec.Sink == "" {
		return nil, fmt.Errorf("core: circuit needs source and sink IDs")
	}
	if spec.ID == 0 {
		sn.nextAutoCirc++
		spec.ID = cell.CircID(sn.nextAutoCirc)
	}

	idents := make([]*onion.Identity, len(spec.Relays))
	for i, id := range spec.Relays {
		ident := sn.identities[id]
		if ident == nil {
			return nil, fmt.Errorf("core: relay %q not attached", id)
		}
		idents[i] = ident
	}
	clientCrypto, relayKeys, err := onion.BuildCircuit(randReader{sn.keyRNG}, idents)
	if err != nil {
		return nil, err
	}
	tmpl, err := spec.Transport.config()
	if err != nil {
		return nil, err
	}

	srcShard := sn.fab.ShardOf(spec.Source)
	sinkShard := sn.fab.ShardOf(spec.Sink)
	c := &ShardedCircuit{
		id: spec.ID, sn: sn, spec: spec,
		srcShard: srcShard, sinkShard: sinkShard,
		builtAt: sn.shards[srcShard].Now(),
	}

	for i, id := range spec.Relays {
		shard, ok := sn.relayShard[id]
		if !ok {
			return nil, fmt.Errorf("core: relay %q not attached", id)
		}
		n := sn.shards[shard]
		r := n.relays[id]
		pred := spec.Source
		if i > 0 {
			pred = spec.Relays[i-1]
		}
		succ := spec.Sink
		if i < len(spec.Relays)-1 {
			succ = spec.Relays[i+1]
		}
		hopCfg := tmpl
		if hopCfg.Startup, err = spec.Transport.policy(); err != nil {
			return nil, err
		}
		if spec.TraceCwnd {
			trace := metrics.NewSeries(fmt.Sprintf("cwnd_cells_%s", id))
			c.relayTraces = append(c.relayTraces, trace)
			clock := n.clock
			hopCfg.OnCwnd = func(cwnd float64, _ transport.Phase) {
				trace.Record(clock.Now(), cwnd)
			}
		}
		if !r.AddHop(spec.ID, pred, succ, relayKeys[i], hopCfg, i == len(spec.Relays)-1) {
			for _, prev := range spec.Relays[:i] {
				sn.Relay(prev).RemoveHop(spec.ID)
			}
			return nil, fmt.Errorf("core: circuit %d refused by relay %q: %w", spec.ID, id, ErrCircuitRejected)
		}
	}

	srcNet, sinkNet := sn.shards[srcShard], sn.shards[sinkShard]
	srcCfg := tmpl
	if srcCfg.Startup, err = spec.Transport.policy(); err != nil {
		return nil, err
	}
	if spec.TraceCwnd {
		c.sourceTrace = metrics.NewSeries("cwnd_cells_source")
		clock := srcNet.clock
		srcCfg.OnCwnd = func(cwnd float64, _ transport.Phase) {
			c.sourceTrace.Record(clock.Now(), cwnd)
		}
	}
	c.source = endpoint.NewSource(spec.Source, srcNet.fabric, spec.SourceAccess,
		spec.ID, clientCrypto, spec.Relays[0], srcCfg, srcNet.lossRNG)
	c.source.UseCellPool(srcNet.cellPool)
	c.source.UseSegmentPool(srcNet.segPool)
	sinkCfg := tmpl
	if sinkCfg.Startup, err = spec.Transport.policy(); err != nil {
		return nil, err
	}
	c.sink = endpoint.NewSink(spec.Sink, sinkNet.fabric, spec.SinkAccess,
		spec.ID, spec.Relays[len(spec.Relays)-1], sinkCfg, sinkNet.lossRNG)
	c.sink.UseCellPool(sinkNet.cellPool)
	c.sink.UseSegmentPool(sinkNet.segPool)

	seq := make([]netem.NodeID, 0, len(spec.Relays)+2)
	seq = append(seq, spec.Source)
	seq = append(seq, spec.Relays...)
	seq = append(seq, spec.Sink)
	nodes := make([]model.Node, len(seq))
	nodes[0] = model.FromAccess(spec.SourceAccess)
	for i, id := range spec.Relays {
		nodes[i+1] = model.FromAccess(sn.Relay(id).Port().Config())
	}
	nodes[len(nodes)-1] = model.FromAccess(spec.SinkAccess)
	fwd := make([][]model.Transit, len(seq)-1)
	rev := make([][]model.Transit, len(seq)-1)
	for i := 0; i+1 < len(seq); i++ {
		for _, l := range sn.fab.PathTransits(seq[i], seq[i+1]) {
			lc := l.Config()
			fwd[i] = append(fwd[i], model.Transit{Rate: lc.Rate, Delay: lc.Delay})
		}
		for _, l := range sn.fab.PathTransits(seq[i+1], seq[i]) {
			lc := l.Config()
			rev[i] = append(rev[i], model.Transit{Rate: lc.Rate, Delay: lc.Delay})
		}
	}
	c.path = model.NewPathWithTransits(nodes, fwd, rev)

	sn.circuits[spec.ID] = c
	return c, nil
}

// ID returns the circuit identifier.
func (c *ShardedCircuit) ID() cell.CircID { return c.id }

// Source returns the data-origin endpoint.
func (c *ShardedCircuit) Source() *endpoint.Source { return c.source }

// SourceSender returns the source's hop sender.
func (c *ShardedCircuit) SourceSender() *transport.Sender { return c.source.Sender() }

// ModelPath returns the analytic model of the circuit's node sequence.
func (c *ShardedCircuit) ModelPath() model.Path { return c.path }

// SourceTrace returns the source's cwnd time series, or nil.
func (c *ShardedCircuit) SourceTrace() *metrics.Series { return c.sourceTrace }

// ScheduleTransfer arms a transfer of size bytes starting at the
// absolute instant `at`: the sink-side expectation on the sink's shard
// and the first send on the source's shard, both at the same virtual
// instant — exactly the two calls Circuit.Transfer makes on one clock.
// download selects the backward direction. `at` must not precede either
// shard's clock; call at a barrier (or t = 0).
func (c *ShardedCircuit) ScheduleTransfer(at sim.Time, size units.DataSize, download bool, onComplete func(ttlb time.Duration)) {
	if size <= 0 {
		panic(fmt.Sprintf("core: ScheduleTransfer(%v)", size))
	}
	if c.closed {
		panic("core: ScheduleTransfer on a torn-down circuit")
	}
	c.transferStart = at
	c.done = false
	complete := func(end sim.Time) {
		c.ttlb = end.Sub(c.transferStart)
		c.done = true
		if onComplete != nil {
			onComplete(c.ttlb)
		}
	}
	srcClock := c.sn.shards[c.srcShard].clock
	sinkClock := c.sn.shards[c.sinkShard].clock
	if download {
		srcClock.At(at, func() { c.source.ExpectDownload(size, complete) })
		sinkClock.At(at, func() { c.sink.SendBackward(size) })
	} else {
		sinkClock.At(at, func() { c.sink.Expect(size, complete) })
		srcClock.At(at, func() { c.source.Send(size) })
	}
}

// Teardown releases the circuit's state on every shard it touches.
// Call only at a barrier: RemoveHop mutates relays across shards.
// Idempotent.
func (c *ShardedCircuit) Teardown() {
	if c.closed {
		return
	}
	c.closed = true
	c.closedAt = c.sn.shards[c.srcShard].Now()
	delete(c.sn.circuits, c.id)
	for _, id := range c.spec.Relays {
		if r := c.sn.Relay(id); r != nil {
			r.RemoveHop(c.id)
		}
	}
	c.source.Close()
	c.sink.Close()
}

// Closed reports whether the circuit has been torn down.
func (c *ShardedCircuit) Closed() bool { return c.closed }

// BuiltAt returns the instant the circuit was built.
func (c *ShardedCircuit) BuiltAt() sim.Time { return c.builtAt }

// ClosedAt returns when the circuit was torn down.
func (c *ShardedCircuit) ClosedAt() sim.Time { return c.closedAt }

// Lifetime returns how long the circuit has been alive: ClosedAt −
// BuiltAt once torn down, the source shard's now − BuiltAt while up.
func (c *ShardedCircuit) Lifetime() time.Duration {
	if c.closed {
		return c.closedAt.Sub(c.builtAt)
	}
	return c.sn.shards[c.srcShard].Now().Sub(c.builtAt)
}

// Relays returns the circuit's relay path (shared; do not modify).
func (c *ShardedCircuit) Relays() []netem.NodeID { return c.spec.Relays }

// Done reports whether the current transfer has completed. Read at
// barriers only — the completing shard writes it mid-window.
func (c *ShardedCircuit) Done() bool { return c.done }

// TTLB returns the most recent transfer's time-to-last-byte.
func (c *ShardedCircuit) TTLB() (time.Duration, bool) { return c.ttlb, c.done }
