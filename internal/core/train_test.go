package core

import (
	"testing"
	"time"

	"circuitstart/internal/arena"
	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// trainNetwork builds a 3-relay arena-backed star with the given train
// size on every access link and one client→server circuit across it.
func trainNetwork(t *testing.T, trainSize int) (*arena.Arena, *Network, *Circuit) {
	t.Helper()
	ar := arena.New()
	n := NewNetworkInArena(ar, 1, func(clock *sim.Clock, _ *sim.RNG) netem.Fabric {
		return netem.NewStarFabric(clock)
	})
	acc := netem.Symmetric(units.Mbps(100), time.Millisecond, 0)
	acc.TrainSize = trainSize
	for _, id := range []netem.NodeID{"r1", "r2", "r3"} {
		n.MustAddRelay(id, acc)
	}
	c := n.MustBuildCircuit(CircuitSpec{
		Source: "client", Sink: "server",
		Relays:       []netem.NodeID{"r1", "r2", "r3"},
		SourceAccess: acc, SinkAccess: acc,
	})
	return ar, n, c
}

// TestTrainedTransferEventBudget pins the point of cell trains: the
// event count of a bulk transfer scales with the number of trains, not
// cells, so coalescing plus signal batching must cut the simulator's
// event budget by a multiple, not a margin. The untrained baseline runs
// ~10× more events; the bound asserts 2.5× so drift has headroom
// without letting a regression to per-cell event costs slip through.
func TestTrainedTransferEventBudget(t *testing.T) {
	run := func(trainSize int) uint64 {
		_, n, c := trainNetwork(t, trainSize)
		before := n.clock.Processed()
		c.Transfer(units.Megabyte, func(time.Duration) { n.clock.Stop() })
		n.Run()
		if !c.Done() {
			t.Fatal("transfer incomplete")
		}
		return n.clock.Processed() - before
	}
	trained := run(8)
	untrained := run(0)
	t.Logf("events per 1 MB transfer: trained %d, untrained %d", trained, untrained)
	if 2*untrained < 5*trained { // trained > 0.4 × untrained
		t.Errorf("trained transfer ran %d events vs %d untrained: coalescing below 2.5×", trained, untrained)
	}
}

// TestTrainedTransferCoalescesOnRelayLinks checks the achieved mean
// train length where it matters — the relay uplinks carrying the bulk
// data stream. Stretching must push it well past the ~1.8 equilibrium
// that formation-only coalescing gets stuck at under smooth arrivals.
func TestTrainedTransferCoalescesOnRelayLinks(t *testing.T) {
	_, n, c := trainNetwork(t, 8)
	c.Transfer(units.Megabyte, func(time.Duration) { n.clock.Stop() })
	n.Run()
	if !c.Done() {
		t.Fatal("transfer incomplete")
	}
	for _, id := range []netem.NodeID{"r1", "r2", "r3"} {
		up := n.Relay(id).Port().Uplink().Stats()
		if up.TailDrops != 0 {
			t.Errorf("%s uplink dropped %d frames on an uncontended link", id, up.TailDrops)
		}
		if mean := up.MeanTrainLen(); mean < 2.5 {
			t.Errorf("%s uplink mean train length %.2f, want ≥ 2.5", id, mean)
		}
		if up.TrainStretched == 0 {
			t.Errorf("%s uplink never stretched a train under a smooth bulk stream", id)
		}
	}
}

// TestSequentialTransfersReuseCellPool pins the arena contract on the
// batched hot path: after the first transfer builds the working set,
// repeat transfers on the same circuit draw every cell from the pool's
// free list — train frames recycle their cells on terminal delivery,
// so the allocation ledger stops growing.
func TestSequentialTransfersReuseCellPool(t *testing.T) {
	_, n, c := trainNetwork(t, 8)
	transfer := func() {
		c.Transfer(units.Megabyte, func(time.Duration) { n.clock.Stop() })
		n.Run()
		if !c.Done() {
			t.Fatal("transfer incomplete")
		}
	}
	transfer()
	warm := len(n.cellPool.All())
	if warm == 0 {
		t.Fatal("cell pool unused: the data path is not drawing from the arena")
	}
	for i := 0; i < 2; i++ {
		transfer()
		if grew := len(n.cellPool.All()) - warm; grew != 0 {
			t.Fatalf("transfer %d allocated %d new cells past the warm working set of %d",
				i+2, grew, warm)
		}
	}
}
