package core

import (
	"testing"
	"time"

	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

func TestBackwardTransferDeliversAllBytes(t *testing.T) {
	// The download direction: the sink (destination server) originates
	// plaintext cells; the exit seals and encrypts, every relay adds a
	// layer, the client unwraps all of them.
	_, c := threeHopNet(t, 1, units.Mbps(8), units.Mbps(100), TransportOptions{})
	n := c.network

	size := 200 * units.Kilobyte
	var got time.Duration
	c.TransferBackward(size, func(ttlb time.Duration) { got = ttlb })
	n.RunUntil(30 * sim.Second)

	if !c.Done() {
		t.Fatalf("download incomplete: client received %v of %v", c.Source().Downloaded(), size)
	}
	if c.Source().Downloaded() != size {
		t.Fatalf("downloaded %v, want %v", c.Source().Downloaded(), size)
	}
	if c.Source().DownloadBadCells() != 0 {
		t.Fatalf("%d cells failed layered decryption at the client", c.Source().DownloadBadCells())
	}
	ttlb, ok := c.TTLB()
	if !ok || ttlb != got || ttlb <= 0 {
		t.Fatalf("TTLB = %v, %v", ttlb, ok)
	}
}

func TestBackwardCircuitStartConverges(t *testing.T) {
	// The download direction runs the same startup scheme; the server's
	// sender must converge like the client's does in the upload case.
	_, c := threeHopNet(t, 1, units.Mbps(8), units.Mbps(100), TransportOptions{})
	n := c.network
	c.TransferBackward(2*units.Megabyte, nil)
	n.RunUntil(3 * sim.Second)

	// The backward path's bottleneck is symmetric (Symmetric access),
	// so the same model optimum applies.
	opt := c.ModelPath().OptimalSourceWindowCells()
	w := c.Sink().BackwardSender().Cwnd()
	if w < 0.4*opt || w > 3*opt {
		t.Fatalf("server-side window %v not near optimal %v", w, opt)
	}
}

func TestBidirectionalTransfersShareCircuit(t *testing.T) {
	// Simultaneous upload and download on one circuit: both directions
	// are independent transports and must both complete.
	_, c := threeHopNet(t, 1, units.Mbps(8), units.Mbps(100), TransportOptions{})
	n := c.network

	up := 100 * units.Kilobyte
	down := 150 * units.Kilobyte
	var upDone, downDone bool
	c.Transfer(up, func(time.Duration) { upDone = true })
	c.TransferBackward(down, func(time.Duration) { downDone = true })
	n.RunUntil(60 * sim.Second)

	if !upDone || c.Sink().Received() != up {
		t.Fatalf("upload incomplete: %v of %v (done=%v)", c.Sink().Received(), up, upDone)
	}
	if !downDone || c.Source().Downloaded() != down {
		t.Fatalf("download incomplete: %v of %v (done=%v)", c.Source().Downloaded(), down, downDone)
	}
	if c.Sink().BadCells() != 0 || c.Source().DownloadBadCells() != 0 {
		t.Fatal("crypto corruption under bidirectional traffic")
	}
}

func TestBackwardTransferSurvivesLoss(t *testing.T) {
	n, c := lossyNet(t, 0.02, 0, TransportOptions{})
	size := 100 * units.Kilobyte
	c.TransferBackward(size, nil)
	n.RunUntil(600 * sim.Second)
	if !c.Done() || c.Source().Downloaded() != size {
		t.Fatalf("lossy download incomplete: %v of %v", c.Source().Downloaded(), size)
	}
	if c.Source().DownloadBadCells() != 0 {
		t.Fatalf("%d bad cells after loss recovery", c.Source().DownloadBadCells())
	}
}

func TestBackwardTransferPanicsOnZero(t *testing.T) {
	_, c := threeHopNet(t, 0, units.Mbps(8), units.Mbps(100), TransportOptions{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.TransferBackward(0, nil)
}

func TestBackwardDeterminism(t *testing.T) {
	run := func() time.Duration {
		_, c := threeHopNet(t, 1, units.Mbps(8), units.Mbps(100), TransportOptions{})
		c.TransferBackward(150*units.Kilobyte, nil)
		c.network.RunUntil(60 * sim.Second)
		ttlb, ok := c.TTLB()
		if !ok {
			t.Fatal("incomplete")
		}
		return ttlb
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("backward runs diverged: %v vs %v", a, b)
	}
}
