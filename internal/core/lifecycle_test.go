package core

import (
	"testing"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

func buildLifecycleNet(t *testing.T) (*Network, *Circuit) {
	t.Helper()
	n := NewNetwork(7)
	access := netem.Symmetric(units.Mbps(20), 5*time.Millisecond, 0)
	for _, id := range []netem.NodeID{"r1", "r2", "r3"} {
		n.MustAddRelay(id, access)
	}
	c := n.MustBuildCircuit(CircuitSpec{
		Source: "client", Sink: "server",
		SourceAccess: access, SinkAccess: access,
		Relays: []netem.NodeID{"r1", "r2", "r3"},
	})
	return n, c
}

func TestTeardownMidTransferReleasesState(t *testing.T) {
	n, c := buildLifecycleNet(t)
	completed := false
	c.Transfer(4*units.Megabyte, func(time.Duration) { completed = true })

	// Let the transfer get going, then tear the circuit down mid-flight.
	n.RunUntil(200 * sim.Millisecond)
	n.Clock().After(0, c.Teardown)
	n.RunUntil(30 * sim.Second)

	if completed || c.Done() {
		t.Fatal("aborted transfer reported complete")
	}
	if !c.Closed() {
		t.Fatal("circuit not closed after Teardown")
	}
	if got := c.ClosedAt(); got != 200*sim.Millisecond {
		t.Fatalf("ClosedAt %v, want 200ms", got)
	}
	if got := c.Lifetime(); got != 200*time.Millisecond {
		t.Fatalf("Lifetime %v, want 200ms", got)
	}
	for _, id := range []netem.NodeID{"r1", "r2", "r3"} {
		if n.Relay(id).Circuits() != 0 {
			t.Fatalf("relay %s still carries circuit state", id)
		}
		if n.Relay(id).HopSender(c.ID()) != nil {
			t.Fatalf("relay %s still has a hop sender", id)
		}
	}
	// The clock must drain: no orphaned RTO/probe timers rearming forever.
	if got := n.Clock().Pending(); got != 0 {
		t.Fatalf("%d events still pending long after teardown", got)
	}
	if !c.Source().Closed() || !c.Sink().Closed() {
		t.Fatal("endpoints not closed")
	}
}

func TestTeardownIsIdempotentAndSurvivesInFlightFrames(t *testing.T) {
	n, c := buildLifecycleNet(t)
	c.Transfer(1*units.Megabyte, nil)
	n.RunUntil(100 * sim.Millisecond)
	// Teardown at an instant when data, ACKs and feedback are in flight
	// on every link of the path: the endpoints and relays must absorb
	// them without panicking.
	n.Clock().After(0, func() {
		c.Teardown()
		c.Teardown() // idempotent
	})
	n.Run()
	if n.Relay("r1").Stats().UnknownCircuit == 0 {
		t.Log("no in-flight frames hit the torn-down hop (timing-dependent; not a failure)")
	}
}

func TestTeardownAfterCompletionAllowsRebuildOverSameRelays(t *testing.T) {
	n, c := buildLifecycleNet(t)
	c.Transfer(200*units.Kilobyte, nil)
	n.Run()
	if !c.Done() {
		t.Fatal("transfer incomplete")
	}
	ttlb1, _ := c.TTLB()
	c.Teardown()

	// Same relays, fresh circuit and endpoints: the second build must
	// work and complete (relay hop state was fully removed).
	access := netem.Symmetric(units.Mbps(20), 5*time.Millisecond, 0)
	c2 := n.MustBuildCircuit(CircuitSpec{
		Source: "client-2", Sink: "server-2",
		SourceAccess: access, SinkAccess: access,
		Relays: []netem.NodeID{"r1", "r2", "r3"},
	})
	if c2.ID() == c.ID() {
		t.Fatal("rebuilt circuit reused the old ID")
	}
	c2.Transfer(200*units.Kilobyte, nil)
	n.Run()
	if !c2.Done() {
		t.Fatal("rebuilt circuit's transfer incomplete")
	}
	if ttlb2, _ := c2.TTLB(); ttlb2 <= 0 || ttlb1 <= 0 {
		t.Fatal("bad TTLBs")
	}
}

func TestFailedRelayBlackholesAndRecovers(t *testing.T) {
	n, c := buildLifecycleNet(t)
	r2 := n.Relay("r2")
	c.Transfer(2*units.Megabyte, nil)
	n.RunUntil(100 * sim.Millisecond)
	n.Clock().After(0, func() {
		r2.Fail()
		c.Teardown() // the engine's contract: failed circuits are torn down
	})
	n.RunUntil(500 * sim.Millisecond)
	if !r2.Failed() {
		t.Fatal("relay not failed")
	}
	if r2.Stats().FailedDrops == 0 {
		t.Fatal("failed relay dropped nothing despite in-flight traffic")
	}
	r2.Recover()
	if r2.Failed() {
		t.Fatal("relay still failed after Recover")
	}
	// A fresh circuit through the recovered relay works.
	access := netem.Symmetric(units.Mbps(20), 5*time.Millisecond, 0)
	c2 := n.MustBuildCircuit(CircuitSpec{
		Source: "client-2", Sink: "server-2",
		SourceAccess: access, SinkAccess: access,
		Relays: []netem.NodeID{"r1", "r2", "r3"},
	})
	c2.Transfer(100*units.Kilobyte, nil)
	n.Run()
	if !c2.Done() {
		t.Fatal("transfer through recovered relay incomplete")
	}
}
