package core

import (
	"testing"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
)

const msec = time.Millisecond

// threeHopNet builds the canonical single-circuit scenario: source →
// R1 → R2 → R3 → sink over a star, with one relay's access limited to
// bottleneck while everything else runs at fast.
func threeHopNet(t *testing.T, bottleneckRelay int, bottleneck, fast units.DataRate, opts TransportOptions) (*Network, *Circuit) {
	t.Helper()
	n := NewNetwork(42)
	relays := []netem.NodeID{"r1", "r2", "r3"}
	for i, id := range relays {
		rate := fast
		if i == bottleneckRelay {
			rate = bottleneck
		}
		if _, err := n.AddRelay(id, netem.Symmetric(rate, 5*msec, 0)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := n.BuildCircuit(CircuitSpec{
		Source:       "client",
		Sink:         "server",
		SourceAccess: netem.Symmetric(fast, 5*msec, 0),
		SinkAccess:   netem.Symmetric(fast, 5*msec, 0),
		Relays:       relays,
		Transport:    opts,
		TraceCwnd:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n, c
}

func TestBuildCircuitValidation(t *testing.T) {
	n := NewNetwork(1)
	n.MustAddRelay("r1", netem.Symmetric(units.Mbps(10), msec, 0))

	cases := []struct {
		name string
		spec CircuitSpec
	}{
		{"no relays", CircuitSpec{Source: "a", Sink: "b"}},
		{"no endpoints", CircuitSpec{Relays: []netem.NodeID{"r1"}}},
		{"unknown relay", CircuitSpec{Source: "a", Sink: "b", Relays: []netem.NodeID{"nope"}}},
		{"bad policy", CircuitSpec{
			Source: "a", Sink: "b", Relays: []netem.NodeID{"r1"},
			SourceAccess: netem.Symmetric(units.Mbps(10), msec, 0),
			SinkAccess:   netem.Symmetric(units.Mbps(10), msec, 0),
			Transport:    TransportOptions{Policy: "warp-drive"},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := n.BuildCircuit(c.spec); err == nil {
				t.Fatal("BuildCircuit accepted invalid spec")
			}
		})
	}
}

func TestAddRelayDuplicate(t *testing.T) {
	n := NewNetwork(1)
	if _, err := n.AddRelay("r1", netem.Symmetric(units.Mbps(10), msec, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddRelay("r1", netem.Symmetric(units.Mbps(10), msec, 0)); err == nil {
		t.Fatal("duplicate AddRelay accepted")
	}
}

func TestAutoCircuitIDs(t *testing.T) {
	n := NewNetwork(1)
	n.MustAddRelay("r1", netem.Symmetric(units.Mbps(10), msec, 0))
	mk := func(src, snk netem.NodeID) *Circuit {
		return n.MustBuildCircuit(CircuitSpec{
			Source: src, Sink: snk,
			SourceAccess: netem.Symmetric(units.Mbps(10), msec, 0),
			SinkAccess:   netem.Symmetric(units.Mbps(10), msec, 0),
			Relays:       []netem.NodeID{"r1"},
		})
	}
	a := mk("c1", "s1")
	b := mk("c2", "s2")
	if a.ID() == 0 || b.ID() == 0 || a.ID() == b.ID() {
		t.Fatalf("auto IDs = %d, %d", a.ID(), b.ID())
	}
}

func TestTransferDeliversAllBytes(t *testing.T) {
	_, c := threeHopNet(t, 1, units.Mbps(8), units.Mbps(100), TransportOptions{})
	n := c.network

	size := 200 * units.Kilobyte
	var got time.Duration
	c.Transfer(size, func(ttlb time.Duration) { got = ttlb })
	n.RunUntil(30 * sim.Second)

	if !c.Done() {
		t.Fatalf("transfer incomplete: sink received %v of %v", c.Sink().Received(), size)
	}
	if c.Sink().Received() != size {
		t.Fatalf("received %v, want %v", c.Sink().Received(), size)
	}
	if c.Sink().BadCells() != 0 {
		t.Fatalf("%d cells failed onion decryption", c.Sink().BadCells())
	}
	ttlb, ok := c.TTLB()
	if !ok || ttlb != got || ttlb <= 0 {
		t.Fatalf("TTLB = %v, %v (callback %v)", ttlb, ok, got)
	}
	// The analytic lower bound must hold.
	lb := c.ModelPath().LowerBoundTTLB(cellsFor(size))
	if ttlb < lb {
		t.Fatalf("TTLB %v below analytic lower bound %v", ttlb, lb)
	}
}

func cellsFor(size units.DataSize) int {
	// endpoint.CellsFor is not imported to keep the test self-contained.
	per := int64(496) // cell.MaxRelayData
	return int((size.Bytes() + per - 1) / per)
}

func TestCircuitStartConvergesOntoModelWindow(t *testing.T) {
	for _, tc := range []struct {
		name       string
		bottleneck int
	}{
		{"bottleneck-1-hop", 0},
		{"bottleneck-3-hops", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, c := threeHopNet(t, tc.bottleneck, units.Mbps(8), units.Mbps(100), TransportOptions{})
			n := c.network
			c.Transfer(2*units.Megabyte, nil)
			n.RunUntil(3 * sim.Second)

			opt := c.ModelPath().OptimalSourceWindowCells()
			tr := c.SourceTrace()
			if tr == nil || tr.Len() == 0 {
				t.Fatal("no cwnd trace")
			}
			// After the ramp the window must sit near the optimal: within
			// ±50% for the rest of the run (the paper's panels show exact
			// convergence; we allow tolerance for discretization).
			settle, ok := tr.SettleTime(opt, opt*0.5)
			if !ok {
				last, _ := tr.Last()
				t.Fatalf("cwnd never settled near optimal %.1f (last=%v)", opt, last.Value)
			}
			if settle > 2*sim.Second {
				t.Fatalf("settled only at %v", settle)
			}
		})
	}
}

func TestBackpropagationOfBottleneckWindow(t *testing.T) {
	// With the bottleneck at the last relay, every upstream sender's
	// window should converge to roughly the same (bottleneck) value:
	// "this continues until the source is reached".
	_, c := threeHopNet(t, 2, units.Mbps(8), units.Mbps(100), TransportOptions{})
	n := c.network
	c.Transfer(2*units.Megabyte, nil)
	n.RunUntil(3 * sim.Second)

	opt := c.ModelPath().OptimalSourceWindowCells()
	src := c.SourceSender().Cwnd()
	if src > 3*opt {
		t.Fatalf("source cwnd %v far above optimal %v — no back-propagation", src, opt)
	}
	for i := 0; i < 2; i++ {
		rw := c.RelaySender(i).Cwnd()
		if rw > 4*opt {
			t.Errorf("relay %d cwnd %v far above optimal %v", i, rw, opt)
		}
	}
}

func TestTracesRecordedOnlyWhenRequested(t *testing.T) {
	n := NewNetwork(7)
	n.MustAddRelay("r1", netem.Symmetric(units.Mbps(10), msec, 0))
	c := n.MustBuildCircuit(CircuitSpec{
		Source: "c", Sink: "s",
		SourceAccess: netem.Symmetric(units.Mbps(10), msec, 0),
		SinkAccess:   netem.Symmetric(units.Mbps(10), msec, 0),
		Relays:       []netem.NodeID{"r1"},
	})
	if c.SourceTrace() != nil || c.RelayTrace(0) != nil {
		t.Fatal("traces present without TraceCwnd")
	}
}

func TestFixedWindowBaseline(t *testing.T) {
	_, c := threeHopNet(t, 1, units.Mbps(8), units.Mbps(100), TransportOptions{
		Policy: "fixed", FixedWindow: 10,
	})
	n := c.network
	c.Transfer(100*units.Kilobyte, nil)
	n.RunUntil(30 * sim.Second)
	if !c.Done() {
		t.Fatal("fixed-window transfer incomplete")
	}
	if w := c.SourceSender().Cwnd(); w != 10 {
		t.Fatalf("fixed window drifted to %v", w)
	}
	if c.SourceSender().Phase() != transport.PhaseStartup {
		t.Fatalf("fixed window left startup: %v", c.SourceSender().Phase())
	}
}

func TestCircuitStartBeatsPlainBackTap(t *testing.T) {
	// The paper's headline comparison ("with CircuitStart" vs "without
	// CircuitStart" = plain BackTap): same network, same transfer, policy
	// swapped. Plain BackTap has no ramp-up at all — Vegas grows the
	// window by one cell per RTT — so on a transfer where the ramp
	// matters (bottleneck fast enough that the drain itself is short),
	// CircuitStart must finish clearly earlier.
	run := func(policy string) time.Duration {
		_, c := threeHopNet(t, 2, units.Mbps(16), units.Mbps(100), TransportOptions{Policy: policy})
		c.Transfer(300*units.Kilobyte, nil)
		c.network.RunUntil(60 * sim.Second)
		if !c.Done() {
			t.Fatalf("%s transfer incomplete", policy)
		}
		ttlb, _ := c.TTLB()
		return ttlb
	}
	cs := run("circuitstart")
	bt := run("backtap")
	if cs >= bt {
		t.Fatalf("CircuitStart %v not faster than plain BackTap %v", cs, bt)
	}
}

func TestCircuitStartLessAggressiveThanClassicSlowStart(t *testing.T) {
	// Classic ACK-clocked slow start can be fast on an idle path, but it
	// is aggressive: it drives the window far beyond the optimal before
	// reacting ("the cwnd can still massively 'overshoot', especially if
	// the bottleneck is distant from the source"). CircuitStart's peak
	// overshoot must be no worse, and its post-exit window must land
	// near the optimal rather than at an arbitrary halving point.
	peak := func(policy string) (overshoot, exitErr float64) {
		_, c := threeHopNet(t, 2, units.Mbps(6), units.Mbps(100), TransportOptions{Policy: policy})
		c.Transfer(2*units.Megabyte, nil)
		c.network.RunUntil(2 * sim.Second)
		opt := c.ModelPath().OptimalSourceWindowCells()
		st := c.SourceSender().Stats()
		// Compare ramp-phase aggressiveness: the window peak up to the
		// startup exit (later avoidance probing is deliberate and
		// bounded, not part of the ramp under comparison).
		var peakCells float64
		for _, p := range c.SourceTrace().Points() {
			if p.At > st.ExitTime {
				break
			}
			if p.Value > peakCells {
				peakCells = p.Value
			}
		}
		return peakCells - opt, st.ExitCwnd/opt - 1
	}
	csOver, csErr := peak("circuitstart")
	ssOver, _ := peak("slowstart")
	if csOver > ssOver {
		t.Errorf("CircuitStart overshoot %v worse than classic %v", csOver, ssOver)
	}
	if csErr < -0.6 || csErr > 1.0 {
		t.Errorf("CircuitStart exit window off optimal by %+.0f%%", csErr*100)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (time.Duration, float64) {
		_, c := threeHopNet(t, 1, units.Mbps(8), units.Mbps(100), TransportOptions{})
		c.Transfer(300*units.Kilobyte, nil)
		c.network.RunUntil(30 * sim.Second)
		ttlb, ok := c.TTLB()
		if !ok {
			t.Fatal("incomplete")
		}
		return ttlb, c.SourceSender().Cwnd()
	}
	t1, w1 := run()
	t2, w2 := run()
	if t1 != t2 || w1 != w2 {
		t.Fatalf("non-deterministic: (%v, %v) vs (%v, %v)", t1, w1, t2, w2)
	}
}

func TestConcurrentCircuitsShareRelays(t *testing.T) {
	n := NewNetwork(11)
	relays := []netem.NodeID{"r1", "r2", "r3"}
	for _, id := range relays {
		n.MustAddRelay(id, netem.Symmetric(units.Mbps(20), 5*msec, 0))
	}
	const k = 5
	circuits := make([]*Circuit, k)
	for i := 0; i < k; i++ {
		circuits[i] = n.MustBuildCircuit(CircuitSpec{
			Source:       netem.NodeID("client-" + string(rune('a'+i))),
			Sink:         netem.NodeID("server-" + string(rune('a'+i))),
			SourceAccess: netem.Symmetric(units.Mbps(50), 5*msec, 0),
			SinkAccess:   netem.Symmetric(units.Mbps(50), 5*msec, 0),
			Relays:       relays,
		})
	}
	for _, c := range circuits {
		c.Transfer(100*units.Kilobyte, nil)
	}
	n.RunUntil(60 * sim.Second)
	for i, c := range circuits {
		if !c.Done() {
			t.Errorf("circuit %d incomplete: %v received", i, c.Sink().Received())
		}
	}
}

func TestTransferPanicsOnNonPositiveSize(t *testing.T) {
	_, c := threeHopNet(t, 0, units.Mbps(8), units.Mbps(100), TransportOptions{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Transfer(0, nil)
}
