package core

import (
	"testing"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// lossyNet builds a 3-relay circuit whose links all drop frames with
// the given probability and/or bound their queues.
func lossyNet(t *testing.T, lossProb float64, queueCap units.DataSize, opts TransportOptions) (*Network, *Circuit) {
	t.Helper()
	n := NewNetwork(1337)
	access := netem.AccessConfig{
		UpRate: units.Mbps(20), DownRate: units.Mbps(20),
		Delay: 5 * time.Millisecond, QueueCap: queueCap, LossProb: lossProb,
	}
	relays := []netem.NodeID{"r1", "r2", "r3"}
	for _, id := range relays {
		if _, err := n.AddRelay(id, access); err != nil {
			t.Fatal(err)
		}
	}
	c, err := n.BuildCircuit(CircuitSpec{
		Source: "client", Sink: "server",
		SourceAccess: access, SinkAccess: access,
		Relays:    relays,
		Transport: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n, c
}

func TestTransferSurvivesRandomLoss(t *testing.T) {
	// 2% random loss on every link of every hop: reliability must still
	// deliver every byte, in order, with correct onion decryption.
	n, c := lossyNet(t, 0.02, 0, TransportOptions{})
	size := 200 * units.Kilobyte
	c.Transfer(size, nil)
	n.RunUntil(600 * sim.Second)

	if !c.Done() {
		t.Fatalf("transfer incomplete under loss: %v of %v", c.Sink().Received(), size)
	}
	if c.Sink().Received() != size {
		t.Fatalf("received %v, want %v", c.Sink().Received(), size)
	}
	if c.Sink().BadCells() != 0 {
		t.Fatalf("%d corrupted cells reached the sink", c.Sink().BadCells())
	}
	// Loss must actually have occurred and been repaired.
	var retrans uint64
	retrans += c.SourceSender().Stats().Retransmitted
	for i := 0; i < 3; i++ {
		retrans += c.RelaySender(i).Stats().Retransmitted
	}
	if retrans == 0 {
		t.Fatal("no retransmissions under 2% loss — loss injection inert")
	}
}

func TestTransferSurvivesTinyQueues(t *testing.T) {
	// Queue caps of ~8 cells force tail drops during the ramp; the RTO
	// path must recover every drop.
	n, c := lossyNet(t, 0, 8*528*units.Byte, TransportOptions{})
	size := 100 * units.Kilobyte
	c.Transfer(size, nil)
	n.RunUntil(600 * sim.Second)

	if !c.Done() {
		t.Fatalf("transfer incomplete with bounded queues: %v of %v", c.Sink().Received(), size)
	}
	if c.Sink().Received() != size {
		t.Fatalf("received %v, want %v", c.Sink().Received(), size)
	}
}

func TestHeavyLossEventuallyCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow under heavy loss")
	}
	// 10% loss is brutal for a cumulative-ACK protocol; it must still
	// terminate (no livelock, no stuck feedback).
	n, c := lossyNet(t, 0.10, 0, TransportOptions{})
	size := 50 * units.Kilobyte
	c.Transfer(size, nil)
	n.RunUntil(3600 * sim.Second)
	if !c.Done() {
		t.Fatalf("transfer incomplete under 10%% loss: %v of %v", c.Sink().Received(), size)
	}
}

func TestLossDeterminism(t *testing.T) {
	run := func() time.Duration {
		n, c := lossyNet(t, 0.05, 0, TransportOptions{})
		c.Transfer(50*units.Kilobyte, nil)
		n.RunUntil(600 * sim.Second)
		ttlb, ok := c.TTLB()
		if !ok {
			t.Fatal("incomplete")
		}
		return ttlb
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("lossy runs diverged: %v vs %v", a, b)
	}
}

func TestAllPoliciesSurviveLoss(t *testing.T) {
	for _, policy := range []string{"circuitstart", "backtap", "slowstart"} {
		t.Run(policy, func(t *testing.T) {
			n, c := lossyNet(t, 0.03, 0, TransportOptions{Policy: policy})
			size := 50 * units.Kilobyte
			c.Transfer(size, nil)
			n.RunUntil(600 * sim.Second)
			if !c.Done() {
				t.Fatalf("%s incomplete: %v of %v", policy, c.Sink().Received(), size)
			}
		})
	}
}
