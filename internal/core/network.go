// Package core assembles the substrates into runnable experiments: a
// Network owns the virtual clock, the star topology and the relay
// population; a Circuit is an onion-encrypted multi-hop path across it
// with a per-hop window-based transport on every hop.
//
// This is the layer the public circuitstart package re-exports: examples
// and benchmarks build a Network, add relays, build circuits and run
// transfers — everything below (event scheduling, links, cells, crypto,
// transport state machines) stays internal.
package core

import (
	"fmt"

	"circuitstart/internal/netem"
	"circuitstart/internal/onion"
	"circuitstart/internal/relay"
	"circuitstart/internal/sim"
)

// Network is a star-topology overlay under construction: attach relays,
// then build circuits across them. All nodes share one virtual clock.
type Network struct {
	clock *sim.Clock
	star  *netem.Star
	seed  int64

	relays     map[netem.NodeID]*relay.Relay
	identities map[netem.NodeID]*onion.Identity
	lossRNG    *sim.RNG
	keyRNG     *sim.RNG

	nextAutoCirc uint32
}

// NewNetwork creates an empty network. All randomness (key generation,
// loss processes) derives deterministically from seed.
func NewNetwork(seed int64) *Network {
	clock := sim.NewClock()
	return &Network{
		clock:      clock,
		star:       netem.NewStar(clock),
		seed:       seed,
		relays:     make(map[netem.NodeID]*relay.Relay),
		identities: make(map[netem.NodeID]*onion.Identity),
		lossRNG:    sim.NewRNG(seed, "netem-loss"),
		keyRNG:     sim.NewRNG(seed, "onion-keys"),
	}
}

// Clock returns the shared virtual clock.
func (n *Network) Clock() *sim.Clock { return n.clock }

// Star exposes the underlying topology (for link statistics in tests
// and experiments).
func (n *Network) Star() *netem.Star { return n.star }

// Seed returns the experiment seed the network was created with.
func (n *Network) Seed() int64 { return n.seed }

// Now returns the current virtual time.
func (n *Network) Now() sim.Time { return n.clock.Now() }

// Run executes scheduled events until the queue drains and returns the
// final virtual time.
func (n *Network) Run() sim.Time { return n.clock.Run() }

// RunUntil executes events up to the horizon.
func (n *Network) RunUntil(horizon sim.Time) sim.Time { return n.clock.RunUntil(horizon) }

// AddRelay attaches a relay node with the given access parameters and
// generates its onion identity. Adding the same ID twice is an error.
func (n *Network) AddRelay(id netem.NodeID, access netem.AccessConfig) (*relay.Relay, error) {
	if _, dup := n.relays[id]; dup {
		return nil, fmt.Errorf("core: relay %q already added", id)
	}
	ident, err := onion.NewIdentity(randReader{n.keyRNG})
	if err != nil {
		return nil, fmt.Errorf("core: relay %q identity: %w", id, err)
	}
	r := relay.New(id, n.star, access, n.lossRNG)
	n.relays[id] = r
	n.identities[id] = ident
	return r, nil
}

// MustAddRelay is AddRelay for static topologies where a failure is a
// programming error.
func (n *Network) MustAddRelay(id netem.NodeID, access netem.AccessConfig) *relay.Relay {
	r, err := n.AddRelay(id, access)
	if err != nil {
		panic(err)
	}
	return r
}

// Relay returns an attached relay, or nil.
func (n *Network) Relay(id netem.NodeID) *relay.Relay { return n.relays[id] }

// randReader adapts a deterministic RNG stream to io.Reader for key
// generation, keeping circuit builds reproducible across runs.
type randReader struct{ rng *sim.RNG }

func (r randReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.rng.Intn(256))
	}
	return len(p), nil
}
