// Package core assembles the substrates into runnable experiments: a
// Network owns the virtual clock, the topology fabric and the relay
// population; a Circuit is an onion-encrypted multi-hop path across it
// with a per-hop window-based transport on every hop.
//
// This is the layer the public circuitstart package re-exports: examples
// and benchmarks build a Network, add relays, build circuits and run
// transfers — everything below (event scheduling, links, cells, crypto,
// transport state machines) stays internal.
package core

import (
	"fmt"

	"circuitstart/internal/arena"
	"circuitstart/internal/cell"
	"circuitstart/internal/netem"
	"circuitstart/internal/onion"
	"circuitstart/internal/relay"
	"circuitstart/internal/resource"
	"circuitstart/internal/sched"
	"circuitstart/internal/sim"
	"circuitstart/internal/transport"
)

// Network is an overlay under construction: attach relays, then build
// circuits across them. All nodes share one virtual clock and one
// topology fabric — the paper's star by default, or any netem.Fabric
// via NewNetworkWithFabric.
type Network struct {
	clock  *sim.Clock
	fabric netem.Fabric
	seed   int64

	relays     map[netem.NodeID]*relay.Relay
	identities map[netem.NodeID]*onion.Identity
	lossRNG    *sim.RNG
	keyRNG     *sim.RNG

	// cellPool recycles cells between the consuming and producing
	// endpoints of every circuit on this network (single-threaded on the
	// shared clock, so one pool serves them all). segPool does the same
	// for the boxed segment wrappers frames carry — the fabric's frame
	// pool returns wrappers here the moment their frame dies.
	cellPool *cell.Pool
	segPool  *transport.SegmentPool

	// ar is the arena the network draws trial-lifetime objects from
	// (circuits), nil for standalone networks.
	ar *arena.Arena

	nextAutoCirc uint32

	// relayCfg is the scheduling/limits template applied to every relay
	// added after ConfigureRelays; circuits registers live circuits so a
	// relay's resource manager can evict one network-wide, and onKill
	// observes those evictions (scenario engines mark the transfer).
	relayCfg relay.Config
	circuits map[cell.CircID]*Circuit
	onKill   func(*Circuit)
}

// FabricBuilder constructs a network's topology substrate on its clock.
// lossRNG is the network's shared loss stream ("netem-loss"), for
// fabrics whose trunks drop frames randomly.
type FabricBuilder func(clock *sim.Clock, lossRNG *sim.RNG) netem.Fabric

// NewNetwork creates an empty star-topology network — the paper's
// evaluation setup. All randomness (key generation, loss processes)
// derives deterministically from seed.
func NewNetwork(seed int64) *Network {
	return NewNetworkWithFabric(seed, func(clock *sim.Clock, _ *sim.RNG) netem.Fabric {
		return netem.NewStarFabric(clock)
	})
}

// NewNetworkWithFabric creates an empty network whose topology is
// produced by build — e.g. a netem.GraphSpec's Build for a routed
// backbone. Every trial must build its own fabric; reusing one across
// networks would share clocks and queues.
func NewNetworkWithFabric(seed int64, build FabricBuilder) *Network {
	return newNetwork(nil, seed, build)
}

// NewNetworkInArena is NewNetworkWithFabric drawing its clock, cell pool
// and segment pool from a trial arena instead of allocating fresh ones.
// Callers running trial sequences pair it with ar.ResetTrial() between
// trials: the network object itself is rebuilt (maps, fabric, relays are
// trial-specific state) but the expensive recyclable substrate — event
// free list, cell and segment free lists, object slabs — carries over.
// The arena's clock must be idle and reset when called.
func NewNetworkInArena(ar *arena.Arena, seed int64, build FabricBuilder) *Network {
	return newNetwork(ar, seed, build)
}

func newNetwork(ar *arena.Arena, seed int64, build FabricBuilder) *Network {
	var (
		clock    *sim.Clock
		cellPool *cell.Pool
		segPool  *transport.SegmentPool
	)
	if ar != nil {
		clock, cellPool, segPool = ar.Clock, ar.Cells, ar.Segments
	} else {
		clock, cellPool, segPool = sim.NewClock(), cell.NewPool(), transport.NewSegmentPool()
	}
	lossRNG := sim.NewRNG(seed, "netem-loss")
	fab := build(clock, lossRNG)
	if fab == nil {
		panic("core: FabricBuilder returned nil")
	}
	if fab.Clock() != clock {
		panic("core: fabric built on a foreign clock")
	}
	// An arena-backed network redirects the fabric's frame pool to the
	// arena's long-lived store, so the frame working set survives this
	// trial's fabric and ResetTrial can reclaim stranded frames.
	if ar != nil {
		fab.FramePool().Adopt(ar.Frames)
	}
	// Recycle boxed segment wrappers the instant their carrying frame
	// dies (delivered, tail-dropped, policed or randomly lost) — the
	// frame pool's reclaim hook is the one place every death is visible.
	fab.FramePool().OnReclaim(func(p any) {
		if s, ok := p.(*transport.Segment); ok {
			segPool.Put(s)
		}
	})
	return &Network{
		clock:      clock,
		fabric:     fab,
		seed:       seed,
		relays:     make(map[netem.NodeID]*relay.Relay),
		identities: make(map[netem.NodeID]*onion.Identity),
		lossRNG:    lossRNG,
		keyRNG:     sim.NewRNG(seed, "onion-keys"),
		cellPool:   cellPool,
		segPool:    segPool,
		ar:         ar,
		circuits:   make(map[cell.CircID]*Circuit),
	}
}

// ConfigureRelays sets the scheduling/limits template applied to every
// relay added afterwards, and — when the config selects the EWMA
// discipline — installs the same scheduler on the fabric's trunks, so
// backbone contention is also circuit-aware. Call it before AddRelay;
// a zero config is a valid no-op (the byte-identical default).
func (n *Network) ConfigureRelays(cfg relay.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	n.relayCfg = cfg
	if cfg.Scheduler == "ewma" {
		for _, l := range n.fabric.Trunks() {
			l.SetScheduler(sched.NewEWMA(n.clock, cfg.HalfLife.Duration()))
		}
	}
	return nil
}

// OnKill installs an observer invoked just before a resource-limit
// eviction tears a circuit down. Scenario engines use it to mark the
// victim's transfer as killed rather than silently incomplete.
func (n *Network) OnKill(fn func(*Circuit)) { n.onKill = fn }

// killCircuit is the eviction path a relay's resource manager triggers:
// flag the circuit, notify the observer, and tear it down network-wide
// (which releases every relay's hop, including the killer's).
func (n *Network) killCircuit(id cell.CircID) {
	c := n.circuits[id]
	if c == nil || c.closed {
		return
	}
	c.killed = true
	if n.onKill != nil {
		n.onKill(c)
	}
	c.Teardown()
}

// ResourceStats pools the resource-manager counters across all relays
// (zero-valued when no relay runs with limits).
func (n *Network) ResourceStats() resource.Stats {
	var total resource.Stats
	for _, r := range n.relays {
		if mgr := r.Resources(); mgr != nil {
			total.Merge(mgr.Stats())
		}
	}
	return total
}

// SchedDrops totals the frames dropped by installed schedulers
// (bandwidth policers) across relay uplinks and fabric trunks.
func (n *Network) SchedDrops() uint64 {
	var total uint64
	for _, r := range n.relays {
		total += r.Port().Uplink().Stats().SchedDrops
	}
	for _, l := range n.fabric.Trunks() {
		total += l.Stats().SchedDrops
	}
	return total
}

// Clock returns the shared virtual clock.
func (n *Network) Clock() *sim.Clock { return n.clock }

// Fabric exposes the underlying topology (for link statistics, trunk
// capacity events and routing diagnostics).
func (n *Network) Fabric() netem.Fabric { return n.fabric }

// Star is a compatibility shim for pre-Fabric callers: it returns the
// underlying StarFabric, or nil when the network runs on a different
// fabric.
//
// Deprecated: use Fabric() and type-assert to *netem.StarFabric when
// star-only diagnostics are required. The shim survives only for the
// pre-Fabric call sites pinned by fabric_test.go.
func (n *Network) Star() *netem.Star {
	s, _ := n.fabric.(*netem.StarFabric)
	return s
}

// Seed returns the experiment seed the network was created with.
func (n *Network) Seed() int64 { return n.seed }

// Now returns the current virtual time.
func (n *Network) Now() sim.Time { return n.clock.Now() }

// Run executes scheduled events until the queue drains and returns the
// final virtual time.
func (n *Network) Run() sim.Time { return n.clock.Run() }

// RunUntil executes events up to the horizon.
func (n *Network) RunUntil(horizon sim.Time) sim.Time { return n.clock.RunUntil(horizon) }

// AddRelay attaches a relay node with the given access parameters and
// generates its onion identity. Adding the same ID twice is an error.
func (n *Network) AddRelay(id netem.NodeID, access netem.AccessConfig) (*relay.Relay, error) {
	if _, dup := n.relays[id]; dup {
		return nil, fmt.Errorf("core: relay %q already added", id)
	}
	ident, err := onion.NewIdentity(randReader{n.keyRNG})
	if err != nil {
		return nil, fmt.Errorf("core: relay %q identity: %w", id, err)
	}
	r := relay.New(id, n.fabric, access, n.lossRNG)
	r.UseSegmentPool(n.segPool)
	if err := r.Configure(n.relayCfg, n.killCircuit); err != nil {
		return nil, fmt.Errorf("core: relay %q: %w", id, err)
	}
	n.relays[id] = r
	n.identities[id] = ident
	return r, nil
}

// MustAddRelay is AddRelay for static topologies where a failure is a
// programming error.
func (n *Network) MustAddRelay(id netem.NodeID, access netem.AccessConfig) *relay.Relay {
	r, err := n.AddRelay(id, access)
	if err != nil {
		panic(err)
	}
	return r
}

// Relay returns an attached relay, or nil.
func (n *Network) Relay(id netem.NodeID) *relay.Relay { return n.relays[id] }

// randReader adapts a deterministic RNG stream to io.Reader for key
// generation, keeping circuit builds reproducible across runs.
type randReader struct{ rng *sim.RNG }

func (r randReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.rng.Intn(256))
	}
	return len(p), nil
}
