package core

import (
	"testing"
	"time"

	"circuitstart/internal/metrics"
	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// TestMixedPoliciesCoexist runs a CircuitStart circuit and a classic
// slow-start circuit through the same relays simultaneously: both must
// complete, and the aggressive ramp must not starve the CircuitStart
// flow ("it is desired that Tor traffic behave much like background
// traffic").
func TestMixedPoliciesCoexist(t *testing.T) {
	n := NewNetwork(77)
	access := netem.Symmetric(units.Mbps(16), 5*time.Millisecond, 256*units.Kilobyte)
	relays := []netem.NodeID{"r1", "r2", "r3"}
	for _, id := range relays {
		n.MustAddRelay(id, access)
	}
	mk := func(i int, policy string) *Circuit {
		return n.MustBuildCircuit(CircuitSpec{
			Source:       netem.NodeID("client-" + policy),
			Sink:         netem.NodeID("server-" + policy),
			SourceAccess: netem.Symmetric(units.Mbps(100), 5*time.Millisecond, 0),
			SinkAccess:   netem.Symmetric(units.Mbps(100), 5*time.Millisecond, 0),
			Relays:       relays,
			Transport:    TransportOptions{Policy: policy},
		})
	}
	cs := mk(0, "circuitstart")
	ss := mk(1, "slowstart")

	size := 400 * units.Kilobyte
	cs.Transfer(size, nil)
	ss.Transfer(size, nil)
	n.RunUntil(120 * sim.Second)

	csT, csOK := cs.TTLB()
	ssT, ssOK := ss.TTLB()
	if !csOK || !ssOK {
		t.Fatalf("incomplete: cs=%v ss=%v", csOK, ssOK)
	}
	// Fair-share completion for two equal transfers over one bottleneck
	// would be ~2× the solo time. Jain's index over the two completion
	// times must stay above the value a 4:1 starvation would produce
	// (J(1,4) = 25/34 ≈ 0.735).
	jain := metrics.JainIndex([]float64{csT.Seconds(), ssT.Seconds()})
	if jain < 25.0/34.0 {
		t.Fatalf("gross unfairness (Jain %.3f): circuitstart %v vs slowstart %v", jain, csT, ssT)
	}
}

// TestManySmallCircuits stresses circuit multiplexing: 20 circuits with
// distinct endpoints share 6 relays.
func TestManySmallCircuits(t *testing.T) {
	n := NewNetwork(99)
	relays := make([]netem.NodeID, 6)
	for i := range relays {
		relays[i] = netem.NodeID(string(rune('a' + i)))
		n.MustAddRelay(relays[i], netem.Symmetric(units.Mbps(40), 3*time.Millisecond, 0))
	}
	circuits := make([]*Circuit, 20)
	for i := range circuits {
		path := []netem.NodeID{relays[i%6], relays[(i+2)%6], relays[(i+4)%6]}
		circuits[i] = n.MustBuildCircuit(CircuitSpec{
			Source:       netem.NodeID("c" + string(rune('A'+i))),
			Sink:         netem.NodeID("s" + string(rune('A'+i))),
			SourceAccess: netem.Symmetric(units.Mbps(50), 3*time.Millisecond, 0),
			SinkAccess:   netem.Symmetric(units.Mbps(50), 3*time.Millisecond, 0),
			Relays:       path,
		})
	}
	for _, c := range circuits {
		c.Transfer(50*units.Kilobyte, nil)
	}
	n.RunUntil(120 * sim.Second)
	for i, c := range circuits {
		if !c.Done() {
			t.Errorf("circuit %d incomplete", i)
		}
		if c.Sink().BadCells() != 0 {
			t.Errorf("circuit %d: %d bad cells (crypto state crossed circuits?)", i, c.Sink().BadCells())
		}
	}
}

// TestLongCircuit checks a 5-hop path (beyond Tor's default three):
// back-propagation must still reach the source.
func TestLongCircuit(t *testing.T) {
	n := NewNetwork(5)
	relays := []netem.NodeID{"h1", "h2", "h3", "h4", "h5"}
	for i, id := range relays {
		rate := units.Mbps(100)
		if i == 4 {
			rate = units.Mbps(8) // bottleneck at the far end
		}
		n.MustAddRelay(id, netem.Symmetric(rate, 4*time.Millisecond, 0))
	}
	c := n.MustBuildCircuit(CircuitSpec{
		Source: "client", Sink: "server",
		SourceAccess: netem.Symmetric(units.Mbps(100), 4*time.Millisecond, 0),
		SinkAccess:   netem.Symmetric(units.Mbps(100), 4*time.Millisecond, 0),
		Relays:       relays,
		TraceCwnd:    true,
	})
	c.Transfer(2*units.Megabyte, nil)
	n.RunUntil(5 * sim.Second)

	if !c.Done() && c.Sink().Received() == 0 {
		t.Fatal("no progress on 5-hop circuit")
	}
	opt := c.ModelPath().OptimalSourceWindowCells()
	if _, ok := c.SourceTrace().ConvergeTime(opt, opt*0.6, 0.25); !ok {
		last, _ := c.SourceTrace().Last()
		t.Fatalf("5-hop source window never converged near optimal %.1f (last %.1f)", opt, last.Value)
	}
}

// TestSingleHopCircuit checks the degenerate one-relay path.
func TestSingleHopCircuit(t *testing.T) {
	n := NewNetwork(6)
	n.MustAddRelay("only", netem.Symmetric(units.Mbps(10), 5*time.Millisecond, 0))
	c := n.MustBuildCircuit(CircuitSpec{
		Source: "client", Sink: "server",
		SourceAccess: netem.Symmetric(units.Mbps(100), 5*time.Millisecond, 0),
		SinkAccess:   netem.Symmetric(units.Mbps(100), 5*time.Millisecond, 0),
		Relays:       []netem.NodeID{"only"},
	})
	size := 300 * units.Kilobyte
	c.Transfer(size, nil)
	n.RunUntil(60 * sim.Second)
	if !c.Done() || c.Sink().Received() != size {
		t.Fatalf("single-hop transfer incomplete: %v", c.Sink().Received())
	}
}
