package core

import (
	"fmt"
	"testing"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// shardTestSpec is a four-switch line A—B—C—D with distinct positive
// trunk delays (every trunk is a legal partition cut) and one relay
// homed per switch. The client homes to A, the server to D, so a
// transfer crosses every trunk.
func shardTestSpec() netem.GraphSpec {
	return netem.GraphSpec{
		Switches: []netem.SwitchID{"A", "B", "C", "D"},
		Trunks: []netem.TrunkSpec{
			{A: "A", B: "B", Config: netem.SymmetricTrunk(units.Mbps(50), 4*time.Millisecond, 0)},
			{A: "B", B: "C", Config: netem.SymmetricTrunk(units.Mbps(40), 6*time.Millisecond, 0)},
			{A: "C", B: "D", Config: netem.SymmetricTrunk(units.Mbps(60), 5*time.Millisecond, 0)},
		},
		Homes: map[netem.NodeID]netem.SwitchID{
			"r1": "A", "r2": "B", "r3": "C", "r4": "D",
			"client": "A", "server": "D",
		},
	}
}

type shardRunResult struct {
	ttlb     time.Duration
	done     bool
	received units.DataSize
	trunks   []netem.LinkStats
	unknown  uint64
	cwnd     float64
}

// runUnshardedReference runs the reference single-clock trial.
func runUnshardedReference(t *testing.T, seed int64, size units.DataSize, horizon sim.Time) shardRunResult {
	t.Helper()
	spec := shardTestSpec()
	n := NewNetworkWithFabric(seed, func(clock *sim.Clock, lossRNG *sim.RNG) netem.Fabric {
		return spec.Build(clock, lossRNG)
	})
	access := netem.Symmetric(units.Mbps(30), 2*time.Millisecond, 0)
	for _, id := range []netem.NodeID{"r1", "r2", "r3", "r4"} {
		n.MustAddRelay(id, access)
	}
	c := n.MustBuildCircuit(CircuitSpec{
		Source: "client", Sink: "server",
		SourceAccess: access, SinkAccess: access,
		Relays: []netem.NodeID{"r1", "r2", "r3", "r4"},
	})
	c.Transfer(size, nil)
	n.RunUntil(horizon)
	var trunks []netem.LinkStats
	for _, l := range n.Fabric().Trunks() {
		trunks = append(trunks, l.Stats())
	}
	ttlb, done := c.TTLB()
	return shardRunResult{
		ttlb: ttlb, done: done,
		received: c.Sink().Received(),
		trunks:   trunks,
		unknown:  n.Fabric().UnknownDst() + n.Fabric().Unroutable(),
		cwnd:     c.SourceSender().Cwnd(),
	}
}

// runSharded runs the same trial on the sharded engine.
func runSharded(t *testing.T, seed int64, shards int, size units.DataSize, horizon sim.Time) shardRunResult {
	t.Helper()
	spec := shardTestSpec()
	sn, err := NewShardedNetwork(seed, spec, shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	access := netem.Symmetric(units.Mbps(30), 2*time.Millisecond, 0)
	for _, id := range []netem.NodeID{"r1", "r2", "r3", "r4"} {
		if _, err := sn.AddRelay(id, access); err != nil {
			t.Fatal(err)
		}
	}
	c, err := sn.BuildCircuit(CircuitSpec{
		Source: "client", Sink: "server",
		SourceAccess: access, SinkAccess: access,
		Relays: []netem.NodeID{"r1", "r2", "r3", "r4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.ScheduleTransfer(0, size, false, nil)
	sn.RunWindows(horizon, nil)
	var trunks []netem.LinkStats
	for _, l := range sn.Fabric().Trunks() {
		trunks = append(trunks, l.Stats())
	}
	ttlb, done := c.TTLB()
	return shardRunResult{
		ttlb: ttlb, done: done,
		received: c.sink.Received(),
		trunks:   trunks,
		unknown:  sn.Fabric().UnknownDst() + sn.Fabric().Unroutable(),
		cwnd:     c.SourceSender().Cwnd(),
	}
}

// TestShardedMatchesUnsharded pins the tentpole determinism contract at
// the core layer: a cross-backbone transfer must produce identical
// TTLB, final cwnd and per-trunk stats on the unsharded engine and on
// the sharded engine at every shard count.
func TestShardedMatchesUnsharded(t *testing.T) {
	const seed = 7
	size := 300 * units.Kilobyte
	horizon := 20 * sim.Second
	want := runUnshardedReference(t, seed, size, horizon)
	if !want.done || want.received != size {
		t.Fatalf("reference run incomplete: %v of %v", want.received, size)
	}
	for _, shards := range []int{1, 2, 3, 4, 8} {
		got := runSharded(t, seed, shards, size, horizon)
		if got.done != want.done || got.ttlb != want.ttlb {
			t.Errorf("shards=%d: ttlb=%v done=%v, want %v %v", shards, got.ttlb, got.done, want.ttlb, want.done)
		}
		if got.received != want.received {
			t.Errorf("shards=%d: received %v, want %v", shards, got.received, want.received)
		}
		if got.cwnd != want.cwnd {
			t.Errorf("shards=%d: final cwnd %v, want %v", shards, got.cwnd, want.cwnd)
		}
		if got.unknown != want.unknown {
			t.Errorf("shards=%d: %d unknown/unroutable drops, want %d", shards, got.unknown, want.unknown)
		}
		for i := range want.trunks {
			if got.trunks[i] != want.trunks[i] {
				t.Errorf("shards=%d trunk %d: stats %+v, want %+v", shards, i, got.trunks[i], want.trunks[i])
			}
		}
	}
}

// TestShardedLookaheadNeverViolated installs the debug hook and asserts
// every imported handoff arrives strictly after the destination shard's
// parked clock — the conservative bound.
func TestShardedLookaheadNeverViolated(t *testing.T) {
	violations := 0
	netem.ShardLookaheadCheck = func(shard int, now, arrival sim.Time) {
		if !arrival.After(now) {
			violations++
			t.Errorf("shard %d: handoff arrival %v not after clock %v", shard, arrival, now)
		}
	}
	defer func() { netem.ShardLookaheadCheck = nil }()
	got := runSharded(t, 11, 4, 200*units.Kilobyte, 20*sim.Second)
	if !got.done {
		t.Fatal("transfer incomplete")
	}
	if violations != 0 {
		t.Fatalf("%d lookahead violations", violations)
	}
}

// TestShardedFrameLeakBalance: every frame handed across a boundary is
// recycled exactly once — after the trial drains, each shard's pool has
// every frame it ever allocated back on its free list, and the export/
// import counters agree with empty boundary queues.
func TestShardedFrameLeakBalance(t *testing.T) {
	spec := shardTestSpec()
	sn, err := NewShardedNetwork(3, spec, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	access := netem.Symmetric(units.Mbps(30), 2*time.Millisecond, 0)
	for _, id := range []netem.NodeID{"r1", "r2", "r3", "r4"} {
		if _, err := sn.AddRelay(id, access); err != nil {
			t.Fatal(err)
		}
	}
	c, err := sn.BuildCircuit(CircuitSpec{
		Source: "client", Sink: "server",
		SourceAccess: access, SinkAccess: access,
		Relays: []netem.NodeID{"r1", "r2", "r3", "r4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.ScheduleTransfer(0, 150*units.Kilobyte, false, nil)
	sn.RunWindows(30*sim.Second, nil)
	if !c.Done() {
		t.Fatal("transfer incomplete")
	}
	fab := sn.Fabric()
	if !fab.Idle() {
		t.Fatal("fabric not idle after the horizon")
	}
	if fab.Exported() == 0 {
		t.Fatal("no boundary traffic — test topology does not cut the path")
	}
	if fab.Exported() != fab.Imported() {
		t.Fatalf("exported %d frames but imported %d", fab.Exported(), fab.Imported())
	}
	for i := 0; i < fab.NumShards(); i++ {
		pool := fab.Shard(i).FramePool()
		if pool.AllLen() != pool.FreeLen() {
			t.Errorf("shard %d: %d frames allocated, %d free — %s",
				i, pool.AllLen(), pool.FreeLen(),
				fmt.Sprintf("%d leaked or double-recycled", pool.AllLen()-pool.FreeLen()))
		}
	}
}
