package core

import (
	"testing"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// backboneNetwork builds a network on a two-switch fabric with the
// circuit's relays split across the trunk.
func backboneNetwork(t *testing.T, trunkRate units.DataRate) *Network {
	t.Helper()
	spec := netem.GraphSpec{
		Switches: []netem.SwitchID{"east", "west"},
		Trunks: []netem.TrunkSpec{
			{A: "west", B: "east", Config: netem.SymmetricTrunk(trunkRate, 3*time.Millisecond, 0)},
		},
		Homes: map[netem.NodeID]netem.SwitchID{
			"client": "west", "g": "west",
			"m": "east", "e": "east", "server": "east",
		},
	}
	n := NewNetworkWithFabric(7, func(clock *sim.Clock, rng *sim.RNG) netem.Fabric {
		return spec.Build(clock, rng)
	})
	access := netem.Symmetric(units.Mbps(100), 2*time.Millisecond, 0)
	for _, id := range []netem.NodeID{"g", "m", "e"} {
		n.MustAddRelay(id, access)
	}
	return n
}

func TestCircuitAcrossGraphFabric(t *testing.T) {
	n := backboneNetwork(t, units.Mbps(8))
	access := netem.Symmetric(units.Mbps(100), 2*time.Millisecond, 0)
	c := n.MustBuildCircuit(CircuitSpec{
		Source: "client", Sink: "server",
		SourceAccess: access, SinkAccess: access,
		Relays: []netem.NodeID{"g", "m", "e"},
	})
	c.Transfer(200*units.Kilobyte, nil)
	n.RunUntil(60 * sim.Second)
	ttlb, done := c.TTLB()
	if !done {
		t.Fatal("transfer did not complete across the backbone")
	}
	if ttlb <= 0 {
		t.Fatalf("TTLB = %v", ttlb)
	}
	// All forward data crossed the g(west) → m(east) trunk hop.
	gf := n.Fabric().(*netem.GraphFabric)
	if st := gf.Trunk("west", "east").Stats(); st.CellsDelivered == 0 {
		t.Error("no frames crossed the west>east trunk")
	}
	if gf.UnknownDst() != 0 || gf.Unroutable() != 0 {
		t.Errorf("fabric dropped frames: unknown=%d unroutable=%d",
			gf.UnknownDst(), gf.Unroutable())
	}
	// The shim reports this is not a star.
	if n.Star() != nil {
		t.Error("Star() shim returned non-nil on a graph fabric")
	}
}

func TestTrunkBottlenecksThroughput(t *testing.T) {
	// With a 4 Mbit/s trunk between 100 Mbit/s accesses, the trunk is
	// the bottleneck: the transfer cannot beat trunk line rate.
	n := backboneNetwork(t, units.Mbps(4))
	access := netem.Symmetric(units.Mbps(100), 2*time.Millisecond, 0)
	c := n.MustBuildCircuit(CircuitSpec{
		Source: "client", Sink: "server",
		SourceAccess: access, SinkAccess: access,
		Relays: []netem.NodeID{"g", "m", "e"},
	})
	const size = 500 * units.Kilobyte
	c.Transfer(size, nil)
	n.RunUntil(120 * sim.Second)
	ttlb, done := c.TTLB()
	if !done {
		t.Fatal("transfer did not complete")
	}
	// Wire bytes exceed application bytes (cell framing), so the floor
	// is conservative.
	floor := time.Duration(float64(size.Bytes()) * 8 / 4e6 * float64(time.Second))
	if ttlb < floor {
		t.Errorf("TTLB %v beats the 4 Mbit/s trunk floor %v", ttlb, floor)
	}
	if n.Fabric().BottleneckRate([]netem.NodeID{"client", "g", "m", "e", "server"}) != units.Mbps(4) {
		t.Error("BottleneckRate missed the trunk")
	}
	// The analytic model sees the trunk too: its bottleneck is the 4
	// Mbit/s trunk, not the 100 Mbit/s accesses, and the optimal
	// window is trunk-limited.
	if got := c.ModelPath().BottleneckRate(); got != units.Mbps(4) {
		t.Errorf("model BottleneckRate = %v, want the trunk's 4 Mbit/s", got)
	}
	star := NewNetwork(7)
	for _, id := range []netem.NodeID{"g", "m", "e"} {
		star.MustAddRelay(id, access)
	}
	sc := star.MustBuildCircuit(CircuitSpec{
		Source: "client", Sink: "server",
		SourceAccess: access, SinkAccess: access,
		Relays: []netem.NodeID{"g", "m", "e"},
	})
	if c.ModelPath().OptimalSourceWindowCells() >= sc.ModelPath().OptimalSourceWindowCells() {
		t.Errorf("trunk-limited optimal %v not below star optimal %v",
			c.ModelPath().OptimalSourceWindowCells(), sc.ModelPath().OptimalSourceWindowCells())
	}
}

func TestNewNetworkWithFabricValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil fabric accepted")
		}
	}()
	NewNetworkWithFabric(1, func(*sim.Clock, *sim.RNG) netem.Fabric { return nil })
}
