package traceio

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestCSVStream(t *testing.T) {
	var buf bytes.Buffer
	s, err := NewCSVStream(&buf, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write("1", "2", "3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Writef("x", 1.5, 7); err != nil {
		t.Fatal(err)
	}
	// Cells with commas, quotes and newlines must round-trip.
	if err := s.Write(`he said "hi"`, "a,b", "two\nlines"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("short"); err == nil {
		t.Fatal("row with wrong cell count accepted")
	}

	recs, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("stream output is not valid CSV: %v\n%s", err, buf.String())
	}
	want := [][]string{
		{"a", "b", "c"},
		{"1", "2", "3"},
		{"x", "1.5", "7"},
		{`he said "hi"`, "a,b", "two\nlines"},
	}
	if len(recs) != len(want) {
		t.Fatalf("%d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if strings.Join(recs[i], "\x00") != strings.Join(want[i], "\x00") {
			t.Errorf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
}

func TestCSVStreamNoColumns(t *testing.T) {
	if _, err := NewCSVStream(&bytes.Buffer{}); err == nil {
		t.Fatal("stream without columns accepted")
	}
}

func TestJSONLStream(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLStream(&buf)
	type rec struct {
		Name string  `json:"name"`
		V    float64 `json:"v"`
	}
	if err := s.Write(rec{"a", 1.25}); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(rec{"b", -3}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	var got rec
	if err := json.Unmarshal([]byte(lines[1]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "b" || got.V != -3 {
		t.Fatalf("line 2 = %+v", got)
	}
}
