// Package traceio writes experiment results in formats matching the
// paper's figures: CSV with a header row (directly loadable by gnuplot,
// pandas, or R) and aligned plain-text tables for terminal output.
//
// Writers take io.Writer so experiments can stream to files, buffers in
// tests, or stdout from the CLI.
package traceio

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"

	"circuitstart/internal/metrics"
	"circuitstart/internal/sim"
)

// WriteSeriesCSV writes one time series as (time_ms, value) rows. The
// header names the value column after the series.
func WriteSeriesCSV(w io.Writer, s *metrics.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_ms", s.Name()}); err != nil {
		return err
	}
	for _, p := range s.Points() {
		rec := []string{
			formatFloat(p.At.Milliseconds()),
			formatFloat(p.Value),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriessCSV writes several series side by side on a shared time
// axis using step interpolation: one row per distinct sample instant
// across all series. Cells before a series' first sample are empty.
func WriteSeriessCSV(w io.Writer, series ...*metrics.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("traceio: no series")
	}
	header := make([]string, 1, len(series)+1)
	header[0] = "time_ms"
	for _, s := range series {
		header = append(header, s.Name())
	}

	// Merge all sample instants.
	seen := make(map[sim.Time]bool)
	var instants []sim.Time
	for _, s := range series {
		for _, p := range s.Points() {
			if !seen[p.At] {
				seen[p.At] = true
				instants = append(instants, p.At)
			}
		}
	}
	sort.Slice(instants, func(i, j int) bool { return instants[i] < instants[j] })

	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(series)+1)
	for _, t := range instants {
		row[0] = formatFloat(t.Milliseconds())
		for i, s := range series {
			if v, ok := s.At(t); ok {
				row[i+1] = formatFloat(v)
			} else {
				row[i+1] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCDFCSV writes one or more empirical CDFs as step plots. Columns
// are (value, p) pairs per distribution; distributions of different
// lengths leave trailing cells empty.
func WriteCDFCSV(w io.Writer, dists ...*metrics.Distribution) error {
	if len(dists) == 0 {
		return fmt.Errorf("traceio: no distributions")
	}
	header := make([]string, 0, 2*len(dists))
	cdfs := make([][]metrics.CDFPoint, len(dists))
	maxLen := 0
	for i, d := range dists {
		header = append(header, d.Name(), d.Name()+"_p")
		cdfs[i] = d.CDF()
		if len(cdfs[i]) > maxLen {
			maxLen = len(cdfs[i])
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 2*len(dists))
	for r := 0; r < maxLen; r++ {
		for i := range dists {
			if r < len(cdfs[i]) {
				row[2*i] = formatFloat(cdfs[i][r].Value)
				row[2*i+1] = formatFloat(cdfs[i][r].P)
			} else {
				row[2*i] = ""
				row[2*i+1] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSummaryTable writes aligned summary rows for several
// distributions — the terminal-friendly version of a results table.
func WriteSummaryTable(w io.Writer, dists ...*metrics.Distribution) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "name\tn\tmean\tsd\tmin\tp25\tp50\tp75\tp90\tp99\tmax")
	for _, d := range dists {
		s := d.Summarize()
		fmt.Fprintf(tw, "%s\t%d\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\n",
			s.Name, s.N, s.Mean, s.StdDev, s.Min, s.P25, s.Median, s.P75, s.P90, s.P99, s.Max)
	}
	return tw.Flush()
}

// Table is a generic aligned text table for experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	if len(header) == 0 {
		panic("traceio: table without columns")
	}
	return &Table{header: header}
}

// AddRow appends a row. The cell count must match the header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.header) {
		panic(fmt.Sprintf("traceio: row with %d cells in table with %d columns", len(cells), len(t.header)))
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted values: strings pass through,
// float64s are compacted, everything else uses %v.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			out[i] = v
		case float64:
			out[i] = formatFloat(v)
		default:
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(out...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteText writes the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	writeTabRow(tw, t.header)
	for _, r := range t.rows {
		writeTabRow(tw, r)
	}
	return tw.Flush()
}

// WriteCSV writes the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeTabRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}

// formatFloat renders a float compactly (no trailing zeros, full
// precision where needed).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 8, 64)
}
