package traceio_test

import (
	"os"

	"circuitstart/internal/metrics"
	"circuitstart/internal/traceio"
)

// Aligned text tables, as every circuitsim subcommand prints them.
func ExampleTable() {
	tbl := traceio.NewTable("arm", "median_s", "p90_s")
	tbl.AddRowf("circuitstart", 1.694, 2.681)
	tbl.AddRowf("backtap", 1.881, 2.595)
	if err := tbl.WriteText(os.Stdout); err != nil {
		panic(err)
	}
	// Output:
	// arm           median_s  p90_s
	// circuitstart  1.694     2.681
	// backtap       1.881     2.595
}

// CSV CDFs, directly loadable by gnuplot, pandas or R.
func ExampleWriteCDFCSV() {
	with := metrics.NewDistribution("ttlb_with")
	without := metrics.NewDistribution("ttlb_without")
	for _, v := range []float64{1.0, 2.0} {
		with.Add(v)
		without.Add(v + 0.5)
	}
	if err := traceio.WriteCDFCSV(os.Stdout, with, without); err != nil {
		panic(err)
	}
	// Output:
	// ttlb_with,ttlb_with_p,ttlb_without,ttlb_without_p
	// 1,0.5,1.5,0.5
	// 2,1,2.5,1
}
