package traceio

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"circuitstart/internal/metrics"
	"circuitstart/internal/sim"
)

func ms(v int) sim.Time { return sim.Time(v) * sim.Millisecond }

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	return rows
}

func TestWriteSeriesCSV(t *testing.T) {
	s := metrics.NewSeries("cwnd_kb")
	s.Record(ms(0), 1)
	s.Record(ms(10), 2.5)

	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0][0] != "time_ms" || rows[0][1] != "cwnd_kb" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][0] != "0" || rows[1][1] != "1" {
		t.Fatalf("row 1 = %v", rows[1])
	}
	if rows[2][0] != "10" || rows[2][1] != "2.5" {
		t.Fatalf("row 2 = %v", rows[2])
	}
}

func TestWriteSeriessCSVAlignsOnSharedAxis(t *testing.T) {
	a := metrics.NewSeries("a")
	a.Record(ms(0), 1)
	a.Record(ms(20), 3)
	b := metrics.NewSeries("b")
	b.Record(ms(10), 5)

	var buf bytes.Buffer
	if err := WriteSeriessCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	// Header + 3 distinct instants.
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4: %v", len(rows), rows)
	}
	// At 0ms: a=1, b empty (before its first sample).
	if rows[1][1] != "1" || rows[1][2] != "" {
		t.Fatalf("t=0 row = %v", rows[1])
	}
	// At 10ms: a holds 1, b=5.
	if rows[2][1] != "1" || rows[2][2] != "5" {
		t.Fatalf("t=10 row = %v", rows[2])
	}
	// At 20ms: a=3, b holds 5.
	if rows[3][1] != "3" || rows[3][2] != "5" {
		t.Fatalf("t=20 row = %v", rows[3])
	}
}

func TestWriteSeriessCSVEmptyArgs(t *testing.T) {
	if err := WriteSeriessCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("no error for zero series")
	}
}

func TestWriteCDFCSV(t *testing.T) {
	with := metrics.NewDistribution("with_cs")
	for _, v := range []float64{1, 2} {
		with.Add(v)
	}
	without := metrics.NewDistribution("without_cs")
	for _, v := range []float64{1.5, 2.5, 3.5} {
		without.Add(v)
	}
	var buf bytes.Buffer
	if err := WriteCDFCSV(&buf, with, without); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	if rows[0][0] != "with_cs" || rows[0][3] != "without_cs_p" {
		t.Fatalf("header = %v", rows[0])
	}
	// Shorter distribution leaves trailing cells empty.
	if rows[3][0] != "" || rows[3][1] != "" {
		t.Fatalf("short-dist padding missing: %v", rows[3])
	}
	if rows[3][2] != "3.5" || rows[3][3] != "1" {
		t.Fatalf("long dist tail = %v", rows[3])
	}
}

func TestWriteCDFCSVEmptyArgs(t *testing.T) {
	if err := WriteCDFCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("no error for zero distributions")
	}
}

func TestWriteSummaryTable(t *testing.T) {
	d := metrics.NewDistribution("ttlb_s")
	for i := 1; i <= 10; i++ {
		d.Add(float64(i))
	}
	var buf bytes.Buffer
	if err := WriteSummaryTable(&buf, d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ttlb_s") || !strings.Contains(out, "p90") {
		t.Fatalf("summary table missing fields:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
}

func TestTableTextAndCSV(t *testing.T) {
	tb := NewTable("policy", "ttlb_s", "cells")
	tb.AddRow("circuitstart", "1.2", "100")
	tb.AddRowf("slowstart", 1.75, 100)
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}

	var txt bytes.Buffer
	if err := tb.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "circuitstart") || !strings.Contains(txt.String(), "1.75") {
		t.Fatalf("text table:\n%s", txt.String())
	}

	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 || rows[2][1] != "1.75" {
		t.Fatalf("csv rows = %v", rows)
	}
}

func TestTablePanics(t *testing.T) {
	t.Run("no columns", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		NewTable()
	})
	t.Run("cell mismatch", func(t *testing.T) {
		tb := NewTable("a", "b")
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		tb.AddRow("only-one")
	})
}
