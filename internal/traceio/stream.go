package traceio

import (
	"encoding/json"
	"fmt"
	"io"
)

// CSVStream writes CSV rows incrementally — the streaming counterpart
// of Table for producers (like the sweep engine) that emit results as
// they become available instead of accumulating them first. The header
// fixes the column count; every row must match it.
type CSVStream struct {
	w    io.Writer
	cols int
}

// NewCSVStream writes the header row and returns a stream bound to it.
func NewCSVStream(w io.Writer, header ...string) (*CSVStream, error) {
	if len(header) == 0 {
		return nil, fmt.Errorf("traceio: CSV stream without columns")
	}
	s := &CSVStream{w: w, cols: len(header)}
	return s, s.Write(header...)
}

// NewCSVStreamNoHeader returns a stream that writes no header row —
// for appending rows to a file that already carries one.
func NewCSVStreamNoHeader(w io.Writer, columns int) (*CSVStream, error) {
	if columns <= 0 {
		return nil, fmt.Errorf("traceio: CSV stream without columns")
	}
	return &CSVStream{w: w, cols: columns}, nil
}

// Write appends one row. The cell count must match the header.
func (s *CSVStream) Write(cells ...string) error {
	if len(cells) != s.cols {
		return fmt.Errorf("traceio: row with %d cells in CSV stream with %d columns", len(cells), s.cols)
	}
	return writeCSVRecord(s.w, cells)
}

// Writef appends a row of formatted values with Table.AddRowf's rules:
// strings pass through, float64s are compacted, everything else uses %v.
func (s *CSVStream) Writef(cells ...any) error {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			out[i] = v
		case float64:
			out[i] = formatFloat(v)
		default:
			out[i] = fmt.Sprintf("%v", c)
		}
	}
	return s.Write(out...)
}

// writeCSVRecord writes one record immediately (encoding/csv buffers
// whole records internally; going through a per-row Flush would lose
// write errors, so the quoting is done here — the cells the simulator
// emits never need quoting, but a comma or quote in a label must not
// corrupt the file).
func writeCSVRecord(w io.Writer, cells []string) error {
	for i, c := range cells {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if needsQuoting(c) {
			if _, err := io.WriteString(w, quoteCSV(c)); err != nil {
				return err
			}
		} else if _, err := io.WriteString(w, c); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

func needsQuoting(c string) bool {
	for i := 0; i < len(c); i++ {
		switch c[i] {
		case ',', '"', '\n', '\r':
			return true
		}
	}
	return false
}

func quoteCSV(c string) string {
	out := make([]byte, 0, len(c)+2)
	out = append(out, '"')
	for i := 0; i < len(c); i++ {
		if c[i] == '"' {
			out = append(out, '"', '"')
			continue
		}
		out = append(out, c[i])
	}
	return string(append(out, '"'))
}

// Flusher is the optional push-side of a streaming writer. It is
// satisfied by bufio.Writer and (via a wrapper) net/http's
// ResponseWriter flusher — declared here so sinks can flush transports
// without importing them.
type Flusher interface {
	Flush()
}

// AutoFlushWriter forwards every Write to w and then flushes f — the
// adapter that turns a buffered or chunked transport (an HTTP response,
// say) into a live row stream: each CSV/JSONL record the sweep sinks
// emit reaches the client immediately instead of sitting in a buffer
// until the sweep ends. Output bytes are untouched, so a streamed file
// is byte-identical to a batch-written one.
type AutoFlushWriter struct {
	w io.Writer
	f Flusher
}

// NewAutoFlushWriter wraps w; flush may be nil (then writes pass
// through unflushed, so callers can wrap unconditionally).
func NewAutoFlushWriter(w io.Writer, flush Flusher) *AutoFlushWriter {
	return &AutoFlushWriter{w: w, f: flush}
}

// Write implements io.Writer.
func (a *AutoFlushWriter) Write(p []byte) (int, error) {
	n, err := a.w.Write(p)
	if err == nil && a.f != nil {
		a.f.Flush()
	}
	return n, err
}

// JSONLStream writes one compact JSON value per line (JSON Lines) —
// the machine-readable streaming format for sweep results and similar
// record sequences.
type JSONLStream struct {
	enc *json.Encoder
}

// NewJSONLStream returns a stream writing to w.
func NewJSONLStream(w io.Writer) *JSONLStream {
	return &JSONLStream{enc: json.NewEncoder(w)}
}

// Write appends one value as a single JSON line.
func (s *JSONLStream) Write(v any) error { return s.enc.Encode(v) }
