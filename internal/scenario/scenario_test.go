package scenario

import (
	"testing"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// testScenario is a small two-arm aggregate scenario with replications
// — every determinism-relevant code path (generated topology, sampled
// paths, uniform arrivals, substreamed replications) in one run.
func testScenario() Scenario {
	pop := workload.DefaultRelayParams(12)
	return Scenario{
		Name:     "determinism",
		Seed:     7,
		Topology: Topology{Population: &pop},
		Circuits: CircuitSet{
			Count:        6,
			TransferSize: 200 * units.Kilobyte,
			Arrival:      Arrival{Kind: ArriveUniform, Spread: 100 * time.Millisecond},
		},
		Arms: []Arm{
			{Name: "with", Transport: core.TransportOptions{}},
			{Name: "without", Transport: core.TransportOptions{Policy: "backtap"}},
		},
		Horizon:      600 * sim.Second,
		Replications: 2,
	}
}

// assertResultsIdentical compares two Results bit for bit.
func assertResultsIdentical(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Arms) != len(b.Arms) {
		t.Fatalf("arm counts %d vs %d", len(a.Arms), len(b.Arms))
	}
	for i := range a.Arms {
		aa, ba := a.Arms[i], b.Arms[i]
		if aa.Name != ba.Name || aa.Incomplete != ba.Incomplete {
			t.Fatalf("arm %d: %q/%d vs %q/%d", i, aa.Name, aa.Incomplete, ba.Name, ba.Incomplete)
		}
		as, bs := aa.TTLB.Sorted(), ba.TTLB.Sorted()
		if len(as) != len(bs) {
			t.Fatalf("arm %q: sample counts %d vs %d", aa.Name, len(as), len(bs))
		}
		for j := range as {
			if as[j] != bs[j] {
				t.Fatalf("arm %q sample %d: %v vs %v", aa.Name, j, as[j], bs[j])
			}
		}
		if len(aa.Circuits) != len(ba.Circuits) {
			t.Fatalf("arm %q: outcome counts %d vs %d", aa.Name, len(aa.Circuits), len(ba.Circuits))
		}
		for j := range aa.Circuits {
			ao, bo := aa.Circuits[j], ba.Circuits[j]
			if ao.Replication != bo.Replication || ao.Index != bo.Index ||
				ao.TTLB != bo.TTLB || ao.Done != bo.Done ||
				ao.ExitCwnd != bo.ExitCwnd || ao.ExitTime != bo.ExitTime ||
				ao.Restarts != bo.Restarts || ao.OptimalCells != bo.OptimalCells ||
				ao.Aborted != bo.Aborted || ao.StartAt != bo.StartAt ||
				ao.Rebuilds != bo.Rebuilds {
				t.Fatalf("arm %q outcome %d differs: %+v vs %+v", aa.Name, j, ao, bo)
			}
		}
	}
}

func TestRunnerWorkerCountDeterminism(t *testing.T) {
	// The tentpole guarantee: Workers: 1 and Workers: 8 produce
	// bit-identical Results for the same seed, because every trial owns
	// its network and aggregation order is fixed by trial index.
	serial, err := Runner{Workers: 1}.Run(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Workers: 8}.Run(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, serial, parallel)
}

func TestRunnerReplicationSubstreams(t *testing.T) {
	res, err := Runner{Workers: 4}.Run(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	arm := res.Arms[0]
	if got := arm.TTLB.Len() + arm.Incomplete; got != 12 {
		t.Fatalf("pooled %d outcomes, want 6 circuits × 2 reps", got)
	}
	// Replication 1 runs an independent seed substream: its workload
	// must differ from replication 0's.
	same := true
	for i := 0; i < 6; i++ {
		if arm.Circuits[i].TTLB != arm.Circuits[6+i].TTLB {
			same = false
			break
		}
	}
	if same {
		t.Error("replications produced identical outcomes — substream not applied")
	}
}

func TestRunnerExplicitTopology(t *testing.T) {
	relays := []RelaySpec{
		{ID: "r1", Access: netem.Symmetric(units.Mbps(100), 5*time.Millisecond, 0)},
		{ID: "r2", Access: netem.Symmetric(units.Mbps(8), 5*time.Millisecond, 0)},
		{ID: "r3", Access: netem.Symmetric(units.Mbps(100), 5*time.Millisecond, 0)},
	}
	sc := Scenario{
		Seed:     42,
		Topology: Topology{Relays: relays},
		Circuits: CircuitSet{
			Paths:        [][]netem.NodeID{{"r1", "r2", "r3"}},
			TransferSize: 500 * units.Kilobyte,
		},
		Arms:    []Arm{{Name: "default"}},
		Horizon: 60 * sim.Second,
		Probes:  Probes{TraceCwnd: true},
	}
	res, err := Runner{Workers: 2}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	o := res.Arms[0].Circuits[0]
	if !o.Done {
		t.Fatal("transfer incomplete")
	}
	if o.Trace == nil || o.Trace.Len() == 0 {
		t.Fatal("no cwnd trace despite TraceCwnd probe")
	}
	if o.OptimalCells <= 0 {
		t.Fatalf("optimal cells %v", o.OptimalCells)
	}
	// Count defaulted from the single path.
	if res.Scenario.Circuits.Count != 1 {
		t.Fatalf("count defaulted to %d", res.Scenario.Circuits.Count)
	}
}

func TestRunnerPoissonArrivals(t *testing.T) {
	sc := testScenario()
	sc.Circuits.Arrival = Arrival{Kind: ArrivePoisson, Rate: 50}
	sc.Replications = 1
	res, err := Runner{Workers: 4}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range res.Arms {
		if arm.Incomplete > 0 {
			t.Fatalf("arm %q left %d incomplete", arm.Name, arm.Incomplete)
		}
		if arm.TTLB.Len() != 6 {
			t.Fatalf("arm %q has %d samples", arm.Name, arm.TTLB.Len())
		}
	}
	// Identical across worker counts too.
	again, err := Runner{Workers: 1}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, res, again)
}

func TestArrivalDelays(t *testing.T) {
	cs := CircuitSet{Arrival: Arrival{Kind: ArrivePoisson, Rate: 100}}
	delays := arrivalDelays(1, cs, 20)
	var prev time.Duration
	for i, d := range delays {
		if d <= prev {
			t.Fatalf("arrival %d at %v not after %v", i, d, prev)
		}
		prev = d
	}
	cs = CircuitSet{Arrival: Arrival{Kind: ArriveUniform, Spread: time.Second}}
	for i, d := range arrivalDelays(1, cs, 20) {
		if d < 0 || d >= time.Second {
			t.Fatalf("uniform delay %d = %v outside [0, 1s)", i, d)
		}
	}
	cs = CircuitSet{}
	for i, d := range arrivalDelays(1, cs, 3) {
		if d != 0 {
			t.Fatalf("together delay %d = %v", i, d)
		}
	}
}

func TestScenarioValidation(t *testing.T) {
	pop := workload.DefaultRelayParams(8)
	relay := RelaySpec{ID: "r1", Access: netem.Symmetric(units.Mbps(10), time.Millisecond, 0)}
	base := func() Scenario {
		return Scenario{
			Seed:     1,
			Topology: Topology{Population: &pop},
			Circuits: CircuitSet{Count: 2, TransferSize: units.Kilobyte},
			Arms:     []Arm{{Name: "a"}},
			Horizon:  sim.Second,
		}
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"no topology", func(s *Scenario) { s.Topology = Topology{} }},
		{"both topologies", func(s *Scenario) { s.Topology.Relays = []RelaySpec{relay} }},
		{"no arms", func(s *Scenario) { s.Arms = nil }},
		{"unnamed arm", func(s *Scenario) { s.Arms = []Arm{{}} }},
		{"duplicate arms", func(s *Scenario) { s.Arms = []Arm{{Name: "a"}, {Name: "a"}} }},
		{"no horizon", func(s *Scenario) { s.Horizon = 0 }},
		{"negative reps", func(s *Scenario) { s.Replications = -1 }},
		{"no transfer size", func(s *Scenario) { s.Circuits.TransferSize = 0 }},
		{"uniform without spread", func(s *Scenario) { s.Circuits.Arrival.Kind = ArriveUniform }},
		{"poisson without rate", func(s *Scenario) { s.Circuits.Arrival.Kind = ArrivePoisson }},
		{"paths on generated", func(s *Scenario) { s.Circuits.Paths = [][]netem.NodeID{{"r1"}} }},
		{"events on generated", func(s *Scenario) { s.Events = []LinkEvent{{At: 1, Relay: "r1", Rate: units.Mbps(1)}} }},
		{"full horizon on generated", func(s *Scenario) { s.RunFullHorizon = true }},
		{"explicit without paths", func(s *Scenario) {
			s.Topology = Topology{Relays: []RelaySpec{relay}}
		}},
		{"path names unknown relay", func(s *Scenario) {
			s.Topology = Topology{Relays: []RelaySpec{relay}}
			s.Circuits.Paths = [][]netem.NodeID{{"ghost"}}
		}},
		{"event names unknown relay", func(s *Scenario) {
			s.Topology = Topology{Relays: []RelaySpec{relay}}
			s.Circuits.Paths = [][]netem.NodeID{{"r1"}}
			s.Events = []LinkEvent{{At: 1, Relay: "ghost", Rate: units.Mbps(1)}}
		}},
		{"path count mismatch", func(s *Scenario) {
			s.Topology = Topology{Relays: []RelaySpec{relay}}
			s.Circuits.Count = 3
			s.Circuits.Paths = [][]netem.NodeID{{"r1"}, {"r1"}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base()
			tc.mutate(&sc)
			if _, err := (Runner{Workers: 1}).Run(sc); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
}

func TestTrialSeedSubstreams(t *testing.T) {
	if trialSeed(42, 0) != 42 {
		t.Fatal("replication 0 must use the scenario seed itself")
	}
	seen := map[int64]bool{42: true}
	for rep := 1; rep < 100; rep++ {
		s := trialSeed(42, rep)
		if seen[s] {
			t.Fatalf("substream collision at rep %d", rep)
		}
		seen[s] = true
	}
}

func TestResultAccessors(t *testing.T) {
	sc := testScenario()
	sc.Replications = 1
	sc.Circuits.Count = 3
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arm("with") == nil || res.Arm("nope") != nil {
		t.Fatal("Arm lookup broken")
	}
	if got := res.Summaries(); len(got) != 2 {
		t.Fatalf("%d summaries", len(got))
	}
	// CircuitStart should not lose to plain BackTap on its home turf.
	if gap := res.MedianGap("with", "without"); gap > 0.05 {
		t.Errorf("median gap %+.3fs — circuitstart slower than backtap", gap)
	}
}
