package scenario

import (
	"errors"
	"fmt"
	"time"

	"circuitstart/internal/arena"
	"circuitstart/internal/core"
	"circuitstart/internal/directory"
	"circuitstart/internal/faults"
	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// CircuitEvents configures circuit-level churn: instead of a fixed set
// of circuits living forever, circuits become dynamic entities — new
// downloads arrive over freshly built circuits mid-run, completed
// circuits are torn down (their cell and timer state released back to
// the pools), and initial circuits can be killed on a schedule. The
// zero value disables churn and preserves the static execution path
// byte for byte.
type CircuitEvents struct {
	// ArrivalRate, when positive, adds an open-loop Poisson process of
	// new downloads (mean arrivals per second, stream
	// "scenario-churn"): at each arrival a fresh circuit is built — its
	// path sampled bandwidth-weighted from the consensus on generated
	// topologies (excluding currently-failed relays), or cycling
	// Circuits.Paths on explicit ones — and a TransferSize download
	// starts immediately.
	ArrivalRate float64
	// Arrivals bounds the Poisson process (required with ArrivalRate).
	Arrivals int
	// TeardownDelay is how long a completed download's circuit lingers
	// before teardown (0 = torn down at the completion instant). With
	// churn active this applies to every download, initial or arrived.
	// Setting it alone (no arrivals, no scheduled teardowns) still
	// enables the lifecycle engine: every circuit is torn down after
	// its download completes.
	TeardownDelay time.Duration
	// Teardowns schedules hard teardowns of initial circuits: the
	// circuit is closed at the given instant regardless of transfer
	// progress, and an unfinished download is recorded as aborted.
	Teardowns []TeardownEvent
}

// enabled reports whether any circuit-level churn is configured.
func (ce CircuitEvents) enabled() bool {
	return ce.ArrivalRate > 0 || len(ce.Teardowns) > 0 || ce.TeardownDelay > 0
}

// TeardownEvent schedules the teardown of one initial circuit.
type TeardownEvent struct {
	// At is the teardown instant.
	At sim.Time
	// Index names the initial circuit (0 ≤ Index < Circuits.Count).
	Index int
}

// RelayEventKind selects a relay churn action.
type RelayEventKind int

const (
	// RelayFail takes the relay out of service: it blackholes every
	// frame until recovery. Circuits crossing it at that instant are
	// torn down; arms with Rebuild set rebuild them over a fresh path.
	RelayFail RelayEventKind = iota
	// RelayRecover puts a failed relay back in service; new circuits
	// may be built through it again.
	RelayRecover
)

// RelayEvent schedules a relay failure or recovery.
type RelayEvent struct {
	At    sim.Time
	Relay netem.NodeID
	Kind  RelayEventKind
}

// hasChurn reports whether the scenario exercises the dynamic circuit
// lifecycle at all. When false, trials run the exact pre-churn
// execution path, preserving seeded outputs byte for byte.
func (sc *Scenario) hasChurn() bool {
	return sc.CircuitEvents.enabled() || len(sc.RelayEvents) > 0 || sc.Faults.Enabled()
}

// validateChurn checks the churn-specific scenario fields. Called from
// validate once the topology fields are known-good.
func (sc *Scenario) validateChurn() error {
	ce := sc.CircuitEvents
	if ce.ArrivalRate < 0 || ce.Arrivals < 0 {
		return fmt.Errorf("scenario: negative churn arrival configuration")
	}
	if (ce.ArrivalRate > 0) != (ce.Arrivals > 0) {
		return fmt.Errorf("scenario: churn arrivals need both ArrivalRate and Arrivals")
	}
	if ce.TeardownDelay < 0 {
		return fmt.Errorf("scenario: negative teardown delay")
	}
	for i, td := range ce.Teardowns {
		if td.At <= 0 {
			return fmt.Errorf("scenario: teardown %d at %v", i, td.At)
		}
		if td.Index < 0 || td.Index >= sc.Circuits.Count {
			return fmt.Errorf("scenario: teardown %d names circuit %d of %d", i, td.Index, sc.Circuits.Count)
		}
	}
	relayKnown := sc.relayIDSet()
	for i, ev := range sc.RelayEvents {
		if ev.At <= 0 {
			return fmt.Errorf("scenario: relay event %d at %v", i, ev.At)
		}
		if ev.Kind != RelayFail && ev.Kind != RelayRecover {
			return fmt.Errorf("scenario: relay event %d has unknown kind %d", i, ev.Kind)
		}
		if !relayKnown[ev.Relay] {
			return fmt.Errorf("scenario: relay event %d names unknown relay %q", i, ev.Relay)
		}
	}
	for i, a := range sc.Arms {
		if a.Rebuild && sc.Topology.Population == nil {
			return fmt.Errorf("scenario: arm %d (%q) sets Rebuild, which needs a generated Population consensus", i, a.Name)
		}
	}
	var hasTrunk func(a, b netem.SwitchID) bool
	if sc.Topology.Fabric != nil {
		hasTrunk = sc.Topology.Fabric.HasTrunk
	}
	if err := sc.Faults.Validate(relayKnown, hasTrunk); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

// relayIDSet returns the set of relay IDs the topology will contain —
// explicit IDs, or the deterministic names of the generated population.
func (sc *Scenario) relayIDSet() map[netem.NodeID]bool {
	out := make(map[netem.NodeID]bool)
	for _, r := range sc.Topology.Relays {
		out[r.ID] = true
	}
	if p := sc.Topology.Population; p != nil {
		for i := 0; i < p.N; i++ {
			out[workload.RelayID(i)] = true
		}
	}
	return out
}

// download is one logical transfer tracked by the churn engine. A
// download survives circuit rebuilds: when a relay failure kills its
// circuit, a Rebuild arm gives it a fresh circuit and restarts the
// transfer, and the download's TTLB spans first start to final
// completion — so repeated startups show up in the distribution.
type download struct {
	index    int
	circuit  *core.Circuit
	startAt  sim.Time // first transfer start
	started  bool
	done     bool
	aborted  bool
	killed   bool // evicted by a relay's resource manager
	rejected bool // refused at circuit admission
	ttlb     time.Duration
	rebuild  int

	// Recovery-engine state (zero unless Faults.Recovery is enabled;
	// the slab zeroes these on reuse like everything else).
	lastProgress uint64   // progressOf at the last watchdog check
	stalled      bool     // inside a declared stall
	stalledAt    sim.Time // when the open stall was declared
	retries      int      // rebuild attempts spent from the budget
	wgen         uint64   // watchdog generation; bumps invalidate chains
	ended        bool     // availability accounting closed
	est          *transport.RTTEstimator
	delivered    units.DataSize // bytes banked from discarded circuits
}

// churnEngine drives one trial's dynamic circuit lifecycle on a single
// network/clock, so everything it does is deterministic regardless of
// the worker pool running the trial.
type churnEngine struct {
	sc     Scenario
	arm    Arm
	n      *core.Network
	cons   *directory.Consensus // nil on explicit topologies
	access netem.AccessConfig
	seed   int64

	pathRNG   *sim.RNG // churn-arrival and rebuild path sampling
	downloads []*download
	dlSlab    *arena.Slab[download] // nil without an arena
	failed    map[netem.NodeID]bool
	churn     ChurnStats

	// Fault-injection state (nil/zero without a fault plan).
	inj      *faults.Injector
	recovRNG *sim.RNG // recovery rebuild path sampling, own stream
	resil    ResilienceStats
}

// newDownload allocates a ledger entry — from the trial arena's slab
// when one is in play (churn-heavy trials create thousands), from the
// heap otherwise.
func (e *churnEngine) newDownload(index int) *download {
	if e.dlSlab != nil {
		d := e.dlSlab.New()
		d.index = index
		return d
	}
	return &download{index: index}
}

// runChurn executes one trial with the dynamic circuit lifecycle:
// initial circuits start per the arrival process exactly as in the
// static path (same RNG streams), then churn arrivals, scheduled
// teardowns and relay failure/recovery play out on the trial's clock.
func runChurn(sc Scenario, arm Arm, seed int64, rep int, ar *arena.Arena) ([]CircuitOutcome, NetStats, ChurnStats, ResilienceStats, error) {
	e := &churnEngine{
		sc:      sc,
		arm:     arm,
		seed:    seed,
		pathRNG: sim.NewRNG(seed, "scenario-churn-paths"),
		failed:  make(map[netem.NodeID]bool),
	}
	if ar != nil {
		e.dlSlab = ar.Slot("scenario.downloads", func() any {
			return new(arena.Slab[download])
		}).(*arena.Slab[download])
	}
	e.churn.Lifetime = newLifetimeDist(arm.Name)

	var initial []*core.Circuit
	if sc.Topology.Population != nil {
		wsc, err := workload.Build(seed, workloadParams(sc, arm, ar))
		if err != nil {
			return nil, NetStats{}, ChurnStats{}, ResilienceStats{}, err
		}
		e.n, e.cons, initial = wsc.Network, wsc.Consensus, wsc.Circuits
		e.access = wsc.Params.ClientAccess
	} else {
		n, circuits, access, err := buildExplicit(sc, arm, seed, ar)
		if err != nil {
			return nil, NetStats{}, ChurnStats{}, ResilienceStats{}, err
		}
		e.n, initial, e.access = n, circuits, access
	}
	scheduleEvents(e.n, sc.Events)
	e.watchKills()
	if sc.Faults.Enabled() {
		e.inj = faults.Install(e.n, sc.Faults, seed)
	}
	if sc.Faults.Recovery.Enabled {
		e.recovRNG = sim.NewRNG(seed, "faults-recovery-paths")
		e.resil.TTR = newTTRDist(arm.Name)
	}

	// Initial downloads follow the scenario's declared arrival process,
	// drawn from the runner's own streams ("scenario-starts" /
	// "scenario-arrivals"). Note this is not byte-compatible with the
	// static generated-population path, whose together/uniform arrivals
	// go through workload.Scenario.Run and its "workload-starts" stream
	// — enabling churn is allowed to change the realized start times.
	// A nil slot is a circuit refused at admission by a resource-limited
	// relay; its download is recorded as rejected and never starts.
	delays := arrivalDelays(seed, sc.Circuits, len(initial))
	for i, c := range initial {
		d := e.newDownload(i)
		d.circuit = c
		e.downloads = append(e.downloads, d)
		if c == nil {
			d.aborted, d.rejected = true, true
			e.churn.Aborted++
			e.churn.Rejected++
			continue
		}
		e.churn.Built++
		if c.Closed() {
			// Evicted at build time (admission kill), before the kill
			// observer was installed — account the lifecycle here.
			d.aborted, d.killed = true, true
			e.churn.Aborted++
			e.churn.TornDown++
			e.churn.Lifetime.Add(c.Lifetime().Seconds())
			continue
		}
		e.scheduleStart(d, delays[i])
	}

	// Churn arrivals: an independent Poisson stream, so the initial
	// workload is unchanged by enabling churn.
	if ce := sc.CircuitEvents; ce.ArrivalRate > 0 {
		rng := sim.NewRNG(seed, "scenario-churn")
		var at time.Duration
		for j := 0; j < ce.Arrivals; j++ {
			at += time.Duration(rng.Exponential(1/ce.ArrivalRate) * float64(time.Second))
			d := e.newDownload(len(e.downloads))
			e.downloads = append(e.downloads, d)
			delay := at
			e.n.Clock().After(delay, func() { e.arrive(d) })
		}
	}
	for _, td := range sc.CircuitEvents.Teardowns {
		d := e.downloads[td.Index]
		e.n.Clock().At(td.At, func() { e.abort(d) })
	}
	for _, ev := range sc.RelayEvents {
		ev := ev
		e.n.Clock().At(ev.At, func() { e.relayEvent(ev) })
	}

	// No Stop(): teardown releases every timer, so the queue drains on
	// its own once the last download finishes (or the horizon cuts a
	// stalled one off).
	e.n.RunUntil(sc.Horizon)
	return e.collect(rep), netStats(e.n), e.churn, e.resil, nil
}

// scheduleStart arms download d's first transfer start after delay. A
// scheduled teardown may kill the circuit before the staggered start
// arrives (the start is then dropped — the download is already
// accounted as aborted), and a relay failure may have replaced the
// circuit with a rebuilt one (the start then proceeds on it).
func (e *churnEngine) scheduleStart(d *download, delay time.Duration) {
	start := func() {
		if d.started || d.aborted || d.circuit.Closed() {
			return
		}
		d.started = true
		d.startAt = e.n.Now()
		e.startTransfer(d)
	}
	if delay == 0 {
		start()
	} else {
		e.n.Clock().After(delay, start)
	}
}

// startTransfer begins (or, after a rebuild, restarts) d's transfer on
// its current circuit.
func (e *churnEngine) startTransfer(d *download) {
	size := e.sc.Circuits.sizeFor(d.index)
	onDone := func(time.Duration) { e.complete(d) }
	if e.sc.Circuits.Download {
		d.circuit.TransferBackward(size, onDone)
	} else {
		d.circuit.Transfer(size, onDone)
	}
	if e.recoveryOn() {
		e.ensureEst(d)
		d.wgen++ // invalidate watchdog chains from a previous circuit
		d.lastProgress = e.progressOf(d)
		e.armWatchdog(d)
	}
}

// watchKills observes resource-manager evictions. The kill path tears
// the circuit down directly (bypassing e.teardown), so the lifecycle
// accounting happens here, and the victim's download is marked killed
// rather than left looking stalled.
func (e *churnEngine) watchKills() {
	e.n.OnKill(func(c *core.Circuit) {
		for _, d := range e.downloads {
			if d.circuit == c && !d.done && !d.aborted {
				d.aborted, d.killed = true, true
				e.churn.Aborted++
				e.endActive(d)
				break
			}
		}
		e.churn.TornDown++
		e.churn.Lifetime.Add(c.Lifetime().Seconds())
	})
}

// arrive builds a fresh circuit for churn download d and starts it.
// With recovery enabled, a failed build enters the retry/backoff ladder
// instead of aborting outright — build failures get the same treatment
// as stalls.
func (e *churnEngine) arrive(d *download) {
	if e.recoveryOn() {
		if err := e.buildOn(d, e.pathRNG, e.inj.ExcludedWith(e.failed)); err != nil {
			if errors.Is(err, core.ErrCircuitRejected) {
				e.churn.Rejected++
			}
			e.tryRebuild(d)
			return
		}
	} else if !e.buildFresh(d) {
		return
	}
	d.started = true
	d.startAt = e.n.Now()
	e.startTransfer(d)
}

// buildFresh gives download d a freshly built circuit. On a generated
// topology the path is sampled from the consensus, skipping failed
// relays; explicit topologies cycle the declared paths (arrival
// indices run past Count). If no path is currently available (every
// candidate for some position is down) or the build fails, the
// download is recorded as aborted and buildFresh reports false.
func (e *churnEngine) buildFresh(d *download) bool {
	err := e.buildOn(d, e.pathRNG, e.failed)
	if err == nil {
		return true
	}
	if errors.Is(err, core.ErrCircuitRejected) {
		d.rejected = true
		e.churn.Rejected++
	}
	// Building over declared relays cannot fail after validation;
	// treat a failure as an aborted download rather than a panic.
	d.aborted = true
	e.churn.Aborted++
	e.endActive(d)
	return false
}

// buildOn builds download d a circuit over a path sampled with the
// given RNG stream, excluding excl — the shared primitive under churn
// rebuilds (pathRNG, scripted failures) and recovery rebuilds (recovRNG,
// failures plus fault-suspect relays). On success the circuit is
// installed and counted; the caller owns failure accounting.
func (e *churnEngine) buildOn(d *download, rng *sim.RNG, excl map[netem.NodeID]bool) error {
	var path []netem.NodeID
	if e.cons != nil {
		descs, err := e.cons.SelectPathExcluding(rng, e.hops(), excl)
		if err != nil {
			return err
		}
		path = make([]netem.NodeID, len(descs))
		for i, dd := range descs {
			path[i] = dd.ID
		}
	} else {
		path = e.sc.Circuits.path(d.index % len(e.sc.Circuits.Paths))
	}
	c, err := e.buildCircuit(d, path)
	if err != nil {
		return err
	}
	d.circuit = c
	e.churn.Built++
	return nil
}

// hops returns the sampled path length on generated topologies.
func (e *churnEngine) hops() int {
	if e.sc.Circuits.Hops > 0 {
		return e.sc.Circuits.Hops
	}
	return 3
}

// buildCircuit builds a circuit for download d over the given relay
// path. Rebuilds get distinct endpoint node IDs (ports cannot be
// re-attached), marked with the rebuild ordinal.
func (e *churnEngine) buildCircuit(d *download, path []netem.NodeID) (*core.Circuit, error) {
	source := fmt.Sprintf("client-%03d", d.index)
	sink := fmt.Sprintf("server-%03d", d.index)
	if d.rebuild > 0 {
		source = fmt.Sprintf("%s.r%d", source, d.rebuild)
		sink = fmt.Sprintf("%s.r%d", sink, d.rebuild)
	}
	return e.n.BuildCircuit(core.CircuitSpec{
		Source:       netem.NodeID(source),
		Sink:         netem.NodeID(sink),
		SourceAccess: e.access,
		SinkAccess:   e.access,
		Relays:       path,
		Transport:    e.arm.Transport,
		TraceCwnd:    e.sc.Probes.TraceCwnd,
	})
}

// complete records download d's completion and schedules its circuit's
// teardown after the configured linger.
func (e *churnEngine) complete(d *download) {
	d.done = true
	d.ttlb = e.n.Now().Sub(d.startAt)
	if e.recoveryOn() {
		if d.stalled {
			// Completion arrived before the watchdog saw new progress;
			// the recovery span runs to the completion instant.
			e.recordRecovery(d)
		}
		e.endActive(d)
	}
	circ := d.circuit
	if delay := e.sc.CircuitEvents.TeardownDelay; delay > 0 {
		e.n.Clock().After(delay, func() { e.teardown(circ) })
	} else {
		e.teardown(circ)
	}
}

// abort tears download d down before completion (a scheduled teardown
// of an initial circuit).
func (e *churnEngine) abort(d *download) {
	if d.done || d.aborted || d.circuit == nil || d.circuit.Closed() {
		return
	}
	d.aborted = true
	e.churn.Aborted++
	e.endActive(d)
	e.teardown(d.circuit)
}

// teardown closes a circuit and accounts its lifetime.
func (e *churnEngine) teardown(c *core.Circuit) {
	if c.Closed() {
		return
	}
	c.Teardown()
	e.churn.TornDown++
	e.churn.Lifetime.Add(c.Lifetime().Seconds())
}

// relayEvent applies one relay failure or recovery. On failure, every
// live circuit crossing the relay is torn down; Rebuild arms give the
// affected downloads fresh circuits over paths that avoid all
// currently-failed relays and restart their transfers from scratch —
// each rebuild pays a full startup again.
func (e *churnEngine) relayEvent(ev RelayEvent) {
	r := e.n.Relay(ev.Relay)
	if ev.Kind == RelayRecover {
		delete(e.failed, ev.Relay)
		r.Recover()
		return
	}
	if e.failed[ev.Relay] {
		return
	}
	e.failed[ev.Relay] = true
	r.Fail()
	for _, d := range e.downloads {
		if d.done || d.aborted || d.circuit == nil || d.circuit.Closed() {
			continue
		}
		if !crossesRelay(d.circuit, ev.Relay) {
			continue
		}
		if e.recoveryOn() {
			// Bank the dying circuit's delivered bytes for goodput.
			d.delivered += e.receivedOn(d.circuit)
		}
		e.teardown(d.circuit)
		if !e.arm.Rebuild || e.cons == nil {
			d.aborted = true
			e.churn.Aborted++
			e.endActive(d)
			continue
		}
		d.rebuild++
		if !e.buildFresh(d) {
			continue
		}
		e.churn.Rebuilt++
		// Restart only a transfer that was actually running; a download
		// still waiting for its staggered start keeps that schedule and
		// simply starts on the rebuilt circuit.
		if d.started {
			e.startTransfer(d)
		}
	}
}

// crossesRelay reports whether the circuit's path contains the relay.
func crossesRelay(c *core.Circuit, id netem.NodeID) bool {
	for _, r := range c.Relays() {
		if r == id {
			return true
		}
	}
	return false
}

// collect renders the engine's downloads into outcomes, in download
// index order. Circuits still alive at the horizon are torn down here
// so their lifetimes and pooled state are accounted too.
func (e *churnEngine) collect(rep int) []CircuitOutcome {
	out := make([]CircuitOutcome, len(e.downloads))
	for i, d := range e.downloads {
		o := CircuitOutcome{
			Replication: rep,
			Index:       i,
			TTLB:        d.ttlb,
			Done:        d.done,
			Aborted:     d.aborted,
			Killed:      d.killed,
			Rejected:    d.rejected,
			StartAt:     d.startAt,
			Rebuilds:    d.rebuild,
		}
		if d.circuit != nil {
			e.teardown(d.circuit)
			o.OptimalCells = d.circuit.ModelPath().OptimalSourceWindowCells()
			st := d.circuit.SourceSender().Stats()
			o.ExitCwnd, o.ExitTime, o.Restarts = st.ExitCwnd, st.ExitTime, st.Restarts
			if e.sc.Probes.TraceCwnd {
				o.Trace = d.circuit.SourceTrace()
			}
		}
		if e.recoveryOn() {
			// Downloads still running (or stalled) at the horizon close
			// their availability accounting here; endpoint objects
			// survive Teardown, so the final circuit's bytes are
			// readable for goodput.
			e.endActive(d)
			e.resil.GoodputBytes += float64(d.delivered + e.receivedOn(d.circuit))
		}
		out[i] = o
	}
	return out
}
