package scenario_test

import (
	"fmt"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/netem"
	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// A single-circuit scenario over an explicit topology: one slow relay
// between two fast ones, one policy arm, deterministic outcome.
func Example() {
	fast := netem.Symmetric(units.Mbps(100), 5*time.Millisecond, 0)
	slow := netem.Symmetric(units.Mbps(8), 5*time.Millisecond, 0)
	res, err := scenario.Runner{Workers: 1}.Run(scenario.Scenario{
		Name: "example",
		Seed: 42,
		Topology: scenario.Topology{Relays: []scenario.RelaySpec{
			{ID: "r1", Access: fast},
			{ID: "r2", Access: slow},
			{ID: "r3", Access: fast},
		}},
		Circuits: scenario.CircuitSet{
			Paths:        [][]netem.NodeID{{"r1", "r2", "r3"}},
			TransferSize: 500 * units.Kilobyte,
		},
		Arms:    []scenario.Arm{{Name: "circuitstart"}},
		Horizon: 60 * sim.Second,
	})
	if err != nil {
		panic(err)
	}
	o := res.Arms[0].Circuits[0]
	fmt.Printf("done=%v ttlb=%v\n", o.Done, o.TTLB.Round(time.Millisecond))
	// Output:
	// done=true ttlb=746ms
}

// Circuit churn as scenario data: downloads arrive over fresh circuits,
// completed circuits are torn down, a relay fails mid-run and the
// Rebuild arm rebuilds the circuits it killed over new paths. The
// ChurnStats aggregate reports the lifecycle activity per arm.
func Example_churn() {
	pop := workload.DefaultRelayParams(12)
	res, err := scenario.Runner{Workers: 2}.Run(scenario.Scenario{
		Name:     "example-churn",
		Seed:     42,
		Topology: scenario.Topology{Population: &pop},
		Circuits: scenario.CircuitSet{
			Count:        4,
			TransferSize: 150 * units.Kilobyte,
		},
		Arms: []scenario.Arm{
			{Name: "circuitstart", Rebuild: true},
			{Name: "backtap", Transport: core.TransportOptions{Policy: "backtap"}, Rebuild: true},
		},
		CircuitEvents: scenario.CircuitEvents{ArrivalRate: 10, Arrivals: 6},
		RelayEvents: []scenario.RelayEvent{
			{At: 200 * sim.Millisecond, Relay: "relay-011", Kind: scenario.RelayFail},
			{At: 2 * sim.Second, Relay: "relay-011", Kind: scenario.RelayRecover},
		},
		Horizon: 600 * sim.Second,
	})
	if err != nil {
		panic(err)
	}
	for _, arm := range res.Arms {
		c := arm.Churn
		fmt.Printf("%s: built=%d torn_down=%d rebuilt=%d completed=%d\n",
			arm.Name, c.Built, c.TornDown, c.Rebuilt, arm.TTLB.Len())
	}
	// Output:
	// circuitstart: built=12 torn_down=12 rebuilt=2 completed=10
	// backtap: built=12 torn_down=12 rebuilt=2 completed=10
}
