package scenario

import (
	"errors"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
)

// This file is the endpoint-side recovery engine: with
// Faults.Recovery.Enabled, every download runs a progress watchdog that
// detects transport stalls the overlay's scripted churn machinery
// cannot see (hung relays, flapped links, partitioned trunks), tears
// the dead circuit down, and rebuilds around the failure with capped
// exponential backoff.
//
// The state machine per download:
//
//	running --(no progress for StallRTOs×RTO)--> stalled
//	stalled --(backoff, rebuild ok)--> running   (recovery recorded on
//	                                              first new progress)
//	stalled --(rebuild failed)--> stalled        (backoff doubles)
//	stalled --(MaxRetries exhausted)--> abandoned
//
// Re-entering onStall while already stalled (a rebuilt circuit stalling
// again before any progress) neither re-records the stall instant nor
// counts a new stall: the downtime span covers the whole outage.

// recoveryOn reports whether the trial runs the stall detector.
func (e *churnEngine) recoveryOn() bool { return e.sc.Faults.Recovery.Enabled }

// ensureEst lazily creates download d's recovery RTT estimator, clamped
// by the plan's RTO bounds.
func (e *churnEngine) ensureEst(d *download) {
	if d.est == nil {
		rec := e.sc.Faults.Recovery
		d.est = transport.NewRTTEstimator(rec.RTOMin, rec.RTOMax)
	}
}

// progressOf folds every signal that the download's transport is moving
// into one counter: forward ACK/FEEDBACK progress, bytes landed at the
// receiving endpoint (either direction), and backward-sender progress
// for download-direction transfers. Any frame surviving the faulted
// path bumps at least one term.
func (e *churnEngine) progressOf(d *download) uint64 {
	c := d.circuit
	st := c.SourceSender().Stats()
	p := st.Acked + st.Feedback
	p += uint64(c.Sink().Received())
	p += uint64(c.Source().Downloaded())
	if bs := c.Sink().BackwardSender(); bs != nil {
		bst := bs.Stats()
		p += bst.Acked + bst.Feedback
	}
	return p
}

// receivedOn returns the bytes the transfer's receiving endpoint got on
// this circuit — the goodput contribution of a circuit being discarded.
func (e *churnEngine) receivedOn(c *core.Circuit) units.DataSize {
	if c == nil {
		return 0
	}
	if e.sc.Circuits.Download {
		return c.Source().Downloaded()
	}
	return c.Sink().Received()
}

// armWatchdog schedules the next progress check, bound to the current
// watchdog generation so chains armed before a rebuild die silently.
func (e *churnEngine) armWatchdog(d *download) {
	gen := d.wgen
	deadline := time.Duration(e.sc.Faults.Recovery.StallRTOs) * d.est.RTO()
	e.n.Clock().After(deadline, func() { e.checkProgress(d, gen) })
}

// checkProgress is the watchdog body: progress since the last check
// re-arms (and closes any open stall); none declares a stall.
func (e *churnEngine) checkProgress(d *download, gen uint64) {
	if gen != d.wgen || d.done || d.aborted {
		return
	}
	if d.circuit == nil || d.circuit.Closed() {
		// Torn down by a scripted event between checks; the event's own
		// handling (abort, rebuild) owns the download now.
		return
	}
	if p := e.progressOf(d); p != d.lastProgress {
		d.lastProgress = p
		if d.stalled {
			e.recordRecovery(d)
		}
		// Feed the live path's RTT so the stall deadline tracks the
		// network (Sample also resets the backoff ladder).
		if srtt := d.circuit.SourceSender().SRTT(); srtt > 0 {
			d.est.Sample(srtt)
		}
		e.armWatchdog(d)
		return
	}
	e.onStall(d)
}

// onStall declares the download stalled, banks the dead circuit's
// delivered bytes, tears it down and enters the rebuild ladder.
func (e *churnEngine) onStall(d *download) {
	if !d.stalled {
		d.stalled = true
		d.stalledAt = e.n.Now()
		e.resil.Stalls++
	}
	d.delivered += e.receivedOn(d.circuit)
	e.teardown(d.circuit)
	e.tryRebuild(d)
}

// tryRebuild spends one retry from the budget: back off, then rebuild.
func (e *churnEngine) tryRebuild(d *download) {
	if d.retries >= e.sc.Faults.Recovery.MaxRetries {
		e.abandon(d)
		return
	}
	d.retries++
	e.resil.Retries++
	e.ensureEst(d)
	d.est.Backoff()
	gen := d.wgen
	e.n.Clock().After(d.est.RTO(), func() { e.rebuildAfterStall(d, gen) })
}

// rebuildAfterStall attempts the circuit rebuild a backoff delay after
// a stall (or failed build): a fresh path avoiding both scripted-failed
// and currently-suspect relays, sampled from the recovery engine's own
// RNG stream so arming recovery never perturbs churn path draws. A
// failed build re-enters the ladder — circuit-build timeouts get the
// same retry/backoff treatment as stalls.
func (e *churnEngine) rebuildAfterStall(d *download, gen uint64) {
	if gen != d.wgen || d.done || d.aborted {
		return
	}
	d.rebuild++
	if err := e.buildOn(d, e.recovRNG, e.inj.ExcludedWith(e.failed)); err != nil {
		if errors.Is(err, core.ErrCircuitRejected) {
			e.churn.Rejected++
		}
		e.tryRebuild(d)
		return
	}
	e.churn.Rebuilt++
	if !d.started {
		// A churn arrival whose very first build failed: it starts now.
		d.started = true
		d.startAt = e.n.Now()
	}
	e.startTransfer(d)
}

// recordRecovery closes an open stall: time-to-recovery is the span
// from the stall declaration to the first subsequent progress (or to
// completion, whichever lands first).
func (e *churnEngine) recordRecovery(d *download) {
	span := e.n.Now().Sub(d.stalledAt).Seconds()
	e.resil.Recoveries++
	e.resil.TTR.Add(span)
	e.resil.Downtime += span
	d.stalled = false
}

// abandon gives up on a download after the retry budget is spent.
func (e *churnEngine) abandon(d *download) {
	d.aborted = true
	e.churn.Aborted++
	e.resil.Abandoned++
	e.endActive(d)
}

// endActive closes the download's availability accounting exactly once,
// at its terminal transition (completion, abort, abandonment, or the
// horizon). Active time spans first start to the terminal instant;
// any still-open stall is charged to downtime through the same instant.
func (e *churnEngine) endActive(d *download) {
	if !e.recoveryOn() || d.ended {
		return
	}
	d.ended = true
	now := e.n.Now()
	if d.started {
		e.resil.Active += now.Sub(d.startAt).Seconds()
	}
	if d.stalled {
		d.stalled = false
		e.resil.Downtime += now.Sub(d.stalledAt).Seconds()
	}
}
