package scenario

import (
	"strings"
	"testing"
	"time"

	"circuitstart/internal/arena"
	"circuitstart/internal/core"
	"circuitstart/internal/faults"
	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// faultedScenario exercises every fault class at once on an explicit
// two-switch topology: Gilbert–Elliott burst loss on one guard, a hang
// on the other, and a backbone trunk partition that darkens every
// circuit — with endpoint recovery rebuilding the stalled downloads.
// The explicit paths make the fault targets deterministic: both guards
// carry circuits, so both the loss and the hang are guaranteed to hit
// live traffic.
func faultedScenario() Scenario {
	access := netem.Symmetric(units.Mbps(20), 2*time.Millisecond, 0)
	spec := netem.GraphSpec{
		Switches: []netem.SwitchID{"east", "west"},
		Trunks: []netem.TrunkSpec{{
			A: "west", B: "east",
			Config: netem.TrunkConfig{Rate: units.Mbps(16), Delay: 2 * time.Millisecond},
		}},
		Homes: map[netem.NodeID]netem.SwitchID{
			"g-000": "west", "g-001": "west", "e-000": "east", "e-001": "east",
			"client-000": "west", "client-001": "west", "client-002": "west", "client-003": "west",
			"server-000": "east", "server-001": "east", "server-002": "east", "server-003": "east",
		},
	}
	return Scenario{
		Name: "faulted",
		Seed: 7,
		Topology: Topology{
			Relays: []RelaySpec{
				{ID: "g-000", Access: access}, {ID: "e-000", Access: access},
				{ID: "g-001", Access: access}, {ID: "e-001", Access: access},
			},
			Fabric: &spec,
		},
		Circuits: CircuitSet{
			Count: 4,
			Paths: [][]netem.NodeID{
				{"g-000", "e-000"}, {"g-001", "e-001"},
				{"g-000", "e-000"}, {"g-001", "e-001"},
			},
			TransferSize: 400 * units.Kilobyte,
			Arrival:      Arrival{Kind: ArriveUniform, Spread: 50 * time.Millisecond},
		},
		Arms: []Arm{{Name: "circuitstart"}},
		Faults: faults.Plan{
			BurstLoss: []faults.BurstLoss{{
				Relay: "g-001", From: 200 * sim.Millisecond, Until: 5 * sim.Second,
				PGoodBad: 0.02, PBadGood: 0.1, LossBad: 0.5,
			}},
			Degrades: []faults.Degrade{{
				Relay: "g-000", Mode: faults.DegradeHang,
				At: 300 * sim.Millisecond, RecoverAfter: 2 * time.Second,
			}},
			Partitions: []faults.Partition{{
				TrunkA: "west", TrunkB: "east",
				At: 4 * sim.Second, HealAfter: time.Second,
			}},
			Recovery: faults.Recovery{
				Enabled: true, MaxRetries: 6, RTOMax: 2 * time.Second,
			},
		},
		Horizon:      120 * sim.Second,
		Replications: 2,
	}
}

func TestFaultsWorkerCountDeterminism(t *testing.T) {
	serial, err := Runner{Workers: 1}.Run(faultedScenario())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Workers: 8}.Run(faultedScenario())
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, serial, parallel)
	for i := range serial.Arms {
		sr, pr := serial.Arms[i].Resilience, parallel.Arms[i].Resilience
		if sr.Stalls != pr.Stalls || sr.Recoveries != pr.Recoveries ||
			sr.Retries != pr.Retries || sr.Abandoned != pr.Abandoned ||
			sr.Downtime != pr.Downtime || sr.Active != pr.Active ||
			sr.GoodputBytes != pr.GoodputBytes {
			t.Fatalf("arm %d resilience stats differ: %+v vs %+v", i, sr, pr)
		}
		ss, ps := sr.TTR.Sorted(), pr.TTR.Sorted()
		if len(ss) != len(ps) {
			t.Fatalf("arm %d TTR sample counts %d vs %d", i, len(ss), len(ps))
		}
		for j := range ss {
			if ss[j] != ps[j] {
				t.Fatalf("arm %d TTR sample %d: %v vs %v", i, j, ss[j], ps[j])
			}
		}
	}
}

func TestFaultsRecoveryLifecycle(t *testing.T) {
	res, err := Runner{Workers: 4}.Run(faultedScenario())
	if err != nil {
		t.Fatal(err)
	}
	r := res.Arms[0].Resilience
	// The hang blackholes two circuits and the partition darkens all
	// four, so stalls are certain; every fault heals well before the
	// horizon, so recoveries are too.
	if r.Stalls == 0 {
		t.Fatal("fault plan produced no stalls")
	}
	if r.Recoveries == 0 {
		t.Fatal("no download recovered")
	}
	if r.TTR.Len() != r.Recoveries {
		t.Fatalf("%d TTR samples for %d recoveries", r.TTR.Len(), r.Recoveries)
	}
	if r.Retries == 0 {
		t.Fatal("recoveries without rebuild retries")
	}
	if r.Active <= 0 {
		t.Fatalf("active time %v", r.Active)
	}
	if a := r.Availability(); a <= 0 || a >= 1 {
		t.Fatalf("availability %v, want in (0,1) under faults", a)
	}
	if r.GoodputBytes <= 0 {
		t.Fatalf("goodput bytes %v", r.GoodputBytes)
	}
	// Every download terminates decisively: completed, or abandoned
	// after the retry budget (abandons count as aborted outcomes).
	for _, o := range res.Arms[0].Circuits {
		if !o.Done && !o.Aborted {
			t.Fatalf("download %d neither done nor aborted: %+v", o.Index, o)
		}
	}
	if res.Arms[0].TTLB.Len() == 0 {
		t.Fatal("nothing completed under the fault plan")
	}
}

// TestRecoveryOnlyPlanPreservesOutcomes pins the observer property of
// the stall detector: on a trial that makes steady progress the
// watchdogs only read state, so enabling recovery on a churn run with
// no fault sources must leave every per-circuit outcome identical.
// (The baseline itself uses the dynamic engine — a TeardownDelay alone
// enables it — because a fault plan routes through that engine, not
// the static path.)
func TestRecoveryOnlyPlanPreservesOutcomes(t *testing.T) {
	base := testScenario()
	base.CircuitEvents.TeardownDelay = 10 * time.Millisecond
	plain, err := Runner{Workers: 2}.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	watched := testScenario()
	watched.CircuitEvents.TeardownDelay = 10 * time.Millisecond
	watched.Faults = faults.Plan{Recovery: faults.Recovery{Enabled: true}}
	guarded, err := Runner{Workers: 2}.Run(watched)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, plain, guarded)
	r := guarded.Arms[0].Resilience
	if r.Stalls != 0 || r.Retries != 0 || r.Abandoned != 0 {
		t.Fatalf("fault-free run reported stalls: %+v", r)
	}
}

// TestFaultedTrialPoolBalance is the leak check for the faulted
// execution paths: every frame dropped by a downed link, a loss model
// or a hung relay must return to the arena's frame pool, and no
// watchdog or fault timer may keep rearming after the trial's circuits
// are gone.
func TestFaultedTrialPoolBalance(t *testing.T) {
	sc := faultedScenario()
	if err := sc.validate(); err != nil {
		t.Fatal(err)
	}
	ar := arena.New()
	_, _, _, resil, err := runChurn(sc, sc.Arms[0], sc.Seed, 0, ar)
	if err != nil {
		t.Fatal(err)
	}
	if resil.Stalls == 0 {
		t.Fatal("trial exercised no faulted paths")
	}
	// The engine stops its clock at the last terminal download; drain
	// the stragglers (in-flight frames, fault heal events) to the rest
	// state the pool contract is defined at.
	ar.Clock.Run()
	if p := ar.Clock.Pending(); p != 0 {
		t.Fatalf("%d events still pending after a drained faulted trial", p)
	}
	if free, all := ar.Frames.FreeLen(), ar.Frames.AllLen(); free != all {
		t.Fatalf("frame pool leak after faulted trial: %d free of %d allocated", free, all)
	}
}

// TestFaultsValidation checks that bad plans are refused at scenario
// validation with errors naming the offending entry, and that netem
// misconfiguration surfaces as a validation error rather than a panic
// inside a trial worker.
func TestFaultsValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"unknown relay", func(sc *Scenario) {
			sc.Faults.Degrades[0].Relay = "ghost"
		}, "unknown relay"},
		{"bad probability", func(sc *Scenario) {
			sc.Faults.BurstLoss[0].LossBad = 1.5
		}, "loss-bad"},
		{"inverted window", func(sc *Scenario) {
			sc.Faults.BurstLoss[0].Until = sc.Faults.BurstLoss[0].From
		}, "window"},
		{"unknown trunk", func(sc *Scenario) {
			sc.Faults.Partitions[0].TrunkA = "north"
		}, "unknown trunk"},
		{"bad rate factor", func(sc *Scenario) {
			sc.Faults.Degrades[0].Mode = faults.DegradeSlow
			sc.Faults.Degrades[0].RateFactor = 0
		}, "rate factor"},
		{"inverted RTO bounds", func(sc *Scenario) {
			sc.Faults.Recovery.RTOMin = 5 * time.Second
		}, "RTO bounds"},
		{"bad access rate", func(sc *Scenario) {
			sc.Topology.Relays[0].Access.UpRate = 0
		}, "g-000"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := faultedScenario()
			tc.mut(&sc)
			_, err := Run(sc)
			if err == nil {
				t.Fatal("invalid scenario accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// A partition on a topology without a fabric must be refused too.
	pop := workload.DefaultRelayParams(8)
	sc := Scenario{
		Name:     "no-fabric",
		Seed:     1,
		Topology: Topology{Population: &pop},
		Circuits: CircuitSet{Count: 2, TransferSize: 100 * units.Kilobyte},
		Arms:     []Arm{{Name: "a", Transport: core.TransportOptions{}}},
		Faults: faults.Plan{Partitions: []faults.Partition{{
			TrunkA: "west", TrunkB: "east", At: sim.Second,
		}}},
		Horizon: 60 * sim.Second,
	}
	if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), "no fabric") {
		t.Fatalf("partition without fabric: err = %v", err)
	}
}
