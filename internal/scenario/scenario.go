// Package scenario is the declarative experiment layer: a Scenario
// describes a complete experiment — topology, circuits, policy arms and
// instrumentation — as plain data, and a Runner expands it into
// independent trials, fans them out across a worker pool and aggregates
// the outcomes into a Result.
//
// Every figure and ablation of the paper is expressible as a Scenario
// (package experiments builds exactly those), but the API composes
// beyond them: arbitrary policy arms, explicit or generated topologies,
// Poisson arrivals, capacity-step events and replicated runs. Circuits
// are dynamic entities — CircuitEvents adds churn (downloads arriving
// over fresh circuits, teardown of completed ones) and RelayEvents
// schedules relay failures/recoveries with per-arm rebuild policies —
// while zero-valued churn fields preserve the static execution path
// byte for byte.
//
// Determinism is a hard guarantee: each trial builds its own
// core.Network from a seed-derived substream and the aggregation order
// is fixed by the trial index, so a Result is bit-identical regardless
// of the worker count or the order in which trials happen to finish.
package scenario

import (
	"fmt"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/faults"
	"circuitstart/internal/netem"
	"circuitstart/internal/relay"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// RelaySpec pins one explicit relay of a Scenario topology.
type RelaySpec struct {
	ID     netem.NodeID
	Access netem.AccessConfig
}

// Topology describes a Scenario's relay population and the fabric it
// attaches to. Exactly one of Relays (an explicit, fixed topology — the
// single-circuit figure setups) or Population (a generated Tor-like
// population — the aggregate experiments) must be set; Fabric
// optionally composes with either.
type Topology struct {
	// Relays lists explicit relays, attached in order.
	Relays []RelaySpec
	// Population generates a seeded synthetic relay population with a
	// bandwidth-weighted consensus for path sampling.
	Population *workload.RelayParams
	// Fabric, when set, replaces the default star with a routed
	// backbone built from this spec (switches, trunk links, node
	// homes — see workload.GenerateBackbone). Every trial builds its
	// own fabric from the spec, preserving the worker-count
	// determinism guarantee. Nodes the spec does not pin home to a
	// deterministic hash of their ID.
	Fabric *netem.GraphSpec
}

// ArrivalKind selects a circuit arrival process.
type ArrivalKind int

const (
	// ArriveTogether starts every transfer at t = 0.
	ArriveTogether ArrivalKind = iota
	// ArriveUniform staggers starts uniformly in [0, Spread).
	ArriveUniform
	// ArrivePoisson draws successive inter-arrival gaps from
	// Exp(1/Rate) — an open-loop arrival process.
	ArrivePoisson
)

// Arrival describes when each circuit's transfer begins.
type Arrival struct {
	Kind ArrivalKind
	// Spread is the uniform stagger window (ArriveUniform).
	Spread time.Duration
	// Rate is the mean arrival rate per second (ArrivePoisson).
	Rate float64
}

// CircuitSet describes the circuits of one trial.
type CircuitSet struct {
	// Count is the number of concurrent circuits. Zero defaults to
	// len(Paths) on explicit topologies.
	Count int
	// Paths fixes each circuit's relay sequence (required with an
	// explicit Topology). A single path is shared by all Count
	// circuits; otherwise len(Paths) must equal Count. Leave empty on
	// generated topologies: paths are then sampled bandwidth-weighted
	// from the population consensus, as Tor selects them.
	Paths [][]netem.NodeID
	// Hops is the sampled path length on generated topologies
	// (default 3).
	Hops int
	// TransferSize is the fixed transfer per circuit.
	TransferSize units.DataSize
	// SizeMix, when set, assigns transfer sizes round-robin by circuit
	// index — circuit i transfers SizeMix[i mod len(SizeMix)]. The
	// overload experiments use it to interleave interactive and bulk
	// circuits on one bottleneck. When set, TransferSize may be zero.
	SizeMix []units.DataSize
	// SizeDist, when set, draws per-circuit transfer sizes from a
	// distribution (workload.SizeDist) instead of a scalar. Validation
	// materializes it: the fixed kind just sets TransferSize (keeping
	// that path byte-identical), the stochastic kinds sample Count
	// sizes from the scenario seed's dedicated "workload-sizes" stream
	// into SizeMix. Mutually exclusive with an explicit SizeMix; the
	// draw depends only on (Seed, Count, dist), never on workers, arms
	// or replications.
	SizeDist *workload.SizeDist
	// Download runs transfers in the backward direction
	// (server → client through the onion).
	Download bool
	// Arrival is the start-time process (default: all at t = 0).
	Arrival Arrival
}

// Arm is one policy configuration to run the scenario under. Every arm
// sees the identical topology and workload (same seed), so outcome
// differences are attributable to the transport configuration alone.
type Arm struct {
	// Name labels the arm in the Result (e.g. the policy name).
	Name string
	// Transport configures every circuit hop under this arm.
	Transport core.TransportOptions
	// Rebuild, in scenarios with RelayEvents, rebuilds a circuit that
	// lost a relay to failure: a fresh path is sampled from the
	// consensus (avoiding failed relays) and the download restarts from
	// scratch — paying a full circuit startup again. Requires a
	// generated Population topology.
	Rebuild bool
	// Relay configures every relay's circuit scheduler and resource
	// limits under this arm. The zero value is the byte-identical
	// default: FIFO scheduling, no caps.
	Relay relay.Config
}

// Probes selects per-circuit instrumentation.
type Probes struct {
	// TraceCwnd records each source's congestion window over time
	// (memory-heavy; the single-circuit figures need it).
	TraceCwnd bool
}

// LinkEvent is a scheduled mid-run capacity change — the
// dynamic-network extension experiments. It targets either an explicit
// relay's access links (Relay, explicit topologies only) or both
// directions of a backbone trunk (TrunkA/TrunkB, any topology with a
// Fabric), so capacity steps can hit shared bottlenecks mid-run.
type LinkEvent struct {
	At sim.Time
	// Relay names an explicit relay whose access links step to Rate.
	Relay netem.NodeID
	// TrunkA, TrunkB name a Fabric trunk instead; both directions step.
	TrunkA, TrunkB netem.SwitchID
	Rate           units.DataRate
}

// trunk reports whether the event targets a backbone trunk.
func (ev LinkEvent) trunk() bool { return ev.TrunkA != "" || ev.TrunkB != "" }

// Scenario declaratively describes one experiment. It is plain data:
// build it literally, or start from an adapter in package experiments
// and tweak. Run it with a Runner.
type Scenario struct {
	// Name labels the scenario in summaries.
	Name string
	// Seed drives all randomness. Replication r > 0 derives an
	// independent substream; replication 0 uses Seed itself.
	Seed int64
	// Topology is the relay population (explicit or generated).
	Topology Topology
	// Circuits describes the workload.
	Circuits CircuitSet
	// Arms are the policy configurations to compare. At least one.
	Arms []Arm
	// ClientAccess configures source/sink attachment. Zero selects a
	// fast 100 Mbit/s, 5 ms access; on a generated topology its queues
	// are bounded by the population's QueueCap (the workload default),
	// on an explicit topology they are unbounded (the figure setups).
	ClientAccess netem.AccessConfig
	// Horizon bounds each trial's virtual time.
	Horizon sim.Time
	// RunFullHorizon keeps the clock running to Horizon even after all
	// transfers complete, so cwnd traces include the post-convergence
	// tail (explicit topologies only).
	RunFullHorizon bool
	// Replications repeats every arm with an independent seed
	// substream (0 = 1). Arm distributions pool all replications.
	Replications int
	// Events schedules mid-run link-capacity changes (explicit
	// topologies only).
	Events []LinkEvent
	// CircuitEvents configures circuit churn: Poisson arrivals of new
	// downloads over fresh circuits, teardown of completed circuits,
	// and scheduled teardowns of initial circuits. The zero value keeps
	// the static all-circuits-at-t=0-forever execution path.
	CircuitEvents CircuitEvents
	// RelayEvents schedules relay failures and recoveries. Circuits
	// crossing a failed relay are torn down at the failure instant;
	// arms with Rebuild set give the affected downloads fresh circuits.
	RelayEvents []RelayEvent
	// Faults is the declarative fault-injection plan: burst loss, delay
	// jitter, link flaps, trunk partitions, relay degradation, and the
	// endpoint-side stall-detection/recovery configuration. The zero
	// value injects nothing and keeps seeded outputs byte-identical;
	// any non-zero plan routes the trial through the dynamic lifecycle
	// engine (see internal/faults).
	Faults faults.Plan
	// TrainSize caps cell-train coalescing on every link of every trial
	// — access links and backbone trunks alike. Values ≤ 1 keep the
	// byte-identical one-event-per-cell pipeline; larger values batch
	// back-to-back queued cells into single link events, trading event
	// count for coarser link interleaving (see netem.LinkConfig).
	TrainSize int
	// Shards, when positive, runs every trial on the sharded
	// conservative-lookahead engine: the Fabric is partitioned into at
	// most Shards shards (netem.PartitionGraph), each advancing on its
	// own clock and goroutine, coupled only through cut-trunk handoffs.
	// Results are byte-identical for ANY positive value — Shards = 1 is
	// the reference single-shard engine and larger counts must reproduce
	// it exactly — but not to the Shards = 0 single-clock engine, whose
	// control-plane timing (early stop, teardown instants) differs.
	// Requires a Fabric topology; see validateSharded for the features
	// the sharded engine rejects.
	Shards int
	// Probes selects instrumentation.
	Probes Probes
}

// validate checks the scenario and fills defaulted fields in place.
func (sc *Scenario) validate() error {
	explicit := len(sc.Topology.Relays) > 0
	generated := sc.Topology.Population != nil
	if explicit == generated {
		return fmt.Errorf("scenario: topology needs exactly one of explicit Relays or a generated Population")
	}
	if len(sc.Arms) == 0 {
		return fmt.Errorf("scenario: no arms")
	}
	seen := make(map[string]bool, len(sc.Arms))
	for i, a := range sc.Arms {
		if a.Name == "" {
			return fmt.Errorf("scenario: arm %d has no name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("scenario: duplicate arm %q", a.Name)
		}
		seen[a.Name] = true
		if err := a.Relay.Validate(); err != nil {
			return fmt.Errorf("scenario: arm %q: %w", a.Name, err)
		}
	}
	if sc.Horizon <= 0 {
		return fmt.Errorf("scenario: non-positive horizon")
	}
	if sc.TrainSize < 0 {
		return fmt.Errorf("scenario: negative train size %d", sc.TrainSize)
	}
	if sc.Replications < 0 {
		return fmt.Errorf("scenario: negative replications")
	}
	if sc.Replications == 0 {
		sc.Replications = 1
	}
	if d := sc.Circuits.SizeDist; d != nil {
		if len(sc.Circuits.SizeMix) > 0 {
			return fmt.Errorf("scenario: SizeDist and SizeMix are mutually exclusive")
		}
		if sc.Circuits.TransferSize != 0 {
			return fmt.Errorf("scenario: SizeDist and TransferSize are mutually exclusive")
		}
		if err := d.Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if d.Kind == workload.SizeFixed {
			sc.Circuits.TransferSize = d.Size
		} else {
			n := sc.Circuits.Count
			if n == 0 {
				n = len(sc.Circuits.Paths)
			}
			if n <= 0 {
				return fmt.Errorf("scenario: SizeDist %q needs a positive circuit count", d.Kind)
			}
			mix, err := d.Sample(sc.Seed, n)
			if err != nil {
				return fmt.Errorf("scenario: %w", err)
			}
			sc.Circuits.SizeMix = mix
		}
	}
	if sc.Circuits.TransferSize <= 0 && len(sc.Circuits.SizeMix) == 0 {
		return fmt.Errorf("scenario: transfer size %v", sc.Circuits.TransferSize)
	}
	for i, s := range sc.Circuits.SizeMix {
		if s <= 0 {
			return fmt.Errorf("scenario: size mix entry %d is %v", i, s)
		}
	}
	if sc.Topology.Fabric != nil {
		if err := sc.Topology.Fabric.Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	// Access configurations are validated here — the same rules NewLink
	// enforces by panic — so a bad grid point in a scripted sweep fails
	// its trial cleanly instead of crashing the worker pool.
	for i, r := range sc.Topology.Relays {
		if err := r.Access.Validate(); err != nil {
			return fmt.Errorf("scenario: relay %d (%q): %w", i, r.ID, err)
		}
	}
	if sc.ClientAccess.UpRate != 0 || sc.ClientAccess.DownRate != 0 {
		if err := sc.ClientAccess.Validate(); err != nil {
			return fmt.Errorf("scenario: client access: %w", err)
		}
	}
	for i, ev := range sc.Events {
		if ev.Rate <= 0 {
			return fmt.Errorf("scenario: event %d rate %v", i, ev.Rate)
		}
		if (ev.Relay != "") == ev.trunk() {
			return fmt.Errorf("scenario: event %d needs exactly one of Relay or TrunkA/TrunkB", i)
		}
		if ev.trunk() {
			if ev.TrunkA == "" || ev.TrunkB == "" {
				return fmt.Errorf("scenario: event %d names only one trunk endpoint", i)
			}
			if sc.Topology.Fabric == nil {
				return fmt.Errorf("scenario: event %d targets trunk %q-%q but the topology has no fabric", i, ev.TrunkA, ev.TrunkB)
			}
			if !sc.Topology.Fabric.HasTrunk(ev.TrunkA, ev.TrunkB) {
				return fmt.Errorf("scenario: event %d names unknown trunk %q-%q", i, ev.TrunkA, ev.TrunkB)
			}
		}
	}
	switch sc.Circuits.Arrival.Kind {
	case ArriveTogether:
	case ArriveUniform:
		if sc.Circuits.Arrival.Spread <= 0 {
			return fmt.Errorf("scenario: uniform arrival needs a positive spread")
		}
	case ArrivePoisson:
		if sc.Circuits.Arrival.Rate <= 0 {
			return fmt.Errorf("scenario: poisson arrival needs a positive rate")
		}
	default:
		return fmt.Errorf("scenario: unknown arrival kind %d", sc.Circuits.Arrival.Kind)
	}
	if explicit {
		if len(sc.Circuits.Paths) == 0 {
			return fmt.Errorf("scenario: explicit topology needs explicit circuit paths")
		}
		if sc.Circuits.Count == 0 {
			sc.Circuits.Count = len(sc.Circuits.Paths)
		}
		if len(sc.Circuits.Paths) != 1 && len(sc.Circuits.Paths) != sc.Circuits.Count {
			return fmt.Errorf("scenario: %d paths for %d circuits", len(sc.Circuits.Paths), sc.Circuits.Count)
		}
		ids := make(map[netem.NodeID]bool, len(sc.Topology.Relays))
		for _, r := range sc.Topology.Relays {
			if ids[r.ID] {
				return fmt.Errorf("scenario: duplicate relay %q", r.ID)
			}
			ids[r.ID] = true
		}
		for i, path := range sc.Circuits.Paths {
			if len(path) == 0 {
				return fmt.Errorf("scenario: empty path %d", i)
			}
			for _, id := range path {
				if !ids[id] {
					return fmt.Errorf("scenario: path %d names unknown relay %q", i, id)
				}
			}
		}
		for _, ev := range sc.Events {
			if ev.Relay != "" && !ids[ev.Relay] {
				return fmt.Errorf("scenario: event names unknown relay %q", ev.Relay)
			}
		}
	} else {
		if len(sc.Circuits.Paths) != 0 {
			return fmt.Errorf("scenario: generated topology samples its paths; drop Circuits.Paths")
		}
		if sc.Circuits.Count <= 0 {
			return fmt.Errorf("scenario: %d circuits", sc.Circuits.Count)
		}
		if sc.Circuits.Hops == 0 {
			sc.Circuits.Hops = 3
		}
		for _, ev := range sc.Events {
			if ev.Relay != "" {
				return fmt.Errorf("scenario: relay link events need an explicit topology")
			}
		}
		if sc.RunFullHorizon {
			return fmt.Errorf("scenario: RunFullHorizon needs an explicit topology")
		}
	}
	if sc.Circuits.Count <= 0 {
		return fmt.Errorf("scenario: %d circuits", sc.Circuits.Count)
	}
	if err := sc.validateChurn(); err != nil {
		return err
	}
	return sc.validateSharded()
}

// validateSharded checks the fields a sharded (Shards > 0) scenario may
// use. The rejections all protect the byte-identical-at-any-shard-count
// contract: random link loss consumes a shared per-shard RNG stream in
// partition-dependent order; link events, resource limits and
// suspect-driven recovery mutate state across shards mid-window, which
// only the barrier may do.
func (sc *Scenario) validateSharded() error {
	if sc.Shards == 0 {
		return nil
	}
	if sc.Shards < 0 {
		return fmt.Errorf("scenario: %d shards", sc.Shards)
	}
	if sc.Topology.Fabric == nil {
		return fmt.Errorf("scenario: sharded execution needs a routed Fabric topology to partition")
	}
	for i, t := range sc.Topology.Fabric.Trunks {
		if t.Config.LossProb != 0 {
			return fmt.Errorf("scenario: sharded execution cannot use random trunk loss (trunk %d); use a Faults burst-loss plan", i)
		}
	}
	if sc.ClientAccess.LossProb != 0 {
		return fmt.Errorf("scenario: sharded execution cannot use random client-access loss; use a Faults burst-loss plan")
	}
	for i, r := range sc.Topology.Relays {
		if r.Access.LossProb != 0 {
			return fmt.Errorf("scenario: sharded execution cannot use random access loss (relay %d, %q); use a Faults burst-loss plan", i, r.ID)
		}
	}
	if len(sc.Events) > 0 {
		return fmt.Errorf("scenario: link events are not supported on the sharded engine")
	}
	for i, a := range sc.Arms {
		if a.Relay.Limits.Enabled() {
			return fmt.Errorf("scenario: arm %d (%q) sets resource limits, which the sharded engine does not support", i, a.Name)
		}
	}
	if sc.Faults.Recovery.Enabled {
		return fmt.Errorf("scenario: endpoint recovery is not supported on the sharded engine")
	}
	return nil
}

// RelayIDs returns the topology's relay IDs in deterministic order —
// explicit declaration order, or the generated population's index
// order. Fault presets are rendered against this list.
func (sc *Scenario) RelayIDs() []netem.NodeID {
	if p := sc.Topology.Population; p != nil {
		ids := make([]netem.NodeID, p.N)
		for i := range ids {
			ids[i] = workload.RelayID(i)
		}
		return ids
	}
	ids := make([]netem.NodeID, len(sc.Topology.Relays))
	for i, r := range sc.Topology.Relays {
		ids[i] = r.ID
	}
	return ids
}

// path returns circuit i's relay sequence on an explicit topology.
func (cs CircuitSet) path(i int) []netem.NodeID {
	if len(cs.Paths) == 1 {
		return cs.Paths[0]
	}
	return cs.Paths[i]
}

// sizeFor returns circuit i's transfer size: the round-robin SizeMix
// entry when a mix is declared, TransferSize otherwise.
func (cs CircuitSet) sizeFor(i int) units.DataSize {
	if len(cs.SizeMix) > 0 {
		return cs.SizeMix[i%len(cs.SizeMix)]
	}
	return cs.TransferSize
}
