package scenario

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"circuitstart/internal/arena"
	"circuitstart/internal/core"
	"circuitstart/internal/metrics"
	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// Runner executes a Scenario. It expands the scenario into
// Replications × len(Arms) independent trials, runs them on a worker
// pool, and aggregates the outcomes in fixed trial order — so the
// Result is bit-identical for any Workers value.
type Runner struct {
	// Workers is the trial worker-pool size (≤ 0 = runtime.NumCPU()).
	Workers int
}

// Run executes every trial of the scenario and aggregates a Result.
func (r Runner) Run(sc Scenario) (*Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	trials := sc.Replications * len(sc.Arms)
	outs := make([][]CircuitOutcome, trials)
	nets := make([]NetStats, trials)
	churns := make([]ChurnStats, trials)
	resils := make([]ResilienceStats, trials)
	errs := make([]error, trials)

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > trials {
		workers = trials
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One arena pool per worker: consecutive trials on this
			// goroutine reuse the same clock event free lists,
			// cell/segment pools and object slabs, so only the first
			// trial pays the full allocation bill. A sharded trial draws
			// one arena per shard from the pool. Determinism is
			// unaffected — trial outputs are pure functions of their
			// seeds, never of which worker's recycled memory they ran in.
			pool := arenaPool{}
			for {
				i := int(next.Add(1)) - 1
				if i >= trials {
					return
				}
				rep, arm := i/len(sc.Arms), i%len(sc.Arms)
				want := 1
				if sc.Shards > want {
					want = sc.Shards
				}
				outs[i], nets[i], churns[i], resils[i], errs[i] = runTrial(sc, sc.Arms[arm], trialSeed(sc.Seed, rep), rep, pool.get(want))
				if errs[i] != nil {
					// A failed (possibly panicked) trial may leave an
					// arena's clock mid-run; start the next trial clean.
					pool = arenaPool{}
				} else {
					pool.resetTrial()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Scenario: sc, Arms: make([]ArmResult, len(sc.Arms))}
	for i, a := range sc.Arms {
		res.Arms[i] = ArmResult{Name: a.Name, TTLB: metrics.NewDistribution("ttlb_" + a.Name)}
		if sc.hasChurn() {
			res.Arms[i].Churn.Lifetime = newLifetimeDist(a.Name)
		}
		if sc.Faults.Recovery.Enabled {
			res.Arms[i].Resilience.TTR = newTTRDist(a.Name)
		}
	}
	for i := 0; i < trials; i++ {
		arm := &res.Arms[i%len(sc.Arms)]
		for _, o := range outs[i] {
			arm.Circuits = append(arm.Circuits, o)
			switch {
			case o.Done:
				arm.TTLB.Add(o.TTLB.Seconds())
			case o.Aborted, o.Killed, o.Rejected:
				// Counted in Churn.Aborted / the resource counters, not
				// Incomplete: the teardown (or refusal) was deliberate,
				// not a stalled transfer.
			default:
				arm.Incomplete++
			}
		}
		arm.Net.merge(nets[i])
		arm.Churn.merge(churns[i])
		arm.Resilience.merge(resils[i])
	}
	return res, nil
}

// Run executes the scenario with a default Runner (one worker per CPU).
func Run(sc Scenario) (*Result, error) { return Runner{}.Run(sc) }

// arenaPool hands a worker goroutine as many trial arenas as its next
// trial needs, growing on demand and recycling all of them between
// trials.
type arenaPool struct {
	arenas []*arena.Arena
}

// get returns at least n arenas (the same slice header is reused, so
// callers must not retain it past the trial).
func (p *arenaPool) get(n int) []*arena.Arena {
	for len(p.arenas) < n {
		p.arenas = append(p.arenas, arena.New())
	}
	return p.arenas[:n]
}

// resetTrial rewinds every pooled arena for the next trial.
func (p *arenaPool) resetTrial() {
	for _, ar := range p.arenas {
		ar.ResetTrial()
	}
}

// trialSeed derives replication r's seed substream. Replication 0 uses
// the scenario seed itself, so a single-replication scenario reproduces
// the legacy entry points' outputs exactly.
func trialSeed(seed int64, rep int) int64 {
	if rep == 0 {
		return seed
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/scenario-rep/%d", seed, rep)
	return int64(h.Sum64())
}

// runTrial executes one (arm, replication) pair on its own network. A
// panic in the simulator is converted into an error so one bad trial
// fails the run cleanly instead of killing the worker pool. Scenarios
// with Shards > 0 run on the sharded conservative-lookahead engine;
// scenarios with churn run the dynamic-lifecycle engine; everything
// else takes the original static path, unchanged byte for byte.
func runTrial(sc Scenario, arm Arm, seed int64, rep int, ars []*arena.Arena) (out []CircuitOutcome, net NetStats, churn ChurnStats, resil ResilienceStats, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("scenario: arm %q rep %d panicked: %v", arm.Name, rep, p)
		}
	}()
	var ar *arena.Arena
	if len(ars) > 0 {
		ar = ars[0]
	}
	switch {
	case sc.Shards > 0:
		out, net, churn, resil, err = runSharded(sc, arm, seed, rep, ars)
	case sc.hasChurn():
		out, net, churn, resil, err = runChurn(sc, arm, seed, rep, ar)
	case sc.Topology.Population != nil:
		out, net, err = runGenerated(sc, arm, seed, rep, ar)
	default:
		out, net, err = runExplicit(sc, arm, seed, rep, ar)
	}
	if err != nil {
		err = fmt.Errorf("scenario: arm %q rep %d: %w", arm.Name, rep, err)
	}
	return out, net, churn, resil, err
}

// netStats snapshots the fabric and resource accounting after a trial
// has run.
func netStats(n *core.Network) NetStats {
	fab := n.Fabric()
	st := NetStats{
		UnknownDst: fab.UnknownDst(),
		Unroutable: fab.Unroutable(),
		Resource:   n.ResourceStats(),
		SchedDrops: n.SchedDrops(),
	}
	for _, l := range fab.Trunks() {
		st.Trunks = append(st.Trunks, TrunkStat{Name: l.Name(), Stats: l.Stats()})
	}
	return st
}

// scheduleEvents arms the scenario's link events on a trial network.
// Relay events step an explicit relay's access links; trunk events step
// both directions of a backbone trunk.
func scheduleEvents(n *core.Network, events []LinkEvent) {
	for _, ev := range events {
		rate := ev.Rate
		if ev.trunk() {
			gf := n.Fabric().(*netem.GraphFabric)
			ab, ba := gf.Trunk(ev.TrunkA, ev.TrunkB), gf.Trunk(ev.TrunkB, ev.TrunkA)
			n.Clock().At(ev.At, func() {
				ab.SetRate(rate)
				ba.SetRate(rate)
			})
			continue
		}
		port := n.Relay(ev.Relay).Port()
		n.Clock().At(ev.At, func() {
			port.Uplink().SetRate(rate)
			port.Downlink().SetRate(rate)
		})
	}
}

// workloadParams renders the scenario's generated-topology trial into
// workload.ScenarioParams (shared by the static and churn paths).
func workloadParams(sc Scenario, arm Arm, ar *arena.Arena) workload.ScenarioParams {
	var spread time.Duration
	if sc.Circuits.Arrival.Kind == ArriveUniform {
		spread = sc.Circuits.Arrival.Spread
	}
	// With a SizeMix-only workload the transfers are driven by
	// runTransfers (per-circuit sizeFor), but Build still validates a
	// positive TransferSize — hand it the first mix entry.
	size := sc.Circuits.TransferSize
	if size <= 0 {
		size = sc.Circuits.sizeFor(0)
	}
	return workload.ScenarioParams{
		Relays:         *sc.Topology.Population,
		Circuits:       sc.Circuits.Count,
		HopsPerCircuit: sc.Circuits.Hops,
		TransferSize:   size,
		Transport:      arm.Transport,
		ClientAccess:   sc.ClientAccess,
		StartSpread:    spread,
		Download:       sc.Circuits.Download,
		TraceCwnd:      sc.Probes.TraceCwnd,
		Fabric:         sc.Topology.Fabric,
		RelayConfig:    arm.Relay,
		TrainSize:      sc.TrainSize,
		Arena:          ar,
	}
}

// runGenerated executes one trial over a generated relay population via
// the workload package. Together/uniform arrivals go through
// workload.Scenario.Run — the exact execution path of the pre-scenario
// experiments, preserving their seeded outputs bit for bit.
func runGenerated(sc Scenario, arm Arm, seed int64, rep int, ar *arena.Arena) ([]CircuitOutcome, NetStats, error) {
	wsc, err := workload.Build(seed, workloadParams(sc, arm, ar))
	if err != nil {
		return nil, NetStats{}, err
	}
	scheduleEvents(wsc.Network, sc.Events)
	if sc.Circuits.Arrival.Kind == ArrivePoisson || len(sc.Circuits.SizeMix) > 0 {
		runTransfers(wsc.Network, wsc.Circuits, sc.Circuits, seed, sc.Horizon, false)
	} else {
		wsc.Run(sc.Horizon)
	}
	return collect(wsc.Circuits, rep, sc.Probes.TraceCwnd), netStats(wsc.Network), nil
}

// buildExplicit constructs one trial's network over an explicit
// topology: attach the listed relays in order and build each circuit
// along its declared path. It returns the (defaults-filled) client
// access so churn arrivals attach identically. Shared by the static
// and churn paths.
func buildExplicit(sc Scenario, arm Arm, seed int64, ar *arena.Arena) (*core.Network, []*core.Circuit, netem.AccessConfig, error) {
	build := func(clock *sim.Clock, _ *sim.RNG) netem.Fabric {
		return netem.NewStarFabric(clock)
	}
	if spec := sc.Topology.Fabric; spec != nil {
		fs := spec.Clone()
		for i := range fs.Trunks {
			fs.Trunks[i].Config.TrainSize = sc.TrainSize
		}
		build = func(clock *sim.Clock, rng *sim.RNG) netem.Fabric {
			return fs.Build(clock, rng)
		}
	}
	var n *core.Network
	if ar != nil {
		n = core.NewNetworkInArena(ar, seed, build)
	} else {
		n = core.NewNetworkWithFabric(seed, build)
	}
	if err := n.ConfigureRelays(arm.Relay); err != nil {
		return nil, nil, netem.AccessConfig{}, err
	}
	for _, r := range sc.Topology.Relays {
		acc := r.Access
		acc.TrainSize = sc.TrainSize
		if _, err := n.AddRelay(r.ID, acc); err != nil {
			return nil, nil, netem.AccessConfig{}, err
		}
	}
	access := sc.ClientAccess
	if access.UpRate == 0 {
		access = netem.Symmetric(units.Mbps(100), 5*time.Millisecond, 0)
	}
	access.TrainSize = sc.TrainSize
	circuits := make([]*core.Circuit, sc.Circuits.Count)
	for i := range circuits {
		source, sink := netem.NodeID("client"), netem.NodeID("server")
		if sc.Circuits.Count > 1 {
			source = netem.NodeID(fmt.Sprintf("client-%03d", i))
			sink = netem.NodeID(fmt.Sprintf("server-%03d", i))
		}
		c, err := n.BuildCircuit(core.CircuitSpec{
			Source:       source,
			Sink:         sink,
			SourceAccess: access,
			SinkAccess:   access,
			Relays:       sc.Circuits.path(i),
			Transport:    arm.Transport,
			TraceCwnd:    sc.Probes.TraceCwnd,
		})
		if err != nil {
			if errors.Is(err, core.ErrCircuitRejected) {
				// A relay at its circuit cap refused the build under a
				// reject-new policy; the slot stays nil and is reported
				// as a rejected outcome.
				continue
			}
			return nil, nil, netem.AccessConfig{}, fmt.Errorf("circuit %d: %w", i, err)
		}
		circuits[i] = c
	}
	return n, circuits, access, nil
}

// runExplicit executes one trial over an explicit topology: attach the
// listed relays in order, schedule link events, build each circuit
// along its declared path, and run the transfers.
func runExplicit(sc Scenario, arm Arm, seed int64, rep int, ar *arena.Arena) ([]CircuitOutcome, NetStats, error) {
	n, circuits, _, err := buildExplicit(sc, arm, seed, ar)
	if err != nil {
		return nil, NetStats{}, err
	}
	scheduleEvents(n, sc.Events)
	runTransfers(n, circuits, sc.Circuits, seed, sc.Horizon, sc.RunFullHorizon)
	return collect(circuits, rep, sc.Probes.TraceCwnd), netStats(n), nil
}

// runTransfers starts every circuit's transfer per the arrival process
// and executes the simulation. Unless fullHorizon is set, the clock
// stops as soon as the last transfer completes — a resource-limit kill
// counts its circuit as finished so an eviction cannot stall the stop.
// Circuits rejected at admission (nil slots) never start.
func runTransfers(n *core.Network, circuits []*core.Circuit, cs CircuitSet, seed int64, horizon sim.Time, fullHorizon bool) {
	delays := arrivalDelays(seed, cs, len(circuits))
	remaining := 0
	for _, c := range circuits {
		if c != nil {
			remaining++
		}
	}
	finished := make([]bool, len(circuits))
	finish := func(i int) {
		if finished[i] {
			return
		}
		finished[i] = true
		remaining--
		if remaining == 0 && !fullHorizon {
			n.Clock().Stop()
		}
	}
	idx := make(map[*core.Circuit]int, len(circuits))
	for i, c := range circuits {
		if c != nil {
			idx[c] = i
		}
	}
	n.OnKill(func(c *core.Circuit) {
		if i, ok := idx[c]; ok {
			finish(i)
		}
	})
	for i, c := range circuits {
		if c == nil {
			continue
		}
		i, circ := i, c
		start := func() {
			if circ.Closed() {
				// Evicted before its start (admission kill at build
				// time, or mid-stagger); nothing left to transfer.
				finish(i)
				return
			}
			done := func(time.Duration) { finish(i) }
			if cs.Download {
				circ.TransferBackward(cs.sizeFor(i), done)
			} else {
				circ.Transfer(cs.sizeFor(i), done)
			}
		}
		if delays[i] == 0 {
			start()
		} else {
			n.Clock().After(delays[i], start)
		}
	}
	n.RunUntil(horizon)
}

// arrivalDelays renders the arrival process into per-circuit start
// offsets, drawn from seed-derived streams so they are identical across
// arms and worker counts.
func arrivalDelays(seed int64, cs CircuitSet, n int) []time.Duration {
	out := make([]time.Duration, n)
	switch cs.Arrival.Kind {
	case ArriveUniform:
		rng := sim.NewRNG(seed, "scenario-starts")
		for i := range out {
			out[i] = time.Duration(rng.Int63n(int64(cs.Arrival.Spread)))
		}
	case ArrivePoisson:
		rng := sim.NewRNG(seed, "scenario-arrivals")
		var at time.Duration
		for i := range out {
			at += time.Duration(rng.Exponential(1/cs.Arrival.Rate) * float64(time.Second))
			out[i] = at
		}
	}
	return out
}

// collect extracts one outcome per circuit after a trial has run. A nil
// slot is a circuit refused at admission; it is reported as Rejected.
func collect(circuits []*core.Circuit, rep int, traced bool) []CircuitOutcome {
	out := make([]CircuitOutcome, len(circuits))
	for i, c := range circuits {
		if c == nil {
			out[i] = CircuitOutcome{Replication: rep, Index: i, Rejected: true}
			continue
		}
		ttlb, done := c.TTLB()
		o := CircuitOutcome{
			Replication:  rep,
			Index:        i,
			TTLB:         ttlb,
			Done:         done,
			Killed:       c.Killed() && !done,
			OptimalCells: c.ModelPath().OptimalSourceWindowCells(),
		}
		st := c.SourceSender().Stats()
		o.ExitCwnd, o.ExitTime, o.Restarts = st.ExitCwnd, st.ExitTime, st.Restarts
		if traced {
			o.Trace = c.SourceTrace()
		}
		out[i] = o
	}
	return out
}
