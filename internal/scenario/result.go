package scenario

import (
	"fmt"
	"io"
	"time"

	"circuitstart/internal/metrics"
	"circuitstart/internal/sim"
	"circuitstart/internal/traceio"
)

// CircuitOutcome is one circuit's outcome in one trial.
type CircuitOutcome struct {
	// Replication and Index locate the circuit in the expansion.
	Replication, Index int
	// TTLB is the transfer's time-to-last-byte (valid when Done).
	TTLB time.Duration
	// Done reports whether the transfer completed within the horizon.
	Done bool
	// Trace is the source's cwnd series in cells (nil unless
	// Probes.TraceCwnd was set).
	Trace *metrics.Series
	// OptimalCells is the analytic model's optimal source window.
	OptimalCells float64
	// ExitCwnd and ExitTime describe the startup exit.
	ExitCwnd float64
	ExitTime sim.Time
	// Restarts counts re-probes the source performed.
	Restarts uint64
}

// ArmResult aggregates one arm across all replications.
type ArmResult struct {
	// Name is the arm's label.
	Name string
	// TTLB pools the completed transfers' times-to-last-byte in
	// seconds, in deterministic (replication, circuit) order.
	TTLB *metrics.Distribution
	// Incomplete counts transfers unfinished at the horizon.
	Incomplete int
	// Circuits holds every per-circuit outcome in (replication,
	// circuit) order. Traces, when probed, are found here.
	Circuits []CircuitOutcome
}

// Result is the aggregated outcome of a Runner.Run.
type Result struct {
	// Scenario echoes the (defaults-filled) scenario that ran.
	Scenario Scenario
	// Arms holds one aggregate per arm, in scenario order.
	Arms []ArmResult
}

// Arm returns the named arm's aggregate, or nil.
func (r *Result) Arm(name string) *ArmResult {
	for i := range r.Arms {
		if r.Arms[i].Name == name {
			return &r.Arms[i]
		}
	}
	return nil
}

// MedianGap returns arm a's median TTLB minus arm b's, in seconds —
// negative when a is faster. It panics if either arm is missing or
// completed no transfers within the horizon (check Incomplete first
// when a horizon may be tight).
func (r *Result) MedianGap(a, b string) float64 {
	armA, armB := r.Arm(a), r.Arm(b)
	if armA == nil || armB == nil {
		panic(fmt.Sprintf("scenario: arms %q, %q not both present", a, b))
	}
	return armA.TTLB.Median() - armB.TTLB.Median()
}

// Summaries returns one summary per arm's TTLB distribution.
func (r *Result) Summaries() []metrics.Summary {
	out := make([]metrics.Summary, len(r.Arms))
	for i := range r.Arms {
		out[i] = r.Arms[i].TTLB.Summarize()
	}
	return out
}

// WriteText renders the per-arm summary table.
func (r *Result) WriteText(w io.Writer) error {
	dists := make([]*metrics.Distribution, len(r.Arms))
	for i := range r.Arms {
		dists[i] = r.Arms[i].TTLB
	}
	return traceio.WriteSummaryTable(w, dists...)
}
