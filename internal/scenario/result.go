package scenario

import (
	"fmt"
	"io"
	"time"

	"circuitstart/internal/metrics"
	"circuitstart/internal/netem"
	"circuitstart/internal/resource"
	"circuitstart/internal/sim"
	"circuitstart/internal/traceio"
)

// TrunkStat is one directed trunk link's pooled counters.
type TrunkStat struct {
	// Name is the link's diagnostic name ("trunk:west>east").
	Name string
	// Stats pools the link's counters across a trial set.
	Stats netem.LinkStats
}

// NetStats aggregates fabric-level accounting for a trial set. The
// runner pools it per arm across replications, so a routing bug (frames
// to detached nodes, a disconnected backbone) fails loudly in the
// summary instead of silently blackholing transfers.
type NetStats struct {
	// UnknownDst counts frames addressed to detached nodes.
	UnknownDst uint64
	// Unroutable counts frames with no route between home switches.
	Unroutable uint64
	// Trunks pools each backbone trunk's LinkStats, in the fabric's
	// deterministic trunk order (empty on a star).
	Trunks []TrunkStat
	// Resource pools the relays' resource-manager counters (admissions,
	// rejections, kills, memory high-water; zero without limits).
	Resource resource.Stats
	// SchedDrops counts frames dropped by installed circuit schedulers
	// (bandwidth policers) — distinct from link-level tail drops.
	SchedDrops uint64
}

// merge pools another trial's fabric accounting into s.
func (s *NetStats) merge(o NetStats) {
	s.UnknownDst += o.UnknownDst
	s.Unroutable += o.Unroutable
	s.Resource.Merge(o.Resource)
	s.SchedDrops += o.SchedDrops
	if len(s.Trunks) == 0 {
		s.Trunks = append(s.Trunks, o.Trunks...)
		return
	}
	for i := range o.Trunks {
		// Same scenario → same fabric spec → same trunk order.
		if i < len(s.Trunks) && s.Trunks[i].Name == o.Trunks[i].Name {
			s.Trunks[i].Stats.Merge(o.Trunks[i].Stats)
		} else {
			s.Trunks = append(s.Trunks, o.Trunks[i])
		}
	}
}

// ChurnStats aggregates one arm's circuit-lifecycle activity. It is
// populated only by scenarios with churn configured (CircuitEvents or
// RelayEvents); static scenarios leave it zero with a nil Lifetime, so
// their rendered output is unchanged.
type ChurnStats struct {
	// Built counts circuits built: initial, churn arrivals, rebuilds.
	Built int
	// TornDown counts circuits torn down (state released to the pools).
	TornDown int
	// Rebuilt counts circuits rebuilt after a relay failure.
	Rebuilt int
	// Aborted counts downloads torn down before completing (scheduled
	// teardowns, relay failures on arms without Rebuild, or
	// resource-limit kills and admission rejections).
	Aborted int
	// Rejected counts circuit builds refused at admission by a relay's
	// resource manager (also counted in Aborted).
	Rejected int
	// Lifetime pools the lifetime in seconds of every torn-down
	// circuit across replications.
	Lifetime *metrics.Distribution
}

// merge pools another trial's churn accounting into s.
func (s *ChurnStats) merge(o ChurnStats) {
	s.Built += o.Built
	s.TornDown += o.TornDown
	s.Rebuilt += o.Rebuilt
	s.Aborted += o.Aborted
	s.Rejected += o.Rejected
	if s.Lifetime != nil && o.Lifetime != nil {
		for _, v := range o.Lifetime.Sorted() {
			s.Lifetime.Add(v)
		}
	}
}

// newLifetimeDist names an arm's pooled circuit-lifetime distribution.
func newLifetimeDist(arm string) *metrics.Distribution {
	return metrics.NewDistribution("lifetime_" + arm)
}

// ResilienceStats aggregates one arm's fault-recovery activity. It is
// populated only when the scenario enables Faults.Recovery; otherwise
// it stays zero with a nil TTR and the rendered output is unchanged.
type ResilienceStats struct {
	// Stalls counts declared stalls (one per outage, however many
	// rebuild attempts it took).
	Stalls int
	// Recoveries counts stalls that saw transport progress again.
	Recoveries int
	// Retries counts rebuild attempts spent from downloads' budgets.
	Retries int
	// Abandoned counts downloads that exhausted their retry budget
	// (also counted in ChurnStats.Aborted).
	Abandoned int
	// TTR pools time-to-recovery in seconds: stall declaration to first
	// subsequent progress (or completion).
	TTR *metrics.Distribution
	// Downtime and Active are summed per-download seconds: Active spans
	// each download's first start to its terminal instant, Downtime the
	// stalled portions thereof.
	Downtime float64
	Active   float64
	// GoodputBytes totals bytes landed at receiving endpoints, including
	// partial deliveries on circuits later torn down.
	GoodputBytes float64
}

// merge pools another trial's resilience accounting into s.
func (s *ResilienceStats) merge(o ResilienceStats) {
	s.Stalls += o.Stalls
	s.Recoveries += o.Recoveries
	s.Retries += o.Retries
	s.Abandoned += o.Abandoned
	s.Downtime += o.Downtime
	s.Active += o.Active
	s.GoodputBytes += o.GoodputBytes
	if s.TTR != nil && o.TTR != nil {
		for _, v := range o.TTR.Sorted() {
			s.TTR.Add(v)
		}
	}
}

// Availability is the fraction of download-active time the transport
// was not stalled, in [0, 1] (1 when nothing ran).
func (s *ResilienceStats) Availability() float64 {
	if s.Active <= 0 {
		return 1
	}
	a := 1 - s.Downtime/s.Active
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}

// Goodput is delivered bytes per download-active second — throughput as
// the endpoints experienced it under fault, rebuild gaps included.
func (s *ResilienceStats) Goodput() float64 {
	if s.Active <= 0 {
		return 0
	}
	return s.GoodputBytes / s.Active
}

// newTTRDist names an arm's pooled time-to-recovery distribution.
func newTTRDist(arm string) *metrics.Distribution {
	return metrics.NewDistribution("ttr_" + arm)
}

// CircuitOutcome is one circuit's outcome in one trial. In churn
// scenarios an entry is one logical download, which may span several
// circuits (rebuilds after relay failures).
type CircuitOutcome struct {
	// Replication and Index locate the circuit in the expansion.
	Replication, Index int
	// TTLB is the transfer's time-to-last-byte (valid when Done). A
	// rebuilt download's TTLB spans its first start to its final
	// completion, so every repeated startup it paid is included.
	TTLB time.Duration
	// Done reports whether the transfer completed within the horizon.
	Done bool
	// Aborted reports the download was torn down before completing
	// (churn scenarios only). Aborted downloads are counted in
	// ChurnStats.Aborted, not in ArmResult.Incomplete.
	Aborted bool
	// StartAt is when the download first started (churn scenarios
	// only; zero otherwise).
	StartAt sim.Time
	// Rebuilds counts the download's circuit rebuilds after relay
	// failures (churn scenarios only).
	Rebuilds int
	// Killed reports the circuit was evicted by a relay's resource
	// manager before its transfer completed.
	Killed bool
	// Rejected reports the circuit was refused at admission by a relay's
	// resource manager — it never carried a cell.
	Rejected bool
	// Trace is the source's cwnd series in cells (nil unless
	// Probes.TraceCwnd was set).
	Trace *metrics.Series
	// OptimalCells is the analytic model's optimal source window.
	OptimalCells float64
	// ExitCwnd and ExitTime describe the startup exit.
	ExitCwnd float64
	ExitTime sim.Time
	// Restarts counts re-probes the source performed.
	Restarts uint64
}

// ArmResult aggregates one arm across all replications.
type ArmResult struct {
	// Name is the arm's label.
	Name string
	// TTLB pools the completed transfers' times-to-last-byte in
	// seconds, in deterministic (replication, circuit) order.
	TTLB *metrics.Distribution
	// Incomplete counts transfers unfinished at the horizon.
	Incomplete int
	// Circuits holds every per-circuit outcome in (replication,
	// circuit) order. Traces, when probed, are found here.
	Circuits []CircuitOutcome
	// Net pools the arm's fabric accounting (drop counters, per-trunk
	// link stats) across replications.
	Net NetStats
	// Churn pools the arm's circuit-lifecycle accounting (zero, with a
	// nil Lifetime, on scenarios without churn).
	Churn ChurnStats
	// Resilience pools the arm's fault-recovery accounting (zero, with
	// a nil TTR, unless the scenario enables Faults.Recovery).
	Resilience ResilienceStats
}

// JainTTLB returns Jain's fairness index over the arm's pooled
// per-circuit TTLB samples — near 1 when circuits finished in
// comparable time, near 1/n when one starved the rest.
func (a *ArmResult) JainTTLB() float64 { return a.TTLB.JainIndex() }

// Result is the aggregated outcome of a Runner.Run.
type Result struct {
	// Scenario echoes the (defaults-filled) scenario that ran.
	Scenario Scenario
	// Arms holds one aggregate per arm, in scenario order.
	Arms []ArmResult
}

// Arm returns the named arm's aggregate, or nil.
func (r *Result) Arm(name string) *ArmResult {
	for i := range r.Arms {
		if r.Arms[i].Name == name {
			return &r.Arms[i]
		}
	}
	return nil
}

// MedianGap returns arm a's median TTLB minus arm b's, in seconds —
// negative when a is faster. It panics if either arm is missing or
// completed no transfers within the horizon (check Incomplete first
// when a horizon may be tight).
func (r *Result) MedianGap(a, b string) float64 {
	armA, armB := r.Arm(a), r.Arm(b)
	if armA == nil || armB == nil {
		panic(fmt.Sprintf("scenario: arms %q, %q not both present", a, b))
	}
	return armA.TTLB.Median() - armB.TTLB.Median()
}

// Summaries returns one summary per arm's TTLB distribution.
func (r *Result) Summaries() []metrics.Summary {
	out := make([]metrics.Summary, len(r.Arms))
	for i := range r.Arms {
		out[i] = r.Arms[i].TTLB.Summarize()
	}
	return out
}

// WriteText renders the per-arm summary table, the circuit-lifecycle
// table when the scenario ran with churn, any fabric drop counters
// (always shown when non-zero — a silent blackhole must not look like a
// slow network), and the per-trunk link stats when the scenario ran on
// a routed backbone.
func (r *Result) WriteText(w io.Writer) error {
	dists := make([]*metrics.Distribution, len(r.Arms))
	for i := range r.Arms {
		dists[i] = r.Arms[i].TTLB
	}
	if err := traceio.WriteSummaryTable(w, dists...); err != nil {
		return err
	}
	if err := r.writeChurn(w); err != nil {
		return err
	}
	if err := r.writeResilience(w); err != nil {
		return err
	}
	if err := r.writeResources(w); err != nil {
		return err
	}
	for i := range r.Arms {
		arm := &r.Arms[i]
		if arm.Net.UnknownDst > 0 || arm.Net.Unroutable > 0 {
			if _, err := fmt.Fprintf(w, "warning: arm %s dropped frames in the fabric: %d to unknown destinations, %d unroutable\n",
				arm.Name, arm.Net.UnknownDst, arm.Net.Unroutable); err != nil {
				return err
			}
		}
	}
	hasTrunks := false
	for i := range r.Arms {
		if len(r.Arms[i].Trunks()) > 0 {
			hasTrunks = true
		}
	}
	if !hasTrunks {
		return nil
	}
	tbl := traceio.NewTable("arm", "trunk", "delivered", "bytes_out", "tail_drops", "random_loss", "max_queue", "queue_delay", "mean_train")
	for i := range r.Arms {
		arm := &r.Arms[i]
		for _, ts := range arm.Trunks() {
			tbl.AddRowf(arm.Name, ts.Name, ts.Stats.CellsDelivered, ts.Stats.BytesOut.String(),
				ts.Stats.TailDrops, ts.Stats.RandomLoss, ts.Stats.MaxQueueLen, ts.Stats.QueueDelay.String(),
				fmt.Sprintf("%.2f", ts.Stats.MeanTrainLen()))
		}
	}
	return tbl.WriteText(w)
}

// writeChurn renders the per-arm circuit-lifecycle table. Scenarios
// without churn have nil Lifetime distributions and emit nothing, so
// pre-churn outputs are unchanged byte for byte.
func (r *Result) writeChurn(w io.Writer) error {
	hasChurn := false
	for i := range r.Arms {
		if r.Arms[i].Churn.Lifetime != nil {
			hasChurn = true
		}
	}
	if !hasChurn {
		return nil
	}
	tbl := traceio.NewTable("arm", "built", "torn_down", "rebuilt", "aborted", "rejected", "median_life_s")
	for i := range r.Arms {
		c := &r.Arms[i].Churn
		life := "-"
		if c.Lifetime != nil && c.Lifetime.Len() > 0 {
			life = fmt.Sprintf("%.3f", c.Lifetime.Median())
		}
		tbl.AddRowf(r.Arms[i].Name, c.Built, c.TornDown, c.Rebuilt, c.Aborted, c.Rejected, life)
	}
	return tbl.WriteText(w)
}

// writeResilience renders the per-arm fault-recovery table. Scenarios
// without Faults.Recovery have nil TTR distributions and emit nothing,
// so pre-fault outputs are unchanged byte for byte.
func (r *Result) writeResilience(w io.Writer) error {
	enabled := false
	for i := range r.Arms {
		if r.Arms[i].Resilience.TTR != nil {
			enabled = true
		}
	}
	if !enabled {
		return nil
	}
	tbl := traceio.NewTable("arm", "stalls", "recoveries", "retries", "abandoned", "median_ttr_s", "availability", "goodput_kbps")
	for i := range r.Arms {
		rs := &r.Arms[i].Resilience
		ttr := "-"
		if rs.TTR != nil && rs.TTR.Len() > 0 {
			ttr = fmt.Sprintf("%.3f", rs.TTR.Median())
		}
		tbl.AddRowf(r.Arms[i].Name, rs.Stalls, rs.Recoveries, rs.Retries, rs.Abandoned,
			ttr, fmt.Sprintf("%.4f", rs.Availability()), fmt.Sprintf("%.1f", rs.Goodput()*8/1000))
	}
	return tbl.WriteText(w)
}

// writeResources renders the per-arm fairness and resource-pressure
// table. It is emitted only when some arm configures a scheduler or
// resource limits, so pre-existing scenario outputs are unchanged byte
// for byte.
func (r *Result) writeResources(w io.Writer) error {
	enabled := false
	for _, a := range r.Scenario.Arms {
		if a.Relay.Enabled() {
			enabled = true
		}
	}
	if !enabled {
		return nil
	}
	tbl := traceio.NewTable("arm", "jain_ttlb", "admitted", "rejected", "killed", "mem_hw", "sched_drops")
	for i := range r.Arms {
		arm := &r.Arms[i]
		rs := arm.Net.Resource
		tbl.AddRowf(arm.Name, fmt.Sprintf("%.3f", arm.JainTTLB()),
			rs.Admitted, rs.Rejected, rs.Killed, rs.MemHighWater.String(), arm.Net.SchedDrops)
	}
	return tbl.WriteText(w)
}

// Trunks returns the arm's pooled per-trunk stats (nil on a star).
func (a *ArmResult) Trunks() []TrunkStat { return a.Net.Trunks }
