package scenario

import (
	"testing"

	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// TestSizeDistFixedByteIdentical pins the compatibility contract: a
// fixed SizeDist collapses onto the scalar TransferSize path and
// reproduces the plain scenario bit for bit (zero extra RNG draws).
func TestSizeDistFixedByteIdentical(t *testing.T) {
	plain := testScenario()
	res, err := Runner{}.Run(plain)
	if err != nil {
		t.Fatal(err)
	}

	dist := testScenario()
	dist.Circuits.TransferSize = 0
	dist.Circuits.SizeDist = &workload.SizeDist{Kind: workload.SizeFixed, Size: 200 * units.Kilobyte}
	res2, err := Runner{}.Run(dist)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, res, res2)
}

// TestSizeDistStochasticDeterministic checks that a stochastic size
// distribution is seeded purely by the scenario seed: two runs agree,
// and the sizes actually vary across circuits.
func TestSizeDistStochasticDeterministic(t *testing.T) {
	mk := func() Scenario {
		sc := testScenario()
		sc.Circuits.TransferSize = 0
		sc.Circuits.SizeDist = &workload.SizeDist{
			Kind: workload.SizeLogNormal, Size: 200 * units.Kilobyte, Sigma: 0.75,
		}
		return sc
	}
	a, err := Runner{}.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Runner{Workers: 4}.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, a, b)

	// The materialized mix must differ from the fixed-size run.
	fixed, err := Runner{}.Run(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	same := true
	as, fs := a.Arms[0].TTLB.Sorted(), fixed.Arms[0].TTLB.Sorted()
	if len(as) == len(fs) {
		for i := range as {
			if as[i] != fs[i] {
				same = false
				break
			}
		}
	} else {
		same = false
	}
	if same {
		t.Error("lognormal size mix reproduced the fixed-size TTLBs — the distribution had no effect")
	}
}

// TestSizeDistValidation checks the exclusivity and validation rules.
func TestSizeDistValidation(t *testing.T) {
	sc := testScenario()
	sc.Circuits.SizeDist = &workload.SizeDist{Kind: workload.SizeFixed, Size: units.Kilobyte}
	// TransferSize is still set from testScenario.
	if _, err := (Runner{}).Run(sc); err == nil {
		t.Error("SizeDist alongside TransferSize accepted")
	}

	sc2 := testScenario()
	sc2.Circuits.TransferSize = 0
	sc2.Circuits.SizeMix = []units.DataSize{1000, 2000}
	sc2.Circuits.SizeDist = &workload.SizeDist{Kind: workload.SizeFixed, Size: units.Kilobyte}
	if _, err := (Runner{}).Run(sc2); err == nil {
		t.Error("SizeDist alongside SizeMix accepted")
	}

	sc3 := testScenario()
	sc3.Circuits.TransferSize = 0
	sc3.Circuits.SizeDist = &workload.SizeDist{Kind: workload.SizeLogNormal, Size: units.Kilobyte}
	if _, err := (Runner{}).Run(sc3); err == nil {
		t.Error("lognormal with zero sigma accepted")
	}
}
